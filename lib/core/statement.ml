open Mxra_relational

type t =
  | Insert of string * Expr.t
  | Delete of string * Expr.t
  | Update of string * Expr.t * Scalar.t list
  | Assign of string * Expr.t
  | Query of Expr.t

exception Exec_error of string

let error fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

(* Write observation: an inversion-of-control hook so layers above core
   (secondary index maintenance in [Mxra_ext.Index]) can see each
   update's exact delta without core depending on them.  The deltas are
   the *effective* bags: what the statement actually added to / removed
   from the target, multiplicities included, so that
   [bag before − removed ⊎ added = bag after] always holds. *)
type write = {
  w_db : Database.t;  (* state the statement executed against *)
  w_name : string;
  w_before : Relation.t;
  w_after : Relation.t;
  w_added : Relation.Bag.t;
  w_removed : Relation.Bag.t;
}

let write_observer : (write -> unit) option ref = ref None
let set_write_observer f = write_observer := f

(* Deltas are only computed when someone is listening: the no-observer
   fast path is a single ref read. *)
let observe_write db name ~before ~after ~added ~removed =
  match !write_observer with
  | None -> ()
  | Some f ->
      f
        {
          w_db = db;
          w_name = name;
          w_before = before;
          w_after = after;
          w_added = added ();
          w_removed = removed ();
        }

let target_relation db name =
  match Database.find_opt name db with
  | Some r -> r
  | None -> error "unknown relation %s" name

let require_same_schema op name target value =
  if not (Schema.compatible (Relation.schema target) (Relation.schema value))
  then
    error "%s(%s, E): E has schema %a, %s has schema %a" op name Schema.pp
      (Relation.schema value) name Schema.pp (Relation.schema target)

(* update(R, E, α) requires π_α structure-preserving: the projected
   schema must be compatible with R's schema. *)
let check_update_list db name exprs =
  let schema = Relation.schema (target_relation db name) in
  if List.length exprs <> Schema.arity schema then
    error "update(%s): attribute expression list has length %d, schema %a"
      name (List.length exprs) Schema.pp schema;
  List.iteri
    (fun i e ->
      let d =
        try Scalar.infer schema e
        with Scalar.Eval_error msg -> error "update(%s): %s" name msg
      in
      let expected = Schema.domain schema (i + 1) in
      if not (Domain.equal d expected) then
        error
          "update(%s): expression %a for attribute %%%d has domain %a, \
           expected %a"
          name Scalar.pp e (i + 1) Domain.pp d Domain.pp expected)
    exprs

let exec db = function
  | Insert (name, e) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "insert" name target value;
      let after = Eval.union target value in
      observe_write db name ~before:target ~after
        ~added:(fun () -> Relation.bag value)
        ~removed:(fun () -> Relation.Bag.empty);
      (Database.set name after db, None)
  | Delete (name, e) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "delete" name target value;
      let after = Eval.diff target value in
      observe_write db name ~before:target ~after
        ~added:(fun () -> Relation.Bag.empty)
          (* Monus: only what was actually present leaves the bag. *)
        ~removed:(fun () -> Relation.bag (Eval.intersect target value));
      (Database.set name after db, None)
  | Update (name, e, exprs) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "update" name target value;
      check_update_list db name exprs;
      (* R ← (R − E) ⊎ π_α(R ∩ E) *)
      let untouched = Eval.diff target value in
      let touched = Eval.intersect target value in
      let modified =
        (* The projected bag keeps R's schema: structure preserving. *)
        Relation.of_bag_unchecked (Relation.schema target)
          (Relation.bag (Eval.project exprs touched))
      in
      let after = Eval.union untouched modified in
      observe_write db name ~before:target ~after
        ~added:(fun () -> Relation.bag modified)
        ~removed:(fun () -> Relation.bag touched);
      (Database.set name after db, None)
  | Assign (name, e) ->
      let value = Eval.eval db e in
      (Database.assign_temporary name value db, None)
  | Query e -> (db, Some (Eval.eval db e))

let infer db = function
  | Insert (name, e) | Delete (name, e) ->
      let target = target_relation db name in
      let schema = Typecheck.infer_db db e in
      if not (Schema.compatible (Relation.schema target) schema) then
        error "statement on %s: schema mismatch" name
  | Update (name, e, exprs) ->
      let target = target_relation db name in
      let schema = Typecheck.infer_db db e in
      if not (Schema.compatible (Relation.schema target) schema) then
        error "update(%s): schema mismatch" name;
      check_update_list db name exprs
  | Assign (_, e) | Query e -> ignore (Typecheck.infer_db db e)

let pp ppf = function
  | Insert (name, e) ->
      Format.fprintf ppf "insert(%s,@ @[%a@])" name Expr.pp e
  | Delete (name, e) ->
      Format.fprintf ppf "delete(%s,@ @[%a@])" name Expr.pp e
  | Update (name, e, exprs) ->
      Format.fprintf ppf "update(%s,@ @[%a@],@ [@[%a@]])" name Expr.pp e
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Scalar.pp)
        exprs
  | Assign (name, e) -> Format.fprintf ppf "%s := @[%a@]" name Expr.pp e
  | Query e -> Format.fprintf ppf "?@[%a@]" Expr.pp e

let to_string s = Format.asprintf "%a" pp s
