(** Extended relational algebra statements (Definition 4.1).

    Statements query and update a multi-set relational database:

    - [insert(R, E)]: [R ← R ⊎ E];
    - [delete(R, E)]: [R ← R − E];
    - [update(R, E, α)]: [R ← (R − E) ⊎ π_α(R ∩ E)] where [π_α] is a
      {e structure-preserving} extended projection (result schema equals
      the operand schema);
    - [R := E]: assignment to "a new and implicitly defined relational
      variable" — a temporary relation dropped at transaction end;
    - [?E]: send the value of [E] to the user; no effect on the state.

    [exec] performs one statement on a database state and returns the new
    state plus the query output, if any.  It is the small-step semantics
    used by {!Program} and {!Transaction}. *)

open Mxra_relational

type t =
  | Insert of string * Expr.t
  | Delete of string * Expr.t
  | Update of string * Expr.t * Scalar.t list
  | Assign of string * Expr.t
  | Query of Expr.t

exception Exec_error of string
(** A statement-level failure: unknown target relation, schema mismatch
    between target and expression, or a non-structure-preserving update
    list.  Expression-level failures propagate from {!Eval}. *)

val exec : Database.t -> t -> Database.t * Relation.t option
(** Execute one statement.  The relation is [Some] exactly for [Query].
    @raise Exec_error on statement-level failure, and whatever {!Eval}
    raises on expression-level failure. *)

(** {1 Write observation}

    Layers above core (secondary index maintenance, change capture) can
    register a hook that sees every update statement's exact delta.
    The invariant, with bags over the target relation:
    [bag w_before − w_removed ⊎ w_added = bag w_after].  Multiplicities
    are exact: a delete of a tuple present 3 times removes it with
    count 3 (or less, by monus, if the deleted bag carries fewer). *)
type write = {
  w_db : Database.t;  (** State the statement executed against. *)
  w_name : string;  (** Target relation name. *)
  w_before : Relation.t;
  w_after : Relation.t;
  w_added : Relation.Bag.t;
  w_removed : Relation.Bag.t;
}

val set_write_observer : (write -> unit) option -> unit
(** Install (or clear) the process-wide write observer.  When [None]
    (the default) updates pay a single ref read; deltas are computed
    only while an observer is installed. *)

val infer : Database.t -> t -> unit
(** Statically check the statement against the database schema without
    executing it (the [Assign] case cannot extend the environment here;
    {!Program.infer} threads that).
    @raise Exec_error / [Typecheck.Type_error] as appropriate. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
