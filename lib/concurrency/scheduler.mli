(** Interleaved transaction execution under strict two-phase locking.

    The paper's isolation story (Definition 4.3: "T is executed in
    isolation"; only pre- and post-transaction states are visible) is
    realised by {!Mxra_core.Transaction.run_all} as serial execution.
    This module is the concurrency substrate that justifies the serial
    semantics under interleaving: transactions execute one statement at
    a time in an arbitrary (seeded) interleaving, guarded by strict 2PL
    at relation granularity —

    - a statement takes a shared lock on every relation its expressions
      read and an exclusive lock on the relation it updates;
    - locks are held until commit or abort (strictness);
    - a blocked transaction waits; a wait-for cycle (deadlock) aborts
      the requesting transaction, undoing its writes from before-images
      taken at first write (safe: exclusive locks kept anyone else out);
    - temporaries ([R := E]) are transaction-private, never locked.

    Strict 2PL makes every schedule conflict-equivalent to the serial
    execution of the committed transactions in commit order — which is
    exactly what the property tests check against
    {!Mxra_core.Transaction.run_all}. *)

open Mxra_relational
open Mxra_core

type outcome =
  | Committed
  | Aborted of string
      (** Reason: a statement failure, the [abort_if] guard, or
          [deadlock victim]. *)

type stats = {
  steps : int;  (** Statements executed (including undone ones). *)
  blocks : int;  (** Times a transaction had to wait for a lock. *)
  deadlocks : int;  (** Wait-for cycles broken by aborting a victim. *)
}

type result = {
  final : Database.t;
  outcomes : outcome list;  (** Per input transaction, in input order. *)
  commit_order : int list;
      (** Indices of committed transactions in commit order — the serial
          order the schedule is equivalent to. *)
  outputs : Relation.t list list;
      (** Per input transaction, the results of its [?E] statements in
          statement order; [[]] for aborted transactions — atomicity
          extends to the user channel.  What the CLI prints after a
          batch. *)
  query_ids : string list;
      (** Per input transaction, in input order: the query id minted at
          batch start ({!Mxra_obs.Qid}).  The same id is stamped on the
          transaction's trace spans and, by the CLI, into the WAL's
          begin/commit markers — the end-to-end correlation key. *)
  stats : stats;
}

val run : seed:int -> Database.t -> Transaction.t list -> result
(** Execute the batch under a seeded pseudo-random interleaving.
    [seed] fully determines the schedule, so failures reproduce. *)

val equivalent_serial : Database.t -> Transaction.t list -> result -> bool
(** Check the 2PL guarantee: replaying the committed transactions
    serially in [commit_order] from the same initial state yields a
    state equal to [final]. *)

val telemetry : unit -> (string * float) list
(** Sampler probe over process-lifetime counters: [sched.steps],
    [sched.blocks], [sched.deadlocks], [sched.commits] and
    [sched.batches], summed across every batch run so far. *)
