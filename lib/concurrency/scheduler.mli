(** Interleaved transaction execution: multi-version snapshot isolation
    (the default) or strict two-phase locking.

    The paper's §2 models database evolution as logical-time transitions
    [D^t → D^{t+1}], which is exactly the abstraction MVCC needs: states
    are persistent values, so a transaction can hold an immutable
    snapshot [D^t] for free while writers prepare [D^{t+1}].  Two
    isolation engines share one scheduling loop (transactions execute
    one statement at a time in an arbitrary — seeded or scripted —
    interleaving):

    {2 Snapshot isolation ([Si], the default)}

    - a transaction captures an immutable snapshot of the shared state
      at its first step (its {e begin}); every read — including reads of
      relations other transactions are busy writing — is served from
      that snapshot.  Readers take no locks and never block;
    - writes (insert / delete / update targets) accumulate in a private
      per-transaction overlay, invisible to everyone else until commit;
    - the end bracket validates {e first-committer-wins}: the
      transaction aborts iff a relation in its write set was committed
      by a concurrent transaction after its snapshot was taken
      ([Aborted "write-write conflict on R"]).  Otherwise its written
      relations are installed as the next shared state and it receives
      the next commit timestamp.

    SI forbids dirty reads, non-repeatable reads and lost updates, but
    {e admits write skew} (disjoint write sets, intersecting read sets)
    — see [test/test_mvcc.ml] for executable witnesses of all four and
    [docs/CONCURRENCY.md] for the anomaly table.  Schedules are
    equivalent to the serial execution of the committed transactions in
    commit order whenever every read dependency is covered by the write
    set (e.g. transfer-style workloads), which is what the property
    tests check via {!equivalent_serial}.

    {2 Strict 2PL ([Two_pl])}

    The PR-0 engine, kept selectable ([bagdb --isolation 2pl],
    [MXRA_ISOLATION=2pl]) as the differential-testing contrast case:
    relation-granularity shared/exclusive locks held to commit, blocked
    transactions wait, wait-for cycles abort a victim.  Serializable,
    but one hot writer stalls every reader of that relation. *)

open Mxra_relational
open Mxra_core

(** Concurrency-control engine for a batch. *)
type isolation =
  | Si  (** Multi-version snapshot isolation, first-committer-wins. *)
  | Two_pl  (** Strict two-phase locking at relation granularity. *)

val default_isolation : unit -> isolation
(** [Si], unless the environment says [MXRA_ISOLATION=2pl]. *)

val isolation_of_string : string -> isolation option
(** ["si"] / ["2pl"] (case-insensitive). *)

val isolation_name : isolation -> string

type outcome =
  | Committed
  | Aborted of string
      (** Reason: a statement failure, the [abort_if] guard,
          [deadlock victim] (2PL) or [write-write conflict on R]
          (SI first-committer-wins). *)

type stats = {
  steps : int;  (** Statements executed (including undone ones). *)
  blocks : int;  (** Times a transaction had to wait for a lock (2PL). *)
  deadlocks : int;  (** Wait-for cycles broken by aborting a victim (2PL). *)
  conflicts : int;
      (** First-committer-wins validation failures (SI): transactions
          aborted because a write-set relation was committed by a
          concurrent transaction after their snapshot. *)
}

type result = {
  final : Database.t;
  outcomes : outcome list;  (** Per input transaction, in input order. *)
  commit_order : int list;
      (** Indices of committed transactions in commit order — under SI
          this is commit-timestamp order, the serial order schedules
          with write-covered reads are equivalent to. *)
  outputs : Relation.t list list;
      (** Per input transaction, the results of its [?E] statements in
          statement order; [[]] for aborted transactions — atomicity
          extends to the user channel.  What the CLI prints after a
          batch. *)
  query_ids : string list;
      (** Per input transaction, in input order: the query id minted at
          batch start ({!Mxra_obs.Qid}).  The same id is stamped on the
          transaction's trace spans and, by the CLI, into the WAL's
          begin/commit markers — the end-to-end correlation key. *)
  latencies_ms : float list;
      (** Per input transaction, in input order: wall milliseconds from
          its first scheduled step to its finish (0 when it never
          started).  Under 2PL this includes lock-wait time; the E19
          reader/writer bench is built on it. *)
  stats : stats;
}

val run :
  ?isolation:isolation ->
  ?schedule:int list ->
  ?on_step:(unit -> unit) ->
  seed:int ->
  Database.t ->
  Transaction.t list ->
  result
(** Execute the batch under an interleaving.  [seed] fully determines
    the schedule, so failures reproduce.  [schedule], when given, is a
    scripted prefix: each entry names the transaction to step next
    (entries naming finished — or, under 2PL, still-blocked —
    transactions are skipped); once exhausted, the seeded pseudo-random
    interleaving takes over.  The anomaly battery uses it to pin exact
    interleavings.  [isolation] defaults to {!default_isolation}.

    [on_step], when given, runs after every scheduling step — the
    deterministic stand-in for the wall-clock sampler cadence: a bench
    or test passes [fun () -> ignore (Mxra_obs.Ash.sample_now ())] and
    gets an ASH row per live transaction per step, independent of
    timing.  Each transaction also registers in the activity registry
    for the batch, so blocked transactions sample as [lock] waits,
    conflict aborts and settled lock waits push event rows, and the
    process-wide wait-class counters advance whether or not anyone
    samples. *)

val equivalent_serial : Database.t -> Transaction.t list -> result -> bool
(** The serialization check (the replay oracle the qcheck differential
    reuses): replaying the committed transactions serially in
    [commit_order] from the same initial state yields a state equal to
    [final].  Always true under 2PL; true under SI whenever read
    dependencies are covered by write sets (write skew is the
    documented exception — see [docs/CONCURRENCY.md]). *)

val check : Database.t -> Transaction.t list -> result -> bool
(** Alias of {!equivalent_serial}. *)

val telemetry : unit -> (string * float) list
(** Sampler probe over process-lifetime counters: [sched.steps],
    [sched.blocks], [sched.deadlocks], [sched.conflicts],
    [sched.commits], [sched.batches], [sched.lock_wait_ms] (2PL wait
    time), [txn.conflicts] (= sched.conflicts, the SI abort counter
    named from the transaction's point of view) and [txn.snapshot_age]
    (mean commits that landed between a committed SI transaction's
    snapshot and its own commit), summed across every batch run so
    far. *)
