open Mxra_relational
open Mxra_core
module Trace = Mxra_obs.Trace
module Qid = Mxra_obs.Qid
module Wait = Mxra_obs.Wait
module Ash = Mxra_obs.Ash

(* Process-lifetime counters for the resource sampler: cheap atomics,
   summed across every batch this process has run. *)
let total_steps = Atomic.make 0
let total_blocks = Atomic.make 0
let total_deadlocks = Atomic.make 0
let total_conflicts = Atomic.make 0
let total_commits = Atomic.make 0
let total_batches = Atomic.make 0

(* Wall time transactions spent blocked on locks, in microseconds —
   an int so one atomic add suffices. *)
let total_lock_wait_us = Atomic.make 0

(* Snapshot staleness at commit, summed over committed SI transactions:
   how many other commits landed between a transaction's snapshot and
   its own commit.  [txn.snapshot_age] reports the mean. *)
let total_snapshot_age = Atomic.make 0
let total_si_commits = Atomic.make 0

let telemetry () =
  let si_commits = Atomic.get total_si_commits in
  [
    ("sched.steps", float_of_int (Atomic.get total_steps));
    ("sched.blocks", float_of_int (Atomic.get total_blocks));
    ("sched.deadlocks", float_of_int (Atomic.get total_deadlocks));
    ("sched.conflicts", float_of_int (Atomic.get total_conflicts));
    ("sched.commits", float_of_int (Atomic.get total_commits));
    ("sched.batches", float_of_int (Atomic.get total_batches));
    ("sched.lock_wait_ms", float_of_int (Atomic.get total_lock_wait_us) /. 1000.0);
    ("txn.conflicts", float_of_int (Atomic.get total_conflicts));
    ( "txn.snapshot_age",
      float_of_int (Atomic.get total_snapshot_age)
      /. float_of_int (max 1 si_commits) );
  ]

type isolation =
  | Si
  | Two_pl

let isolation_name = function Si -> "si" | Two_pl -> "2pl"

let isolation_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "si" | "snapshot" | "mvcc" -> Some Si
  | "2pl" | "two_pl" | "locking" -> Some Two_pl
  | _ -> None

let default_isolation () =
  match Sys.getenv_opt "MXRA_ISOLATION" with
  | None -> Si
  | Some s -> ( match isolation_of_string s with Some i -> i | None -> Si)

type outcome =
  | Committed
  | Aborted of string

type stats = {
  steps : int;
  blocks : int;
  deadlocks : int;
  conflicts : int;
}

type result = {
  final : Database.t;
  outcomes : outcome list;
  commit_order : int list;
  outputs : Relation.t list list;
  query_ids : string list;
  latencies_ms : float list;
  stats : stats;
}

(* --- lock table (2PL engine) -------------------------------------------- *)

type lock_mode =
  | Shared
  | Exclusive

module Names = Map.Make (String)

type lock_state = {
  mode : lock_mode;
  holders : int list;  (* transaction indices *)
}

(* --- per-transaction execution state ------------------------------------ *)

type txn_status =
  | Running
  | Blocked of (string * lock_mode)  (* the lock it waits for (2PL) *)
  | Finished of outcome

type txn_exec = {
  txn : Transaction.t;
  index : int;
  qid : string;  (* minted per transaction; the correlation key *)
  ash : Ash.slot;  (* activity-registry entry, live for the batch *)
  mutable remaining : Statement.t list;
  mutable temps : (string * Relation.t) list;
  (* 2PL state: *)
  mutable held : (string * lock_mode) list;
  mutable before_images : Relation.t Names.t;  (* first-write backups *)
  (* SI state: *)
  mutable snapshot : Database.t option;  (* D^t captured at first step *)
  mutable snap_seq : int;  (* commit timestamp of that snapshot *)
  mutable writes : Relation.t Names.t;  (* private write overlay *)
  mutable status : txn_status;
  mutable outputs : Relation.t list;  (* ?E results, reversed *)
  mutable n_blocks : int;  (* this transaction's share of stats.blocks *)
  mutable started_us : float;  (* first scheduled step; nan before it *)
  mutable blocked_since : float;  (* lock-wait start (us); nan when runnable *)
  mutable latency_ms : float;  (* first step -> finish, wall ms *)
}

(* Close an open lock-wait interval: the wait runs from the first
   failed acquisition to the moment the transaction proceeds (locks
   granted) or dies (deadlock victim).  The time lands in the process
   counter and, via the transaction's qid, on the statement entry in
   {!Mxra_obs.Stmt_stats}. *)
let settle_wait t =
  if not (Float.is_nan t.blocked_since) then begin
    let wait_us = Trace.now_us () -. t.blocked_since in
    t.blocked_since <- Float.nan;
    ignore (Atomic.fetch_and_add total_lock_wait_us (int_of_float wait_us));
    Mxra_obs.Stmt_stats.add_lock_wait ~qid:t.qid (wait_us /. 1000.0);
    (* Close the ASH wait interval: one [lock] event row with the true
       duration, and the session samples as running again. *)
    let detail =
      match Ash.current_wait t.ash with Some (_, d) -> d | None -> ""
    in
    Ash.slot_event t.ash Wait.Lock ~detail ~dur_us:wait_us;
    Ash.set_wait t.ash None
  end

(* Relations a statement reads (expressions) and writes (the target). *)
let accesses stmt =
  match stmt with
  | Statement.Insert (name, e) | Statement.Delete (name, e) ->
      (Expr.relations e, Some name)
  | Statement.Update (name, e, _) -> (name :: Expr.relations e, Some name)
  | Statement.Assign (_, e) | Statement.Query e -> (Expr.relations e, None)

let mode_compatible existing requested =
  match (existing, requested) with
  | Shared, Shared -> true
  | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive -> false

(* --- the scheduler ------------------------------------------------------- *)

type scheduler = {
  isolation : isolation;
  mutable shared : Database.t;
  mutable locks : lock_state Names.t;
  (* SI bookkeeping: the batch's commit clock and, per relation, the
     commit timestamp of its last writer — all first-committer-wins
     validation needs at relation granularity. *)
  mutable commit_seq : int;
  mutable last_writer : int Names.t;
  txns : txn_exec array;
  mutable n_steps : int;
  mutable n_blocks : int;
  mutable n_deadlocks : int;
  mutable n_conflicts : int;
  mutable commits : int list;  (* reverse commit order *)
}

let holds t name mode =
  List.exists
    (fun (n, m) ->
      n = name && (m = mode || (m = Exclusive && mode = Shared)))
    t.held

(* Try to take one lock; true on success. *)
let try_lock sched t name mode =
  if holds t name mode then true
  else
    match Names.find_opt name sched.locks with
    | None ->
        sched.locks <- Names.add name { mode; holders = [ t.index ] } sched.locks;
        t.held <- (name, mode) :: t.held;
        true
    | Some state ->
        let others = List.filter (fun h -> h <> t.index) state.holders in
        if others = [] then begin
          (* Sole holder: possibly upgrade Shared -> Exclusive. *)
          let mode' =
            match (state.mode, mode) with
            | Exclusive, _ | _, Exclusive -> Exclusive
            | Shared, Shared -> Shared
          in
          sched.locks <- Names.add name { mode = mode'; holders = [ t.index ] } sched.locks;
          t.held <- (name, mode') :: List.remove_assoc name t.held;
          true
        end
        else if mode_compatible state.mode mode then begin
          sched.locks <-
            Names.add name
              { state with holders = t.index :: state.holders }
              sched.locks;
          t.held <- (name, mode) :: t.held;
          true
        end
        else false

(* Locks needed by the next statement of [t] (persistent relations only;
   temporaries are private). *)
let needed_locks sched t stmt =
  let is_temp name = List.mem_assoc name t.temps in
  let is_persistent name = Database.mem name sched.shared && not (is_temp name) in
  let reads, write = accesses stmt in
  let shared_needs =
    List.filter is_persistent reads
    |> List.filter (fun n -> Some n <> write)
    |> List.sort_uniq String.compare
  in
  let exclusive_needs =
    match write with Some n when is_persistent n -> [ n ] | _ -> []
  in
  List.map (fun n -> (n, Shared)) shared_needs
  @ List.map (fun n -> (n, Exclusive)) exclusive_needs

(* Wait-for: who currently blocks a (name, mode) request of [t]. *)
let blockers sched t (name, mode) =
  match Names.find_opt name sched.locks with
  | None -> []
  | Some state ->
      if mode_compatible state.mode mode && state.mode = Shared && mode = Shared
      then []
      else List.filter (fun h -> h <> t.index) state.holders

let rec wait_for_cycle sched visiting from =
  if List.mem from visiting then true
  else
    match sched.txns.(from).status with
    | Blocked want ->
        List.exists
          (fun holder -> wait_for_cycle sched (from :: visiting) holder)
          (blockers sched sched.txns.(from) want)
    | Running | Finished _ -> false

let release_locks sched t =
  List.iter
    (fun (name, _) ->
      match Names.find_opt name sched.locks with
      | None -> ()
      | Some state ->
          let holders = List.filter (fun h -> h <> t.index) state.holders in
          sched.locks <-
            (if holders = [] then Names.remove name sched.locks
             else Names.add name { state with holders } sched.locks))
    t.held;
  t.held <- [];
  (* Anyone waiting may be runnable again. *)
  Array.iter
    (fun other ->
      match other.status with
      | Blocked _ -> other.status <- Running
      | Running | Finished _ -> ())
    sched.txns

(* What transaction [t] sees.  Under 2PL the shared state is current by
   construction (locks serialize access); under SI the base is the
   immutable snapshot captured at the transaction's first step, overlaid
   with its private writes.  Temporaries go on top in both modes. *)
let view_of sched t =
  let base =
    match sched.isolation with
    | Two_pl -> sched.shared
    | Si -> (
        match t.snapshot with
        | Some snap -> Names.fold Database.set t.writes snap
        | None -> sched.shared)
  in
  List.fold_left
    (fun db (name, r) -> Database.assign_temporary name r db)
    base t.temps

let temporaries_of view =
  List.filter_map
    (fun name ->
      if Database.is_temporary name view then
        Some (name, Database.find name view)
      else None)
    (Database.relation_names view)

(* 2PL write absorption: the transaction's view *is* the next shared
   state (its writes are lock-protected). *)
let absorb sched t view =
  t.temps <- temporaries_of view;
  sched.shared <- Database.drop_temporaries view

(* SI write absorption: persistent effects stay in the private overlay
   until commit.  A statement changes at most its one write target, so
   that is the only relation to copy out of the post-state. *)
let si_absorb t view stmt =
  (match accesses stmt with
  | _, Some name when not (Database.is_temporary name view) ->
      t.writes <- Names.add name (Database.find name view) t.writes
  | _ -> ());
  t.temps <- temporaries_of view

let backup_before_write sched t stmt =
  match accesses stmt with
  | _, Some name when not (List.mem_assoc name t.temps) ->
      if Database.mem name sched.shared
         && not (Names.mem name t.before_images)
      then
        t.before_images <-
          Names.add name (Database.find name sched.shared) t.before_images
  | _, _ -> ()

let undo sched t =
  Names.iter
    (fun name r -> sched.shared <- Database.set name r sched.shared)
    t.before_images;
  t.before_images <- Names.empty;
  t.temps <- []

let finish sched t outcome =
  settle_wait t;
  (match outcome with
  | Committed ->
      sched.commits <- t.index :: sched.commits;
      Atomic.incr total_commits
  | Aborted _ ->
      undo sched t;
      t.writes <- Names.empty;
      (* Atomicity extends to the user channel: an aborted transaction
         sends nothing. *)
      t.outputs <- []);
  t.temps <- [];
  t.status <- Finished outcome;
  release_locks sched t;
  Ash.finish t.ash;
  if not (Float.is_nan t.started_us) then begin
    let dur_us = Trace.now_us () -. t.started_us in
    t.latency_ms <- dur_us /. 1000.0;
    if Trace.enabled () then
      Trace.complete "txn" ~tid:t.index ~start_us:t.started_us ~dur_us
        ~attrs:
          [
            ("name", Trace.Str t.txn.Transaction.name);
            (Qid.attr_key, Trace.Str t.qid);
            ( "outcome",
              Trace.Str
                (match outcome with
                | Committed -> "committed"
                | Aborted reason -> "aborted: " ^ reason) );
            ("blocks", Trace.Int t.n_blocks);
            ("statements", Trace.Int (List.length t.txn.Transaction.body));
          ]
  end

(* First-committer-wins validation and commit of an SI transaction: it
   may install its writes iff no write-set relation was committed by a
   concurrent transaction after its snapshot timestamp. *)
let si_try_commit sched t =
  let conflict =
    Names.fold
      (fun name _ found ->
        match found with
        | Some _ -> found
        | None -> (
            match Names.find_opt name sched.last_writer with
            | Some seq when seq > t.snap_seq -> Some name
            | _ -> None))
      t.writes None
  in
  match conflict with
  | Some name ->
      sched.n_conflicts <- sched.n_conflicts + 1;
      Atomic.incr total_conflicts;
      Mxra_obs.Stmt_stats.add_conflict ~qid:t.qid;
      (* A conflict abort is instantaneous, not an interval: the event
         row carries the relation that failed validation, duration 0. *)
      Ash.slot_event t.ash Wait.Conflict ~detail:name ~dur_us:0.0;
      Trace.event "txn.conflict" ~tid:t.index
        ~attrs:
          [
            ("relation", Trace.Str name);
            ("snapshot_age", Trace.Int (sched.commit_seq - t.snap_seq));
          ];
      finish sched t (Aborted ("write-write conflict on " ^ name))
  | None ->
      sched.commit_seq <- sched.commit_seq + 1;
      ignore
        (Atomic.fetch_and_add total_snapshot_age
           (sched.commit_seq - 1 - t.snap_seq));
      Atomic.incr total_si_commits;
      sched.shared <- Names.fold Database.set t.writes sched.shared;
      sched.last_writer <-
        Names.fold
          (fun name _ m -> Names.add name sched.commit_seq m)
          t.writes sched.last_writer;
      t.writes <- Names.empty;
      finish sched t Committed

(* Run one statement of [t] against its view (locks, if any, already
   granted) and absorb the effects per the isolation mode. *)
let execute_statement sched t stmt rest =
  settle_wait t;
  sched.n_steps <- sched.n_steps + 1;
  Atomic.incr total_steps;
  (match sched.isolation with
  | Two_pl -> backup_before_write sched t stmt
  | Si -> ());
  let stats_on = Mxra_obs.Stmt_stats.enabled () in
  let stmt_start =
    if Trace.enabled () || stats_on then Trace.now_us () else Float.nan
  in
  (* ASH samples of this session now attribute to the statement being
     run, not just the transaction wrapper. *)
  if Ash.live t.ash then
    Ash.set_statement t.ash ~lang:"txn" (Statement.to_string stmt);
  match Statement.exec (view_of sched t) stmt with
  | view', output ->
      (* A per-statement span carrying the transaction's query_id: the
         link between the JSONL query log and the WAL records stamped
         with the same id at commit. *)
      if Trace.enabled () then
        Trace.complete "statement" ~tid:t.index ~start_us:stmt_start
          ~dur_us:(Trace.now_us () -. stmt_start)
          ~attrs:
            [
              ("txn", Trace.Str t.txn.Transaction.name);
              ("text", Trace.Str (Statement.to_string stmt));
              (Qid.attr_key, Trace.Str t.qid);
            ];
      (* Fold the statement into the cumulative fingerprint registry
         under the transaction's qid, which also makes commit-time WAL
         bytes attributable to it. *)
      if stats_on then
        Mxra_obs.Stmt_stats.record ~qid:t.qid
          ~rows:(match output with Some r -> Relation.cardinal r | None -> 0)
          ~wall_ms:((Trace.now_us () -. stmt_start) /. 1000.0)
          (Statement.to_string stmt);
      (match output with
      | Some r -> t.outputs <- r :: t.outputs
      | None -> ());
      (match sched.isolation with
      | Two_pl -> absorb sched t view'
      | Si -> si_absorb t view' stmt);
      t.remaining <- rest
  | exception Statement.Exec_error msg -> finish sched t (Aborted msg)
  | exception Typecheck.Type_error msg -> finish sched t (Aborted msg)
  | exception Scalar.Eval_error msg -> finish sched t (Aborted msg)
  | exception Aggregate.Undefined kind ->
      finish sched t (Aborted (Aggregate.name kind ^ " of an empty multi-set"))
  | exception Database.Unknown_relation name ->
      finish sched t (Aborted ("unknown relation " ^ name))
  | exception Database.Duplicate_relation name ->
      finish sched t (Aborted ("duplicate relation " ^ name))
  | exception Relation.Schema_mismatch msg -> finish sched t (Aborted msg)

(* One scheduling step of transaction [t]: under SI run its next
   statement against the snapshot (no locks); under 2PL first acquire
   the statement's locks.  An empty statement list is the end bracket:
   guard, then commit (validated first-committer-wins under SI). *)
let step sched t =
  if Float.is_nan t.started_us then t.started_us <- Trace.now_us ();
  (if sched.isolation = Si && t.snapshot = None then begin
     (* Begin: capture the immutable D^t and its commit timestamp. *)
     t.snapshot <- Some sched.shared;
     t.snap_seq <- sched.commit_seq
   end);
  match t.remaining with
  | [] ->
      let guard_fires =
        match t.txn.Transaction.abort_if with
        | None -> false
        | Some cond -> (
            match cond (view_of sched t) with
            | fires -> fires
            | exception _ -> true)
      in
      if guard_fires then finish sched t (Aborted "abort_if condition held")
      else (
        match sched.isolation with
        | Two_pl -> finish sched t Committed
        | Si -> si_try_commit sched t)
  | stmt :: rest -> (
      match sched.isolation with
      | Si -> execute_statement sched t stmt rest
      | Two_pl -> (
          let wanted = needed_locks sched t stmt in
          let missing =
            List.filter (fun (n, m) -> not (try_lock sched t n m)) wanted
          in
          match missing with
          | (want_name, want_mode) :: _ ->
              sched.n_blocks <- sched.n_blocks + 1;
              t.n_blocks <- t.n_blocks + 1;
              Atomic.incr total_blocks;
              Trace.event "lock.wait" ~tid:t.index
                ~attrs:
                  [
                    ("relation", Trace.Str want_name);
                    ( "mode",
                      Trace.Str
                        (match want_mode with
                        | Shared -> "shared"
                        | Exclusive -> "exclusive") );
                  ];
              t.status <- Blocked (want_name, want_mode);
              if Float.is_nan t.blocked_since then
                t.blocked_since <- Trace.now_us ();
              Ash.set_wait t.ash (Some (Wait.Lock, want_name));
              if wait_for_cycle sched [] t.index then begin
                sched.n_deadlocks <- sched.n_deadlocks + 1;
                Atomic.incr total_deadlocks;
                Trace.event "lock.deadlock" ~tid:t.index
                  ~attrs:[ ("relation", Trace.Str want_name) ];
                finish sched t (Aborted "deadlock victim")
              end
          | [] -> execute_statement sched t stmt rest))

let run ?isolation ?schedule ?(on_step = fun () -> ()) ~seed db txns =
  let isolation =
    match isolation with Some i -> i | None -> default_isolation ()
  in
  let rng = Mxra_workload.Rng.make seed in
  Atomic.incr total_batches;
  let sched =
    {
      isolation;
      shared = db;
      locks = Names.empty;
      commit_seq = 0;
      last_writer = Names.empty;
      txns =
        Array.of_list
          (List.mapi
             (fun index txn ->
               let qid = Qid.mint () in
               {
                 txn;
                 index;
                 qid;
                 ash =
                   Ash.register ~lang:"txn" ~text:txn.Transaction.name ~qid ();
                 remaining = txn.Transaction.body;
                 temps = [];
                 held = [];
                 before_images = Names.empty;
                 snapshot = None;
                 snap_seq = 0;
                 writes = Names.empty;
                 status = Running;
                 outputs = [];
                 n_blocks = 0;
                 started_us = Float.nan;
                 blocked_since = Float.nan;
                 latency_ms = 0.0;
               })
             txns);
      n_steps = 0;
      n_blocks = 0;
      n_deadlocks = 0;
      n_conflicts = 0;
      commits = [];
    }
  in
  let runnable () =
    Array.to_list sched.txns
    |> List.filter (fun t ->
           match t.status with
           | Running -> true
           | Blocked want ->
               (* Re-check availability lazily. *)
               blockers sched t want = []
           | Finished _ -> false)
  in
  (* Scripted prefix of the interleaving (the anomaly battery pins exact
     schedules with it); entries naming unready transactions are
     skipped, and the seeded rng takes over once it runs out. *)
  let scripted = ref (Option.value schedule ~default:[]) in
  let pick candidates =
    let rec next () =
      match !scripted with
      | [] -> Mxra_workload.Rng.pick rng candidates
      | i :: rest -> (
          scripted := rest;
          match List.find_opt (fun t -> t.index = i) candidates with
          | Some t -> t
          | None -> next ())
    in
    next ()
  in
  let rec loop () =
    match runnable () with
    | [] ->
        (* Everything finished, or every live transaction is blocked —
           the latter is a deadlock the cycle detector should have
           broken; break it defensively by aborting one. *)
        let live =
          Array.to_list sched.txns
          |> List.filter (fun t ->
                 match t.status with
                 | Finished _ -> false
                 | Running | Blocked _ -> true)
        in
        (match live with
        | [] -> ()
        | victim :: _ ->
            sched.n_deadlocks <- sched.n_deadlocks + 1;
            Atomic.incr total_deadlocks;
            Trace.event "lock.deadlock" ~tid:victim.index;
            finish sched victim (Aborted "deadlock victim");
            loop ())
    | candidates ->
        let t = pick candidates in
        t.status <- Running;
        step sched t;
        on_step ();
        loop ()
  in
  Trace.with_span "scheduler.batch"
    ~attrs:
      [
        ("txns", Trace.Int (List.length txns));
        ("isolation", Trace.Str (isolation_name isolation));
      ]
    (fun () ->
      loop ();
      Trace.add_attr "steps" (Trace.Int sched.n_steps);
      Trace.add_attr "blocks" (Trace.Int sched.n_blocks);
      Trace.add_attr "conflicts" (Trace.Int sched.n_conflicts);
      Trace.add_attr "deadlocks" (Trace.Int sched.n_deadlocks));
  (* Advance the clock once per transaction, matching run_all. *)
  let final =
    List.fold_left
      (fun db _ -> Database.tick db)
      sched.shared
      (List.init (List.length txns) Fun.id)
  in
  {
    final;
    outcomes =
      Array.to_list sched.txns
      |> List.map (fun t ->
             match t.status with
             | Finished outcome -> outcome
             | Running | Blocked _ -> Aborted "scheduler ended early");
    commit_order = List.rev sched.commits;
    outputs =
      Array.to_list sched.txns |> List.map (fun t -> List.rev t.outputs);
    query_ids = Array.to_list sched.txns |> List.map (fun t -> t.qid);
    latencies_ms =
      Array.to_list sched.txns |> List.map (fun t -> t.latency_ms);
    stats =
      {
        steps = sched.n_steps;
        blocks = sched.n_blocks;
        deadlocks = sched.n_deadlocks;
        conflicts = sched.n_conflicts;
      };
  }

let equivalent_serial db txns result =
  let committed =
    List.map (List.nth txns) result.commit_order
  in
  let serial, outcomes = Transaction.run_all db committed in
  List.for_all Transaction.committed outcomes
  && Database.equal_states serial result.final

let check = equivalent_serial
