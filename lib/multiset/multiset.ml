(* Finite multisets as maps to strictly positive counts.  The invariant
   that no stored count is <= 0 is enforced at every constructor; all
   pointwise operations rely on it. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type elt
  type t

  val empty : t
  val singleton : elt -> t
  val add : ?count:int -> elt -> t -> t
  val remove : ?count:int -> elt -> t -> t
  val remove_all : elt -> t -> t
  val set_count : elt -> int -> t -> t
  val of_list : elt list -> t
  val of_counted_list : (elt * int) list -> t
  val of_seq : elt Seq.t -> t
  val of_counted_seq : (elt * int) Seq.t -> t
  val multiplicity : elt -> t -> int
  val mem : elt -> t -> bool
  val is_empty : t -> bool
  val cardinal : t -> int
  val support_size : t -> int
  val choose_opt : t -> (elt * int) option
  val min_elt_opt : t -> elt option
  val max_elt_opt : t -> elt option
  val equal : t -> t -> bool
  val subset : t -> t -> bool
  val compare : t -> t -> int
  val disjoint : t -> t -> bool
  val sum : t -> t -> t
  val diff : t -> t -> t
  val inter : t -> t -> t
  val union_max : t -> t -> t
  val distinct : t -> t
  val scale : int -> t -> t
  val fold : (elt -> int -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (elt -> int -> unit) -> t -> unit
  val map : (elt -> elt) -> t -> t
  val map_counted : (elt -> int -> elt * int) -> t -> t
  val filter : (elt -> bool) -> t -> t
  val filter_counted : (elt -> int -> bool) -> t -> t
  val partition : (elt -> bool) -> t -> t * t
  val for_all : (elt -> bool) -> t -> bool
  val exists : (elt -> bool) -> t -> bool
  val to_counted_list : t -> (elt * int) list
  val to_list : t -> elt list
  val to_counted_seq : t -> (elt * int) Seq.t
  val to_seq : t -> elt Seq.t
  val support : t -> elt list
  val pp : Format.formatter -> t -> unit
end

module Make (Elt : ORDERED) : S with type elt = Elt.t = struct
  module M = Map.Make (Elt)

  type elt = Elt.t
  type t = int M.t

  let empty = M.empty
  let singleton x = M.singleton x 1

  let check_positive name count =
    if count <= 0 then
      invalid_arg (Printf.sprintf "Multiset.%s: count %d <= 0" name count)

  let add ?(count = 1) x m =
    check_positive "add" count;
    M.update x
      (function None -> Some count | Some n -> Some (n + count))
      m

  let remove ?(count = 1) x m =
    check_positive "remove" count;
    M.update x
      (function
        | None -> None
        | Some n -> if n > count then Some (n - count) else None)
      m

  let remove_all x m = M.remove x m

  let set_count x n m =
    if n < 0 then invalid_arg "Multiset.set_count: negative count";
    if n = 0 then M.remove x m else M.add x n m

  let of_list xs = List.fold_left (fun m x -> add x m) empty xs

  (* Multisets are maps to ℕ (Definition 2.1): an entry with
     multiplicity 0 denotes absence, so listing one is legal and adds
     nothing.  Only negative counts are invalid. *)
  let add_counted m (x, n) =
    if n < 0 then
      invalid_arg (Printf.sprintf "Multiset.of_counted: count %d < 0" n)
    else if n = 0 then m
    else add ~count:n x m

  let of_counted_list xs = List.fold_left add_counted empty xs
  let of_seq s = Seq.fold_left (fun m x -> add x m) empty s
  let of_counted_seq s = Seq.fold_left add_counted empty s

  let multiplicity x m = match M.find_opt x m with None -> 0 | Some n -> n
  let mem x m = M.mem x m
  let is_empty m = M.is_empty m
  let cardinal m = M.fold (fun _ n acc -> acc + n) m 0
  let support_size m = M.cardinal m
  let choose_opt m = M.choose_opt m

  let min_elt_opt m = Option.map fst (M.min_binding_opt m)
  let max_elt_opt m = Option.map fst (M.max_binding_opt m)

  let equal m1 m2 = M.equal Int.equal m1 m2

  let subset m1 m2 =
    M.for_all (fun x n -> n <= multiplicity x m2) m1

  let compare m1 m2 = M.compare Int.compare m1 m2

  let disjoint m1 m2 = M.for_all (fun x _ -> not (M.mem x m2)) m1

  let sum m1 m2 =
    M.union (fun _ n1 n2 -> Some (n1 + n2)) m1 m2

  (* Monus: merge keeps only keys with a positive remainder. *)
  let diff m1 m2 =
    M.merge
      (fun _ n1 n2 ->
        match (n1, n2) with
        | None, _ -> None
        | Some n1, None -> Some n1
        | Some n1, Some n2 -> if n1 > n2 then Some (n1 - n2) else None)
      m1 m2

  let inter m1 m2 =
    M.merge
      (fun _ n1 n2 ->
        match (n1, n2) with
        | Some n1, Some n2 -> Some (min n1 n2)
        | None, _ | _, None -> None)
      m1 m2

  let union_max m1 m2 = M.union (fun _ n1 n2 -> Some (max n1 n2)) m1 m2
  let distinct m = M.map (fun _ -> 1) m

  let scale k m =
    if k < 0 then invalid_arg "Multiset.scale: negative factor";
    if k = 0 then empty else M.map (fun n -> n * k) m

  let fold f m acc = M.fold f m acc
  let iter f m = M.iter f m

  let map f m =
    M.fold (fun x n acc -> add ~count:n (f x) acc) m empty

  let map_counted f m =
    M.fold
      (fun x n acc ->
        let y, k = f x n in
        check_positive "map_counted" k;
        add ~count:k y acc)
      m empty

  let filter p m = M.filter (fun x _ -> p x) m
  let filter_counted p m = M.filter p m
  let partition p m = M.partition (fun x _ -> p x) m
  let for_all p m = M.for_all (fun x _ -> p x) m
  let exists p m = M.exists (fun x _ -> p x) m
  let to_counted_list m = M.bindings m

  let to_list m =
    List.concat_map
      (fun (x, n) -> List.init n (fun _ -> x))
      (M.bindings m)

  let to_counted_seq m = M.to_seq m

  let to_seq m =
    Seq.concat_map
      (fun (x, n) -> Seq.init n (fun _ -> x))
      (M.to_seq m)

  let support m = List.map fst (M.bindings m)

  let pp ppf m =
    let pp_entry ppf (x, n) =
      if n = 1 then Elt.pp ppf x
      else Format.fprintf ppf "%a:%d" Elt.pp x n
    in
    Format.fprintf ppf "{|@[<hov 1>%a@]|}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_entry)
      (M.bindings m)
end
