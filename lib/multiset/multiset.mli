(** Finite multisets (bags) over a totally ordered element type.

    A multiset over elements of type ['a] is a function from ['a] to the
    natural numbers with finite support (Definition 2.2 of Grefen & de By,
    ICDE 1994: a relation instance is a function [dom(R) -> N]).  The value
    of the function at [x] is called the {e multiplicity} of [x].

    The implementation stores only elements of strictly positive
    multiplicity in a balanced map, so a bag holding a single element a
    million times costs one map node.  All operations preserve the
    invariant that stored multiplicities are [> 0].

    The operation names follow the paper: [sum] is the additive bag union
    [⊎], [diff] is the monus difference, [inter] takes pointwise minima,
    and [subset] is the multi-subset relation [⊑] of Definition 2.3. *)

(** Input signature: a totally ordered element type. *)
module type ORDERED = sig
  type t

  val compare : t -> t -> int
  (** A total order; [compare] must be compatible with the intended
      element equality. *)

  val pp : Format.formatter -> t -> unit
  (** Printer used by the bag printer. *)
end

(** Output signature of {!Make}. *)
module type S = sig
  type elt
  (** The element type. *)

  type t
  (** An immutable finite multiset of [elt]. *)

  (** {1 Construction} *)

  val empty : t
  (** The multiset with all multiplicities zero. *)

  val singleton : elt -> t
  (** [singleton x] has multiplicity 1 at [x] and 0 elsewhere. *)

  val add : ?count:int -> elt -> t -> t
  (** [add ~count x m] increases the multiplicity of [x] by [count]
      (default 1).  @raise Invalid_argument if [count <= 0]. *)

  val remove : ?count:int -> elt -> t -> t
  (** [remove ~count x m] decreases the multiplicity of [x] by [count]
      (default 1), saturating at zero (monus on a point).
      @raise Invalid_argument if [count <= 0]. *)

  val remove_all : elt -> t -> t
  (** [remove_all x m] sets the multiplicity of [x] to zero. *)

  val set_count : elt -> int -> t -> t
  (** [set_count x n m] sets the multiplicity of [x] to [n].
      @raise Invalid_argument if [n < 0]. *)

  val of_list : elt list -> t
  (** Bag of a list; duplicates in the list accumulate. *)

  val of_counted_list : (elt * int) list -> t
  (** Bag of [(element, multiplicity)] pairs; repeated elements
      accumulate.  A pair with multiplicity [0] denotes absence
      (Definition 2.1: multisets map to ℕ) and contributes nothing.
      @raise Invalid_argument on a negative multiplicity. *)

  val of_seq : elt Seq.t -> t
  (** Bag of a sequence; duplicates accumulate. *)

  val of_counted_seq : (elt * int) Seq.t -> t
  (** Like {!of_counted_list} for sequences. *)

  (** {1 Observation} *)

  val multiplicity : elt -> t -> int
  (** [multiplicity x m] is [m(x)], i.e. [R(x)] in the paper; zero when
      [x] is not in the bag. *)

  val mem : elt -> t -> bool
  (** [mem x m] iff [multiplicity x m > 0] (Definition 2.4: [r ∈ R]). *)

  val is_empty : t -> bool

  val cardinal : t -> int
  (** Total number of elements counted with multiplicity (the CNT
      aggregate of Definition 3.3 on this bag). *)

  val support_size : t -> int
  (** Number of distinct elements (cardinality after duplicate
      elimination [δ]). *)

  val choose_opt : t -> (elt * int) option
  (** An arbitrary element with its multiplicity, or [None] if empty. *)

  val min_elt_opt : t -> elt option
  (** Least element of the support w.r.t. the element order. *)

  val max_elt_opt : t -> elt option
  (** Greatest element of the support. *)

  (** {1 Comparisons (Definition 2.3)} *)

  val equal : t -> t -> bool
  (** Pointwise equality of multiplicity functions. *)

  val subset : t -> t -> bool
  (** [subset m1 m2] is the multi-subset [m1 ⊑ m2]: every multiplicity in
      [m1] is bounded by the one in [m2]. *)

  val compare : t -> t -> int
  (** A total order extending [equal] (for use in maps/sets of bags). *)

  val disjoint : t -> t -> bool
  (** No element has positive multiplicity in both. *)

  (** {1 Bag algebra} *)

  val sum : t -> t -> t
  (** Additive union [⊎] of Definition 3.1: multiplicities add. *)

  val diff : t -> t -> t
  (** Monus difference of Definition 3.1:
      [(diff m1 m2)(x) = max 0 (m1(x) - m2(x))]. *)

  val inter : t -> t -> t
  (** Intersection of Definition 3.2: pointwise minimum.  Theorem 3.1
      states [inter m1 m2 = diff m1 (diff m1 m2)]; a property test checks
      this. *)

  val union_max : t -> t -> t
  (** Pointwise maximum.  Not part of the paper's algebra (the paper
      deliberately avoids multiple union variants, cf. its discussion of
      Albert's proposals) but provided for completeness of the bag
      lattice; [inter] and [union_max] form a distributive lattice. *)

  val distinct : t -> t
  (** Duplicate elimination [δ] of Definition 3.4: every positive
      multiplicity becomes 1. *)

  val scale : int -> t -> t
  (** [scale k m] multiplies every multiplicity by [k >= 0]; [scale 0]
      is [empty].  @raise Invalid_argument if [k < 0]. *)

  (** {1 Traversal and transformation} *)

  val fold : (elt -> int -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over the support in increasing element order, with
      multiplicities. *)

  val iter : (elt -> int -> unit) -> t -> unit

  val map : (elt -> elt) -> t -> t
  (** [map f m] applies [f] to each element; images that collide
      accumulate multiplicity, exactly like the paper's projection [π] on
      bags (no duplicate elimination). *)

  val map_counted : (elt -> int -> elt * int) -> t -> t
  (** Transform both element and multiplicity; result multiplicities must
      be [> 0] and colliding images accumulate.
      @raise Invalid_argument if a produced multiplicity is [<= 0]. *)

  val filter : (elt -> bool) -> t -> t
  (** Selection [σ]: keep elements satisfying the predicate with their
      multiplicities. *)

  val filter_counted : (elt -> int -> bool) -> t -> t

  val partition : (elt -> bool) -> t -> t * t

  val for_all : (elt -> bool) -> t -> bool
  (** Over the support. *)

  val exists : (elt -> bool) -> t -> bool
  (** Over the support. *)

  val to_counted_list : t -> (elt * int) list
  (** Support with multiplicities, in increasing element order. *)

  val to_list : t -> elt list
  (** Expanded representation: each element repeated [m(x)] times, in
      increasing element order.  Linear in {!cardinal}. *)

  val to_counted_seq : t -> (elt * int) Seq.t

  val to_seq : t -> elt Seq.t
  (** Expanded sequence, lazy. *)

  val support : t -> elt list
  (** Distinct elements in increasing order. *)

  (** {1 Printing} *)

  val pp : Format.formatter -> t -> unit
  (** Prints as [{| x, y:3, z |}] where [:n] marks multiplicities > 1. *)
end

module Make (Elt : ORDERED) : S with type elt = Elt.t
(** Build a multiset module over the ordered type [Elt]. *)
