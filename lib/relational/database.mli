(** Database schemas, instances and transitions (Definitions 2.5–2.6).

    A database schema is a set of relation schemas; relations are
    addressed by name.  A database instance (or {e state}) assigns each
    named schema a relation instance.  States carry a {e logical time}
    and a single-step transition is an ordered pair of successive states
    — transactions (Definition 4.3) are exactly operators inducing such
    transitions.

    The catalog is a persistent map, so taking the "before" state of a
    transaction is O(1) and abort is a no-op: the bracket semantics of
    Definition 4.3 falls out of immutability.

    Temporary relations introduced by assignment statements live in the
    same catalog but are flagged, so the transaction end-bracket can drop
    them (the paper: "if the transaction can commit, temporary relations
    are removed"). *)

type t
(** A database state: named relations plus a logical time. *)

exception Unknown_relation of string
(** Raised when addressing a name absent from the catalog. *)

exception Duplicate_relation of string
(** Raised when creating a relation under an existing name. *)

exception Unknown_index of string
(** Raised when addressing an index name absent from the catalog. *)

exception Duplicate_index of string
(** Raised when creating an index under an existing index name. *)

(** {1 Construction} *)

val empty : t
(** No relations, logical time 0. *)

val create : string -> Schema.t -> t -> t
(** Add an empty persistent relation.
    @raise Duplicate_relation if the name is taken. *)

val create_with : string -> Relation.t -> t -> t
(** Add a persistent relation with initial contents.
    @raise Duplicate_relation if the name is taken. *)

val of_relations : (string * Relation.t) list -> t
(** Fresh database holding the given persistent relations.
    @raise Duplicate_relation on a repeated name. *)

(** {1 Catalog access} *)

val mem : string -> t -> bool

val find : string -> t -> Relation.t
(** @raise Unknown_relation if absent. *)

val find_opt : string -> t -> Relation.t option

val schema_of : string -> t -> Schema.t
(** @raise Unknown_relation if absent. *)

val set : string -> Relation.t -> t -> t
(** Replace the contents of an existing relation ([←] in Definition 4.1).
    The new contents must have a schema compatible with the old one.
    @raise Unknown_relation if absent.
    @raise Relation.Schema_mismatch on incompatible contents. *)

val assign_temporary : string -> Relation.t -> t -> t
(** Bind a temporary relation (assignment statement [R := E],
    Definition 4.1: "a new and implicitly defined relational variable").
    Rebinding an existing temporary replaces it;
    @raise Duplicate_relation when the name denotes a persistent
    relation. *)

val is_temporary : string -> t -> bool
(** @raise Unknown_relation if absent. *)

val drop : string -> t -> t
(** Remove a relation (persistent or temporary).
    @raise Unknown_relation if absent. *)

val drop_temporaries : t -> t
(** Remove all temporary relations — the commit half of the transaction
    end-bracket. *)

(** {1 Secondary indexes}

    Index {e definitions} live in the catalog; the index {e structures}
    themselves are derived data maintained outside this module (see
    [Mxra_ext.Index]).  Because states are persistent values, an aborted
    transaction's definitions vanish with the state that carried them —
    no compensation logic needed. *)

(** Access-path shape of an index: hash for equality probes, ordered
    (single column) for range scans. *)
type index_kind = Hash | Ordered

type index_def = {
  idx_name : string;
  idx_rel : string;  (** Indexed relation. *)
  idx_cols : int list;  (** 1-based attribute positions ([%i]). *)
  idx_kind : index_kind;
}

val create_index :
  name:string -> rel:string -> cols:int list -> kind:index_kind -> t -> t
(** Register a secondary index definition.
    @raise Duplicate_index if the index name is taken.
    @raise Unknown_relation if [rel] is absent.
    @raise Invalid_argument on a temporary relation, an empty or
    out-of-range column list, or a multi-column ordered index. *)

val drop_index : string -> t -> t
(** @raise Unknown_index if absent. *)

val find_index : string -> t -> index_def
(** @raise Unknown_index if absent. *)

val find_index_opt : string -> t -> index_def option

val index_defs : t -> index_def list
(** All index definitions, sorted by index name. *)

val indexes_on : string -> t -> index_def list
(** Definitions over one relation, sorted by index name.  Dropping the
    relation drops them. *)

val relation_names : t -> string list
(** All names, sorted; temporaries included. *)

val persistent_names : t -> string list

val schemas : t -> (string * Schema.t) list
(** The database schema [𝒟] (persistent relations only). *)

(** {1 Logical time (Definition 2.6)} *)

val logical_time : t -> int

val tick : t -> t
(** Advance logical time by one; used by the transaction machinery to
    install [D_{t+1}]. *)

(** {1 Comparison and printing} *)

val same_schema : t -> t -> bool
(** Same persistent names with compatible schemas — both states inhabit
    the same database universe [U_𝒟]. *)

val equal_states : t -> t -> bool
(** Equality of persistent relation contents (logical time ignored);
    the correctness notion for atomicity tests ("D remains unchanged"). *)

val pp : Format.formatter -> t -> unit
