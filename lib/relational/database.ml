module Catalog = Map.Make (String)

type entry = {
  relation : Relation.t;
  temporary : bool;
}

type index_kind = Hash | Ordered

type index_def = {
  idx_name : string;
  idx_rel : string;
  idx_cols : int list;
  idx_kind : index_kind;
}

type t = {
  catalog : entry Catalog.t;
  indexes : index_def Catalog.t;
  time : int;
}

exception Unknown_relation of string
exception Duplicate_relation of string
exception Unknown_index of string
exception Duplicate_index of string

let empty = { catalog = Catalog.empty; indexes = Catalog.empty; time = 0 }

let find_entry name db =
  match Catalog.find_opt name db.catalog with
  | Some e -> e
  | None -> raise (Unknown_relation name)

let create_with name relation db =
  if Catalog.mem name db.catalog then raise (Duplicate_relation name);
  { db with catalog = Catalog.add name { relation; temporary = false } db.catalog }

let create name schema db = create_with name (Relation.empty schema) db

let of_relations bindings =
  List.fold_left (fun db (name, r) -> create_with name r db) empty bindings

let mem name db = Catalog.mem name db.catalog
let find name db = (find_entry name db).relation
let find_opt name db =
  Option.map (fun e -> e.relation) (Catalog.find_opt name db.catalog)

let schema_of name db = Relation.schema (find name db)

let set name relation db =
  let e = find_entry name db in
  if not (Schema.compatible (Relation.schema e.relation) (Relation.schema relation))
  then
    raise
      (Relation.Schema_mismatch
         (Printf.sprintf "Database.set: new contents of %s change its schema"
            name));
  { db with catalog = Catalog.add name { e with relation } db.catalog }

let assign_temporary name relation db =
  (match Catalog.find_opt name db.catalog with
  | Some { temporary = false; _ } -> raise (Duplicate_relation name)
  | Some { temporary = true; _ } | None -> ());
  { db with catalog = Catalog.add name { relation; temporary = true } db.catalog }

let is_temporary name db = (find_entry name db).temporary

let drop name db =
  if not (Catalog.mem name db.catalog) then raise (Unknown_relation name);
  {
    db with
    catalog = Catalog.remove name db.catalog;
    (* An index without its relation is meaningless: drop them together. *)
    indexes = Catalog.filter (fun _ d -> d.idx_rel <> name) db.indexes;
  }

let drop_temporaries db =
  { db with catalog = Catalog.filter (fun _ e -> not e.temporary) db.catalog }

(* --- secondary index definitions ---------------------------------------- *)

let create_index ~name ~rel ~cols ~kind db =
  if Catalog.mem name db.indexes then raise (Duplicate_index name);
  let e =
    match Catalog.find_opt rel db.catalog with
    | Some e -> e
    | None -> raise (Unknown_relation rel)
  in
  if e.temporary then
    invalid_arg
      (Printf.sprintf "Database.create_index: %s is a temporary relation" rel);
  let arity = Schema.arity (Relation.schema e.relation) in
  if cols = [] then invalid_arg "Database.create_index: empty column list";
  List.iter
    (fun c ->
      if c < 1 || c > arity then
        invalid_arg
          (Printf.sprintf "Database.create_index: column %%%d out of range for %s"
             c rel))
    cols;
  (match kind with
  | Ordered when List.length cols <> 1 ->
      invalid_arg "Database.create_index: ordered indexes take exactly one column"
  | Hash | Ordered -> ());
  let def = { idx_name = name; idx_rel = rel; idx_cols = cols; idx_kind = kind } in
  { db with indexes = Catalog.add name def db.indexes }

let drop_index name db =
  if not (Catalog.mem name db.indexes) then raise (Unknown_index name);
  { db with indexes = Catalog.remove name db.indexes }

let find_index name db =
  match Catalog.find_opt name db.indexes with
  | Some d -> d
  | None -> raise (Unknown_index name)

let find_index_opt name db = Catalog.find_opt name db.indexes
let index_defs db = List.map snd (Catalog.bindings db.indexes)

let indexes_on rel db =
  Catalog.bindings db.indexes
  |> List.filter_map (fun (_, d) -> if d.idx_rel = rel then Some d else None)

let relation_names db = List.map fst (Catalog.bindings db.catalog)

let persistent_names db =
  Catalog.bindings db.catalog
  |> List.filter_map (fun (name, e) -> if e.temporary then None else Some name)

let schemas db =
  Catalog.bindings db.catalog
  |> List.filter_map (fun (name, e) ->
         if e.temporary then None
         else Some (name, Relation.schema e.relation))

let logical_time db = db.time
let tick db = { db with time = db.time + 1 }

let same_schema db1 db2 =
  let s1 = schemas db1 and s2 = schemas db2 in
  List.length s1 = List.length s2
  && List.for_all2
       (fun (n1, sc1) (n2, sc2) -> n1 = n2 && Schema.compatible sc1 sc2)
       s1 s2

let equal_states db1 db2 =
  same_schema db1 db2
  && List.for_all
       (fun name -> Relation.equal (find name db1) (find name db2))
       (persistent_names db1)

let pp ppf db =
  Format.fprintf ppf "@[<v>database at t=%d:@," db.time;
  List.iter
    (fun (name, e) ->
      Format.fprintf ppf "  %s%s %a (%d tuples)@," name
        (if e.temporary then " [temp]" else "")
        Schema.pp
        (Relation.schema e.relation)
        (Relation.cardinal e.relation))
    (Catalog.bindings db.catalog);
  List.iter
    (fun (_, d) ->
      Format.fprintf ppf "  index %s on %s (%s) %s@," d.idx_name d.idx_rel
        (String.concat ", "
           (List.map (fun c -> Printf.sprintf "%%%d" c) d.idx_cols))
        (match d.idx_kind with Hash -> "hash" | Ordered -> "ordered"))
    (Catalog.bindings db.indexes);
  Format.fprintf ppf "@]"
