(** Multi-set relations (Definitions 2.2–2.4).

    A relation instance of schema [R] is a multiset of elements of
    [dom(R)], i.e. a function [dom(R) → ℕ] with finite support.  This
    module pairs a {!Schema.t} with a bag of tuples and enforces that
    every stored tuple belongs to the schema's domain.

    {!Bag} is the underlying tuple multiset, exposed because the
    execution engine streams counted tuples in and out of it. *)

module Bag : Mxra_multiset.Multiset.S with type elt = Tuple.t
(** Bags of tuples, ordered by {!Tuple.compare}. *)

type t
(** A relation instance: a schema plus a bag of tuples of that schema. *)

exception Schema_mismatch of string
(** Raised when a tuple does not belong to the relation's schema domain,
    or when an operation is applied to relations of incompatible
    schemas. *)

(** {1 Construction} *)

val empty : Schema.t -> t

val of_bag : Schema.t -> Bag.t -> t
(** @raise Schema_mismatch if some tuple is not in [dom(schema)]. *)

val of_bag_unchecked : Schema.t -> Bag.t -> t
(** Trusted constructor for operators whose typing rules already
    guarantee domain membership (the evaluator and engine use this on
    their hot paths).  Feeding it ill-domained tuples breaks the
    representation invariant. *)

val of_list : Schema.t -> Tuple.t list -> t
(** @raise Schema_mismatch on an ill-domained tuple. *)

val of_counted_list : Schema.t -> (Tuple.t * int) list -> t
(** A tuple listed with multiplicity [0] is simply absent.
    @raise Schema_mismatch on an ill-domained tuple.
    @raise Invalid_argument on a negative multiplicity. *)

val add : ?count:int -> Tuple.t -> t -> t
(** @raise Schema_mismatch on an ill-domained tuple. *)

(** {1 Observation} *)

val schema : t -> Schema.t
val bag : t -> Bag.t

val multiplicity : Tuple.t -> t -> int
(** [R(x)] — zero for tuples outside the relation (including tuples
    outside the schema domain). *)

val mem : Tuple.t -> t -> bool
(** Definition 2.4: [r ∈ R ⟺ R(r) > 0]. *)

val cardinal : t -> int
(** Tuple count with multiplicities. *)

val support_size : t -> int
(** Distinct tuple count. *)

val is_empty : t -> bool

val to_counted_list : t -> (Tuple.t * int) list
val to_list : t -> Tuple.t list

(** {1 Comparison (Definition 2.3)} *)

val equal : t -> t -> bool
(** Multiplicity-function equality.
    @raise Schema_mismatch on incompatible schemas. *)

val subset : t -> t -> bool
(** The multi-subset relation [⊑].
    @raise Schema_mismatch on incompatible schemas. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Schema header plus the bag of tuples. *)

val pp_table : Format.formatter -> t -> unit
(** ASCII table with a multiplicity column, for the REPL and examples. *)

val to_string : t -> string
