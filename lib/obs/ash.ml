(* Live statement activity and the Active Session History.

   Two structures behind one mutex:

   - the {e activity registry}: one slot per in-flight statement or
     transaction, keyed by qid, carrying fingerprint, start time, the
     operator currently producing chunks, progress counters (rows and
     chunks out of the plan root, advanced from the executor's chunk
     loop) and the current wait state.  Registration and removal take
     the lock; the per-chunk hot path ([advance], [set_operator]) is
     plain mutable stores on the caller's own slot — racy reads by the
     sampler are deliberate, a glance must not cost a lock.

   - the {e ASH ring}: a bounded buffer of samples.  Rows arrive two
     ways.  The sampler thread (or any caller of [sample_now])
     snapshots every live slot on its cadence — a running statement
     samples as [cpu.exec] on its current operator, a blocked one as
     its wait class.  Completed wait intervals (lock waits, conflict
     aborts, WAL appends and fsyncs, pool-queue drains) additionally
     push one {e event} row each when they end, carrying the true
     duration: these are rare (per block / commit / fsync, never per
     tuple), so the ring stays sampling-cheap while short-lived waits
     that a 100 ms cadence would miss still appear in [sys.ash].

   [MXRA_ASH=0] (or the [set_enabled] switch) turns registration,
   sampling and ring pushes off; [Wait] class counters stay on — they
   are two atomics per event and carry no per-session state. *)

type slot = {
  s_qid : string;
  mutable s_fingerprint : string;
  mutable s_text : string;
  mutable s_lang : string;
  s_start_us : float;
  mutable s_operator : string;  (* operator that produced the last chunk *)
  mutable s_rows : int;  (* root-output rows (multiplicity-weighted) *)
  mutable s_chunks : int;  (* root-output chunks *)
  mutable s_est_rows : float;  (* planner estimate for the root; 0 = none *)
  mutable s_wait : Wait.class_ option;
  mutable s_wait_detail : string;
  s_live : bool;  (* false only on the shared disabled-mode dummy *)
}

type sample = {
  a_t_s : float;
  a_qid : string;
  a_fingerprint : string;
  a_class : Wait.class_;
  a_detail : string;
  a_wait_ms : float;  (* 0 for cadence samples; true duration for events *)
  a_kind : string;  (* "sample" | "event" *)
}

type progress = {
  p_qid : string;
  p_fingerprint : string;
  p_lang : string;
  p_text : string;
  p_operator : string;
  p_chunks : int;
  p_rows : int;
  p_est_rows : float;
  p_pct : float;  (* rows vs estimate, clamped to 100; 0 when no estimate *)
  p_elapsed_ms : float;
  p_wait : string;  (* current wait class, or "cpu.exec" *)
}

(* --- the enabled switch ------------------------------------------------- *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "MXRA_ASH" with
    | Some ("0" | "false" | "off" | "no") -> false
    | Some _ | None -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- registry + ring, one lock ------------------------------------------ *)

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let sessions : (string, slot) Hashtbl.t = Hashtbl.create 32

let default_capacity = 4096
let ring : sample option array ref = ref (Array.make default_capacity None)
let head = ref 0  (* next write index *)
let filled = ref 0
let pushed = ref 0  (* lifetime rows pushed, survives wrap-around *)

let capacity () = Array.length !ring

let set_capacity n =
  with_lock (fun () ->
      ring := Array.make (max 16 n) None;
      head := 0;
      filled := 0)

let clear () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      filled := 0;
      pushed := 0)

let push_locked s =
  let r = !ring in
  let n = Array.length r in
  r.(!head) <- Some s;
  head := (!head + 1) mod n;
  if !filled < n then incr filled;
  incr pushed

let push s = with_lock (fun () -> push_locked s)

(* Oldest to newest. *)
let snapshot () =
  with_lock (fun () ->
      let r = !ring in
      let n = Array.length r in
      let start = (!head - !filled + n) mod n in
      List.init !filled (fun i ->
          match r.((start + i) mod n) with
          | Some s -> s
          | None -> assert false))

let pushed_total () = !pushed

(* --- sessions ----------------------------------------------------------- *)

let dummy =
  {
    s_qid = "";
    s_fingerprint = "";
    s_text = "";
    s_lang = "";
    s_start_us = 0.0;
    s_operator = "";
    s_rows = 0;
    s_chunks = 0;
    s_est_rows = 0.0;
    s_wait = None;
    s_wait_detail = "";
    s_live = false;
  }

let live slot = slot.s_live

let register ?(lang = "xra") ?(text = "") ~qid () =
  if not (enabled ()) then dummy
  else begin
    let slot =
      {
        s_qid = qid;
        s_fingerprint = (if text = "" then "" else Fingerprint.fingerprint text);
        s_text = text;
        s_lang = lang;
        s_start_us = Wait.now_us ();
        s_operator = "";
        s_rows = 0;
        s_chunks = 0;
        s_est_rows = 0.0;
        s_wait = None;
        s_wait_detail = "";
        s_live = true;
      }
    in
    with_lock (fun () -> Hashtbl.replace sessions qid slot);
    slot
  end

let set_statement slot ?lang text =
  if slot.s_live then begin
    slot.s_text <- text;
    slot.s_fingerprint <- Fingerprint.fingerprint text;
    Option.iter (fun l -> slot.s_lang <- l) lang
  end

let set_estimate slot est =
  if slot.s_live then slot.s_est_rows <- Float.max 0.0 est

(* Chunk-loop hot path: plain stores, no lock, no liveness branch — the
   disabled-mode dummy absorbs them harmlessly. *)
let set_operator slot op = slot.s_operator <- op

let advance slot ~rows =
  slot.s_rows <- slot.s_rows + rows;
  slot.s_chunks <- slot.s_chunks + 1

let set_wait slot w =
  if slot.s_live then
    match w with
    | None -> slot.s_wait <- None
    | Some (cls, detail) ->
        slot.s_wait <- Some cls;
        slot.s_wait_detail <- detail

let current_wait slot =
  match slot.s_wait with
  | Some cls -> Some (cls, slot.s_wait_detail)
  | None -> None

let finish slot =
  if slot.s_live then begin
    let removed =
      with_lock (fun () ->
          match Hashtbl.find_opt sessions slot.s_qid with
          | Some s when s == slot ->
              Hashtbl.remove sessions slot.s_qid;
              true
          | Some _ | None -> false)
    in
    (* The statement's wall clock lands on the cpu.exec counter: the
       coarse "time spent executing" series next to the true wait-class
       durations.  (In-statement stalls are inside it; the per-class
       counters carry the precise split.)  Only on the first finish —
       defensive double-finishes must not double-count. *)
    if removed then Wait.note Wait.Cpu_exec (Wait.now_us () -. slot.s_start_us)
  end

let live_count () = with_lock (fun () -> Hashtbl.length sessions)

(* --- events ------------------------------------------------------------- *)

(* A completed wait interval: always feeds the class counters; pushes
   one ASH event row when the subsystem is enabled. *)
let event ?(qid = "-") ?(fingerprint = "") cls ~detail ~dur_us =
  Wait.note cls dur_us;
  if enabled () then
    push
      {
        a_t_s = Unix.gettimeofday ();
        a_qid = qid;
        a_fingerprint = fingerprint;
        a_class = cls;
        a_detail = detail;
        a_wait_ms = Float.max 0.0 dur_us /. 1000.0;
        a_kind = "event";
      }

(* The same, attributed to a registered session. *)
let slot_event slot cls ~detail ~dur_us =
  if slot.s_live then
    event ~qid:slot.s_qid ~fingerprint:slot.s_fingerprint cls ~detail ~dur_us
  else Wait.note cls dur_us

let track ?qid ?fingerprint cls ~detail f =
  let t0 = Wait.now_us () in
  Fun.protect
    ~finally:(fun () -> event ?qid ?fingerprint cls ~detail ~dur_us:(Wait.now_us () -. t0))
    f

(* --- sampling ----------------------------------------------------------- *)

(* One pass over the live sessions, one ring row each: the wait class
   if the session is blocked, else cpu.exec on its current operator.
   Field reads are racy by design (the owner advances them lock-free);
   a sample is a glance, not a barrier. *)
let sample_now () =
  if not (enabled ()) then 0
  else
    with_lock (fun () ->
        let now = Unix.gettimeofday () in
        let n = ref 0 in
        Hashtbl.iter
          (fun _ s ->
            let cls, detail =
              match s.s_wait with
              | Some c -> (c, s.s_wait_detail)
              | None -> (Wait.Cpu_exec, s.s_operator)
            in
            push_locked
              {
                a_t_s = now;
                a_qid = s.s_qid;
                a_fingerprint = s.s_fingerprint;
                a_class = cls;
                a_detail = detail;
                a_wait_ms = 0.0;
                a_kind = "sample";
              };
            incr n)
          sessions;
        !n)

(* Sampler probe: snapshotting the registry into the ring *is* the
   probe's job (the "existing sampler thread" drives ASH cadence); the
   returned series make ring growth and live-session count visible. *)
let probe () =
  ignore (sample_now ());
  [
    ("ash.samples", float_of_int !pushed);
    ("ash.live", float_of_int (live_count ()));
  ]

(* --- progress ----------------------------------------------------------- *)

let progress () =
  let now = Wait.now_us () in
  let slots =
    with_lock (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) sessions [])
  in
  List.sort (fun a b -> compare a.p_qid b.p_qid)
    (List.map
       (fun s ->
         {
           p_qid = s.s_qid;
           p_fingerprint = s.s_fingerprint;
           p_lang = s.s_lang;
           p_text = s.s_text;
           p_operator = s.s_operator;
           p_chunks = s.s_chunks;
           p_rows = s.s_rows;
           p_est_rows = s.s_est_rows;
           p_pct =
             (if s.s_est_rows > 0.0 then
                Float.min 100.0 (100.0 *. float_of_int s.s_rows /. s.s_est_rows)
              else 0.0);
           p_elapsed_ms = (now -. s.s_start_us) /. 1000.0;
           p_wait =
             (match s.s_wait with
             | Some c -> Wait.name c
             | None -> Wait.name Wait.Cpu_exec);
         })
       slots)

(* --- ambient slot (the executor's handle) ------------------------------- *)

(* The running statement's slot, ambient for the duration of its
   execution so the chunk loop in [Exec] can advance progress without
   threading a parameter through every operator.  A plain ref: queries
   execute on the process's main thread (HTTP and sampler threads only
   read), and a disabled/dead slot never installs itself, so the
   executor's [current () = None] fast path stays branch-only. *)
let ambient : slot option ref = ref None

let with_slot slot f =
  if not slot.s_live then f ()
  else begin
    let saved = !ambient in
    ambient := Some slot;
    Fun.protect ~finally:(fun () -> ambient := saved) f
  end

let current () = !ambient

(* --- rendering ---------------------------------------------------------- *)

let render_ash ?(limit = 256) () =
  let rows = snapshot () in
  let total = List.length rows in
  let shown =
    (* Newest last; when over the limit, keep the tail. *)
    if total <= limit then rows
    else List.filteri (fun i _ -> i >= total - limit) rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-8s %-16s %-10s %9s %-6s %s\n" "t_s" "qid"
       "fingerprint" "class" "wait_ms" "kind" "detail");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%12.3f %-8s %-16s %-10s %9.3f %-6s %s\n" s.a_t_s
           s.a_qid s.a_fingerprint (Wait.name s.a_class) s.a_wait_ms s.a_kind
           s.a_detail))
    shown;
  if total > limit then
    Buffer.add_string buf (Printf.sprintf "… %d older\n" (total - limit));
  Buffer.add_string buf
    (String.concat ""
       (List.map
          (fun c ->
            Printf.sprintf "-- wait.%s: %d events, %.3f ms\n" (Wait.name c)
              (Wait.count c) (Wait.waited_ms c))
          Wait.all));
  Buffer.contents buf

let render_progress () =
  let rows = progress () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %-16s %-4s %-14s %8s %10s %10s %6s %10s %-10s %s\n"
       "qid" "fingerprint" "lang" "operator" "chunks" "rows" "est_rows" "pct"
       "elapsed_ms" "wait" "statement");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-8s %-16s %-4s %-14s %8d %10d %10.0f %5.1f%% %10.2f %-10s %s\n"
           p.p_qid p.p_fingerprint p.p_lang p.p_operator p.p_chunks p.p_rows
           p.p_est_rows p.p_pct p.p_elapsed_ms p.p_wait
           (Stmt_stats.truncate_text p.p_text)))
    rows;
  Buffer.contents buf
