type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  tid : int;
  start_us : float;
  dur_us : float;
  attrs : (string * value) list;
}

type event = {
  ev_name : string;
  ev_tid : int;
  ts_us : float;
  ev_attrs : (string * value) list;
}

type sink = {
  on_span : span -> unit;
  on_event : event -> unit;
  on_close : unit -> unit;
}

let null_sink =
  { on_span = ignore; on_event = ignore; on_close = (fun () -> ()) }

let installed : sink list ref = ref []
let set_sinks l = installed := l
let sinks () = !installed
let enabled () = !installed <> []

let close () =
  List.iter (fun s -> s.on_close ()) !installed;
  installed := []

(* Timestamps are relative to process start so trace files carry small
   numbers; sinks that need wall-clock time stamp records themselves. *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* Ambient context: attributes appended to every span and event emitted
   while the context is open.  Maintained even when tracing is disabled
   (the cost is one list swap per context, not per span) so non-sink
   consumers — the store stamping a query id into its WAL records — can
   read it unconditionally.

   Single-mutator invariant (see trace.mli): only the main statement
   thread calls [with_context]; worker domains and systhreads only
   read.  A plain ref suffices under that discipline — reads cannot
   tear — but concurrent mutators would cross-stamp contexts. *)
let ctx : (string * value) list ref = ref []

let context () = !ctx
let context_find key = List.assoc_opt key !ctx

let with_context attrs f =
  let saved = !ctx in
  ctx := saved @ attrs;
  Fun.protect ~finally:(fun () -> ctx := saved) f

let stamp attrs = match !ctx with [] -> attrs | c -> attrs @ c

let emit_span s = List.iter (fun k -> k.on_span s) !installed
let emit_event e = List.iter (fun k -> k.on_event e) !installed

let complete ?(tid = 0) ?(attrs = []) name ~start_us ~dur_us =
  if enabled () then
    emit_span { name; tid; start_us; dur_us; attrs = stamp attrs }

let event ?(tid = 0) ?(attrs = []) name =
  if enabled () then
    emit_event
      { ev_name = name; ev_tid = tid; ts_us = now_us (); ev_attrs = stamp attrs }

(* Open-span stack for [add_attr]; attributes are kept reversed and
   flipped once at emission. *)
type frame = {
  f_name : string;
  f_tid : int;
  f_start : float;
  mutable f_attrs : (string * value) list;
}

let stack : frame list ref = ref []

let add_attr k v =
  match !stack with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

let with_span ?(tid = 0) ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let frame =
      { f_name = name; f_tid = tid; f_start = now_us (); f_attrs = List.rev attrs }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (stack := match !stack with _ :: rest -> rest | [] -> []);
        emit_span
          {
            name = frame.f_name;
            tid = frame.f_tid;
            start_us = frame.f_start;
            dur_us = now_us () -. frame.f_start;
            attrs = stamp (List.rev frame.f_attrs);
          })
      f
  end
