(** The background resource sampler.

    One systhread on a fixed cadence: call every {e probe}, push the
    results into a {!Timeseries} store under one shared timestamp,
    sleep, repeat.  A thread rather than a domain on purpose — an extra
    domain makes every minor collection a stop-the-world handshake,
    which E14 measures at double-digit percent on allocation-heavy
    queries when cores are scarce; a systhread adds no STW participant.
    Probes are closures supplied by the layers that own the state — GC
    counters here, domain-pool utilisation from
    [Mxra_ext.Pool.telemetry], scheduler lock counters from
    [Mxra_concurrency.Scheduler.telemetry], WAL figures from
    [Mxra_storage.Store.telemetry], live relation cardinalities from
    the CLI — so lib/obs stays at the bottom of the dependency order.

    A probe that raises is skipped for that round and the thread keeps
    running; the first failure per probe is logged to stderr (once, so
    a broken closure cannot flood the log on a fast cadence) and every
    failure counts in {!failures}.  Telemetry never takes the process
    down. *)

type probe = unit -> (string * float) list
(** One sampling source: a list of [(series, value)] pairs. *)

type t

val start : ?interval_ms:float -> ?capacity:int -> probes:probe list -> unit -> t
(** Start the sampler thread.  [interval_ms] (default 1000, clamped to
    [>= 1]) is the cadence; [capacity] the per-series ring size (see
    {!Timeseries.create}).  The first sample is taken immediately. *)

val store : t -> Timeseries.t
(** The live store the sampler writes into; safe to read concurrently. *)

val rounds : t -> int
(** Sampling rounds completed so far. *)

val failures : t -> int
(** Probe invocations that raised (each skipped, never fatal). *)

val sample_now : t -> unit
(** Take one synchronous sample on the calling thread — used by
    [--once] paths and tests that cannot wait a full interval. *)

val stop : t -> unit
(** Stop and join the sampler thread; idempotent.  Returns within one
    sleep slice (≤ 50 ms). *)

val gc_probe : probe
(** [Gc.quick_stat] counters: [gc.minor_words], [gc.promoted_words],
    [gc.major_words], [gc.minor_collections], [gc.major_collections],
    [gc.heap_words], [gc.top_heap_words]. *)

val uptime_probe : probe
(** [process.uptime_s] since this module was loaded. *)
