let sink oc =
  let first = ref true in
  output_string oc "{\"traceEvents\":[";
  let emit record =
    if !first then first := false else output_char oc ',';
    output_string oc "\n";
    output_string oc record
  in
  {
    Trace.on_span =
      (fun s ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"dur\":%.1f,\"args\":%s}"
             (Json.escape s.Trace.name) s.Trace.tid s.Trace.start_us
             s.Trace.dur_us
             (Json.of_attrs s.Trace.attrs)));
    on_event =
      (fun e ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"args\":%s}"
             (Json.escape e.Trace.ev_name) e.Trace.ev_tid e.Trace.ts_us
             (Json.of_attrs e.Trace.ev_attrs)));
    on_close =
      (fun () ->
        output_string oc "\n]}\n";
        flush oc);
  }
