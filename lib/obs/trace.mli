(** Span-based tracing with pluggable sinks.

    A {e span} is a named, timed interval with typed attributes; an
    {e event} is an instant.  Spans are delivered to every installed
    sink exactly once, at span end (complete-span style), so a sink
    never sees an unbalanced begin — an exception unwinding through
    {!with_span} still emits the span, with its measured duration.

    When no sink is installed, {!with_span} runs the thunk directly and
    {!complete}/{!event} return immediately — the disabled path costs
    one list-emptiness check, which is what lets tracing stay compiled
    into every layer (parser, optimizer, executor, scheduler, storage)
    without a measurable toll; the E14 bench pins the enabled no-op-sink
    overhead under 5%.

    The [tid] of a span or event selects its lane in trace viewers; the
    scheduler uses the transaction index so interleaved transactions
    render as parallel tracks. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  tid : int;
  start_us : float;  (** Microseconds on the {!now_us} clock. *)
  dur_us : float;
  attrs : (string * value) list;  (** In insertion order. *)
}

type event = {
  ev_name : string;
  ev_tid : int;
  ts_us : float;
  ev_attrs : (string * value) list;
}

type sink = {
  on_span : span -> unit;
  on_event : event -> unit;
  on_close : unit -> unit;
      (** Flush buffered output; the sink is not used afterwards. *)
}

val null_sink : sink
(** Receives everything, does nothing — the overhead baseline. *)

val set_sinks : sink list -> unit
(** Replace the installed sinks ([[]] disables tracing). *)

val sinks : unit -> sink list
val enabled : unit -> bool

val close : unit -> unit
(** [on_close] every installed sink, then disable tracing. *)

val now_us : unit -> float
(** Monotonic-enough wall clock in microseconds since process start. *)

val with_span :
  ?tid:int -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span is emitted when the thunk
    returns {e or raises}; the exception propagates unchanged. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open {!with_span}; a no-op
    when tracing is disabled or no span is open. *)

val complete :
  ?tid:int ->
  ?attrs:(string * value) list ->
  string ->
  start_us:float ->
  dur_us:float ->
  unit
(** Emit a span whose interval was measured by the caller — used where
    a span's lifetime does not nest as a function call, e.g. a physical
    operator's stream from construction to exhaustion, or a scheduler
    transaction across interleaved steps. *)

val event : ?tid:int -> ?attrs:(string * value) list -> string -> unit
(** Emit an instant event (lock waits, deadlock aborts). *)

(** {1 Ambient context}

    Trace-context propagation: attributes appended to {e every} span
    and event emitted while the context is open, which is how a
    [query_id] minted at the top of a statement reaches the operator
    spans, Exchange lane spans and storage spans underneath it without
    threading an argument through every layer.  The context is
    maintained even when tracing is disabled, so non-sink consumers
    (the store stamping a query id into WAL records) can always read
    it.

    {b Concurrency invariant — single mutator.}  The context is one
    global, and only the main statement-executing thread may call
    {!with_context}.  Other parties — Exchange worker domains stamping
    lane spans, the sampler and HTTP-server systhreads — may {e read}
    it ({!context}, {!context_find}, or implicitly via span emission);
    a read never tears (the ref holds an immutable list) and sees
    either the pre- or post-swap context.  This holds today because
    the main thread blocks while workers run one statement's lanes.
    Concurrent statement execution, or a background thread opening a
    context of its own, would cross-stamp attributes onto the wrong
    spans and requires moving the context into domain/thread-local
    storage first. *)

val with_context : (string * value) list -> (unit -> 'a) -> 'a
(** Append [attrs] to the ambient context for the duration of the
    thunk; contexts nest and are restored on exception. *)

val context : unit -> (string * value) list
(** The current ambient context, outermost first. *)

val context_find : string -> value option
(** Look up one ambient attribute by key. *)
