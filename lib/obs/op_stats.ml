(* Cumulative per-operator statistics: every instrumented execution
   folds each physical operator's figures into a process-wide registry
   keyed by operator kind ("HashJoin", "Filter", ...).  This is the
   materialization source for the [sys.operators] virtual relation and
   shares {!Stmt_stats}'s enabled switch so E17's disabled baseline
   turns both registries off with one flag. *)

type row = {
  o_op : string;
  o_execs : int;
  o_elems : int;
  o_rows : int;
  o_cells : int;
  o_wall_ms : float;
}

type entry = {
  mutable execs : int;
  mutable elems : int;
  mutable rows : int;
  mutable cells : int;
  mutable wall_ms : float;
}

let lock = Mutex.create ()
let entries : (string, entry) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~op ~elems ~rows ~cells ~wall_ms =
  if Stmt_stats.enabled () then
    with_lock (fun () ->
        let e =
          match Hashtbl.find_opt entries op with
          | Some e -> e
          | None ->
              let e = { execs = 0; elems = 0; rows = 0; cells = 0; wall_ms = 0.0 } in
              Hashtbl.add entries op e;
              e
        in
        e.execs <- e.execs + 1;
        e.elems <- e.elems + elems;
        e.rows <- e.rows + rows;
        e.cells <- e.cells + cells;
        e.wall_ms <- e.wall_ms +. wall_ms)

let snapshot () =
  let rows =
    with_lock (fun () ->
        Hashtbl.fold
          (fun op e acc ->
            {
              o_op = op;
              o_execs = e.execs;
              o_elems = e.elems;
              o_rows = e.rows;
              o_cells = e.cells;
              o_wall_ms = e.wall_ms;
            }
            :: acc)
          entries [])
  in
  List.sort (fun a b -> compare a.o_op b.o_op) rows

let clear () = with_lock (fun () -> Hashtbl.reset entries)
