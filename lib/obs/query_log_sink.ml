let rfc3339 t =
  let tm = Unix.gmtime t in
  let frac = t -. Float.of_int (int_of_float (Float.floor t)) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (int_of_float (frac *. 1000.0))

let sink ?(span_names = [ "query"; "statement" ]) ?(slow_ms = 0.0) oc =
  {
    Trace.on_span =
      (fun s ->
        let ms = s.Trace.dur_us /. 1000.0 in
        if List.mem s.Trace.name span_names && ms >= slow_ms then begin
          let buf = Buffer.create 128 in
          Buffer.add_string buf
            (Printf.sprintf "{\"ts\":\"%s\",\"span\":\"%s\",\"ms\":%.3f"
               (rfc3339 (Unix.gettimeofday ()))
               (Json.escape s.Trace.name) ms);
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf
                (Printf.sprintf ",\"%s\":%s" (Json.escape k) (Json.of_value v)))
            s.Trace.attrs;
          Buffer.add_string buf "}\n";
          output_string oc (Buffer.contents buf);
          flush oc
        end);
    on_event = ignore;
    on_close = (fun () -> flush oc);
  }
