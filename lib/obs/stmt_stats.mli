(** Cumulative per-statement statistics keyed by {!Fingerprint}.

    A process-wide mutex-guarded registry in the pg_stat_statements
    mold: each executed statement folds its wall time (exact
    count/sum/min/max plus p50/p99 from a {!Histogram}), row and tuple
    counts into the entry for its fingerprint, while the storage and
    concurrency layers attribute WAL bytes and lock-wait time to the
    same entry through the query id every span, log record and WAL
    marker already carries.  The registry is what the engine
    materializes as the [sys.statements] virtual relation. *)

val enabled : unit -> bool
(** The registry switch.  Starts true unless the environment says
    [MXRA_STMT_STATS=0] (or [off] / [false]). *)

val set_enabled : bool -> unit
(** Flip the switch; when off, every call below is a single atomic
    load (bench E17's disabled baseline). *)

val record :
  ?lang:string ->
  ?qid:string ->
  ?rows:int ->
  ?tuples:int ->
  wall_ms:float ->
  string ->
  unit
(** [record ~wall_ms text] folds one execution of [text] into its
    fingerprint's entry.  [lang] tags the front-end (["xra"] /
    ["sql"], default ["xra"]); [rows] is the result cardinality;
    [tuples] the executor's tuples-moved total when instrumented.
    [qid], when given, is stamped as the entry's [last_qid], drains
    any WAL-byte / lock-wait attribution that arrived under that qid
    before the statement finished, and keeps the qid resolvable for
    late attribution (bounded, FIFO eviction). *)

val add_wal_bytes : qid:string -> int -> unit
(** Attribute WAL payload bytes to the statement executing as [qid];
    buffered if that statement has not been {!record}ed yet. *)

val add_lock_wait : qid:string -> float -> unit
(** Attribute milliseconds spent blocked on locks to [qid]; buffered
    like {!add_wal_bytes}. *)

val add_conflict : qid:string -> unit
(** Attribute one snapshot-isolation write-write conflict abort
    (first-committer-wins validation failure) to the transaction
    executing as [qid]; buffered like {!add_wal_bytes}.  The SI
    counterpart of {!add_lock_wait}: where 2PL statements pay in lock
    waits, SI transactions pay in conflict aborts. *)

(** One statement's cumulative figures, as materialized into
    [sys.statements]. *)
type row = {
  r_fingerprint : string;
  r_text : string;  (** normalized exemplar text *)
  r_lang : string;
  r_calls : int;
  r_rows : int;
  r_tuples : int;
  r_wal_bytes : int;
  r_lock_wait_ms : float;
  r_conflicts : int;  (** SI write-write conflict aborts *)
  r_total_ms : float;
  r_min_ms : float;
  r_max_ms : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_last_qid : string;
}

val snapshot : unit -> row list
(** All entries, sorted by cumulative wall time descending (ties by
    fingerprint, so the order is deterministic). *)

val cardinality : unit -> int
(** Number of distinct fingerprints. *)

val truncate_text : ?width:int -> string -> string
(** Statement text clipped to [width] (default 48) with an ellipsis —
    the one-line form the fixed-width tables print. *)

val render_top : ?limit:int -> unit -> string
(** Fixed-width text table of the top [limit] (default 20) statements
    by cumulative wall time — the [/stmtz] and [bagdb stats] view. *)

val to_json : unit -> string
(** [{"statements":[...]}], same order as {!snapshot}. *)

val to_prometheus : ?prefix:string -> unit -> string
(** Labeled counter families ([<prefix>calls_total],
    [<prefix>ms_total], [<prefix>rows_total],
    [<prefix>wal_bytes_total], [<prefix>lock_wait_ms_total],
    [<prefix>conflicts_total]) with [fingerprint] and [lang] labels;
    [prefix] defaults to ["mxra_stmt_"]. *)

val clear : unit -> unit
(** Drop everything (tests and bench baselines). *)
