(** Log-scale latency histograms.

    Observations land in geometric buckets (ratio [2^¼] ≈ 1.19, so any
    quantile estimate is within ~9% relative error of the true value),
    while count, sum, minimum and maximum are tracked {e exactly} — the
    same discipline as the engine's counted-tuple accounting, where the
    aggregate is approximate only in the dimension that must be
    (bucketed values) and never in cardinality.  Values at or below the
    lowest bound (including zero and negatives) share one underflow
    bucket.

    No background thread, no decay: a histogram is a plain accumulator
    suitable for per-process or per-phase latency tracking. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one observation; non-finite values are ignored. *)

val count : t -> int
(** Exact number of observations. *)

val sum : t -> float
(** Exact sum of observations. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p ∈ [0,1]]: the midpoint of the bucket holding
    the [p]-th ranked observation, clamped into
    [[min_value, max_value]] so the estimates are always ordered
    [min ≤ q(p) ≤ max] and monotone in [p].  A single-sample (or
    single-bucket) histogram therefore answers inside the observed
    range rather than a bucket boundary.  [nan] when empty. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending; the
    underflow bucket reports its upper bound.  Counts sum to
    {!count} — conservation is exact. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counts, sums and bucket
    tallies add, extrema combine — equivalent to having observed both
    streams into one histogram.  [src] is unchanged.  This is the
    combine step for per-domain histogram shards. *)

val copy : t -> t
(** An independent snapshot; the original can keep accumulating. *)

val clear : t -> unit
