(* Geometric buckets: bucket [i] covers (lo·γ^(i-1), lo·γ^i], with one
   underflow bucket for values ≤ lo.  The table is sparse — a Hashtbl
   keyed by bucket index — because latencies cluster in a few decades
   while the index space spans all of them. *)

let gamma = Float.pow 2.0 0.25
let log_gamma = Float.log gamma
let lo = 1e-6

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable under : int;
  table : (int, int ref) Hashtbl.t;
}

let create () =
  {
    count = 0;
    sum = 0.0;
    vmin = Float.nan;
    vmax = Float.nan;
    under = 0;
    table = Hashtbl.create 32;
  }

let clear t =
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- Float.nan;
  t.vmax <- Float.nan;
  t.under <- 0;
  Hashtbl.reset t.table

let index v = int_of_float (Float.ceil (Float.log (v /. lo) /. log_gamma))
let upper i = lo *. Float.pow gamma (float_of_int i)

let observe t v =
  if Float.is_finite v then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if t.count = 1 then begin
      t.vmin <- v;
      t.vmax <- v
    end
    else begin
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v
    end;
    if v <= lo then t.under <- t.under + 1
    else
      let i = index v in
      match Hashtbl.find_opt t.table i with
      | Some r -> incr r
      | None -> Hashtbl.add t.table i (ref 1)
  end

(* Merge [src] into [dst]: counts, sums and bucket tallies add, extrema
   combine — the result is indistinguishable from having observed both
   streams into one histogram.  This is what lets per-domain shards be
   folded into one distribution. *)
let merge dst src =
  if src.count > 0 then begin
    if dst.count = 0 then begin
      dst.vmin <- src.vmin;
      dst.vmax <- src.vmax
    end
    else begin
      if src.vmin < dst.vmin then dst.vmin <- src.vmin;
      if src.vmax > dst.vmax then dst.vmax <- src.vmax
    end;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    dst.under <- dst.under + src.under;
    Hashtbl.iter
      (fun i r ->
        match Hashtbl.find_opt dst.table i with
        | Some d -> d := !d + !r
        | None -> Hashtbl.add dst.table i (ref !r))
      src.table
  end

let copy t =
  let c = create () in
  merge c t;
  c

let count t = t.count
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax

let sorted_buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.table []
  |> List.sort (fun (i, _) (j, _) -> compare i j)

let buckets t =
  let tail = List.map (fun (i, n) -> (upper i, n)) (sorted_buckets t) in
  if t.under > 0 then (lo, t.under) :: tail else tail

let quantile t p =
  if t.count = 0 then Float.nan
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int t.count))) in
    let clamp v = Float.max t.vmin (Float.min t.vmax v) in
    (* Report the midpoint of the bucket holding the rank, not its
       upper bound: with one sample (or every sample in one bucket) the
       upper bound over-reports by up to a whole bucket width, and a
       degenerate histogram must still answer inside [vmin, vmax].  A
       bucket with upper bound [b] covers (b/γ, b], so its midpoint is
       b·(1+1/γ)/2 — within half a bucket width (~9%) of any sample in
       it; the clamp keeps degenerate cases inside the observed range. *)
    let rec walk cum = function
      | [] -> clamp t.vmax
      | (bound, n) :: rest ->
          if cum + n >= rank then
            clamp ((bound /. gamma +. bound) /. 2.0)
          else walk (cum + n) rest
    in
    walk 0 (buckets t)
  end
