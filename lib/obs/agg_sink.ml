(* All mutation and all reads go through one mutex: spans arrive from
   whichever domain emits them (per-worker Exchange lane spans are
   emitted concurrently when a sink is installed during parallel
   execution), and the telemetry HTTP server reads the aggregate from
   its own domain while queries are still running.  A Hashtbl resize
   under concurrent access is a crash, not just a torn read, so the
   lock is not optional.  Readers get copies ({!Histogram.copy}) so
   rendering never races further accumulation. *)

type t = {
  lock : Mutex.t;
  spans : (string, Histogram.t) Hashtbl.t;
  attrs : (string * string, float ref) Hashtbl.t;
  events : (string, int ref) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    spans = Hashtbl.create 32;
    attrs = Hashtbl.create 32;
    events = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let sink t =
  {
    Trace.on_span =
      (fun s ->
        locked t (fun () ->
            let h =
              match Hashtbl.find_opt t.spans s.Trace.name with
              | Some h -> h
              | None ->
                  let h = Histogram.create () in
                  Hashtbl.add t.spans s.Trace.name h;
                  h
            in
            Histogram.observe h (s.Trace.dur_us /. 1000.0);
            List.iter
              (fun (k, v) ->
                let add x =
                  let key = (s.Trace.name, k) in
                  match Hashtbl.find_opt t.attrs key with
                  | Some r -> r := !r +. x
                  | None -> Hashtbl.add t.attrs key (ref x)
                in
                match v with
                | Trace.Int i -> add (float_of_int i)
                | Trace.Float f -> add f
                | Trace.Str _ | Trace.Bool _ -> ())
              s.Trace.attrs));
    on_event =
      (fun e ->
        locked t (fun () ->
            match Hashtbl.find_opt t.events e.Trace.ev_name with
            | Some r -> incr r
            | None -> Hashtbl.add t.events e.Trace.ev_name (ref 1)));
    on_close = (fun () -> ());
  }

let span_names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.spans []
      |> List.sort String.compare)

let durations t name =
  locked t (fun () ->
      Option.map Histogram.copy (Hashtbl.find_opt t.spans name))

let attr_totals t =
  locked t (fun () ->
      Hashtbl.fold (fun (s, k) r acc -> (s, k, !r) :: acc) t.attrs []
      |> List.sort compare)

let event_counts t =
  locked t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.events []
      |> List.sort compare)
