(** Cumulative per-operator statistics — the [sys.operators] source.

    Fed by [Exec.run_instrumented]: one {!record} per physical operator
    per instrumented execution, keyed by operator kind.  Gated by
    {!Stmt_stats.enabled} so one switch controls both registries. *)

type row = {
  o_op : string;  (** physical operator kind, e.g. ["HashJoin"] *)
  o_execs : int;  (** operator instances executed *)
  o_elems : int;  (** counted tuples consumed *)
  o_rows : int;  (** counted tuples produced *)
  o_cells : int;  (** cells moved *)
  o_wall_ms : float;  (** cumulative wall ms (inclusive of children) *)
}

val record : op:string -> elems:int -> rows:int -> cells:int -> wall_ms:float -> unit
val snapshot : unit -> row list
(** Sorted by operator kind. *)

val clear : unit -> unit
