(** In-process aggregation of the span stream.

    Instead of writing records out, this sink folds them into
    per-span-name latency {!Histogram}s, per-(span, attribute) numeric
    totals, and per-event-name counts — the state behind the
    Prometheus text export.  Aggregation keys are span names, which is
    why instrumented layers use stable names (["parse"], ["optimize"],
    ["HashJoin"], ["store.commit"]) and push variable detail into
    attributes.

    The sink is {e domain-safe}: every mutation and every read takes an
    internal mutex, so spans may arrive concurrently from worker
    domains while a telemetry endpoint renders the aggregate from yet
    another.  Readers receive {!Histogram.copy} snapshots, never live
    accumulators. *)

type t

val create : unit -> t
val sink : t -> Trace.sink

val span_names : t -> string list
(** Names seen so far, sorted. *)

val durations : t -> string -> Histogram.t option
(** A snapshot of the latency histogram (milliseconds) of that span
    name; independent of further accumulation. *)

val attr_totals : t -> (string * string * float) list
(** [(span, attr, total)] sums of numeric span attributes, sorted;
    string and boolean attributes are not aggregated. *)

val event_counts : t -> (string * int) list
(** Instant-event occurrences by name, sorted. *)
