(** Live statement activity and the Active Session History.

    The activity registry holds one {!type:slot} per in-flight
    statement (qid, fingerprint, current operator, monotonically
    advancing row/chunk counters, current wait state); the ASH ring is
    a bounded buffer of {!type:sample} rows fed both by cadence
    snapshots of the registry (each live session samples as its wait
    class, or [cpu.exec] when running) and by one event row per
    completed wait interval, so short waits a 100 ms cadence would
    miss still appear.  [sys.ash] and [sys.progress] materialize from
    {!snapshot} and {!progress}.

    [MXRA_ASH=0] (or {!set_enabled}) disables registration, sampling
    and ring pushes; the {!Wait} class counters stay on. *)

type slot
(** A registered session's activity record.  Obtained from
    {!register}; when the subsystem is disabled a shared inert slot is
    returned and every operation on it is a no-op, so callers never
    branch. *)

(** One ASH row. *)
type sample = {
  a_t_s : float;  (** wall-clock seconds *)
  a_qid : string;
  a_fingerprint : string;
  a_class : Wait.class_;
  a_detail : string;  (** lock name, WAL file, operator, … *)
  a_wait_ms : float;  (** true duration for events, 0 for samples *)
  a_kind : string;  (** ["sample"] (cadence) or ["event"] (completed wait) *)
}

(** One [sys.progress] row: a live statement's advancement. *)
type progress = {
  p_qid : string;
  p_fingerprint : string;
  p_lang : string;
  p_text : string;
  p_operator : string;  (** operator that produced the last chunk *)
  p_chunks : int;
  p_rows : int;
  p_est_rows : float;  (** planner estimate for the root; 0 = none *)
  p_pct : float;  (** rows vs. estimate, clamped to 100 *)
  p_elapsed_ms : float;
  p_wait : string;  (** current wait class name, or ["cpu.exec"] *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Session lifecycle} *)

val register : ?lang:string -> ?text:string -> qid:string -> unit -> slot
(** Enter the statement into the registry.  Pair with {!finish}. *)

val set_statement : slot -> ?lang:string -> string -> unit
(** (Re)stamp text + fingerprint once the statement source is known. *)

val set_estimate : slot -> float -> unit
(** Planner cardinality estimate for the plan root. *)

val set_operator : slot -> string -> unit
(** Hot path (per chunk): operator currently producing. *)

val advance : slot -> rows:int -> unit
(** Hot path (per chunk): one more root chunk of [rows] rows. *)

val set_wait : slot -> (Wait.class_ * string) option -> unit
(** Enter ([Some (class, detail)]) or leave ([None]) a wait. *)

val current_wait : slot -> (Wait.class_ * string) option

val finish : slot -> unit
(** Remove from the registry; notes the statement's wall clock on the
    [cpu.exec] counter.  Idempotent — only the removing call counts. *)

val live : slot -> bool
(** False only for the disabled-mode inert slot. *)

val live_count : unit -> int

(** {1 Wait events} *)

val event :
  ?qid:string ->
  ?fingerprint:string ->
  Wait.class_ ->
  detail:string ->
  dur_us:float ->
  unit
(** A completed wait interval: always feeds {!Wait.note}; additionally
    pushes one ASH event row when enabled. *)

val slot_event : slot -> Wait.class_ -> detail:string -> dur_us:float -> unit
(** {!event} attributed to a registered session. *)

val track :
  ?qid:string ->
  ?fingerprint:string ->
  Wait.class_ ->
  detail:string ->
  (unit -> 'a) ->
  'a
(** Time [f] and emit the interval as an {!event} (also on raise). *)

(** {1 Sampling and reading} *)

val sample_now : unit -> int
(** Snapshot every live session into the ring (its wait class, or
    [cpu.exec] on its current operator); returns rows pushed.  The
    {!Sampler} cadence calls this through {!probe}; benches and tests
    call it directly for deterministic sampling. *)

val probe : unit -> (string * float) list
(** Sampler probe: runs {!sample_now} and reports [ash.samples]
    (lifetime rows pushed) and [ash.live]. *)

val snapshot : unit -> sample list
(** Ring contents, oldest first. *)

val progress : unit -> progress list
(** Live sessions sorted by qid. *)

val pushed_total : unit -> int
val capacity : unit -> int
val set_capacity : int -> unit
val clear : unit -> unit
(** Empty the ring and zero {!pushed_total} (tests/benches). *)

(** {1 Ambient slot} *)

val with_slot : slot -> (unit -> 'a) -> 'a
(** Make [slot] the ambient current statement for the duration of [f]
    so the executor's chunk loop can find it without plumbing.  Inert
    slots are not installed (the executor's fast path stays
    [current () = None]). *)

val current : unit -> slot option

(** {1 Rendering} *)

val render_ash : ?limit:int -> unit -> string
(** Fixed-width table of the newest [limit] (default 256) ring rows,
    followed by the per-class counter totals — the [/ashz] view. *)

val render_progress : unit -> string
(** Fixed-width table of {!progress} — the [/progressz] view. *)
