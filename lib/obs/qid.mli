(** End-to-end query identifiers.

    A [query_id] is minted once per top-level statement (CLI) or per
    transaction (scheduler) and then follows the work everywhere it
    goes: as the {!attr_key} attribute on every span emitted under
    {!Trace.with_context}, in the JSONL query log, in EXPLAIN ANALYZE
    output, and stamped into the WAL's [-- begin]/[-- commit] records —
    so one grep correlates a slow query with its transaction, its
    per-operator actuals and its durability cost. *)

val mint : unit -> string
(** The next id: ["q000001"], ["q000002"], ... — deterministic within a
    process, unique across domains (atomic counter). *)

val attr_key : string
(** ["query_id"] — the span-attribute and WAL-field name. *)

val minted : unit -> int
(** How many ids have been minted so far. *)

val reset : unit -> unit
(** Restart the counter (tests only). *)
