(* Cumulative per-statement statistics, keyed by {!Fingerprint}.

   One process-wide mutex-guarded registry: the front-ends (bagdb, the
   REPL, the scheduler) call [record] once per executed statement with
   the raw text, wall time and row counts; the store and the scheduler
   attribute WAL bytes and lock-wait time by query id as they happen.
   Attribution arrives *before* [record] does — a statement's WAL
   records are appended while it runs, its lock waits accrue while it
   is blocked — so by-qid figures land in a pending side table and are
   drained into the entry when [record] finally names the qid.  After
   [record], the qid stays resolvable (bounded LRU) so late commit
   bytes still find their statement.

   Everything is behind [enabled]: when the registry is off (env
   MXRA_STMT_STATS=0|off|false, or [set_enabled false]) every call
   returns after one atomic load — that no-op path is what bench E17
   holds against the enabled path under the 5% budget. *)

type row = {
  r_fingerprint : string;
  r_text : string;
  r_lang : string;
  r_calls : int;
  r_rows : int;
  r_tuples : int;
  r_wal_bytes : int;
  r_lock_wait_ms : float;
  r_conflicts : int;
  r_total_ms : float;
  r_min_ms : float;
  r_max_ms : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_last_qid : string;
}

type entry = {
  fp : string;
  text : string;
  mutable lang : string;
  mutable calls : int;
  mutable rows : int;
  mutable tuples : int;
  mutable wal_bytes : int;
  mutable lock_wait_ms : float;
  mutable conflicts : int;
  hist : Histogram.t;  (* wall ms: exact count/sum/min/max, p50/p99 *)
  mutable last_qid : string;
}

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "MXRA_STMT_STATS" with
    | Some ("0" | "off" | "false") -> false
    | _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let entries : (string, entry) Hashtbl.t = Hashtbl.create 64

(* qid -> entry, bounded FIFO so a long-lived process cannot leak one
   binding per query ever executed. *)
let by_qid : (string, entry) Hashtbl.t = Hashtbl.create 64
let qid_order : string Queue.t = Queue.create ()
let max_qids = 4096

(* Attribution that arrived before its statement was recorded. *)
let pending_wal : (string, int) Hashtbl.t = Hashtbl.create 16
let pending_wait : (string, float) Hashtbl.t = Hashtbl.create 16
let pending_conflicts : (string, int) Hashtbl.t = Hashtbl.create 16
let max_pending = 4096

let bind_qid q e =
  if not (Hashtbl.mem by_qid q) then begin
    Queue.push q qid_order;
    if Queue.length qid_order > max_qids then
      Hashtbl.remove by_qid (Queue.pop qid_order)
  end;
  Hashtbl.replace by_qid q e

let record ?(lang = "xra") ?qid ?(rows = 0) ?(tuples = 0) ~wall_ms text =
  if enabled () then begin
    let fp = Fingerprint.fingerprint text in
    with_lock (fun () ->
        let e =
          match Hashtbl.find_opt entries fp with
          | Some e -> e
          | None ->
              let e =
                {
                  fp;
                  text = Fingerprint.normalize text;
                  lang;
                  calls = 0;
                  rows = 0;
                  tuples = 0;
                  wal_bytes = 0;
                  lock_wait_ms = 0.0;
                  conflicts = 0;
                  hist = Histogram.create ();
                  last_qid = "";
                }
              in
              Hashtbl.add entries fp e;
              e
        in
        e.calls <- e.calls + 1;
        e.rows <- e.rows + rows;
        e.tuples <- e.tuples + tuples;
        e.lang <- lang;
        Histogram.observe e.hist wall_ms;
        match qid with
        | None -> ()
        | Some q ->
            e.last_qid <- q;
            (match Hashtbl.find_opt pending_wal q with
            | Some b ->
                e.wal_bytes <- e.wal_bytes + b;
                Hashtbl.remove pending_wal q
            | None -> ());
            (match Hashtbl.find_opt pending_wait q with
            | Some w ->
                e.lock_wait_ms <- e.lock_wait_ms +. w;
                Hashtbl.remove pending_wait q
            | None -> ());
            (match Hashtbl.find_opt pending_conflicts q with
            | Some c ->
                e.conflicts <- e.conflicts + c;
                Hashtbl.remove pending_conflicts q
            | None -> ());
            bind_qid q e)
  end

let add_pending tbl q v add zero =
  if Hashtbl.length tbl >= max_pending then Hashtbl.reset tbl;
  let cur = Option.value (Hashtbl.find_opt tbl q) ~default:zero in
  Hashtbl.replace tbl q (add cur v)

let add_wal_bytes ~qid n =
  if enabled () && n > 0 then
    with_lock (fun () ->
        match Hashtbl.find_opt by_qid qid with
        | Some e -> e.wal_bytes <- e.wal_bytes + n
        | None -> add_pending pending_wal qid n ( + ) 0)

let add_lock_wait ~qid ms =
  if enabled () && ms > 0.0 then
    with_lock (fun () ->
        match Hashtbl.find_opt by_qid qid with
        | Some e -> e.lock_wait_ms <- e.lock_wait_ms +. ms
        | None -> add_pending pending_wait qid ms ( +. ) 0.0)

(* A snapshot-isolation first-committer-wins abort, attributed to the
   transaction's statements via its qid — the SI counterpart of
   lock-wait attribution (conflicts are where SI pays what 2PL pays in
   waits). *)
let add_conflict ~qid =
  if enabled () then
    with_lock (fun () ->
        match Hashtbl.find_opt by_qid qid with
        | Some e -> e.conflicts <- e.conflicts + 1
        | None -> add_pending pending_conflicts qid 1 ( + ) 0)

let clear () =
  with_lock (fun () ->
      Hashtbl.reset entries;
      Hashtbl.reset by_qid;
      Queue.clear qid_order;
      Hashtbl.reset pending_wal;
      Hashtbl.reset pending_wait;
      Hashtbl.reset pending_conflicts)

let cardinality () = with_lock (fun () -> Hashtbl.length entries)

let quantile_or_zero h p =
  let v = Histogram.quantile h p in
  if Float.is_nan v then 0.0 else v

let finite_or_zero v = if Float.is_finite v then v else 0.0

let row_of_entry e =
  {
    r_fingerprint = e.fp;
    r_text = e.text;
    r_lang = e.lang;
    r_calls = e.calls;
    r_rows = e.rows;
    r_tuples = e.tuples;
    r_wal_bytes = e.wal_bytes;
    r_lock_wait_ms = e.lock_wait_ms;
    r_conflicts = e.conflicts;
    r_total_ms = Histogram.sum e.hist;
    r_min_ms = finite_or_zero (Histogram.min_value e.hist);
    r_max_ms = finite_or_zero (Histogram.max_value e.hist);
    r_p50_ms = quantile_or_zero e.hist 0.5;
    r_p99_ms = quantile_or_zero e.hist 0.99;
    r_last_qid = e.last_qid;
  }

(* Sorted by cumulative wall time, then fingerprint so equal-cost rows
   (common in tests: everything 0ms-ish) order deterministically. *)
let snapshot () =
  let rows =
    with_lock (fun () -> Hashtbl.fold (fun _ e acc -> row_of_entry e :: acc) entries [])
  in
  List.sort
    (fun a b ->
      match compare b.r_total_ms a.r_total_ms with
      | 0 -> compare a.r_fingerprint b.r_fingerprint
      | c -> c)
    rows

let truncate_text ?(width = 48) s =
  if String.length s <= width then s else String.sub s 0 (width - 1) ^ "…"

let render_top ?(limit = 20) () =
  let rows = snapshot () in
  let shown = List.filteri (fun i _ -> i < limit) rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %6s %10s %8s %8s %8s %9s %8s %6s %-4s %s\n"
       "fingerprint" "calls" "total_ms" "p50_ms" "p99_ms" "rows" "wal_B"
       "lock_ms" "confl" "lang" "statement");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %6d %10.2f %8.2f %8.2f %8d %9d %8.2f %6d %-4s %s\n"
           r.r_fingerprint r.r_calls r.r_total_ms r.r_p50_ms r.r_p99_ms r.r_rows
           r.r_wal_bytes r.r_lock_wait_ms r.r_conflicts r.r_lang
           (truncate_text r.r_text)))
    shown;
  if List.length rows > limit then
    Buffer.add_string buf (Printf.sprintf "… %d more\n" (List.length rows - limit));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  let rows = snapshot () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"statements\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"fingerprint\":\"%s\",\"text\":\"%s\",\"lang\":\"%s\",\"calls\":%d,\"rows\":%d,\"tuples\":%d,\"wal_bytes\":%d,\"lock_wait_ms\":%.3f,\"conflicts\":%d,\"total_ms\":%.3f,\"min_ms\":%.3f,\"max_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"last_qid\":\"%s\"}"
           r.r_fingerprint (json_escape r.r_text) (json_escape r.r_lang) r.r_calls
           r.r_rows r.r_tuples r.r_wal_bytes r.r_lock_wait_ms r.r_conflicts
           r.r_total_ms r.r_min_ms
           r.r_max_ms r.r_p50_ms r.r_p99_ms (json_escape r.r_last_qid)))
    rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_prometheus ?(prefix = "mxra_stmt_") () =
  let rows = snapshot () in
  let labels r = [ ("fingerprint", r.r_fingerprint); ("lang", r.r_lang) ] in
  let family kind name help pick =
    Prometheus.labeled ~help ~kind (prefix ^ name)
      (List.map (fun r -> (labels r, pick r)) rows)
  in
  family "counter" "calls_total" "executions per statement fingerprint"
    (fun r -> float_of_int r.r_calls)
  ^ family "counter" "ms_total" "cumulative wall ms per statement fingerprint"
      (fun r -> r.r_total_ms)
  ^ family "counter" "rows_total" "rows returned per statement fingerprint"
      (fun r -> float_of_int r.r_rows)
  ^ family "counter" "wal_bytes_total" "WAL payload bytes per statement fingerprint"
      (fun r -> float_of_int r.r_wal_bytes)
  ^ family "counter" "lock_wait_ms_total" "lock-wait ms per statement fingerprint"
      (fun r -> r.r_lock_wait_ms)
  ^ family "counter" "conflicts_total"
      "snapshot-isolation write-write conflict aborts per statement fingerprint"
      (fun r -> float_of_int r.r_conflicts)
