(* A fixed-capacity ring per named series: two parallel float arrays
   (timestamps and values), a write cursor and a fill count.  Appending
   is O(1) and never allocates after the ring fills, which is what lets
   the sampler run forever without growing the heap; reads copy the
   window out oldest-first.  One mutex guards the whole store — the
   writer is the sampler domain, readers are the HTTP server domain and
   `bagdb top`, and the critical sections are a few array slots. *)

type series = {
  mutable ts : float array;
  mutable vs : float array;
  mutable head : int;  (* next write position *)
  mutable filled : int;  (* live points, <= capacity *)
}

type t = {
  capacity : int;
  lock : Mutex.t;
  table : (string, series) Hashtbl.t;
}

let create ?(capacity = 600) () =
  {
    capacity = max 1 capacity;
    lock = Mutex.create ();
    table = Hashtbl.create 32;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_series t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
      let s =
        {
          ts = Array.make t.capacity 0.0;
          vs = Array.make t.capacity 0.0;
          head = 0;
          filled = 0;
        }
      in
      Hashtbl.add t.table name s;
      s

let record t ~t_s samples =
  locked t (fun () ->
      List.iter
        (fun (name, v) ->
          let s = find_series t name in
          s.ts.(s.head) <- t_s;
          s.vs.(s.head) <- v;
          s.head <- (s.head + 1) mod t.capacity;
          if s.filled < t.capacity then s.filled <- s.filled + 1)
        samples)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
      |> List.sort String.compare)

(* Oldest-first copy of the last [n] points (all, by default). *)
let window ?n t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> [||]
      | Some s ->
          let keep =
            match n with Some n -> min (max 0 n) s.filled | None -> s.filled
          in
          Array.init keep (fun i ->
              let idx =
                (s.head - keep + i + (2 * t.capacity)) mod t.capacity
              in
              (s.ts.(idx), s.vs.(idx))))

let latest t name =
  match window ~n:1 t name with
  | [| p |] -> Some p
  | _ -> None

let latest_all t =
  List.filter_map
    (fun name -> Option.map (fun (_, v) -> (name, v)) (latest t name))
    (names t)

(* --- rendered views ----------------------------------------------------- *)

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* {"series":{"name":[[t,v],...],...}} — the /statz payload.  Shapes are
   flat enough for the shared Buffer-based emission (see Json). *)
let to_json ?n t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"series\":{";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\"" ^ Json.escape name ^ "\":[");
      Array.iteri
        (fun j (ts, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "[%.3f,%s]" ts
               (if Float.is_finite v then number v else "null")))
        (window ?n t name);
      Buffer.add_char buf ']')
    (names t);
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

(* The `bagdb top` table: one row per series over the retained window —
   last value, window mean, min, max, and the point count. *)
let render_top t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-28s %12s %12s %12s %12s %6s\n" "series" "last" "mean" "min" "max"
    "points";
  List.iter
    (fun name ->
      let w = window t name in
      if Array.length w > 0 then begin
        let vs = Array.map snd w in
        let n = Array.length vs in
        let sum = Array.fold_left ( +. ) 0.0 vs in
        let mn = Array.fold_left Float.min Float.infinity vs in
        let mx = Array.fold_left Float.max Float.neg_infinity vs in
        add "%-28s %12s %12s %12s %12s %6d\n" name
          (number vs.(n - 1))
          (number (sum /. float_of_int n))
          (number mn) (number mx) n
      end)
    (names t);
  Buffer.contents buf

(* Prometheus gauges: the latest point of every series, name sanitised. *)
let to_prometheus ?(prefix = "mxra_") t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Prometheus.gauge
           ~help:("latest sampled value of " ^ name)
           (prefix ^ name) v))
    (latest_all t);
  Buffer.contents buf
