(* The sampler is one background systhread running a fixed-cadence
   loop: call every probe, push the results into the {!Timeseries}
   store with one shared timestamp, sleep, repeat.  Probes are closures
   supplied by the layers that own the state (the domain pool, the
   scheduler, the store, the CLI's live database view) so this module
   depends on nothing above lib/obs.  A probe that raises is skipped
   for that round — telemetry must never take the server down.

   A systhread, deliberately not a domain: a second domain — even one
   asleep in a blocking section — makes every minor collection a
   stop-the-world handshake, which costs double-digit percent on
   allocation-heavy queries when the machine has few cores (E14
   measures this).  A thread inside the main domain adds no STW
   participant; it runs whenever the query thread blocks or yields,
   which on a 100 ms cadence is all the punctuality sampling needs.

   Sleeping happens in short slices so [stop] returns promptly even at
   multi-second intervals. *)

type probe = unit -> (string * float) list

type t = {
  store : Timeseries.t;
  probes : (probe * bool ref) list;
      (* the ref marks "already logged a failure for this probe" *)
  interval_ms : float;
  running : bool Atomic.t;
  rounds : int Atomic.t;
  failures : int Atomic.t;
  mutable thread : Thread.t option;
}

let take_sample t =
  let now = Unix.gettimeofday () in
  let samples =
    List.concat_map
      (fun (probe, warned) ->
        match probe () with
        | s -> s
        | exception exn ->
            (* A raising probe is skipped for the round, never fatal:
               telemetry must not take the process down.  Complain once
               per probe — a broken closure on a 100 ms cadence would
               otherwise flood stderr. *)
            Atomic.incr t.failures;
            if not !warned then begin
              warned := true;
              Printf.eprintf "sampler: probe raised %s; skipping it this round\n%!"
                (Printexc.to_string exn)
            end;
            [])
      t.probes
  in
  (match Timeseries.record t.store ~t_s:now samples with
  | () -> ()
  | exception exn ->
      Atomic.incr t.failures;
      Printf.eprintf "sampler: record failed: %s\n%!" (Printexc.to_string exn));
  Atomic.incr t.rounds

let sample_now = take_sample

let loop t =
  let slice_s = Float.min 0.05 (t.interval_ms /. 1000.0) in
  let rec sleep_until deadline =
    if Atomic.get t.running then begin
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        Unix.sleepf (Float.min slice_s (deadline -. now));
        sleep_until deadline
      end
    end
  in
  (* Ticks are scheduled against absolute deadlines (epoch + k·interval)
     rather than "now + interval": sleeping a fixed interval *after* the
     probes run makes the real cadence interval + probe-time, drifting
     further behind the wall clock the busier the process gets.  When a
     round overruns its deadline entirely, the missed ticks are skipped
     rather than fired back-to-back — a late sampler must not burst. *)
  let interval_s = t.interval_ms /. 1000.0 in
  let epoch = Unix.gettimeofday () in
  let tick = ref 0 in
  while Atomic.get t.running do
    take_sample t;
    incr tick;
    let now = Unix.gettimeofday () in
    while epoch +. (float_of_int !tick *. interval_s) <= now do
      incr tick
    done;
    sleep_until (epoch +. (float_of_int !tick *. interval_s))
  done

let start ?(interval_ms = 1000.0) ?capacity ~probes () =
  let t =
    {
      store = Timeseries.create ?capacity ();
      probes = List.map (fun p -> (p, ref false)) probes;
      interval_ms = Float.max 1.0 interval_ms;
      running = Atomic.make true;
      rounds = Atomic.make 0;
      failures = Atomic.make 0;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create loop t);
  t

let store t = t.store
let rounds t = Atomic.get t.rounds
let failures t = Atomic.get t.failures

let stop t =
  if Atomic.exchange t.running false then
    match t.thread with
    | Some th ->
        t.thread <- None;
        Thread.join th
    | None -> ()

(* --- built-in probes ---------------------------------------------------- *)

(* GC pressure from [Gc.quick_stat] — the cheap counters only, no heap
   walk.  Words are reported as-is (floats); collections as counts. *)
let gc_probe () =
  let s = Gc.quick_stat () in
  [
    ("gc.minor_words", s.Gc.minor_words);
    ("gc.promoted_words", s.Gc.promoted_words);
    ("gc.major_words", s.Gc.major_words);
    ("gc.minor_collections", float_of_int s.Gc.minor_collections);
    ("gc.major_collections", float_of_int s.Gc.major_collections);
    ("gc.heap_words", float_of_int s.Gc.heap_words);
    ("gc.top_heap_words", float_of_int s.Gc.top_heap_words);
  ]

let uptime_epoch = Unix.gettimeofday ()

let uptime_probe () = [ ("process.uptime_s", Unix.gettimeofday () -. uptime_epoch) ]
