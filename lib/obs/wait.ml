(* The wait-event taxonomy: a fixed, closed set of classes naming what
   a session can be doing when it is not making progress on its own
   CPU — blocked on a 2PL lock, aborted by first-committer-wins
   validation, inside a WAL write or fsync, or drained behind the
   domain pool's morsel queue — plus [cpu.exec], the "not waiting"
   class an ASH sample reports for a running statement.

   Accounting is two atomics per class (occurrences and cumulative
   microseconds), so the begin/end paths the engine threads through
   Scheduler / Store / Pool stay cheap enough to leave on in
   production: one [note] is an atomic increment and an atomic add.
   Per-session attribution (which qid is waiting right now, the ASH
   ring) lives in {!Ash}; this module is only the taxonomy and the
   process-lifetime counters. *)

type class_ =
  | Lock  (** 2PL: blocked acquiring a relation lock *)
  | Conflict  (** SI: first-committer-wins validation abort *)
  | Io_fsync  (** WAL fsync (including the shared group-commit sync) *)
  | Io_wal  (** WAL append write *)
  | Pool_queue  (** domain-pool morsel-queue drain *)
  | Cpu_exec  (** on CPU executing operators — the non-wait class *)

let all = [ Lock; Conflict; Io_fsync; Io_wal; Pool_queue; Cpu_exec ]

let name = function
  | Lock -> "lock"
  | Conflict -> "conflict"
  | Io_fsync -> "io.fsync"
  | Io_wal -> "io.wal"
  | Pool_queue -> "pool.queue"
  | Cpu_exec -> "cpu.exec"

let of_name s =
  List.find_opt (fun c -> name c = s) all

let slot = function
  | Lock -> 0
  | Conflict -> 1
  | Io_fsync -> 2
  | Io_wal -> 3
  | Pool_queue -> 4
  | Cpu_exec -> 5

let n_classes = 6
let counts = Array.init n_classes (fun _ -> Atomic.make 0)
let total_us = Array.init n_classes (fun _ -> Atomic.make 0)

let now_us () = Unix.gettimeofday () *. 1e6

let note cls dur_us =
  let i = slot cls in
  Atomic.incr counts.(i);
  ignore
    (Atomic.fetch_and_add total_us.(i)
       (int_of_float (Float.max 0.0 dur_us)))

let count cls = Atomic.get counts.(slot cls)
let waited_ms cls = float_of_int (Atomic.get total_us.(slot cls)) /. 1000.0

let reset () =
  Array.iter (fun a -> Atomic.set a 0) counts;
  Array.iter (fun a -> Atomic.set a 0) total_us

(* Sampler probe: one count and one cumulative-ms series per class,
   always present so the series catalogue is stable from the first
   scrape. *)
let telemetry () =
  List.concat_map
    (fun cls ->
      [
        ("wait." ^ name cls ^ "_count", float_of_int (count cls));
        ("wait." ^ name cls ^ "_ms", waited_ms cls);
      ])
    all

let to_prometheus ?(prefix = "mxra_wait_") () =
  let per_class pick = List.map (fun c -> ([ ("class", name c) ], pick c)) all in
  Prometheus.labeled ~help:"wait events observed, by wait class"
    ~kind:"counter" (prefix ^ "events_total")
    (per_class (fun c -> float_of_int (count c)))
  ^ Prometheus.labeled ~help:"cumulative wait milliseconds, by wait class"
      ~kind:"counter" (prefix ^ "ms_total")
      (per_class waited_ms)
