(* A deliberately small HTTP/1.0 server over raw Unix sockets: one
   listening socket, one accept loop on a dedicated systhread, one
   request per connection, [Connection: close].  That is all a scrape
   endpoint needs — Prometheus, curl and `bagdb top` all speak it — and
   it keeps the telemetry path free of external dependencies.

   A systhread, not a domain, for the same reason as {!Sampler}: an
   extra domain turns every minor collection into a stop-the-world
   handshake, taxing the very queries the endpoint is meant to observe.
   The thread spends its life blocked in [Unix.select] (a blocking
   section, so the query thread runs unimpeded) and wakes only to
   answer a scrape.

   The accept loop polls with [Unix.select] at a short timeout instead
   of blocking, so [stop] (an atomic flag) is observed promptly and
   portably; handler exceptions become 500s, not crashes.  Handlers run
   on the server thread concurrently with query work, so everything
   they touch must be thread-safe — which the Agg_sink and Timeseries
   stores are by construction (they are mutex-guarded for domain
   safety, which covers systhreads too). *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type handler = string -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  running : bool Atomic.t;
  mutable thread : Thread.t option;
}

(* A write to a peer that already hung up (curl --max-time, a cancelled
   scrape) must surface as EPIPE — which the accept loop swallows — not
   as SIGPIPE, whose default action kills the whole process: the
   telemetry port must never be a kill switch for the database.  Forced
   once, on first server or client use; harmless where SIGPIPE does not
   exist. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  let payload = head ^ body in
  let n = String.length payload in
  let rec write_all off =
    if off < n then
      let k = Unix.write_substring fd payload off (n - off) in
      write_all (off + k)
  in
  write_all 0

(* Read until the blank line ending the request head (we never accept
   bodies), bounded so a hostile peer cannot grow the buffer forever. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 16_384 then Buffer.contents buf
    else
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 k;
        let s = Buffer.contents buf in
        let rec has_end i =
          if i + 3 >= String.length s then false
          else if
            s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
          then true
          else has_end (i + 1)
        in
        if has_end 0 then s else go ()
      end
  in
  go ()

(* "GET /metrics HTTP/1.1" -> (meth, path); query strings stripped. *)
let parse_request_line head =
  match String.index_opt head '\n' with
  | None -> None
  | Some eol -> (
      let line = String.trim (String.sub head 0 eol) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Some (meth, path)
      | _ -> None)

let serve_connection handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match parse_request_line (read_head fd) with
      | None -> write_response fd (text ~status:405 "bad request\n")
      | Some (meth, path) ->
          let response =
            if meth <> "GET" then text ~status:405 "GET only\n"
            else
              match handler path with
              | Some r -> r
              | None -> text ~status:404 "not found\n"
              | exception e ->
                  text ~status:500 (Printexc.to_string e ^ "\n")
          in
          write_response fd response)

let accept_loop t handler =
  while Atomic.get t.running do
    match Unix.select [ t.sock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | fd, _ -> (
            (* A peer that connects and then goes silent must not park
               the single-threaded loop in [read] forever, wedging every
               endpoint and [stop]'s join: bound both directions so a
               stalled connection errors out (EAGAIN, swallowed below)
               and the loop returns to [select]. *)
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0
             with Unix.Unix_error _ | Invalid_argument _ -> ());
            try serve_connection handler fd
            with Unix.Unix_error _ | Sys_error _ -> ())
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done;
  (try Unix.close t.sock with Unix.Unix_error _ -> ())

let start ?(host = "127.0.0.1") ~port handler =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind sock addr
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 16;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { sock; port = bound_port; running = Atomic.make true; thread = None }
  in
  t.thread <- Some (Thread.create (fun () -> accept_loop t handler) ());
  t

let port t = t.port

let stop t =
  if Atomic.exchange t.running false then
    match t.thread with
    | Some th ->
        t.thread <- None;
        Thread.join th
    | None -> ()

(* --- a matching client --------------------------------------------------
   `bagdb top` and the tests need to fetch one page; a GET over the same
   dialect the server speaks keeps both ends dependency-free. *)

let get ?(host = "127.0.0.1") ~port path =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let request =
        Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host
      in
      let n = String.length request in
      let rec write_all off =
        if off < n then
          let k = Unix.write_substring sock request off (n - off) in
          write_all (off + k)
      in
      write_all 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec read_all () =
        let k = Unix.read sock chunk 0 (Bytes.length chunk) in
        if k > 0 then begin
          Buffer.add_subbytes buf chunk 0 k;
          read_all ()
        end
      in
      read_all ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      (status, body))
