(* Statement fingerprinting: map statement text onto a stable identity
   that survives the two kinds of noise that make raw text useless as a
   registry key — literal constants and formatting.  [normalize] folds
   case, strips comments and whitespace, and replaces every literal
   (quoted string or number) with [?]; [fingerprint] hashes the result
   with FNV-1a 64 so the key is short enough for a label value and a
   table column.

   The scan is purely lexical and deliberately front-end agnostic: it
   does not parse XRA or SQL, it only has to agree with both lexers on
   what a string literal, a number, an identifier and a comment look
   like.  Attribute references like [%1] keep their digits — the index
   is shape, not data; [amount > 100] and [amount > 250] are the same
   shape, [%1 > ?] and [%2 > ?] are not. *)

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Characters that must stay separated by a space when the source had
   one: two identifiers, an identifier and a placeholder, etc.
   Punctuation binds tightly, so [select [%1>3]] and [select[ %1 > 3 ]]
   normalize identically. *)
let identish = function
  | 'a' .. 'z' | '0' .. '9' | '_' | '?' | '%' | '.' -> true
  | _ -> false

let normalize src =
  let n = String.length src in
  let buf = Buffer.create n in
  let pending_space = ref false in
  let last () =
    if Buffer.length buf = 0 then '\000' else Buffer.nth buf (Buffer.length buf - 1)
  in
  let emit c =
    (* Fold case before the separation test: the buffer is lowercase,
       so an uppercase identifier start ('FROM' after 'wait_class')
       must count as identish exactly like its lowercase form. *)
    let c = Char.lowercase_ascii c in
    if !pending_space then begin
      if identish (last ()) && identish c then Buffer.add_char buf ' ';
      pending_space := false
    end;
    Buffer.add_char buf c
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
      pending_space := true;
      incr i
    end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment: gone, like whitespace *)
      while !i < n && src.[!i] <> '\n' do incr i done;
      pending_space := true
    end
    else if c = '\'' then begin
      (* quoted string ('' escapes itself in both front-ends) -> ? *)
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then i := !i + 2
          else begin
            closed := true;
            incr i
          end
        else incr i
      done;
      emit '?'
    end
    else if is_digit c && last () = '%' && not !pending_space then
      (* attribute reference %k: the index is part of the shape *)
      while !i < n && is_digit src.[!i] do
        emit src.[!i];
        incr i
      done
    else if is_digit c then begin
      (* numeric literal: digits [. digits] [e[+-]digits] -> ? *)
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      if !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do incr j done
      end;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        let k = if !j + 1 < n && (src.[!j + 1] = '+' || src.[!j + 1] = '-') then !j + 2 else !j + 1 in
        if k < n && is_digit src.[k] then begin
          j := k;
          while !j < n && is_digit src.[!j] do incr j done
        end
      end;
      emit '?';
      i := !j
    end
    else if is_ident_start c then
      (* identifier, possibly dotted (sys.statements, t.col) *)
      while
        !i < n
        && (is_ident_char src.[!i]
           || (src.[!i] = '.' && !i + 1 < n && is_ident_start src.[!i + 1]))
      do
        emit src.[!i];
        incr i
      done
    else begin
      emit c;
      incr i
    end
  done;
  Buffer.contents buf

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across runs and
   platforms — exactly what a fingerprint printed into WAL-adjacent
   artifacts needs (Hashtbl.hash is documented as unstable). *)
let hash64 s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let fingerprint src = Printf.sprintf "%016Lx" (hash64 (normalize src))
