(* Process-unique query identifiers.  A plain atomic counter: ids are
   deterministic within a run ("q000001", "q000002", ...), which is what
   lets cram tests pin them, and unique across domains, which is what
   the scheduler needs when minting under interleaving. *)

let counter = Atomic.make 0

let mint () = Printf.sprintf "q%06d" (Atomic.fetch_and_add counter 1 + 1)

let attr_key = "query_id"

let minted () = Atomic.get counter

let reset () = Atomic.set counter 0
