(* Minimal JSON emission helpers shared by the sinks.  The container
   image carries no JSON library; the shapes we write are flat enough
   that a Buffer and an escaper suffice (same choice as the bench
   harness's BENCH_*.json writers). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_value = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f ->
      if Float.is_finite f then Printf.sprintf "%.4f" f else "null"
  | Trace.Str s -> "\"" ^ escape s ^ "\""
  | Trace.Bool b -> string_of_bool b

(* {"k":v,...} with keys escaped; [] yields {}. *)
let of_attrs attrs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\"" ^ escape k ^ "\":" ^ of_value v))
    attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf
