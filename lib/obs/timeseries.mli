(** A ring-buffer time-series store for live telemetry.

    Each named series keeps the last [capacity] points (default 600 —
    ten minutes at a one-second sampling interval) in a fixed ring:
    appending is O(1) and allocation-free once the ring fills, so the
    resource sampler can feed it forever.  A single mutex guards the
    store; the writer is the {!Sampler} domain and the readers are the
    {!Http_server} domain ([/statz], [/topz], [/metrics] gauges) and
    tests.  Reads hand back copies, never live arrays. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is per series, clamped to [>= 1]; default 600. *)

val capacity : t -> int

val record : t -> t_s:float -> (string * float) list -> unit
(** Append one point per named series, all at timestamp [t_s] (seconds,
    caller's clock).  Unknown series are created on first use. *)

val names : t -> string list
(** Series seen so far, sorted. *)

val window : ?n:int -> t -> string -> (float * float) array
(** The retained [(time, value)] points of a series, oldest first —
    the last [n] of them if given.  [[||]] for an unknown series. *)

val latest : t -> string -> (float * float) option
(** The newest point of a series. *)

val latest_all : t -> (string * float) list
(** The newest value of every series, sorted by name. *)

val to_json : ?n:int -> t -> string
(** [{"series":{"name":[[t,v],...],...}}] — the [/statz] payload. *)

val render_top : t -> string
(** The [bagdb top] table: per series, the last value and the window's
    mean, min, max and point count. *)

val to_prometheus : ?prefix:string -> t -> string
(** The newest value of every series as a Prometheus gauge family
    ([<prefix><sanitised name>]).  [prefix] defaults to ["mxra_"]. *)
