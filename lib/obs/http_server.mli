(** The telemetry scrape endpoint: a minimal HTTP/1.0 server over raw
    [Unix] sockets on a dedicated systhread — no external dependencies.

    One request per connection, GET only, [Connection: close]: exactly
    the dialect Prometheus scrapers, [curl] and [bagdb top] speak.
    Handlers run on the server thread and must therefore only touch
    thread-safe state ({!Agg_sink}, {!Timeseries}, atomics); a handler
    that raises produces a 500 response, never a crash. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain; charset=utf-8]; status defaults to 200. *)

val json : ?status:int -> string -> response
(** [application/json]; status defaults to 200. *)

type handler = string -> response option
(** Route a request path (query string already stripped) to a response;
    [None] is a 404. *)

type t

val start : ?host:string -> port:int -> handler -> t
(** Bind (default host 127.0.0.1; port 0 picks an ephemeral port),
    listen, and serve on a spawned systhread.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actually bound port — the answer when [start] was given 0. *)

val stop : t -> unit
(** Stop the accept loop, close the socket and join the thread;
    idempotent.  In-flight requests finish first. *)

val get : ?host:string -> port:int -> string -> int * string
(** A matching one-shot client: [GET path], returning
    [(status, body)].  Used by [bagdb top] and the tests.
    @raise Unix.Unix_error if the server cannot be reached. *)
