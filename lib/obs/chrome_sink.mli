(** Chrome trace-event sink.

    Writes the JSON object format of the Trace Event specification —
    [{"traceEvents":[...]}] — loadable in [chrome://tracing] and
    Perfetto.  Every span becomes one complete ["ph":"X"] record
    (begin and duration in a single event, so the file is balanced by
    construction even when spans end by exception), every
    {!Trace.event} an instant ["ph":"i"] record.  Timestamps are the
    microsecond values of {!Trace.now_us}. *)

val sink : out_channel -> Trace.sink
(** Stream records to the channel.  [on_close] writes the closing
    bracket and flushes; the channel itself stays open and belongs to
    the caller. *)
