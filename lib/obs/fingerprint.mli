(** Statement fingerprinting.

    Two statements that differ only in literal constants, comments,
    case or whitespace share a fingerprint; statements of different
    shape get different fingerprints (up to 64-bit hash collision).
    This is the key under which {!Stmt_stats} accumulates cumulative
    per-statement figures — the classic pg_stat_statements trick,
    done lexically so one scanner serves both the XRA and SQL
    front-ends. *)

val normalize : string -> string
(** Canonical shape of a statement: case-folded, comments stripped,
    whitespace reduced to the separations that matter, every quoted
    string and numeric literal replaced by [?].  Attribute references
    ([%1], [%2], ...) keep their index — they are shape, not data. *)

val hash64 : string -> int64
(** FNV-1a 64-bit over the given string; stable across runs and
    platforms. *)

val fingerprint : string -> string
(** [fingerprint src] = 16 lowercase hex digits of
    [hash64 (normalize src)]. *)
