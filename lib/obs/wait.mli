(** Wait-event taxonomy and always-on per-class counters.

    The closed set of things a session can be doing when sampled:
    waiting on a 2PL lock, dying to a snapshot-isolation validation
    conflict, inside a WAL append or fsync, drained behind the domain
    pool's morsel queue — or on CPU ([Cpu_exec], the non-wait class).
    Each class carries two process-lifetime atomics (occurrences,
    cumulative wait time) cheap enough to leave enabled in production;
    per-session attribution and the Active Session History ring live
    in {!Ash}. *)

type class_ =
  | Lock  (** 2PL: blocked acquiring a relation lock *)
  | Conflict  (** SI: first-committer-wins validation abort *)
  | Io_fsync  (** WAL fsync (including the shared group-commit sync) *)
  | Io_wal  (** WAL append write *)
  | Pool_queue  (** domain-pool morsel-queue drain *)
  | Cpu_exec  (** on CPU executing operators — the non-wait class *)

val all : class_ list
(** Every class, in a fixed order. *)

val name : class_ -> string
(** The wire name: ["lock"], ["conflict"], ["io.fsync"], ["io.wal"],
    ["pool.queue"], ["cpu.exec"]. *)

val of_name : string -> class_ option

val now_us : unit -> float
(** Wall clock in microseconds — the unit every wait interval uses. *)

val note : class_ -> float -> unit
(** [note cls dur_us] records one completed wait of [dur_us]
    microseconds: one atomic increment plus one atomic add.
    Durations clamp at zero; [Conflict] events pass 0. *)

val count : class_ -> int
(** Occurrences recorded for the class since process start (or
    {!reset}). *)

val waited_ms : class_ -> float
(** Cumulative wait time recorded for the class, in milliseconds. *)

val reset : unit -> unit
(** Zero every counter — tests and benches only. *)

val telemetry : unit -> (string * float) list
(** Sampler probe: [wait.<class>_count] and [wait.<class>_ms] for
    every class, always all present. *)

val to_prometheus : ?prefix:string -> unit -> string
(** Two counter families labeled by class:
    [mxra_wait_events_total{class="lock"} …] and
    [mxra_wait_ms_total{class="lock"} …]. *)
