(** Prometheus text-format rendering (exposition format 0.0.4).

    Pure string builders: each function renders one metric family
    ([# HELP] / [# TYPE] header plus samples) and the caller
    concatenates families into the page a scrape endpoint — or
    [bagdb metrics] — serves.  {!summary} renders a {!Histogram} as a
    summary family with p50/p90/p99 quantile samples plus [_sum] and
    [_count], which is how per-phase latency distributions reach the
    dashboard. *)

val sanitize : string -> string
(** Coerce an arbitrary name into [[a-zA-Z_:][a-zA-Z0-9_:]*]: illegal
    characters become ['_'], a leading digit is prefixed. *)

val escape_label : string -> string
(** Escape a label {e value} per the exposition format: backslash
    becomes backslash-backslash, double quote becomes backslash-quote,
    line feed becomes backslash-n.  Everything else — UTF-8 bytes,
    braces, commas — is legal inside the quotes and passes through. *)

val counter : ?help:string -> string -> float -> string
val gauge : ?help:string -> string -> float -> string

val labeled : ?help:string -> kind:string -> string -> ((string * string) list * float) list -> string
(** One metric family with labeled samples: a [# TYPE name kind]
    header, then [name{k="v",...} value] per sample.  Label names are
    {!sanitize}d, label values {!escape_label}ed; an empty label list
    renders a bare sample. *)

val summary : ?help:string -> string -> Histogram.t -> string
(** Quantile samples 0.5, 0.9, 0.99 (omitted when the histogram is
    empty), then [_sum] and [_count]. *)

val histogram : ?help:string -> string -> Histogram.t -> string
(** The same {!Histogram} as a Prometheus [histogram] family:
    cumulative [_bucket{le="..."}] samples in ascending bound order,
    always terminated by the mandatory [le="+Inf"] bucket (equal to
    [_count]), then [_sum] and [_count]. *)

val of_aggregate : ?prefix:string -> Agg_sink.t -> string
(** The whole aggregated span stream: a [<prefix><span>_ms] summary
    per span name, a [<prefix><span>_<attr>_total] counter per numeric
    attribute, and a [<prefix><event>_events_total] counter per
    instant event.  Families appear in sorted-name order, so the text
    is deterministic up to the measured values.  [prefix] defaults to
    ["mxra_"]. *)
