let sanitize name =
  let ok = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let body = String.map (fun c -> if ok c then c else '_') name in
  match body.[0] with
  | '0' .. '9' -> "_" ^ body
  | _ -> body
  | exception Invalid_argument _ -> "_"

(* Exposition format 0.0.4 label-value escaping: backslash, double
   quote and line feed are the only characters that need it; everything
   else (including UTF-8 bytes, braces, commas) passes through raw. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_set labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             labels)
      ^ "}"

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let header ?help name kind =
  let help_line =
    match help with
    | Some h -> Printf.sprintf "# HELP %s %s\n" name h
    | None -> ""
  in
  Printf.sprintf "%s# TYPE %s %s\n" help_line name kind

let counter ?help name v =
  let name = sanitize name in
  header ?help name "counter" ^ Printf.sprintf "%s %s\n" name (number v)

let gauge ?help name v =
  let name = sanitize name in
  header ?help name "gauge" ^ Printf.sprintf "%s %s\n" name (number v)

let labeled ?help ~kind name samples =
  let name = sanitize name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ?help name kind);
  List.iter
    (fun (labels, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (label_set labels) (number v)))
    samples;
  Buffer.contents buf

let summary ?help name h =
  let name = sanitize name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ?help name "summary");
  if Histogram.count h > 0 then
    List.iter
      (fun q ->
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"%g\"} %s\n" name q
             (number (Histogram.quantile h q))))
      [ 0.5; 0.9; 0.99 ];
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (number (Histogram.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name (Histogram.count h));
  Buffer.contents buf

let histogram ?help name h =
  let name = sanitize name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ?help name "histogram");
  (* Prometheus buckets are cumulative: each [le] sample counts every
     observation at or below that bound, and the mandatory [+Inf]
     bucket equals the total count. *)
  let cum = ref 0 in
  List.iter
    (fun (ub, n) ->
      cum := !cum + n;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (number ub) !cum))
    (Histogram.buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name (Histogram.count h));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (number (Histogram.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name (Histogram.count h));
  Buffer.contents buf

let of_aggregate ?(prefix = "mxra_") agg =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Agg_sink.durations agg name with
      | None -> ()
      | Some h ->
          Buffer.add_string buf
            (summary
               ~help:(Printf.sprintf "latency of '%s' spans" name)
               (prefix ^ name ^ "_ms")
               h))
    (Agg_sink.span_names agg);
  List.iter
    (fun (span, attr, total) ->
      Buffer.add_string buf
        (counter
           ~help:(Printf.sprintf "sum of '%s' over '%s' spans" attr span)
           (prefix ^ span ^ "_" ^ attr ^ "_total")
           total))
    (Agg_sink.attr_totals agg);
  List.iter
    (fun (name, n) ->
      Buffer.add_string buf
        (counter
           ~help:(Printf.sprintf "occurrences of '%s' events" name)
           (prefix ^ name ^ "_events_total")
           (float_of_int n)))
    (Agg_sink.event_counts agg);
  Buffer.contents buf
