(** Structured query log: one JSONL record per watched span.

    The sink ignores everything except spans whose name is listed in
    [span_names] (default [["query"; "statement"]] — interactive
    queries plus scheduler-executed statements) and whose duration is
    at least [slow_ms] milliseconds; with the default threshold of
    [0.] every watched span is logged.  Each record is a single line:

    {v
      {"ts":"2026-08-06T12:00:00.123Z","span":"query","ms":1.942,
       "lang":"xra","text":"project[%1](beer)","rows":3,
       "query_id":"q000001"}
    v}

    [ts] is the wall-clock end of the span in UTC (RFC 3339); [ms] the
    measured duration; the remaining fields are the span's attributes
    in insertion order — including the ambient [query_id] stamped by
    {!Trace.with_context}, which is the join key against the WAL's
    commit records and EXPLAIN ANALYZE span attributes.  A line is
    flushed as it is written, so a crashing process loses at most the
    record being formatted. *)

val sink : ?span_names:string list -> ?slow_ms:float -> out_channel -> Trace.sink
