(** The query optimizer.

    Section 3.3's purpose statement made executable: because the
    set-algebra equivalences survive the move to multi-sets, the classic
    rewriting optimizer applies unchanged.  The pipeline is:

    + {!Rules.normalize} — simplify, push selections, fuse σ∘× into
      joins, compose and narrow projections, collapse empties;
    + greedy join ordering over maximal ⋈/× chains (justified by
      Theorem 3.3's associativity and the commutation-via-projection
      law), driven by {!Mxra_engine.Cost} estimates;
    + a final normalization pass to clean up what reordering exposed.

    The optimizer is purely logical; handing the result to
    {!Mxra_engine.Planner} yields the physical plan.  Preservation of
    semantics is property-tested against the reference evaluator. *)

open Mxra_relational
open Mxra_core
open Mxra_engine

val optimize :
  ?stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> Expr.t
(** Optimize a well-typed expression.  Without [stats], base relations
    get default profiles, so pushdowns still happen but join ordering is
    blind to data skew.
    @raise Typecheck.Type_error on ill-typed input. *)

val optimize_db : Database.t -> Expr.t -> Expr.t
(** {!optimize} with statistics computed from the database. *)

val reorder_joins :
  stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> Expr.t
(** Only the join-ordering phase — exposed for the Theorem 3.3
    experiment and ablation benches. *)

type report = {
  input_cost : float;
  output_cost : float;
  input_size : int;  (** Operator count before. *)
  output_size : int;
  input_moved : int option;
      (** Realized cost: counted-tuple traffic measured by executing the
          unoptimized plan ({!Mxra_engine.Exec.tuples_moved}); [None]
          when the report is purely static ({!explain}). *)
  output_moved : int option;  (** Same, for the optimized plan. *)
}

val explain :
  ?stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> Expr.t * report
(** Optimize and report estimated costs before/after.  Purely static:
    the realized fields are [None]. *)

val explain_db : Database.t -> Expr.t -> Expr.t * report
(** {!explain} with the database's statistics, plus realized costs:
    both the input and the optimized plan are executed and their
    measured tuple traffic recorded — the ground truth the estimates
    are judged against. *)
