open Mxra_core
open Mxra_engine

(* --- join-chain flattening ---------------------------------------------- *)

type factor = {
  f_expr : Expr.t;
  f_arity : int;
}

(* Flatten a maximal ⋈/× chain into factors plus a conjunct pool indexed
   in the chain's flat (original) column order. *)
let rec flatten schemas e =
  match e with
  | Expr.Join (p, e1, e2) ->
      let fs1, cs1, a1 = flatten schemas e1 in
      let fs2, cs2, a2 = flatten schemas e2 in
      let shifted = List.map (Pred.shift a1) cs2 in
      (fs1 @ fs2, cs1 @ shifted @ Pred.conjuncts p, a1 + a2)
  | Expr.Product (e1, e2) ->
      let fs1, cs1, a1 = flatten schemas e1 in
      let fs2, cs2, a2 = flatten schemas e2 in
      (fs1 @ fs2, cs1 @ List.map (Pred.shift a1) cs2, a1 + a2)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Select _
  | Expr.Project _ | Expr.Intersect _ | Expr.Unique _ | Expr.GroupBy _ ->
      let arity = Mxra_relational.Schema.arity (Typecheck.infer schemas e) in
      ([ { f_expr = e; f_arity = arity } ], [], arity)

(* --- greedy reordering --------------------------------------------------- *)

(* State of a partially built left-deep join: the expression so far, its
   arity, the set of placed factors, the original→current column map, and
   the conjuncts not yet attached. *)
type build = {
  b_expr : Expr.t;
  b_arity : int;
  b_placed : int list;
  b_map : (int * int) list;  (* original global index -> current index *)
  b_pending : (int list * Pred.t) list;  (* footprint, conjunct *)
}

let offsets factors =
  let rec go acc off = function
    | [] -> List.rev acc
    | f :: rest -> go (off :: acc) (off + f.f_arity) rest
  in
  go [] 0 factors

let extend_map b ~offset ~arity b_arity =
  List.init arity (fun l -> (offset + l + 1, b_arity + l + 1)) @ b.b_map

let remap_pred mapping p =
  Pred.rename
    (fun i ->
      match List.assoc_opt i mapping with
      | Some j -> j
      | None -> invalid_arg "Optimizer.remap_pred: unplaced column")
    p

(* Attach a factor to the build, taking along every pending conjunct
   whose footprint becomes fully placed. *)
let attach factors offs b j =
  let f = List.nth factors j in
  let offset = List.nth offs j in
  let mapping = extend_map b ~offset ~arity:f.f_arity b.b_arity in
  let placed = j :: b.b_placed in
  let available fp = List.for_all (fun i -> List.mem_assoc i mapping) fp in
  let ready, pending = List.partition (fun (fp, _) -> available fp) b.b_pending in
  let cond =
    Pred.simplify (Pred.conj (List.map (fun (_, c) -> remap_pred mapping c) ready))
  in
  let expr =
    match b.b_expr with
    | e when Pred.equal cond Pred.True -> Expr.Product (e, f.f_expr)
    | e -> Expr.Join (cond, e, f.f_expr)
  in
  {
    b_expr = expr;
    b_arity = b.b_arity + f.f_arity;
    b_placed = placed;
    b_map = mapping;
    b_pending = pending;
  }

let initial factors offs j =
  let f = List.nth factors j in
  let offset = List.nth offs j in
  {
    b_expr = f.f_expr;
    b_arity = f.f_arity;
    b_placed = [ j ];
    b_map = List.init f.f_arity (fun l -> (offset + l + 1, l + 1));
    b_pending = [];
  }

let greedy ~stats ~schemas factors conjuncts =
  let offs = offsets factors in
  let n = List.length factors in
  let card e = Cost.estimate_cardinality ~stats ~schemas e in
  let pending = List.map (fun c -> (Pred.attrs_used c, c)) conjuncts in
  (* Start from the smallest factor. *)
  let start =
    List.mapi (fun j f -> (card f.f_expr, j)) factors
    |> List.sort compare |> List.hd |> snd
  in
  let b0 = { (initial factors offs start) with b_pending = pending } in
  let rec grow b =
    if List.length b.b_placed = n then b
    else
      let candidates =
        List.init n (fun j -> j)
        |> List.filter (fun j -> not (List.mem j b.b_placed))
        |> List.map (fun j ->
               let b' = attach factors offs b j in
               (card b'.b_expr, b'))
      in
      let _, best = List.sort compare candidates |> List.hd in
      grow best
  in
  let b = grow b0 in
  (* Restore the original column order. *)
  let total = List.fold_left (fun acc f -> acc + f.f_arity) 0 factors in
  let restore =
    List.init total (fun g ->
        match List.assoc_opt (g + 1) b.b_map with
        | Some j -> j
        | None -> invalid_arg "Optimizer.greedy: unplaced column")
  in
  let identity = List.for_all2 ( = ) restore (List.init total (fun i -> i + 1)) in
  if identity then b.b_expr else Expr.project_attrs restore b.b_expr

(* sort + hd on (float, _) pairs uses polymorphic compare on the float
   key first, which is the intent; builds are never compared because
   cardinalities of distinct candidates tie only rarely — still, make
   ties deterministic by pairing with the candidate index. *)

let rec reorder ~stats ~schemas e =
  match e with
  | Expr.Join _ | Expr.Product _ ->
      let factors, conjuncts, _ = flatten schemas e in
      let factors =
        List.map
          (fun f -> { f with f_expr = reorder_children ~stats ~schemas f.f_expr })
          factors
      in
      if List.length factors < 3 then
        rebuild_flat factors conjuncts
      else
        let candidate = greedy ~stats ~schemas factors conjuncts in
        let original = rebuild_flat factors conjuncts in
        if
          Cost.cost ~stats ~schemas candidate
          < Cost.cost ~stats ~schemas original
        then candidate
        else original
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Select _
  | Expr.Project _ | Expr.Intersect _ | Expr.Unique _ | Expr.GroupBy _ ->
      reorder_children ~stats ~schemas e

and reorder_children ~stats ~schemas e =
  Expr.map_children (reorder ~stats ~schemas) e

(* Rebuild a flattened chain in its original factor order (used when the
   chain is too short to reorder, and as the baseline the greedy result
   must beat). *)
and rebuild_flat factors conjuncts =
  match factors with
  | [] -> invalid_arg "Optimizer.rebuild_flat: no factors"
  | first :: rest ->
      let offs = offsets factors in
      let b0 =
        {
          (initial factors offs 0) with
          b_pending = List.map (fun c -> (Pred.attrs_used c, c)) conjuncts;
        }
      in
      ignore first;
      let b =
        List.fold_left
          (fun b j -> attach factors offs b j)
          b0
          (List.init (List.length rest) (fun i -> i + 1))
      in
      (* Original order: the column map is the identity. *)
      b.b_expr

let reorder_joins ~stats ~schemas e = reorder ~stats ~schemas e

type report = {
  input_cost : float;
  output_cost : float;
  input_size : int;
  output_size : int;
  input_moved : int option;
  output_moved : int option;
}

let default_stats : Stats.env = fun _ -> None

module Trace = Mxra_obs.Trace

let optimize ?(stats = default_stats) ~schemas e =
  Trace.with_span "optimize"
    ~attrs:[ ("input_ops", Trace.Int (Expr.size e)) ]
    (fun () ->
      ignore (Typecheck.infer schemas e);
      let normalized =
        Trace.with_span "optimize.normalize" (fun () ->
            Rules.normalize schemas e)
      in
      let reordered =
        Trace.with_span "optimize.reorder" (fun () ->
            reorder_joins ~stats ~schemas normalized)
      in
      let result = Rules.normalize schemas reordered in
      Trace.add_attr "output_ops" (Trace.Int (Expr.size result));
      result)

let optimize_db db e =
  optimize
    ~stats:(Stats.env_of_database db)
    ~schemas:(Typecheck.env_of_database db)
    e

let explain ?(stats = default_stats) ~schemas e =
  let optimized = optimize ~stats ~schemas e in
  {
    input_cost = Cost.cost ~stats ~schemas e;
    output_cost = Cost.cost ~stats ~schemas optimized;
    input_size = Expr.size e;
    output_size = Expr.size optimized;
    input_moved = None;
    output_moved = None;
  }
  |> fun report -> (optimized, report)

let explain_db db e =
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  let optimized, report = explain ~stats ~schemas e in
  let moved e = Exec.tuples_moved db (Planner.plan db e) in
  ( optimized,
    { report with
      input_moved = Some (moved e);
      output_moved = Some (moved optimized) } )
