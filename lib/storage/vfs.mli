(** File-system abstraction with fault injection.

    The store performs all durable I/O through a {!t} — a record of
    closures over some backing medium.  Three backends exist:

    - {!real}: the actual file system ([open]/[write]/[fsync]/
      [rename]/[truncate]);
    - {!memory}: an in-process file system with an explicit {e synced}
      boundary per file, so that the effect of a power failure (all
      unsynced bytes lost, possibly keeping a torn prefix) can be
      modelled exactly;
    - {!inject}: a wrapper over a fresh memory backend that counts
      mutating syscalls and, driven by a seeded RNG, fails them
      transiently ({!Injected}), short-writes them, or "pulls the plug"
      at a chosen syscall index ({!Crash}).

    The injection model follows the crash-consistency literature
    (e.g. CrashMonkey, ALICE): at a crash, each file keeps its synced
    prefix plus an arbitrary — possibly bit-flipped — prefix of its
    unsynced tail.  Checksummed WAL records plus truncate-on-torn-tail
    recovery are exactly what make this survivable. *)

exception Crash
(** Simulated power failure.  Raised by every operation of an injected
    backend once its crash point is reached; never caught by the store —
    the torture harness catches it and re-opens through {!injected.base}. *)

exception Injected of string
(** Simulated transient fault (EIO-style).  The store retries these with
    bounded backoff after truncating back to the last known-good WAL
    length. *)

type handle = {
  h_write : string -> unit;  (** Append bytes (buffered, not durable). *)
  h_sync : unit -> unit;  (** Make all appended bytes durable. *)
  h_close : unit -> unit;
}

type t = {
  read_file : string -> string option;  (** [None] when absent. *)
  write_file : string -> string -> unit;
      (** Create or replace with the given contents, synced. *)
  open_append : string -> handle;  (** Create if absent. *)
  truncate : string -> int -> unit;
      (** Cut the file to the given byte length (no-op when already
          shorter); drops any unsynced tail beyond it. *)
  rename : string -> string -> unit;  (** Atomic replace. *)
  remove : string -> unit;
  exists : string -> bool;
  is_directory : string -> bool;
  mkdir : string -> unit;
}

val real : t
(** The host file system.  [h_sync] is a genuine [fsync]. *)

val memory : unit -> t
(** A fresh, private in-memory file system (no fault injection). *)

(** {1 Fault injection} *)

type fault_config = {
  crash_at : int;
      (** Crash at this (1-based) mutating-syscall index; [0] never
          crashes. *)
  fail_every : int;
      (** Raise {!Injected} on every [n]-th write/sync syscall; the
          failing write first appends a short (torn) prefix.  [0]
          disables.  Because the counter keeps advancing, an immediate
          retry of the same operation succeeds — deterministic, so
          retry tests cannot flake. *)
  torn_writes : bool;
      (** At a crash, keep a random prefix of each file's unsynced tail
          (instead of dropping it whole). *)
  corrupt_torn_byte : bool;
      (** Additionally flip a bit somewhere in the surviving torn
          prefix — the checksum must catch this. *)
}

val no_faults : fault_config
(** [{crash_at = 0; fail_every = 0; torn_writes = true;
     corrupt_torn_byte = true}] — counts syscalls, injects nothing. *)

type injected = {
  vfs : t;  (** The injecting view; raises per the configuration. *)
  base : t;
      (** A clean view over the same files — what a reboot sees.  After
          a crash the torn-tail transformation has already been
          applied. *)
  syscalls : unit -> int;  (** Mutating syscalls performed so far. *)
  crashed : unit -> bool;
  transients : unit -> int;  (** {!Injected} faults raised so far. *)
  rearm : ?seed:int -> fault_config -> unit;
      (** Reset the syscall counter and crash state with a new
          configuration, keeping the files — enables a second crash
          during recovery from the first. *)
}

val inject : ?seed:int -> fault_config -> injected
(** A fresh memory file system behind an injecting view. *)
