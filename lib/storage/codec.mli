(** Textual serialisation of database states.

    The snapshot format reuses the XRA concrete syntax: a database is a
    sequence of [create] commands and literal-relation [insert]
    statements, so a snapshot file is a valid XRA script and can be
    replayed by the ordinary parser.  Choosing the language itself as
    the storage format keeps exactly one grammar in the system and makes
    snapshots human-readable.

    A snapshot opens with directive comments:

    - [-- @crc XXXXXXXX] — CRC-32 of every byte after this line;
      {!decode_database} verifies it and raises {!Corrupt} on mismatch,
      so a bit-flipped snapshot is rejected instead of parsed into
      garbage.  A snapshot without the directive (hand-written) is
      accepted unverified.
    - [-- @time N] — the logical clock (Definition 2.6).
    - [-- @wal K] — the id of the last WAL record whose effects this
      snapshot already contains; recovery replays only records with
      greater ids, which makes the checkpoint sequence
      write-snapshot → rename → truncate-log crash-safe at {e every}
      intermediate point (a WAL that outlives its covering snapshot is
      skipped, never double-applied).

    Only persistent relations are serialised; temporaries are
    transaction-local by Definition 4.3 and never reach disk. *)

open Mxra_relational

exception Corrupt of string
(** A checksum failed: the bytes are not what was written.  Decoders
    raise this {e before} attempting to parse. *)

val encode_database : ?wal_covered:int -> Database.t -> string
(** An XRA script that rebuilds the persistent relations (sorted by
    name), prefixed with the [@crc], [@time] and (when [wal_covered] is
    non-zero) [@wal] directives. *)

val decode_database : string -> Database.t
(** Rebuild a state from a snapshot script.
    @raise Corrupt on a checksum mismatch;
    @raise Mxra_xra.Parser.Parse_error / [Mxra_xra.Lexer.Lex_error] on a
    corrupt snapshot without a verifiable checksum. *)

val decode_snapshot : string -> Database.t * int
(** Like {!decode_database} but also returns the [@wal] coverage id
    (0 when absent) — the store's recovery entry point. *)

val encode_statement : Mxra_core.Statement.t -> string
(** One-line XRA rendering of a statement, for the write-ahead log. *)

val decode_statement : string -> Mxra_core.Statement.t
