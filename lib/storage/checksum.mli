(** CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).

    Every durable byte the store writes — WAL records and snapshot
    bodies — is covered by a CRC so that recovery can tell a torn or
    bit-flipped tail from valid data instead of feeding garbage to the
    parser.  CRC-32 detects all single-byte corruptions and all burst
    errors up to 32 bits, which is exactly the failure shape of a torn
    sector write. *)

val string : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex rendering ([%08x]) — the on-disk form. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
