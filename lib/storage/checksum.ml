(* CRC-32 as in IEEE 802.3 / zlib: reflected polynomial 0xEDB88320,
   initial value and final xor 0xFFFFFFFF.  OCaml's native ints hold the
   32-bit state directly on 64-bit platforms. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let to_hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 -> Some v
    | Some _ | None -> None
