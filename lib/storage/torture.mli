(** Crash-recovery torture harness.

    The paper's database transitions (§2, Definition 2.6) promise that
    every transaction moves the store from one consistent instance to
    the next.  This module states the durable version of that promise as
    a checkable oracle and checks it {e exhaustively}:

    {e prefix consistency} — after a crash at any syscall, the recovered
    instance is bag-equal (per relation) to the instance produced by
    some prefix of the acknowledged transaction sequence; every
    acknowledged transaction survives, an unacknowledged in-flight one
    may or may not, and nothing else changes.  With group commit
    ([group_commit > 1]) the in-flight unit is a whole group sharing
    one WAL append + fsync, and the oracle is correspondingly stricter
    at {e transaction} granularity: a partially fsynced group must
    recover to a {e leading prefix} of the group's commit order — never
    a subset in which a later member survives an earlier member's
    loss.

    The harness generates a seeded random transaction workload
    (inserts, deletes, updates, temporaries; periodic checkpoints),
    runs it once crash-free over an injected in-memory {!Vfs} to count
    syscalls and to build the pure in-memory {e shadow history}, then
    re-runs it once per crash point — crashing, recovering through a
    clean view of the same "disk", matching the recovered state against
    the shadow, and finally replaying the remaining workload to prove
    the recovered store is live, not just readable.  A separate sweep
    injects transient faults (short writes, failed syncs) and demands
    the retry path absorb all of them. *)

type config = {
  txns : int;  (** Transactions in the workload. *)
  seed : int;  (** Master seed; printed on failure for reproduction. *)
  crash_points : int;
      (** Crash points to exercise: sampled evenly over the clean run's
          syscalls, [0] means every one of them. *)
  checkpoint_every : int;  (** A checkpoint after every [n] txns; [0] = never. *)
  fail_every : int;
      (** Transient-fault cadence for the retry sweep; [0] skips it. *)
  continue_after : bool;
      (** After each recovery, replay the rest of the workload and check
          the final state too. *)
  group_commit : int;
      (** Maximum transactions coalesced into one group commit (sizes
          are drawn in [1..group_commit] per group); [<= 1] commits one
          transaction per fsync.  When recovery lands mid-group, the
          continuation resumes with the group's unrecovered suffix. *)
}

val default : config
(** 200 txns, seed 42, every crash point, checkpoint every 25,
    transient sweep at cadence 7, continuation on, no group commit. *)

type report = {
  syscalls : int;  (** Mutating syscalls in the crash-free run. *)
  crashes : int;  (** Crash points exercised. *)
  recoveries : int;  (** Successful recoveries (equals [crashes]). *)
  transients : int;  (** Injected transient faults absorbed by retry. *)
}

type failure = {
  crash_point : int;  (** 0 when the failure is not crash-related. *)
  fail_seed : int;
  detail : string;
}

val run : ?progress:(int -> int -> unit) -> config -> (report, failure) result
(** Execute the sweep.  [progress done_ total] is called as crash points
    complete.  Returns the first oracle violation, with enough to
    reproduce it. *)
