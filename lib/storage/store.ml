open Mxra_relational
open Mxra_core
module Trace = Mxra_obs.Trace
module Wait = Mxra_obs.Wait
module Ash = Mxra_obs.Ash

type t = {
  vfs : Vfs.t;
  dir : string;
  retries : int;
  backoff_ms : float;
  mutable db : Database.t;
  mutable log : Vfs.handle;
  mutable good_len : int;
      (* byte length of the log's acknowledged, durable prefix — the
         truncation point for both torn tails and failed appends *)
  mutable next_id : int;
      (* last record id ever issued; monotonic across checkpoints so a
         snapshot can name the records it covers *)
  mutable in_log : int;  (* records currently in the log *)
  mutable wal_bytes : int;  (* bytes appended since the last checkpoint *)
  mutable n_commits : int;  (* records ever appended by this handle *)
  mutable n_syncs : int;  (* acknowledged WAL fsyncs (one per append) *)
  mutable n_groups : int;  (* record-carrying appends: the fsync unit *)
  mutable n_grouped : int;  (* records across those appends *)
  mutable last_checkpoint : float;  (* wall clock of open or checkpoint *)
}

let snapshot_path dir = Filename.concat dir "snapshot.xra"
let wal_path dir = Filename.concat dir "wal.xra"

(* Markers optionally carry the query id minted for the transaction
   ([-- begin 7 q000003]); the id is ignored by replay but greppable, so
   a WAL record, the JSONL query log line and the trace spans of one
   statement all share a key.  Old logs without ids still parse. *)
let begin_marker ?qid n =
  match qid with
  | None -> Printf.sprintf "-- begin %d" n
  | Some q -> Printf.sprintf "-- begin %d %s" n q

let commit_prefix = "-- commit "

let commit_marker ?qid n crc =
  let base = Printf.sprintf "%s%d %s" commit_prefix n (Checksum.to_hex crc) in
  match qid with None -> base | Some q -> base ^ " " ^ q

(* --- WAL record encoding ------------------------------------------------ *)

let loggable = function
  | Statement.Query _ -> false
  | Statement.Insert _ | Statement.Delete _ | Statement.Update _
  | Statement.Assign _ ->
      true

(* One record: begin marker, statement lines, then a commit marker
   carrying the CRC-32 of everything before it (newlines included).
   The CRC is what recovery trusts — a record whose commit marker is
   present but whose body was torn or bit-flipped is as dead as one
   with no commit marker at all. *)
let encode_record ?qid id body =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (begin_marker ?qid id);
  Buffer.add_char buf '\n';
  List.iter
    (fun stmt ->
      if loggable stmt then begin
        Buffer.add_string buf (Codec.encode_statement stmt);
        Buffer.add_char buf '\n'
      end)
    body;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_string buf (commit_marker ?qid id crc);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- WAL replay --------------------------------------------------------- *)

type replay = {
  r_db : Database.t;
  r_last_id : int;  (* highest valid record id seen (0 when none) *)
  r_records : int;  (* valid records present (applied or covered) *)
  r_good_len : int;  (* byte offset just past the last valid record *)
}

let parse_marker prefix line =
  if
    String.length line > String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.sub line (String.length prefix)
         (String.length line - String.length prefix))
  else None

let parse_commit line =
  match parse_marker commit_prefix line with
  | None -> None
  | Some rest -> (
      (* [id crc] or [id crc qid] — the query id is correlation
         metadata, irrelevant to validity. *)
      match String.split_on_char ' ' (String.trim rest) with
      | [ id; crc ] | [ id; crc; _ ] -> (
          match (int_of_string_opt id, Checksum.of_hex crc) with
          | Some id, Some crc -> Some (id, crc)
          | _ -> None)
      | _ -> None)

(* Replay the valid committed records of a log over [db], skipping those
   with id <= [after] (already contained in the snapshot).  Statements
   are applied with the transaction end-bracket semantics: temporaries
   dropped, clock ticked.  Scanning stops at the first anomaly — torn
   record, checksum mismatch, unparseable line — and reports the byte
   offset of the last valid boundary so the caller can truncate the
   tail; corruption is never replayed and never fatal. *)
let replay_log db ~after source =
  let len = String.length source in
  (* acc state: [record] = Some (id, start_offset, pending statement
     lines in reverse) while inside a record. *)
  let apply db pending =
    let stmts = List.rev_map Codec.decode_statement pending in
    let db', _outputs = Program.exec db stmts in
    Database.tick (Database.drop_temporaries db')
  in
  let rec scan acc record pos =
    if pos >= len then acc
    else
      let eol =
        match String.index_from_opt source pos '\n' with
        | Some i -> i
        | None -> len (* final line without newline: maybe torn *)
      in
      let line = String.sub source pos (eol - pos) in
      let next = eol + 1 in
      match record with
      | None -> (
          match parse_marker "-- begin " line with
          | Some id_s when eol < len -> (
              (* [N] or [N qid]; only the id matters for replay. *)
              let id_token =
                match String.split_on_char ' ' (String.trim id_s) with
                | tok :: _ -> tok
                | [] -> ""
              in
              match int_of_string_opt id_token with
              | Some id -> scan acc (Some (id, pos, [])) next
              | None -> acc (* corrupt begin marker: stop *))
          | Some _ -> acc (* begin line not newline-terminated: torn *)
          | None -> if String.trim line = "" && eol < len then scan acc None next else acc)
      | Some (id, start, pending) -> (
          match parse_commit line with
          | Some (cid, crc) ->
              let body = String.sub source start (pos - start) in
              if cid <> id || Checksum.string body <> crc then acc
              else
                let good = min len next in
                let applied =
                  if id > after then
                    match apply acc.r_db pending with
                    | db' -> Some db'
                    | exception Mxra_xra.Parser.Parse_error _ -> None
                    | exception Mxra_xra.Lexer.Lex_error _ -> None
                  else Some acc.r_db
                in
                (match applied with
                | Some db' ->
                    scan
                      {
                        r_db = db';
                        r_last_id = id;
                        r_records = acc.r_records + 1;
                        r_good_len = good;
                      }
                      None next
                | None -> acc)
          | None ->
              if eol >= len then acc (* torn mid-record *)
              else scan acc (Some (id, start, line :: pending)) next)
  in
  scan { r_db = db; r_last_id = 0; r_records = 0; r_good_len = 0 } None 0

(* --- recovery ----------------------------------------------------------- *)

let recover vfs dir =
  Trace.with_span "store.recover" (fun () ->
      let db, covered =
        match vfs.Vfs.read_file (snapshot_path dir) with
        | Some source ->
            Trace.add_attr "snapshot_bytes" (Trace.Int (String.length source));
            Codec.decode_snapshot source
        | None -> (Database.empty, 0)
      in
      let r =
        match vfs.Vfs.read_file (wal_path dir) with
        | Some source ->
            Trace.add_attr "wal_bytes" (Trace.Int (String.length source));
            let r = replay_log db ~after:covered source in
            if r.r_good_len < String.length source then begin
              (* Torn or corrupt tail: cut the log back to the last
                 valid record boundary so the next append starts clean. *)
              Trace.event "store.truncate_torn"
                ~attrs:
                  [
                    ("at", Trace.Int r.r_good_len);
                    ( "dropped",
                      Trace.Int (String.length source - r.r_good_len) );
                  ];
              vfs.Vfs.truncate (wal_path dir) r.r_good_len
            end;
            r
        | None -> { r_db = db; r_last_id = 0; r_records = 0; r_good_len = 0 }
      in
      Trace.add_attr "records" (Trace.Int r.r_records);
      (r, covered))

let recover_dir ?(vfs = Vfs.real) dir = (fst (recover vfs dir)).r_db

let open_dir ?(vfs = Vfs.real) ?(retries = 4) ?(backoff_ms = 1.0) dir =
  if not (vfs.Vfs.exists dir) then vfs.Vfs.mkdir dir;
  if not (vfs.Vfs.is_directory dir) then
    raise (Sys_error (dir ^ " is not a directory"));
  let r, covered = recover vfs dir in
  {
    vfs;
    dir;
    retries;
    backoff_ms;
    db = r.r_db;
    log = vfs.Vfs.open_append (wal_path dir);
    good_len = r.r_good_len;
    next_id = max covered r.r_last_id;
    in_log = r.r_records;
    wal_bytes = r.r_good_len;
    n_commits = 0;
    n_syncs = 0;
    n_groups = 0;
    n_grouped = 0;
    last_checkpoint = Unix.gettimeofday ();
  }

let database t = t.db

(* --- durable append with bounded retry ---------------------------------- *)

(* Append [payload] and sync, retrying transient faults with exponential
   backoff.  Before each retry the log is truncated back to the last
   acknowledged length and the handle reopened, so the short write of a
   failed attempt can never sit in front of its own retry.  Crashes
   ([Vfs.Crash]) are not faults to handle — they propagate; recovery is
   the handler. *)
let append_durable t payload =
  let wal = wal_path t.dir in
  let rec attempt k =
    match
      let t0 = Wait.now_us () in
      t.log.Vfs.h_write payload;
      let t1 = Wait.now_us () in
      t.log.Vfs.h_sync ();
      (* Wait attribution only for the attempt that succeeded: a write
         or sync that raised produced no durable work, and the retry
         re-measures from scratch.  The append and the sync are split
         into [io.wal] and [io.fsync] — under group commit the one
         shared sync is one event, however many transactions ride it. *)
      let t2 = Wait.now_us () in
      Ash.event Wait.Io_wal ~detail:"wal.append" ~dur_us:(t1 -. t0);
      Ash.event Wait.Io_fsync ~detail:"wal.fsync" ~dur_us:(t2 -. t1)
    with
    | () -> if k > 0 then Trace.add_attr "retries" (Trace.Int k)
    | exception Vfs.Injected reason when k < t.retries ->
        Trace.event "store.retry"
          ~attrs:
            [
              ("attempt", Trace.Int (k + 1));
              ("reason", Trace.Str reason);
              ("truncate_to", Trace.Int t.good_len);
            ];
        t.log.Vfs.h_close ();
        t.vfs.Vfs.truncate wal t.good_len;
        t.log <- t.vfs.Vfs.open_append wal;
        if t.backoff_ms > 0.0 then
          Unix.sleepf (t.backoff_ms *. (2.0 ** float_of_int k) /. 1000.0);
        attempt (k + 1)
  in
  attempt 0;
  t.n_syncs <- t.n_syncs + 1;
  t.good_len <- t.good_len + String.length payload;
  t.wal_bytes <- t.good_len

let append_record ?qid t body =
  let id = t.next_id + 1 in
  let payload = encode_record ?qid id body in
  append_durable t payload;
  t.next_id <- id;
  t.in_log <- t.in_log + 1;
  t.n_commits <- t.n_commits + 1;
  t.n_groups <- t.n_groups + 1;
  t.n_grouped <- t.n_grouped + 1;
  (* WAL bytes attributed to the statement executing under [qid] — the
     sys.statements wal_bytes column. *)
  Option.iter
    (fun q -> Mxra_obs.Stmt_stats.add_wal_bytes ~qid:q (String.length payload))
    qid;
  String.length payload

let commit ?qid t txn =
  Trace.with_span "store.commit"
    ~attrs:[ ("txn", Trace.Str txn.Transaction.name) ]
    (fun () ->
      let outcome = Transaction.run t.db txn in
      (match outcome with
      | Transaction.Committed { state; _ } ->
          (* The record is durable before the commit is acknowledged. *)
          let bytes = append_record ?qid t txn.Transaction.body in
          Trace.add_attr "wal_bytes" (Trace.Int bytes);
          t.db <- state
      | Transaction.Aborted { reason; state } ->
          Trace.add_attr "aborted" (Trace.Str reason);
          t.db <- state);
      outcome)

let absorb_batch ?(qids = []) t txns state =
  Trace.with_span "store.absorb"
    ~attrs:[ ("txns", Trace.Int (List.length txns)) ]
    (fun () ->
      (* One payload, one write, one sync for the whole batch. *)
      let qids = Array.of_list qids in
      let buf = Buffer.create 1024 in
      List.iteri
        (fun i txn ->
          let qid = if i < Array.length qids then Some qids.(i) else None in
          let record = encode_record ?qid (t.next_id + i + 1) txn.Transaction.body in
          (* Per-record attribution even though the batch is one write:
             each transaction's share of the payload lands on its qid. *)
          Option.iter
            (fun q -> Mxra_obs.Stmt_stats.add_wal_bytes ~qid:q (String.length record))
            qid;
          Buffer.add_string buf record)
        txns;
      let payload = Buffer.contents buf in
      if String.length payload > 0 then begin
        append_durable t payload;
        t.n_groups <- t.n_groups + 1;
        t.n_grouped <- t.n_grouped + List.length txns
      end;
      t.next_id <- t.next_id + List.length txns;
      t.in_log <- t.in_log + List.length txns;
      t.n_commits <- t.n_commits + List.length txns;
      Trace.add_attr "wal_bytes" (Trace.Int (String.length payload));
      t.db <- state)

(* Group commit for transactions the store itself executes: run the
   group serially against the current state, encode the committed
   members as consecutive records, then make them all durable with one
   write + one fsync.  Each constituent keeps its own record — its own
   begin/commit markers, CRC and qid stamp — so replay and attribution
   are per transaction; only the durability cost is shared.  A crash
   mid-append tears the tail of the single payload, and because replay
   stops at the first invalid record, recovery always yields a prefix
   of the group's commit order, never a subset (the property the
   torture harness checks at every syscall). *)
let commit_group ?(qids = []) t txns =
  Trace.with_span "store.group_commit"
    ~attrs:[ ("txns", Trace.Int (List.length txns)) ]
    (fun () ->
      let qids = Array.of_list qids in
      let buf = Buffer.create 1024 in
      let committed = ref 0 in
      let outcomes =
        List.mapi
          (fun i txn ->
            let qid = if i < Array.length qids then Some qids.(i) else None in
            let outcome = Transaction.run t.db txn in
            (match outcome with
            | Transaction.Committed { state; _ } ->
                let id = t.next_id + !committed + 1 in
                incr committed;
                let record = encode_record ?qid id txn.Transaction.body in
                Option.iter
                  (fun q ->
                    Mxra_obs.Stmt_stats.add_wal_bytes ~qid:q
                      (String.length record))
                  qid;
                Buffer.add_string buf record;
                t.db <- state
            | Transaction.Aborted { state; _ } -> t.db <- state);
            outcome)
          txns
      in
      let payload = Buffer.contents buf in
      (* All-or-prefix durability before any member is acknowledged. *)
      if String.length payload > 0 then begin
        append_durable t payload;
        t.n_groups <- t.n_groups + 1;
        t.n_grouped <- t.n_grouped + !committed
      end;
      t.next_id <- t.next_id + !committed;
      t.in_log <- t.in_log + !committed;
      t.n_commits <- t.n_commits + !committed;
      Trace.add_attr "wal_bytes" (Trace.Int (String.length payload));
      Trace.add_attr "group_size" (Trace.Int !committed);
      outcomes)

let checkpoint t =
  Trace.with_span "store.checkpoint" (fun () ->
      let snapshot = Codec.encode_database ~wal_covered:t.next_id t.db in
      Trace.add_attr "snapshot_bytes" (Trace.Int (String.length snapshot));
      let tmp = snapshot_path t.dir ^ ".tmp" in
      t.vfs.Vfs.write_file tmp snapshot;
      t.vfs.Vfs.rename tmp (snapshot_path t.dir);
      (* Old log records are covered by the snapshot (it names their
         ids), so truncating is pure space reclamation — a crash
         before, between or after these steps recovers correctly. *)
      t.log.Vfs.h_close ();
      t.vfs.Vfs.truncate (wal_path t.dir) 0;
      t.log <- t.vfs.Vfs.open_append (wal_path t.dir);
      t.good_len <- 0;
      t.in_log <- 0;
      t.wal_bytes <- 0;
      t.last_checkpoint <- Unix.gettimeofday ())

let close t = t.log.Vfs.h_close ()
let log_records t = t.in_log
let fsyncs t = t.n_syncs

(* Probe for the resource sampler.  Plain mutable-field reads: the
   store is driven from the main domain while the sampler glances from
   its own, and none of these reads can tear or crash — stale values
   are acceptable for telemetry. *)
let telemetry t () =
  [
    ("store.wal_bytes", float_of_int t.wal_bytes);
    ("store.wal_records", float_of_int t.in_log);
    ("store.commits", float_of_int t.n_commits);
    ("store.fsyncs", float_of_int t.n_syncs);
    ( "wal.group_size",
      if t.n_groups = 0 then 0.0
      else float_of_int t.n_grouped /. float_of_int t.n_groups );
    ( "store.since_checkpoint_s",
      Unix.gettimeofday () -. t.last_checkpoint );
  ]
