open Mxra_relational
open Mxra_core
module Trace = Mxra_obs.Trace

type t = {
  dir : string;
  mutable db : Database.t;
  mutable log : out_channel;
  mutable records : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.xra"
let wal_path dir = Filename.concat dir "wal.xra"

let begin_marker n = Printf.sprintf "-- begin %d" n
let commit_marker n = Printf.sprintf "-- commit %d" n

let is_marker prefix line =
  String.length line > String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let read_file path =
  if Sys.file_exists path then
    Some (In_channel.with_open_text path In_channel.input_all)
  else None

(* Replay the committed records of a log.  A record only counts once its
   commit marker is present; a torn tail (crash mid-append) is silently
   discarded.  Statements of a record are applied with the transaction
   end-bracket semantics: temporaries dropped, clock ticked. *)
let replay_log db source =
  let lines = String.split_on_char '\n' source in
  let apply db pending =
    let db', _outputs = Program.exec db (List.rev pending) in
    Database.tick (Database.drop_temporaries db')
  in
  let rec scan db pending records = function
    | [] -> (db, records)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then scan db pending records rest
        else if is_marker "-- begin" line then scan db [] records rest
        else if is_marker "-- commit" line then
          scan (apply db pending) [] (records + 1) rest
        else scan db (Codec.decode_statement line :: pending) records rest
  in
  scan db [] 0 lines

let recover dir =
  Trace.with_span "store.recover" (fun () ->
      let db =
        match read_file (snapshot_path dir) with
        | Some source ->
            Trace.add_attr "snapshot_bytes"
              (Trace.Int (String.length source));
            Codec.decode_database source
        | None -> Database.empty
      in
      let result =
        match read_file (wal_path dir) with
        | Some source ->
            Trace.add_attr "wal_bytes" (Trace.Int (String.length source));
            replay_log db source
        | None -> (db, 0)
      in
      Trace.add_attr "records" (Trace.Int (snd result));
      result)

let recover_dir dir = fst (recover dir)

let open_log_append dir =
  open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path dir)

let open_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ " is not a directory"));
  let db, records = recover dir in
  { dir; db; log = open_log_append dir; records }

let database t = t.db

let loggable = function
  | Statement.Query _ -> false
  | Statement.Insert _ | Statement.Delete _ | Statement.Update _
  | Statement.Assign _ ->
      true

(* Append one committed record; returns the bytes written.  Durability
   (flush) is the caller's duty, so a batch can pay one flush. *)
let append_record t body =
  let bytes = ref 0 in
  let line s =
    output_string t.log s;
    output_char t.log '\n';
    bytes := !bytes + String.length s + 1
  in
  t.records <- t.records + 1;
  line (begin_marker t.records);
  List.iter
    (fun stmt -> if loggable stmt then line (Codec.encode_statement stmt))
    body;
  line (commit_marker t.records);
  !bytes

let commit t txn =
  Trace.with_span "store.commit"
    ~attrs:[ ("txn", Trace.Str txn.Transaction.name) ]
    (fun () ->
      let outcome = Transaction.run t.db txn in
      (match outcome with
      | Transaction.Committed { state; _ } ->
          let bytes = append_record t txn.Transaction.body in
          (* The record is durable before the commit is acknowledged. *)
          flush t.log;
          Trace.add_attr "wal_bytes" (Trace.Int bytes);
          t.db <- state
      | Transaction.Aborted { reason; state } ->
          Trace.add_attr "aborted" (Trace.Str reason);
          t.db <- state);
      outcome)

let absorb_batch t txns state =
  Trace.with_span "store.absorb"
    ~attrs:[ ("txns", Trace.Int (List.length txns)) ]
    (fun () ->
      let bytes =
        List.fold_left
          (fun acc txn -> acc + append_record t txn.Transaction.body)
          0 txns
      in
      flush t.log;
      Trace.add_attr "wal_bytes" (Trace.Int bytes);
      t.db <- state)

let checkpoint t =
  Trace.with_span "store.checkpoint" (fun () ->
      let snapshot = Codec.encode_database t.db in
      Trace.add_attr "snapshot_bytes" (Trace.Int (String.length snapshot));
      let tmp = snapshot_path t.dir ^ ".tmp" in
      Out_channel.with_open_text tmp (fun oc ->
          Out_channel.output_string oc snapshot);
      Sys.rename tmp (snapshot_path t.dir);
      (* Old log records are covered by the snapshot: truncate. *)
      close_out t.log;
      let truncated = open_out (wal_path t.dir) in
      close_out truncated;
      t.log <- open_log_append t.dir;
      t.records <- 0)

let close t = close_out t.log
let log_records t = t.records
