(** Durable database storage: snapshot plus write-ahead log, over a
    fault-tolerant {!Vfs}.

    Definition 4.3 requires transactions to satisfy the ACID properties
    of [Gray 81]; the in-memory {!Mxra_core.Transaction} machinery gives
    atomicity and (serial) isolation, and this module supplies
    durability:

    - the {e snapshot} ([snapshot.xra]) is the state at the last
      checkpoint, in the checksummed XRA script format of {!Codec},
      written to a temporary file and atomically renamed into place;
    - the {e log} ([wal.xra]) records, per committed transaction, its
      non-query statements between [-- begin N] / [-- commit N CRC]
      markers.  Record ids are {e monotonic across checkpoints} and the
      snapshot carries the id of the last record it covers, so recovery
      replays exactly the uncovered records — a crash at any point of
      the checkpoint sequence (write, rename, truncate) is safe;
    - each record is appended with a single write and made durable with
      an fsync before the commit is acknowledged.  Transient I/O faults
      ({!Vfs.Injected}) are retried with bounded exponential backoff
      after truncating the log back to its last acknowledged length, so
      a short write can never leave a half-record in front of its
      retry;
    - {e recovery} loads the snapshot and replays the log's valid
      committed records: a record counts only when its commit marker is
      present {e and} its CRC-32 matches.  Everything from the first
      torn or corrupt record onward is discarded and the log is
      truncated back to the last valid boundary (redo-only,
      ARIES-without-undo — uncommitted changes never reach the
      snapshot).

    The crash-safety contract, exercised exhaustively by {!Torture}:
    after a crash at any syscall, recovery yields the state of some
    prefix of the acknowledged transaction sequence — all acknowledged
    transactions survive, an unacknowledged in-flight one may or may not,
    and nothing else changes. *)

open Mxra_relational

type t
(** An open store: a directory plus the current in-memory state. *)

val open_dir : ?vfs:Vfs.t -> ?retries:int -> ?backoff_ms:float -> string -> t
(** Open (creating the directory and empty files if needed) and
    recover: snapshot + valid committed log records.  [vfs] defaults to
    {!Vfs.real}; [retries] (default 4) and [backoff_ms] (default 1.0)
    bound the transient-fault retry loop.
    @raise Sys_error on an unusable directory;
    @raise Codec.Corrupt on a corrupt snapshot (the WAL heals itself,
    the snapshot does not — it was fsync'd and renamed, so corruption
    there is real media failure). *)

val database : t -> Database.t
(** The current state (after recovery and any commits so far). *)

val commit :
  ?qid:string -> t -> Mxra_core.Transaction.t -> Mxra_core.Transaction.outcome
(** Run a transaction against the current state; if it commits, append
    its record to the log (synced) before returning.  Aborted
    transactions leave no trace in the log.  [qid] (a
    {!Mxra_obs.Qid}-minted query id) is stamped into the record's
    begin/commit markers — [-- begin N q000042] — so the WAL entry is
    greppable by the same key as the statement's trace spans and JSONL
    query-log line; replay ignores it.
    @raise Vfs.Injected when the transient-fault retry budget is
    exhausted; the log is left truncated at its last valid boundary. *)

val commit_group :
  ?qids:string list ->
  t ->
  Mxra_core.Transaction.t list ->
  Mxra_core.Transaction.outcome list
(** Group commit: run the transactions serially against the current
    state (each sees its predecessors' effects), then append every
    committed member's record as {e one} payload made durable with a
    {e single} write + fsync before any of them is acknowledged.  Each
    constituent keeps its own begin/commit markers, CRC and [qids]
    stamp (paired positionally), so recovery and per-statement WAL
    attribution stay per transaction — the group only shares the fsync.
    Crash-safety: a crash mid-append tears the single payload's tail,
    and since replay stops at the first invalid record, recovery yields
    a {e prefix} of the group's commit order, never a subset.  Outcomes
    are returned per input transaction in order.
    @raise Vfs.Injected like {!commit}. *)

val absorb_batch :
  ?qids:string list -> t -> Mxra_core.Transaction.t list -> Database.t -> unit
(** Make an {e externally executed} batch durable: append one log
    record per transaction and install [state] as the current state,
    with a single sync for the whole batch.  The transactions must be
    the {e committed} ones of the batch in commit order, and [state]
    the batch's final state — exactly what
    {!Mxra_concurrency.Scheduler.run} hands back; replaying the records
    serially re-creates [state] because both isolation modes make the
    schedule equivalent to that serial order (strict 2PL by
    conflict-serializability; SI by first-committer-wins over
    write-covered reads).  [qids], when given, pairs with [txns]
    positionally (commit order) and stamps each record's markers like
    {!commit}'s [qid]. *)

val checkpoint : t -> unit
(** Write the current state as the new snapshot and truncate the log.
    Crash-safe at every step: the snapshot is renamed into place
    atomically and records the last WAL id it covers, so a log that
    outlives its snapshot is skipped on recovery, never replayed
    twice. *)

val close : t -> unit
(** Flush and close the log handle.  The store must not be used
    afterwards. *)

val log_records : t -> int
(** Committed transaction records in the current log (for tests and the
    durability benchmark). *)

val fsyncs : t -> int
(** Acknowledged WAL fsyncs by this handle (one per durable append,
    however many records the append carried) — the numerator of the
    E19 fsync-amortization curve. *)

val recover_dir : ?vfs:Vfs.t -> string -> Database.t
(** Recovery alone: what [open_dir] would reconstruct, without keeping
    the store open.  A torn log tail is truncated as a side effect —
    recovery repairs.  Used by crash tests to inspect a "dead" store. *)

val telemetry : t -> unit -> (string * float) list
(** Sampler probe over this store: [store.wal_bytes] (log bytes since
    the last checkpoint), [store.wal_records], [store.commits]
    (records appended by this handle), [store.fsyncs],
    [wal.group_size] (mean records per durable append — 1.0 with no
    grouping, rising as group commit amortizes) and
    [store.since_checkpoint_s].  Safe to call from the sampler domain —
    plain reads, no lock. *)
