(** Durable database storage: snapshot plus write-ahead log.

    Definition 4.3 requires transactions to satisfy the ACID properties
    of [Gray 81]; the in-memory {!Mxra_core.Transaction} machinery gives
    atomicity and (serial) isolation, and this module supplies
    durability:

    - the {e snapshot} ([snapshot.xra]) is the state at the last
      checkpoint, in the XRA script format of {!Codec};
    - the {e log} ([wal.xra]) records, per committed transaction, its
      non-query statements in execution order between [-- begin N] /
      [-- commit N] markers, fsync'd before the commit is acknowledged;
    - {e recovery} loads the snapshot and replays exactly the log's
      complete (committed) transaction records — a torn tail from a
      crash is detected by its missing commit marker and discarded,
      which is the redo-only ARIES-without-undo discipline that suffices
      here because uncommitted changes never reach the snapshot.

    Assignments ([R := E]) are transaction-local (Definition 4.3 drops
    temporaries at commit) but are still logged: later logged statements
    of the same transaction may refer to the temporary. *)

open Mxra_relational

type t
(** An open store: a directory plus the current in-memory state. *)

val open_dir : string -> t
(** Open (creating the directory and empty files if needed) and
    recover: snapshot + committed log records.
    @raise Sys_error on an unusable directory;
    @raise Mxra_xra.Parser.Parse_error on corrupt files. *)

val database : t -> Database.t
(** The current state (after recovery and any commits so far). *)

val commit : t -> Mxra_core.Transaction.t -> Mxra_core.Transaction.outcome
(** Run a transaction against the current state; if it commits, append
    its record to the log (flushed) before returning.  Aborted
    transactions leave no trace in the log. *)

val absorb_batch : t -> Mxra_core.Transaction.t list -> Database.t -> unit
(** Make an {e externally executed} batch durable: append one log
    record per transaction and install [state] as the current state,
    with a single flush for the whole batch.  The transactions must be
    the {e committed} ones of the batch in commit order, and [state]
    the batch's final state — exactly what
    {!Mxra_concurrency.Scheduler.run} hands back; replaying the records
    serially re-creates [state] because strict 2PL makes the schedule
    conflict-equivalent to that serial order. *)

val checkpoint : t -> unit
(** Write the current state as the new snapshot and truncate the log.
    The snapshot is written to a temporary file and renamed, so a crash
    during checkpoint leaves the old snapshot + log intact. *)

val close : t -> unit
(** Flush and close the log channel.  The store must not be used
    afterwards. *)

val log_records : t -> int
(** Committed transaction records in the current log (for tests and the
    durability benchmark). *)

val recover_dir : string -> Database.t
(** Recovery alone: what [open_dir] would reconstruct, without keeping
    the store open.  Used by crash tests to inspect a "dead" store. *)
