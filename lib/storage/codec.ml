open Mxra_relational
module Xra = Mxra_xra

let time_directive = "-- @time "

module Trace = Mxra_obs.Trace

let encode_database_body db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%s%d\n" time_directive (Database.logical_time db));
  let schema_fields schema =
    String.concat ", "
      (List.map
         (fun (a : Schema.attribute) ->
           Printf.sprintf "%s:%s" a.Schema.name
             (Domain.to_string a.Schema.domain))
         (Schema.attributes schema))
  in
  List.iter
    (fun name ->
      let r = Database.find name db in
      Buffer.add_string buf
        (Printf.sprintf "create %s (%s);\n" name
           (schema_fields (Relation.schema r)));
      if not (Relation.is_empty r) then
        Buffer.add_string buf
          (Format.asprintf "insert(%s, %a);\n" name
             Xra.Printer.pp_relation_literal r))
    (Database.persistent_names db);
  Buffer.contents buf

let encode_database db =
  Trace.with_span "codec.encode" (fun () ->
      let out = encode_database_body db in
      Trace.add_attr "bytes" (Trace.Int (String.length out));
      out)

let decode_time source =
  match String.index_opt source '\n' with
  | Some eol when String.length source >= String.length time_directive
                  && String.sub source 0 (String.length time_directive)
                     = time_directive ->
      let digits =
        String.sub source (String.length time_directive)
          (eol - String.length time_directive)
      in
      int_of_string_opt (String.trim digits) |> Option.value ~default:0
  | Some _ | None -> 0

let decode_database_body source =
  let time = decode_time source in
  let db =
    List.fold_left
      (fun db command ->
        match command with
        | Xra.Parser.Cmd_create (name, schema) -> Database.create name schema db
        | Xra.Parser.Cmd_statement stmt -> fst (Mxra_core.Statement.exec db stmt)
        | Xra.Parser.Cmd_transaction program ->
            fst (Mxra_core.Program.exec db program))
      Database.empty
      (Xra.Parser.script_of_string source)
  in
  (* Restore the logical clock by ticking up to the recorded time. *)
  let rec catch_up db =
    if Database.logical_time db >= time then db else catch_up (Database.tick db)
  in
  catch_up db

let decode_database source =
  Trace.with_span "codec.decode"
    ~attrs:[ ("bytes", Trace.Int (String.length source)) ]
    (fun () -> decode_database_body source)

let encode_statement stmt = Xra.Printer.statement_to_string stmt
let decode_statement line = Xra.Parser.statement_of_string line
