open Mxra_relational
module Xra = Mxra_xra

exception Corrupt of string

let crc_directive = "-- @crc "
let time_directive = "-- @time "
let wal_directive = "-- @wal "

module Trace = Mxra_obs.Trace

let encode_database_body ?(wal_covered = 0) db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%s%d\n" time_directive (Database.logical_time db));
  if wal_covered > 0 then
    Buffer.add_string buf (Printf.sprintf "%s%d\n" wal_directive wal_covered);
  let schema_fields schema =
    String.concat ", "
      (List.map
         (fun (a : Schema.attribute) ->
           Printf.sprintf "%s:%s" a.Schema.name
             (Domain.to_string a.Schema.domain))
         (Schema.attributes schema))
  in
  List.iter
    (fun name ->
      let r = Database.find name db in
      Buffer.add_string buf
        (Printf.sprintf "create %s (%s);\n" name
           (schema_fields (Relation.schema r)));
      if not (Relation.is_empty r) then
        Buffer.add_string buf
          (Format.asprintf "insert(%s, %a);\n" name
             Xra.Printer.pp_relation_literal r))
    (Database.persistent_names db);
  (* Index definitions follow the relations they refer to; structures
     are rebuilt on demand after decode, only the DDL is persisted. *)
  List.iter
    (fun def ->
      Buffer.add_string buf
        (Format.asprintf "%a;\n" Xra.Printer.pp_index_def def))
    (Database.index_defs db);
  Buffer.contents buf

let encode_database ?wal_covered db =
  Trace.with_span "codec.encode" (fun () ->
      let body = encode_database_body ?wal_covered db in
      let out =
        Printf.sprintf "%s%s\n%s" crc_directive
          (Checksum.to_hex (Checksum.string body))
          body
      in
      Trace.add_attr "bytes" (Trace.Int (String.length out));
      out)

(* Strip and verify the leading [@crc] line, if any.  The checksum
   covers every byte after its own line, so any corruption of the body
   — including of the other directives — is caught here, before the
   parser sees the text. *)
let verify_crc source =
  if String.length source >= String.length crc_directive
     && String.sub source 0 (String.length crc_directive) = crc_directive
  then
    match String.index_opt source '\n' with
    | None -> raise (Corrupt "snapshot: truncated @crc directive")
    | Some eol -> (
        let digits =
          String.sub source
            (String.length crc_directive)
            (eol - String.length crc_directive)
        in
        let body =
          String.sub source (eol + 1) (String.length source - eol - 1)
        in
        match Checksum.of_hex (String.trim digits) with
        | None -> raise (Corrupt "snapshot: malformed @crc directive")
        | Some expected ->
            let actual = Checksum.string body in
            if actual <> expected then
              raise
                (Corrupt
                   (Printf.sprintf "snapshot: checksum mismatch (%s != %s)"
                      (Checksum.to_hex actual)
                      (Checksum.to_hex expected)));
            body)
  else source

(* Directive values are read off the leading comment lines; unknown
   comments are skipped (the parser treats them as comments anyway). *)
let int_directive prefix source =
  let rec scan pos =
    if pos >= String.length source then 0
    else
      let eol =
        match String.index_from_opt source pos '\n' with
        | Some i -> i
        | None -> String.length source
      in
      let line = String.sub source pos (eol - pos) in
      if String.length line >= 2 && String.sub line 0 2 = "--" then
        if
          String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
        then
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
          |> String.trim |> int_of_string_opt
          |> Option.value ~default:0
        else scan (eol + 1)
      else 0
  in
  scan 0

let decode_snapshot_body source =
  let body = verify_crc source in
  let time = int_directive time_directive body in
  let wal_covered = int_directive wal_directive body in
  let db =
    List.fold_left
      (fun db command ->
        match command with
        | Xra.Parser.Cmd_create (name, schema) -> Database.create name schema db
        | Xra.Parser.Cmd_create_index d ->
            Database.create_index ~name:d.idx_name ~rel:d.idx_rel
              ~cols:d.idx_cols ~kind:d.idx_kind db
        | Xra.Parser.Cmd_drop_index name -> Database.drop_index name db
        | Xra.Parser.Cmd_statement stmt -> fst (Mxra_core.Statement.exec db stmt)
        | Xra.Parser.Cmd_transaction program ->
            fst (Mxra_core.Program.exec db program))
      Database.empty
      (Xra.Parser.script_of_string body)
  in
  (* Restore the logical clock by ticking up to the recorded time. *)
  let rec catch_up db =
    if Database.logical_time db >= time then db else catch_up (Database.tick db)
  in
  (catch_up db, wal_covered)

let decode_snapshot source =
  Trace.with_span "codec.decode"
    ~attrs:[ ("bytes", Trace.Int (String.length source)) ]
    (fun () -> decode_snapshot_body source)

let decode_database source = fst (decode_snapshot source)

let encode_statement stmt = Xra.Printer.statement_to_string stmt
let decode_statement line = Xra.Parser.statement_of_string line
