open Mxra_relational
open Mxra_core
module Rng = Mxra_workload.Rng

type config = {
  txns : int;
  seed : int;
  crash_points : int;
  checkpoint_every : int;
  fail_every : int;
  continue_after : bool;
  group_commit : int;
}

let default =
  {
    txns = 200;
    seed = 42;
    crash_points = 0;
    checkpoint_every = 25;
    fail_every = 7;
    continue_after = true;
    group_commit = 1;
  }

type report = {
  syscalls : int;
  crashes : int;
  recoveries : int;
  transients : int;
}

type failure = { crash_point : int; fail_seed : int; detail : string }

(* --- workload ----------------------------------------------------------- *)

let schema = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]
let tup k v = Tuple.of_list [ Value.Int k; Value.Int v ]
let relations = [ "acct"; "audit" ]

(* Values are drawn from a small key range so the bags are
   duplicate-heavy: deletes routinely hit multiplicities above one and
   monus saturation (Definition 3.1) is exercised constantly. *)
let random_rel rng =
  let rows = Rng.int_in rng 1 3 in
  Relation.of_counted_list schema
    (List.init rows (fun _ ->
         (tup (Rng.int rng 10) (Rng.int rng 50), Rng.int_in rng 1 3)))

let initial_db rng =
  Database.of_relations
    (List.map (fun name -> (name, random_rel rng)) relations)

let random_statement rng =
  let target = Rng.pick rng relations in
  let key_pred = Pred.eq (Scalar.attr 1) (Scalar.int (Rng.int rng 10)) in
  Rng.pick_weighted rng
    [
      (4, Statement.Insert (target, Expr.const (random_rel rng)));
      (* Delete a literal bag: may exceed the stored multiplicity, may
         miss entirely — both are monus edge cases. *)
      (2, Statement.Delete (target, Expr.const (random_rel rng)));
      (2, Statement.Delete (target, Expr.select key_pred (Expr.rel target)));
      ( 2,
        Statement.Update
          ( target,
            Expr.select key_pred (Expr.rel target),
            [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 1) ] ) );
    ]

(* Occasionally route data through a temporary so recovery must replay
   assignments (they are transaction-local but logged). *)
let random_txn rng i =
  let body =
    if Rng.int rng 8 = 0 then
      let src = Rng.pick rng relations and dst = Rng.pick rng relations in
      [
        Statement.Assign
          ( "stage",
            Expr.select
              (Pred.lt (Scalar.attr 2) (Scalar.int (Rng.int rng 50)))
              (Expr.rel src) );
        Statement.Insert (dst, Expr.rel "stage");
      ]
    else List.init (Rng.int_in rng 1 3) (fun _ -> random_statement rng)
  in
  Transaction.make ~name:(Printf.sprintf "torture-%d" i) body

type step =
  | Commit of Transaction.t
  | Group of Transaction.t list  (* one WAL append + fsync for all *)
  | Checkpoint

let build_steps cfg rng =
  let checkpoint_after i =
    cfg.checkpoint_every > 0 && (i + 1) mod cfg.checkpoint_every = 0
  in
  if cfg.group_commit <= 1 then
    List.concat
      (List.init cfg.txns (fun i ->
           let txn = Commit (random_txn rng (i + 1)) in
           if checkpoint_after i then [ txn; Checkpoint ] else [ txn ]))
  else begin
    (* Coalesce the stream into randomly sized group commits (1 to
       [group_commit] transactions per fsync); a checkpoint boundary
       cuts the open group short, exactly as a real commit coalescer
       would flush before checkpointing. *)
    let steps = ref [] in
    let group = ref [] in
    let want = ref (Rng.int_in rng 1 cfg.group_commit) in
    let flush () =
      (match List.rev !group with
      | [] -> ()
      | [ t ] -> steps := Commit t :: !steps
      | ts -> steps := Group ts :: !steps);
      group := [];
      want := Rng.int_in rng 1 cfg.group_commit
    in
    for i = 0 to cfg.txns - 1 do
      group := random_txn rng (i + 1) :: !group;
      if List.length !group >= !want then flush ();
      if checkpoint_after i then begin
        flush ();
        steps := Checkpoint :: !steps
      end
    done;
    flush ();
    List.rev !steps
  end

(* The shadow history: states.(i) is the pure in-memory instance after
   the first [i] transactions — the oracle recovery is matched against. *)
let shadow_states initial steps =
  let commits =
    List.concat_map
      (function Commit t -> [ t ] | Group ts -> ts | Checkpoint -> [])
      steps
  in
  Array.of_list
    (List.rev
       (List.fold_left
          (fun acc txn ->
            let prev = List.hd acc in
            Transaction.state_of (Transaction.run prev txn) :: acc)
          [ initial ] commits))

(* --- driver ------------------------------------------------------------- *)

type track = {
  mutable acked : int;  (* transactions whose commit call returned *)
  mutable in_flight : int;
      (* transactions inside a commit / commit_group call right now:
         1 for a plain commit, the group size for a group commit *)
  mutable baseline : bool;  (* the initial absorb+checkpoint finished *)
}

let dir = "torture-db"

(* Run (a suffix of) the workload against a store over [vfs].  A fresh
   store is seeded with [initial] and immediately checkpointed so the
   catalog is durable; a recovered store continues from whatever it
   holds. *)
let drive ~vfs ~initial ~steps track =
  let s = Store.open_dir ~vfs ~retries:8 ~backoff_ms:0.0 dir in
  if Database.persistent_names (Store.database s) = [] then begin
    Store.absorb_batch s [] initial;
    Store.checkpoint s
  end;
  track.baseline <- true;
  List.iter
    (function
      | Commit txn ->
          track.in_flight <- 1;
          ignore (Store.commit s txn);
          track.in_flight <- 0;
          track.acked <- track.acked + 1
      | Group txns ->
          let n = List.length txns in
          track.in_flight <- n;
          ignore (Store.commit_group s txns);
          track.in_flight <- 0;
          track.acked <- track.acked + n
      | Checkpoint -> Store.checkpoint s)
    steps;
  Store.close s;
  Store.database s

(* Steps remaining once [j] transactions are already reflected in the
   recovered state.  Checkpoints before that point are dropped — their
   only effect is on storage layout, which recovery has superseded.
   When [j] lands {e inside} a group (a partially fsynced group commit
   recovered as a prefix), the group's unrecovered suffix is what
   resumes. *)
let resume_steps steps j =
  let rec drop_txns n l =
    if n <= 0 then l
    else match l with [] -> [] | _ :: rest -> drop_txns (n - 1) rest
  in
  if j <= 0 then steps
  else
    let rec drop k = function
      | [] -> []
      | Commit _ :: rest when k + 1 = j -> rest
      | Commit _ :: rest -> drop (k + 1) rest
      | Group ts :: rest ->
          let g = List.length ts in
          if k + g = j then rest
          else if k + g < j then drop (k + g) rest
          else (
            match drop_txns (j - k) ts with
            | [] -> rest
            | [ t ] -> Commit t :: rest
            | ts' -> Group ts' :: rest)
      | Checkpoint :: rest -> drop k rest
    in
    drop 0 steps

(* --- the oracle --------------------------------------------------------- *)

let pp_names db = String.concat "," (Database.persistent_names db)

(* Prefix consistency at one crash point: run until the injected crash,
   recover through the clean view, and demand the recovered instance
   equal a legal prefix of the shadow history.  Legal prefixes: the
   pre-baseline empty store (only until the first checkpoint returned),
   everything acknowledged, plus — when the crash interrupted a commit
   or group-commit call — any {e leading prefix} of the in-flight
   transactions, in commit order.  A subset of the group that is not a
   prefix (a later member surviving an earlier one's loss) can never
   match, because it is not a candidate: that is the
   transaction-granularity guarantee group commit must preserve. *)
let check_crash_point cfg ~initial ~steps ~states c =
  let inj =
    Vfs.inject ~seed:(cfg.seed + c) { Vfs.no_faults with Vfs.crash_at = c }
  in
  let track = { acked = 0; in_flight = 0; baseline = false } in
  let total = Array.length states - 1 in
  let fail detail = Error { crash_point = c; fail_seed = cfg.seed; detail } in
  match drive ~vfs:inj.Vfs.vfs ~initial ~steps track with
  | final ->
      (* The crash point lies beyond this run's syscalls. *)
      if Database.equal_states final states.(total) then Ok false
      else fail "crash-free run diverged from the shadow history"
  | exception Vfs.Crash -> (
      let recovered = Store.recover_dir ~vfs:inj.Vfs.base dir in
      let candidates =
        (* Longest in-flight prefix first, down to the acked state. *)
        List.init track.in_flight (fun i ->
            let j = track.acked + track.in_flight - i in
            (j, states.(j)))
        @ [ (track.acked, states.(track.acked)) ]
        @ if not track.baseline then [ (-1, Database.empty) ] else []
      in
      match
        List.find_opt
          (fun (_, st) -> Database.equal_states st recovered)
          candidates
      with
      | None ->
          fail
            (Printf.sprintf
               "recovered state (relations %s) matches no committed prefix \
                (acked %d, in-flight %d)"
               (pp_names recovered) track.acked track.in_flight)
      | Some (j, _) ->
          if not cfg.continue_after then Ok true
          else
            let rest = resume_steps steps j in
            let track' = { acked = 0; in_flight = 0; baseline = false } in
            let final = drive ~vfs:inj.Vfs.base ~initial ~steps:rest track' in
            if Database.equal_states final states.(total) then Ok true
            else
              fail
                (Printf.sprintf
                   "workload resumed after recovery (prefix %d) diverged from \
                    the shadow history"
                   j))

let run ?(progress = fun _ _ -> ()) cfg =
  let rng = Rng.make cfg.seed in
  let initial = initial_db rng in
  let steps = build_steps cfg rng in
  let states = shadow_states initial steps in
  let total = Array.length states - 1 in
  (* Crash-free run over a counting (but not faulting) vfs: yields the
     syscall budget and sanity-checks the WAL round trip. *)
  let clean = Vfs.inject ~seed:cfg.seed Vfs.no_faults in
  let track = { acked = 0; in_flight = 0; baseline = false } in
  let final = drive ~vfs:clean.Vfs.vfs ~initial ~steps track in
  let syscalls = clean.Vfs.syscalls () in
  if not (Database.equal_states final states.(total)) then
    Error
      {
        crash_point = 0;
        fail_seed = cfg.seed;
        detail = "clean run diverged from the shadow history";
      }
  else if
    not
      (Database.equal_states
         (Store.recover_dir ~vfs:clean.Vfs.base dir)
         states.(total))
  then
    Error
      {
        crash_point = 0;
        fail_seed = cfg.seed;
        detail = "clean recovery (snapshot + WAL replay) diverged";
      }
  else begin
    (* Transient-fault sweep: every injected short write / failed sync
       must be absorbed by truncate-and-retry, invisibly. *)
    let transient_result =
      if cfg.fail_every = 0 then Ok 0
      else
        let inj =
          Vfs.inject ~seed:cfg.seed
            { Vfs.no_faults with Vfs.fail_every = cfg.fail_every }
        in
        let track = { acked = 0; in_flight = 0; baseline = false } in
        match drive ~vfs:inj.Vfs.vfs ~initial ~steps track with
        | final when Database.equal_states final states.(total) ->
            let n = inj.Vfs.transients () in
            if n = 0 then
              Error "transient sweep injected no faults (cadence too large?)"
            else Ok n
        | _ -> Error "state diverged under transient faults"
        | exception Vfs.Injected reason ->
            Error ("retry budget exhausted: " ^ reason)
    in
    match transient_result with
    | Error detail -> Error { crash_point = 0; fail_seed = cfg.seed; detail }
    | Ok transients ->
        (* The crash sweep proper. *)
        let points =
          if cfg.crash_points <= 0 || cfg.crash_points >= syscalls then
            List.init syscalls (fun i -> i + 1)
          else if cfg.crash_points = 1 then [ (syscalls / 2) + 1 ]
          else
            List.sort_uniq compare
              (List.init cfg.crash_points (fun i ->
                   1 + (i * (syscalls - 1) / (cfg.crash_points - 1))))
        in
        let n_points = List.length points in
        let rec sweep done_ crashes = function
          | [] ->
              Ok
                {
                  syscalls;
                  crashes;
                  recoveries = crashes;
                  transients;
                }
          | c :: rest -> (
              match check_crash_point cfg ~initial ~steps ~states c with
              | Ok crashed ->
                  progress (done_ + 1) n_points;
                  sweep (done_ + 1) (crashes + if crashed then 1 else 0) rest
              | Error f -> Error f)
        in
        sweep 0 0 points
  end
