exception Crash
exception Injected of string

type handle = {
  h_write : string -> unit;
  h_sync : unit -> unit;
  h_close : unit -> unit;
}

type t = {
  read_file : string -> string option;
  write_file : string -> string -> unit;
  open_append : string -> handle;
  truncate : string -> int -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  exists : string -> bool;
  is_directory : string -> bool;
  mkdir : string -> unit;
}

(* --- real backend ------------------------------------------------------- *)

let real =
  {
    read_file =
      (fun path ->
        if Sys.file_exists path then
          Some (In_channel.with_open_bin path In_channel.input_all)
        else None);
    write_file =
      (fun path contents ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc contents;
            Out_channel.flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc)));
    open_append =
      (fun path ->
        let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
        {
          h_write = (fun s -> output_string oc s);
          h_sync =
            (fun () ->
              flush oc;
              Unix.fsync (Unix.descr_of_out_channel oc));
          h_close = (fun () -> close_out oc);
        });
    truncate =
      (fun path len ->
        if Sys.file_exists path && (Unix.stat path).Unix.st_size > len then
          Unix.truncate path len);
    rename = Sys.rename;
    remove = Sys.remove;
    exists = Sys.file_exists;
    is_directory = (fun path -> Sys.file_exists path && Sys.is_directory path);
    mkdir = (fun path -> Sys.mkdir path 0o755);
  }

(* --- memory backend ----------------------------------------------------- *)

(* One file: full contents as seen by the running process, plus the
   durable boundary.  Bytes beyond [synced] are what a power failure
   loses (modulo a torn prefix). *)
type mem_file = { mutable data : Buffer.t; mutable synced : int }

type mem_fs = {
  files : (string, mem_file) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
}

let mem_find_or_create fs path =
  match Hashtbl.find_opt fs.files path with
  | Some f -> f
  | None ->
      let f = { data = Buffer.create 256; synced = 0 } in
      Hashtbl.replace fs.files path f;
      f

let mem_view fs =
  {
    read_file =
      (fun path ->
        Option.map (fun f -> Buffer.contents f.data)
          (Hashtbl.find_opt fs.files path));
    write_file =
      (fun path contents ->
        let f = mem_find_or_create fs path in
        Buffer.clear f.data;
        Buffer.add_string f.data contents;
        f.synced <- String.length contents);
    open_append =
      (fun path ->
        let f = mem_find_or_create fs path in
        {
          h_write = (fun s -> Buffer.add_string f.data s);
          h_sync = (fun () -> f.synced <- Buffer.length f.data);
          h_close = (fun () -> ());
        });
    truncate =
      (fun path len ->
        match Hashtbl.find_opt fs.files path with
        | Some f when Buffer.length f.data > len ->
            Buffer.truncate f.data len;
            f.synced <- min f.synced len
        | Some _ | None -> ());
    rename =
      (fun src dst ->
        match Hashtbl.find_opt fs.files src with
        | Some f ->
            Hashtbl.replace fs.files dst f;
            Hashtbl.remove fs.files src
        | None -> raise (Sys_error (src ^ ": no such file")));
    remove = (fun path -> Hashtbl.remove fs.files path);
    exists =
      (fun path -> Hashtbl.mem fs.files path || Hashtbl.mem fs.dirs path);
    is_directory = (fun path -> Hashtbl.mem fs.dirs path);
    mkdir = (fun path -> Hashtbl.replace fs.dirs path ());
  }

let memory () =
  mem_view { files = Hashtbl.create 8; dirs = Hashtbl.create 4 }

(* --- fault injection ---------------------------------------------------- *)

type fault_config = {
  crash_at : int;
  fail_every : int;
  torn_writes : bool;
  corrupt_torn_byte : bool;
}

let no_faults =
  { crash_at = 0; fail_every = 0; torn_writes = true; corrupt_torn_byte = true }

type injected = {
  vfs : t;
  base : t;
  syscalls : unit -> int;
  crashed : unit -> bool;
  transients : unit -> int;
  rearm : ?seed:int -> fault_config -> unit;
}

(* Power failure: every file keeps its synced prefix plus (when torn
   writes are modelled) a random prefix of the unsynced tail, possibly
   with one flipped bit — a torn sector.  The survivor becomes the new
   synced content: that is what the next boot reads. *)
let apply_crash rng config fs =
  Hashtbl.iter
    (fun _path f ->
      let len = Buffer.length f.data in
      if len > f.synced then begin
        let keep =
          if config.torn_writes then
            f.synced + Random.State.int rng (len - f.synced + 1)
          else f.synced
        in
        let corrupt =
          config.corrupt_torn_byte && keep > f.synced
          && Random.State.bool rng
        in
        if corrupt then begin
          let pos = f.synced + Random.State.int rng (keep - f.synced) in
          let bytes = Bytes.of_string (Buffer.contents f.data) in
          Bytes.set bytes pos
            (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x40));
          Buffer.clear f.data;
          Buffer.add_subbytes f.data bytes 0 len
        end;
        Buffer.truncate f.data keep;
        f.synced <- keep
      end
      else f.synced <- len)
    fs.files

let inject ?(seed = 0) config =
  let fs = { files = Hashtbl.create 8; dirs = Hashtbl.create 4 } in
  let clean = mem_view fs in
  let config = ref config in
  let rng = ref (Random.State.make [| seed |]) in
  let count = ref 0 in
  let crashed = ref false in
  let transients = ref 0 in
  (* [effect_before_crash] performs the syscall's partial effect (the
     bytes that were in flight when the plug was pulled); the global
     torn-tail transformation then decides how much of it survives. *)
  let syscall ?(injectable = false) ?(effect_before_crash = fun () -> ())
      ?(effect_before_inject = fun () -> ()) perform =
    if !crashed then raise Crash;
    incr count;
    if !config.crash_at > 0 && !count >= !config.crash_at then begin
      crashed := true;
      effect_before_crash ();
      apply_crash !rng !config fs;
      raise Crash
    end;
    if injectable && !config.fail_every > 0 && !count mod !config.fail_every = 0
    then begin
      incr transients;
      effect_before_inject ();
      raise (Injected (Printf.sprintf "injected fault at syscall %d" !count))
    end;
    perform ()
  in
  (* A failing or crashing write first delivers a random strict prefix:
     a short write. *)
  let partial_write f s =
    let n = String.length s in
    if n > 0 then
      Buffer.add_string f.data (String.sub s 0 (Random.State.int !rng n))
  in
  let vfs =
    {
      read_file = clean.read_file;
      write_file =
        (fun path contents ->
          syscall
            ~effect_before_crash:(fun () ->
              let f = mem_find_or_create fs path in
              Buffer.clear f.data;
              f.synced <- 0;
              partial_write f contents)
            (fun () -> clean.write_file path contents));
      open_append =
        (fun path ->
          syscall (fun () ->
              let f = mem_find_or_create fs path in
              let h = clean.open_append path in
              {
                h_write =
                  (fun s ->
                    syscall ~injectable:true
                      ~effect_before_crash:(fun () ->
                        Buffer.add_string f.data s)
                        (* A transient failure is a short write: a prefix
                           lands in the file, then the call errors out. *)
                      ~effect_before_inject:(fun () -> partial_write f s)
                      (fun () -> h.h_write s));
                h_sync =
                  (fun () -> syscall ~injectable:true (fun () -> h.h_sync ()));
                h_close = (fun () -> h.h_close ());
              }));
      truncate =
        (fun path len -> syscall (fun () -> clean.truncate path len));
      rename =
        (fun src dst ->
          syscall
            ~effect_before_crash:(fun () ->
              (* The rename either reached the directory or did not. *)
              if Random.State.bool !rng then clean.rename src dst)
            (fun () -> clean.rename src dst));
      remove = (fun path -> syscall (fun () -> clean.remove path));
      exists = clean.exists;
      is_directory = clean.is_directory;
      mkdir = (fun path -> syscall (fun () -> clean.mkdir path));
    }
  in
  {
    vfs;
    base = clean;
    syscalls = (fun () -> !count);
    crashed = (fun () -> !crashed);
    transients = (fun () -> !transients);
    rearm =
      (fun ?(seed = seed) c ->
        config := c;
        rng := Random.State.make [| seed |];
        count := 0;
        crashed := false);
  }
