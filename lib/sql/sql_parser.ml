open Mxra_relational
open Mxra_core

exception Parse_error of string * int

type state = {
  tokens : (Sql_lexer.token * int) array;
  mutable pos : int;
}

let peek st = fst st.tokens.(st.pos)
let peek2 st = fst st.tokens.(min (st.pos + 1) (Array.length st.tokens - 1))
let offset st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (msg, offset st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s"
      (Sql_lexer.token_to_string tok)
      (Sql_lexer.token_to_string (peek st))

(* Keywords are identifiers compared case-insensitively. *)
let is_kw st kw =
  match peek st with
  | Sql_lexer.IDENT s -> String.uppercase_ascii s = kw
  | _ -> false

let eat_kw st kw = if is_kw st kw then (advance st; true) else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail st "expected %s, found %s" kw (Sql_lexer.token_to_string (peek st))

let reserved =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AS"; "AND";
    "OR"; "NOT"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE"; "SET";
    "CREATE"; "TABLE"; "TRUE"; "FALSE" ]

let expect_name st =
  match peek st with
  | Sql_lexer.IDENT s when not (List.mem (String.uppercase_ascii s) reserved) ->
      advance st;
      s
  | t -> fail st "expected name, found %s" (Sql_lexer.token_to_string t)

let comma_separated st parse_item =
  let rec more acc =
    if peek st = Sql_lexer.COMMA then (
      advance st;
      more (parse_item st :: acc))
    else List.rev acc
  in
  more [ parse_item st ]

(* --- scalar expressions and predicates ------------------------------------ *)

(* A dotted name: one or more identifiers joined by '.'.  Table names
   may themselves be dotted (the reserved sys.* catalog), so a column
   reference can be [name], [table.name] or [sys.table.name]. *)
let parse_dotted st =
  let rec more acc =
    if peek st = Sql_lexer.DOT then (
      advance st;
      more (expect_name st :: acc))
    else List.rev acc
  in
  more [ expect_name st ]

let parse_table_name st = String.concat "." (parse_dotted st)

let parse_column st =
  match parse_dotted st with
  | [ name ] -> { Sql_ast.table = None; name }
  | parts ->
      let n = List.length parts in
      let name = List.nth parts (n - 1) in
      let table = String.concat "." (List.filteri (fun i _ -> i < n - 1) parts) in
      { Sql_ast.table = Some table; name }

let rec parse_sexpr st = parse_additive st

and parse_additive st =
  let rec more acc =
    match peek st with
    | Sql_lexer.PLUS -> advance st; more (Sql_ast.Bin (Term.Add, acc, parse_multiplicative st))
    | Sql_lexer.MINUS -> advance st; more (Sql_ast.Bin (Term.Sub, acc, parse_multiplicative st))
    | Sql_lexer.CONCAT -> advance st; more (Sql_ast.Bin (Term.Concat, acc, parse_multiplicative st))
    | _ -> acc
  in
  more (parse_multiplicative st)

and parse_multiplicative st =
  let rec more acc =
    match peek st with
    | Sql_lexer.STAR -> advance st; more (Sql_ast.Bin (Term.Mul, acc, parse_primary st))
    | Sql_lexer.SLASH -> advance st; more (Sql_ast.Bin (Term.Div, acc, parse_primary st))
    | Sql_lexer.PERCENT -> advance st; more (Sql_ast.Bin (Term.Mod, acc, parse_primary st))
    | _ -> acc
  in
  more (parse_primary st)

and parse_primary st =
  match peek st with
  | Sql_lexer.INT n -> advance st; Sql_ast.Lit (Value.Int n)
  | Sql_lexer.FLOAT f -> advance st; Sql_ast.Lit (Value.Float f)
  | Sql_lexer.STRING s -> advance st; Sql_ast.Lit (Value.Str s)
  | Sql_lexer.MINUS ->
      advance st;
      Sql_ast.Neg (parse_primary st)
  | Sql_lexer.LPAREN ->
      advance st;
      let e = parse_sexpr st in
      expect st Sql_lexer.RPAREN;
      e
  | Sql_lexer.IDENT s when String.uppercase_ascii s = "TRUE" ->
      advance st;
      Sql_ast.Lit (Value.Bool true)
  | Sql_lexer.IDENT s when String.uppercase_ascii s = "FALSE" ->
      advance st;
      Sql_ast.Lit (Value.Bool false)
  | Sql_lexer.IDENT _ -> Sql_ast.Col (parse_column st)
  | t -> fail st "expected expression, found %s" (Sql_lexer.token_to_string t)

let rec parse_pred st = parse_or st

and parse_or st =
  let rec more acc =
    if eat_kw st "OR" then more (Sql_ast.Or (acc, parse_and st)) else acc
  in
  more (parse_and st)

and parse_and st =
  let rec more acc =
    if eat_kw st "AND" then more (Sql_ast.And (acc, parse_not st)) else acc
  in
  more (parse_not st)

and parse_not st =
  if eat_kw st "NOT" then Sql_ast.Not (parse_not st) else parse_atom st

and parse_atom st =
  (* '(' opens either a sub-predicate or a parenthesised scalar on the
     left of a comparison; try the comparison reading first. *)
  let saved = st.pos in
  match parse_comparison st with
  | cmp -> cmp
  | exception Parse_error _ -> (
      st.pos <- saved;
      match peek st with
      | Sql_lexer.LPAREN ->
          advance st;
          let p = parse_pred st in
          expect st Sql_lexer.RPAREN;
          p
      | t -> fail st "expected condition, found %s" (Sql_lexer.token_to_string t))

and parse_comparison st =
  let lhs = parse_sexpr st in
  let op =
    match peek st with
    | Sql_lexer.EQ -> Term.Eq
    | Sql_lexer.NE -> Term.Ne
    | Sql_lexer.LT -> Term.Lt
    | Sql_lexer.LE -> Term.Le
    | Sql_lexer.GT -> Term.Gt
    | Sql_lexer.GE -> Term.Ge
    | t -> fail st "expected comparison, found %s" (Sql_lexer.token_to_string t)
  in
  advance st;
  Sql_ast.Cmp (op, lhs, parse_sexpr st)

(* --- SELECT ------------------------------------------------------------------ *)

let parse_alias st =
  if eat_kw st "AS" then Some (expect_name st)
  else
    match peek st with
    | Sql_lexer.IDENT s when not (List.mem (String.uppercase_ascii s) reserved) ->
        advance st;
        Some s
    | _ -> None

let star_column = { Sql_ast.table = None; name = "*" }

let parse_sel_item st =
  match peek st with
  | Sql_lexer.STAR -> advance st; Sql_ast.Sel_star
  | Sql_lexer.IDENT s when Aggregate.of_name s <> None && peek2 st = Sql_lexer.LPAREN -> (
      let kind = Option.get (Aggregate.of_name s) in
      advance st;
      advance st;
      let col =
        if peek st = Sql_lexer.STAR then (advance st; star_column)
        else parse_column st
      in
      expect st Sql_lexer.RPAREN;
      Sql_ast.Sel_agg (kind, col, parse_alias st))
  | _ ->
      let e = parse_sexpr st in
      Sql_ast.Sel_expr (e, parse_alias st)

let parse_table_ref st =
  let name = parse_table_name st in
  let alias =
    match peek st with
    | Sql_lexer.IDENT s when not (List.mem (String.uppercase_ascii s) reserved) ->
        advance st;
        Some s
    | _ -> None
  in
  (name, alias)

let rec parse_query st =
  expect_kw st "SELECT";
  let distinct = eat_kw st "DISTINCT" in
  let select = comma_separated st parse_sel_item in
  expect_kw st "FROM";
  let from = comma_separated st parse_table_ref in
  let where = if eat_kw st "WHERE" then Some (parse_pred st) else None in
  let group_by =
    if eat_kw st "GROUP" then (
      expect_kw st "BY";
      comma_separated st parse_column)
    else []
  in
  { Sql_ast.distinct; select; from; where; group_by }

(* --- statements --------------------------------------------------------------- *)

and parse_stmt st =
  if is_kw st "SELECT" then Sql_ast.Select (parse_query st)
  else if eat_kw st "INSERT" then (
    expect_kw st "INTO";
    let table = parse_table_name st in
    if eat_kw st "VALUES" then
      let parse_row st =
        expect st Sql_lexer.LPAREN;
        let parse_v st =
          match parse_primary st with
          | Sql_ast.Lit v -> v
          | Sql_ast.Neg (Sql_ast.Lit (Value.Int n)) -> Value.Int (-n)
          | Sql_ast.Neg (Sql_ast.Lit (Value.Float f)) -> Value.Float (-.f)
          | Sql_ast.Col _ | Sql_ast.Bin _ | Sql_ast.Neg _ ->
              fail st "VALUES rows must contain literals"
        in
        let row = comma_separated st parse_v in
        expect st Sql_lexer.RPAREN;
        row
      in
      Sql_ast.Insert_values (table, comma_separated st parse_row)
    else if is_kw st "SELECT" then
      Sql_ast.Insert_select (table, parse_query st)
    else fail st "expected VALUES or SELECT after INSERT INTO %s" table)
  else if eat_kw st "DELETE" then (
    expect_kw st "FROM";
    let table = parse_table_name st in
    let where = if eat_kw st "WHERE" then Some (parse_pred st) else None in
    Sql_ast.Delete (table, where))
  else if eat_kw st "UPDATE" then (
    let table = parse_table_name st in
    expect_kw st "SET";
    let assignment st =
      let col = expect_name st in
      expect st Sql_lexer.EQ;
      (col, parse_sexpr st)
    in
    let sets = comma_separated st assignment in
    let where = if eat_kw st "WHERE" then Some (parse_pred st) else None in
    Sql_ast.Update (table, sets, where))
  else if eat_kw st "CREATE" then (
    if eat_kw st "INDEX" then (
      let name = expect_name st in
      expect_kw st "ON";
      let table = parse_table_name st in
      expect st Sql_lexer.LPAREN;
      let cols = comma_separated st expect_name in
      expect st Sql_lexer.RPAREN;
      let kind =
        if eat_kw st "USING" then
          if eat_kw st "HASH" then Database.Hash
          else if eat_kw st "ORDERED" then Database.Ordered
          else
            fail st "expected HASH or ORDERED, found %s"
              (Sql_lexer.token_to_string (peek st))
        else Database.Hash
      in
      Sql_ast.Create_index (name, table, cols, kind))
    else parse_create_table st)
  else if eat_kw st "DROP" then (
    expect_kw st "INDEX";
    Sql_ast.Drop_index (expect_name st))
  else fail st "expected statement, found %s" (Sql_lexer.token_to_string (peek st))

and parse_create_table st =
    expect_kw st "TABLE";
    let table = parse_table_name st in
    expect st Sql_lexer.LPAREN;
    let column st =
      let name = expect_name st in
      let domain_name = expect_name st in
      match Domain.of_string domain_name with
      | Some d -> (name, d)
      | None -> fail st "unknown type %s" domain_name
    in
    let cols = comma_separated st column in
    expect st Sql_lexer.RPAREN;
    Sql_ast.Create (table, cols)

let parse src =
  let st = { tokens = Sql_lexer.tokenize src; pos = 0 } in
  let stmt = parse_stmt st in
  if peek st = Sql_lexer.SEMI then advance st;
  expect st Sql_lexer.EOF;
  stmt

let parse_script src =
  let st = { tokens = Sql_lexer.tokenize src; pos = 0 } in
  let rec more acc =
    match peek st with
    | Sql_lexer.EOF -> List.rev acc
    | Sql_lexer.SEMI -> advance st; more acc
    | _ -> more (parse_stmt st :: acc)
  in
  more []
