open Mxra_relational
open Mxra_core

exception Translate_error of string

type result =
  | Query of Expr.t
  | Statement of Statement.t
  | Create of string * Schema.t
  | Create_index of Database.index_def
  | Drop_index of string

let error fmt = Format.kasprintf (fun s -> raise (Translate_error s)) fmt

(* Resolution scope: one entry per FROM item, in order. *)
type scope_entry = {
  alias : string;  (* lowercased alias or table name *)
  schema : Schema.t;
  first_attr : int;  (* 1-based index of this table's first column *)
}

let scope_of_from env from =
  let add (entries, next) (table, alias) =
    let schema =
      match env table with
      | Some s -> s
      | None -> error "unknown table %s" table
    in
    let alias =
      String.lowercase_ascii (Option.value ~default:table alias)
    in
    ( { alias; schema; first_attr = next } :: entries,
      next + Schema.arity schema )
  in
  let entries, _ = List.fold_left add ([], 1) from in
  List.rev entries

let resolve_column scope { Sql_ast.table; name } =
  let matches =
    List.filter_map
      (fun entry ->
        let table_ok =
          match table with
          | Some t -> String.lowercase_ascii t = entry.alias
          | None -> true
        in
        if table_ok then
          Option.map
            (fun i -> entry.first_attr + i - 1)
            (Schema.index_of_name entry.schema name)
        else None)
      scope
  in
  match matches with
  | [ position ] -> position
  | [] ->
      error "unknown column %s%s"
        (match table with Some t -> t ^ "." | None -> "")
        name
  | _ :: _ :: _ -> error "ambiguous column %s" name

let rec translate_sexpr scope = function
  | Sql_ast.Col c -> Scalar.Attr (resolve_column scope c)
  | Sql_ast.Lit v -> Scalar.Lit v
  | Sql_ast.Bin (op, a, b) ->
      Scalar.Binop (op, translate_sexpr scope a, translate_sexpr scope b)
  | Sql_ast.Neg a -> Scalar.Neg (translate_sexpr scope a)

let rec translate_pred scope = function
  | Sql_ast.Cmp (op, a, b) ->
      Pred.Cmp (op, translate_sexpr scope a, translate_sexpr scope b)
  | Sql_ast.And (p, q) -> Pred.And (translate_pred scope p, translate_pred scope q)
  | Sql_ast.Or (p, q) -> Pred.Or (translate_pred scope p, translate_pred scope q)
  | Sql_ast.Not p -> Pred.Not (translate_pred scope p)

let is_star (c : Sql_ast.column) = c.Sql_ast.table = None && c.Sql_ast.name = "*"

let rec translate_query env (q : Sql_ast.query) =
  if q.Sql_ast.from = [] then error "empty FROM clause";
  let scope = scope_of_from env q.Sql_ast.from in
  (* FROM: product chain, left-associated. *)
  let base =
    match List.map (fun (t, _) -> Expr.rel t) q.Sql_ast.from with
    | [] -> assert false
    | first :: rest -> List.fold_left Expr.product first rest
  in
  let filtered =
    match q.Sql_ast.where with
    | None -> base
    | Some p -> Expr.select (translate_pred scope p) base
  in
  let has_agg =
    List.exists
      (function Sql_ast.Sel_agg _ -> true | Sql_ast.Sel_star | Sql_ast.Sel_expr _ -> false)
      q.Sql_ast.select
  in
  let shaped =
    if has_agg || q.Sql_ast.group_by <> [] then
      translate_aggregate_query scope filtered q
    else begin
      if List.exists (function Sql_ast.Sel_star -> true | Sql_ast.Sel_expr _ | Sql_ast.Sel_agg _ -> false) q.Sql_ast.select
      then
        if List.length q.Sql_ast.select = 1 then filtered
        else error "SELECT * cannot be combined with other select items"
      else
        let exprs =
          List.map
            (function
              | Sql_ast.Sel_expr (e, _) -> translate_sexpr scope e
              | Sql_ast.Sel_star | Sql_ast.Sel_agg _ -> assert false)
            q.Sql_ast.select
        in
        Expr.project exprs filtered
    end
  in
  if q.Sql_ast.distinct then Expr.unique shaped else shaped

and translate_aggregate_query scope filtered (q : Sql_ast.query) =
  let group_positions =
    List.map (resolve_column scope) q.Sql_ast.group_by
  in
  let aggs =
    List.filter_map
      (function
        | Sql_ast.Sel_agg (kind, col, _) ->
            (* CNT's parameter is a dummy (Definition 3.3); a starred
               count uses attribute 1. *)
            let p = if is_star col then 1 else resolve_column scope col in
            Some (kind, p)
        | Sql_ast.Sel_expr _ | Sql_ast.Sel_star -> None)
      q.Sql_ast.select
  in
  if aggs = [] then
    (* Pure GROUP BY without aggregates: one row per group = δ∘π. *)
    translate_group_only scope filtered q group_positions
  else begin
    let grouped = Expr.group_by group_positions aggs filtered in
    (* Reorder output to the SELECT order: key columns come first in Γ's
       schema, then the aggregates in select order. *)
    let n_keys = List.length group_positions in
    let key_index position =
      let rec go k = function
        | [] -> error "select item not in GROUP BY"
        | p :: rest -> if p = position then k else go (k + 1) rest
      in
      go 1 group_positions
    in
    let agg_counter = ref 0 in
    let out_index = function
      | Sql_ast.Sel_star -> error "SELECT * in an aggregate query"
      | Sql_ast.Sel_expr (Sql_ast.Col c, _) ->
          key_index (resolve_column scope c)
      | Sql_ast.Sel_expr (_, _) ->
          error "non-column select item in an aggregate query"
      | Sql_ast.Sel_agg (_, _, _) ->
          incr agg_counter;
          n_keys + !agg_counter
    in
    let order = List.map out_index q.Sql_ast.select in
    let identity =
      List.length order = n_keys + List.length aggs
      && List.for_all2 ( = ) order (List.init (List.length order) (fun i -> i + 1))
    in
    if identity then grouped else Expr.project_attrs order grouped
  end

and translate_group_only scope filtered (q : Sql_ast.query) group_positions =
  let exprs =
    List.map
      (function
        | Sql_ast.Sel_expr (Sql_ast.Col c, _) ->
            let p = resolve_column scope c in
            if not (List.mem p group_positions) then
              error "select item not in GROUP BY"
            else Scalar.Attr p
        | Sql_ast.Sel_expr (_, _) | Sql_ast.Sel_star | Sql_ast.Sel_agg _ ->
            error "GROUP BY without aggregates requires plain columns")
      q.Sql_ast.select
  in
  Expr.unique (Expr.project exprs filtered)

(* --- statements ---------------------------------------------------------- *)

let table_schema env table =
  match env table with
  | Some s -> s
  | None -> error "unknown table %s" table

let table_scope env table =
  [ { alias = String.lowercase_ascii table;
      schema = table_schema env table;
      first_attr = 1 } ]

let coerce_value domain v =
  match (domain, v) with
  | Domain.DFloat, Value.Int n -> Value.Float (float_of_int n)
  | (Domain.DInt | Domain.DFloat | Domain.DStr | Domain.DBool), _ -> v

let translate_insert_values env table rows =
  let schema = table_schema env table in
  let arity = Schema.arity schema in
  let to_tuple row =
    if List.length row <> arity then
      error "INSERT row has %d values, %s has %d columns" (List.length row)
        table arity;
    let coerced = List.mapi (fun i v -> coerce_value (Schema.domain schema (i + 1)) v) row in
    List.iteri
      (fun i v ->
        if not (Domain.member v (Schema.domain schema (i + 1))) then
          error "value %s does not fit column %d of %s" (Value.to_string v)
            (i + 1) table)
      coerced;
    Tuple.of_list coerced
  in
  let relation = Relation.of_list schema (List.map to_tuple rows) in
  Statement.Insert (table, Expr.const relation)

let translate_update env table sets where =
  let schema = table_schema env table in
  let scope = table_scope env table in
  let selected =
    match where with
    | None -> Expr.rel table
    | Some p -> Expr.select (translate_pred scope p) (Expr.rel table)
  in
  let expr_for i (a : Schema.attribute) =
    match
      List.find_opt
        (fun (col, _) -> String.lowercase_ascii col = String.lowercase_ascii a.Schema.name)
        sets
    with
    | Some (_, e) -> translate_sexpr scope e
    | None -> Scalar.Attr (i + 1)
  in
  List.iter
    (fun (col, _) ->
      if Schema.index_of_name schema col = None then
        error "unknown column %s in UPDATE %s" col table)
    sets;
  let attr_exprs = List.mapi expr_for (Schema.attributes schema) in
  Statement.Update (table, selected, attr_exprs)

let translate_ast env = function
  | Sql_ast.Select q -> Query (translate_query env q)
  | Sql_ast.Insert_values (table, rows) ->
      Statement (translate_insert_values env table rows)
  | Sql_ast.Insert_select (table, q) ->
      Statement (Statement.Insert (table, translate_query env q))
  | Sql_ast.Delete (table, where) ->
      let scope = table_scope env table in
      let e =
        match where with
        | None -> Expr.rel table
        | Some p -> Expr.select (translate_pred scope p) (Expr.rel table)
      in
      Statement (Statement.Delete (table, e))
  | Sql_ast.Update (table, sets, where) ->
      Statement (translate_update env table sets where)
  | Sql_ast.Create (table, cols) -> Create (table, Schema.of_list cols)
  | Sql_ast.Create_index (name, table, cols, kind) ->
      let schema = table_schema env table in
      let positions =
        List.map
          (fun c ->
            match Schema.index_of_name schema c with
            | Some i -> i
            | None -> error "unknown column %s in CREATE INDEX ON %s" c table)
          cols
      in
      Create_index
        {
          Database.idx_name = name;
          idx_rel = table;
          idx_cols = positions;
          idx_kind = kind;
        }
  | Sql_ast.Drop_index name -> Drop_index name

let translate env ast =
  Mxra_obs.Trace.with_span "sql.translate" (fun () -> translate_ast env ast)

let translate_string env src =
  translate env
    (Mxra_obs.Trace.with_span "sql.parse"
       ~attrs:[ ("bytes", Mxra_obs.Trace.Int (String.length src)) ]
       (fun () -> Sql_parser.parse src))

let query_of_string env src =
  match translate_string env src with
  | Query e -> e
  | Statement _ | Create _ | Create_index _ | Drop_index _ ->
      error "expected a SELECT statement"
