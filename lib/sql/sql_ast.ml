(* Abstract syntax of the SQL subset.  Names are unresolved here;
   Translate resolves them to positional attributes against a schema
   environment, following the paper's use of the algebra as "a formal
   background for SQL" (Examples 3.2 and 4.1 show the correspondence). *)

open Mxra_relational
open Mxra_core

type column = {
  table : string option;  (* qualifier, e.g. beer in beer.brewery *)
  name : string;
}

type sexpr =
  | Col of column
  | Lit of Value.t
  | Bin of Term.binop * sexpr * sexpr
  | Neg of sexpr

type spred =
  | Cmp of Term.cmpop * sexpr * sexpr
  | And of spred * spred
  | Or of spred * spred
  | Not of spred

type sel_item =
  | Sel_star
  | Sel_expr of sexpr * string option  (* expression AS alias *)
  | Sel_agg of Aggregate.kind * column * string option
      (* AGG(col) AS alias; CNT may take '*' encoded as the pseudo-column
         {table=None; name="*"} *)

type query = {
  distinct : bool;
  select : sel_item list;
  from : (string * string option) list;  (* relation name, alias *)
  where : spred option;
  group_by : column list;
}

type stmt =
  | Select of query
  | Insert_values of string * Value.t list list
  | Insert_select of string * query
  | Delete of string * spred option
  | Update of string * (string * sexpr) list * spred option
  | Create of string * (string * Domain.t) list
  | Create_index of string * string * string list * Database.index_kind
      (* CREATE INDEX name ON table (col, ...) [USING HASH|ORDERED];
         columns are unresolved names here, positions after Translate *)
  | Drop_index of string
