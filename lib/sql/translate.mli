(** SQL-to-algebra translation.

    Realises the paper's claim that the multi-set extended relational
    algebra "can be used as a formal background for other multi-set
    languages like SQL": every SQL statement of the subset maps onto an
    algebra expression or language statement whose semantics is the
    paper's.  The correspondences of Example 3.2 (SELECT/FROM/WHERE/
    GROUP BY to σ, ×, Γ) and Example 4.1 (UPDATE ... SET to the update
    statement) are exactly what this module produces, and tests check
    those two translations against the hand-built expressions.

    Name resolution is positional: FROM items are numbered left to
    right, each column reference becomes an attribute index into the
    concatenation of the FROM schemas.  SELECT items without aggregates
    become an extended projection; with aggregates or GROUP BY they
    become [Γ] plus a reordering projection; [DISTINCT] becomes [δ]. *)

open Mxra_relational
open Mxra_core

exception Translate_error of string

type result =
  | Query of Expr.t  (** A SELECT: run as [?E]. *)
  | Statement of Statement.t  (** INSERT/DELETE/UPDATE. *)
  | Create of string * Schema.t  (** CREATE TABLE. *)
  | Create_index of Database.index_def
      (** CREATE INDEX, column names resolved to 1-based positions. *)
  | Drop_index of string  (** DROP INDEX. *)

val translate : Typecheck.env -> Sql_ast.stmt -> result
(** @raise Translate_error on unknown/ambiguous names, a non-grouped
    select item in an aggregate query, or VALUES rows that do not fit
    the table schema. *)

val translate_string : Typecheck.env -> string -> result
(** Parse then translate. *)

val query_of_string : Typecheck.env -> string -> Expr.t
(** For SELECTs only.  @raise Translate_error otherwise. *)
