(** A fixed-size domain pool for real multicore execution.

    OCaml 5 gives the runtime true parallelism through domains; this
    module keeps a fixed set of them alive behind a mutex/condition work
    queue so that query execution can fan work out without paying a
    [Domain.spawn] (~100µs and a fresh minor heap) per operator.  No
    external dependency is used — the pool is raw [Stdlib.Domain] plus
    [Mutex]/[Condition]/[Atomic].

    A pool of size [n] owns [n - 1] worker domains; the caller of
    {!map_array} enlists itself as the [n]th lane, so [create 1] spawns
    nothing and degrades to ordinary sequential iteration.  Work is
    distributed morsel-style: lanes repeatedly claim the next chunk of
    indices from an atomic cursor, so a skewed fragment occupies one
    lane while the others drain the rest — the scheduling of
    morsel-driven parallelism (Leis et al.), scaled down to arrays.

    Relations and bags are immutable balanced maps, so fragments handed
    to workers are shared across domains with zero copying; tasks must
    only avoid mutating shared state of their own. *)

type t

val create : int -> t
(** [create n] is a pool of [n] compute lanes ([n - 1] spawned domains;
    values [< 1] are clamped to 1).  Shut it down with {!shutdown} or
    use {!with_pool}. *)

val size : t -> int
(** Number of compute lanes (including the caller's). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Must not be called while a
    {!map_array} is in flight; subsequent {!map_array} calls run
    sequentially on the caller. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] over a fresh pool and shuts it down
    afterwards, exception or not. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f arr] applies [f] to every element on the pool's
    lanes and returns the results in order.  [chunk] is the morsel size
    — how many consecutive elements a lane claims at a time (default
    [max 1 (length / (4 * size))], i.e. about four morsels per lane so
    imbalanced elements rebalance; pass [~chunk:1] when each element is
    already a coarse fragment).

    If any application raises, the first exception (by completion
    order) is re-raised in the caller with its backtrace once the other
    lanes have drained; remaining unstarted morsels are skipped. *)

val mapi_array : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** {!map_array} with the element index, for labelling fragments. *)

(** {1 The process-wide pool}

    Engine operators ({!Mxra_engine.Exec} executing an [Exchange] node)
    need a pool but must not spawn one per query.  The global pool is
    created lazily at the configured size and recreated if the size
    changes; it is intended to be configured once at startup (bagdb's
    [--jobs N]) from the main domain.  An [at_exit] hook joins its
    domains so the process always terminates cleanly. *)

val set_default_size : int -> unit
(** Set the size of the global pool (clamped to [>= 1]; default 1, so
    parallel execution is opt-in). *)

val default_size : unit -> int

val global : unit -> t
(** The process-wide pool at the current default size.  Not
    thread-safe: call from the main domain, between queries. *)

(** {1 Telemetry} *)

type stats = {
  s_lanes : int;  (** compute lanes, including the caller's *)
  s_queued : int;  (** jobs waiting in the work queue right now *)
  s_busy : int;  (** lanes currently running morsels *)
  s_maps : int;  (** {!map_array} calls since the pool was created *)
}

val stats : t -> stats
(** A cheap, deliberately racy glance at the pool — single-field reads
    only, safe from any domain, no lock taken. *)

val telemetry : unit -> (string * float) list
(** Sampler probe over the {e installed} global pool: series
    [pool.lanes], [pool.queued], [pool.busy] and [pool.maps].  Never
    creates the pool — if none is installed yet it reports the
    configured lane count and zeros. *)
