(* Multiplicity-aware secondary indexes.

   An index maps a key — the values of the indexed attributes — to the
   *posting bag* of full tuples carrying that key, with their
   multiplicities (Definition 2.1: a relation is a function dom(R) → ℕ,
   so an access path must return counted tuples, never a set).  Two
   shapes exist, mirroring {!Database.index_kind}:

   - [Hash]: equality probes on one or more columns.  Stored as a
     balanced map keyed by the key tuple — persistent so that
     incremental maintenance can share structure between successive
     database states; probes are O(log distinct-keys).
   - [Ordered]: a single column under {!Value.compare} (the same order
     {!Ordered.compare_by} sorts by within a domain), supporting point
     probes and range scans in O(log n + matches).

   Structures are derived data over immutable relation values, so
   consistency is by construction: the cache below keys every built
   structure by the *physical identity* of the source bag.  A database
   state obtained by abort/undo re-installs the old relation value,
   whose cache entry is still valid; a state the maintenance hook never
   saw simply misses the cache and rebuilds.  Incremental maintenance
   (via {!Statement.set_write_observer}) is therefore purely a
   performance device — correctness never depends on it. *)

open Mxra_relational
open Mxra_core

type bound = { b_value : Value.t; b_incl : bool }

type access =
  | Point of Value.t list
  | Range of bound option * bound option

module KMap = Map.Make (Tuple)
module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type repr =
  | Hashed of Relation.Bag.t KMap.t
  | Ranged of Relation.Bag.t VMap.t

type t = {
  def : Database.index_def;
  repr : repr;
  card : (int * int) Lazy.t;
      (* (distinct keys, entries), memoized per structure version so
         per-run statistics probes are O(1) — a Map.cardinal walk per
         executed operator showed up as O(n) in the E18 curve.  Not
         forced on the write path, so maintenance stays O(delta). *)
}

(* Lazy.force is not domain-safe; serialize it (suspensions are cheap
   and forced at most once per structure version). *)
let card_lock = Mutex.create ()

let card_of repr =
  match repr with
  | Hashed m ->
      KMap.fold (fun _ b (k, e) -> (k + 1, e + Relation.Bag.cardinal b)) m (0, 0)
  | Ranged m ->
      VMap.fold (fun _ b (k, e) -> (k + 1, e + Relation.Bag.cardinal b)) m (0, 0)

let card idx =
  Mutex.lock card_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock card_lock) (fun () ->
      Lazy.force idx.card)

(* --- telemetry ---------------------------------------------------------- *)

let builds = Atomic.make 0
let maintained = Atomic.make 0
let probes = Atomic.make 0
let cache_hits = Atomic.make 0

let telemetry () =
  [
    ("index.builds", float_of_int (Atomic.get builds));
    ("index.maintained", float_of_int (Atomic.get maintained));
    ("index.probes", float_of_int (Atomic.get probes));
    ("index.cache_hits", float_of_int (Atomic.get cache_hits));
  ]

(* --- construction ------------------------------------------------------- *)

let key_values (def : Database.index_def) t =
  List.map (fun c -> Tuple.attr t c) def.idx_cols

let key_tuple def t = Tuple.of_list (key_values def t)

let single_col (def : Database.index_def) =
  match def.idx_cols with
  | [ c ] -> c
  | _ -> invalid_arg "Index: ordered index must have exactly one column"

let add_posting t n = function
  | None -> Some (Relation.Bag.add ~count:n t Relation.Bag.empty)
  | Some bag -> Some (Relation.Bag.add ~count:n t bag)

let remove_posting t n = function
  | None -> None
  | Some bag ->
      let bag = Relation.Bag.remove ~count:n t bag in
      if Relation.Bag.is_empty bag then None else Some bag

let build (def : Database.index_def) r =
  Atomic.incr builds;
  let bag = Relation.bag r in
  let repr =
    match def.idx_kind with
    | Database.Hash ->
        Hashed
          (Relation.Bag.fold
             (fun t n m -> KMap.update (key_tuple def t) (add_posting t n) m)
             bag KMap.empty)
    | Database.Ordered ->
        let col = single_col def in
        Ranged
          (Relation.Bag.fold
             (fun t n m ->
               VMap.update (Tuple.attr t col) (add_posting t n) m)
             bag VMap.empty)
  in
  { def; repr; card = lazy (card_of repr) }

(* Apply a write delta: remove first, then add, exactly mirroring the
   statement semantics R ← (R − removed) ⊎ added. *)
let apply idx ~added ~removed =
  Atomic.incr maintained;
  let def = idx.def in
  let repr =
    match idx.repr with
    | Hashed m ->
        let m =
          Relation.Bag.fold
            (fun t n m -> KMap.update (key_tuple def t) (remove_posting t n) m)
            removed m
        in
        Hashed
          (Relation.Bag.fold
             (fun t n m -> KMap.update (key_tuple def t) (add_posting t n) m)
             added m)
    | Ranged m ->
        let col = single_col def in
        let key t = Tuple.attr t col in
        let m =
          Relation.Bag.fold
            (fun t n m -> VMap.update (key t) (remove_posting t n) m)
            removed m
        in
        Ranged
          (Relation.Bag.fold
             (fun t n m -> VMap.update (key t) (add_posting t n) m)
             added m)
  in
  { def; repr; card = lazy (card_of repr) }

(* --- probing ------------------------------------------------------------ *)

let probe_point idx vals =
  Atomic.incr probes;
  match idx.repr with
  | Hashed m -> (
      match KMap.find_opt (Tuple.of_list vals) m with
      | Some bag -> bag
      | None -> Relation.Bag.empty)
  | Ranged m -> (
      match vals with
      | [ v ] -> (
          match VMap.find_opt v m with
          | Some bag -> bag
          | None -> Relation.Bag.empty)
      | _ -> invalid_arg "Index.probe_point: ordered index takes one value")

let probe_range idx lo hi =
  Atomic.incr probes;
  match idx.repr with
  | Hashed _ -> invalid_arg "Index.probe_range: hash index has no key order"
  | Ranged m ->
      let from_lo =
        match lo with
        | None -> VMap.to_seq m
        | Some { b_value; b_incl } ->
            (* [to_seq_from] starts at the least key >= b_value; an
               exclusive bound additionally skips the key itself. *)
            let s = VMap.to_seq_from b_value m in
            if b_incl then s
            else Seq.drop_while (fun (k, _) -> Value.compare k b_value = 0) s
      in
      let bounded =
        match hi with
        | None -> from_lo
        | Some { b_value; b_incl } ->
            Seq.take_while
              (fun (k, _) ->
                let c = Value.compare k b_value in
                if b_incl then c <= 0 else c < 0)
              from_lo
      in
      Seq.concat_map (fun (_, bag) -> Relation.Bag.to_counted_seq bag) bounded

let probe idx = function
  | Point vals -> Relation.Bag.to_counted_seq (probe_point idx vals)
  | Range (lo, hi) -> probe_range idx lo hi

let pp_access ppf = function
  | Point vals ->
      Format.fprintf ppf "= %s"
        (String.concat ", " (List.map Value.to_string vals))
  | Range (lo, hi) ->
      let side op_incl op_excl = function
        | { b_value; b_incl } ->
            Printf.sprintf "%s%s"
              (if b_incl then op_incl else op_excl)
              (Value.to_string b_value)
      in
      let parts =
        List.filter_map Fun.id
          [
            Option.map (side ">= " "> ") lo;
            Option.map (side "<= " "< ") hi;
          ]
      in
      Format.pp_print_string ppf
        (match parts with [] -> "all" | ps -> String.concat " and " ps)

let access_to_string a = Format.asprintf "%a" pp_access a

(* --- statistics --------------------------------------------------------- *)

let distinct_keys idx = fst (card idx)
let entry_count idx = snd (card idx)

(* --- cache and maintenance ---------------------------------------------- *)

(* Per-definition cache of built structures, keyed by physical identity
   of the source bag.  Two entries cover the common transactional
   pattern: the committed value plus one in-flight successor (or the
   before-image an abort will re-install). *)
let cache : (string, (Relation.Bag.t * t) list) Hashtbl.t = Hashtbl.create 16
let cache_cap = 2
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let cached_for name bag =
  locked (fun () ->
      match Hashtbl.find_opt cache name with
      | None -> None
      | Some entries ->
          List.find_opt (fun (src, _) -> src == bag) entries
          |> Option.map snd)

let store_entry name bag idx =
  locked (fun () ->
      let entries =
        Option.value ~default:[] (Hashtbl.find_opt cache name)
        |> List.filter (fun (src, _) -> src != bag)
      in
      let entries = (bag, idx) :: entries in
      let entries = List.filteri (fun i _ -> i < cache_cap) entries in
      Hashtbl.replace cache name entries)

let invalidate name = locked (fun () -> Hashtbl.remove cache name)

(* The structure for [def] over [r]: cached when the exact relation
   value was seen before, rebuilt otherwise. *)
let get (def : Database.index_def) r =
  let bag = Relation.bag r in
  match cached_for def.idx_name bag with
  | Some idx ->
      Atomic.incr cache_hits;
      idx
  | None ->
      let idx = build def r in
      store_entry def.idx_name bag idx;
      idx

(* Write hook: roll every cached structure over the before-image forward
   to the after-image by applying the statement's delta.  A miss is
   fine — the next probe rebuilds. *)
let on_write (w : Statement.write) =
  match Database.indexes_on w.w_name w.w_db with
  | [] -> ()
  | defs ->
      let before = Relation.bag w.w_before in
      let after = Relation.bag w.w_after in
      List.iter
        (fun (def : Database.index_def) ->
          match cached_for def.idx_name before with
          | None -> ()
          | Some idx ->
              store_entry def.idx_name after
                (apply idx ~added:w.w_added ~removed:w.w_removed))
        defs

let () = Statement.set_write_observer (Some on_write)
