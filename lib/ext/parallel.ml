open Mxra_relational
open Mxra_core

type fragments = Relation.t array

(* Fragment index of a tuple: per-attribute Value.hash values combined
   with the usual 31x mix.  For a single key the fold collapses to
   [Value.hash v], so the fast path below computes the same slot. *)
let slot_of_keys keys parts t =
  let h =
    List.fold_left (fun h k -> (h * 31) + Value.hash (Tuple.attr t k)) 0 keys
  in
  h land max_int mod parts

let partition ~parts ~keys r =
  if parts <= 0 then invalid_arg "Parallel.partition: parts <= 0";
  let schema = Relation.schema r in
  if keys = [] then invalid_arg "Parallel.partition: empty key list";
  List.iter
    (fun key ->
      if key < 1 || key > Schema.arity schema then
        invalid_arg "Parallel.partition: key out of range")
    keys;
  let slot =
    match keys with
    | [ key ] -> fun t -> Value.hash (Tuple.attr t key) land max_int mod parts
    | keys -> slot_of_keys keys parts
  in
  let bags = Array.make parts Relation.Bag.empty in
  Relation.Bag.iter
    (fun t n ->
      let i = slot t in
      bags.(i) <- Relation.Bag.add ~count:n t bags.(i))
    (Relation.bag r);
  Array.map (Relation.of_bag_unchecked schema) bags

let partition_round_robin ~parts r =
  if parts <= 0 then invalid_arg "Parallel.partition_round_robin: parts <= 0";
  let schema = Relation.schema r in
  let bags = Array.make parts Relation.Bag.empty in
  let slot = ref 0 in
  Relation.Bag.iter
    (fun t n ->
      bags.(!slot) <- Relation.Bag.add ~count:n t bags.(!slot);
      slot := (!slot + 1) mod parts)
    (Relation.bag r);
  Array.map (Relation.of_bag_unchecked schema) bags

(* Balanced pairwise union over the array: fragments of similar size
   merge with each other, so no union input is ever the whole
   accumulated result as in a left-deep fold. *)
let merge fragments =
  let n = Array.length fragments in
  if n = 0 then invalid_arg "Parallel.merge: no fragments";
  let rec range lo hi =
    if hi - lo = 1 then fragments.(lo)
    else
      let mid = lo + ((hi - lo) / 2) in
      Eval.union (range lo mid) (range mid hi)
  in
  range 0 n

type 'a report = {
  result : 'a;
  fragment_work : int array;
  fragment_ms : float array;
  speedup : float;
}

let speedup_of work =
  let total = Array.fold_left ( + ) 0 work in
  let busiest = Array.fold_left max 0 work in
  if busiest = 0 then 1.0 else float_of_int total /. float_of_int busiest

(* Run one thunk per fragment on the pool (each fragment is one morsel:
   ~chunk:1) and measure each fragment's wall time inside the lane that
   executes it. *)
let timed_map pool tasks =
  let out =
    Pool.map_array ~chunk:1 pool
      (fun task ->
        let t0 = Unix.gettimeofday () in
        let r = task () in
        (r, (Unix.gettimeofday () -. t0) *. 1000.0))
      tasks
  in
  (Array.map fst out, Array.map snd out)

let report_of result fragment_work fragment_ms =
  { result; fragment_work; fragment_ms; speedup = speedup_of fragment_work }

let pool_of = function Some pool -> pool | None -> Pool.global ()

let par_select ?pool ~parts p r =
  let pool = pool_of pool in
  let fragments = partition_round_robin ~parts r in
  let work = Array.map Relation.cardinal fragments in
  let selected, ms =
    timed_map pool (Array.map (fun f () -> Eval.select p f) fragments)
  in
  report_of (merge selected) work ms

let par_project ?pool ~parts exprs r =
  let pool = pool_of pool in
  let fragments = partition_round_robin ~parts r in
  let work = Array.map Relation.cardinal fragments in
  let projected, ms =
    timed_map pool (Array.map (fun f () -> Eval.project exprs f) fragments)
  in
  report_of (merge projected) work ms

(* Per-fragment equi-join, hashed on the projected key tuple (the
   fragments are in-memory, so this is the realistic local algorithm).
   The build side accumulates with Hashtbl.add — one hash per tuple —
   and the probe reads all bindings of a key with find_all. *)
module KH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let hash_equi_join ~left_keys ~right_keys left right =
  let out_schema = Schema.concat (Relation.schema left) (Relation.schema right) in
  let table = KH.create 64 in
  Relation.Bag.iter
    (fun t n -> KH.add table (Tuple.project right_keys t) (t, n))
    (Relation.bag right);
  let bag =
    Relation.Bag.fold
      (fun t1 n1 acc ->
        List.fold_left
          (fun acc (t2, n2) ->
            Relation.Bag.add ~count:(n1 * n2) (Tuple.concat t1 t2) acc)
          acc
          (KH.find_all table (Tuple.project left_keys t1)))
      (Relation.bag left) Relation.Bag.empty
  in
  Relation.of_bag_unchecked out_schema bag

let par_join ?pool ~parts ~left_keys ~right_keys left right =
  let pool = pool_of pool in
  let lefts = partition ~parts ~keys:left_keys left in
  let rights = partition ~parts ~keys:right_keys right in
  (* A tuple's fragment depends only on its key values' hashes, so
     matching tuples are in same-numbered fragments. *)
  let joined, ms =
    timed_map pool
      (Array.init parts (fun i () ->
           hash_equi_join ~left_keys ~right_keys lefts.(i) rights.(i)))
  in
  let work =
    Array.init parts (fun i ->
        Relation.cardinal lefts.(i) + Relation.cardinal rights.(i))
  in
  report_of (merge joined) work ms

(* --- global aggregates: partial aggregate, then combine ---------------- *)

(* One combinable accumulator per aggregate: CNT and SUM add, MIN/MAX
   keep the extremum, AVG carries a (sum, count) pair divided once at
   the end.  VAR/STDDEV buffer their value columns and delegate the
   final computation to Aggregate.compute_for, whose canonical column
   ordering keeps the result bit-identical to the sequential operator. *)
type partial =
  | P_cnt of int
  | P_sum_int of int
  | P_sum_float of float
  | P_min of Value.t option
  | P_max of Value.t option
  | P_avg of float * int
  | P_column of (Value.t * int) list

let partial_init kind domain =
  match (kind, domain) with
  | Aggregate.Cnt, _ -> P_cnt 0
  | Aggregate.Sum, Domain.DFloat -> P_sum_float 0.0
  | Aggregate.Sum, (Domain.DInt | Domain.DStr | Domain.DBool) -> P_sum_int 0
  | Aggregate.Avg, _ -> P_avg (0.0, 0)
  | Aggregate.Min, _ -> P_min None
  | Aggregate.Max, _ -> P_max None
  | (Aggregate.Var | Aggregate.Stddev), _ -> P_column []

let numeric_error kind v =
  raise
    (Scalar.Eval_error
       (Format.asprintf "%s applied to non-numeric value %a" (Aggregate.name kind)
          Value.pp v))

let as_float kind v =
  if Value.is_numeric v then Value.as_float v else numeric_error kind v

let partial_update state v n =
  match state with
  | P_cnt c -> P_cnt (c + n)
  | P_sum_int s -> (
      match v with
      | Value.Int x -> P_sum_int (s + (x * n))
      | Value.Float _ | Value.Str _ | Value.Bool _ ->
          numeric_error Aggregate.Sum v)
  | P_sum_float s -> P_sum_float (s +. (as_float Aggregate.Sum v *. float_of_int n))
  | P_min best -> (
      match best with
      | None -> P_min (Some v)
      | Some w ->
          P_min (Some (if Value.compare_same_domain v w < 0 then v else w)))
  | P_max best -> (
      match best with
      | None -> P_max (Some v)
      | Some w ->
          P_max (Some (if Value.compare_same_domain v w > 0 then v else w)))
  | P_avg (s, c) -> P_avg (s +. (as_float Aggregate.Avg v *. float_of_int n), c + n)
  | P_column column -> P_column ((v, n) :: column)

let option_extremum keep a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some v, Some w -> Some (if keep (Value.compare_same_domain v w) then v else w)

let partial_combine a b =
  match (a, b) with
  | P_cnt x, P_cnt y -> P_cnt (x + y)
  | P_sum_int x, P_sum_int y -> P_sum_int (x + y)
  | P_sum_float x, P_sum_float y -> P_sum_float (x +. y)
  | P_min x, P_min y -> P_min (option_extremum (fun c -> c < 0) x y)
  | P_max x, P_max y -> P_max (option_extremum (fun c -> c > 0) x y)
  | P_avg (s1, c1), P_avg (s2, c2) -> P_avg (s1 +. s2, c1 + c2)
  | P_column c1, P_column c2 -> P_column (List.rev_append c1 c2)
  | ( ( P_cnt _ | P_sum_int _ | P_sum_float _ | P_min _ | P_max _ | P_avg _
      | P_column _ ),
      _ ) ->
      invalid_arg "Parallel: mismatched partial aggregates"

let partial_finalize kind domain = function
  | P_cnt c -> Value.Int c
  | P_sum_int s -> Value.Int s
  | P_sum_float s -> Value.Float s
  | P_min None -> raise (Aggregate.Undefined Aggregate.Min)
  | P_min (Some v) -> v
  | P_max None -> raise (Aggregate.Undefined Aggregate.Max)
  | P_max (Some v) -> v
  | P_avg (_, 0) -> raise (Aggregate.Undefined Aggregate.Avg)
  | P_avg (s, c) -> Value.Float (s /. float_of_int c)
  | P_column column -> Aggregate.compute_for domain kind column

(* Partial states of every aggregate over one fragment. *)
let fragment_partials schema aggs fragment =
  let states =
    Array.of_list
      (List.map (fun (kind, p) -> partial_init kind (Schema.domain schema p)) aggs)
  in
  let positions = Array.of_list (List.map snd aggs) in
  Relation.Bag.iter
    (fun t n ->
      Array.iteri
        (fun i state ->
          states.(i) <- partial_update state (Tuple.attr t positions.(i)) n)
        states)
    (Relation.bag fragment);
  states

let par_global_aggregate pool ~parts ~aggs r =
  let schema = Relation.schema r in
  let out_schema =
    Typecheck.infer
      (fun _ -> None)
      (Expr.GroupBy ([], aggs, Expr.Const (Relation.empty schema)))
  in
  let fragments = partition_round_robin ~parts r in
  let work = Array.map Relation.cardinal fragments in
  let partials, ms =
    timed_map pool
      (Array.map (fun f () -> fragment_partials schema aggs f) fragments)
  in
  let combined =
    match Array.to_list partials with
    | [] -> invalid_arg "Parallel.par_group_by: parts <= 0"
    | first :: rest ->
        List.fold_left (Array.map2 partial_combine) first rest
  in
  let values =
    List.mapi
      (fun i (kind, p) ->
        partial_finalize kind (Schema.domain schema p) combined.(i))
      aggs
  in
  let result =
    Relation.of_bag_unchecked out_schema
      (Relation.Bag.singleton (Tuple.of_list values))
  in
  report_of result work ms

let par_group_by ?pool ~parts ~attrs ~aggs r =
  let pool = pool_of pool in
  match attrs with
  | [] ->
      (* Definition 3.4's global aggregate: one output tuple, computed
         as per-fragment partials combined associatively. *)
      par_global_aggregate pool ~parts ~aggs r
  | _ :: _ ->
      let fragments = partition ~parts ~keys:attrs r in
      let work = Array.map Relation.cardinal fragments in
      (* Tuples of a group agree on every grouping attribute, so groups
         are fragment-local and union is the correct merge. *)
      let grouped, ms =
        timed_map pool
          (Array.map (fun f () -> Eval.group_by attrs aggs f) fragments)
      in
      report_of (merge grouped) work ms

(* --- measured-profitability feedback ------------------------------------ *)

module Feedback = struct
  (* Every Exchange execution reports its input size and the time the
     pool actually saved: [gain_ms = busy - wall], where busy is the
     summed fragment work and wall covers partition, dispatch and the
     fragments themselves.  A positive gain means the Exchange beat
     running its fragments inline — exactly the planner's insertion
     question — so the observations collapse into a single adaptive
     bar: the smallest input size at which an Exchange has been seen to
     pay on this host.  On a 1-core host the gain is always negative
     (wall = busy + partition + dispatch), so the bar only ever rises.

     Stored in an [Atomic] because fragments of concurrently running
     queries may report from different domains; the update is a benign
     last-writer-wins race — this is a heuristic, not an invariant. *)

  let unset = 0
  let max_bar = 1 lsl 30
  let bar = Atomic.make unset
  let seen = Atomic.make 0

  let note ~rows ~parts:_ ~gain_ms =
    if rows > 0 then begin
      Atomic.incr seen;
      let current = Atomic.get bar in
      if gain_ms <= 0.0 then
        (* Lost money at this size: only larger inputs can be worth it. *)
        Atomic.set bar (min max_bar (max current (2 * rows)))
      else
        (* Paid at this size: anything at least this big is fair game. *)
        Atomic.set bar (if current = unset then rows else min current rows)
    end

  let min_profitable_rows () =
    match Atomic.get bar with 0 -> None | n -> Some n

  let observations () = Atomic.get seen

  let reset () =
    Atomic.set bar unset;
    Atomic.set seen 0
end
