(** Parallel operators on a real domain pool.

    The paper's conclusions: "the language has been extended with
    special operators to support parallel data processing" in PRISMA/DB
    (a 100-node main-memory multiprocessor).  Earlier revisions of this
    module {e simulated} that machine; since the runtime is OCaml 5,
    fragments now run on the worker domains of a {!Pool}, and the
    per-fragment wall times in the {!report} are measured, not modelled.
    The algebraic content — the partition/merge laws the parallel
    operators rely on (Theorem 3.2 and the key-alignment arguments,
    spelled out in docs/PARALLELISM.md) — is unchanged and tested:

    - [merge (partition R) = R];
    - [σ_φ] and [π_α] commute with partitioning on any key (they
      distribute over [⊎], Theorem 3.2);
    - an equi-join distributes over co-partitioning on the join keys;
    - [Γ] distributes over partitioning on the grouping attributes, and
      a {e global} aggregate ([α = ()]) splits into per-fragment partial
      aggregates combined associatively (CNT/SUM by [+], MIN/MAX by
      min/max, AVG as (sum, count) pairs).

    Relations are immutable balanced maps, so fragments are shared with
    worker domains without copying.  The [speedup] field of a report is
    the work-balance bound [total work / max fragment work] — the
    deterministic shared-nothing model the E7 experiment tracks — while
    [fragment_ms] holds the measured wall time of each fragment for the
    real-speedup curves of E15. *)

open Mxra_relational
open Mxra_core

type fragments = Relation.t array
(** Disjoint (as bags: summing) pieces of one relation, same schema. *)

val partition : parts:int -> keys:int list -> Relation.t -> fragments
(** Hash-partition on the listed attributes (1-based): a tuple's
    fragment is chosen by combining the {!Value.hash} of each key
    attribute, so all copies of a tuple land in one fragment, and two
    relations partitioned on equal-length key lists are co-partitioned
    wherever their key values agree.  A single-attribute list is the
    fast path (no fold, no intermediate projection).
    @raise Invalid_argument if [parts <= 0], [keys] is empty, or a key
    is out of range. *)

val partition_round_robin : parts:int -> Relation.t -> fragments
(** Distinct-tuple round robin — the load-balanced partitioning that is
    {e not} key-aligned (usable for σ, π and global aggregates but not
    for joins or grouped Γ). *)

val merge : fragments -> Relation.t
(** Bag union of the fragments, folded as a balanced k-way tree
    directly over the array (pairwise unions of similar size rather
    than a left-deep chain).  @raise Invalid_argument on [[||]]. *)

type 'a report = {
  result : 'a;
  fragment_work : int array;  (** Input tuples processed per fragment. *)
  fragment_ms : float array;
      (** Measured wall time of each fragment's operator on the pool. *)
  speedup : float;  (** total work / max fragment work; ≥ 1. *)
}

val par_select :
  ?pool:Pool.t -> parts:int -> Pred.t -> Relation.t -> Relation.t report
(** Partition (round robin), select per fragment on the pool, merge.
    [pool] defaults to {!Pool.global}. *)

val par_project :
  ?pool:Pool.t ->
  parts:int ->
  Scalar.t list ->
  Relation.t ->
  Relation.t report

val hash_equi_join :
  left_keys:int list ->
  right_keys:int list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** The fragment-local equi-join: build a hash table over the right
    operand keyed on its projected key tuple — one [Hashtbl.add] per
    tuple, no [find_opt]+[replace] double hashing — and probe with the
    left.  Exposed for tests; {!par_join} runs it per fragment pair. *)

val par_join :
  ?pool:Pool.t ->
  parts:int ->
  left_keys:int list ->
  right_keys:int list ->
  Relation.t ->
  Relation.t ->
  Relation.t report
(** Co-partition both operands on their join keys and hash-join each
    fragment pair on the pool — the parallel equi-join of
    shared-nothing systems. *)

val par_group_by :
  ?pool:Pool.t ->
  parts:int ->
  attrs:int list ->
  aggs:(Aggregate.kind * int) list ->
  Relation.t ->
  Relation.t report
(** With grouping attributes, partition on all of them ([~keys:attrs]);
    groups never span fragments, so fragment results merge by union.

    With [attrs = []] — a global aggregate — the input is round-robin
    partitioned and each fragment computes a {e partial} aggregate,
    combined associatively: CNT and SUM by addition, MIN/MAX by
    min/max, AVG as (sum, count) pairs divided once at the end, and
    VAR/STDDEV by concatenating the buffered value columns and
    delegating to {!Aggregate.compute_for} (whose canonical ordering
    makes the result bit-identical to the sequential operator).  For
    integer columns every combined result equals the sequential one
    exactly; float SUM/AVG partials are running sums, associative only
    up to the last ulp of rounding. *)

(** Measured Exchange profitability, fed back into the planner.

    The executor reports every Exchange it runs: input rows and the
    measured gain [busy − wall] (summed fragment time minus the
    partition→pool→merge wall time around them).  The observations
    collapse into one number — the smallest input size at which an
    Exchange has actually paid on this host — which
    {!Mxra_engine.Planner.parallelize} folds into its insertion
    threshold on subsequent plans.  Process-global and monotone in the
    obvious directions: losses raise the bar, wins lower it. *)
module Feedback : sig
  val note : rows:int -> parts:int -> gain_ms:float -> unit
  (** Record one Exchange execution over [rows] input tuples.
      [gain_ms <= 0] marks it unprofitable at that size. *)

  val min_profitable_rows : unit -> int option
  (** Current bar: [None] until the first observation. *)

  val observations : unit -> int
  (** How many Exchange executions have been recorded. *)

  val reset : unit -> unit
  (** Forget all observations (tests and benchmarks). *)
end
