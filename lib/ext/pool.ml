(* No [open]s: [Domain] here must be [Stdlib.Domain], not the attribute
   domains of [Mxra_relational]. *)

type t = {
  lanes : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable domains : unit Domain.t array;
  mutable closed : bool;
  (* Telemetry counters, read lock-free by the resource sampler. *)
  busy : int Atomic.t;
  n_maps : int Atomic.t;
}

(* Workers block on [work_ready] until a job is queued or the pool
   closes.  Jobs left queued at close are dropped: they are always
   helper loops of an already-completed [map_array] (the caller lane
   finishes the map before returning), so dropping them is safe. *)
let worker_loop pool =
  let rec next () =
    Mutex.lock pool.lock;
    let rec claim () =
      if pool.closed then None
      else
        match Queue.take_opt pool.queue with
        | Some job -> Some job
        | None ->
            Condition.wait pool.work_ready pool.lock;
            claim ()
    in
    let job = claim () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create n =
  let lanes = max 1 n in
  let pool =
    {
      lanes;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      domains = [||];
      closed = false;
      busy = Atomic.make 0;
      n_maps = Atomic.make 0;
    }
  in
  pool.domains <-
    Array.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.lanes

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let mapi_array ?chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (pool.lanes * 4))
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let remaining = Atomic.make n in
    let failure = Atomic.make None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    (* Every lane — spawned or the caller — runs this loop: claim the
       next morsel off the shared cursor, process it, repeat.  After a
       failure the remaining morsels are claimed but skipped, so
       [remaining] still reaches zero and nobody deadlocks. *)
    Atomic.incr pool.n_maps;
    let run_morsels () =
      Atomic.incr pool.busy;
      Fun.protect
        ~finally:(fun () -> Atomic.decr pool.busy)
      @@ fun () ->
      let rec loop () =
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          (if Atomic.get failure = None then
             try
               for i = lo to hi - 1 do
                 results.(i) <- Some (f i arr.(i))
               done
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          let before = Atomic.fetch_and_add remaining (-(hi - lo)) in
          if before - (hi - lo) = 0 then begin
            Mutex.lock done_lock;
            Condition.broadcast all_done;
            Mutex.unlock done_lock
          end;
          loop ()
        end
      in
      loop ()
    in
    if Array.length pool.domains > 0 then begin
      Mutex.lock pool.lock;
      for _ = 1 to Array.length pool.domains do
        Queue.add run_morsels pool.queue
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock
    end;
    run_morsels ();
    (* The caller lane has run out of morsels; what remains is the
       drain — waiting for worker domains still inside theirs.  That
       interval is the [pool.queue] wait.  Only a real pool can have
       one (sequential fallback finishes everything on the caller), so
       single-lane runs stay event-free. *)
    let drain_from =
      if Array.length pool.domains > 0 && Atomic.get remaining > 0 then
        Mxra_obs.Wait.now_us ()
      else Float.nan
    in
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    if not (Float.is_nan drain_from) then
      Mxra_obs.Ash.event Mxra_obs.Wait.Pool_queue ~detail:"map.drain"
        ~dur_us:(Mxra_obs.Wait.now_us () -. drain_from);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all completed *))
          results
  end

let map_array ?chunk pool f arr = mapi_array ?chunk pool (fun _ x -> f x) arr

type stats = { s_lanes : int; s_queued : int; s_busy : int; s_maps : int }

(* Racy single-field reads by design: the sampler wants a cheap glance,
   not a consistent snapshot, and none of these reads can tear.  The
   queue length is a plain mutable int inside [Queue.t]. *)
let stats pool =
  {
    s_lanes = pool.lanes;
    s_queued = Queue.length pool.queue;
    s_busy = Atomic.get pool.busy;
    s_maps = Atomic.get pool.n_maps;
  }

(* --- the process-wide pool --------------------------------------------- *)

let configured = ref 1
let installed = ref None

let set_default_size n = configured := max 1 n
let default_size () = !configured

let global () =
  match !installed with
  | Some pool when pool.lanes = !configured -> pool
  | existing ->
      Option.iter shutdown existing;
      let pool = create !configured in
      installed := Some pool;
      pool

(* Probe for the resource sampler: observes the installed pool without
   ever creating one — a telemetry read must not spawn domains. *)
let telemetry () =
  match !installed with
  | None ->
      [
        ("pool.lanes", float_of_int !configured);
        ("pool.queued", 0.0);
        ("pool.busy", 0.0);
        ("pool.maps", 0.0);
      ]
  | Some pool ->
      let s = stats pool in
      [
        ("pool.lanes", float_of_int s.s_lanes);
        ("pool.queued", float_of_int s.s_queued);
        ("pool.busy", float_of_int s.s_busy);
        ("pool.maps", float_of_int s.s_maps);
      ]

let () =
  at_exit (fun () ->
      Option.iter shutdown !installed;
      installed := None)
