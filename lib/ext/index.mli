(** Multiplicity-aware secondary indexes.

    An index maps the values of the indexed attributes to the {e posting
    bag} of full tuples carrying them — counted tuples, per the multiset
    model (Definition 2.1), so an index-driven access path yields exactly
    the bag a sequential scan would.

    Structures are derived data over immutable relation values.  The
    cache keys each built structure by the physical identity of the
    source bag, so a stale structure can never be served for a different
    relation value: abort/undo re-installs the old value (whose entry is
    still valid) and unseen states simply rebuild.  Incremental
    maintenance through {!Mxra_core.Statement.set_write_observer} — the
    observer is installed as a side effect of linking this module — is a
    performance device only. *)

open Mxra_relational

type t
(** A built index structure for one {!Database.index_def}. *)

(** {1 Access paths} *)

type bound = { b_value : Value.t; b_incl : bool }

(** What the planner extracted from a predicate: an exact key, or a
    one-column range with optional bounds. *)
type access =
  | Point of Value.t list  (** One value per indexed column, in order. *)
  | Range of bound option * bound option  (** [lo], [hi]; ordered only. *)

val pp_access : Format.formatter -> access -> unit
val access_to_string : access -> string

(** {1 Construction and maintenance} *)

val build : Database.index_def -> Relation.t -> t
(** Build from scratch: O(n log n). *)

val apply : t -> added:Relation.Bag.t -> removed:Relation.Bag.t -> t
(** Roll a structure forward over a write delta (removals first, then
    additions — the statement semantics [R ← (R − r) ⊎ a]). *)

val get : Database.index_def -> Relation.t -> t
(** The structure for this definition over this exact relation value:
    served from the cache when available, built (and cached) otherwise. *)

val invalidate : string -> unit
(** Drop all cached structures for an index name (e.g. on [drop index]). *)

(** {1 Probing} *)

val probe_point : t -> Value.t list -> Relation.Bag.t
(** Posting bag for an exact key; empty when absent.  O(log keys). *)

val probe_range : t -> bound option -> bound option -> (Tuple.t * int) Seq.t
(** Counted tuples with key in the bound interval, in key order.
    O(log n + matches).
    @raise Invalid_argument on a hash index. *)

val probe : t -> access -> (Tuple.t * int) Seq.t
(** {!probe_point} / {!probe_range}, uniformly as a counted stream. *)

(** {1 Statistics} *)

val distinct_keys : t -> int
(** Number of distinct keys. *)

val entry_count : t -> int
(** Total posted tuples, counted with multiplicity. *)

(** {1 Telemetry} *)

val telemetry : unit -> (string * float) list
(** Build / maintenance / probe counters, in the resource-sampler probe
    shape (cf. {!Pool.telemetry}). *)
