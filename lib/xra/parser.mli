(** Parser for the XRA concrete syntax.

    XRA was the concrete form of the paper's algebra in PRISMA/DB; the
    grammar here mirrors the paper's abstract syntax one-to-one:

    {v
    expr  ::= ident
            | rel[(name:type, ...)]{ (v, ...)(:n)? , ... }      -- literal
            | union(e, e) | diff(e, e) | product(e, e)
            | intersect(e, e) | unique(e)
            | select[pred](e) | project[scalar, ...](e)
            | join[pred](e, e)
            | groupby[%i, ... ; AGG(%j), ...](e)
    scalar ::= %i | literal | scalar (+ - * / % ++) scalar
            | - scalar | (scalar) | if pred then scalar else scalar
    pred  ::= true | false | scalar (= <> < <= > >=) scalar
            | pred and pred | pred or pred | not pred | (pred)
    stmt  ::= insert(ident, e) | delete(ident, e)
            | update(ident, e, [scalar, ...])
            | ident := e | ? e
    cmd   ::= stmt | begin stmt ; ... end | create ident (name:type, ...)
            | create index ident on ident (%i, ...) (using hash|ordered)?
            | drop index ident
    script::= cmd ; ... ;?
    v
    }

    Comments are [--] to end of line.  Keywords are lower-case;
    aggregate names are case-insensitive.  The printer ({!Printer})
    emits exactly this grammar, and parse∘print is the identity on
    expressions — property-tested. *)

open Mxra_relational
open Mxra_core

exception Parse_error of string * int
(** Message and byte offset in the source. *)

type command =
  | Cmd_statement of Statement.t
  | Cmd_transaction of Program.t
      (** A [begin ... end] bracket — run through {!Transaction}. *)
  | Cmd_create of string * Schema.t
      (** Schema definition; not part of the paper's language (it defines
          statements over an existing schema) but required to build one
          from a script. *)
  | Cmd_create_index of Database.index_def
      (** [create index i on r (%1, %2) using hash] — the kind defaults
          to [hash] when the [using] clause is omitted.  [create index
          (a:int)] still creates a {e relation} named "index": the token
          after the name disambiguates. *)
  | Cmd_drop_index of string

val expr_of_string : string -> Expr.t
val statement_of_string : string -> Statement.t
val program_of_string : string -> Program.t
val command_of_string : string -> command
val script_of_string : string -> command list
(** All raise {!Parse_error} (or {!Lexer.Lex_error}) on bad input. *)
