exception Lex_error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let number i0 _ =
    let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
    let j = digits i0 in
    let j, is_float =
      if j + 1 < n && src.[j] = '.' && is_digit src.[j + 1] then
        (digits (j + 2), true)
      else (j, false)
    in
    let j, is_float =
      if j < n && (src.[j] = 'e' || src.[j] = 'E') then
        let k = if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2 else j + 1 in
        if k < n && is_digit src.[k] then (digits (k + 1), true)
        else (j, is_float)
      else (j, is_float)
    in
    let text = String.sub src i0 (j - i0) in
    if is_float then (Token.FLOAT (float_of_string text), j)
    else (Token.INT (int_of_string text), j)
  in
  let string_lit i0 =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then raise (Lex_error ("unterminated string", i0))
      else if src.[i] = '\'' then
        if i + 1 < n && src.[i + 1] = '\'' then (
          Buffer.add_char buf '\'';
          go (i + 2))
        else (Token.STRING (Buffer.contents buf), i + 1)
      else (
        Buffer.add_char buf src.[i];
        go (i + 1))
    in
    go (i0 + 1)
  in
  let ident i0 =
    (* Identifiers may be dotted (sys.statements): a '.' continues the
       identifier only when followed by an identifier-start character,
       so "1." stays a number and a trailing dot stays an error. *)
    let rec go i =
      if i < n && is_ident_char src.[i] then go (i + 1)
      else if i + 1 < n && src.[i] = '.' && is_ident_start src.[i + 1] then go (i + 2)
      else i
    in
    let j = go i0 in
    (Token.IDENT (String.sub src i0 (j - i0)), j)
  in
  let rec loop i =
    if i >= n then emit Token.EOF i
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' -> loop (skip_line (i + 2))
      | '(' -> emit Token.LPAREN i; loop (i + 1)
      | ')' -> emit Token.RPAREN i; loop (i + 1)
      | '[' -> emit Token.LBRACKET i; loop (i + 1)
      | ']' -> emit Token.RBRACKET i; loop (i + 1)
      | '{' -> emit Token.LBRACE i; loop (i + 1)
      | '}' -> emit Token.RBRACE i; loop (i + 1)
      | ',' -> emit Token.COMMA i; loop (i + 1)
      | ';' -> emit Token.SEMI i; loop (i + 1)
      | '?' -> emit Token.QUESTION i; loop (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> emit Token.ASSIGN i; loop (i + 2)
      | ':' -> emit Token.COLON i; loop (i + 1)
      | '=' -> emit Token.EQ i; loop (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '>' -> emit Token.NE i; loop (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit Token.LE i; loop (i + 2)
      | '<' -> emit Token.LT i; loop (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit Token.GE i; loop (i + 2)
      | '>' -> emit Token.GT i; loop (i + 1)
      | '+' when i + 1 < n && src.[i + 1] = '+' -> emit Token.CONCAT i; loop (i + 2)
      | '+' -> emit Token.PLUS i; loop (i + 1)
      | '-' -> emit Token.MINUS i; loop (i + 1)
      | '*' -> emit Token.STAR i; loop (i + 1)
      | '/' -> emit Token.SLASH i; loop (i + 1)
      | '%' when i + 1 < n && is_digit src.[i + 1] ->
          let tok, j = number (i + 1) (i + 1) in
          (match tok with
          | Token.INT k -> emit (Token.ATTR k) i
          | Token.FLOAT _ ->
              raise (Lex_error ("attribute index must be an integer", i))
          | _ -> assert false);
          loop j
      | '%' -> emit Token.PERCENT i; loop (i + 1)
      | '\'' ->
          let tok, j = string_lit i in
          emit tok i;
          loop j
      | c when is_digit c ->
          let tok, j = number i i in
          emit tok i;
          loop j
      | c when is_ident_start c ->
          let tok, j = ident i in
          emit tok i;
          loop j
      | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, i))
  in
  loop 0;
  Array.of_list (List.rev !tokens)
