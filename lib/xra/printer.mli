(** Pretty-printer for the XRA concrete syntax.

    Emits exactly the grammar of {!Parser}; [Parser.expr_of_string
    (Printer.expr_to_string e)] equals [e] for every expression,
    including literal ([Const]) relations — property-tested. *)

open Mxra_relational
open Mxra_core

val pp_expr : Format.formatter -> Expr.t -> unit
val expr_to_string : Expr.t -> string

val pp_statement : Format.formatter -> Statement.t -> unit
val statement_to_string : Statement.t -> string

val pp_program : Format.formatter -> Program.t -> unit
val program_to_string : Program.t -> string
(** Statements separated by [;] inside a [begin ... end] bracket. *)

val pp_relation_literal : Format.formatter -> Relation.t -> unit
(** [rel[(a:int)]{(1):2, (3)}] — the literal form of a relation. *)

val pp_index_def : Format.formatter -> Database.index_def -> unit
(** [create index i on r (%1, %2) using hash] — the DDL command that
    recreates the definition; what snapshots persist. *)
