open Mxra_relational
open Mxra_core

let pp_schema_literal ppf schema =
  let pp_attr ppf (a : Schema.attribute) =
    Format.fprintf ppf "%s:%a" a.Schema.name Domain.pp a.Schema.domain
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_attr)
    (Schema.attributes schema)

let pp_relation_literal ppf r =
  let pp_entry ppf (t, n) =
    let pp_tuple ppf t =
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Value.pp)
        (Tuple.to_list t)
    in
    if n = 1 then pp_tuple ppf t else Format.fprintf ppf "%a:%d" pp_tuple t n
  in
  Format.fprintf ppf "rel[%a]{%a}" pp_schema_literal (Relation.schema r)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_entry)
    (Relation.to_counted_list r)

let rec pp_expr ppf = function
  | Expr.Rel name -> Format.pp_print_string ppf name
  | Expr.Const r -> pp_relation_literal ppf r
  | Expr.Union (e1, e2) -> Format.fprintf ppf "union(%a, %a)" pp_expr e1 pp_expr e2
  | Expr.Diff (e1, e2) -> Format.fprintf ppf "diff(%a, %a)" pp_expr e1 pp_expr e2
  | Expr.Product (e1, e2) ->
      Format.fprintf ppf "product(%a, %a)" pp_expr e1 pp_expr e2
  | Expr.Intersect (e1, e2) ->
      Format.fprintf ppf "intersect(%a, %a)" pp_expr e1 pp_expr e2
  | Expr.Select (p, e) ->
      Format.fprintf ppf "select[%a](%a)" Pred.pp p pp_expr e
  | Expr.Project (exprs, e) ->
      Format.fprintf ppf "project[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Scalar.pp)
        exprs pp_expr e
  | Expr.Join (p, e1, e2) ->
      Format.fprintf ppf "join[%a](%a, %a)" Pred.pp p pp_expr e1 pp_expr e2
  | Expr.Unique e -> Format.fprintf ppf "unique(%a)" pp_expr e
  | Expr.GroupBy (attrs, aggs, e) ->
      Format.fprintf ppf "groupby[%a; %a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf i -> Format.fprintf ppf "%%%d" i))
        attrs
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (kind, p) ->
             Format.fprintf ppf "%s(%%%d)" (Aggregate.name kind) p))
        aggs pp_expr e

let pp_statement ppf = function
  | Statement.Insert (name, e) ->
      Format.fprintf ppf "insert(%s, %a)" name pp_expr e
  | Statement.Delete (name, e) ->
      Format.fprintf ppf "delete(%s, %a)" name pp_expr e
  | Statement.Update (name, e, exprs) ->
      Format.fprintf ppf "update(%s, %a, [%a])" name pp_expr e
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Scalar.pp)
        exprs
  | Statement.Assign (name, e) -> Format.fprintf ppf "%s := %a" name pp_expr e
  | Statement.Query e -> Format.fprintf ppf "?%a" pp_expr e

let pp_program ppf program =
  Format.fprintf ppf "begin %a end"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_statement)
    program

(* Emits exactly the parser's create-index grammar — snapshot encoding
   depends on parse (print d) = d. *)
let pp_index_def ppf (d : Database.index_def) =
  Format.fprintf ppf "create index %s on %s (%a) using %s" d.idx_name d.idx_rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf i -> Format.fprintf ppf "%%%d" i))
    d.idx_cols
    (match d.idx_kind with
    | Database.Hash -> "hash"
    | Database.Ordered -> "ordered")

let expr_to_string e = Format.asprintf "%a" pp_expr e
let statement_to_string s = Format.asprintf "%a" pp_statement s
let program_to_string p = Format.asprintf "%a" pp_program p
