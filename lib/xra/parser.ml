open Mxra_relational
open Mxra_core

exception Parse_error of string * int

type command =
  | Cmd_statement of Statement.t
  | Cmd_transaction of Program.t
  | Cmd_create of string * Schema.t
  | Cmd_create_index of Database.index_def
  | Cmd_drop_index of string

(* Parser state: a token array and a mutable cursor.  Backtracking (for
   the pred/scalar parenthesis ambiguity) saves and restores the
   cursor. *)
type state = {
  tokens : (Token.t * int) array;
  mutable pos : int;
}

let peek st = fst st.tokens.(st.pos)
let offset st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (msg, offset st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> fail st "expected identifier, found %s" (Token.to_string t)

let keyword st name =
  match peek st with
  | Token.IDENT k when k = name -> advance st
  | t -> fail st "expected '%s', found %s" name (Token.to_string t)

let comma_separated st parse_item =
  let rec more acc =
    if peek st = Token.COMMA then (
      advance st;
      more (parse_item st :: acc))
    else List.rev acc
  in
  more [ parse_item st ]

(* --- values and schemas -------------------------------------------------- *)

let parse_value st =
  match peek st with
  | Token.INT n -> advance st; Value.Int n
  | Token.FLOAT f -> advance st; Value.Float f
  | Token.STRING s -> advance st; Value.Str s
  | Token.IDENT "true" -> advance st; Value.Bool true
  | Token.IDENT "false" -> advance st; Value.Bool false
  | Token.MINUS -> (
      advance st;
      match peek st with
      | Token.INT n -> advance st; Value.Int (-n)
      | Token.FLOAT f -> advance st; Value.Float (-.f)
      | t -> fail st "expected number after '-', found %s" (Token.to_string t))
  | t -> fail st "expected value, found %s" (Token.to_string t)

let parse_domain st =
  let name = expect_ident st in
  match Domain.of_string name with
  | Some d -> d
  | None -> fail st "unknown domain %s" name

let parse_schema st =
  expect st Token.LPAREN;
  let attribute st =
    let name = expect_ident st in
    expect st Token.COLON;
    (name, parse_domain st)
  in
  let attrs = comma_separated st attribute in
  expect st Token.RPAREN;
  Schema.of_list attrs

(* --- scalars and predicates (mutually recursive, backtracking) ----------- *)

let rec parse_scalar st = parse_additive st

and parse_additive st =
  let rec more acc =
    match peek st with
    | Token.PLUS -> advance st; more (Scalar.Binop (Term.Add, acc, parse_multiplicative st))
    | Token.MINUS -> advance st; more (Scalar.Binop (Term.Sub, acc, parse_multiplicative st))
    | Token.CONCAT -> advance st; more (Scalar.Binop (Term.Concat, acc, parse_multiplicative st))
    | _ -> acc
  in
  more (parse_multiplicative st)

and parse_multiplicative st =
  let rec more acc =
    match peek st with
    | Token.STAR -> advance st; more (Scalar.Binop (Term.Mul, acc, parse_unary st))
    | Token.SLASH -> advance st; more (Scalar.Binop (Term.Div, acc, parse_unary st))
    | Token.PERCENT -> advance st; more (Scalar.Binop (Term.Mod, acc, parse_unary st))
    | _ -> acc
  in
  more (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS ->
      advance st;
      (* Negative literals parse as literals, other operands as Neg. *)
      (match peek st with
      | Token.INT n -> advance st; Scalar.Lit (Value.Int (-n))
      | Token.FLOAT f -> advance st; Scalar.Lit (Value.Float (-.f))
      | _ -> Scalar.Neg (parse_unary st))
  | _ -> parse_scalar_primary st

and parse_scalar_primary st =
  match peek st with
  | Token.ATTR i -> advance st; Scalar.Attr i
  | Token.INT n -> advance st; Scalar.Lit (Value.Int n)
  | Token.FLOAT f -> advance st; Scalar.Lit (Value.Float f)
  | Token.STRING s -> advance st; Scalar.Lit (Value.Str s)
  | Token.IDENT "true" -> advance st; Scalar.Lit (Value.Bool true)
  | Token.IDENT "false" -> advance st; Scalar.Lit (Value.Bool false)
  | Token.IDENT "if" ->
      advance st;
      let c = parse_pred st in
      keyword st "then";
      let a = parse_scalar st in
      keyword st "else";
      let b = parse_scalar st in
      Scalar.If (c, a, b)
  | Token.LPAREN ->
      advance st;
      let e = parse_scalar st in
      expect st Token.RPAREN;
      e
  | t -> fail st "expected scalar expression, found %s" (Token.to_string t)

and parse_pred st = parse_or st

and parse_or st =
  let rec more acc =
    match peek st with
    | Token.IDENT "or" -> advance st; more (Pred.Or (acc, parse_and st))
    | _ -> acc
  in
  more (parse_and st)

and parse_and st =
  let rec more acc =
    match peek st with
    | Token.IDENT "and" -> advance st; more (Pred.And (acc, parse_pred_unary st))
    | _ -> acc
  in
  more (parse_pred_unary st)

and parse_pred_unary st =
  match peek st with
  | Token.IDENT "not" ->
      advance st;
      Pred.Not (parse_pred_unary st)
  | _ -> parse_pred_atom st

and parse_pred_atom st =
  (* Try a comparison first; on failure backtrack to the pure predicate
     forms.  This resolves '(' opening either a sub-predicate or a
     parenthesised scalar, and bare true/false being scalar literals in
     comparisons. *)
  let saved = st.pos in
  match parse_comparison st with
  | cmp -> cmp
  | exception Parse_error _ -> (
      st.pos <- saved;
      match peek st with
      | Token.IDENT "true" -> advance st; Pred.True
      | Token.IDENT "false" -> advance st; Pred.False
      | Token.LPAREN ->
          advance st;
          let p = parse_pred st in
          expect st Token.RPAREN;
          p
      | t -> fail st "expected condition, found %s" (Token.to_string t))

and parse_comparison st =
  let lhs = parse_scalar st in
  let op =
    match peek st with
    | Token.EQ -> Term.Eq
    | Token.NE -> Term.Ne
    | Token.LT -> Term.Lt
    | Token.LE -> Term.Le
    | Token.GT -> Term.Gt
    | Token.GE -> Term.Ge
    | t -> fail st "expected comparison operator, found %s" (Token.to_string t)
  in
  advance st;
  Pred.Cmp (op, lhs, parse_scalar st)

(* --- expressions ---------------------------------------------------------- *)

let parse_attr st =
  match peek st with
  | Token.ATTR i -> advance st; i
  | t -> fail st "expected attribute %%i, found %s" (Token.to_string t)

let parse_agg st =
  let name = expect_ident st in
  match Aggregate.of_name name with
  | Some kind ->
      expect st Token.LPAREN;
      let p = parse_attr st in
      expect st Token.RPAREN;
      (kind, p)
  | None -> fail st "unknown aggregate function %s" name

let rec parse_expr st =
  match peek st with
  | Token.IDENT "union" -> parse_binary st Expr.union
  | Token.IDENT "diff" -> parse_binary st Expr.diff
  | Token.IDENT "product" -> parse_binary st Expr.product
  | Token.IDENT "intersect" -> parse_binary st Expr.intersect
  | Token.IDENT "unique" ->
      advance st;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Expr.unique e
  | Token.IDENT "select" ->
      advance st;
      expect st Token.LBRACKET;
      let p = parse_pred st in
      expect st Token.RBRACKET;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Expr.select p e
  | Token.IDENT "project" ->
      advance st;
      expect st Token.LBRACKET;
      let exprs = comma_separated st parse_scalar in
      expect st Token.RBRACKET;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Expr.project exprs e
  | Token.IDENT "join" ->
      advance st;
      expect st Token.LBRACKET;
      let p = parse_pred st in
      expect st Token.RBRACKET;
      expect st Token.LPAREN;
      let e1 = parse_expr st in
      expect st Token.COMMA;
      let e2 = parse_expr st in
      expect st Token.RPAREN;
      Expr.join p e1 e2
  | Token.IDENT "groupby" ->
      advance st;
      expect st Token.LBRACKET;
      let attrs =
        if peek st = Token.SEMI then [] else comma_separated st parse_attr
      in
      expect st Token.SEMI;
      let aggs = comma_separated st parse_agg in
      expect st Token.RBRACKET;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Expr.group_by attrs aggs e
  | Token.IDENT "rel" -> parse_literal_relation st
  | Token.IDENT name -> advance st; Expr.rel name
  | t -> fail st "expected expression, found %s" (Token.to_string t)

and parse_binary st build =
  advance st;
  expect st Token.LPAREN;
  let e1 = parse_expr st in
  expect st Token.COMMA;
  let e2 = parse_expr st in
  expect st Token.RPAREN;
  build e1 e2

(* rel[(a:int, b:str)]{(1, 'x'):2, (2, 'y')} *)
and parse_literal_relation st =
  keyword st "rel";
  expect st Token.LBRACKET;
  let schema = parse_schema st in
  expect st Token.RBRACKET;
  expect st Token.LBRACE;
  let parse_entry st =
    expect st Token.LPAREN;
    let values =
      if peek st = Token.RPAREN then [] else comma_separated st parse_value
    in
    expect st Token.RPAREN;
    let count =
      if peek st = Token.COLON then (
        advance st;
        match peek st with
        | Token.INT n -> advance st; n
        | t -> fail st "expected multiplicity, found %s" (Token.to_string t))
      else 1
    in
    (Tuple.of_list values, count)
  in
  let entries =
    if peek st = Token.RBRACE then [] else comma_separated st parse_entry
  in
  expect st Token.RBRACE;
  match Relation.of_counted_list schema entries with
  | r -> Expr.const r
  | exception Relation.Schema_mismatch msg -> fail st "%s" msg

(* --- statements, programs, commands --------------------------------------- *)

let parse_statement st =
  match peek st with
  | Token.QUESTION ->
      advance st;
      Statement.Query (parse_expr st)
  | Token.IDENT "insert" ->
      advance st;
      expect st Token.LPAREN;
      let name = expect_ident st in
      expect st Token.COMMA;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Statement.Insert (name, e)
  | Token.IDENT "delete" ->
      advance st;
      expect st Token.LPAREN;
      let name = expect_ident st in
      expect st Token.COMMA;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Statement.Delete (name, e)
  | Token.IDENT "update" ->
      advance st;
      expect st Token.LPAREN;
      let name = expect_ident st in
      expect st Token.COMMA;
      let e = parse_expr st in
      expect st Token.COMMA;
      expect st Token.LBRACKET;
      let exprs = comma_separated st parse_scalar in
      expect st Token.RBRACKET;
      expect st Token.RPAREN;
      Statement.Update (name, e, exprs)
  | Token.IDENT name when fst st.tokens.(st.pos + 1) = Token.ASSIGN ->
      advance st;
      advance st;
      Statement.Assign (name, parse_expr st)
  | t -> fail st "expected statement, found %s" (Token.to_string t)

let parse_program st =
  let rec more acc =
    if peek st = Token.SEMI then (
      advance st;
      match peek st with
      | Token.IDENT "end" | Token.EOF -> List.rev acc
      | _ -> more (parse_statement st :: acc))
    else List.rev acc
  in
  more [ parse_statement st ]

let parse_index_kind st =
  if peek st = Token.IDENT "using" then (
    advance st;
    match expect_ident st with
    | "hash" -> Database.Hash
    | "ordered" -> Database.Ordered
    | k -> fail st "expected 'hash' or 'ordered', found %s" k)
  else Database.Hash

let parse_create_index st =
  let name = expect_ident st in
  keyword st "on";
  let rel = expect_ident st in
  expect st Token.LPAREN;
  let cols = comma_separated st parse_attr in
  expect st Token.RPAREN;
  let kind = parse_index_kind st in
  Cmd_create_index
    { Database.idx_name = name; idx_rel = rel; idx_cols = cols; idx_kind = kind }

let parse_command st =
  match peek st with
  | Token.IDENT "begin" ->
      advance st;
      let program = parse_program st in
      keyword st "end";
      Cmd_transaction program
  | Token.IDENT "create" ->
      advance st;
      let name = expect_ident st in
      (* [create index i on r (%1)] is index DDL; [create index (a:int)]
         still creates a relation named "index" — the next token
         disambiguates. *)
      if name = "index" && (match peek st with Token.IDENT _ -> true | _ -> false)
      then parse_create_index st
      else
        let schema = parse_schema st in
        Cmd_create (name, schema)
  | Token.IDENT "drop"
    when fst st.tokens.(st.pos + 1) = Token.IDENT "index"
         && (match fst st.tokens.(st.pos + 2) with
            | Token.IDENT _ -> true
            | _ -> false) ->
      advance st;
      advance st;
      Cmd_drop_index (expect_ident st)
  | _ -> Cmd_statement (parse_statement st)

let parse_script st =
  let rec more acc =
    match peek st with
    | Token.EOF -> List.rev acc
    | Token.SEMI -> advance st; more acc
    | _ -> more (parse_command st :: acc)
  in
  more []

(* --- entry points ----------------------------------------------------------- *)

(* Every entry point is one "parse" span covering lexing too — the
   frontend phase a traced workload reports against optimize / plan /
   execute. *)
let with_source parse src =
  Mxra_obs.Trace.with_span "parse"
    ~attrs:[ ("bytes", Mxra_obs.Trace.Int (String.length src)) ]
    (fun () ->
      let st = { tokens = Lexer.tokenize src; pos = 0 } in
      let result = parse st in
      expect st Token.EOF;
      result)

let expr_of_string src = with_source parse_expr src
let statement_of_string src = with_source parse_statement src
let program_of_string src = with_source parse_program src
let command_of_string src = with_source parse_command src

let script_of_string src =
  Mxra_obs.Trace.with_span "parse"
    ~attrs:[ ("bytes", Mxra_obs.Trace.Int (String.length src)) ]
    (fun () ->
      let st = { tokens = Lexer.tokenize src; pos = 0 } in
      parse_script st)
