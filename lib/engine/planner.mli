(** Logical-to-physical translation.

    The planner performs algorithm selection only — logical rewrites
    (pushdowns, join ordering) belong to {!Mxra_optimizer}.  Its one
    non-trivial decision is join implementation: a join condition is
    split into conjuncts, the equi-join conjuncts of shape [%i = %j]
    spanning the operand boundary become hash-join keys, the remainder
    becomes the residual; with no usable key the join falls back to
    nested loops.  A selection directly above a product is likewise
    fused into a join before translation (Theorem 3.1 read right to
    left), so even unoptimized [σ(E1 × E2)] queries execute hashed when
    possible. *)

open Mxra_relational
open Mxra_core

type join_algorithm =
  | Hash  (** Build a hash table on the right operand (the default). *)
  | Merge  (** Sort both operands on the keys and merge. *)

val plan :
  ?join_algorithm:join_algorithm ->
  ?jobs:int ->
  ?cores:int ->
  ?parallel_threshold:int ->
  Database.t ->
  Expr.t ->
  Physical.t
(** Translate a well-typed expression.  With [jobs > 1] the result is
    additionally run through {!parallelize} (the default, [jobs = 1],
    plans purely sequentially); [cores] and [parallel_threshold] are
    forwarded to it.
    @raise Typecheck.Type_error on an ill-typed expression. *)

val default_parallel_threshold : int
(** Estimated input cardinality below which {!parallelize} leaves an
    operator sequential (512). *)

val available_cores : unit -> int
(** How many cores plans may assume: the [MXRA_CORES] environment
    variable when set to a positive integer (so tests and cram scripts
    can pin plan shapes on any host), otherwise
    [Stdlib.Domain.recommended_domain_count ()]. *)

val parallelize :
  stats:Stats.env ->
  schemas:Typecheck.env ->
  jobs:int ->
  ?cores:int ->
  ?threshold:int ->
  Physical.t ->
  Physical.t
(** Insert {!Physical.Exchange} nodes above the fragmentable operators —
    maximal σ/π pipelines, hash joins and hash aggregates — whose
    estimated input cardinality ({!Cost.estimate_cardinality} of the
    logical image; for a join, the sum over both operands) reaches the
    profitability floor ({!Cost.exchange_floor}).

    Adaptive: the fragment count is [min jobs cores] with [cores]
    defaulting to {!available_cores} — on one core the plan is returned
    unchanged, parallelizing there is a planner bug — and, when no
    explicit [threshold] is given, the floor folds in the measured
    break-even from {!Mxra_ext.Parallel.Feedback}.  Passing [threshold]
    (tests pass 0 to force Exchange everywhere) disables the feedback
    term. *)

val plan_with :
  ?join_algorithm:join_algorithm ->
  ?stats:Stats.env ->
  ?indexes:(string -> Database.index_def list) ->
  Typecheck.env ->
  Expr.t ->
  Physical.t
(** Translation against an explicit schema environment (used by the
    optimizer when costing candidate plans without a live database).
    [indexes] lists the secondary-index definitions available on a named
    relation (default: none, so index paths are never chosen); [stats]
    feeds the index-vs-scan cost comparison (default: no statistics,
    heuristic estimates). *)

val force_index : unit -> bool
(** Whether [MXRA_FORCE_INDEX] is set to [1]/[true]/[yes]: the planner
    then takes an index path whenever a candidate exists, regardless of
    estimated cost — full-suite coverage for the index operators. *)

val join_keys :
  left_arity:int -> Pred.t -> (int * int) list * Pred.t
(** Split a join condition: [(left_key, right_key)] pairs usable by a
    hash join — with the right key renumbered into the right operand's
    own schema — plus the residual conjunction.  Exposed for tests. *)
