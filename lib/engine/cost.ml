open Mxra_relational
open Mxra_core

type profile = {
  card : float;
  ndv : float array;
  source : Stats.t option;
      (* Exact base-relation statistics, available only at leaves (and
         what the pushdown rules make valuable: selections sitting
         directly on scans get histogram-exact selectivity). *)
}

let default_ndv card = Float.max 1.0 (Float.min card 32.0)

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(* Column referenced by a bare-attribute side of a comparison, if any. *)
let attr_of = Scalar.is_attr

let ndv_of p i =
  if i >= 1 && i <= Array.length p.ndv then p.ndv.(i - 1)
  else default_ndv p.card

(* A comparison of a bare attribute against a numeric literal, in
   either order ([flipped] marks literal-on-the-left). *)
let attr_vs_literal a b =
  match (attr_of a, b) with
  | Some i, Scalar.Lit v when Value.is_numeric v ->
      Some (i, Value.as_float v, false)
  | _ -> (
      match (a, attr_of b) with
      | Scalar.Lit v, Some i when Value.is_numeric v ->
          Some (i, Value.as_float v, true)
      | _ -> None)

let mirror op =
  match op with
  | Term.Lt -> Term.Gt
  | Term.Le -> Term.Ge
  | Term.Gt -> Term.Lt
  | Term.Ge -> Term.Le
  | (Term.Eq | Term.Ne) as op -> op

let histogram_sel stats op a b =
  match attr_vs_literal a b with
  | None -> None
  | Some (i, x, flipped) -> (
      let op = if flipped then mirror op else op in
      let below () = Stats.fraction_below stats i x in
      let eq () = Stats.fraction_eq stats i x in
      match op with
      | Term.Eq -> eq ()
      | Term.Ne -> Option.map (fun f -> 1.0 -. f) (eq ())
      | Term.Lt -> below ()
      | Term.Le -> (
          match (below (), eq ()) with
          | Some b, Some e -> Some (b +. e)
          | _ -> None)
      | Term.Ge -> Option.map (fun f -> 1.0 -. f) (below ())
      | Term.Gt -> (
          match (below (), eq ()) with
          | Some b, Some e -> Some (1.0 -. b -. e)
          | _ -> None))

let rec selectivity p = function
  | Pred.True -> 1.0
  | Pred.False -> 0.0
  | Pred.Cmp (op, a, b) -> (
      let eq_sel () =
        match (attr_of a, attr_of b) with
        | Some i, None | None, Some i -> 1.0 /. Float.max 1.0 (ndv_of p i)
        | Some i, Some j ->
            1.0 /. Float.max 1.0 (Float.max (ndv_of p i) (ndv_of p j))
        | None, None -> 0.5
      in
      let from_histogram =
        match p.source with
        | Some stats -> histogram_sel stats op a b
        | None -> None
      in
      match from_histogram with
      | Some f -> clamp01 f
      | None -> (
          match op with
          | Term.Eq -> eq_sel ()
          | Term.Ne -> clamp01 (1.0 -. eq_sel ())
          | Term.Lt | Term.Le | Term.Gt | Term.Ge -> 1.0 /. 3.0))
  | Pred.And (q, r) -> selectivity p q *. selectivity p r
  | Pred.Or (q, r) ->
      let sq = selectivity p q and sr = selectivity p r in
      clamp01 (sq +. sr -. (sq *. sr))
  | Pred.Not q -> clamp01 (1.0 -. selectivity p q)

let leaf_profile stats name schema =
  match stats name with
  | Some (s : Stats.t) ->
      {
        card = float_of_int s.Stats.cardinality;
        ndv =
          Array.map (fun (c : Stats.column) -> float_of_int c.Stats.distinct)
            s.Stats.columns;
        source = Some s;
      }
  | None ->
      let card = 1000.0 in
      { card;
        ndv = Array.make (Schema.arity schema) (default_ndv card);
        source = None }

let const_profile r =
  let s = Stats.of_relation r in
  {
    card = float_of_int s.Stats.cardinality;
    ndv =
      Array.map (fun (c : Stats.column) -> float_of_int c.Stats.distinct)
        s.Stats.columns;
    source = Some s;
  }

(* NDVs under filtering: distinct values cannot exceed the cardinality,
   nor grow. *)
let scale_ndv p card' =
  Array.map (fun d -> Float.max 1.0 (Float.min d card')) p.ndv

let rec profile ~stats ~schemas e =
  let recur e = profile ~stats ~schemas e in
  match e with
  | Expr.Rel name -> leaf_profile stats name (Typecheck.infer schemas e)
  | Expr.Const r -> const_profile r
  | Expr.Union (e1, e2) ->
      let p1 = recur e1 and p2 = recur e2 in
      let card = p1.card +. p2.card in
      {
        card;
        ndv =
          Array.init (Array.length p1.ndv) (fun i ->
              Float.min card (p1.ndv.(i) +. p2.ndv.(i)));
        source = None;
      }
  | Expr.Diff (e1, e2) ->
      let p1 = recur e1 and p2 = recur e2 in
      (* Monus removes at most min(card1, card2); assume half overlap. *)
      let card = Float.max 0.0 (p1.card -. (0.5 *. Float.min p1.card p2.card)) in
      { card; ndv = scale_ndv p1 card; source = None }
  | Expr.Intersect (e1, e2) ->
      let p1 = recur e1 and p2 = recur e2 in
      let card = 0.5 *. Float.min p1.card p2.card in
      { card; ndv = scale_ndv p1 card; source = None }
  | Expr.Product (e1, e2) ->
      let p1 = recur e1 and p2 = recur e2 in
      { card = p1.card *. p2.card; ndv = Array.append p1.ndv p2.ndv;
        source = None }
  | Expr.Join (p, e1, e2) ->
      let p1 = recur e1 and p2 = recur e2 in
      let combined =
        { card = p1.card *. p2.card; ndv = Array.append p1.ndv p2.ndv;
          source = None }
      in
      let card = combined.card *. selectivity combined p in
      { combined with card }
  | Expr.Select (p, e) ->
      let pe = recur e in
      let card = pe.card *. selectivity pe p in
      { card; ndv = scale_ndv pe card; source = None }
  | Expr.Project (exprs, e) ->
      let pe = recur e in
      let ndv =
        Array.of_list
          (List.map
             (fun expr ->
               match attr_of expr with
               | Some i -> ndv_of pe i
               | None -> default_ndv pe.card)
             exprs)
      in
      (* π preserves cardinality on bags (no duplicate elimination). *)
      { card = pe.card; ndv; source = None }
  | Expr.Unique e ->
      let pe = recur e in
      let distinct_bound =
        Array.fold_left (fun acc d -> acc *. d) 1.0 pe.ndv
      in
      let card = Float.min pe.card distinct_bound in
      { card; ndv = scale_ndv pe card; source = None }
  | Expr.GroupBy (attrs, aggs, e) ->
      let pe = recur e in
      let groups =
        if attrs = [] then 1.0
        else
          Float.min pe.card
            (List.fold_left (fun acc i -> acc *. ndv_of pe i) 1.0 attrs)
      in
      let key_ndv = List.map (fun i -> Float.min groups (ndv_of pe i)) attrs in
      let agg_ndv = List.map (fun _ -> groups) aggs in
      { card = groups; ndv = Array.of_list (key_ndv @ agg_ndv); source = None }

let estimate_cardinality ~stats ~schemas e = (profile ~stats ~schemas e).card

let q_error ~estimated ~actual =
  let est = Float.max 1.0 estimated in
  let act = Float.max 1.0 (float_of_int actual) in
  Float.max (est /. act) (act /. est)

(* Cost is data volume, not tuple count: each operator's output charged
   as estimated cardinality x output arity, so a narrowing projection
   (Example 3.2) is rewarded for shrinking rows, not punished for being
   an extra operator. *)
let rec cost ~stats ~schemas e =
  let arity = float_of_int (Schema.arity (Typecheck.infer schemas e)) in
  let own = (profile ~stats ~schemas e).card *. arity in
  let children =
    match e with
    | Expr.Rel _ | Expr.Const _ -> 0.0
    | Expr.Select (_, e1) | Expr.Project (_, e1) | Expr.Unique e1
    | Expr.GroupBy (_, _, e1) ->
        cost ~stats ~schemas e1
    | Expr.Union (e1, e2)
    | Expr.Diff (e1, e2)
    | Expr.Product (e1, e2)
    | Expr.Intersect (e1, e2)
    | Expr.Join (_, e1, e2) ->
        cost ~stats ~schemas e1 +. cost ~stats ~schemas e2
  in
  own +. children

(* --- index access paths -------------------------------------------------

   The units are "rows touched", comparable with the tuple-flow model
   above: a sequential scan touches the whole relation, an index probe
   touches log(keys) tree nodes plus the matching postings, and an index
   nested-loop join pays one probe per outer row where a hash join pays
   a full build of the inner. *)

let index_probe_cost ~keys ~matching =
  Float.log2 (Float.max 2.0 keys) +. Float.max 0.0 matching

let index_scan_wins ~keys ~matching ~total =
  index_probe_cost ~keys ~matching < total

let index_join_wins ~keys ~outer ~inner =
  Float.max 1.0 outer *. Float.log2 (Float.max 2.0 keys) < inner

(* An Exchange's overhead — partition, pool dispatch, merge — is paid
   per input tuple and per fragment, so the break-even input size grows
   with the fragment count: splitting 600 rows four ways leaves
   fragments too small to amortise a dispatch even though 600 clears a
   512-row bar for two-way splitting. *)
let exchange_floor ~parts ~threshold ~feedback_rows =
  let static = float_of_int threshold in
  let measured =
    match feedback_rows with Some r -> float_of_int r | None -> static
  in
  let per_fragment = float_of_int (threshold * parts) /. 2.0 in
  Float.max (Float.max static measured) per_fragment
