(** Relation statistics for cardinality estimation.

    The optimizer's cost model needs, per base relation: the bag
    cardinality, the support size (distinct tuples), and per column the
    number of distinct values plus the numeric range when the domain is
    numeric.  Statistics are computed by one scan and are exact — on
    in-memory bags there is no reason to sample. *)

open Mxra_relational

type column = {
  distinct : int;  (** Distinct values in the column. *)
  min_value : Value.t option;  (** Smallest value; [None] when empty. *)
  max_value : Value.t option;
  cumulative : (float * int) array;
      (** For numeric columns: distinct values ascending, paired with the
          cumulative tuple count (multiplicities included) up to and
          including that value — an exact equi-depth histogram.  Empty
          for non-numeric columns. *)
}

type t = {
  cardinality : int;  (** Tuples counted with multiplicity. *)
  support : int;  (** Distinct tuples. *)
  columns : column array;  (** Indexed 0-based; attribute [i] at [i-1]. *)
}

val of_relation : Relation.t -> t

val column : t -> int -> column
(** 1-based, matching attribute addressing.
    @raise Invalid_argument when out of range. *)

val distinct_keys : t -> int list -> int
(** [distinct_keys s cols]: estimated distinct composite keys over the
    1-based columns [cols] — per-column distinct counts multiplied,
    capped by the support.  At least 1.  Index metadata for the cost
    model.
    @raise Invalid_argument on an empty or out-of-range column list. *)

val dup_factor : t -> float
(** [cardinality / support]; 1.0 for duplicate-free relations, and by
    convention 1.0 for the empty relation. *)

val fraction_below : t -> int -> float -> float option
(** [fraction_below s i x]: exact fraction of tuples whose numeric
    attribute [i] is [< x]; [None] when the column is non-numeric or the
    relation empty.  The basis for data-driven range selectivity. *)

val fraction_eq : t -> int -> float -> float option
(** Exact fraction with attribute [i] equal to [x]. *)

type env = string -> t option
(** Statistics lookup for named relations. *)

val env_of_database : Database.t -> env
(** Compute statistics for every relation once, eagerly. *)

val pp : Format.formatter -> t -> unit
