(** Lightweight execution metrics.

    Monotonic counters and wall-clock duration accumulators, plus the
    per-operator record the instrumented executor fills in.  The only
    dependency is [Unix.gettimeofday]; there is no background thread,
    no sampling — every figure is an exact count or a measured
    accumulation, in the spirit of the counted-tuple representation
    where cardinality accounting is exact rather than estimated. *)

type counter
(** A monotonically increasing integer. *)

val make_counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

type timer
(** A wall-clock duration accumulator. *)

val make_timer : unit -> timer

val record : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall time to the accumulator.  An
    exception propagates unchanged, after the time is recorded. *)

val add_ms : timer -> float -> unit
val elapsed_ms : timer -> float

(** {1 Registry}

    Named counters and timers, created on first use and listed in
    creation order — the aggregate view a bench or server loop exports. *)

type t

type value =
  | Count of int
  | Duration_ms of float

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter of that name.
    @raise Invalid_argument if the name is registered as a timer. *)

val timer : t -> string -> timer
(** Find or create the timer of that name.
    @raise Invalid_argument if the name is registered as a counter. *)

val dump : t -> (string * value) list
(** Every metric in creation order. *)

val prometheus : ?prefix:string -> t -> string
(** The registry in Prometheus text format: counters as
    [<prefix><name>_total] counter families, timers as
    [<prefix><name>_ms] gauges, names sanitised, in creation order.
    [prefix] defaults to ["mxra_"]. *)

(** {1 Per-operator accounting}

    What the instrumented executor records at every physical operator. *)

type op = {
  elems : counter;  (** counted-tuple elements emitted *)
  rows : counter;  (** tuples emitted, weighted by multiplicity *)
  cells : counter;  (** elements weighted by tuple arity *)
  wall : timer;  (** inclusive wall time — children included *)
  mutable details : (string * int) list;
      (** operator-specific gauges: hash-build sizes, group counts,
          materialised inner sizes; insertion order, last write wins *)
}

val make_op : unit -> op
val set_detail : op -> string -> int -> unit
val details : op -> (string * int) list
(** [details] in insertion order. *)
