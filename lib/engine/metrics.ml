type counter = { mutable n : int }

let make_counter () = { n = 0 }
let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let count c = c.n

type timer = { mutable total : float (* seconds *) }

let make_timer () = { total = 0.0 }

let record t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> t.total <- t.total +. (Unix.gettimeofday () -. t0))
    f

let add_ms t ms = t.total <- t.total +. (ms /. 1000.0)
let elapsed_ms t = t.total *. 1000.0

type entry = C of counter | T of timer

type value =
  | Count of int
  | Duration_ms of float

(* Entries are kept in reverse creation order; registries stay small
   (dozens of names), so association lists beat a hash table on both
   simplicity and iteration order. *)
type t = { mutable entries : (string * entry) list }

let create () = { entries = [] }

let counter t name =
  match List.assoc_opt name t.entries with
  | Some (C c) -> c
  | Some (T _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a timer")
  | None ->
      let c = make_counter () in
      t.entries <- (name, C c) :: t.entries;
      c

let timer t name =
  match List.assoc_opt name t.entries with
  | Some (T tm) -> tm
  | Some (C _) -> invalid_arg ("Metrics.timer: " ^ name ^ " is a counter")
  | None ->
      let tm = make_timer () in
      t.entries <- (name, T tm) :: t.entries;
      tm

let dump t =
  List.rev_map
    (fun (name, e) ->
      ( name,
        match e with
        | C c -> Count c.n
        | T tm -> Duration_ms (elapsed_ms tm) ))
    t.entries

let prometheus ?(prefix = "mxra_") t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, value) ->
      let metric suffix = prefix ^ name ^ suffix in
      Buffer.add_string buf
        (match value with
        | Count n ->
            Mxra_obs.Prometheus.counter (metric "_total") (float_of_int n)
        | Duration_ms ms -> Mxra_obs.Prometheus.gauge (metric "_ms") ms))
    (dump t);
  Buffer.contents buf

type op = {
  elems : counter;
  rows : counter;
  cells : counter;
  wall : timer;
  mutable details : (string * int) list;
}

let make_op () =
  {
    elems = make_counter ();
    rows = make_counter ();
    cells = make_counter ();
    wall = make_timer ();
    details = [];
  }

(* Stored in reverse insertion order; a rewrite drops the old value. *)
let set_detail op key v =
  op.details <- (key, v) :: List.remove_assoc key op.details

let details op = List.rev op.details
