(** Cardinality estimation and plan costing.

    The cost model is the classic tuple-flow model: the estimated cost of
    an expression is the sum of the estimated cardinalities of every
    intermediate result it materialises or streams.  That is exactly the
    quantity Example 3.2 reasons about when it inserts a projection "to
    reduce the size of intermediate results", and it suffices to rank the
    join orders of the Theorem 3.3 experiment.

    Estimation walks the {e logical} expression; the planner's physical
    choices do not change cardinalities, only constants.  Selectivity
    heuristics are the textbook ones (equality [1/ndv], ranges [1/3],
    conjunction multiplies, disjunction adds with cap), seeded by
    {!Stats} on base relations and propagated structurally above them. *)

open Mxra_core

type profile = {
  card : float;  (** Estimated bag cardinality. *)
  ndv : float array;  (** Estimated distinct values per column. *)
  source : Stats.t option;
      (** Exact statistics when the profile belongs to a base relation;
          range and equality conditions on such profiles use the
          histogram ({!Stats.fraction_below}) instead of heuristics. *)
}

val profile :
  stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> profile
(** Estimated output profile of an expression.
    @raise Typecheck.Type_error when the expression is ill-formed. *)

val estimate_cardinality :
  stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> float

val cost : stats:Stats.env -> schemas:Typecheck.env -> Expr.t -> float
(** Estimated data volume: the sum over all operator outputs (leaf scans
    included) of estimated cardinality × output arity — the objective
    the optimizer minimises.  Weighting by arity is what makes
    Example 3.2's narrowing projections profitable in the model, as they
    are in the measured cell traffic ({!Exec.cells_moved}). *)

val selectivity : profile -> Pred.t -> float
(** Estimated fraction of tuples satisfying the condition, in [0, 1]. *)

val q_error : estimated:float -> actual:int -> float
(** The standard misestimation factor [max(est/act, act/est)], with both
    sides clamped to at least one tuple so that exact hits — including
    the empty/empty case — score 1.0 and the measure is always finite.
    A q-error of [q] means the estimate is off by a factor of [q] in one
    direction or the other; join-order quality degrades roughly with the
    product of the q-errors along the join tree. *)

val index_probe_cost : keys:float -> matching:float -> float
(** Rows touched by one index probe: [log2 keys] tree nodes plus the
    [matching] postings — the quantity compared against a scan's
    cardinality.  [keys] is the distinct-key estimate
    ({!Stats.distinct_keys}); [matching] comes from the histogram
    selectivity of the access predicate. *)

val index_scan_wins : keys:float -> matching:float -> total:float -> bool
(** Whether answering a selection through an index beats scanning all
    [total] rows. *)

val index_join_wins : keys:float -> outer:float -> inner:float -> bool
(** Whether an index nested-loop join — one probe per [outer] row — is
    predicted to beat a hash join's full build over [inner] rows. *)

val exchange_floor :
  parts:int -> threshold:int -> feedback_rows:int option -> float
(** Minimum estimated input cardinality at which inserting an
    [Exchange] with [parts] fragments is predicted to pay: the static
    [threshold], raised to any measured break-even
    ({!Mxra_ext.Parallel.Feedback.min_profitable_rows}) when one is
    given, and scaled with the fragment count so each fragment still
    clears half the threshold on its own.  Callers that force a
    threshold (tests passing 0) should pass [feedback_rows:None] so the
    floor stays exactly what they asked for. *)
