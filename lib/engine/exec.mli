(** Physical plan execution.

    Operators exchange {e counted tuples} [(tuple, multiplicity)]: a
    relation holding one tuple a million times flows as a single element,
    which is the executable form of the paper's representation of
    multi-sets as [(x, E(x))] pairs.  Counted tuples flow in {e chunks}
    — non-empty arrays of up to {!chunk_size} elements — so pipelined
    operators (scan, filter, project, the probe side of a hash join)
    process morsels in tight loops instead of paying a closure per
    element; blocking operators (hash join build, aggregation, distinct,
    difference, intersection) materialise hash tables as before.
    Chunking is pure plumbing: results are bag-equal at every chunk
    size, including the degenerate size 1.

    Correctness contract: for every plan [p] and database [db],
    [run db p] equals [Eval.eval db (Physical.to_logical p)] — checked
    property-style by the test suite, differentially across chunk sizes
    and fragment counts. *)

open Mxra_relational
open Mxra_core

(** {1 Chunk size}

    One process-wide default, overridable per call.  The initial value
    is {!default_chunk_size}, or the [MXRA_CHUNK_SIZE] environment
    variable when set to a positive integer (the CI leg that re-runs
    the whole suite with one-tuple chunks sets it to 1). *)

val default_chunk_size : int
(** 255: with its header, the largest array the OCaml runtime still
    allocates on the minor heap, which keeps chunks (and the tuples
    they carry) from being promoted to the major heap mid-pipeline. *)

val chunk_size : unit -> int
(** The current process-wide default chunk size. *)

val set_chunk_size : int -> unit
(** Set the process-wide default; values below 1 are clamped to 1. *)

(** {1 Execution} *)

val run : ?chunk_size:int -> Database.t -> Physical.t -> Relation.t
(** Execute a plan to a materialised relation.
    @raise Database.Unknown_relation on a scan of an absent name.
    @raise Typecheck.Type_error if the plan's logical image is ill-typed.
    @raise Scalar.Eval_error / [Aggregate.Undefined] on dynamic failure. *)

val run_expr : ?chunk_size:int -> Database.t -> Expr.t -> Relation.t
(** Plan (with {!Planner.plan}) and execute a logical expression — the
    engine's one-call entry point. *)

val stream : ?chunk_size:int -> Database.t -> Physical.t -> (Tuple.t * int) Seq.t
(** The raw counted-tuple stream of a plan (chunks flattened), without
    final materialisation; multiplicities of equal tuples may be split
    across several elements. *)

val tuples_moved : Database.t -> Physical.t -> int
(** Execute while counting every counted-tuple element that crosses an
    operator boundary — the measured counterpart of {!Cost.cost}'s
    estimate. *)

val cells_moved : Database.t -> Physical.t -> int
(** Like {!tuples_moved} but weighted by tuple arity: the data {e
    volume} crossing operator boundaries.  This is the quantity
    Example 3.2's early projection reduces — narrower intermediates —
    and what the intermediate-size experiment (E5) reports. *)

(** {1 Instrumented execution — EXPLAIN ANALYZE}

    Every physical operator records what it actually did: counted-tuple
    elements and tuples (with multiplicity) emitted, cells moved, wall
    time, and operator-specific gauges (hash-build sizes, group counts,
    materialised inner cardinalities).  Because the engine runs on the
    paper's counted representation [(x, E(x))], the cardinality
    accounting is exact, not sampled.  Instrumentation must not perturb
    bag semantics: [run_instrumented db p] returns the same relation as
    [run db p] — checked property-style by the test suite. *)

type op_metrics = {
  out_elems : int;  (** counted-tuple elements emitted *)
  out_rows : int;  (** tuples emitted, weighted by multiplicity *)
  out_cells : int;  (** elements weighted by tuple arity *)
  wall_ms : float;
      (** inclusive wall time: pulling from children counts towards the
          parent too, as in EXPLAIN ANALYZE's actual time *)
  details : (string * int) list;  (** operator-specific gauges *)
}

type report = {
  node : Physical.t;
  estimated_rows : float;
      (** the optimizer's estimate ({!Cost.estimate_cardinality}) for
          this operator's logical image, from the database's statistics *)
  actual : op_metrics;
  q_error : float;  (** {!Cost.q_error} of estimated vs actual rows *)
  inputs : report list;
}

type analysis = {
  result : Relation.t;
  total_ms : float;
  root : report;
  totals : Metrics.t;
      (** plan-wide aggregates: [tuples-moved], [cells-moved],
          [rows-out], [operators], [wall] *)
}

val run_instrumented : ?chunk_size:int -> Database.t -> Physical.t -> analysis
(** Execute with per-operator metrics.  Same result and same raising
    behaviour as {!run}; element/row/cell counts are independent of the
    chunk size. *)

val explain_analyze : ?chunk_size:int -> ?jobs:int -> Database.t -> Expr.t -> analysis
(** Plan (with {!Planner.plan}, forwarding [jobs]) and
    {!run_instrumented} — the engine's one-call EXPLAIN ANALYZE.
    Callers wanting the optimizer's plan should optimize the
    expression first. *)

val pp_analysis : Format.formatter -> analysis -> unit
(** The physical tree, each operator annotated with
    [(est=… act=… q=… time=…ms gauges…)], then a total line. *)

val analysis_to_string : analysis -> string

val pp_estimates : Database.t -> Format.formatter -> Physical.t -> unit
(** The physical tree annotated with estimated rows only — EXPLAIN
    without execution. *)

val explain : ?jobs:int -> Database.t -> Expr.t -> string
(** Plan (forwarding [jobs] to {!Planner.plan}) and render with
    {!pp_estimates}. *)
