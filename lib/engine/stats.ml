open Mxra_relational

type column = {
  distinct : int;
  min_value : Value.t option;
  max_value : Value.t option;
  cumulative : (float * int) array;
}

type t = {
  cardinality : int;
  support : int;
  columns : column array;
}

module VSet = Set.Make (Value)
module VMap = Map.Make (Value)

let of_relation r =
  let arity = Schema.arity (Relation.schema r) in
  let seen = Array.make arity VSet.empty in
  let counts = Array.make arity VMap.empty in
  let lo = Array.make arity None and hi = Array.make arity None in
  let update_extremum slot better v =
    match slot with
    | None -> Some v
    | Some w -> if better (Value.compare v w) then Some v else Some w
  in
  let numeric = Array.map Domain.is_numeric (Array.of_list (Schema.domains (Relation.schema r))) in
  Relation.Bag.iter
    (fun tuple count ->
      for i = 0 to arity - 1 do
        let v = Tuple.attr tuple (i + 1) in
        seen.(i) <- VSet.add v seen.(i);
        lo.(i) <- update_extremum lo.(i) (fun c -> c < 0) v;
        hi.(i) <- update_extremum hi.(i) (fun c -> c > 0) v;
        if numeric.(i) then
          counts.(i) <-
            VMap.update v
              (function None -> Some count | Some n -> Some (n + count))
              counts.(i)
      done)
    (Relation.bag r);
  let cumulative_of i =
    if not numeric.(i) then [||]
    else begin
      let running = ref 0 in
      VMap.bindings counts.(i)
      |> List.map (fun (v, n) ->
             running := !running + n;
             (Value.as_float v, !running))
      |> Array.of_list
    end
  in
  {
    cardinality = Relation.cardinal r;
    support = Relation.support_size r;
    columns =
      Array.init arity (fun i ->
          {
            distinct = VSet.cardinal seen.(i);
            min_value = lo.(i);
            max_value = hi.(i);
            cumulative = cumulative_of i;
          });
  }

let column t i =
  if i < 1 || i > Array.length t.columns then
    invalid_arg (Printf.sprintf "Stats.column: index %%%d out of range" i)
  else t.columns.(i - 1)

(* Distinct composite keys over a column set: the per-column distinct
   counts multiplied (independence), capped by the support — a key set
   can never distinguish more than the distinct tuples do. *)
let distinct_keys t cols =
  match cols with
  | [] -> invalid_arg "Stats.distinct_keys: empty column list"
  | _ ->
      let prod =
        List.fold_left
          (fun acc i -> acc *. float_of_int (column t i).distinct)
          1.0 cols
      in
      int_of_float (Float.max 1.0 (Float.min (float_of_int t.support) prod))

let dup_factor t =
  if t.support = 0 then 1.0
  else float_of_int t.cardinality /. float_of_int t.support

(* Cumulative count of tuples with value strictly below [x]: binary
   search for the greatest entry < x. *)
let cum_below cumulative x =
  let n = Array.length cumulative in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let v, c = cumulative.(mid) in
      if v < x then search (mid + 1) hi c else search lo (mid - 1) best
  in
  search 0 (n - 1) 0

let fraction_below t i x =
  match t.columns.(i - 1).cumulative with
  | [||] -> None
  | cumulative when t.cardinality = 0 -> ignore cumulative; None
  | cumulative ->
      Some (float_of_int (cum_below cumulative x) /. float_of_int t.cardinality)

let fraction_eq t i x =
  match t.columns.(i - 1).cumulative with
  | [||] -> None
  | cumulative when t.cardinality = 0 -> ignore cumulative; None
  | cumulative ->
      let below = cum_below cumulative x in
      let upto = cum_below cumulative (Float.succ x) in
      Some (float_of_int (upto - below) /. float_of_int t.cardinality)

type env = string -> t option

let env_of_database db =
  (* Statistics are computed per relation on first access and memoised:
     an env handed to the optimizer or to EXPLAIN only pays for the
     relations the expression actually scans. *)
  let table =
    List.map
      (fun name -> (name, lazy (of_relation (Database.find name db))))
      (Database.relation_names db)
  in
  fun name -> Option.map Lazy.force (List.assoc_opt name table)

let pp ppf t =
  Format.fprintf ppf "{card=%d; support=%d; ndv=[%a]}" t.cardinality t.support
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       (fun ppf c -> Format.pp_print_int ppf c.distinct))
    (Array.to_seq t.columns)
