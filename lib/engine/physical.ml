open Mxra_core
module Index = Mxra_ext.Index

type t =
  | Const_scan of Mxra_relational.Relation.t
  | Seq_scan of string
  | Index_scan of {
      def : Mxra_relational.Database.index_def;
      access : Index.access;
      residual : Pred.t;
    }
  | Index_join of {
      (* Index nested-loop join: probe [def]'s index on the inner
         relation once per outer row, key values taken from the outer
         row's [outer_keys] (aligned with [def.idx_cols]). *)
      def : Mxra_relational.Database.index_def;
      outer_keys : int list;
      left_arity : int;
      residual : Pred.t;
      outer : t;
    }
  | Filter of Pred.t * t
  | Project_op of Scalar.t list * t
  | Hash_join of {
      left_keys : int list;
      right_keys : int list;
      left_arity : int;
      residual : Pred.t;
      left : t;
      right : t;
    }
  | Merge_join of {
      left_keys : int list;
      right_keys : int list;
      left_arity : int;
      residual : Pred.t;
      left : t;
      right : t;
    }
  | Nested_loop of Pred.t * t * t
  | Cross_product of t * t
  | Union_all of t * t
  | Hash_diff of t * t
  | Hash_intersect of t * t
  | Hash_distinct of t
  | Hash_aggregate of int list * (Aggregate.kind * int) list * t
  | Exchange of { parts : int; child : t }

(* The logical join condition of a hash join: key equalities (right keys
   reindexed past the left arity) conjoined with the residual. *)
(* The predicate an index access path stands for, over the indexed
   relation's own schema: one condition per consumed conjunct. *)
let access_pred (def : Mxra_relational.Database.index_def)
    (access : Index.access) =
  match access with
  | Index.Point vals ->
      List.map2
        (fun c v -> Pred.eq (Scalar.attr c) (Scalar.Lit v))
        def.idx_cols vals
  | Index.Range (lo, hi) ->
      let col = List.hd def.idx_cols in
      List.filter_map Fun.id
        [
          Option.map
            (fun { Index.b_value; b_incl } ->
              (if b_incl then Pred.ge else Pred.gt)
                (Scalar.attr col) (Scalar.Lit b_value))
            lo;
          Option.map
            (fun { Index.b_value; b_incl } ->
              (if b_incl then Pred.le else Pred.lt)
                (Scalar.attr col) (Scalar.Lit b_value))
            hi;
        ]

let rec to_logical plan =
  match plan with
  | Const_scan r -> Expr.Const r
  | Seq_scan name -> Expr.Rel name
  | Index_scan { def; access; residual } ->
      Expr.Select
        ( Pred.simplify (Pred.conj (access_pred def access @ [ residual ])),
          Expr.Rel def.idx_rel )
  | Index_join { def; outer_keys; left_arity; residual; outer } ->
      let key_conds =
        List.map2
          (fun i c -> Pred.eq (Scalar.attr i) (Scalar.attr (c + left_arity)))
          outer_keys def.idx_cols
      in
      Expr.Join
        ( Pred.simplify (Pred.conj (key_conds @ [ residual ])),
          to_logical outer, Expr.Rel def.idx_rel )
  | Filter (p, t) -> Expr.Select (p, to_logical t)
  | Project_op (exprs, t) -> Expr.Project (exprs, to_logical t)
  | Hash_join { left_keys; right_keys; left_arity; residual; left; right }
  | Merge_join { left_keys; right_keys; left_arity; residual; left; right } ->
      let key_conds =
        List.map2
          (fun i j -> Pred.eq (Scalar.attr i) (Scalar.attr (j + left_arity)))
          left_keys right_keys
      in
      Expr.Join
        (Pred.conj (key_conds @ [ residual ]), to_logical left,
         to_logical right)
  | Nested_loop (p, l, r) -> Expr.Join (p, to_logical l, to_logical r)
  | Cross_product (l, r) -> Expr.Product (to_logical l, to_logical r)
  | Union_all (l, r) -> Expr.Union (to_logical l, to_logical r)
  | Hash_diff (l, r) -> Expr.Diff (to_logical l, to_logical r)
  | Hash_intersect (l, r) -> Expr.Intersect (to_logical l, to_logical r)
  | Hash_distinct t -> Expr.Unique (to_logical t)
  | Hash_aggregate (attrs, aggs, t) ->
      Expr.GroupBy (attrs, aggs, to_logical t)
  | Exchange { child; _ } -> to_logical child

let rec size = function
  | Const_scan _ | Seq_scan _ | Index_scan _ -> 1
  | Index_join { outer; _ } -> 1 + size outer
  | Filter (_, t) | Project_op (_, t) | Hash_distinct t
  | Hash_aggregate (_, _, t)
  | Exchange { child = t; _ } ->
      1 + size t
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      1 + size left + size right
  | Nested_loop (_, l, r)
  | Cross_product (l, r)
  | Union_all (l, r)
  | Hash_diff (l, r)
  | Hash_intersect (l, r) ->
      1 + size l + size r

let rec exchange_count plan =
  let own = match plan with Exchange _ -> 1 | _ -> 0 in
  match plan with
  | Const_scan _ | Seq_scan _ | Index_scan _ -> own
  | Index_join { outer; _ } -> own + exchange_count outer
  | Filter (_, t) | Project_op (_, t) | Hash_distinct t
  | Hash_aggregate (_, _, t)
  | Exchange { child = t; _ } ->
      own + exchange_count t
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      own + exchange_count left + exchange_count right
  | Nested_loop (_, l, r)
  | Cross_product (l, r)
  | Union_all (l, r)
  | Hash_diff (l, r)
  | Hash_intersect (l, r) ->
      own + exchange_count l + exchange_count r

let children = function
  | Const_scan _ | Seq_scan _ | Index_scan _ -> []
  | Index_join { outer; _ } -> [ outer ]
  | Filter (_, t) | Project_op (_, t) | Hash_distinct t
  | Hash_aggregate (_, _, t)
  | Exchange { child = t; _ } ->
      [ t ]
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      [ left; right ]
  | Nested_loop (_, l, r)
  | Cross_product (l, r)
  | Union_all (l, r)
  | Hash_diff (l, r)
  | Hash_intersect (l, r) ->
      [ l; r ]

let kind = function
  | Const_scan _ -> "ConstScan"
  | Seq_scan _ -> "SeqScan"
  | Index_scan _ -> "IndexScan"
  | Index_join _ -> "IndexNestedLoopJoin"
  | Filter _ -> "Filter"
  | Project_op _ -> "Project"
  | Hash_join _ -> "HashJoin"
  | Merge_join _ -> "MergeJoin"
  | Nested_loop _ -> "NestedLoop"
  | Cross_product _ -> "CrossProduct"
  | Union_all _ -> "UnionAll"
  | Hash_diff _ -> "HashDiff"
  | Hash_intersect _ -> "HashIntersect"
  | Hash_distinct _ -> "HashDistinct"
  | Hash_aggregate _ -> "HashAggregate"
  | Exchange _ -> "Exchange"

let pp_keys ppf keys =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf i -> Format.fprintf ppf "%%%d" i)
    ppf keys

let label plan =
  match plan with
  | Const_scan r ->
      Format.asprintf "ConstScan (%d tuples)"
        (Mxra_relational.Relation.cardinal r)
  | Seq_scan name -> "SeqScan " ^ name
  | Index_scan { def; access; residual } ->
      Format.asprintf "IndexScan %s via %s [%a]%s" def.idx_rel def.idx_name
        Index.pp_access access
        (match residual with
        | Pred.True -> ""
        | p -> Format.asprintf " residual=[%a]" Pred.pp p)
  | Index_join { def; outer_keys; residual; _ } ->
      Format.asprintf "IndexNestedLoopJoin %s via %s keys=%a=%a%s" def.idx_rel
        def.idx_name pp_keys outer_keys pp_keys def.idx_cols
        (match residual with
        | Pred.True -> ""
        | p -> Format.asprintf " residual=[%a]" Pred.pp p)
  | Filter (p, _) -> Format.asprintf "Filter [%a]" Pred.pp p
  | Project_op (exprs, _) ->
      Format.asprintf "Project [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Scalar.pp)
        exprs
  | Hash_join { left_keys; right_keys; residual; _ } ->
      Format.asprintf "HashJoin keys=%a=%a residual=[%a]" pp_keys left_keys
        pp_keys right_keys Pred.pp residual
  | Merge_join { left_keys; right_keys; residual; _ } ->
      Format.asprintf "MergeJoin keys=%a=%a residual=[%a]" pp_keys left_keys
        pp_keys right_keys Pred.pp residual
  | Nested_loop (p, _, _) -> Format.asprintf "NestedLoop [%a]" Pred.pp p
  | Cross_product _ -> "CrossProduct"
  | Union_all _ -> "UnionAll"
  | Hash_diff _ -> "HashDiff"
  | Hash_intersect _ -> "HashIntersect"
  | Hash_distinct _ -> "HashDistinct"
  | Exchange { parts; _ } -> Format.asprintf "Exchange parts=%d" parts
  | Hash_aggregate (attrs, aggs, _) ->
      Format.asprintf "HashAggregate keys=[%a] aggs=[%a]" pp_keys attrs
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           (fun ppf (k, p) -> Format.fprintf ppf "%a(%%%d)" Aggregate.pp k p))
        aggs

let pp_annotated ~annot ppf plan =
  let rec go indent plan =
    let pad = String.make indent ' ' in
    (match annot plan with
    | "" -> Format.fprintf ppf "%s%s@," pad (label plan)
    | a ->
        Format.fprintf ppf "%s%-*s %s@," pad
          (max 0 (46 - indent))
          (label plan) a);
    List.iter (go (indent + 2)) (children plan)
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"

let pp ppf plan = pp_annotated ~annot:(fun _ -> "") ppf plan
let to_string plan = Format.asprintf "%a" pp plan
