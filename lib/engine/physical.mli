(** Physical query plans.

    A physical plan fixes, for each logical operator, the algorithm that
    implements it: hash join vs. nested loops, hash-based aggregation,
    hash-based duplicate elimination and bag difference/intersection.
    The planner ({!Planner}) chooses the algorithms; the executor
    ({!Exec}) runs them.

    [to_logical] recovers the logical expression a plan computes; the
    engine's correctness contract — checked property-style in the test
    suite — is that executing a plan equals {!Mxra_core.Eval} on its
    logical image. *)

open Mxra_relational
open Mxra_core

type t =
  | Const_scan of Relation.t
  | Seq_scan of string  (** Scan a named database relation. *)
  | Index_scan of {
      def : Database.index_def;
      access : Mxra_ext.Index.access;
          (** Key conditions consumed by the index probe. *)
      residual : Pred.t;
          (** Remaining conjuncts, evaluated on each posted tuple;
              [Pred.True] when the index covers the whole predicate. *)
    }
      (** Selection over a named relation answered by a secondary index:
          probe the index, filter postings by the residual. *)
  | Index_join of {
      def : Database.index_def;
      outer_keys : int list;
          (** Outer-schema attributes supplying the key values, aligned
              position-for-position with [def.idx_cols]. *)
      left_arity : int;
      residual : Pred.t;
      outer : t;
    }
      (** Index nested-loop join: for each outer row, probe the inner
          relation's index with the outer key values and emit matches —
          the inner side is the indexed relation itself, never a
          subplan. *)
  | Filter of Pred.t * t
  | Project_op of Scalar.t list * t
  | Hash_join of {
      left_keys : int list;  (** Key attributes in the left schema. *)
      right_keys : int list;
          (** Matching key attributes, numbered in the {e right} operand's
              own schema. *)
      left_arity : int;
          (** Arity of the left operand's schema; recorded by the planner
              so plans stay self-describing (a [Seq_scan]'s arity is not
              structural). *)
      residual : Pred.t;
          (** Evaluated on the concatenated tuple after key match;
              [Pred.True] for pure equi-joins. *)
      left : t;
      right : t;
    }
  | Merge_join of {
      left_keys : int list;
      right_keys : int list;
      left_arity : int;
      residual : Pred.t;
      left : t;
      right : t;
    }
      (** Equi-join by sorting both inputs on their keys and merging —
          the classic alternative to hashing; the planner can be asked
          for it and the benchmarks compare the two. *)
  | Nested_loop of Pred.t * t * t
      (** General θ-join: condition over the concatenated schema. *)
  | Cross_product of t * t
  | Union_all of t * t
  | Hash_diff of t * t  (** Bag monus via count tables. *)
  | Hash_intersect of t * t  (** Pointwise minimum via count tables. *)
  | Hash_distinct of t
  | Hash_aggregate of int list * (Aggregate.kind * int) list * t
  | Exchange of { parts : int; child : t }
      (** Parallel execution marker: the child computes the same bag,
          but the executor partitions its work into [parts] fragments
          and runs them on the domain pool ({!Mxra_ext.Pool}), merging
          by bag union — sound by the distribution laws of Theorem 3.2
          and key-aligned partitioning (docs/PARALLELISM.md).  The
          planner inserts it above filters, projections, hash joins and
          hash aggregates whose estimated input exceeds a threshold. *)

val access_pred : Database.index_def -> Mxra_ext.Index.access -> Pred.t list
(** The conjuncts an index access stands for, over the indexed
    relation's own schema — what the probe answers, residual excluded.
    [to_logical] conjoins them back; the planner estimates matching rows
    from them. *)

val to_logical : t -> Expr.t
(** The logical expression this plan computes.  A [Hash_join] maps to a
    [Join] whose condition conjoins the key equalities with the
    residual. *)

val size : t -> int
(** Operator count. *)

val children : t -> t list
(** Direct operands, left to right. *)

val exchange_count : t -> int
(** Number of [Exchange] nodes anywhere in the plan — zero exactly when
    the plan is purely sequential.  The adaptive planner's 1-core
    guarantee ([parallelize] never parallelizes with one core) is pinned
    against this. *)

val label : t -> string
(** One-line description of the operator itself, without children —
    what {!pp} prints on the operator's own line. *)

val kind : t -> string
(** The operator's constructor name alone ([label] without keys or
    predicates) — the stable aggregation key tracing and metrics group
    by. *)

val pp : Format.formatter -> t -> unit
(** One operator per line, children indented — an EXPLAIN-style tree. *)

val pp_annotated :
  annot:(t -> string) -> Format.formatter -> t -> unit
(** Like {!pp} but appending [annot node] to each line (column-aligned
    when non-empty) — how EXPLAIN and EXPLAIN ANALYZE attach estimated
    and measured figures to the tree. *)

val to_string : t -> string
