open Mxra_relational
open Mxra_core
module Index = Mxra_ext.Index

let join_keys ~left_arity p =
  let classify (keys, residual) conjunct =
    match Pred.equi_join_pair ~left_arity conjunct with
    | Some (i, j) -> ((i, j - left_arity) :: keys, residual)
    | None -> (keys, conjunct :: residual)
  in
  let keys, residual =
    List.fold_left classify ([], []) (Pred.conjuncts p)
  in
  (List.rev keys, Pred.simplify (Pred.conj (List.rev residual)))

type join_algorithm =
  | Hash
  | Merge

(* --- index access-path extraction --------------------------------------- *)

(* MXRA_FORCE_INDEX=1 makes the planner take an index path whenever a
   candidate exists, regardless of cost — the CI leg that drags the
   whole suite across the index operators. *)
let force_index () =
  match Sys.getenv_opt "MXRA_FORCE_INDEX" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* [%i = lit] in either orientation. *)
let eq_literal = function
  | Pred.Cmp (Term.Eq, a, b) -> (
      match (Scalar.is_attr a, b) with
      | Some i, Scalar.Lit v -> Some (i, v)
      | _ -> (
          match (a, Scalar.is_attr b) with
          | Scalar.Lit v, Some i -> Some (i, v)
          | _ -> None))
  | _ -> None

let mirror = function
  | Term.Lt -> Term.Gt
  | Term.Le -> Term.Ge
  | Term.Gt -> Term.Lt
  | Term.Ge -> Term.Le
  | (Term.Eq | Term.Ne) as op -> op

(* [%i op lit] for a range comparison, op oriented attribute-first. *)
let range_literal = function
  | Pred.Cmp (op, a, b) -> (
      let oriented =
        match (Scalar.is_attr a, b) with
        | Some i, Scalar.Lit v -> Some (i, op, v)
        | _ -> (
            match (a, Scalar.is_attr b) with
            | Scalar.Lit v, Some i -> Some (i, mirror op, v)
            | _ -> None)
      in
      match oriented with
      | Some (_, (Term.Lt | Term.Le | Term.Gt | Term.Ge), _) -> oriented
      | Some (_, (Term.Eq | Term.Ne), _) | None -> None)
  | _ -> None

(* Find an equality on column [c]; returns the literal and the other
   conjuncts. *)
let find_eq_on c conjs =
  let rec go seen = function
    | [] -> None
    | conj :: more -> (
        match eq_literal conj with
        | Some (i, v) when i = c -> Some (v, List.rev_append seen more)
        | Some _ | None -> go (conj :: seen) more)
  in
  go [] conjs

(* Split [p] into an access for [def] plus residual conjuncts: a full
   key's worth of equalities for a hash index; an equality or a bound
   combination for an ordered one.  [None] when the index cannot answer
   any part of the condition. *)
let extract_access (def : Database.index_def) p =
  let conjs = Pred.conjuncts p in
  match def.idx_kind with
  | Database.Hash ->
      let rec take cols conjs_left acc =
        match cols with
        | [] -> Some (Index.Point (List.rev acc), conjs_left)
        | c :: rest -> (
            match find_eq_on c conjs_left with
            | None -> None
            | Some (v, remaining) -> take rest remaining (v :: acc))
      in
      take def.idx_cols conjs []
  | Database.Ordered -> (
      let c = List.hd def.idx_cols in
      match find_eq_on c conjs with
      | Some (v, rest) -> Some (Index.Point [ v ], rest)
      | None ->
          let bounds, others =
            List.partition_map
              (fun conj ->
                match range_literal conj with
                | Some (i, op, v) when i = c -> Either.Left (op, v)
                | Some _ | None -> Either.Right conj)
              conjs
          in
          if bounds = [] then None
          else
            (* Keep the strictest bound on each side; on a tie the
               exclusive bound is stricter. *)
            let tighter flip cur (v, incl) =
              match cur with
              | None -> Some { Index.b_value = v; b_incl = incl }
              | Some b ->
                  let cmp = flip (Value.compare v b.Index.b_value) in
                  if cmp > 0 then Some { Index.b_value = v; b_incl = incl }
                  else if cmp = 0 then
                    Some { b with Index.b_incl = b.Index.b_incl && incl }
                  else Some b
            in
            let lo, hi =
              List.fold_left
                (fun (lo, hi) (op, v) ->
                  match op with
                  | Term.Gt -> (tighter Fun.id lo (v, false), hi)
                  | Term.Ge -> (tighter Fun.id lo (v, true), hi)
                  | Term.Lt -> (lo, tighter Int.neg hi (v, false))
                  | Term.Le -> (lo, tighter Int.neg hi (v, true))
                  | Term.Eq | Term.Ne -> (lo, hi))
                (None, None) bounds
            in
            Some (Index.Range (lo, hi), others))

let index_keys_estimate ~stats name (def : Database.index_def) =
  match stats name with
  | Some s -> float_of_int (Stats.distinct_keys s def.idx_cols)
  | None -> 32.0

(* The cheapest index access path for σ_p(name), if any beats a scan
   (all candidates qualify under MXRA_FORCE_INDEX). *)
let choose_index_scan ~stats ~schemas ~indexes name p =
  let scored =
    List.filter_map
      (fun (def : Database.index_def) ->
        Option.map
          (fun (access, residual_conjs) ->
            let matching =
              Cost.estimate_cardinality ~stats ~schemas
                (Expr.Select
                   (Pred.conj (Physical.access_pred def access), Expr.Rel name))
            in
            let keys = index_keys_estimate ~stats name def in
            ((def, access, residual_conjs, matching, keys),
             Cost.index_probe_cost ~keys ~matching))
          (extract_access def p))
      (indexes name)
  in
  match scored with
  | [] -> None
  | first :: rest ->
      let (def, access, residual_conjs, matching, keys), _ =
        List.fold_left
          (fun ((_, cb) as best) ((_, c) as cand) ->
            if c < cb then cand else best)
          first rest
      in
      let total =
        Cost.estimate_cardinality ~stats ~schemas (Expr.Rel name)
      in
      if force_index () || Cost.index_scan_wins ~keys ~matching ~total then
        Some
          (Physical.Index_scan
             { def; access; residual = Pred.simplify (Pred.conj residual_conjs) })
      else None

let rec translate ~join_algorithm ~stats ~indexes env e =
  let recur = translate ~join_algorithm ~stats ~indexes env in
  match e with
  | Expr.Rel name -> Physical.Seq_scan name
  | Expr.Const r -> Physical.Const_scan r
  | Expr.Select (p, Expr.Product (e1, e2)) ->
      (* σ(E1 × E2) = E1 ⋈ E2 (Theorem 3.1): give the selection a chance
         to become join keys. *)
      translate_join ~join_algorithm ~stats ~indexes env p e1 e2
  | Expr.Select (p, (Expr.Rel name as e1)) -> (
      match choose_index_scan ~stats ~schemas:env ~indexes name p with
      | Some node -> node
      | None -> Physical.Filter (p, recur e1))
  | Expr.Select (p, e1) -> Physical.Filter (p, recur e1)
  | Expr.Project (exprs, e1) -> Physical.Project_op (exprs, recur e1)
  | Expr.Union (e1, e2) -> Physical.Union_all (recur e1, recur e2)
  | Expr.Diff (e1, e2) -> Physical.Hash_diff (recur e1, recur e2)
  | Expr.Intersect (e1, e2) -> Physical.Hash_intersect (recur e1, recur e2)
  | Expr.Product (e1, e2) -> Physical.Cross_product (recur e1, recur e2)
  | Expr.Join (p, e1, e2) ->
      translate_join ~join_algorithm ~stats ~indexes env p e1 e2
  | Expr.Unique e1 -> Physical.Hash_distinct (recur e1)
  | Expr.GroupBy (attrs, aggs, e1) ->
      Physical.Hash_aggregate (attrs, aggs, recur e1)

and translate_join ~join_algorithm ~stats ~indexes env p e1 e2 =
  let left_arity = Schema.arity (Typecheck.infer env e1) in
  let keys, residual = join_keys ~left_arity p in
  let left = translate ~join_algorithm ~stats ~indexes env e1 in
  (* An index nested-loop candidate: the inner operand is a base
     relation with an index whose every column is equated (by [keys])
     with some outer attribute.  Unconsumed key equalities rejoin the
     residual over the concatenated schema. *)
  let index_join_candidate () =
    match (keys, e2) with
    | _ :: _, Expr.Rel name ->
        let candidate (def : Database.index_def) =
          let rec collect cols outer consumed =
            match cols with
            | [] -> Some (List.rev outer, consumed)
            | c :: rest -> (
                match List.find_opt (fun (_, rk) -> rk = c) keys with
                | Some ((i, _) as pair) ->
                    collect rest (i :: outer) (pair :: consumed)
                | None -> None)
          in
          match collect def.idx_cols [] [] with
          | None -> None
          | Some (outer_keys, consumed) ->
              let leftover =
                List.filter (fun kp -> not (List.mem kp consumed)) keys
              in
              let leftover_conds =
                List.map
                  (fun (i, rk) ->
                    Pred.eq (Scalar.attr i) (Scalar.attr (rk + left_arity)))
                  leftover
              in
              Some
                (Physical.Index_join
                   {
                     def;
                     outer_keys;
                     left_arity;
                     residual =
                       Pred.simplify (Pred.conj (leftover_conds @ [ residual ]));
                     outer = left;
                   })
        in
        List.find_map
          (fun def ->
            match candidate def with
            | None -> None
            | Some node ->
                let outer_est =
                  Cost.estimate_cardinality ~stats ~schemas:env e1
                in
                let inner_est =
                  Cost.estimate_cardinality ~stats ~schemas:env e2
                in
                let keys_est = index_keys_estimate ~stats name def in
                if
                  force_index ()
                  || Cost.index_join_wins ~keys:keys_est ~outer:outer_est
                       ~inner:inner_est
                then Some node
                else None)
          (indexes name)
    | _ -> None
  in
  match index_join_candidate () with
  | Some node -> node
  | None -> (
      let right = translate ~join_algorithm ~stats ~indexes env e2 in
      match keys with
      | [] -> Physical.Nested_loop (p, left, right)
      | _ :: _ -> (
          let left_keys = List.map fst keys
          and right_keys = List.map snd keys in
          match join_algorithm with
          | Hash ->
              Physical.Hash_join
                { left_keys; right_keys; left_arity; residual; left; right }
          | Merge ->
              Physical.Merge_join
                { left_keys; right_keys; left_arity; residual; left; right }))

let plan_with ?(join_algorithm = Hash) ?(stats = fun _ -> None)
    ?(indexes = fun _ -> []) env e =
  (* Full static check up front so translation can trust schemas. *)
  ignore (Typecheck.infer env e);
  translate ~join_algorithm ~stats ~indexes env e

(* --- parallelization pass ----------------------------------------------- *)

let default_parallel_threshold = 512

(* How many cores this process can actually use.  MXRA_CORES overrides
   the probe so tests and cram scripts can pin plans to a core count the
   host does not have (in either direction). *)
let available_cores () =
  match Option.bind (Sys.getenv_opt "MXRA_CORES") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Stdlib.Domain.recommended_domain_count ()

(* Insert Exchange nodes above the operators the executor knows how to
   fragment — maximal σ/π pipelines, hash joins, hash aggregates — when
   the estimated input cardinality clears the profitability floor.
   Below it the partition/merge overhead dominates any per-tuple win.

   The pass is adaptive on three inputs: the host's core count caps the
   fragment count (one core ⇒ no Exchange at all — fragments would just
   queue behind each other plus pay partition/merge); the cost model
   turns the threshold into a per-fragment floor ({!Cost.exchange_floor});
   and measured Exchange outcomes ({!Mxra_ext.Parallel.Feedback}) raise
   or lower that floor as the process learns what actually pays here.
   An explicit [threshold] disables the feedback term so forced-parallel
   tests stay deterministic. *)
let parallelize ~stats ~schemas ~jobs ?cores ?threshold plan =
  let cores =
    match cores with Some c -> max 1 c | None -> available_cores ()
  in
  let parts = min jobs cores in
  if parts <= 1 then plan
  else
    let feedback_rows =
      match threshold with
      | Some _ -> None
      | None -> Mxra_ext.Parallel.Feedback.min_profitable_rows ()
    in
    let threshold =
      Option.value ~default:default_parallel_threshold threshold
    in
    let est p =
      Cost.estimate_cardinality ~stats ~schemas (Physical.to_logical p)
    in
    let thr = Cost.exchange_floor ~parts ~threshold ~feedback_rows in
    let exchange child = Physical.Exchange { parts; child } in
    (* A σ/π chain split into its source and a rebuilding context, so
       the whole pipeline lands under one Exchange. *)
    let rec split_pipeline = function
      | Physical.Filter (p, t) ->
          let src, rebuild = split_pipeline t in
          (src, fun s -> Physical.Filter (p, rebuild s))
      | Physical.Project_op (exprs, t) ->
          let src, rebuild = split_pipeline t in
          (src, fun s -> Physical.Project_op (exprs, rebuild s))
      | src -> (src, Fun.id)
    in
    let rec go plan =
      match plan with
      | Physical.Const_scan _ | Physical.Seq_scan _ | Physical.Index_scan _ ->
          plan
      | Physical.Index_join ({ outer; _ } as j) ->
          (* The probe side streams; only the outer subplan can
             fragment. *)
          Physical.Index_join { j with outer = go outer }
      | Physical.Filter _ | Physical.Project_op _ -> (
          let src, rebuild = split_pipeline plan in
          let src' = go src in
          let node = rebuild src' in
          match src' with
          | Physical.Exchange _ ->
              (* The source already runs fragmented; the pipeline
                 streams over its merged output rather than paying a
                 second partition/merge round. *)
              node
          | _ -> if est src >= thr then exchange node else node)
      | Physical.Hash_join ({ left; right; _ } as j) ->
          let node =
            Physical.Hash_join { j with left = go left; right = go right }
          in
          if est left +. est right >= thr then exchange node else node
      | Physical.Hash_aggregate (attrs, aggs, src) ->
          let node = Physical.Hash_aggregate (attrs, aggs, go src) in
          if est src >= thr then exchange node else node
      | Physical.Merge_join ({ left; right; _ } as j) ->
          Physical.Merge_join { j with left = go left; right = go right }
      | Physical.Nested_loop (p, l, r) -> Physical.Nested_loop (p, go l, go r)
      | Physical.Cross_product (l, r) -> Physical.Cross_product (go l, go r)
      | Physical.Union_all (l, r) -> Physical.Union_all (go l, go r)
      | Physical.Hash_diff (l, r) -> Physical.Hash_diff (go l, go r)
      | Physical.Hash_intersect (l, r) -> Physical.Hash_intersect (go l, go r)
      | Physical.Hash_distinct t -> Physical.Hash_distinct (go t)
      | Physical.Exchange { parts; child } ->
          Physical.Exchange { parts; child = go child }
    in
    go plan

let plan ?join_algorithm ?(jobs = 1) ?cores ?parallel_threshold db e =
  Mxra_obs.Trace.with_span "plan" (fun () ->
      let schemas = Typecheck.env_of_database db in
      let stats = Stats.env_of_database db in
      let p =
        plan_with ?join_algorithm ~stats
          ~indexes:(fun name -> Database.indexes_on name db)
          schemas e
      in
      let p =
        if jobs <= 1 then p
        else
          parallelize ~stats ~schemas ~jobs ?cores ?threshold:parallel_threshold
            p
      in
      Mxra_obs.Trace.add_attr "operators"
        (Mxra_obs.Trace.Int (Physical.size p));
      p)
