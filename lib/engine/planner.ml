open Mxra_core

let join_keys ~left_arity p =
  let classify (keys, residual) conjunct =
    match Pred.equi_join_pair ~left_arity conjunct with
    | Some (i, j) -> ((i, j - left_arity) :: keys, residual)
    | None -> (keys, conjunct :: residual)
  in
  let keys, residual =
    List.fold_left classify ([], []) (Pred.conjuncts p)
  in
  (List.rev keys, Pred.simplify (Pred.conj (List.rev residual)))

type join_algorithm =
  | Hash
  | Merge

let rec translate ~join_algorithm env e =
  match e with
  | Expr.Rel name -> Physical.Seq_scan name
  | Expr.Const r -> Physical.Const_scan r
  | Expr.Select (p, Expr.Product (e1, e2)) ->
      (* σ(E1 × E2) = E1 ⋈ E2 (Theorem 3.1): give the selection a chance
         to become join keys. *)
      translate_join ~join_algorithm env p e1 e2
  | Expr.Select (p, e1) ->
      Physical.Filter (p, translate ~join_algorithm env e1)
  | Expr.Project (exprs, e1) ->
      Physical.Project_op (exprs, translate ~join_algorithm env e1)
  | Expr.Union (e1, e2) ->
      Physical.Union_all
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Diff (e1, e2) ->
      Physical.Hash_diff
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Intersect (e1, e2) ->
      Physical.Hash_intersect
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Product (e1, e2) ->
      Physical.Cross_product
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Join (p, e1, e2) -> translate_join ~join_algorithm env p e1 e2
  | Expr.Unique e1 -> Physical.Hash_distinct (translate ~join_algorithm env e1)
  | Expr.GroupBy (attrs, aggs, e1) ->
      Physical.Hash_aggregate (attrs, aggs, translate ~join_algorithm env e1)

and translate_join ~join_algorithm env p e1 e2 =
  let left_arity = Mxra_relational.Schema.arity (Typecheck.infer env e1) in
  let keys, residual = join_keys ~left_arity p in
  let left = translate ~join_algorithm env e1
  and right = translate ~join_algorithm env e2 in
  match keys with
  | [] -> Physical.Nested_loop (p, left, right)
  | _ :: _ -> (
      let left_keys = List.map fst keys and right_keys = List.map snd keys in
      match join_algorithm with
      | Hash ->
          Physical.Hash_join
            { left_keys; right_keys; left_arity; residual; left; right }
      | Merge ->
          Physical.Merge_join
            { left_keys; right_keys; left_arity; residual; left; right })

let plan_with ?(join_algorithm = Hash) env e =
  (* Full static check up front so translation can trust schemas. *)
  ignore (Typecheck.infer env e);
  translate ~join_algorithm env e

(* --- parallelization pass ----------------------------------------------- *)

let default_parallel_threshold = 512

(* How many cores this process can actually use.  MXRA_CORES overrides
   the probe so tests and cram scripts can pin plans to a core count the
   host does not have (in either direction). *)
let available_cores () =
  match Option.bind (Sys.getenv_opt "MXRA_CORES") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Stdlib.Domain.recommended_domain_count ()

(* Insert Exchange nodes above the operators the executor knows how to
   fragment — maximal σ/π pipelines, hash joins, hash aggregates — when
   the estimated input cardinality clears the profitability floor.
   Below it the partition/merge overhead dominates any per-tuple win.

   The pass is adaptive on three inputs: the host's core count caps the
   fragment count (one core ⇒ no Exchange at all — fragments would just
   queue behind each other plus pay partition/merge); the cost model
   turns the threshold into a per-fragment floor ({!Cost.exchange_floor});
   and measured Exchange outcomes ({!Mxra_ext.Parallel.Feedback}) raise
   or lower that floor as the process learns what actually pays here.
   An explicit [threshold] disables the feedback term so forced-parallel
   tests stay deterministic. *)
let parallelize ~stats ~schemas ~jobs ?cores ?threshold plan =
  let cores =
    match cores with Some c -> max 1 c | None -> available_cores ()
  in
  let parts = min jobs cores in
  if parts <= 1 then plan
  else
    let feedback_rows =
      match threshold with
      | Some _ -> None
      | None -> Mxra_ext.Parallel.Feedback.min_profitable_rows ()
    in
    let threshold =
      Option.value ~default:default_parallel_threshold threshold
    in
    let est p =
      Cost.estimate_cardinality ~stats ~schemas (Physical.to_logical p)
    in
    let thr = Cost.exchange_floor ~parts ~threshold ~feedback_rows in
    let exchange child = Physical.Exchange { parts; child } in
    (* A σ/π chain split into its source and a rebuilding context, so
       the whole pipeline lands under one Exchange. *)
    let rec split_pipeline = function
      | Physical.Filter (p, t) ->
          let src, rebuild = split_pipeline t in
          (src, fun s -> Physical.Filter (p, rebuild s))
      | Physical.Project_op (exprs, t) ->
          let src, rebuild = split_pipeline t in
          (src, fun s -> Physical.Project_op (exprs, rebuild s))
      | src -> (src, Fun.id)
    in
    let rec go plan =
      match plan with
      | Physical.Const_scan _ | Physical.Seq_scan _ -> plan
      | Physical.Filter _ | Physical.Project_op _ -> (
          let src, rebuild = split_pipeline plan in
          let src' = go src in
          let node = rebuild src' in
          match src' with
          | Physical.Exchange _ ->
              (* The source already runs fragmented; the pipeline
                 streams over its merged output rather than paying a
                 second partition/merge round. *)
              node
          | _ -> if est src >= thr then exchange node else node)
      | Physical.Hash_join ({ left; right; _ } as j) ->
          let node =
            Physical.Hash_join { j with left = go left; right = go right }
          in
          if est left +. est right >= thr then exchange node else node
      | Physical.Hash_aggregate (attrs, aggs, src) ->
          let node = Physical.Hash_aggregate (attrs, aggs, go src) in
          if est src >= thr then exchange node else node
      | Physical.Merge_join ({ left; right; _ } as j) ->
          Physical.Merge_join { j with left = go left; right = go right }
      | Physical.Nested_loop (p, l, r) -> Physical.Nested_loop (p, go l, go r)
      | Physical.Cross_product (l, r) -> Physical.Cross_product (go l, go r)
      | Physical.Union_all (l, r) -> Physical.Union_all (go l, go r)
      | Physical.Hash_diff (l, r) -> Physical.Hash_diff (go l, go r)
      | Physical.Hash_intersect (l, r) -> Physical.Hash_intersect (go l, go r)
      | Physical.Hash_distinct t -> Physical.Hash_distinct (go t)
      | Physical.Exchange { parts; child } ->
          Physical.Exchange { parts; child = go child }
    in
    go plan

let plan ?join_algorithm ?(jobs = 1) ?cores ?parallel_threshold db e =
  Mxra_obs.Trace.with_span "plan" (fun () ->
      let schemas = Typecheck.env_of_database db in
      let p = plan_with ?join_algorithm schemas e in
      let p =
        if jobs <= 1 then p
        else
          parallelize
            ~stats:(Stats.env_of_database db)
            ~schemas ~jobs ?cores ?threshold:parallel_threshold p
      in
      Mxra_obs.Trace.add_attr "operators"
        (Mxra_obs.Trace.Int (Physical.size p));
      p)
