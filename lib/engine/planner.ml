open Mxra_core

let join_keys ~left_arity p =
  let classify (keys, residual) conjunct =
    match Pred.equi_join_pair ~left_arity conjunct with
    | Some (i, j) -> ((i, j - left_arity) :: keys, residual)
    | None -> (keys, conjunct :: residual)
  in
  let keys, residual =
    List.fold_left classify ([], []) (Pred.conjuncts p)
  in
  (List.rev keys, Pred.simplify (Pred.conj (List.rev residual)))

type join_algorithm =
  | Hash
  | Merge

let rec translate ~join_algorithm env e =
  match e with
  | Expr.Rel name -> Physical.Seq_scan name
  | Expr.Const r -> Physical.Const_scan r
  | Expr.Select (p, Expr.Product (e1, e2)) ->
      (* σ(E1 × E2) = E1 ⋈ E2 (Theorem 3.1): give the selection a chance
         to become join keys. *)
      translate_join ~join_algorithm env p e1 e2
  | Expr.Select (p, e1) ->
      Physical.Filter (p, translate ~join_algorithm env e1)
  | Expr.Project (exprs, e1) ->
      Physical.Project_op (exprs, translate ~join_algorithm env e1)
  | Expr.Union (e1, e2) ->
      Physical.Union_all
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Diff (e1, e2) ->
      Physical.Hash_diff
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Intersect (e1, e2) ->
      Physical.Hash_intersect
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Product (e1, e2) ->
      Physical.Cross_product
        (translate ~join_algorithm env e1, translate ~join_algorithm env e2)
  | Expr.Join (p, e1, e2) -> translate_join ~join_algorithm env p e1 e2
  | Expr.Unique e1 -> Physical.Hash_distinct (translate ~join_algorithm env e1)
  | Expr.GroupBy (attrs, aggs, e1) ->
      Physical.Hash_aggregate (attrs, aggs, translate ~join_algorithm env e1)

and translate_join ~join_algorithm env p e1 e2 =
  let left_arity = Mxra_relational.Schema.arity (Typecheck.infer env e1) in
  let keys, residual = join_keys ~left_arity p in
  let left = translate ~join_algorithm env e1
  and right = translate ~join_algorithm env e2 in
  match keys with
  | [] -> Physical.Nested_loop (p, left, right)
  | _ :: _ -> (
      let left_keys = List.map fst keys and right_keys = List.map snd keys in
      match join_algorithm with
      | Hash ->
          Physical.Hash_join
            { left_keys; right_keys; left_arity; residual; left; right }
      | Merge ->
          Physical.Merge_join
            { left_keys; right_keys; left_arity; residual; left; right })

let plan_with ?(join_algorithm = Hash) env e =
  (* Full static check up front so translation can trust schemas. *)
  ignore (Typecheck.infer env e);
  translate ~join_algorithm env e

let plan ?join_algorithm db e =
  Mxra_obs.Trace.with_span "plan" (fun () ->
      let p = plan_with ?join_algorithm (Typecheck.env_of_database db) e in
      Mxra_obs.Trace.add_attr "operators"
        (Mxra_obs.Trace.Int (Physical.size p));
      p)
