(** The system catalog: reserved [sys.*] names served as ordinary bag
    relations, materialized on attach from the live telemetry
    registries.

    {ul
    {- [sys.statements] — {!Mxra_obs.Stmt_stats}: one row per statement
       fingerprint (calls, rows, tuples, WAL bytes, lock-wait,
       total/min/max/p50/p99 wall ms, last query id).}
    {- [sys.operators] — {!Mxra_obs.Op_stats}: cumulative per physical
       operator kind.}
    {- [sys.relations] — the database catalog itself: name, arity,
       cardinality, support size, temporary flag (sys.* rows excluded).}
    {- [sys.indexes] — secondary-index definitions with live structure
       statistics: name, relation, columns, kind, distinct keys, posted
       entries ({!Mxra_ext.Index}).}
    {- [sys.locks] — counter/value pairs from the probe registered
       under ["sys.locks"] (the host wires
       [Mxra_concurrency.Scheduler.telemetry]); empty otherwise.}
    {- [sys.pool] — counter/value pairs from the probe registered under
       ["sys.pool"] ([Mxra_ext.Pool.telemetry] by default).}
    {- [sys.series] — latest point per series of the registered
       {!Mxra_obs.Timeseries} store; empty when none registered.}
    {- [sys.ash] — the Active Session History ring
       ({!Mxra_obs.Ash.snapshot}): one row per sample or wait event
       (timestamp, qid, fingerprint, wait class, detail, wait ms,
       kind); identical samples fold into one tuple with
       multiplicity.}
    {- [sys.progress] — live statements from the activity registry
       ({!Mxra_obs.Ash.progress}): current operator, chunks/rows
       produced at the plan root, planner estimate and percent,
       elapsed ms, current wait class.}}

    [attach] binds each as a {e temporary} relation
    ({!Mxra_relational.Database.assign_temporary}), so the catalog is a
    per-query snapshot: invisible to durability, excluded from
    persistent schemas, and indistinguishable from any other relation
    downstream of name resolution. *)

open Mxra_relational
open Mxra_core

exception Reserved of string
(** Raised by {!check_not_reserved}: [sys.*] names cannot be created
    or assigned. *)

val is_sys_name : string -> bool
(** True iff the name starts with ["sys."]. *)

val check_not_reserved : string -> unit
(** @raise Reserved when the name is a [sys.*] name. *)

val names : unit -> string list
(** The reserved catalog names. *)

val schema : string -> Schema.t option
(** Schema of a reserved name; [None] for anything else (including
    unknown [sys.*] names). *)

val materialize : Database.t -> string -> Relation.t option
(** Snapshot one catalog relation right now.  [db] feeds
    [sys.relations]; the registries feed the rest. *)

val mentions : Mxra_core.Expr.t -> bool
(** Does the expression scan any [sys.*]-prefixed relation name? *)

val attach : Database.t -> Database.t
(** Materialize every catalog relation and bind each as a temporary.
    A persistent relation already holding a [sys.*] name is never
    shadowed. *)

val attach_for : Database.t -> Mxra_core.Expr.t -> Database.t
(** [attach] when {!mentions}, [db] unchanged otherwise — so queries
    that never touch the catalog pay one name-list walk.  Unknown
    [sys.*] names stay unbound and scan to the ordinary
    [Database.Unknown_relation]. *)

val env : Database.t -> Typecheck.env
(** [Typecheck.env_of_database db] extended with the catalog schemas —
    what the SQL translator needs to resolve [FROM sys.statements]
    before attachment happens. *)

val set_probe : string -> (unit -> (string * float) list) -> unit
(** Register the counter source for ["sys.locks"] / ["sys.pool"].  A
    probe that raises yields an empty relation — telemetry never takes
    a query down. *)

val set_series_store : Mxra_obs.Timeseries.t option -> unit
(** Register the live timeseries store behind [sys.series]. *)
