(* The system catalog: telemetry served back through the algebra.

   Reserved [sys.*] names resolve to ordinary bag relations that are
   materialized *on attach* from the live registries — the statement
   stats registry, the per-operator registry, the database catalog
   itself, the domain pool, and whatever lock / timeseries sources the
   host process registers.  [attach] binds them as temporary relations
   on a [Database.t], so downstream of name resolution nothing in the
   optimizer → planner → exec pipeline knows they are special: they
   select, join, project and aggregate like any other relation, with
   snapshot semantics (the catalog is frozen at attach time, one
   consistent instant per query).

   Layering: mxra_engine cannot see the scheduler or the store (they
   sit above it), so [sys.locks] and [sys.series] are fed through
   registered closures — the same inversion the {!Mxra_obs.Sampler}
   probes use.  [sys.pool] comes straight from [Mxra_ext.Pool], which
   the engine already depends on. *)

open Mxra_relational
open Mxra_core
module Obs = Mxra_obs

exception Reserved of string
(* Raised when a statement tries to create or assign a [sys.*] name. *)

let prefix = "sys."

let is_sys_name name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let check_not_reserved name = if is_sys_name name then raise (Reserved name)

(* --- registered sources ------------------------------------------------- *)

(* Counter-shaped sources for sys.locks: name -> probe.  The host
   registers e.g. Scheduler.telemetry under "sys.locks". *)
let probes : (string, unit -> (string * float) list) Hashtbl.t = Hashtbl.create 4

let set_probe name probe = Hashtbl.replace probes name probe

(* The pool is below the engine, so its source needs no host wiring. *)
let () = set_probe "sys.pool" Mxra_ext.Pool.telemetry

let series_store : Obs.Timeseries.t option ref = ref None
let set_series_store s = series_store := s

(* --- schemas ------------------------------------------------------------ *)

open Domain

let statements_schema =
  Schema.of_list
    [
      ("fingerprint", DStr);
      ("statement", DStr);
      ("lang", DStr);
      ("calls", DInt);
      ("rows", DInt);
      ("tuples", DInt);
      ("wal_bytes", DInt);
      ("lock_wait_ms", DFloat);
      ("conflicts", DInt);
      ("total_ms", DFloat);
      ("min_ms", DFloat);
      ("max_ms", DFloat);
      ("p50_ms", DFloat);
      ("p99_ms", DFloat);
      ("last_qid", DStr);
    ]

let operators_schema =
  Schema.of_list
    [
      ("op", DStr);
      ("execs", DInt);
      ("elems", DInt);
      ("rows", DInt);
      ("cells", DInt);
      ("wall_ms", DFloat);
    ]

let relations_schema =
  Schema.of_list
    [
      ("name", DStr);
      ("arity", DInt);
      ("tuples", DInt);
      ("distinct", DInt);
      ("temporary", DBool);
    ]

let counters_schema = Schema.of_list [ ("counter", DStr); ("value", DFloat) ]

let indexes_schema =
  Schema.of_list
    [
      ("name", DStr);
      ("relation", DStr);
      ("columns", DStr);
      ("kind", DStr);
      ("keys", DInt);
      ("entries", DInt);
    ]

let series_schema =
  Schema.of_list
    [ ("series", DStr); ("t_s", DFloat); ("value", DFloat); ("points", DInt) ]

let ash_schema =
  Schema.of_list
    [
      ("t_s", DFloat);
      ("qid", DStr);
      ("fingerprint", DStr);
      ("wait_class", DStr);
      ("detail", DStr);
      ("wait_ms", DFloat);
      ("kind", DStr);
    ]

let progress_schema =
  Schema.of_list
    [
      ("qid", DStr);
      ("fingerprint", DStr);
      ("lang", DStr);
      ("statement", DStr);
      ("operator", DStr);
      ("chunks", DInt);
      ("rows", DInt);
      ("est_rows", DFloat);
      ("pct", DFloat);
      ("elapsed_ms", DFloat);
      ("wait_class", DStr);
    ]

let schemas =
  [
    ("sys.statements", statements_schema);
    ("sys.operators", operators_schema);
    ("sys.relations", relations_schema);
    ("sys.indexes", indexes_schema);
    ("sys.locks", counters_schema);
    ("sys.pool", counters_schema);
    ("sys.series", series_schema);
    ("sys.ash", ash_schema);
    ("sys.progress", progress_schema);
  ]

let names () = List.map fst schemas
let schema name = List.assoc_opt name schemas

(* --- materialization ---------------------------------------------------- *)

let str s = Value.Str s
let int n = Value.Int n
let flt f = Value.Float (if Float.is_nan f then 0.0 else f)

let statements_now () =
  Relation.of_counted_list statements_schema
    (List.map
       (fun (r : Obs.Stmt_stats.row) ->
         ( Tuple.of_list
             [
               str r.r_fingerprint;
               str r.r_text;
               str r.r_lang;
               int r.r_calls;
               int r.r_rows;
               int r.r_tuples;
               int r.r_wal_bytes;
               flt r.r_lock_wait_ms;
               int r.r_conflicts;
               flt r.r_total_ms;
               flt r.r_min_ms;
               flt r.r_max_ms;
               flt r.r_p50_ms;
               flt r.r_p99_ms;
               str r.r_last_qid;
             ],
           1 ))
       (Obs.Stmt_stats.snapshot ()))

let operators_now () =
  Relation.of_counted_list operators_schema
    (List.map
       (fun (r : Obs.Op_stats.row) ->
         ( Tuple.of_list
             [
               str r.o_op;
               int r.o_execs;
               int r.o_elems;
               int r.o_rows;
               int r.o_cells;
               flt r.o_wall_ms;
             ],
           1 ))
       (Obs.Op_stats.snapshot ()))

(* The catalog of the *base* database: sys.* temporaries themselves are
   excluded so the relation describes user data, not its own scaffolding. *)
let relations_now db =
  Relation.of_counted_list relations_schema
    (List.filter_map
       (fun name ->
         if is_sys_name name then None
         else
           let r = Database.find name db in
           Some
             ( Tuple.of_list
                 [
                   str name;
                   int (Schema.arity (Relation.schema r));
                   int (Relation.cardinal r);
                   int (Relation.support_size r);
                   Value.Bool (Database.is_temporary name db);
                 ],
               1 ))
       (Database.relation_names db))

(* Forces each index structure (cached or built on the spot), so keys
   and entries reflect the relation contents at attach time. *)
let indexes_now db =
  Relation.of_counted_list indexes_schema
    (List.map
       (fun (d : Database.index_def) ->
         let idx = Mxra_ext.Index.get d (Database.find d.idx_rel db) in
         ( Tuple.of_list
             [
               str d.idx_name;
               str d.idx_rel;
               str
                 (String.concat ","
                    (List.map (fun c -> Printf.sprintf "%%%d" c) d.idx_cols));
               str
                 (match d.idx_kind with
                 | Database.Hash -> "hash"
                 | Database.Ordered -> "ordered");
               int (Mxra_ext.Index.distinct_keys idx);
               int (Mxra_ext.Index.entry_count idx);
             ],
           1 ))
       (Database.index_defs db))

let counters_now name =
  let samples =
    match Hashtbl.find_opt probes name with
    | None -> []
    | Some probe -> ( try probe () with _ -> [])
  in
  Relation.of_counted_list counters_schema
    (List.map (fun (k, v) -> (Tuple.of_list [ str k; flt v ], 1)) samples)

let series_now () =
  let rows =
    match !series_store with
    | None -> []
    | Some ts ->
        List.filter_map
          (fun name ->
            match Obs.Timeseries.latest ts name with
            | None -> None
            | Some (t_s, v) ->
                let points = Array.length (Obs.Timeseries.window ts name) in
                Some
                  ( Tuple.of_list [ str name; flt t_s; flt v; int points ],
                    1 ))
          (Obs.Timeseries.names ts)
  in
  Relation.of_counted_list series_schema rows

(* Equal samples in the ring (same wait, same instant) fold into one
   tuple with multiplicity > 1 — ASH is a bag in the paper's sense, and
   of_counted_list sums duplicate tuples' counts. *)
let ash_now () =
  Relation.of_counted_list ash_schema
    (List.map
       (fun (s : Obs.Ash.sample) ->
         ( Tuple.of_list
             [
               flt s.a_t_s;
               str s.a_qid;
               str s.a_fingerprint;
               str (Obs.Wait.name s.a_class);
               str s.a_detail;
               flt s.a_wait_ms;
               str s.a_kind;
             ],
           1 ))
       (Obs.Ash.snapshot ()))

let progress_now () =
  Relation.of_counted_list progress_schema
    (List.map
       (fun (p : Obs.Ash.progress) ->
         ( Tuple.of_list
             [
               str p.p_qid;
               str p.p_fingerprint;
               str p.p_lang;
               str p.p_text;
               str p.p_operator;
               int p.p_chunks;
               int p.p_rows;
               flt p.p_est_rows;
               flt p.p_pct;
               flt p.p_elapsed_ms;
               str p.p_wait;
             ],
           1 ))
       (Obs.Ash.progress ()))

let materialize db name =
  match name with
  | "sys.statements" -> Some (statements_now ())
  | "sys.operators" -> Some (operators_now ())
  | "sys.relations" -> Some (relations_now db)
  | "sys.indexes" -> Some (indexes_now db)
  | "sys.locks" -> Some (counters_now "sys.locks")
  | "sys.pool" -> Some (counters_now "sys.pool")
  | "sys.series" -> Some (series_now ())
  | "sys.ash" -> Some (ash_now ())
  | "sys.progress" -> Some (progress_now ())
  | _ -> None

(* --- attachment --------------------------------------------------------- *)

let mentions e = List.exists is_sys_name (Expr.relations e)

let attach db =
  List.fold_left
    (fun db (name, _) ->
      (* A persistent relation squatting on a sys.* name (only possible
         through pre-catalog snapshots) wins: never shadow user data. *)
      if Database.mem name db && not (Database.is_temporary name db) then db
      else
        match materialize db name with
        | Some r -> Database.assign_temporary name r db
        | None -> db)
    db schemas

(* Attach only when the expression actually scans a sys.* name: every
   other query pays one list walk over its relation names and nothing
   else.  Unknown sys.* names ("sys.nonsense") are left unresolved on
   purpose — the scan then raises the ordinary
   [Database.Unknown_relation], exactly like any other missing name. *)
let attach_for db e = if mentions e then attach db else db

let env db =
  let base = Typecheck.env_of_database db in
  fun name -> (match base name with Some s -> Some s | None -> schema name)
