open Mxra_relational
open Mxra_core
module Trace = Mxra_obs.Trace
module Ash = Mxra_obs.Ash
module Pool = Mxra_ext.Pool
module Index = Mxra_ext.Index
module Feedback = Mxra_ext.Parallel.Feedback

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* --- incremental aggregate accumulators ------------------------------- *)

type agg_state =
  | S_cnt of int
  | S_sum_int of int
  | S_min of Value.t option
  | S_max of Value.t option
  | S_column of Aggregate.kind * Domain.t * (Value.t * int) list
      (* Buffered fallback delegating to the reference computation, used
         wherever incremental folding could disagree with the formal
         semantics in the last float ulp (AVG, float SUM, VAR, STDDEV);
         Aggregate canonicalises the column order internally, so engine
         and reference agree bit for bit. *)

let initial_state kind domain =
  match (kind, domain) with
  | Aggregate.Cnt, _ -> S_cnt 0
  | Aggregate.Sum, Domain.DFloat -> S_column (kind, domain, [])
  | Aggregate.Sum, (Domain.DInt | Domain.DStr | Domain.DBool) -> S_sum_int 0
  | Aggregate.Avg, _ -> S_column (kind, domain, [])
  | Aggregate.Min, _ -> S_min None
  | Aggregate.Max, _ -> S_max None
  | (Aggregate.Var | Aggregate.Stddev), _ -> S_column (kind, domain, [])

let update_state state v n =
  match state with
  | S_cnt c -> S_cnt (c + n)
  | S_sum_int s -> (
      match v with
      | Value.Int x -> S_sum_int (s + (x * n))
      | Value.Float _ | Value.Str _ | Value.Bool _ ->
          raise (Scalar.Eval_error "SUM over a non-integer value"))
  | S_min best -> (
      match best with
      | None -> S_min (Some v)
      | Some w ->
          S_min (Some (if Value.compare_same_domain v w < 0 then v else w)))
  | S_max best -> (
      match best with
      | None -> S_max (Some v)
      | Some w ->
          S_max (Some (if Value.compare_same_domain v w > 0 then v else w)))
  | S_column (kind, domain, column) -> S_column (kind, domain, (v, n) :: column)

let finalize_state = function
  | S_cnt c -> Value.Int c
  | S_sum_int s -> Value.Int s
  | S_min None -> raise (Aggregate.Undefined Aggregate.Min)
  | S_min (Some v) -> v
  | S_max None -> raise (Aggregate.Undefined Aggregate.Max)
  | S_max (Some v) -> v
  | S_column (kind, domain, column) -> Aggregate.compute_for domain kind column

(* A fragment's output, produced on a pool lane.  The lane id and the
   measured interval become a per-worker span in the trace (emitted from
   the coordinating domain — sinks are not required to be thread-safe),
   so Chrome/Perfetto shows one lane per domain. *)
type fragment_out = {
  frag_rows : (Tuple.t * int) array;
  frag_lane : int;
  frag_start : float;
  frag_dur : float;
}

(* --- chunked streams --------------------------------------------------- *)

(* The executor's unit of data flow is a [chunk]: a non-empty array of
   counted tuples.  Operators process a chunk in a tight loop, so the
   per-element cost of a lazy [Seq] — one closure and one [Cons] cell
   per tuple — is paid once per chunk instead.  On the spine of a
   pipeline chunks hold at most [chunk_size] elements, but operators
   that naturally produce bigger batches (a probe chunk fanning out
   against a hash table, an Exchange fragment's whole output) may emit
   longer ones: the only invariant is that chunks are non-empty.

   A chunk stream is consumed at most once per materialisation; the
   probe-side operators reuse one scratch buffer across chunks, so
   interleaving two traversals of the same stream is not supported
   (materialise instead). *)

type chunk = (Tuple.t * int) array

(* 255 elements + header = 256 words, the largest array the OCaml
   runtime still allocates on the minor heap (Max_young_wosize).  Bigger
   chunks go straight to the major heap, every store into them pays the
   slow write-barrier path, and the tuples they hold get promoted at the
   next minor collection — measured on E15 as twice the major-heap
   allocation and a ~20% slowdown at 1024. *)
let default_chunk_size = 255
let chunk_ref = ref default_chunk_size
let set_chunk_size n = chunk_ref := max 1 n
let chunk_size () = !chunk_ref

let () =
  (* MXRA_CHUNK_SIZE=1 degrades every chunk to a single element — the CI
     leg that drags all tests across the chunk-boundary edge cases. *)
  match Option.bind (Sys.getenv_opt "MXRA_CHUNK_SIZE") int_of_string_opt with
  | Some n when n >= 1 -> chunk_ref := n
  | Some _ | None -> ()

(* A growable row buffer (OCaml 5.1 has no Stdlib.Dynarray yet): the
   expanding operators fill one of these per input chunk and flush it as
   an output chunk, reusing the backing store across chunks. *)
module Vec = struct
  type t = { mutable arr : chunk; mutable len : int }

  let dummy = (Tuple.unit, 0)
  let create n = { arr = Array.make (max 1 n) dummy; len = 0 }

  let push v x =
    (if v.len = Array.length v.arr then begin
       let bigger = Array.make (2 * v.len) dummy in
       Array.blit v.arr 0 bigger 0 v.len;
       v.arr <- bigger
     end);
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  (* Contents as a chunk; the vector resets for reuse.  An exactly-full
     vector hands over its backing array instead of copying. *)
  let flush v =
    let c =
      if v.len = Array.length v.arr then begin
        let a = v.arr in
        v.arr <- Array.make (Array.length a) dummy;
        a
      end
      else Array.sub v.arr 0 v.len
    in
    v.len <- 0;
    c
end

(* Cut a counted-tuple sequence into chunks of [size] (the last may be
   shorter), pulling lazily: used above the table-driven operators whose
   outputs are hashtable traversals. *)
let chunks_of_seq size s =
  let rec next s () =
    match s () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
        let buf = Array.make size x in
        let n = ref 1 in
        let rec fill s =
          if !n = size then s
          else
            match s () with
            | Seq.Nil -> Seq.empty
            | Seq.Cons (x, rest) ->
                buf.(!n) <- x;
                incr n;
                fill rest
        in
        let rest = fill rest in
        let c = if !n = size then buf else Array.sub buf 0 !n in
        Seq.Cons (c, next rest)
  in
  next s

(* Scans chunk lazily: materialising a scan's chunk list up front would
   keep every chunk live for the whole query, promoting its tuples out
   of the nursery at each minor collection (measured on E15 as double
   the promoted words). *)
let chunks_of_bag size bag =
  chunks_of_seq size (Relation.Bag.to_counted_seq bag)

let concat_chunks cs = Array.concat (List.of_seq cs)

(* --- plan execution ---------------------------------------------------- *)

(* Collapse a chunk stream into a per-tuple count table. *)
let count_table chunks =
  let table = TH.create 64 in
  Seq.iter
    (Array.iter (fun (t, n) ->
         match TH.find_opt table t with
         | Some c -> TH.replace table t (c + n)
         | None -> TH.add table t n))
    chunks;
  table

(* Instrumentation hooks.  [around node thunk] wraps the construction of
   an operator's output chunk stream (eager work — hash builds, sorts,
   scan chunking — happens inside the thunk) and may wrap the stream
   itself, seeing every chunk the operator emits; summing the chunk
   contents over operators measures the tuple traffic of the plan, and
   weighting by arity measures the data volume.  [observe node key
   value] reports an operator-specific gauge (hash-build size, group
   count, materialised inner cardinality). *)
type hooks = {
  around : Physical.t -> (unit -> chunk Seq.t) -> chunk Seq.t;
  observe : Physical.t -> string -> int -> unit;
}

let no_hooks = { around = (fun _ f -> f ()); observe = (fun _ _ _ -> ()) }

(* Live-progress hooks, composed over whatever instrumentation is
   already in place: when a statement registered itself in the activity
   registry ({!Mxra_obs.Ash.with_slot} around the execution), every
   chunk any operator emits stamps that operator as the one currently
   producing, and chunks leaving the plan [root] advance the
   statement's row/chunk counters — sys.progress moves while the query
   runs, at chunk granularity.  With no ambient slot (registry off, or
   a bare [run]) the hooks are returned untouched: the hot path pays
   nothing. *)
let with_progress root base =
  match Ash.current () with
  | None -> base
  | Some slot ->
      {
        base with
        around =
          (fun p thunk ->
            let s = base.around p thunk in
            let kind = Physical.kind p in
            if p == root then
              Seq.map
                (fun c ->
                  Ash.set_operator slot kind;
                  Ash.advance slot
                    ~rows:(Array.fold_left (fun acc (_, n) -> acc + n) 0 c);
                  c)
                s
            else
              Seq.map
                (fun c ->
                  Ash.set_operator slot kind;
                  c)
                s);
      }

let rec exec ~hooks ~size db plan : chunk Seq.t =
  hooks.around plan (fun () -> exec_node ~hooks ~size db plan)

and exec_node ~hooks ~size db plan : chunk Seq.t =
  match plan with
  | Physical.Const_scan r -> chunks_of_bag size (Relation.bag r)
  | Physical.Seq_scan name ->
      chunks_of_bag size (Relation.bag (Database.find name db))
  | Physical.Index_scan { def; access; residual } ->
      let idx = Index.get def (Database.find def.idx_rel db) in
      hooks.observe plan "keys" (Index.distinct_keys idx);
      let matches = Index.probe idx access in
      let matches =
        match residual with
        | Pred.True -> matches
        | p -> Seq.filter (fun (t, _) -> Pred.eval t p) matches
      in
      chunks_of_seq size matches
  | Physical.Index_join { def; outer_keys; residual; outer; _ } ->
      (* Probe the inner relation's index once per outer row — no build
         phase; the structure is shared via the index cache. *)
      let idx = Index.get def (Database.find def.idx_rel db) in
      hooks.observe plan "keys" (Index.distinct_keys idx);
      let out = Vec.create size in
      let expand c =
        let outs = ref [] in
        let push x =
          Vec.push out x;
          if out.Vec.len >= size then outs := Vec.flush out :: !outs
        in
        Array.iter
          (fun (ltuple, ln) ->
            let key = List.map (fun i -> Tuple.attr ltuple i) outer_keys in
            Relation.Bag.iter
              (fun rtuple rn ->
                let combined = Tuple.concat ltuple rtuple in
                if Pred.eval combined residual then push (combined, ln * rn))
              (Index.probe_point idx key))
          c;
        if out.Vec.len > 0 then outs := Vec.flush out :: !outs;
        List.to_seq (List.rev !outs)
      in
      Seq.concat_map expand (exec ~hooks ~size db outer)
  | Physical.Filter (p, t) ->
      Seq.filter_map
        (fun c ->
          let n = Array.length c in
          let out = Array.make n c.(0) in
          let k = ref 0 in
          for i = 0 to n - 1 do
            let (tuple, _) as x = c.(i) in
            if Pred.eval tuple p then begin
              out.(!k) <- x;
              incr k
            end
          done;
          if !k = 0 then None
          else if !k = n then Some out
          else Some (Array.sub out 0 !k))
        (exec ~hooks ~size db t)
  | Physical.Project_op (exprs, t) ->
      let image tuple = Tuple.of_list (List.map (Scalar.eval tuple) exprs) in
      Seq.map
        (fun c -> Array.map (fun (tuple, n) -> (image tuple, n)) c)
        (exec ~hooks ~size db t)
  | Physical.Hash_join { left_keys; right_keys; residual; left; right; _ } ->
      (* Build on the right, probe (pipelined, chunk at a time) from the
         left. *)
      let table = TH.create 256 in
      let entries = ref 0 in
      Seq.iter
        (Array.iter (fun (tuple, n) ->
             let key = Tuple.project right_keys tuple in
             let existing = Option.value ~default:[] (TH.find_opt table key) in
             incr entries;
             TH.replace table key ((tuple, n) :: existing)))
        (exec ~hooks ~size db right);
      hooks.observe plan "build" !entries;
      hooks.observe plan "keys" (TH.length table);
      let out = Vec.create size in
      let expand c =
        let outs = ref [] in
        let push x =
          Vec.push out x;
          if out.Vec.len >= size then outs := Vec.flush out :: !outs
        in
        Array.iter
          (fun (ltuple, ln) ->
            match TH.find_opt table (Tuple.project left_keys ltuple) with
            | None -> ()
            | Some matches ->
                List.iter
                  (fun (rtuple, rn) ->
                    let combined = Tuple.concat ltuple rtuple in
                    if Pred.eval combined residual then
                      push (combined, ln * rn))
                  matches)
          c;
        if out.Vec.len > 0 then outs := Vec.flush out :: !outs;
        List.to_seq (List.rev !outs)
      in
      Seq.concat_map expand (exec ~hooks ~size db left)
  | Physical.Merge_join { left_keys; right_keys; residual; left; right; _ } ->
      (* Sort both inputs by their key projections and merge key groups.
         Both sides materialise; output is emitted lazily per group
         pair. *)
      let keyed keys chunks =
        let rows = concat_chunks chunks in
        let arr = Array.map (fun (t, n) -> (Tuple.project keys t, t, n)) rows in
        Array.sort (fun (k1, _, _) (k2, _, _) -> Tuple.compare k1 k2) arr;
        arr
      in
      let ls = keyed left_keys (exec ~hooks ~size db left) in
      let rs = keyed right_keys (exec ~hooks ~size db right) in
      hooks.observe plan "sorted-left" (Array.length ls);
      hooks.observe plan "sorted-right" (Array.length rs);
      let group arr i =
        let key, _, _ = arr.(i) in
        let rec last j =
          if j + 1 < Array.length arr
             && Tuple.compare key (let k, _, _ = arr.(j + 1) in k) = 0
          then last (j + 1)
          else j
        in
        (key, last i)
      in
      let out = Vec.create size in
      let rec merge i j () =
        if i >= Array.length ls || j >= Array.length rs then Seq.Nil
        else
          let lk, li = group ls i in
          let rk, rj = group rs j in
          let c = Tuple.compare lk rk in
          if c < 0 then merge (li + 1) j ()
          else if c > 0 then merge i (rj + 1) ()
          else begin
            (* Output chunks per matching group pair, re-chunked at
               [size] so large groups stay nursery-sized. *)
            let outs = ref [] in
            let push x =
              Vec.push out x;
              if out.Vec.len >= size then outs := Vec.flush out :: !outs
            in
            for a = i to li do
              for b = j to rj do
                let _, lt, ln = ls.(a) and _, rt, rn = rs.(b) in
                let combined = Tuple.concat lt rt in
                if Pred.eval combined residual then push (combined, ln * rn)
              done
            done;
            if out.Vec.len > 0 then outs := Vec.flush out :: !outs;
            match List.rev !outs with
            | [] -> merge (li + 1) (rj + 1) ()
            | cs -> Seq.append (List.to_seq cs) (merge (li + 1) (rj + 1)) ()
          end
      in
      merge 0 0
  | Physical.Nested_loop (p, l, r) ->
      let right_rows = concat_chunks (exec ~hooks ~size db r) in
      hooks.observe plan "inner" (Array.length right_rows);
      let out = Vec.create size in
      let expand c =
        let outs = ref [] in
        let push x =
          Vec.push out x;
          if out.Vec.len >= size then outs := Vec.flush out :: !outs
        in
        Array.iter
          (fun (ltuple, ln) ->
            Array.iter
              (fun (rtuple, rn) ->
                let combined = Tuple.concat ltuple rtuple in
                if Pred.eval combined p then push (combined, ln * rn))
              right_rows)
          c;
        if out.Vec.len > 0 then outs := Vec.flush out :: !outs;
        List.to_seq (List.rev !outs)
      in
      Seq.concat_map expand (exec ~hooks ~size db l)
  | Physical.Cross_product (l, r) ->
      let right_rows = concat_chunks (exec ~hooks ~size db r) in
      hooks.observe plan "inner" (Array.length right_rows);
      let out = Vec.create size in
      let expand c =
        let outs = ref [] in
        let push x =
          Vec.push out x;
          if out.Vec.len >= size then outs := Vec.flush out :: !outs
        in
        Array.iter
          (fun (ltuple, ln) ->
            Array.iter
              (fun (rtuple, rn) ->
                push (Tuple.concat ltuple rtuple, ln * rn))
              right_rows)
          c;
        if out.Vec.len > 0 then outs := Vec.flush out :: !outs;
        List.to_seq (List.rev !outs)
      in
      Seq.concat_map expand (exec ~hooks ~size db l)
  | Physical.Union_all (l, r) ->
      Seq.append (exec ~hooks ~size db l) (exec ~hooks ~size db r)
  | Physical.Hash_diff (l, r) ->
      let left_counts = count_table (exec ~hooks ~size db l) in
      let right_counts = count_table (exec ~hooks ~size db r) in
      hooks.observe plan "left-keys" (TH.length left_counts);
      hooks.observe plan "right-keys" (TH.length right_counts);
      let monus (t, ln) =
        let rn = Option.value ~default:0 (TH.find_opt right_counts t) in
        if ln > rn then Some (t, ln - rn) else None
      in
      chunks_of_seq size (Seq.filter_map monus (TH.to_seq left_counts))
  | Physical.Hash_intersect (l, r) ->
      let left_counts = count_table (exec ~hooks ~size db l) in
      let right_counts = count_table (exec ~hooks ~size db r) in
      hooks.observe plan "left-keys" (TH.length left_counts);
      hooks.observe plan "right-keys" (TH.length right_counts);
      let pointwise_min (t, ln) =
        match TH.find_opt right_counts t with
        | Some rn -> Some (t, min ln rn)
        | None -> None
      in
      chunks_of_seq size (Seq.filter_map pointwise_min (TH.to_seq left_counts))
  | Physical.Hash_distinct t ->
      let seen = TH.create 64 in
      Seq.iter
        (Array.iter (fun (tuple, _) -> TH.replace seen tuple ()))
        (exec ~hooks ~size db t);
      hooks.observe plan "distinct" (TH.length seen);
      chunks_of_seq size (Seq.map (fun (tuple, ()) -> (tuple, 1)) (TH.to_seq seen))
  | Physical.Hash_aggregate (attrs, aggs, t) ->
      exec_aggregate ~hooks ~size db plan attrs aggs t
  | Physical.Exchange { parts; child } ->
      exec_exchange ~hooks ~size db plan parts child

(* --- parallel execution of an Exchange node ---------------------------- *)

(* Run one thunk per fragment on the global pool (each fragment is one
   morsel), record lanes and intervals, emit the worker spans, and
   return the outputs in fragment order. *)
and on_pool ~name tasks =
  let pool = Pool.global () in
  let outs =
    Pool.map_array ~chunk:1 pool
      (fun task ->
        let t0 = Trace.now_us () in
        let rows = task () in
        {
          frag_rows = rows;
          frag_lane = (Stdlib.Domain.self () :> int);
          frag_start = t0;
          frag_dur = Trace.now_us () -. t0;
        })
      tasks
  in
  if Trace.enabled () then
    Array.iteri
      (fun i o ->
        Trace.complete name ~tid:o.frag_lane ~start_us:o.frag_start
          ~dur_us:o.frag_dur
          ~attrs:
            [
              ("fragment", Trace.Int i);
              ("rows", Trace.Int (Array.length o.frag_rows));
            ])
      outs;
  outs

(* Contiguous slices are a valid fragmentation for per-tuple operators:
   σ and π distribute over any ⊎-decomposition (Theorem 3.2). *)
and slices parts arr =
  let n = Array.length arr in
  Array.init parts (fun i ->
      let lo = i * n / parts and hi = (i + 1) * n / parts in
      Array.sub arr lo (hi - lo))

(* Hash-partition materialised rows into [parts] buckets on the
   projected key tuple; co-partitioning two inputs on equal-length key
   lists aligns matching tuples in same-numbered buckets. *)
and bucket_rows parts keys rows =
  let buckets = Array.make parts [] in
  Array.iter
    (fun (t, n) ->
      let slot = Tuple.hash (Tuple.project keys t) land max_int mod parts in
      buckets.(slot) <- (t, n) :: buckets.(slot))
    rows;
  buckets

(* The maximal σ/π pipeline above a source, as one per-tuple function. *)
and pipeline_stages plan =
  match plan with
  | Physical.Filter (p, t) ->
      let src, f = pipeline_stages t in
      ( src,
        fun tn ->
          match f tn with
          | Some (tup, _) as r when Pred.eval tup p -> r
          | Some _ | None -> None )
  | Physical.Project_op (exprs, t) ->
      let src, f = pipeline_stages t in
      ( src,
        fun tn ->
          Option.map
            (fun (tup, n) ->
              (Tuple.of_list (List.map (Scalar.eval tup) exprs), n))
            (f tn) )
  | src -> (src, Option.some)

and join_fragment ~left_keys ~right_keys ~residual lefts rights =
  let table = TH.create 64 in
  List.iter
    (fun (t, n) -> TH.add table (Tuple.project right_keys t) (t, n))
    rights;
  let out = ref [] in
  List.iter
    (fun (lt, ln) ->
      List.iter
        (fun (rt, rn) ->
          let combined = Tuple.concat lt rt in
          if Pred.eval combined residual then
            out := (combined, ln * rn) :: !out)
        (TH.find_all table (Tuple.project left_keys lt)))
    lefts;
  Array.of_list !out

and aggregate_fragment input_schema attrs aggs rows =
  let fresh_states () =
    Array.of_list
      (List.map
         (fun (kind, p) -> initial_state kind (Schema.domain input_schema p))
         aggs)
  in
  let positions = Array.of_list (List.map snd aggs) in
  let groups = TH.create 64 in
  List.iter
    (fun (tuple, n) ->
      let key = Tuple.project attrs tuple in
      let states =
        match TH.find_opt groups key with
        | Some states -> states
        | None ->
            let states = fresh_states () in
            TH.add groups key states;
            states
      in
      Array.iteri
        (fun i state ->
          states.(i) <- update_state state (Tuple.attr tuple positions.(i)) n)
        states)
    rows;
  let out = Array.make (TH.length groups) (Tuple.unit, 0) in
  let i = ref 0 in
  TH.iter
    (fun key states ->
      let values = Array.to_list (Array.map finalize_state states) in
      out.(!i) <- (Tuple.concat key (Tuple.of_list values), 1);
      incr i)
    groups;
  out

(* Combine two partial accumulator states of the same aggregate: counts
   and integer sums add, extrema keep the extremum, buffered columns
   concatenate (their final computation canonicalises the order, so the
   combined result is bit-identical to the sequential one). *)
and combine_state a b =
  match (a, b) with
  | S_cnt x, S_cnt y -> S_cnt (x + y)
  | S_sum_int x, S_sum_int y -> S_sum_int (x + y)
  | S_min x, S_min y ->
      S_min
        (match (x, y) with
        | None, w | w, None -> w
        | Some v, Some w ->
            Some (if Value.compare_same_domain v w < 0 then v else w))
  | S_max x, S_max y ->
      S_max
        (match (x, y) with
        | None, w | w, None -> w
        | Some v, Some w ->
            Some (if Value.compare_same_domain v w > 0 then v else w))
  | S_column (kind, domain, c1), S_column (_, _, c2) ->
      S_column (kind, domain, List.rev_append c1 c2)
  | (S_cnt _ | S_sum_int _ | S_min _ | S_max _ | S_column _), _ ->
      invalid_arg "Exec: mismatched partial aggregate states"

and exec_exchange ~hooks ~size db plan parts child =
  (* The fused child never runs as a standalone stream, so route the
     merged fragment output through its instrumentation hook — its
     EXPLAIN ANALYZE row then shows the rows its fragments produced
     (operators deeper inside a fused σ/π chain still read zero).  Each
     fragment's whole output is one chunk. *)
  let emit outs =
    hooks.observe plan "parts" (Array.length outs);
    hooks.around child (fun () ->
        Seq.filter_map
          (fun o ->
            if Array.length o.frag_rows = 0 then None else Some o.frag_rows)
          (Array.to_seq outs))
  in
  (* Profitability feedback for the adaptive planner.  Inputs are
     materialised before [t0], so [wall] covers exactly the Exchange's
     own machinery — partition, pool dispatch, fragments — while [busy]
     is the summed fragment work alone.  [busy - wall] is the time the
     pool saved over running the fragments inline: negative means this
     Exchange should not have been inserted at this input size. *)
  let note ~rows t0 busy_ms =
    let wall_ms = (Trace.now_us () -. t0) /. 1000.0 in
    Feedback.note ~rows ~parts ~gain_ms:(busy_ms -. wall_ms)
  in
  let busy_of outs =
    Array.fold_left (fun acc o -> acc +. o.frag_dur) 0.0 outs /. 1000.0
  in
  match child with
  | Physical.Hash_join { left_keys; right_keys; residual; left; right; _ } ->
      let lrows = concat_chunks (exec ~hooks ~size db left) in
      let rrows = concat_chunks (exec ~hooks ~size db right) in
      let t0 = Trace.now_us () in
      let lb = bucket_rows parts left_keys lrows in
      let rb = bucket_rows parts right_keys rrows in
      let outs =
        on_pool ~name:"join-worker"
          (Array.init parts (fun i () ->
               join_fragment ~left_keys ~right_keys ~residual lb.(i) rb.(i)))
      in
      note ~rows:(Array.length lrows + Array.length rrows) t0 (busy_of outs);
      emit outs
  | Physical.Hash_aggregate ((_ :: _ as attrs), aggs, src) ->
      let input_schema = Typecheck.infer_db db (Physical.to_logical src) in
      let rows = concat_chunks (exec ~hooks ~size db src) in
      let t0 = Trace.now_us () in
      let buckets = bucket_rows parts attrs rows in
      let outs =
        on_pool ~name:"agg-worker"
          (Array.map
             (fun bucket () -> aggregate_fragment input_schema attrs aggs bucket)
             buckets)
      in
      note ~rows:(Array.length rows) t0 (busy_of outs);
      emit outs
  | Physical.Hash_aggregate ([], aggs, src) ->
      (* Global aggregate: per-fragment partial states, combined on the
         coordinating domain, finalized into the single output tuple
         (one tuple even over the empty input, Definition 3.4). *)
      let input_schema = Typecheck.infer_db db (Physical.to_logical src) in
      let fresh_states () =
        Array.of_list
          (List.map
             (fun (kind, p) ->
               initial_state kind (Schema.domain input_schema p))
             aggs)
      in
      let positions = Array.of_list (List.map snd aggs) in
      let rows = concat_chunks (exec ~hooks ~size db src) in
      let t0 = Trace.now_us () in
      let partial slice =
        let states = fresh_states () in
        Array.iter
          (fun (tuple, n) ->
            Array.iteri
              (fun i state ->
                states.(i) <-
                  update_state state (Tuple.attr tuple positions.(i)) n)
              states)
          slice;
        states
      in
      let pool = Pool.global () in
      let timed =
        Pool.map_array ~chunk:1 pool
          (fun slice ->
            let f0 = Trace.now_us () in
            let states = partial slice in
            (states, Trace.now_us () -. f0))
          (slices parts rows)
      in
      hooks.observe plan "parts" parts;
      let busy = Array.fold_left (fun a (_, d) -> a +. d) 0.0 timed /. 1000.0 in
      note ~rows:(Array.length rows) t0 busy;
      let states =
        Array.fold_left
          (fun acc (s, _) ->
            match acc with
            | None -> Some s
            | Some acc -> Some (Array.map2 combine_state acc s))
          None timed
        |> Option.value ~default:(fresh_states ())
      in
      let values = Array.to_list (Array.map finalize_state states) in
      hooks.around child (fun () -> Seq.return [| (Tuple.of_list values, 1) |])
  | Physical.Filter _ | Physical.Project_op _ ->
      let src, f = pipeline_stages child in
      let rows = concat_chunks (exec ~hooks ~size db src) in
      let t0 = Trace.now_us () in
      let outs =
        on_pool ~name:"scan-worker"
          (Array.map
             (fun slice () ->
               let out = ref [] in
               Array.iter
                 (fun tn ->
                   match f tn with
                   | Some r -> out := r :: !out
                   | None -> ())
                 slice;
               Array.of_list (List.rev !out))
             (slices parts rows))
      in
      note ~rows:(Array.length rows) t0 (busy_of outs);
      emit outs
  | child ->
      (* The planner only wraps the shapes above; anything else is
         executed sequentially — Exchange is then a no-op. *)
      exec ~hooks ~size db child

and exec_aggregate ~hooks ~size db plan attrs aggs t =
  let input_schema =
    Typecheck.infer_db db (Physical.to_logical t)
  in
  let fresh_states () =
    Array.of_list
      (List.map
         (fun (kind, p) -> initial_state kind (Schema.domain input_schema p))
         aggs)
  in
  let positions = Array.of_list (List.map snd aggs) in
  let groups = TH.create 64 in
  Seq.iter
    (Array.iter (fun (tuple, n) ->
         let key = Tuple.project attrs tuple in
         let states =
           match TH.find_opt groups key with
           | Some states -> states
           | None ->
               let states = fresh_states () in
               TH.add groups key states;
               states
         in
         Array.iteri
           (fun i state ->
             states.(i) <- update_state state (Tuple.attr tuple positions.(i)) n)
           states))
    (exec ~hooks ~size db t);
  (* Definition 3.4: with an empty grouping list the result is one tuple
     even over the empty input. *)
  if attrs = [] && TH.length groups = 0 then
    TH.add groups Tuple.unit (fresh_states ());
  hooks.observe plan "groups" (TH.length groups);
  let finalize (key, states) =
    let values = Array.to_list (Array.map finalize_state states) in
    (Tuple.concat key (Tuple.of_list values), 1)
  in
  chunks_of_seq size (Seq.map finalize (TH.to_seq groups))

let materialize db plan chunks =
  let schema = Typecheck.infer_db db (Physical.to_logical plan) in
  let bag =
    Seq.fold_left
      (fun bag c ->
        Array.fold_left
          (fun bag (t, n) -> Relation.Bag.add ~count:n t bag)
          bag c)
      Relation.Bag.empty chunks
  in
  Relation.of_bag_unchecked schema bag

let resolve_size = function Some n -> max 1 n | None -> !chunk_ref

let run ?chunk_size db plan =
  let size = resolve_size chunk_size in
  materialize db plan (exec ~hooks:(with_progress plan no_hooks) ~size db plan)

let stream ?chunk_size db plan =
  let size = resolve_size chunk_size in
  Seq.concat_map Array.to_seq
    (exec ~hooks:(with_progress plan no_hooks) ~size db plan)

(* Hooks that invoke [tick] with every counted-tuple element every
   operator emits, regardless of which operator it is. *)
let tick_hooks tick =
  { no_hooks with
    around = (fun _ f -> Seq.map (fun c -> Array.iter tick c; c) (f ())) }

let tuples_moved db plan =
  let moved = ref 0 in
  let s =
    exec ~hooks:(tick_hooks (fun _ -> incr moved)) ~size:!chunk_ref db plan
  in
  Seq.iter (fun _ -> ()) s;
  !moved

let cells_moved db plan =
  let moved = ref 0 in
  let s =
    exec
      ~hooks:(tick_hooks (fun (t, _) -> moved := !moved + Tuple.arity t))
      ~size:!chunk_ref db plan
  in
  Seq.iter (fun _ -> ()) s;
  !moved

let run_expr ?chunk_size db e = run ?chunk_size db (Planner.plan db e)

(* --- instrumented execution ------------------------------------------- *)

type op_metrics = {
  out_elems : int;
  out_rows : int;
  out_cells : int;
  wall_ms : float;
  details : (string * int) list;
}

type report = {
  node : Physical.t;
  estimated_rows : float;
  actual : op_metrics;
  q_error : float;
  inputs : report list;
}

type analysis = {
  result : Relation.t;
  total_ms : float;
  root : report;
  totals : Metrics.t;
}

(* Per-node accounting keyed by physical identity: the planner allocates
   a fresh node per tree position, so [==] distinguishes structurally
   equal siblings.  (If a caller builds a plan with a physically shared
   subtree, its uses merge into one record — the report then shows the
   combined figures at each occurrence.) *)
let op_table plan =
  let table = ref [] in
  let rec register p =
    table := (p, Metrics.make_op ()) :: !table;
    List.iter register (Physical.children p)
  in
  register plan;
  let entries = !table in
  fun p -> snd (List.find (fun (q, _) -> q == p) entries)

(* Wrap a chunk stream so each pull is timed (inclusive of child pulls,
   as in EXPLAIN ANALYZE's actual time) and each chunk's contents are
   counted — element, row and cell totals are identical to what the
   tuple-at-a-time engine reported, only the accounting granularity
   changed.  [on_end] fires once, at the first exhaustion. *)
let instrument_stream ?on_end (m : Metrics.op) s =
  let ended = ref false in
  let rec go s () =
    match Metrics.record m.Metrics.wall s with
    | Seq.Nil ->
        (match on_end with
        | Some f when not !ended ->
            ended := true;
            f ()
        | Some _ | None -> ());
        Seq.Nil
    | Seq.Cons (c, rest) ->
        Array.iter
          (fun (t, n) ->
            Metrics.incr m.Metrics.elems;
            Metrics.add m.Metrics.rows n;
            Metrics.add m.Metrics.cells (Tuple.arity t))
          c;
        Seq.Cons (c, go rest)
  in
  go s

(* A traced operator's span runs from stream construction to stream
   exhaustion — its lifetime in the pipeline, which in a lazy engine
   contains the lifetimes of its children, so viewers nest the spans
   correctly.  The span links to the operator's exact counters: emitted
   rows/elements, the measured inclusive wall time, and the gauges. *)
let op_span_attrs p (m : Metrics.op) =
  ("label", Trace.Str (Physical.label p))
  :: ("rows", Trace.Int (Metrics.count m.Metrics.rows))
  :: ("elems", Trace.Int (Metrics.count m.Metrics.elems))
  :: ("wall_ms", Trace.Float (Metrics.elapsed_ms m.Metrics.wall))
  :: List.map (fun (k, v) -> (k, Trace.Int v)) (Metrics.details m)

let run_instrumented ?chunk_size db plan =
  let size = resolve_size chunk_size in
  let find = op_table plan in
  let traced = Trace.enabled () in
  let hooks =
    {
      around =
        (fun p thunk ->
          let m = find p in
          if traced then begin
            let start_us = Trace.now_us () in
            let on_end () =
              Trace.complete (Physical.kind p) ~start_us
                ~dur_us:(Trace.now_us () -. start_us)
                ~attrs:(op_span_attrs p m)
            in
            instrument_stream ~on_end m (Metrics.record m.Metrics.wall thunk)
          end
          else instrument_stream m (Metrics.record m.Metrics.wall thunk));
      observe = (fun p key v -> Metrics.set_detail (find p) key v);
    }
  in
  let hooks = with_progress plan hooks in
  let total = Metrics.make_timer () in
  let result =
    Metrics.record total (fun () ->
        Trace.with_span "execute"
          ~attrs:[ ("operators", Trace.Int (Physical.size plan)) ]
          (fun () ->
            let r = materialize db plan (exec ~hooks ~size db plan) in
            Trace.add_attr "rows" (Trace.Int (Relation.cardinal r));
            r))
  in
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  let rec report_of p =
    let m = find p in
    let actual =
      {
        out_elems = Metrics.count m.Metrics.elems;
        out_rows = Metrics.count m.Metrics.rows;
        out_cells = Metrics.count m.Metrics.cells;
        wall_ms = Metrics.elapsed_ms m.Metrics.wall;
        details = Metrics.details m;
      }
    in
    let estimated_rows =
      Cost.estimate_cardinality ~stats ~schemas (Physical.to_logical p)
    in
    {
      node = p;
      estimated_rows;
      actual;
      q_error = Cost.q_error ~estimated:estimated_rows ~actual:actual.out_rows;
      inputs = List.map report_of (Physical.children p);
    }
  in
  let root = report_of plan in
  let totals = Metrics.create () in
  let rec accumulate r =
    Metrics.add (Metrics.counter totals "tuples-moved") r.actual.out_elems;
    Metrics.add (Metrics.counter totals "cells-moved") r.actual.out_cells;
    List.iter accumulate r.inputs
  in
  accumulate root;
  Metrics.add (Metrics.counter totals "rows-out") root.actual.out_rows;
  Metrics.add (Metrics.counter totals "operators") (Physical.size plan);
  Metrics.add_ms (Metrics.timer totals "wall") (Metrics.elapsed_ms total);
  (* Fold this execution into the cumulative per-operator registry
     that [sys.operators] materializes.  Wall time is inclusive of
     children, same convention as the EXPLAIN ANALYZE report rows. *)
  if Mxra_obs.Stmt_stats.enabled () then begin
    let rec feed r =
      Mxra_obs.Op_stats.record ~op:(Physical.kind r.node)
        ~elems:r.actual.out_elems ~rows:r.actual.out_rows
        ~cells:r.actual.out_cells ~wall_ms:r.actual.wall_ms;
      List.iter feed r.inputs
    in
    feed root
  end;
  { result; total_ms = Metrics.elapsed_ms total; root; totals }

let explain_analyze ?chunk_size ?jobs db e =
  run_instrumented ?chunk_size db (Planner.plan ?jobs db e)

(* --- report rendering --------------------------------------------------- *)

let pp_details ppf details =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) details

let annot_table root =
  let entries = ref [] in
  let rec collect r =
    entries := (r.node, r) :: !entries;
    List.iter collect r.inputs
  in
  collect root;
  let entries = !entries in
  fun p ->
    match List.find_opt (fun (q, _) -> q == p) entries with
    | Some (_, r) -> r
    | None -> invalid_arg "Exec.annot_table: node not in report"

let pp_analysis ppf a =
  let lookup = annot_table a.root in
  let annot p =
    let r = lookup p in
    Format.asprintf "(est=%.0f act=%d q=%.2f time=%.2fms%a)" r.estimated_rows
      r.actual.out_rows r.q_error r.actual.wall_ms pp_details
      r.actual.details
  in
  Format.fprintf ppf "@[<v>%a@]total: %.2f ms, %d rows"
    (Physical.pp_annotated ~annot)
    a.root.node a.total_ms
    (Relation.cardinal a.result)

let analysis_to_string a = Format.asprintf "%a" pp_analysis a

let pp_estimates db ppf plan =
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  let annot p =
    Format.asprintf "(est=%.0f)"
      (Cost.estimate_cardinality ~stats ~schemas (Physical.to_logical p))
  in
  Physical.pp_annotated ~annot ppf plan

let explain ?jobs db e =
  Format.asprintf "%a" (pp_estimates db) (Planner.plan ?jobs db e)
