(* Benchmark harness for every experiment in DESIGN.md §5.

   The paper (ICDE'94, formal) has no numbered tables or figures; per
   DESIGN.md each theorem / worked example / quantified claim is an
   experiment.  For each experiment this harness prints a paper-style
   table of measured numbers; EXPERIMENTS.md records the expected vs
   observed shape.  A Bechamel micro-benchmark suite (one grouped
   Test.make per experiment) runs at the end.

     dune exec bench/main.exe            -- full run
     dune exec bench/main.exe quick      -- smaller sizes, short quota
     dune exec bench/main.exe quick e15  -- one experiment by name
     dune exec bench/main.exe -- e15 --jobs 4   -- cap the E15 sweep *)

open Mxra_relational
open Mxra_core
open Mxra_engine
module W = Mxra_workload
module Opt = Mxra_optimizer
module Ext = Mxra_ext

let argv = List.tl (Array.to_list Sys.argv)
let quick = List.mem "quick" argv

(* [--jobs N] caps the E15 domain sweep to the machine at hand. *)
let jobs_cap =
  let rec find = function
    | "--jobs" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> find rest
    | [] -> None
  in
  find argv

(* Remaining positional words select experiments by name ("e15",
   "bechamel"); none selects everything. *)
let selected =
  let rec strip = function
    | [] -> []
    | "--jobs" :: _ :: rest -> strip rest
    | ("quick" | "--") :: rest -> strip rest
    | a :: rest -> a :: strip rest
  in
  strip argv

let wants name = selected = [] || List.mem name selected

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1000.0)

let best_of_3 f =
  let _, t1 = time_ms f in
  let _, t2 = time_ms f in
  let _, t3 = time_ms f in
  Float.min t1 (Float.min t2 t3)

(* Compare two thunks on a noisy host: run them interleaved A,B,A,B,…
   and take the {e median of the per-iteration ratios} ta/tb, so each
   ratio divides two runs adjacent in time and slow phases (frequency
   scaling, container neighbours) cancel instead of landing on one
   side.  Returns (min_a, min_b, median a/b-ratio); E15's speedup
   assertions use the ratio — on a ±15%-noise host a min/min quotient
   still swings ±10%, the paired median stays within a few percent. *)
let interleaved_compare n fa fb =
  let ma = ref infinity and mb = ref infinity in
  let ratios = Array.make n 1.0 in
  let timed f =
    (* Start every run from the same heap state; otherwise the major
       GC debt left by one run lands in the other's wall time. *)
    Gc.full_major ();
    snd (time_ms f)
  in
  for i = 0 to n - 1 do
    let ta = timed fa in
    let tb = timed fb in
    ma := Float.min !ma ta;
    mb := Float.min !mb tb;
    ratios.(i) <- ta /. tb
  done;
  Array.sort compare ratios;
  (!ma, !mb, ratios.(n / 2))

let header title = Format.printf "@.=== %s ===@." title
let row fmt = Format.printf fmt

(* Wrap every operator of an expression in δ: "set semantics", where
   each operation pays for duplicate removal (the Section 1 cost
   claim). *)
let rec setify = function
  | (Expr.Rel _ | Expr.Const _) as e -> Expr.Unique e
  | e -> Expr.Unique (Expr.map_children setify e)

(* ---------------------------------------------------------------- E1 *)

(* §1: "the high costs of duplicate removal in database operations is
   often prohibitive".  Same logical pipeline under bag semantics vs
   δ-after-every-operator set semantics. *)
let e1_dup_removal () =
  header "E1  duplicate-removal cost (bag vs set pipelines)";
  row "  %8s %4s | %10s %10s %8s | %12s %12s@." "n" "dup" "bag ms" "set ms"
    "slowdn" "bag out" "set out";
  let sizes = if quick then [ 1_000; 4_000 ] else [ 1_000; 4_000; 16_000 ] in
  List.iter
    (fun n ->
      List.iter
        (fun dup ->
          let rng = W.Rng.make (n + dup) in
          let schema = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ] in
          let r = W.Synth.relation ~rng ~schema ~size:n ~dup_factor:dup () in
          let s = W.Synth.relation ~rng ~schema ~size:(n / 2) ~dup_factor:dup () in
          let db = Database.of_relations [ ("r", r); ("s", s) ] in
          let pipeline =
            Expr.project_attrs [ 2 ]
              (Expr.select
                 (Pred.lt (Scalar.attr 2) (Scalar.attr 3))
                 (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3))
                    (Expr.rel "r") (Expr.rel "s")))
          in
          let bag_out = ref 0 and set_out = ref 0 in
          let bag_ms =
            best_of_3 (fun () ->
                bag_out := Relation.cardinal (Exec.run_expr db pipeline))
          in
          let set_ms =
            best_of_3 (fun () ->
                set_out := Relation.cardinal (Exec.run_expr db (setify pipeline)))
          in
          row "  %8d %4d | %10.2f %10.2f %7.1fx | %12d %12d@." n dup bag_ms
            set_ms (set_ms /. bag_ms) !bag_out !set_out)
        [ 1; 4; 16 ])
    sizes

(* ---------------------------------------------------------------- E2 *)

(* Theorem 3.1: ∩ and ⋈ are derived operators.  The derived forms are
   semantically equal (checked) and the native implementations are the
   fast path. *)
let e2_derived_operators () =
  header "E2  Theorem 3.1: derived vs native operators";
  row "  %8s | %12s %14s | %10s %10s %14s@." "n" "native \xe2\x88\xa9 ms"
    "E1-(E1-E2) ms" "hash ms" "merge ms" "sel(E1xE2) ms";
  let sizes = if quick then [ 1_000 ] else [ 1_000; 2_000; 4_000 ] in
  List.iter
    (fun n ->
      let rng = W.Rng.make n in
      let r = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 4) in
      let s = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 4) in
      let db = Database.of_relations [ ("r", r); ("s", s) ] in
      let inter = Expr.intersect (Expr.rel "r") (Expr.rel "s") in
      let derived =
        Expr.diff (Expr.rel "r") (Expr.diff (Expr.rel "r") (Expr.rel "s"))
      in
      assert (Relation.equal (Eval.eval db inter) (Eval.eval db derived));
      let inter_ms = best_of_3 (fun () -> Exec.run_expr db inter) in
      let derived_ms = best_of_3 (fun () -> Exec.run_expr db derived) in
      (* join: hash plan vs the literal σ∘× (full product); the planner
         would fuse σ∘×, so build the product plan by hand. *)
      let jn =
        Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "r")
          (Expr.rel "s")
      in
      let join_ms = best_of_3 (fun () -> Exec.run_expr db jn) in
      let merge_plan = Planner.plan ~join_algorithm:Planner.Merge db jn in
      assert (Relation.equal (Exec.run db merge_plan) (Eval.eval db jn));
      let merge_ms = best_of_3 (fun () -> Exec.run db merge_plan) in
      let product_plan =
        Physical.Filter
          ( Pred.eq (Scalar.attr 1) (Scalar.attr 3),
            Physical.Cross_product (Physical.Seq_scan "r", Physical.Seq_scan "s") )
      in
      assert (Relation.equal (Exec.run db product_plan) (Eval.eval db jn));
      let product_ms = best_of_3 (fun () -> Exec.run db product_plan) in
      row "  %8d | %12.2f %14.2f | %10.2f %10.2f %14.2f@." n inter_ms
        derived_ms join_ms merge_ms product_ms)
    sizes

(* ---------------------------------------------------------------- E3 *)

(* Theorem 3.2: σ and π distribute over ⊎ — the rewrite is free (same
   work), which is exactly why the optimizer may always apply it; δ does
   NOT distribute, and the correct form of the law costs the inner δs. *)
let e3_distribution () =
  header "E3  Theorem 3.2: distribution over union";
  let n = if quick then 20_000 else 80_000 in
  let rng = W.Rng.make 3 in
  let r1 = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 8) in
  let r2 = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 8) in
  let db = Database.of_relations [ ("e1", r1); ("e2", r2) ] in
  let p = Pred.lt (Scalar.attr 1) (Scalar.int (n / 16)) in
  let lhs = Expr.select p (Expr.union (Expr.rel "e1") (Expr.rel "e2")) in
  let rhs =
    Expr.union (Expr.select p (Expr.rel "e1")) (Expr.select p (Expr.rel "e2"))
  in
  assert (Relation.equal (Exec.run_expr db lhs) (Exec.run_expr db rhs));
  let lhs_ms = best_of_3 (fun () -> Exec.run_expr db lhs) in
  let rhs_ms = best_of_3 (fun () -> Exec.run_expr db rhs) in
  row "  sel(E1+E2): %.2f ms   selE1+selE2: %.2f ms   equal results: yes@."
    lhs_ms rhs_ms;
  let proj e = Expr.project_attrs [ 1 ] e in
  let plhs = proj (Expr.union (Expr.rel "e1") (Expr.rel "e2")) in
  let prhs = Expr.union (proj (Expr.rel "e1")) (proj (Expr.rel "e2")) in
  assert (Relation.equal (Exec.run_expr db plhs) (Exec.run_expr db prhs));
  let plhs_ms = best_of_3 (fun () -> Exec.run_expr db plhs) in
  let prhs_ms = best_of_3 (fun () -> Exec.run_expr db prhs) in
  row "  pi(E1+E2):  %.2f ms   piE1+piE2:   %.2f ms   equal results: yes@."
    plhs_ms prhs_ms;
  (* The δ non-law, quantified: how far apart the two sides are. *)
  let naive =
    Expr.union (Expr.unique (Expr.rel "e1")) (Expr.unique (Expr.rel "e2"))
  in
  let correct = Expr.unique (Expr.union (Expr.rel "e1") (Expr.rel "e2")) in
  let card_naive = Relation.cardinal (Exec.run_expr db naive) in
  let card_correct = Relation.cardinal (Exec.run_expr db correct) in
  row "  delta non-law: |dE1 + dE2| = %d  vs  |d(E1+E2)| = %d  (differ: %b)@."
    card_naive card_correct
    (card_naive <> card_correct)

(* ---------------------------------------------------------------- E4 *)

(* Theorem 3.3: associativity enables join reordering.  A 3-way join
   with one small relation: association order changes intermediate
   sizes by orders of magnitude; the optimizer must pick a good one. *)
let e4_join_order () =
  header "E4  Theorem 3.3: join association order";
  let big = if quick then 4_000 else 20_000 in
  let rng = W.Rng.make 4 in
  let a = W.Synth.two_column_int ~rng ~size:(big / 4) ~distinct:500 in
  let b = W.Synth.two_column_int ~rng ~size:big ~distinct:500 in
  let c = W.Synth.two_column_int ~rng ~size:60 ~distinct:500 in
  let db = Database.of_relations [ ("a", a); ("b", b); ("c", c) ] in
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  (* Conditions in flat indexing over a ⊕ b ⊕ c = %1..%6. *)
  let ab = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let bc = Pred.eq (Scalar.attr 4) (Scalar.attr 5) in
  let left_deep =
    Expr.join bc (Expr.join ab (Expr.rel "a") (Expr.rel "b")) (Expr.rel "c")
  in
  (* a ⋈ (b × c) — the pathological order materialising big × 60. *)
  let bad =
    Expr.join (Pred.And (ab, bc)) (Expr.rel "a")
      (Expr.Product (Expr.rel "b", Expr.rel "c"))
  in
  let optimized = Opt.Optimizer.optimize ~stats ~schemas bad in
  let reference = Exec.run_expr db left_deep in
  assert (Relation.equal reference (Exec.run_expr db bad));
  assert (Relation.equal reference (Exec.run_expr db optimized));
  row "  %-30s | %10s %12s %14s@." "order" "est cost" "measured ms"
    "tuples moved";
  let report name e =
    let est = Cost.cost ~stats ~schemas e in
    let plan = Planner.plan db e in
    let ms = best_of_3 (fun () -> Exec.run db plan) in
    row "  %-30s | %10.0f %12.2f %14d@." name est ms
      (Exec.tuples_moved db plan)
  in
  report "(a join b) join c [left-deep]" left_deep;
  report "a join (b x c) [pathological]" bad;
  report "optimizer (from pathological)" optimized

(* ---------------------------------------------------------------- E5 *)

(* Example 3.2: inserting a projection "to reduce the size of
   intermediate results" — measured, plus the optimizer doing it
   automatically. *)
let e5_early_projection () =
  header "E5  Example 3.2: early projection";
  let sizes = if quick then [ 10_000 ] else [ 10_000; 50_000 ] in
  (* "To reduce the size of intermediate results": the intermediate in
     question is the input of Γ — the relation PRISMA would materialise
     and ship between processors.  We report its volume (tuples x width)
     per variant, plus end-to-end pipeline time and total traffic. *)
  let agg_input_cells db e =
    match e with
    | Expr.GroupBy (_, _, child) ->
        let r = Exec.run_expr db child in
        Relation.cardinal r * Schema.arity (Relation.schema r)
    | _ -> 0
  in
  row "  %8s | %-22s %10s %16s %14s@." "beers" "variant" "ms"
    "agg-input cells" "total cells";
  List.iter
    (fun n ->
      let db =
        W.Beer.generate ~rng:(W.Rng.make n) ~breweries:(n / 100) ~beers:n ()
      in
      let auto = Opt.Optimizer.optimize_db db W.Beer.example_3_2 in
      let reference = Exec.run_expr db W.Beer.example_3_2 in
      assert (
        Relation.equal reference (Exec.run_expr db W.Beer.example_3_2_reduced));
      assert (Relation.equal reference (Exec.run_expr db auto));
      let report name e =
        let plan = Planner.plan db e in
        let ms = best_of_3 (fun () -> Exec.run db plan) in
        row "  %8d | %-22s %10.2f %16d %14d@." n name ms
          (agg_input_cells db e) (Exec.cells_moved db plan)
      in
      report "full (paper, no pi)" W.Beer.example_3_2;
      report "reduced (paper, pi)" W.Beer.example_3_2_reduced;
      report "optimizer (automatic)" auto)
    sizes

(* ---------------------------------------------------------------- E6 *)

(* §4: transactions with atomicity.  Throughput under abort ratios; the
   invariant (total balance conserved by transfers) holds exactly when
   aborts roll back completely. *)
let e6_transactions () =
  header "E6  transactions: throughput and atomicity";
  let accounts = 200 in
  let batch = if quick then 200 else 1_000 in
  let schema = Schema.of_list [ ("id", Domain.DInt); ("balance", Domain.DInt) ] in
  let initial =
    Database.of_relations
      [
        ( "acct",
          Relation.of_list schema
            (List.init accounts (fun i ->
                 Tuple.of_list [ Value.Int i; Value.Int 1000 ])) );
      ]
  in
  let total db =
    match
      Relation.to_list
        (Eval.eval db (Expr.aggregate Aggregate.Sum 2 (Expr.rel "acct")))
    with
    | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> 0)
    | _ -> 0
  in
  let upd id delta =
    Statement.Update
      ( "acct",
        Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id)) (Expr.rel "acct"),
        [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int delta) ] )
  in
  (* A transfer moves money between two accounts; a poisoned transfer
     fails *between* its two updates — if abort were not atomic, money
     would leak. *)
  let transfer rng ~poison i =
    let src = W.Rng.int rng accounts and dst = W.Rng.int rng accounts in
    let amount = 1 + W.Rng.int rng 50 in
    let debit = upd src (-amount) and credit = upd dst amount in
    Transaction.make
      ~name:(Printf.sprintf "t%d" i)
      (if poison then [ debit; Statement.Insert ("missing", Expr.rel "acct"); credit ]
       else [ debit; credit ])
  in
  row "  %10s | %10s %10s %10s %10s@." "abort %" "txn/s" "committed" "aborted"
    "conserved";
  List.iter
    (fun abort_pct ->
      let rng = W.Rng.make abort_pct in
      let txns =
        List.init batch (fun i ->
            transfer rng ~poison:(W.Rng.int rng 100 < abort_pct) i)
      in
      let (final, outcomes), ms =
        time_ms (fun () -> Transaction.run_all initial txns)
      in
      let committed =
        List.length (List.filter Transaction.committed outcomes)
      in
      row "  %10d | %10.0f %10d %10d %10b@." abort_pct
        (float_of_int batch /. (ms /. 1000.0))
        committed (batch - committed)
        (total final = total initial))
    [ 0; 25; 50 ]

(* ---------------------------------------------------------------- E7 *)

(* Conclusions: parallel operators (PRISMA).  Simulated speedup of
   partitioned Γ and ⋈ as fragments grow, uniform and skewed. *)
let e7_parallel () =
  header "E7  parallel operators (simulated, partitioned)";
  let n = if quick then 20_000 else 100_000 in
  let rng = W.Rng.make 7 in
  let uniform = W.Synth.two_column_int ~rng ~size:n ~distinct:512 in
  let skewed =
    W.Synth.relation ~rng
      ~schema:(Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ])
      ~size:n ~dup_factor:4 ~skew:1.2 ()
  in
  let jn = n / 3 in
  let left, right =
    W.Synth.join_pair ~rng ~left:jn ~right:(jn / 4) ~key_range:2048
  in
  row "  %4s | %14s | %14s | %14s@." "p" "grp uniform" "grp zipf(1.2)"
    "join uniform";
  List.iter
    (fun parts ->
      let g1 =
        Ext.Parallel.par_group_by ~parts ~attrs:[ 1 ]
          ~aggs:[ (Aggregate.Sum, 2) ] uniform
      in
      let g2 =
        Ext.Parallel.par_group_by ~parts ~attrs:[ 1 ]
          ~aggs:[ (Aggregate.Sum, 2) ] skewed
      in
      let j =
        Ext.Parallel.par_join ~parts ~left_keys:[ 1 ] ~right_keys:[ 1 ] left
          right
      in
      row "  %4d | %10.2fx sp | %10.2fx sp | %10.2fx sp@." parts
        g1.Ext.Parallel.speedup g2.Ext.Parallel.speedup j.Ext.Parallel.speedup)
    [ 1; 2; 4; 8; 16 ]

(* ---------------------------------------------------------------- E8 *)

(* Conclusions: the transitive closure extension — semi-naive vs naive
   across graph sizes. *)
let e8_closure () =
  header "E8  transitive closure scaling";
  row "  %6s %7s | %9s %6s | %12s %12s@." "nodes" "edges" "pairs" "rounds"
    "semi-naive" "naive";
  let sizes = if quick then [ 100; 200 ] else [ 100; 200; 400; 800 ] in
  List.iter
    (fun nodes ->
      let rng = W.Rng.make nodes in
      let g = W.Synth.chain_relation ~rng ~nodes ~extra_edges:nodes in
      let closure = Ext.Closure.closure g in
      assert (Relation.equal closure (Ext.Closure.closure_naive g));
      let semi = best_of_3 (fun () -> Ext.Closure.closure g) in
      let naive =
        if nodes > 400 then Float.nan
        else best_of_3 (fun () -> Ext.Closure.closure_naive g)
      in
      row "  %6d %7d | %9d %6d | %9.1f ms %9.1f ms@." nodes
        (Relation.cardinal g) (Relation.cardinal closure)
        (Ext.Closure.iterations g) semi naive)
    sizes

(* ---------------------------------------------------------------- E9 *)

(* §3.3's purpose: rewriting pays.  A pool of random queries, optimized
   vs not: estimated cost, measured runtime, and the guarantee that no
   result ever changes. *)
let e9_optimizer_gain () =
  header "E9  optimizer gain on random queries";
  let pool = if quick then 40 else 120 in
  let improved = ref 0 and unchanged = ref 0 in
  let sum_before = ref 0.0 and sum_after = ref 0.0 in
  let ms_before = ref 0.0 and ms_after = ref 0.0 in
  let mismatches = ref 0 in
  for seed = 1 to pool do
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let db = scen.W.Gen_expr.db in
    let stats = Stats.env_of_database db in
    let schemas = Typecheck.env_of_database db in
    let e = scen.W.Gen_expr.expr in
    let optimized = Opt.Optimizer.optimize ~stats ~schemas e in
    let cb = Cost.cost ~stats ~schemas e in
    let ca = Cost.cost ~stats ~schemas optimized in
    sum_before := !sum_before +. cb;
    sum_after := !sum_after +. ca;
    if ca < cb -. 1e-9 then incr improved else incr unchanged;
    let r1, t1 = time_ms (fun () -> Exec.run_expr db e) in
    let r2, t2 = time_ms (fun () -> Exec.run_expr db optimized) in
    ms_before := !ms_before +. t1;
    ms_after := !ms_after +. t2;
    if not (Relation.equal r1 r2) then incr mismatches
  done;
  row
    "  queries: %d   cost improved: %d   unchanged: %d   result mismatches: \
     %d@."
    pool !improved !unchanged !mismatches;
  row "  mean est. cost: %.0f -> %.0f   total runtime: %.1f ms -> %.1f ms@."
    (!sum_before /. float_of_int pool)
    (!sum_after /. float_of_int pool)
    !ms_before !ms_after;
  (* Ablation: which phase buys what, on the σ-over-products shape the
     pushdown rules target. *)
  let rng = W.Rng.make 909 in
  let r = W.Synth.two_column_int ~rng ~size:5_000 ~distinct:400 in
  let s = W.Synth.two_column_int ~rng ~size:5_000 ~distinct:400 in
  let t = W.Synth.two_column_int ~rng ~size:100 ~distinct:400 in
  let db = Database.of_relations [ ("r", r); ("s", s); ("t", t) ] in
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  let query =
    Expr.project_attrs [ 2 ]
      (Expr.select
         (Pred.conj
            [
              Pred.eq (Scalar.attr 1) (Scalar.attr 3);
              Pred.eq (Scalar.attr 3) (Scalar.attr 5);
              Pred.lt (Scalar.attr 2) (Scalar.int 100);
            ])
         (Expr.product (Expr.product (Expr.rel "r") (Expr.rel "s"))
            (Expr.rel "t")))
  in
  let stages =
    [
      ("raw", query);
      ("selection pushdown only", Opt.Rules.push_selections schemas query);
      ("+ projection narrowing", Opt.Rules.normalize schemas query);
      ("+ join reordering (full)", Opt.Optimizer.optimize ~stats ~schemas query);
    ]
  in
  let reference = Exec.run_expr db query in
  row "  ablation on pi(sel((r x s) x t)):@.";
  row "    %-28s | %10s %12s@." "phase" "est cost" "measured ms";
  List.iter
    (fun (name, e) ->
      assert (Relation.equal reference (Exec.run_expr db e));
      let ms = best_of_3 (fun () -> Exec.run_expr db e) in
      row "    %-28s | %10.0f %12.2f@." name (Cost.cost ~stats ~schemas e) ms)
    stages

(* --------------------------------------------------------------- E10 *)

(* SQL correspondence: the paper's SQL statements and friends, each
   checked equivalent to its algebraic counterpart and timed through
   translate + optimize + execute. *)
let e10_sql () =
  header "E10  SQL front-end round trips";
  let db =
    W.Beer.generate ~rng:(W.Rng.make 10) ~breweries:100
      ~beers:(if quick then 5_000 else 20_000)
      ()
  in
  let env = Typecheck.env_of_database db in
  let queries =
    [
      ( "Ex 3.2 (paper)",
        "SELECT country, AVG(alcperc) FROM beer, brewery WHERE beer.brewery \
         = brewery.name GROUP BY country",
        Some W.Beer.example_3_2 );
      ( "Ex 3.1 shape",
        "SELECT beer.name FROM beer, brewery WHERE beer.brewery = \
         brewery.name AND country = 'NL'",
        Some W.Beer.example_3_1 );
      ("distinct", "SELECT DISTINCT brewery FROM beer", None);
      ( "group-max",
        "SELECT brewery, MAX(alcperc) FROM beer GROUP BY brewery",
        None );
      ("global agg", "SELECT CNT(*), AVG(alcperc) FROM beer", None);
    ]
  in
  row "  %-16s | %10s %10s %10s@." "query" "rows" "ms" "= algebra";
  List.iter
    (fun (name, sql, reference) ->
      let e = Mxra_sql.Translate.query_of_string env sql in
      let optimized = Opt.Optimizer.optimize_db db e in
      let result = ref (Relation.empty Schema.unit) in
      let ms = best_of_3 (fun () -> result := Exec.run_expr db optimized) in
      let agrees =
        match reference with
        | None -> "n/a"
        | Some alg ->
            if Relation.equal !result (Exec.run_expr db alg) then "yes"
            else "NO"
      in
      row "  %-16s | %10d %10.2f %10s@." name (Relation.cardinal !result) ms
        agrees)
    queries

(* --------------------------------------------------------------- E11 *)

(* Durability (Definition 4.3 cites [Gray 81]'s ACID): cost of the
   write-ahead log per committed transaction, and recovery time as the
   log grows. *)
let e11_durability () =
  header "E11  durability: WAL overhead and recovery";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mxra-bench-store"
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let schema = Schema.of_list [ ("id", Domain.DInt); ("v", Domain.DInt) ] in
  let initial =
    Database.of_relations
      [ ("t", Relation.of_list schema
                (List.init 100 (fun i ->
                     Tuple.of_list [ Value.Int i; Value.Int 0 ]))) ]
  in
  let txn i =
    Transaction.make
      [
        Statement.Update
          ( "t",
            Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int (i mod 100)))
              (Expr.rel "t"),
            [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 1) ] );
      ]
  in
  let batch = if quick then 100 else 400 in
  (* In-memory baseline. *)
  let _, mem_ms =
    time_ms (fun () ->
        Transaction.run_all initial (List.init batch txn))
  in
  (* Same batch through the store. *)
  let store = Mxra_storage.Store.open_dir dir in
  Out_channel.with_open_text (Filename.concat dir "snapshot.xra") (fun oc ->
      Out_channel.output_string oc (Mxra_storage.Codec.encode_database initial));
  Mxra_storage.Store.close store;
  let store = Mxra_storage.Store.open_dir dir in
  let _, wal_ms =
    time_ms (fun () ->
        List.iter
          (fun i -> ignore (Mxra_storage.Store.commit store (txn i)))
          (List.init batch Fun.id))
  in
  let durable_state = Mxra_storage.Store.database store in
  Mxra_storage.Store.close store;
  let recovered, recover_ms =
    time_ms (fun () -> Mxra_storage.Store.recover_dir dir)
  in
  row "  %8s | %12s %12s %10s | %12s@." "txns" "memory ms" "durable ms"
    "overhead" "recover ms";
  row "  %8d | %12.1f %12.1f %9.2fx | %12.1f@." batch mem_ms wal_ms
    (wal_ms /. mem_ms) recover_ms;
  row "  recovery faithful: %b@."
    (Database.equal_states durable_state recovered)

(* --------------------------------------------------------------- E12 *)

(* Isolation (Definition 4.3: "T is executed in isolation"): interleaved
   strict-2PL execution vs the serial scheduler — throughput, lock
   traffic, and the serializability guarantee. *)
let e12_isolation () =
  header "E12  isolation: interleaved 2PL vs serial execution";
  let schema = Schema.of_list [ ("id", Domain.DInt); ("v", Domain.DInt) ] in
  (* Partitioned working sets: transactions touch one of [hot] tables,
     so lock conflicts scale with contention. *)
  let make_db tables =
    Database.of_relations
      (List.init tables (fun t ->
           ( Printf.sprintf "t%d" t,
             Relation.of_list schema
               (List.init 50 (fun i ->
                    Tuple.of_list [ Value.Int i; Value.Int 0 ])) )))
  in
  let txn rng tables i =
    let name = Printf.sprintf "t%d" (W.Rng.int rng tables) in
    Transaction.make
      ~name:(string_of_int i)
      [
        Statement.Update
          ( name,
            Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int (i mod 50)))
              (Expr.rel name),
            [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 1) ] );
      ]
  in
  let batch = if quick then 150 else 400 in
  row "  %8s | %10s %10s | %8s %10s | %12s@." "tables" "serial/s"
    "2PL/s" "blocks" "deadlocks" "serializable";
  List.iter
    (fun tables ->
      let db = make_db tables in
      let rng = W.Rng.make tables in
      let txns = List.init batch (txn rng tables) in
      let _, serial_ms = time_ms (fun () -> Transaction.run_all db txns) in
      let result, sched_ms =
        time_ms (fun () ->
            Mxra_concurrency.Scheduler.run
              ~isolation:Mxra_concurrency.Scheduler.Two_pl ~seed:1 db txns)
      in
      row "  %8d | %10.0f %10.0f | %8d %10d | %12b@." tables
        (float_of_int batch /. (serial_ms /. 1000.0))
        (float_of_int batch /. (sched_ms /. 1000.0))
        result.Mxra_concurrency.Scheduler.stats.Mxra_concurrency.Scheduler.blocks
        result.Mxra_concurrency.Scheduler.stats
          .Mxra_concurrency.Scheduler.deadlocks
        (Mxra_concurrency.Scheduler.equivalent_serial db txns result))
    [ 1; 4; 16 ]

(* --------------------------------------------------------------- E13 *)

(* EXPLAIN ANALYZE: estimation quality.  Every query runs instrumented;
   each physical operator reports estimated vs actual rows and the
   q-error max(est/act, act/est).  The figures are printed and written
   to BENCH_explain.json so estimation quality is tracked over time. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec flatten_report (r : Exec.report) =
  r :: List.concat_map flatten_report r.Exec.inputs

let e13_estimation_quality () =
  header "E13  EXPLAIN ANALYZE: estimation quality (q-error per operator)";
  let n = if quick then 2_000 else 10_000 in
  let beer_db =
    W.Beer.generate ~rng:(W.Rng.make 13) ~breweries:(n / 100) ~beers:n ()
  in
  let rng = W.Rng.make 1313 in
  let a = W.Synth.two_column_int ~rng ~size:(n / 4) ~distinct:500 in
  let b = W.Synth.two_column_int ~rng ~size:n ~distinct:500 in
  let c = W.Synth.two_column_int ~rng ~size:60 ~distinct:500 in
  let abc = Database.of_relations [ ("a", a); ("b", b); ("c", c) ] in
  let three_way =
    Expr.join
      (Pred.eq (Scalar.attr 4) (Scalar.attr 5))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a")
         (Expr.rel "b"))
      (Expr.rel "c")
  in
  let queries =
    [
      ("ex-3.1-select-join", beer_db, W.Beer.example_3_1);
      ("ex-3.2-group-join", beer_db, W.Beer.example_3_2);
      ("three-way-join", abc, three_way);
      ( "distinct-brewery",
        beer_db,
        Expr.unique (Expr.project_attrs [ 2 ] (Expr.rel "beer")) );
    ]
  in
  row "  %-20s | %8s %10s | %8s %8s | %12s@." "query" "rows" "ms" "max q"
    "mean q" "tuples moved";
  let results =
    List.map
      (fun (name, db, e) ->
        let optimized = Opt.Optimizer.optimize_db db e in
        let analysis = Exec.explain_analyze db optimized in
        let ops = flatten_report analysis.Exec.root in
        let qs = List.map (fun (r : Exec.report) -> r.Exec.q_error) ops in
        let max_q = List.fold_left Float.max 1.0 qs in
        let mean_q =
          exp
            (List.fold_left (fun acc q -> acc +. log q) 0.0 qs
            /. float_of_int (List.length qs))
        in
        let counter_of key =
          Metrics.count (Metrics.counter analysis.Exec.totals key)
        in
        row "  %-20s | %8d %10.2f | %8.2f %8.2f | %12d@." name
          (Relation.cardinal analysis.Exec.result)
          analysis.Exec.total_ms max_q mean_q (counter_of "tuples-moved");
        (name, analysis, ops, max_q, mean_q))
      queries
  in
  (* JSON, hand-rolled: the container image carries no JSON library and
     the shape is flat enough not to need one. *)
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E13-estimation-quality\",\n  \"queries\": [";
  List.iteri
    (fun i (name, (analysis : Exec.analysis), ops, max_q, mean_q) ->
      if i > 0 then bpf ",";
      bpf "\n    {\"name\": %S, \"rows\": %d, \"total_ms\": %.3f," name
        (Relation.cardinal analysis.Exec.result)
        analysis.Exec.total_ms;
      bpf " \"max_q_error\": %.4f, \"mean_q_error\": %.4f," max_q mean_q;
      List.iter
        (fun (key, value) ->
          match value with
          | Metrics.Count c -> bpf " \"%s\": %d," (json_escape key) c
          | Metrics.Duration_ms ms ->
              bpf " \"%s_ms\": %.3f," (json_escape key) ms)
        (Metrics.dump analysis.Exec.totals);
      bpf "\n     \"per_operator\": [";
      List.iteri
        (fun j (r : Exec.report) ->
          if j > 0 then bpf ",";
          bpf "\n       {\"op\": \"%s\", \"est\": %.1f, \"act\": %d, \"q\": \
               %.4f}"
            (json_escape (Physical.label r.Exec.node))
            r.Exec.estimated_rows r.Exec.actual.Exec.out_rows r.Exec.q_error)
        ops;
      bpf "]}")
    results;
  bpf "\n  ]\n}\n";
  let path = "BENCH_explain.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path

(* --------------------------------------------------------------- E14 *)

(* Observability overhead: the E13 query set executed through the same
   instrumented path bagdb uses, under four telemetry configurations —
   disabled (no sinks), a no-op sink (tracing machinery pays, output
   does not), a real Chrome trace-event sink writing to disk, and the
   no-op sink with the background resource sampler live at a 100 ms
   cadence (what [bagdb serve] runs).  The no-op and sampler overheads
   are the price of leaving telemetry compiled into every layer; both
   are budgeted at 5% and the run warns loudly when a measurement
   exceeds that. *)

let e14_observability_overhead () =
  header
    "E14  observability overhead (disabled / no-op / Chrome / sampler-100ms)";
  let module Trace = Mxra_obs.Trace in
  let n = if quick then 2_000 else 10_000 in
  let beer_db =
    W.Beer.generate ~rng:(W.Rng.make 13) ~breweries:(n / 100) ~beers:n ()
  in
  let rng = W.Rng.make 1414 in
  let a = W.Synth.two_column_int ~rng ~size:(n / 4) ~distinct:500 in
  let b = W.Synth.two_column_int ~rng ~size:n ~distinct:500 in
  let c = W.Synth.two_column_int ~rng ~size:60 ~distinct:500 in
  let abc = Database.of_relations [ ("a", a); ("b", b); ("c", c) ] in
  let three_way =
    Expr.join
      (Pred.eq (Scalar.attr 4) (Scalar.attr 5))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a")
         (Expr.rel "b"))
      (Expr.rel "c")
  in
  let queries =
    [
      (beer_db, W.Beer.example_3_1);
      (beer_db, W.Beer.example_3_2);
      (abc, three_way);
    ]
  in
  let plans =
    List.map
      (fun (db, e) -> (db, Planner.plan db (Opt.Optimizer.optimize_db db e)))
      queries
  in
  let reps = if quick then 3 else 10 in
  let sample () =
    for _ = 1 to reps do
      List.iter
        (fun (db, plan) ->
          Trace.with_span "query" (fun () ->
              ignore (Exec.run_instrumented db plan)))
        plans
    done
  in
  let trace_path = Filename.temp_file "mxra_e14" ".json" in
  let oc = open_out trace_path in
  let chrome = Mxra_obs.Chrome_sink.sink oc in
  (* The per-span cost is small against machine noise, so the four
     configurations are interleaved round-robin and each keeps its
     best round — back-to-back blocks would fold clock drift into the
     overhead figure.  The sampler configuration spawns its domain
     outside the timed region: the cost under test is the steady-state
     100 ms probing, not a one-off thread spawn.

     The sampler is a systhread, not a domain, and this experiment is
     why: an earlier domain-based sampler measured 12–45% here, all of
     it the stop-the-world minor-GC handshake that any extra domain —
     even one asleep — imposes on an allocation-heavy query thread
     when cores are scarce.  The systhread version leaves the runtime
     in single-domain mode and the gate below holds it to 5%. *)
  let sampler_probes =
    [
      Mxra_obs.Sampler.gc_probe;
      Mxra_obs.Sampler.uptime_probe;
      Mxra_ext.Pool.telemetry;
      Mxra_concurrency.Scheduler.telemetry;
    ]
  in
  let configs =
    [|
      ([], None);
      ([ Trace.null_sink ], None);
      ([ chrome ], None);
      ([ Trace.null_sink ], Some 100.0);
    |]
  in
  let best = Array.make (Array.length configs) Float.infinity in
  Trace.set_sinks [];
  sample () (* warm-up *);
  let rounds = if quick then 5 else 7 in
  for _ = 1 to rounds do
    Array.iteri
      (fun i (sinks, sampler_interval) ->
        Trace.set_sinks sinks;
        let sampler =
          Option.map
            (fun interval_ms ->
              Mxra_obs.Sampler.start ~interval_ms ~probes:sampler_probes ())
            sampler_interval
        in
        let _, ms = time_ms sample in
        Option.iter Mxra_obs.Sampler.stop sampler;
        if ms < best.(i) then best.(i) <- ms)
      configs
  done;
  Trace.set_sinks [ chrome ];
  Trace.close ();
  close_out oc;
  let disabled_ms = best.(0)
  and noop_ms = best.(1)
  and chrome_ms = best.(2)
  and sampler_ms = best.(3) in
  let trace_bytes = (Unix.stat trace_path).Unix.st_size in
  Sys.remove trace_path;
  let pct ms = (ms -. disabled_ms) /. disabled_ms *. 100.0 in
  row "  %-14s | %10s %10s@." "config" "ms" "overhead";
  row "  %-14s | %10.3f %9.1f%%@." "disabled" disabled_ms 0.0;
  row "  %-14s | %10.3f %9.1f%%@." "null-sink" noop_ms (pct noop_ms);
  row "  %-14s | %10.3f %9.1f%%  (%d bytes of trace)@." "chrome-sink"
    chrome_ms (pct chrome_ms) trace_bytes;
  row "  %-14s | %10.3f %9.1f%%@." "sampler-100ms" sampler_ms (pct sampler_ms);
  let noop_pct = pct noop_ms in
  let sampler_pct = pct sampler_ms in
  if noop_pct > 5.0 then
    row
      "@.  *** WARNING: no-op sink overhead %.1f%% exceeds the 5%% budget \
       (ISSUE acceptance) ***@.@."
      noop_pct;
  if sampler_pct > 5.0 then
    row
      "@.  *** WARNING: sampler-100ms overhead %.1f%% exceeds the 5%% budget \
       (ISSUE acceptance) ***@.@."
      sampler_pct;
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E14-observability-overhead\",\n";
  bpf "  \"reps\": %d, \"queries\": %d,\n" reps (List.length plans);
  bpf "  \"configs\": [\n";
  bpf "    {\"name\": \"disabled\", \"total_ms\": %.3f, \"overhead_pct\": \
       0.0},\n"
    disabled_ms;
  bpf "    {\"name\": \"null-sink\", \"total_ms\": %.3f, \"overhead_pct\": \
       %.2f},\n"
    noop_ms (pct noop_ms);
  bpf "    {\"name\": \"chrome-sink\", \"total_ms\": %.3f, \
       \"overhead_pct\": %.2f, \"trace_bytes\": %d},\n"
    chrome_ms (pct chrome_ms) trace_bytes;
  bpf "    {\"name\": \"sampler-100ms\", \"total_ms\": %.3f, \
       \"overhead_pct\": %.2f, \"sampler_interval_ms\": 100}\n"
    sampler_ms sampler_pct;
  bpf "  ],\n";
  bpf "  \"noop_overhead_pct\": %.2f,\n" noop_pct;
  bpf "  \"sampler_overhead_pct\": %.2f,\n" sampler_pct;
  bpf "  \"within_budget\": %b\n}\n" (noop_pct <= 5.0 && sampler_pct <= 5.0);
  let path = "BENCH_obs.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path

(* --------------------------------------------------------------- E15 *)

(* Real multicore speedup: the retail join+aggregate query (revenue per
   country) planned adaptively and executed on 1/2/4/8 domains of the
   shared pool.  The planner is the thing under test as much as the
   executor: with [jobs > 1] it inserts Exchange only when
   [min jobs cores] > 1 and the input clears the profitability floor —
   on a single-core host every plan stays sequential, so the curve must
   be flat at 1.0x (the bench fails loudly if any level dips below
   0.95x, the regression the old unconditional 512-row threshold
   caused).  Every parallel result is checked bag-equal to the
   sequential one before its timing counts; a degenerate chunk-size-1
   run of the sequential plan is timed alongside as the tuple-at-a-time
   comparison point.  The curve lands in BENCH_parallel.json for CI to
   archive. *)
let e15_parallel_speedup () =
  header "E15  multicore speedup (retail join+aggregate, domain pool)";
  let orders = if quick then 4_000 else 20_000 in
  let cores = Planner.available_cores () in
  let chunk = Exec.chunk_size () in
  let db =
    W.Retail.generate ~rng:(W.Rng.make 15) ~customers:(orders / 10) ~orders ()
  in
  let e = Opt.Optimizer.optimize_db db W.Retail.revenue_per_country in
  let seq_plan = Planner.plan db e in
  let baseline = Exec.run db seq_plan in
  row "  %d orders, %d result rows, %d cores, chunk size %d@." orders
    (Relation.cardinal baseline) cores chunk;
  let sweep =
    match jobs_cap with
    | None -> [ 1; 2; 4; 8 ]
    | Some n ->
        List.sort_uniq compare (n :: List.filter (fun j -> j <= n) [ 1; 2; 4 ])
  in
  row "  %6s | %10s | %8s | %9s | %s@." "jobs" "ms" "speedup" "exchanges"
    "bag-equal";
  let points =
    List.map
      (fun jobs ->
        Ext.Pool.set_default_size jobs;
        let plan = Planner.plan ~jobs db e in
        let exchanges = Physical.exchange_count plan in
        let result = Exec.run db plan in
        let equal = Relation.equal baseline result in
        (* Speedup as the paired-median ratio against sequential runs
           interleaved with this point's own, not against the single
           up-front sequential number: the ratio must survive host
           noise, the absolute figures matter less. *)
        let _, ms, speedup =
          interleaved_compare 5
            (fun () -> Exec.run db seq_plan)
            (fun () -> Exec.run db plan)
        in
        row "  %6d | %10.2f | %7.2fx | %9d | %b@." jobs ms speedup exchanges
          equal;
        (jobs, ms, speedup, exchanges, equal))
      sweep
  in
  Ext.Pool.set_default_size 1;
  (* The chunked-vs-tuple-at-a-time comparison point, measured after the
     sweep so both sides run on a warmed-up host. *)
  let seq_ms, chunk1_ms, _ =
    interleaved_compare 5
      (fun () -> Exec.run db seq_plan)
      (fun () -> Exec.run ~chunk_size:1 db seq_plan)
  in
  row "  sequential %.2f ms chunked, %.2f ms tuple-at-a-time (chunk 1)@."
    seq_ms chunk1_ms;
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E15-parallel-speedup\",\n";
  bpf "  \"orders\": %d,\n  \"cores\": %d,\n  \"chunk_size\": %d,\n" orders
    cores chunk;
  bpf "  \"sequential_ms\": %.3f,\n  \"chunk1_ms\": %.3f,\n  \"points\": ["
    seq_ms chunk1_ms;
  List.iteri
    (fun i (jobs, ms, speedup, exchanges, equal) ->
      if i > 0 then bpf ",";
      bpf "\n    {\"jobs\": %d, \"ms\": %.3f, \"speedup\": %.3f, \
           \"exchanges\": %d, \"bag_equal\": %b}"
        jobs ms speedup exchanges equal)
    points;
  bpf "\n  ]\n}\n";
  let path = "BENCH_parallel.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path;
  if not (List.for_all (fun (_, _, _, _, equal) -> equal) points) then (
    row "  ERROR: a parallel result differed from the sequential one@.";
    exit 1);
  if cores = 1 then begin
    (* One core: the adaptive planner must have kept every plan
       sequential (no Exchange), and requesting parallelism must not
       cost anything — the old unconditional threshold regressed to
       0.28x here. *)
    List.iter
      (fun (jobs, _, speedup, exchanges, _) ->
        if exchanges > 0 then (
          row "  ERROR: jobs=%d inserted %d Exchange node(s) on 1 core@." jobs
            exchanges;
          exit 1);
        if speedup < 0.95 then (
          row "  ERROR: jobs=%d speedup %.2fx < 0.95x on 1 core — asking for \
               parallelism made the query slower@."
            jobs speedup;
          exit 1))
      points;
    row "  1-core guarantee holds: no Exchange, all speedups >= 0.95x@."
  end

(* --------------------------------------------------------------- E17 *)

(* Statement-stats registry overhead: the E14 query set executed the
   way bagdb executes it — instrumented run, then one
   [Stmt_stats.record] with the statement text — under the registry
   disabled vs enabled.  Enabled pays fingerprint normalization + FNV,
   one mutex acquisition and a histogram observe per statement, plus
   the per-operator [Op_stats] feed inside [run_instrumented]; E14
   discipline applies (interleaved configs, best-of-rounds) and the
   same 5% budget gates it.  A third, informational figure times the
   full catalog round trip: attach [sys.*] and scan [sys.statements]
   through the engine. *)

let e17_catalog_overhead () =
  header "E17  statement-stats registry overhead (disabled / enabled)";
  let module Obs = Mxra_obs in
  let n = if quick then 2_000 else 10_000 in
  let beer_db =
    W.Beer.generate ~rng:(W.Rng.make 13) ~breweries:(n / 100) ~beers:n ()
  in
  let rng = W.Rng.make 1717 in
  let a = W.Synth.two_column_int ~rng ~size:(n / 4) ~distinct:500 in
  let b = W.Synth.two_column_int ~rng ~size:n ~distinct:500 in
  let c = W.Synth.two_column_int ~rng ~size:60 ~distinct:500 in
  let abc = Database.of_relations [ ("a", a); ("b", b); ("c", c) ] in
  let three_way =
    Expr.join
      (Pred.eq (Scalar.attr 4) (Scalar.attr 5))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a")
         (Expr.rel "b"))
      (Expr.rel "c")
  in
  let queries =
    [
      (beer_db, W.Beer.example_3_1);
      (beer_db, W.Beer.example_3_2);
      (abc, three_way);
    ]
  in
  let plans =
    List.map
      (fun (db, e) ->
        ( db,
          Expr.to_string e,
          Planner.plan db (Opt.Optimizer.optimize_db db e) ))
      queries
  in
  let reps = if quick then 3 else 10 in
  let sample () =
    for _ = 1 to reps do
      List.iter
        (fun (db, text, plan) ->
          let qid = Obs.Qid.mint () in
          let a = Exec.run_instrumented db plan in
          Obs.Stmt_stats.record ~qid
            ~rows:(Relation.cardinal a.Exec.result)
            ~wall_ms:a.Exec.total_ms text)
        plans
    done
  in
  let was_enabled = Obs.Stmt_stats.enabled () in
  Obs.Stmt_stats.set_enabled false;
  sample () (* warm-up *);
  let rounds = if quick then 5 else 9 in
  (* Paired-median ratio, not min-of-rounds: the per-statement cost
     under test (a fingerprint hash, one mutex, a histogram observe)
     is far below host noise, and the median of adjacent-in-time
     ratios is the only estimator here that stays within a few
     percent on a busy machine. *)
  let enabled_min, disabled_min, ratio =
    interleaved_compare rounds
      (fun () ->
        Obs.Stmt_stats.set_enabled true;
        sample ())
      (fun () ->
        Obs.Stmt_stats.set_enabled false;
        sample ())
  in
  Obs.Stmt_stats.set_enabled true;
  let entries = Obs.Stmt_stats.cardinality () in
  (* The catalog round trip, informational: attach the sys.* snapshot
     to the beer database and scan sys.statements through the engine. *)
  let catalog_ms =
    best_of_3 (fun () ->
        ignore
          (Exec.run_expr (Syscat.attach beer_db) (Expr.rel "sys.statements")))
  in
  Obs.Stmt_stats.set_enabled was_enabled;
  let disabled_ms = disabled_min and enabled_ms = enabled_min in
  let pct = (ratio -. 1.0) *. 100.0 in
  row "  %-14s | %10s %10s@." "config" "min ms" "overhead";
  row "  %-14s | %10.3f %9.1f%%@." "disabled" disabled_ms 0.0;
  row "  %-14s | %10.3f %9.1f%%  (paired median; %d fingerprints)@."
    "enabled" enabled_ms pct entries;
  row "  %-14s | %10.3f@." "catalog-scan" catalog_ms;
  if pct > 5.0 then
    row
      "@.  *** WARNING: statement-stats overhead %.1f%% exceeds the 5%% \
       budget (ISSUE acceptance) ***@.@."
      pct;
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E17-statement-stats-overhead\",\n";
  bpf "  \"reps\": %d, \"queries\": %d, \"fingerprints\": %d,\n" reps
    (List.length plans) entries;
  bpf "  \"configs\": [\n";
  bpf "    {\"name\": \"disabled\", \"total_ms\": %.3f, \"overhead_pct\": \
       0.0},\n"
    disabled_ms;
  bpf "    {\"name\": \"enabled\", \"total_ms\": %.3f, \"overhead_pct\": \
       %.2f}\n"
    enabled_ms pct;
  bpf "  ],\n";
  bpf "  \"catalog_scan_ms\": %.3f,\n" catalog_ms;
  bpf "  \"registry_overhead_pct\": %.2f,\n" pct;
  bpf "  \"within_budget\": %b\n}\n" (pct <= 5.0);
  let path = "BENCH_catalog.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path

(* --------------------------------------------------------------- E18 *)

(* Secondary-index payoff: the same point and range selections over
   retail [orders], planned against a database with index definitions
   and against one without.  The planner picks the access path on cost
   alone; the bench asserts the indexed database really produced
   IndexScan plans and spot-checks both paths bag-equal before any
   timing counts.  Timings are interleaved (E15 discipline) and
   normalized per lookup, since the sequential batch shrinks as the
   relation grows to keep the run bounded.  Three gates: the hash index
   must answer point lookups >= 10x faster than SeqScan from 100k rows
   up, indexed per-lookup cost must scale sublinearly across the size
   decades (the O(log n) claim — a seq scan grows 10x per decade), and
   EXPLAIN ANALYZE over the indexed paths must keep a geometric-mean
   q-error <= 2.  The curve lands in BENCH_index.json for CI. *)

let e18_index_scaling () =
  header "E18  secondary-index point/range scaling (retail orders)";
  let sizes =
    if quick then [ 1_000; 10_000; 100_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let point k =
    Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int k)) (Expr.rel "orders")
  in
  let range lo hi =
    Expr.select
      (Pred.conj
         [
           Pred.ge (Scalar.attr 3) (Scalar.int lo);
           Pred.lt (Scalar.attr 3) (Scalar.int hi);
         ])
      (Expr.rel "orders")
  in
  let is_index_scan = function Physical.Index_scan _ -> true | _ -> false in
  row "  %9s | %11s %11s %9s | %11s %11s %9s@." "orders" "pt seq us"
    "pt idx us" "speedup" "rg seq us" "rg idx us" "speedup";
  let q_errors = ref [] in
  let points =
    List.map
      (fun n ->
        (* Lineitems are irrelevant here — one per order keeps the 1M
           build cheap.  The sequential batch shrinks with n so a full
           point sweep stays ~2M scanned rows per timed run; the indexed
           batch stays at 400 lookups so its total is measurable. *)
        let db =
          W.Retail.generate
            ~rng:(W.Rng.make 18)
            ~customers:(max 10 (n / 10))
            ~orders:n ~items_per_order:1 ()
        in
        let db_idx =
          db
          |> Database.create_index ~name:"orders_id" ~rel:"orders" ~cols:[ 1 ]
               ~kind:Database.Hash
          |> Database.create_index ~name:"orders_day" ~rel:"orders"
               ~cols:[ 3 ] ~kind:Database.Ordered
        in
        (* One stats/schema pass per size — [Planner.plan] recomputes
           database statistics per call, which would dominate the run
           at 1M rows times hundreds of planned lookups. *)
        let schemas = Typecheck.env_of_database db in
        let stats = Stats.env_of_database db in
        let plan_idx e =
          Planner.plan_with ~stats
            ~indexes:(fun r -> Database.indexes_on r db_idx)
            schemas e
        in
        let plan_seq e = Planner.plan_with ~stats schemas e in
        let rng = W.Rng.make (1800 + n) in
        let n_idx = 400 in
        let n_seq = max 24 (min 400 (2_000_000 / n)) in
        let keys m = List.init m (fun _ -> W.Rng.int rng n) in
        let idx_keys = keys n_idx and seq_keys = keys n_seq in
        let n_ridx = 100 in
        let n_rseq = max 12 (min 100 (1_000_000 / n)) in
        let ranges m =
          List.init m (fun _ ->
              let lo = W.Rng.int rng 360 in
              (lo, lo + 5))
        in
        let idx_ranges = ranges n_ridx and seq_ranges = ranges n_rseq in
        let idx_plans = List.map (fun k -> plan_idx (point k)) idx_keys in
        let seq_plans = List.map (fun k -> plan_seq (point k)) seq_keys in
        let idx_rplans =
          List.map (fun (lo, hi) -> plan_idx (range lo hi)) idx_ranges
        in
        let seq_rplans =
          List.map (fun (lo, hi) -> plan_seq (range lo hi)) seq_ranges
        in
        if not (List.for_all is_index_scan (idx_plans @ idx_rplans)) then (
          row "  ERROR: a query on the indexed database missed its index@.";
          exit 1);
        (* Spot-check both access paths compute the same bag, and warm
           the index structures so build cost stays out of the probes. *)
        List.iter
          (fun k ->
            let via_idx = Exec.run db_idx (plan_idx (point k)) in
            let via_seq = Exec.run db (plan_seq (point k)) in
            if not (Relation.equal via_idx via_seq) then (
              row "  ERROR: index and seq scan disagree on %%1 = %d@." k;
              exit 1))
          [ 0; n / 2; n - 1 ];
        ignore (Exec.run db_idx (List.hd idx_rplans));
        let run db plans () =
          List.iter (fun p -> ignore (Exec.run db p)) plans
        in
        let pt_seq_ms, pt_idx_ms, pt_ratio =
          interleaved_compare 5 (run db seq_plans) (run db_idx idx_plans)
        in
        let rg_seq_ms, rg_idx_ms, rg_ratio =
          interleaved_compare 5 (run db seq_rplans) (run db_idx idx_rplans)
        in
        let per count ms = ms *. 1000.0 /. float_of_int count in
        let pt_speedup = pt_ratio *. float_of_int n_idx /. float_of_int n_seq in
        let rg_speedup =
          rg_ratio *. float_of_int n_ridx /. float_of_int n_rseq
        in
        row "  %9d | %11.2f %11.2f %8.1fx | %11.2f %11.2f %8.1fx@." n
          (per n_seq pt_seq_ms) (per n_idx pt_idx_ms) pt_speedup
          (per n_rseq rg_seq_ms) (per n_ridx rg_idx_ms) rg_speedup;
        (* q-error of the indexed access paths at one mid-size: the
           operator's estimate (matching-rows from distinct-key stats)
           against what the probe actually returned. *)
        if n = 10_000 then
          q_errors :=
            List.map
              (fun e ->
                let analysis = Exec.explain_analyze db_idx e in
                ( Physical.label analysis.Exec.root.Exec.node,
                  analysis.Exec.root.Exec.q_error ))
              ([ point 17; point (n / 2); point (n - 1) ]
              @ [ range 10 15; range 100 130; range 300 364 ]);
        (n, n_seq, pt_seq_ms, pt_idx_ms, pt_speedup, n_rseq, rg_seq_ms,
         rg_idx_ms, rg_speedup))
      sizes
  in
  let mean_q =
    let qs = List.map snd !q_errors in
    exp
      (List.fold_left (fun acc q -> acc +. log q) 0.0 qs
      /. float_of_int (max 1 (List.length qs)))
  in
  List.iter
    (fun (label, q) -> row "  q=%.2f  %s@." q label)
    !q_errors;
  row "  geometric-mean q-error over indexed paths: %.3f@." mean_q;
  (* Gate 1: >= 10x on point lookups from 100k rows up. *)
  let gate_10x =
    List.for_all
      (fun (n, _, _, _, speedup, _, _, _, _) -> n < 100_000 || speedup >= 10.0)
      points
  in
  (* Gate 2: indexed per-lookup cost sublinear across decades — each
     10x growth in rows may cost at most 5x per probe (O(n) would be
     10x; O(log n) measures near 1x, the slack absorbs host noise on
     sub-millisecond batches). *)
  let rec sublinear = function
    | (n1, _, _, ms1, _, _, _, _, _) :: ((n2, _, _, ms2, _, _, _, _, _) :: _ as rest)
      ->
        let grew = float_of_int n2 /. float_of_int n1 in
        let cost = ms2 /. Float.max ms1 1e-6 in
        if cost > grew /. 2.0 then (
          row "  ERROR: point probes grew %.1fx from %d to %d rows@." cost n1
            n2;
          false)
        else sublinear rest
    | _ -> true
  in
  let gate_sublinear = sublinear points in
  let gate_q = mean_q <= 2.0 in
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E18-index-scaling\",\n  \"sizes\": [";
  List.iteri
    (fun i
         (n, n_seq, pt_seq_ms, pt_idx_ms, pt_speedup, n_rseq, rg_seq_ms,
          rg_idx_ms, rg_speedup) ->
      if i > 0 then bpf ",";
      bpf "\n    {\"orders\": %d,\n" n;
      bpf
        "     \"point\": {\"seq_lookups\": %d, \"seq_ms\": %.3f, \
         \"idx_lookups\": 400, \"idx_ms\": %.3f, \"speedup_per_lookup\": \
         %.2f},\n"
        n_seq pt_seq_ms pt_idx_ms pt_speedup;
      bpf
        "     \"range\": {\"seq_lookups\": %d, \"seq_ms\": %.3f, \
         \"idx_lookups\": 100, \"idx_ms\": %.3f, \"speedup_per_lookup\": \
         %.2f}}"
        n_rseq rg_seq_ms rg_idx_ms rg_speedup)
    points;
  bpf "\n  ],\n  \"q_errors\": [";
  List.iteri
    (fun i (label, q) ->
      if i > 0 then bpf ",";
      bpf "\n    {\"op\": \"%s\", \"q\": %.4f}" (json_escape label) q)
    !q_errors;
  bpf "\n  ],\n  \"mean_q_error\": %.4f,\n" mean_q;
  bpf
    "  \"gates\": {\"point_10x_at_100k\": %b, \"sublinear_point\": %b, \
     \"q_error_leq_2\": %b}\n}\n"
    gate_10x gate_sublinear gate_q;
  let path = "BENCH_index.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path;
  if not gate_10x then (
    row "  ERROR: point lookups via the hash index were < 10x faster than \
         SeqScan at >= 100k rows@.";
    exit 1);
  if not gate_sublinear then exit 1;
  if not gate_q then (
    row "  ERROR: geometric-mean q-error %.3f > 2.0 on indexed paths@." mean_q;
    exit 1)

(* --------------------------------------------------------------- E19 *)

(* MVCC snapshot isolation vs locking under a hot writer, plus the
   group-commit fsync-amortization curve.  Part A: one long writer
   transaction updates the hot relation while short readers arrive
   mid-flight; each reader's steps are scripted consecutively (the way
   a real scheduler would run a short transaction to completion), so
   under SI a reader's latency is just its own work, while under 2PL
   its first step blocks on the writer's X lock and it finishes only
   after the writer commits.  Gates: SI reader p50 within 1.5x of the
   idle-writer baseline; 2PL reader p50 at least 5x worse than it.
   Part B: the same transaction count committed in groups of k shares
   one WAL append + fsync per group — the measured fsync count must
   follow ceil(M/k) exactly.  Everything lands in BENCH_mvcc.json. *)
let e19_mvcc () =
  header "E19  snapshot isolation: readers vs a hot writer, group commit";
  let module Sched = Mxra_concurrency.Scheduler in
  let module Store = Mxra_storage.Store in
  let module Vfs = Mxra_storage.Vfs in
  let hot_rows = if quick then 1_500 else 4_000 in
  let readers = 8 and chunks = 5 in
  let updates = readers * chunks in
  let schema = Schema.of_list [ ("id", Domain.DInt); ("v", Domain.DInt) ] in
  let db =
    Database.of_relations
      [
        ( "hot",
          Relation.of_list schema
            (List.init hot_rows (fun i ->
                 Tuple.of_list [ Value.Int i; Value.Int 0 ])) );
        ( "tiny",
          Relation.of_list schema [ Tuple.of_list [ Value.Int 0; Value.Int 0 ] ]
        );
      ]
  in
  let update_hot k =
    Statement.Update
      ( "hot",
        Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int k)) (Expr.rel "hot"),
        [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 1) ] )
  in
  let hot_writer =
    Transaction.make ~name:"hot-writer"
      (List.init updates (fun s -> update_hot (s mod hot_rows)))
  in
  let idle_writer =
    Transaction.make ~name:"idle-writer"
      (List.init updates (fun _ -> Statement.Query (Expr.rel "tiny")))
  in
  let reader i =
    Transaction.make
      ~name:(Printf.sprintf "r%d" i)
      [
        Statement.Query
          (Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int i)) (Expr.rel "hot"));
      ]
  in
  (* The arrival script: the writer advances [chunks] statements, then
     reader i runs its query and commit back to back; the writer's own
     commit closes the batch.  Entries naming a blocked reader are
     skipped, which is exactly how 2PL degrades here. *)
  let script =
    List.concat
      (List.init readers (fun i ->
           List.init chunks (fun _ -> 0) @ [ i + 1; i + 1 ]))
    @ [ 0 ]
  in
  let reader_latencies isolation writer seed =
    let txns = writer :: List.init readers (fun i -> reader (i + 1)) in
    let result = Sched.run ~isolation ~schedule:script ~seed db txns in
    let committed =
      List.filter
        (function Sched.Committed -> true | Sched.Aborted _ -> false)
        result.Sched.outcomes
    in
    if List.length committed <> readers + 1 then (
      row "  ERROR: %d/%d transactions committed under %s@."
        (List.length committed) (readers + 1)
        (Sched.isolation_name isolation);
      exit 1);
    (result.Sched.stats.Sched.blocks, List.tl result.Sched.latencies_ms)
  in
  let rounds = [ 1; 2; 3; 4; 5 ] in
  let pooled isolation writer =
    let blocks = ref 0 and lats = ref [] in
    List.iter
      (fun seed ->
        let b, ls = reader_latencies isolation writer seed in
        blocks := !blocks + b;
        lats := ls @ !lats)
      rounds;
    (!blocks, !lats)
  in
  let p50 xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let _, base = pooled Sched.Si idle_writer in
  let si_blocks, si = pooled Sched.Si hot_writer in
  let tp_blocks, tp = pooled Sched.Two_pl hot_writer in
  let base_p50 = p50 base and si_p50 = p50 si and tp_p50 = p50 tp in
  let si_ratio = si_p50 /. base_p50 and tp_ratio = tp_p50 /. base_p50 in
  row "  %d hot rows, %d writer updates, %d readers x %d rounds@." hot_rows
    updates readers (List.length rounds);
  row "  %16s | %12s | %10s | %7s@." "mode" "reader p50" "vs idle" "blocks";
  row "  %16s | %9.3f ms | %9s | %7d@." "idle writer (si)" base_p50 "1.00x" 0;
  row "  %16s | %9.3f ms | %9.2fx | %7d@." "si" si_p50 si_ratio si_blocks;
  row "  %16s | %9.3f ms | %9.2fx | %7d@." "2pl" tp_p50 tp_ratio tp_blocks;
  (* Part B: fsync amortization on the in-memory VFS (pure syscall
     counts; timing on a memory "disk" is informational only). *)
  let m = 64 in
  let initial =
    Database.of_relations
      [
        ( "t",
          Relation.of_list schema
            (List.init 100 (fun i -> Tuple.of_list [ Value.Int i; Value.Int 0 ]))
        );
      ]
  in
  let insert_txn i =
    Transaction.make
      [
        Statement.Insert
          ( "t",
            Expr.const
              (Relation.of_list schema
                 [ Tuple.of_list [ Value.Int (1000 + i); Value.Int i ] ]) );
      ]
  in
  row "  %8s | %8s %10s | %10s@." "group" "fsyncs" "expected" "ms / txn";
  let curve =
    List.map
      (fun k ->
        let vfs = Vfs.memory () in
        let dir = "bench-group" in
        vfs.Vfs.write_file
          (Filename.concat dir "snapshot.xra")
          (Mxra_storage.Codec.encode_database initial);
        let store = Store.open_dir ~vfs dir in
        let _, ms =
          time_ms (fun () ->
              let rec go i =
                if i < m then begin
                  let g = min k (m - i) in
                  ignore
                    (Store.commit_group store
                       (List.init g (fun j -> insert_txn (i + j))));
                  go (i + g)
                end
              in
              go 0)
        in
        let fsyncs = Store.fsyncs store in
        let expected = (m + k - 1) / k in
        let records = Store.log_records store in
        Store.close store;
        row "  %8d | %8d %10d | %10.4f@." k fsyncs expected
          (ms /. float_of_int m);
        (k, fsyncs, expected, records, ms))
      [ 1; 2; 4; 8; 16 ]
  in
  let gate_si = si_ratio <= 1.5 in
  let gate_2pl = tp_ratio >= 5.0 in
  let gate_fsync =
    List.for_all (fun (_, f, e, r, _) -> f = e && r = m) curve
  in
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E19-mvcc-group-commit\",\n";
  bpf "  \"hot_rows\": %d,\n  \"readers\": %d,\n  \"writer_updates\": %d,\n"
    hot_rows readers updates;
  bpf "  \"baseline_p50_ms\": %.4f,\n  \"si_p50_ms\": %.4f,\n" base_p50 si_p50;
  bpf "  \"twopl_p50_ms\": %.4f,\n" tp_p50;
  bpf "  \"si_ratio\": %.3f,\n  \"twopl_ratio\": %.3f,\n" si_ratio tp_ratio;
  bpf "  \"si_blocks\": %d,\n  \"twopl_blocks\": %d,\n" si_blocks tp_blocks;
  bpf "  \"fsync_curve\": [";
  List.iteri
    (fun i (k, f, e, _, ms) ->
      if i > 0 then bpf ",";
      bpf "\n    {\"group\": %d, \"fsyncs\": %d, \"expected\": %d, \
           \"ms_per_txn\": %.5f}"
        k f e
        (ms /. float_of_int m))
    curve;
  bpf "\n  ],\n";
  bpf
    "  \"gates\": {\"si_readers_unaffected\": %b, \"twopl_degrades\": %b, \
     \"fsync_amortization\": %b}\n}\n"
    gate_si gate_2pl gate_fsync;
  let path = "BENCH_mvcc.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path;
  if not gate_si then (
    row "  ERROR: SI reader p50 %.2fx the idle-writer baseline (gate 1.5x) — \
         readers are not isolated from the hot writer@."
      si_ratio;
    exit 1);
  if not gate_2pl then (
    row "  ERROR: 2PL reader p50 only %.2fx the baseline (gate 5x) — the \
         locking contrast has vanished, the workload no longer contends@."
      tp_ratio;
    exit 1);
  if not gate_fsync then (
    row "  ERROR: group commit did not amortize fsyncs as ceil(M/k)@.";
    exit 1)

(* --------------------------------------------------------------- E20 *)

(* Wait-event instrumentation and the ASH: three claims.  (a) The
   always-on hooks plus registration, progress tracking and ring
   pushes cost <= 5% on a real query workload — measured with the E17
   paired-median discipline, ASH enabled vs disabled, everything else
   identical.  (b) One contended MVCC workload (two writers in
   opposite orders under SI then 2PL, a durable commit on the memory
   VFS, a parallel map on a 2-domain pool, cadence samples via the
   scheduler's on_step) lights up every wait class — lock, conflict,
   io.fsync, io.wal, pool.queue, cpu.exec — read back through the
   engine from sys.ash like any relation.  (c) sys.progress for an
   in-flight query advances monotonically as the stream is pulled.
   Results land in BENCH_ash.json. *)

let e20_ash () =
  header "E20  wait events + ASH: overhead, class coverage, live progress";
  let module Obs = Mxra_obs in
  let module Sched = Mxra_concurrency.Scheduler in
  let module Store = Mxra_storage.Store in
  let module Vfs = Mxra_storage.Vfs in
  let module Pool = Ext.Pool in
  (* Part A: overhead.  The E17 workload — two beer examples and a
     three-way join — run with the full per-query ASH lifecycle
     (register, ambient slot so the executor's progress hook attaches,
     finish) against the same loop with ASH disabled, where register
     returns the inert slot and the hook never installs. *)
  let n = if quick then 2_000 else 10_000 in
  let beer_db =
    W.Beer.generate ~rng:(W.Rng.make 13) ~breweries:(n / 100) ~beers:n ()
  in
  let rng = W.Rng.make 2020 in
  let a = W.Synth.two_column_int ~rng ~size:(n / 4) ~distinct:500 in
  let b = W.Synth.two_column_int ~rng ~size:n ~distinct:500 in
  let c = W.Synth.two_column_int ~rng ~size:60 ~distinct:500 in
  let abc = Database.of_relations [ ("a", a); ("b", b); ("c", c) ] in
  let three_way =
    Expr.join
      (Pred.eq (Scalar.attr 4) (Scalar.attr 5))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a")
         (Expr.rel "b"))
      (Expr.rel "c")
  in
  let queries =
    [
      (beer_db, W.Beer.example_3_1);
      (beer_db, W.Beer.example_3_2);
      (abc, three_way);
    ]
  in
  let plans =
    List.map
      (fun (db, e) ->
        ( db,
          Expr.to_string e,
          Planner.plan db (Opt.Optimizer.optimize_db db e) ))
      queries
  in
  let reps = if quick then 3 else 10 in
  let sample () =
    for _ = 1 to reps do
      List.iter
        (fun (db, text, plan) ->
          let qid = Obs.Qid.mint () in
          let slot = Obs.Ash.register ~lang:"xra" ~text ~qid () in
          Obs.Ash.with_slot slot (fun () -> ignore (Exec.run db plan));
          Obs.Ash.finish slot)
        plans
    done
  in
  let was_enabled = Obs.Ash.enabled () in
  Obs.Ash.set_enabled false;
  sample () (* warm-up *);
  let rounds = if quick then 5 else 9 in
  let enabled_min, disabled_min, ratio =
    interleaved_compare rounds
      (fun () ->
        Obs.Ash.set_enabled true;
        sample ())
      (fun () ->
        Obs.Ash.set_enabled false;
        sample ())
  in
  let pct = (ratio -. 1.0) *. 100.0 in
  row "  %-14s | %10s %10s@." "config" "min ms" "overhead";
  row "  %-14s | %10.3f %9.1f%%@." "ash off" disabled_min 0.0;
  row "  %-14s | %10.3f %9.1f%%  (paired median)@." "ash on" enabled_min pct;
  (* Part B: class coverage.  Fresh ring, then one contended pass:
     w1 updates rows (1,2), w2 updates (2,1), fully interleaved.
     Under SI the second committer loses first-committer-wins
     (conflict); under 2PL w2 blocks on the relation lock and its
     settled wait lands as a lock event.  on_step samples the running
     sessions (cpu.exec); a durable group commit on the memory VFS
     emits io.wal and io.fsync; a chunked parallel map on a 2-domain
     pool makes the submitting thread wait out the drain
     (pool.queue). *)
  Obs.Ash.set_enabled true;
  Obs.Ash.clear ();
  let schema = Schema.of_list [ ("id", Domain.DInt); ("v", Domain.DInt) ] in
  let mk_rows m =
    List.init m (fun i -> Tuple.of_list [ Value.Int i; Value.Int 0 ])
  in
  let cdb =
    Database.of_relations [ ("hot", Relation.of_list schema (mk_rows 64)) ]
  in
  let update_k k =
    Statement.Update
      ( "hot",
        Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int k)) (Expr.rel "hot"),
        [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 1) ] )
  in
  let w1 () = Transaction.make ~name:"w1" [ update_k 1; update_k 2 ] in
  let w2 () = Transaction.make ~name:"w2" [ update_k 2; update_k 1 ] in
  let on_step () = ignore (Obs.Ash.sample_now ()) in
  let interleaved = [ 0; 1; 0; 1; 0; 1; 0; 1 ] in
  ignore
    (Sched.run ~isolation:Sched.Si ~schedule:interleaved ~on_step ~seed:7 cdb
       [ w1 (); w2 () ]);
  ignore
    (Sched.run ~isolation:Sched.Two_pl ~schedule:interleaved ~on_step ~seed:7
       cdb
       [ w1 (); w2 () ]);
  (let vfs = Vfs.memory () in
   let dir = "bench-ash" in
   vfs.Vfs.write_file
     (Filename.concat dir "snapshot.xra")
     (Mxra_storage.Codec.encode_database cdb);
   let store = Store.open_dir ~vfs dir in
   ignore (Store.commit_group store [ w1 () ]);
   Store.close store);
  (* The drain wait only exists when a worker domain is still inside a
     morsel as the caller runs out — a race the caller can lose on a
     fast map, so sleep-heavy morsels and a bounded retry make the
     event certain without ever faking one. *)
  (let before = Obs.Wait.count Obs.Wait.Pool_queue in
   let tries = ref 0 in
   while Obs.Wait.count Obs.Wait.Pool_queue = before && !tries < 5 do
     incr tries;
     Pool.with_pool 2 (fun p ->
         ignore
           (Pool.map_array ~chunk:1 p
              (fun _ -> Unix.sleepf 0.002)
              (Array.init 32 Fun.id)))
   done);
  let ash_rel = Exec.run_expr (Syscat.attach cdb) (Expr.rel "sys.ash") in
  let classes =
    List.fold_left
      (fun acc t ->
        match Tuple.attr t 4 with
        | Value.Str s when not (List.mem s acc) -> s :: acc
        | _ -> acc)
      []
      (Relation.to_list ash_rel)
    |> List.sort compare
  in
  let required = [ "conflict"; "cpu.exec"; "io.fsync"; "lock"; "pool.queue" ] in
  let missing = List.filter (fun c -> not (List.mem c classes)) required in
  row "  ash rows: %d   classes: %s@."
    (Relation.cardinal ash_rel)
    (String.concat ", " classes);
  (* Part C: progress monotonicity.  Stream a selection over 20k rows
     pull-at-a-time with a live slot; every ~1k tuples read the
     statement's sys.progress row and require rows and chunks never to
     move backwards. *)
  let big =
    W.Synth.two_column_int ~rng ~size:(if quick then 5_000 else 20_000)
      ~distinct:100
  in
  let pdb = Database.of_relations [ ("big", big) ] in
  let pexpr =
    Expr.select (Pred.ge (Scalar.attr 2) (Scalar.int 0)) (Expr.rel "big")
  in
  let pplan = Planner.plan pdb (Opt.Optimizer.optimize_db pdb pexpr) in
  let pqid = Obs.Qid.mint () in
  let pslot = Obs.Ash.register ~lang:"xra" ~text:"progress probe" ~qid:pqid () in
  Obs.Ash.set_estimate pslot (float_of_int (Relation.cardinal big));
  let mono = ref true and probes = ref 0 and lr = ref 0 and lc = ref 0 in
  let pulled = ref 0 in
  Obs.Ash.with_slot pslot (fun () ->
      Exec.stream ~chunk_size:256 pdb pplan
      |> Seq.iter (fun _ ->
             incr pulled;
             if !pulled mod 997 = 0 then
               match
                 List.find_opt
                   (fun p -> p.Obs.Ash.p_qid = pqid)
                   (Obs.Ash.progress ())
               with
               | Some p ->
                   incr probes;
                   if p.Obs.Ash.p_rows < !lr || p.Obs.Ash.p_chunks < !lc then
                     mono := false;
                   if p.Obs.Ash.p_pct > 100.0 then mono := false;
                   lr := p.Obs.Ash.p_rows;
                   lc := p.Obs.Ash.p_chunks
               | None -> mono := false));
  Obs.Ash.finish pslot;
  Obs.Ash.set_enabled was_enabled;
  let gate_overhead = pct <= 5.0 in
  let gate_classes = missing = [] in
  let gate_progress = !mono && !probes > 0 && !lr > 0 in
  row "  progress probes: %d  final rows seen: %d  monotonic: %b@." !probes
    !lr !mono;
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"experiment\": \"E20-ash-wait-events\",\n";
  bpf "  \"reps\": %d, \"queries\": %d,\n" reps (List.length plans);
  bpf "  \"ash_off_ms\": %.3f,\n  \"ash_on_ms\": %.3f,\n" disabled_min
    enabled_min;
  bpf "  \"overhead_pct\": %.2f,\n" pct;
  bpf "  \"wait_classes\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") classes));
  bpf "  \"progress_probes\": %d,\n  \"progress_rows\": %d,\n" !probes !lr;
  bpf
    "  \"gates\": {\"overhead_within_5pct\": %b, \"all_wait_classes\": %b, \
     \"progress_monotonic\": %b}\n}\n"
    gate_overhead gate_classes gate_progress;
  let path = "BENCH_ash.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  row "  wrote %s@." path;
  if not gate_overhead then (
    row
      "  ERROR: ASH overhead %.1f%% exceeds the 5%% budget (ISSUE \
       acceptance)@."
      pct;
    exit 1);
  if not gate_classes then (
    row "  ERROR: wait classes missing from sys.ash: %s@."
      (String.concat ", " missing);
    exit 1);
  if not gate_progress then (
    row "  ERROR: sys.progress went backwards or never advanced@.";
    exit 1)

(* ------------------------------------------------- bechamel suite *)

let bechamel_suite () =
  header "Bechamel micro-benchmarks (OLS estimate per run, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* Shared inputs, prepared once. *)
  let rng = W.Rng.make 2026 in
  let n = if quick then 2_000 else 8_000 in
  let r = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 4) in
  let s = W.Synth.two_column_int ~rng ~size:n ~distinct:(n / 4) in
  let db = Database.of_relations [ ("r", r); ("s", s) ] in
  let beer_db = W.Beer.generate ~rng ~breweries:50 ~beers:n () in
  let join_expr =
    Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "r")
      (Expr.rel "s")
  in
  let pipeline =
    Expr.project_attrs [ 2 ]
      (Expr.select (Pred.lt (Scalar.attr 2) (Scalar.attr 3)) join_expr)
  in
  let graph = W.Synth.chain_relation ~rng ~nodes:150 ~extra_edges:150 in
  let stage = Staged.stage in
  let tests =
    Test.make_grouped ~name:"mxra"
      [
        Test.make_grouped ~name:"E1-dup-removal"
          [
            Test.make ~name:"bag-pipeline"
              (stage (fun () -> Exec.run_expr db pipeline));
            Test.make ~name:"set-pipeline"
              (stage (fun () -> Exec.run_expr db (setify pipeline)));
          ];
        Test.make_grouped ~name:"E2-thm31"
          [
            Test.make ~name:"native-intersect"
              (stage (fun () ->
                   Exec.run_expr db
                     (Expr.intersect (Expr.rel "r") (Expr.rel "s"))));
            Test.make ~name:"derived-intersect"
              (stage (fun () ->
                   Exec.run_expr db
                     (Expr.diff (Expr.rel "r")
                        (Expr.diff (Expr.rel "r") (Expr.rel "s")))));
            Test.make ~name:"hash-join"
              (stage (fun () -> Exec.run_expr db join_expr));
          ];
        Test.make_grouped ~name:"E3-thm32"
          [
            Test.make ~name:"select-union"
              (stage (fun () ->
                   Exec.run_expr db
                     (Expr.select
                        (Pred.lt (Scalar.attr 1) (Scalar.int 100))
                        (Expr.union (Expr.rel "r") (Expr.rel "s")))));
            Test.make ~name:"distributed"
              (stage (fun () ->
                   let p = Pred.lt (Scalar.attr 1) (Scalar.int 100) in
                   Exec.run_expr db
                     (Expr.union
                        (Expr.select p (Expr.rel "r"))
                        (Expr.select p (Expr.rel "s")))));
          ];
        Test.make_grouped ~name:"E5-early-projection"
          [
            Test.make ~name:"full"
              (stage (fun () -> Exec.run_expr beer_db W.Beer.example_3_2));
            Test.make ~name:"reduced"
              (stage (fun () ->
                   Exec.run_expr beer_db W.Beer.example_3_2_reduced));
          ];
        Test.make_grouped ~name:"E8-closure"
          [
            Test.make ~name:"semi-naive"
              (stage (fun () -> Ext.Closure.closure graph));
            Test.make ~name:"naive"
              (stage (fun () -> Ext.Closure.closure_naive graph));
          ];
        Test.make_grouped ~name:"E9-E10-frontends"
          [
            Test.make ~name:"optimize-ex32"
              (stage (fun () ->
                   Opt.Optimizer.optimize_db beer_db W.Beer.example_3_2));
            Test.make ~name:"sql-translate"
              (stage (fun () ->
                   Mxra_sql.Translate.query_of_string
                     (Typecheck.env_of_database beer_db)
                     "SELECT country, AVG(alcperc) FROM beer, brewery WHERE \
                      beer.brewery = brewery.name GROUP BY country"));
          ];
      ]
  in
  let quota = Time.second (if quick then 0.1 else 0.4) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> Float.nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then row "  %-44s %14s@." name "n/a"
      else if ns > 1e6 then row "  %-44s %11.3f ms@." name (ns /. 1e6)
      else row "  %-44s %11.1f ns@." name ns)
    rows

let () =
  Format.printf
    "mxra benchmark harness: experiments E1..E20 of DESIGN.md section 5%s@."
    (if quick then " (quick mode)" else "");
  let run name f = if wants name then f () in
  run "e1" e1_dup_removal;
  run "e2" e2_derived_operators;
  run "e3" e3_distribution;
  run "e4" e4_join_order;
  run "e5" e5_early_projection;
  run "e6" e6_transactions;
  run "e7" e7_parallel;
  run "e8" e8_closure;
  run "e9" e9_optimizer_gain;
  run "e10" e10_sql;
  run "e11" e11_durability;
  run "e12" e12_isolation;
  run "e13" e13_estimation_quality;
  run "e14" e14_observability_overhead;
  run "e15" e15_parallel_speedup;
  run "e17" e17_catalog_overhead;
  run "e18" e18_index_scaling;
  run "e19" e19_mvcc;
  run "e20" e20_ash;
  run "bechamel" bechamel_suite;
  Format.printf "@.done.@."
