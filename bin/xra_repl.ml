(* Interactive XRA shell: the multi-set extended relational algebra as a
   database language, the way PRISMA/DB exposed it.

   Statements auto-commit (each runs as a single-statement transaction);
   a begin ... end bracket runs atomically.  Queries are optimized and
   executed by the physical engine.  Meta commands start with a dot:

     .help               this text
     .quit               leave
     .tables             list relations
     .show NAME          print a relation
     .schema NAME        print a schema
     .beer               load the paper's beer database
     .sql STMT           run one SQL statement instead of XRA
     .plan EXPR          show the optimized physical plan of an expression
     .load FILE          run an XRA script file
     .trace on [FILE]    start tracing to a Chrome trace-event file
     .trace off          stop tracing and finish the file *)

open Mxra_relational
open Mxra_core
module Xra = Mxra_xra
module Sql = Mxra_sql
module Obs = Mxra_obs
module Syscat = Mxra_engine.Syscat
module Trace = Mxra_obs.Trace

let print_relation r = Format.printf "%a@." Relation.pp_table r

(* .trace on/off: one Chrome sink at a time, channel owned here. *)
let trace_channel : out_channel option ref = ref None

let trace_off () =
  if Trace.enabled () then Trace.close ();
  Option.iter close_out !trace_channel;
  trace_channel := None

let trace_on path =
  trace_off ();
  let oc = open_out path in
  trace_channel := Some oc;
  Trace.set_sinks [ Mxra_obs.Chrome_sink.sink oc ];
  Format.printf "tracing to %s (load in Perfetto); .trace off to finish@."
    path

let run_query ?(lang = "xra") db e =
  let qid = Obs.Qid.mint () in
  let slot = Obs.Ash.register ~lang ~text:(Expr.to_string e) ~qid () in
  Fun.protect ~finally:(fun () -> Obs.Ash.finish slot) @@ fun () ->
  Trace.with_context [ (Obs.Qid.attr_key, Trace.Str qid) ] @@ fun () ->
  Trace.with_span "query"
    ~attrs:[ ("lang", Trace.Str lang); ("text", Trace.Str (Expr.to_string e)) ]
    (fun () ->
      (* sys.* queries see the catalog snapshot taken here — the query
         in flight is recorded only after it finishes, but its activity
         slot is already registered, so sys.progress sees it live. *)
      let db = Syscat.attach_for db e in
      let optimized = Mxra_optimizer.Optimizer.optimize_db db e in
      let plan = Mxra_engine.Planner.plan db optimized in
      let t0 = Trace.now_us () in
      Obs.Ash.with_slot slot @@ fun () ->
      let r =
        (* The instrumented run emits the per-operator spans. *)
        if Trace.enabled () then
          (Mxra_engine.Exec.run_instrumented db plan).Mxra_engine.Exec.result
        else Mxra_engine.Exec.run db plan
      in
      Obs.Stmt_stats.record ~lang ~qid ~rows:(Relation.cardinal r)
        ~wall_ms:((Trace.now_us () -. t0) /. 1000.0)
        (Expr.to_string e);
      Trace.add_attr "rows" (Trace.Int (Relation.cardinal r));
      r)

let exec_statement db stmt =
  match stmt with
  | Statement.Query e ->
      print_relation (run_query db e);
      db
  | Statement.Insert (name, _) | Statement.Delete (name, _)
  | Statement.Update (name, _, _) | Statement.Assign (name, _)
    when Syscat.is_sys_name name ->
      (* The catalog is read-only. *)
      raise (Syscat.Reserved name)
  | Statement.Insert _ | Statement.Delete _ | Statement.Update _
  | Statement.Assign _ -> (
      let qid = Obs.Qid.mint () in
      let t0 = Trace.now_us () in
      let outcome = Transaction.run db (Transaction.make [ stmt ]) in
      Obs.Stmt_stats.record ~qid
        ~wall_ms:((Trace.now_us () -. t0) /. 1000.0)
        (Statement.to_string stmt);
      match outcome with
      | Transaction.Committed { state; _ } ->
          Format.printf "ok@.";
          state
      | Transaction.Aborted { state; reason } ->
          Format.printf "aborted: %s@." reason;
          state)

let exec_transaction db program =
  match Transaction.run db (Transaction.make program) with
  | Transaction.Committed { state; outputs } ->
      List.iter print_relation outputs;
      Format.printf "committed (t=%d)@." (Database.logical_time state);
      state
  | Transaction.Aborted { state; reason } ->
      Format.printf "aborted: %s@." reason;
      state

let exec_command db = function
  | Xra.Parser.Cmd_statement stmt -> exec_statement db stmt
  | Xra.Parser.Cmd_transaction program -> exec_transaction db program
  | Xra.Parser.Cmd_create (name, schema) ->
      Syscat.check_not_reserved name;
      let db = Database.create name schema db in
      Format.printf "created %s %s@." name (Schema.to_string schema);
      db
  | Xra.Parser.Cmd_create_index d ->
      Syscat.check_not_reserved d.idx_name;
      Syscat.check_not_reserved d.idx_rel;
      let db =
        Database.create_index ~name:d.idx_name ~rel:d.idx_rel ~cols:d.idx_cols
          ~kind:d.idx_kind db
      in
      Format.printf "created index %s on %s@." d.idx_name d.idx_rel;
      db
  | Xra.Parser.Cmd_drop_index name ->
      let db = Database.drop_index name db in
      Format.printf "dropped index %s@." name;
      db

let exec_sql db src =
  match Sql.Translate.translate_string (Syscat.env db) src with
  | Sql.Translate.Query e ->
      print_relation (run_query ~lang:"sql" db e);
      db
  | Sql.Translate.Statement stmt -> exec_statement db stmt
  | Sql.Translate.Create (name, schema) ->
      exec_command db (Xra.Parser.Cmd_create (name, schema))
  | Sql.Translate.Create_index d ->
      exec_command db (Xra.Parser.Cmd_create_index d)
  | Sql.Translate.Drop_index name ->
      exec_command db (Xra.Parser.Cmd_drop_index name)

let show_plan db src =
  let e = Xra.Parser.expr_of_string src in
  let db = Syscat.attach_for db e in
  let optimized = Mxra_optimizer.Optimizer.optimize_db db e in
  Format.printf "logical (optimized):@.  %s@." (Expr.to_string optimized);
  Format.printf "physical:@.%s@."
    (Mxra_engine.Physical.to_string (Mxra_engine.Planner.plan db optimized))

(* explain E: optimized physical plan, each operator annotated with its
   estimated output rows.  explain analyze E: additionally execute,
   annotating estimated vs actual rows, per-operator q-error and wall
   time. *)
let explain_query db ~analyze src =
  let e = Xra.Parser.expr_of_string src in
  let db = Syscat.attach_for db e in
  let optimized = Mxra_optimizer.Optimizer.optimize_db db e in
  if analyze then
    Format.printf "%a@."
      Mxra_engine.Exec.pp_analysis
      (Mxra_engine.Exec.explain_analyze db optimized)
  else print_endline (Mxra_engine.Exec.explain db optimized)

let help () =
  print_string
    "XRA shell.  Statements: insert(R,E)  delete(R,E)  update(R,E,[a,...])\n\
    \  R := E   ?E   begin s1; s2 end   create R (a:int, b:str)\n\
    \  create index I on R (%i, ...) using hash|ordered   drop index I\n\
     Expressions: union diff product intersect join[p] select[p]\n\
    \  project[a,...] unique groupby[keys; AGG(%i),...] rel[(..)]{..}\n\
     Meta: .help .quit .tables .show R .schema R .beer .sql STMT .plan E\n\
    \  .load FILE .save DIR .open DIR .import FILE R .export R FILE\n\
    \  .trace on [FILE] / .trace off   Chrome trace of query execution\n\
    \  .stats   cumulative per-statement stats (also: ? sys.statements)\n\
     Catalog: sys.statements sys.operators sys.relations sys.indexes\n\
    \  sys.locks sys.pool sys.series are queryable read-only relations\n\
     Profiling: explain E (estimated rows per operator)\n\
    \  explain analyze E (estimated vs actual rows, q-error, time)\n"

let rec run_script db path =
  let source = In_channel.with_open_text path In_channel.input_all in
  List.fold_left exec_command db (Xra.Parser.script_of_string source)

and dispatch db line =
  let trimmed = String.trim line in
  (* The issue-tracker spelling of the toggle is ":trace"; accept both. *)
  let trimmed =
    if String.length trimmed >= 6 && String.sub trimmed 0 6 = ":trace" then
      "." ^ String.sub trimmed 1 (String.length trimmed - 1)
    else trimmed
  in
  if trimmed = "" then db
  else if String.length trimmed > 0 && trimmed.[0] = '.' then
    match String.split_on_char ' ' trimmed with
    | ".help" :: _ -> help (); db
    | ".tables" :: _ ->
        List.iter print_endline (Database.relation_names db);
        db
    | [ ".show"; name ] ->
        print_relation (Database.find name db);
        db
    | [ ".schema"; name ] ->
        Format.printf "%a@." Schema.pp (Database.schema_of name db);
        db
    | ".beer" :: _ ->
        Format.printf "loaded beer database@.";
        Mxra_workload.Beer.tiny
    | ".sql" :: rest -> exec_sql db (String.concat " " rest)
    | ".stats" :: _ ->
        print_string (Obs.Stmt_stats.render_top ());
        db
    | ".plan" :: rest -> show_plan db (String.concat " " rest); db
    | [ ".load"; path ] -> run_script db path
    | [ ".save"; dir ] ->
        let store = Mxra_storage.Store.open_dir dir in
        (* Saving writes the current state as a fresh snapshot. *)
        Mxra_storage.Store.close store;
        Out_channel.with_open_text
          (Filename.concat dir "snapshot.xra")
          (fun oc ->
            Out_channel.output_string oc
              (Mxra_storage.Codec.encode_database db));
        Out_channel.with_open_text (Filename.concat dir "wal.xra")
          (fun _ -> ());
        Format.printf "saved to %s@." dir;
        db
    | [ ".open"; dir ] ->
        let recovered = Mxra_storage.Store.recover_dir dir in
        Format.printf "opened %s (%d relations, t=%d)@." dir
          (List.length (Database.relation_names recovered))
          (Database.logical_time recovered);
        recovered
    | [ ".import"; path; name ] ->
        let r = Mxra_workload.Csv.read_file path in
        let db = Database.create_with name r db in
        Format.printf "imported %d tuples into %s@." (Relation.cardinal r) name;
        db
    | [ ".export"; name; path ] ->
        Mxra_workload.Csv.write_file path (Database.find name db);
        Format.printf "exported %s to %s@." name path;
        db
    | ".trace" :: args -> (
        match args with
        | [ "off" ] ->
            trace_off ();
            Format.printf "tracing off@.";
            db
        | [ "on" ] -> trace_on "trace.json"; db
        | [ "on"; path ] -> trace_on path; db
        | _ ->
            Format.printf "usage: .trace on [FILE] | .trace off@.";
            db)
    | _ ->
        Format.printf "unknown meta command; try .help@.";
        db
  else
    let prefixed prefix =
      let n = String.length prefix in
      if String.length trimmed > n && String.sub trimmed 0 n = prefix then
        Some (String.sub trimmed n (String.length trimmed - n))
      else None
    in
    match prefixed "explain analyze " with
    | Some src -> explain_query db ~analyze:true src; db
    | None -> (
        match prefixed "explain " with
        | Some src -> explain_query db ~analyze:false src; db
        | None -> exec_command db (Xra.Parser.command_of_string trimmed))

let safely f db =
  match f db with
  | db -> db
  | exception Xra.Parser.Parse_error (msg, pos) ->
      Format.printf "parse error at %d: %s@." pos msg;
      db
  | exception Xra.Lexer.Lex_error (msg, pos) ->
      Format.printf "lex error at %d: %s@." pos msg;
      db
  | exception Typecheck.Type_error msg ->
      Format.printf "type error: %s@." msg;
      db
  | exception Statement.Exec_error msg ->
      Format.printf "error: %s@." msg;
      db
  | exception Scalar.Eval_error msg ->
      Format.printf "eval error: %s@." msg;
      db
  | exception Aggregate.Undefined kind ->
      Format.printf "eval error: %a undefined on an empty group@." Aggregate.pp
        kind;
      db
  | exception Sql.Translate.Translate_error msg ->
      Format.printf "sql error: %s@." msg;
      db
  | exception Sql.Sql_parser.Parse_error (msg, pos) ->
      Format.printf "sql parse error at %d: %s@." pos msg;
      db
  | exception Database.Unknown_relation name ->
      Format.printf "unknown relation: %s@." name;
      db
  | exception Database.Duplicate_relation name ->
      Format.printf "relation exists: %s@." name;
      db
  | exception Database.Unknown_index name ->
      Format.printf "unknown index: %s@." name;
      db
  | exception Database.Duplicate_index name ->
      Format.printf "index exists: %s@." name;
      db
  | exception Invalid_argument msg ->
      Format.printf "error: %s@." msg;
      db
  | exception Syscat.Reserved name ->
      Format.printf "reserved name: %s is a system catalog relation@." name;
      db
  | exception Mxra_workload.Csv.Csv_error (msg, line) ->
      Format.printf "csv error at line %d: %s@." line msg;
      db
  | exception Sys_error msg ->
      Format.printf "i/o error: %s@." msg;
      db

let () =
  print_endline "mxra :: multi-set extended relational algebra shell (.help)";
  let rec loop db =
    print_string "xra> ";
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some ".quit" | Some ".q" -> ()
    | Some line -> loop (safely (fun db -> dispatch db line) db)
  in
  loop Database.empty;
  (* An open trace file gets its closing bracket even on .quit/EOF. *)
  trace_off ()
