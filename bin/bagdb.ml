(* bagdb: non-interactive runner for XRA and SQL scripts.

     bagdb run script.xra            execute an XRA script
     bagdb sql script.sql            execute a SQL script
     bagdb explain 'EXPR'            optimize an XRA expression, show plans
     bagdb metrics script.xra        run quietly, dump Prometheus metrics

   Both runners can preload the paper's beer database (--beer), a
   generated one (--gen-beers N) or the retail workload (--retail N),
   and report per-query timings and engine statistics (--stats).

   Observability: --trace FILE writes a Chrome trace-event file (load
   in Perfetto) with spans for parsing, planning, optimization, every
   physical operator, scheduler transactions and storage I/O;
   --query-log FILE appends one JSONL record per query, filtered by
   --slow-query-ms.  Consecutive transaction brackets in a script run
   as one interleaved batch under the scheduler (--seed picks the
   interleaving; --isolation si|2pl picks snapshot isolation — the
   default — or strict 2PL), and --db DIR makes the run durable:
   recover on open, log commits in one group-committed append,
   checkpoint on exit. *)

open Mxra_relational
open Mxra_core
module Xra = Mxra_xra
module Sql = Mxra_sql
module Obs = Mxra_obs
module Trace = Mxra_obs.Trace
module Store = Mxra_storage.Store
module Torture = Mxra_storage.Torture
module Scheduler = Mxra_concurrency.Scheduler
module Syscat = Mxra_engine.Syscat

let preload beer gen_beers retail =
  if retail > 0 then
    Mxra_workload.Retail.generate
      ~rng:(Mxra_workload.Rng.make 42)
      ~customers:(max 4 (retail / 10))
      ~orders:retail ()
  else if gen_beers > 0 then
    Mxra_workload.Beer.generate
      ~rng:(Mxra_workload.Rng.make 42)
      ~breweries:(max 4 (gen_beers / 50))
      ~beers:gen_beers ()
  else if beer then Mxra_workload.Beer.tiny
  else Database.empty

(* Everything a runner needs to know, threaded as one value. *)
type ctx = {
  optimize : bool;
  stats : bool;
  quiet : bool;  (** suppress result tables ([metrics] mode) *)
  seed : int;  (** scheduler interleaving seed *)
  isolation : Scheduler.isolation;  (** [--isolation si|2pl] *)
  jobs : int;  (** domains for parallel plans ([--jobs]) *)
  store : Store.t option;  (** durability, when [--db] is given *)
  totals : Mxra_engine.Metrics.t option;
      (** merged engine registry ([metrics] mode) *)
}

(* [--jobs N]: size the shared domain pool and plan with Exchange
   nodes.  The pool is created lazily on first parallel execution. *)
let set_jobs jobs =
  if jobs < 1 then invalid_arg "--jobs must be at least 1";
  Mxra_ext.Pool.set_default_size jobs;
  jobs

let merge_totals master src =
  List.iter
    (fun (name, v) ->
      match v with
      | Mxra_engine.Metrics.Count n ->
          Mxra_engine.Metrics.add (Mxra_engine.Metrics.counter master name) n
      | Mxra_engine.Metrics.Duration_ms ms ->
          Mxra_engine.Metrics.add_ms (Mxra_engine.Metrics.timer master name) ms)
    (Mxra_engine.Metrics.dump src)

let run_query ctx ~lang db e =
  (* Every query gets a process-unique id, carried as ambient trace
     context: the query span, every operator span and every Exchange
     lane span of this statement end up stamped with the same
     query_id, so one grep correlates the JSONL query log, the Chrome
     trace and EXPLAIN ANALYZE output. *)
  let qid = Obs.Qid.mint () in
  let text = Expr.to_string e in
  let record ~rows ?tuples ~wall_ms () =
    Obs.Stmt_stats.record ~lang ~qid ~rows ?tuples ~wall_ms text
  in
  (* The activity-registry entry: from here to [finish] the statement
     is visible in sys.progress, and ASH samples attribute to its qid
     and fingerprint.  With MXRA_ASH=0 the slot is inert and nothing
     below pays for it. *)
  let slot = Obs.Ash.register ~lang ~text ~qid () in
  Fun.protect ~finally:(fun () -> Obs.Ash.finish slot) @@ fun () ->
  Trace.with_context [ (Obs.Qid.attr_key, Trace.Str qid) ] @@ fun () ->
  Trace.with_span "query"
    ~attrs:[ ("lang", Trace.Str lang); ("text", Trace.Str text) ]
    (fun () ->
      (* Queries over sys.* see the catalog snapshot taken here — the
         in-flight query itself is recorded only after it finishes. *)
      let db = Syscat.attach_for db e in
      let e =
        if ctx.optimize then Mxra_optimizer.Optimizer.optimize_db db e else e
      in
      let plan = Mxra_engine.Planner.plan ~jobs:ctx.jobs db e in
      if Obs.Ash.live slot then begin
        (* Root-cardinality estimate, so sys.progress can report rows
           against the planner's expectation. *)
        (try
           Obs.Ash.set_estimate slot
             (Mxra_engine.Cost.estimate_cardinality
                ~stats:(Mxra_engine.Stats.env_of_database db)
                ~schemas:(Typecheck.env_of_database db)
                e)
         with _ -> ())
      end;
      Obs.Ash.with_slot slot @@ fun () ->
      if ctx.stats || Option.is_some ctx.totals || Trace.enabled () then begin
        (* One instrumented run yields the result, the timing and the
           tuple traffic — no second execution to count what already
           happened.  The same run feeds the per-operator trace spans. *)
        let a = Mxra_engine.Exec.run_instrumented db plan in
        Trace.add_attr "rows"
          (Trace.Int (Relation.cardinal a.Mxra_engine.Exec.result));
        record
          ~rows:(Relation.cardinal a.Mxra_engine.Exec.result)
          ~tuples:
            (Mxra_engine.Metrics.count
               (Mxra_engine.Metrics.counter a.Mxra_engine.Exec.totals
                  "tuples-moved"))
          ~wall_ms:a.Mxra_engine.Exec.total_ms ();
        Option.iter (fun m -> merge_totals m a.Mxra_engine.Exec.totals)
          ctx.totals;
        if not ctx.quiet then
          Format.printf "%a@." Relation.pp_table a.Mxra_engine.Exec.result;
        if ctx.stats then
          let moved =
            Mxra_engine.Metrics.count
              (Mxra_engine.Metrics.counter a.Mxra_engine.Exec.totals
                 "tuples-moved")
          in
          Format.printf "-- %.3f ms, %d tuples moved@."
            a.Mxra_engine.Exec.total_ms moved
      end
      else begin
        let t0 = Trace.now_us () in
        let r = Mxra_engine.Exec.run db plan in
        record ~rows:(Relation.cardinal r)
          ~wall_ms:((Trace.now_us () -. t0) /. 1000.0)
          ();
        Trace.add_attr "rows" (Trace.Int (Relation.cardinal r));
        if not ctx.quiet then Format.printf "%a@." Relation.pp_table r
      end)

let exec_statement ctx db stmt =
  match stmt with
  | Statement.Query e ->
      run_query ctx ~lang:"xra" db e;
      db
  | Statement.Insert (name, _) | Statement.Delete (name, _)
  | Statement.Update (name, _, _) | Statement.Assign (name, _)
    when Syscat.is_sys_name name ->
      (* The catalog is read-only: writing a sys.* name is refused
         before any transaction machinery sees it. *)
      raise (Syscat.Reserved name)
  | Statement.Insert _ | Statement.Delete _ | Statement.Update _
  | Statement.Assign _ ->
      (* Data statements get the same treatment as queries: a minted
         query_id on a "statement" span (hence the JSONL log), and the
         same id stamped into the WAL record's begin/commit markers. *)
      let qid = Obs.Qid.mint () in
      let slot =
        Obs.Ash.register ~lang:"xra" ~text:(Statement.to_string stmt) ~qid ()
      in
      Fun.protect ~finally:(fun () -> Obs.Ash.finish slot) @@ fun () ->
      Trace.with_context [ (Obs.Qid.attr_key, Trace.Str qid) ] @@ fun () ->
      Trace.with_span "statement"
        ~attrs:[ ("text", Trace.Str (Statement.to_string stmt)) ]
        (fun () ->
          let t0 = Trace.now_us () in
          let txn = Transaction.make [ stmt ] in
          let outcome =
            match ctx.store with
            | Some s -> Store.commit ~qid s txn
            | None -> Transaction.run db txn
          in
          (* Recorded after the commit so the WAL bytes appended under
             this qid drain straight into the entry. *)
          Obs.Stmt_stats.record ~qid
            ~wall_ms:((Trace.now_us () -. t0) /. 1000.0)
            (Statement.to_string stmt);
          match outcome with
          | Transaction.Committed { state; _ } -> state
          | Transaction.Aborted { state; reason } ->
              Format.eprintf "aborted: %s@." reason;
              state)

(* A create is not a loggable statement, so a durable run makes it
   durable the only way the log format allows: install the new state
   and checkpoint immediately.  Schema changes are rare; a checkpoint
   per DDL keeps every logged record replayable against the snapshot
   it follows.  (Without this, a create existed only in the session's
   in-memory state and every subsequent durable insert aborted.) *)
let apply_ddl ctx db' =
  (match ctx.store with
  | Some s ->
      Store.absorb_batch s [] db';
      Store.checkpoint s
  | None -> ());
  db'

let apply_create ctx db name schema =
  Syscat.check_not_reserved name;
  apply_ddl ctx (Database.create name schema db)

(* Index DDL is durable the same way: definitions live in the snapshot
   (codec emits them as create-index commands), never in the WAL. *)
let apply_create_index ctx db (d : Database.index_def) =
  Syscat.check_not_reserved d.idx_name;
  Syscat.check_not_reserved d.idx_rel;
  apply_ddl ctx
    (Database.create_index ~name:d.idx_name ~rel:d.idx_rel ~cols:d.idx_cols
       ~kind:d.idx_kind db)

let apply_drop_index ctx db name = apply_ddl ctx (Database.drop_index name db)

(* Consecutive transaction brackets run as one batch under the
   scheduler — snapshot isolation by default, strict 2PL with
   --isolation 2pl — with a seeded interleaving instead of serial
   execution and outputs delivered per transaction in input order
   (empty for aborted ones).  Committed transactions reach the log in
   commit order — the serial order the schedule is equivalent to — as
   one group-committed append (a single fsync for the batch). *)
let scheduler_batch ctx db programs =
  let txns =
    List.mapi
      (fun i p -> Transaction.make ~name:(Printf.sprintf "txn-%d" (i + 1)) p)
      programs
  in
  let r = Scheduler.run ~isolation:ctx.isolation ~seed:ctx.seed db txns in
  List.iter2
    (fun outcome outputs ->
      match outcome with
      | Scheduler.Committed ->
          if not ctx.quiet then
            List.iter (Format.printf "%a@." Relation.pp_table) outputs
      | Scheduler.Aborted reason -> Format.eprintf "aborted: %s@." reason)
    r.Scheduler.outcomes r.Scheduler.outputs;
  Option.iter
    (fun s ->
      let arr = Array.of_list txns in
      let qarr = Array.of_list r.Scheduler.query_ids in
      (* qids follow the transactions through commit-order reordering,
         so each WAL record carries the id of the transaction whose
         statements it holds. *)
      Store.absorb_batch s
        ~qids:(List.map (Array.get qarr) r.Scheduler.commit_order)
        (List.map (Array.get arr) r.Scheduler.commit_order)
        r.Scheduler.final)
    ctx.store;
  if ctx.stats then begin
    let st = r.Scheduler.stats in
    Format.printf
      "-- scheduler: %d txns, %d committed, %d steps, %d blocks, %d \
       conflicts, %d deadlocks@."
      (List.length txns)
      (List.length r.Scheduler.commit_order)
      st.Scheduler.steps st.Scheduler.blocks st.Scheduler.conflicts
      st.Scheduler.deadlocks
  end;
  r.Scheduler.final

(* [on_step] sees the database after every command — `bagdb serve` uses
   it to keep the sampler's relation-cardinality probe pointed at the
   live state while a script runs, instead of the preload snapshot. *)
let run_xra ?(on_step = fun (_ : Database.t) -> ()) ctx db path =
  let source = In_channel.with_open_text path In_channel.input_all in
  let rec go db = function
    | [] -> db
    | Xra.Parser.Cmd_transaction _ :: _ as cmds ->
        let rec split acc = function
          | Xra.Parser.Cmd_transaction p :: rest -> split (p :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let programs, rest = split [] cmds in
        let db = scheduler_batch ctx db programs in
        on_step db;
        go db rest
    | Xra.Parser.Cmd_statement stmt :: rest ->
        let db = exec_statement ctx db stmt in
        on_step db;
        go db rest
    | Xra.Parser.Cmd_create (name, schema) :: rest ->
        let db = apply_create ctx db name schema in
        on_step db;
        go db rest
    | Xra.Parser.Cmd_create_index d :: rest ->
        let db = apply_create_index ctx db d in
        on_step db;
        go db rest
    | Xra.Parser.Cmd_drop_index name :: rest ->
        let db = apply_drop_index ctx db name in
        on_step db;
        go db rest
  in
  go db (Xra.Parser.script_of_string source)

let run_sql ?(on_step = fun (_ : Database.t) -> ()) ctx db path =
  let source = In_channel.with_open_text path In_channel.input_all in
  let step db ast =
    let db =
      (* The translation env includes the sys.* schemas, so FROM
         sys.statements resolves before the catalog is attached. *)
      match Sql.Translate.translate (Syscat.env db) ast with
      | Sql.Translate.Query e ->
          run_query ctx ~lang:"sql" db e;
          db
      | Sql.Translate.Statement stmt -> exec_statement ctx db stmt
      | Sql.Translate.Create (name, schema) -> apply_create ctx db name schema
      | Sql.Translate.Create_index d -> apply_create_index ctx db d
      | Sql.Translate.Drop_index name -> apply_drop_index ctx db name
    in
    on_step db;
    db
  in
  List.fold_left step db (Sql.Sql_parser.parse_script source)

let explain ~analyze ~jobs db src =
  let e = Xra.Parser.expr_of_string src in
  let db = Syscat.attach_for db e in
  let optimized, report =
    if analyze then Mxra_optimizer.Optimizer.explain_db db e
    else
      Mxra_optimizer.Optimizer.explain
        ~stats:(Mxra_engine.Stats.env_of_database db)
        ~schemas:(Typecheck.env_of_database db)
        e
  in
  Format.printf "input:      %s@." (Expr.to_string e);
  Format.printf "optimized:  %s@." (Expr.to_string optimized);
  Format.printf "est. cost:  %.0f -> %.0f tuples@."
    report.Mxra_optimizer.Optimizer.input_cost
    report.Mxra_optimizer.Optimizer.output_cost;
  (match
     ( report.Mxra_optimizer.Optimizer.input_moved,
       report.Mxra_optimizer.Optimizer.output_moved )
   with
  | Some before, Some after ->
      Format.printf "realized:   %d -> %d tuples moved@." before after
  | _ -> ());
  if analyze then begin
    (* The instrumented run's operator spans carry this id through the
       ambient context — the same key a served query would put in the
       query log and the WAL. *)
    let qid = Obs.Qid.mint () in
    Format.printf "query id:   %s@." qid;
    Trace.with_context [ (Obs.Qid.attr_key, Trace.Str qid) ] (fun () ->
        Format.printf "explain analyze:@.%a@." Mxra_engine.Exec.pp_analysis
          (Mxra_engine.Exec.explain_analyze ~jobs db optimized))
  end
  else
    Format.printf "physical:@.%s@."
      (Mxra_engine.Exec.explain ~jobs db optimized)

(* --- observability plumbing ------------------------------------------- *)

(* Install the requested sinks, run the thunk, and tear everything down
   — Trace.close first (Chrome sink writes its closing bracket there),
   channels after. *)
let with_tracing ~trace ~query_log ~slow_ms ?agg f =
  let channels = ref [] in
  let file path =
    let oc = open_out path in
    channels := oc :: !channels;
    oc
  in
  let sinks =
    List.concat
      [
        (match trace with
        | Some p -> [ Obs.Chrome_sink.sink (file p) ]
        | None -> []);
        (match query_log with
        | Some p -> [ Obs.Query_log_sink.sink ~slow_ms (file p) ]
        | None -> []);
        (match agg with Some a -> [ Obs.Agg_sink.sink a ] | None -> []);
      ]
  in
  Trace.set_sinks sinks;
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      List.iter close_out !channels)
    f

(* Open the store (recovering), seed it with the preload when it is
   empty, hand the runner the store's state, checkpoint on the way out.
   Preloaded relations are installed without log records — they become
   durable at the final checkpoint, like any other uncommitted-to-log
   state would not, so the preload path is only for fresh stores. *)
let with_store ?(checkpoint = true) db_dir preloaded f =
  match db_dir with
  | None -> f None preloaded
  | Some dir ->
      let s = Store.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          if
            Database.persistent_names (Store.database s) = []
            && Database.persistent_names preloaded <> []
          then Store.absorb_batch s [] preloaded;
          f (Some s) (Store.database s);
          if checkpoint then Store.checkpoint s)

(* --- command line ----------------------------------------------------- *)

open Cmdliner

let beer_flag =
  Arg.(value & flag & info [ "beer" ] ~doc:"Preload the paper's beer database.")

let gen_flag =
  Arg.(value & opt int 0 & info [ "gen-beers" ] ~doc:"Preload a generated beer database of $(docv) rows." ~docv:"N")

let retail_flag =
  Arg.(value & opt int 0 & info [ "retail" ] ~doc:"Preload a generated retail database of $(docv) orders." ~docv:"N")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-query timing, tuple traffic and scheduler statistics.")

let no_optimize_flag =
  Arg.(value & flag & info [ "no-optimize" ] ~doc:"Skip the logical optimizer.")

let trace_flag =
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write a Chrome trace-event file to $(docv); load it in Perfetto or chrome://tracing." ~docv:"FILE")

let query_log_flag =
  Arg.(value & opt (some string) None & info [ "query-log" ] ~doc:"Append one JSONL record per query span to $(docv)." ~docv:"FILE")

let slow_flag =
  Arg.(value & opt float 0.0 & info [ "slow-query-ms" ] ~doc:"Only log queries that took at least $(docv) milliseconds." ~docv:"MS")

let db_flag =
  Arg.(value & opt (some string) None & info [ "db" ] ~doc:"Durable store directory: recover on open, log commits, checkpoint on exit." ~docv:"DIR")

let no_checkpoint_flag =
  Arg.(value & flag & info [ "no-checkpoint" ] ~doc:"Skip the checkpoint on exit, leaving committed transactions in the write-ahead log (recovery demos and tests).")

let seed_flag =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scheduler interleaving seed for transaction batches." ~docv:"N")

(* [--isolation si|2pl]: concurrency control for transaction batches.
   Unset falls back to MXRA_ISOLATION, then snapshot isolation — the
   old strict-2PL scheduler stays selectable for differential runs. *)
let isolation_flag =
  let mode = Arg.enum [ ("si", Scheduler.Si); ("2pl", Scheduler.Two_pl) ] in
  Arg.(
    value
    & opt (some mode) None
    & info [ "isolation" ]
        ~doc:
          "Concurrency control for transaction batches: $(b,si) \
           (multi-version snapshot isolation with first-committer-wins, \
           the default) or $(b,2pl) (strict two-phase locking, kept \
           selectable for differential testing).  Unset, the \
           MXRA_ISOLATION environment variable decides."
        ~docv:"MODE")

let resolve_isolation = function
  | Some i -> i
  | None -> Scheduler.default_isolation ()

let jobs_flag =
  Arg.(value & opt int 1 & info [ "jobs" ] ~doc:"Execute plans on $(docv) domains: the planner inserts Exchange operators above large scans, joins and aggregates when profitable on this host's cores, and fragments run on a shared domain pool." ~docv:"N")

(* [--chunk-size N]: morsel size of the chunked executor; the default
   (or the MXRA_CHUNK_SIZE environment variable) is nursery-sized.
   Results are bag-equal at every size — this knob exists for
   experiments and for degenerate-size testing. *)
let chunk_size_flag =
  Arg.(value & opt (some int) None & info [ "chunk-size" ] ~doc:"Execute with $(docv)-tuple chunks instead of the default (MXRA_CHUNK_SIZE or 255). Results are identical at every size." ~docv:"N")

let set_chunk_size = function
  | None -> ()
  | Some n ->
      if n < 1 then invalid_arg "--chunk-size must be at least 1";
      Mxra_engine.Exec.set_chunk_size n

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
let expr_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR")

let guarded f =
  match f () with
  | () -> 0
  | exception Xra.Parser.Parse_error (msg, pos) ->
      Format.eprintf "parse error at %d: %s@." pos msg; 1
  | exception Xra.Lexer.Lex_error (msg, pos) ->
      Format.eprintf "lex error at %d: %s@." pos msg; 1
  | exception Sql.Sql_parser.Parse_error (msg, pos) ->
      Format.eprintf "sql parse error at %d: %s@." pos msg; 1
  | exception Sql.Sql_lexer.Lex_error (msg, pos) ->
      Format.eprintf "sql lex error at %d: %s@." pos msg; 1
  | exception Sql.Translate.Translate_error msg ->
      Format.eprintf "sql error: %s@." msg; 1
  | exception Typecheck.Type_error msg ->
      Format.eprintf "type error: %s@." msg; 1
  | exception Database.Unknown_relation name ->
      Format.eprintf "unknown relation: %s@." name; 1
  | exception Database.Duplicate_relation name ->
      Format.eprintf "relation exists: %s@." name; 1
  | exception Database.Unknown_index name ->
      Format.eprintf "unknown index: %s@." name; 1
  | exception Database.Duplicate_index name ->
      Format.eprintf "index exists: %s@." name; 1
  | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg; 1
  | exception Syscat.Reserved name ->
      Format.eprintf "reserved name: %s is a system catalog relation@." name; 1
  | exception Sys_error msg ->
      Format.eprintf "i/o error: %s@." msg; 1
  | exception Unix.Unix_error (e, fn, _) ->
      Format.eprintf "%s: %s@." fn (Unix.error_message e); 1

let script_cmd name ~doc runner =
  let action beer gen retail stats no_opt trace qlog slow db_dir no_ckpt seed
      isolation jobs chunk path =
    guarded (fun () ->
        set_chunk_size chunk;
        with_tracing ~trace ~query_log:qlog ~slow_ms:slow (fun () ->
            with_store ~checkpoint:(not no_ckpt) db_dir
              (preload beer gen retail) (fun store db ->
                let ctx =
                  {
                    optimize = not no_opt;
                    stats;
                    quiet = false;
                    seed;
                    isolation = resolve_isolation isolation;
                    jobs = set_jobs jobs;
                    store;
                    totals = None;
                  }
                in
                ignore (runner ctx db path))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const action $ beer_flag $ gen_flag $ retail_flag $ stats_flag
      $ no_optimize_flag $ trace_flag $ query_log_flag $ slow_flag $ db_flag
      $ no_checkpoint_flag $ seed_flag $ isolation_flag $ jobs_flag
      $ chunk_size_flag $ path_arg)

let run_cmd =
  script_cmd "run" ~doc:"Execute an XRA script." (fun ctx db path ->
      run_xra ctx db path)

let sql_cmd =
  script_cmd "sql" ~doc:"Execute a SQL script." (fun ctx db path ->
      run_sql ctx db path)

let metrics_cmd =
  let action beer gen retail no_opt seed isolation jobs chunk path =
    guarded (fun () ->
        set_chunk_size chunk;
        let agg = Obs.Agg_sink.create () in
        let totals = Mxra_engine.Metrics.create () in
        let ctx =
          {
            optimize = not no_opt;
            stats = false;
            quiet = true;
            seed;
            isolation = resolve_isolation isolation;
            jobs = set_jobs jobs;
            store = None;
            totals = Some totals;
          }
        in
        let runner =
          if Filename.check_suffix path ".sql" then run_sql else run_xra
        in
        with_tracing ~trace:None ~query_log:None ~slow_ms:0.0 ~agg (fun () ->
            ignore (runner ctx (preload beer gen retail) path));
        print_string (Obs.Prometheus.of_aggregate agg);
        print_string (Mxra_engine.Metrics.prometheus totals))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a script with result output suppressed and dump the \
          aggregated span latencies, operator traffic and engine counters \
          in Prometheus text format.")
    Term.(
      const action $ beer_flag $ gen_flag $ retail_flag $ no_optimize_flag
      $ seed_flag $ isolation_flag $ jobs_flag $ chunk_size_flag $ path_arg)

(* [bagdb stats]: run a script quietly (if given), then render the
   cumulative fingerprinted statement statistics — the same registry
   sys.statements materializes and /stmtz serves. *)
let stats_cmd =
  let action beer gen retail no_opt seed isolation jobs chunk json limit path =
    guarded (fun () ->
        set_chunk_size chunk;
        let ctx =
          {
            optimize = not no_opt;
            stats = false;
            quiet = true;
            seed;
            isolation = resolve_isolation isolation;
            jobs = set_jobs jobs;
            store = None;
            totals = None;
          }
        in
        (match path with
        | Some path ->
            let runner =
              if Filename.check_suffix path ".sql" then run_sql else run_xra
            in
            ignore (runner ctx (preload beer gen retail) path)
        | None -> ());
        if json then print_string (Obs.Stmt_stats.to_json ())
        else print_string (Obs.Stmt_stats.render_top ~limit ()))
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the registry as JSON.")
  and limit =
    Arg.(value & opt int 20
         & info [ "limit" ] ~doc:"Show the top $(docv) statements." ~docv:"N")
  and path =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a script with output suppressed and print cumulative \
          per-statement statistics keyed by fingerprint: calls, wall-time \
          quantiles, rows, WAL bytes and lock waits.")
    Term.(
      const action $ beer_flag $ gen_flag $ retail_flag $ no_optimize_flag
      $ seed_flag $ isolation_flag $ jobs_flag $ chunk_size_flag $ json $ limit
      $ path)

let analyze_flag =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Execute the optimized plan with instrumentation and report \
           estimated vs actual rows, per-operator q-error and wall time.")

let explain_cmd =
  let action beer gen retail analyze jobs chunk db_dir expr =
    guarded (fun () ->
        set_chunk_size chunk;
        (* --db opens an existing store read-only (no checkpoint): the
           plan is explained against its recovered relations and index
           definitions — how index-path selection is pinned in tests. *)
        with_store ~checkpoint:false db_dir (preload beer gen retail)
          (fun _ db -> explain ~analyze ~jobs:(set_jobs jobs) db expr))
  in
  Cmd.v (Cmd.info "explain" ~doc:"Optimize an XRA expression and show plans.")
    Term.(
      const action $ beer_flag $ gen_flag $ retail_flag $ analyze_flag
      $ jobs_flag $ chunk_size_flag $ db_flag $ expr_arg)

(* Crash-recovery torture sweep over the in-memory fault-injecting VFS.
   On an oracle violation the reproduction command line (with the
   failing seed and crash point) is written to --failure-file so CI can
   upload it as an artifact. *)
let torture_cmd =
  let action txns seed crash_points checkpoint_every fail_every group
      no_continue failure_file =
    let cfg =
      {
        Torture.txns;
        seed;
        crash_points;
        checkpoint_every;
        fail_every;
        continue_after = not no_continue;
        group_commit = group;
      }
    in
    let progress d t =
      if d mod 100 = 0 || d = t then
        Format.eprintf "-- torture: %d/%d crash points@." d t
    in
    match Torture.run ~progress cfg with
    | Ok r ->
        Format.printf
          "torture ok: %d syscalls, %d crashes recovered, %d transient \
           faults retried@."
          r.Torture.syscalls r.Torture.recoveries r.Torture.transients;
        0
    | Error f ->
        let repro =
          Printf.sprintf
            "bagdb torture --txns %d --seed %d --crash-points %d \
             --checkpoint-every %d --fail-every %d --group %d"
            txns f.Torture.fail_seed crash_points checkpoint_every fail_every
            group
        in
        Format.eprintf
          "torture FAILED at crash point %d (seed %d): %s@.reproduce with: \
           %s@."
          f.Torture.crash_point f.Torture.fail_seed f.Torture.detail repro;
        Out_channel.with_open_text failure_file (fun oc ->
            Printf.fprintf oc
              "crash_point=%d\nseed=%d\ndetail=%s\nreproduce=%s\n"
              f.Torture.crash_point f.Torture.fail_seed f.Torture.detail repro);
        1
  in
  let txns =
    Arg.(value & opt int Torture.default.Torture.txns
         & info [ "txns" ] ~doc:"Transactions in the random workload." ~docv:"N")
  and seed =
    Arg.(value & opt int Torture.default.Torture.seed
         & info [ "seed" ] ~doc:"Workload and fault-injection seed." ~docv:"N")
  and crash_points =
    Arg.(value & opt int 0
         & info [ "crash-points" ]
             ~doc:"Crash points to exercise, sampled evenly over the run's \
                   syscalls; 0 means every reachable one." ~docv:"N")
  and checkpoint_every =
    Arg.(value & opt int Torture.default.Torture.checkpoint_every
         & info [ "checkpoint-every" ]
             ~doc:"Checkpoint after every $(docv) transactions; 0 disables."
             ~docv:"N")
  and fail_every =
    Arg.(value & opt int Torture.default.Torture.fail_every
         & info [ "fail-every" ]
             ~doc:"Transient-fault cadence for the retry sweep; 0 skips it."
             ~docv:"N")
  and group =
    Arg.(value & opt int Torture.default.Torture.group_commit
         & info [ "group" ]
             ~doc:"Coalesce up to $(docv) transactions per group commit \
                   (one WAL append + fsync per group); 1 disables grouping."
             ~docv:"N")
  and no_continue =
    Arg.(value & flag
         & info [ "no-continue" ]
             ~doc:"Skip replaying the remaining workload after each recovery.")
  and failure_file =
    Arg.(value & opt string "torture-failure.txt"
         & info [ "failure-file" ]
             ~doc:"Where to write the reproduction seed on failure."
             ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash the store at every reachable syscall of a random \
          transaction workload, recover, and check prefix consistency \
          against an in-memory shadow.")
    Term.(
      const action $ txns $ seed $ crash_points $ checkpoint_every
      $ fail_every $ group $ no_continue $ failure_file)

(* --- live telemetry: bagdb serve / bagdb top --------------------------- *)

(* [bagdb serve]: run an optional script, then keep serving live
   telemetry over HTTP — /metrics (Prometheus), /healthz, /statz (raw
   time series as JSON), /topz (the table bagdb top renders) and
   /quitz (clean remote shutdown, so scripted runs never hang).  A
   background sampler feeds a ring-buffer store from probes owned by
   each layer: GC, the domain pool, the 2PL scheduler, the WAL and the
   live relation cardinalities. *)
let serve_cmd =
  let action beer gen retail no_opt trace qlog slow db_dir no_ckpt seed
      isolation jobs chunk port port_file interval_ms duration_ms script =
    guarded (fun () ->
        set_chunk_size chunk;
        let agg = Obs.Agg_sink.create () in
        with_tracing ~trace ~query_log:qlog ~slow_ms:slow ~agg (fun () ->
            with_store ~checkpoint:(not no_ckpt) db_dir
              (preload beer gen retail) (fun store db ->
                let ctx =
                  {
                    optimize = not no_opt;
                    stats = false;
                    quiet = false;
                    seed;
                    isolation = resolve_isolation isolation;
                    jobs = set_jobs jobs;
                    store;
                    totals = None;
                  }
                in
                let db_ref = ref db in
                let rel_probe () =
                  let db = !db_ref in
                  List.map
                    (fun n ->
                      ( "rel." ^ n,
                        float_of_int (Relation.cardinal (Database.find n db))
                      ))
                    (Database.persistent_names db)
                in
                let probes =
                  [
                    Obs.Sampler.gc_probe;
                    Obs.Sampler.uptime_probe;
                    Mxra_ext.Pool.telemetry;
                    Mxra_ext.Index.telemetry;
                    Scheduler.telemetry;
                    Obs.Wait.telemetry;
                    (* The ASH cadence rides the sampler: every tick
                       snapshots the activity registry into the ring. *)
                    Obs.Ash.probe;
                    rel_probe;
                  ]
                  @ (match store with
                    | Some s -> [ Store.telemetry s ]
                    | None -> [])
                in
                let sampler =
                  Obs.Sampler.start ~interval_ms:(float_of_int interval_ms)
                    ~probes ()
                in
                let ts = Obs.Sampler.store sampler in
                (* sys.series materializes from the live sampler store
                   while this server runs. *)
                Syscat.set_series_store (Some ts);
                let quit = Atomic.make false in
                let handler path =
                  match path with
                  | "/metrics" ->
                      Some
                        (Obs.Http_server.text
                           (Obs.Prometheus.of_aggregate agg
                           ^ Obs.Timeseries.to_prometheus ts
                           ^ Obs.Stmt_stats.to_prometheus ()
                           ^ Obs.Wait.to_prometheus ()))
                  | "/healthz" -> Some (Obs.Http_server.text "ok\n")
                  | "/statz" ->
                      Some (Obs.Http_server.json (Obs.Timeseries.to_json ts))
                  | "/topz" ->
                      Some (Obs.Http_server.text (Obs.Timeseries.render_top ts))
                  | "/stmtz" ->
                      Some (Obs.Http_server.text (Obs.Stmt_stats.render_top ()))
                  | "/stmtz.json" ->
                      Some (Obs.Http_server.json (Obs.Stmt_stats.to_json ()))
                  | "/ashz" ->
                      Some (Obs.Http_server.text (Obs.Ash.render_ash ()))
                  | "/progressz" ->
                      Some (Obs.Http_server.text (Obs.Ash.render_progress ()))
                  | "/quitz" ->
                      Atomic.set quit true;
                      Some (Obs.Http_server.text "bye\n")
                  | _ -> None
                in
                let server = Obs.Http_server.start ~port handler in
                Format.eprintf "-- serving telemetry on 127.0.0.1:%d@."
                  (Obs.Http_server.port server);
                Option.iter
                  (fun pf ->
                    Out_channel.with_open_text pf (fun oc ->
                        Printf.fprintf oc "%d\n" (Obs.Http_server.port server)))
                  port_file;
                Fun.protect
                  ~finally:(fun () ->
                    Obs.Http_server.stop server;
                    Obs.Sampler.stop sampler)
                  (fun () ->
                    (match script with
                    | Some path ->
                        let runner =
                          if Filename.check_suffix path ".sql" then run_sql
                          else run_xra
                        in
                        (* Publish the state after every statement so
                           the sampler's cardinality series track the
                           script as it runs, not just its end. *)
                        db_ref :=
                          runner
                            ~on_step:(fun db -> db_ref := db)
                            ctx !db_ref path
                    | None -> ());
                    (* Make sure the series reflect the script's final
                       state even if no interval tick has fired yet. *)
                    Obs.Sampler.sample_now sampler;
                    let deadline =
                      if duration_ms <= 0 then Float.infinity
                      else
                        Unix.gettimeofday ()
                        +. (float_of_int duration_ms /. 1000.0)
                    in
                    while
                      (not (Atomic.get quit))
                      && Unix.gettimeofday () < deadline
                    do
                      Unix.sleepf 0.05
                    done))))
  in
  let port =
    Arg.(value & opt int 9090
         & info [ "port" ] ~doc:"Listen port; 0 picks a free one (see --port-file)." ~docv:"PORT")
  and port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ]
             ~doc:"Write the actually bound port to $(docv) once listening — \
                   the handshake for scripts using --port 0." ~docv:"FILE")
  and interval_ms =
    Arg.(value & opt int 1000
         & info [ "interval-ms" ] ~doc:"Resource sampling interval." ~docv:"MS")
  and duration_ms =
    Arg.(value & opt int 0
         & info [ "duration-ms" ]
             ~doc:"Stop after $(docv) milliseconds; 0 serves until /quitz or \
                   interrupt." ~docv:"MS")
  and script =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run an optional script, then serve live telemetry over HTTP: \
          /metrics (Prometheus), /healthz, /statz (JSON time series), /topz, \
          /stmtz, /ashz (Active Session History), /progressz (live query \
          progress) and /quitz.")
    Term.(
      const action $ beer_flag $ gen_flag $ retail_flag $ no_optimize_flag
      $ trace_flag $ query_log_flag $ slow_flag $ db_flag $ no_checkpoint_flag
      $ seed_flag $ isolation_flag $ jobs_flag $ chunk_size_flag $ port
      $ port_file $ interval_ms $ duration_ms
      $ script)

(* [bagdb top]: the client side — fetch /topz from a running serve and
   render it, refreshing until interrupted; --once prints a single
   frame for scripts, --statz dumps the raw JSON, --quit asks the
   server to shut down. *)
let top_cmd =
  let action host port once statz stmtz ash progress quit interval_ms =
    guarded (fun () ->
        if quit then ignore (Obs.Http_server.get ~host ~port "/quitz")
        else if statz then
          let _, body = Obs.Http_server.get ~host ~port "/statz" in
          print_string body
        else if stmtz then
          let _, body = Obs.Http_server.get ~host ~port "/stmtz" in
          print_string body
        else if ash then
          let _, body = Obs.Http_server.get ~host ~port "/ashz" in
          print_string body
        else if progress then
          let _, body = Obs.Http_server.get ~host ~port "/progressz" in
          print_string body
        else if once then
          let _, body = Obs.Http_server.get ~host ~port "/topz" in
          print_string body
        else
          let rec loop () =
            let _, body = Obs.Http_server.get ~host ~port "/topz" in
            (* Top statements ride below the series table on the live
               refresh; --once keeps the bare /topz frame for scripts. *)
            let statements =
              match Obs.Http_server.get ~host ~port "/stmtz" with
              | _, s when String.trim s <> "" -> "\n-- statements --\n" ^ s
              | _ -> ""
              | exception _ -> ""
            in
            (* Clear screen, home cursor, redraw. *)
            print_string "\027[2J\027[H";
            print_string body;
            print_string statements;
            flush stdout;
            Unix.sleepf (float_of_int (max 50 interval_ms) /. 1000.0);
            loop ()
          in
          loop ())
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~doc:"Server to poll." ~docv:"HOST")
  and port =
    Arg.(value & opt int 9090 & info [ "port" ] ~doc:"Server port." ~docv:"PORT")
  and once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Print one frame and exit (for scripts).")
  and statz =
    Arg.(value & flag
         & info [ "statz" ] ~doc:"Dump the raw /statz JSON instead of the table.")
  and stmtz =
    Arg.(value & flag
         & info [ "stmtz" ]
             ~doc:"Print the fingerprinted statement table (/stmtz) and exit.")
  and ash =
    Arg.(value & flag
         & info [ "ash" ]
             ~doc:"Print the Active Session History (/ashz) and exit.")
  and progress =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Print live query progress (/progressz) and exit.")
  and quit =
    Arg.(value & flag
         & info [ "quit" ] ~doc:"Ask the server to shut down (/quitz) and exit.")
  and interval_ms =
    Arg.(value & opt int 1000
         & info [ "interval-ms" ] ~doc:"Refresh interval." ~docv:"MS")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch a running $(b,bagdb serve): fetch its /topz table and \
          refresh in place.")
    Term.(
      const action $ host $ port $ once $ statz $ stmtz $ ash $ progress
      $ quit $ interval_ms)

let () =
  (* sys.locks materializes from the scheduler's process counters; the
     engine cannot name the scheduler (layering), so the host wires the
     probe — same inversion the sampler uses. *)
  Syscat.set_probe "sys.locks" Scheduler.telemetry;
  let doc = "a multi-set extended relational algebra database (ICDE 1994)" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "bagdb" ~doc)
          [
            run_cmd; sql_cmd; explain_cmd; metrics_cmd; stats_cmd; torture_cmd;
            serve_cmd; top_cmd;
          ]))
