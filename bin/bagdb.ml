(* bagdb: non-interactive runner for XRA and SQL scripts.

     bagdb run script.xra            execute an XRA script
     bagdb sql script.sql            execute a SQL script
     bagdb explain 'EXPR'            optimize an XRA expression, show plans

   Both runners can preload the paper's beer database (--beer) or a
   generated one (--gen-beers N), and report per-query timings and
   engine statistics (--stats). *)

open Mxra_relational
open Mxra_core
module Xra = Mxra_xra
module Sql = Mxra_sql

let preload beer gen_beers =
  if gen_beers > 0 then
    Mxra_workload.Beer.generate
      ~rng:(Mxra_workload.Rng.make 42)
      ~breweries:(max 4 (gen_beers / 50))
      ~beers:gen_beers ()
  else if beer then Mxra_workload.Beer.tiny
  else Database.empty

let run_query ~optimize ~stats db e =
  let e = if optimize then Mxra_optimizer.Optimizer.optimize_db db e else e in
  let plan = Mxra_engine.Planner.plan db e in
  if stats then begin
    (* One instrumented run yields the result, the timing and the tuple
       traffic — no second execution to count what already happened. *)
    let a = Mxra_engine.Exec.run_instrumented db plan in
    Format.printf "%a@." Relation.pp_table a.Mxra_engine.Exec.result;
    let moved =
      Mxra_engine.Metrics.count
        (Mxra_engine.Metrics.counter a.Mxra_engine.Exec.totals "tuples-moved")
    in
    Format.printf "-- %.3f ms, %d tuples moved@." a.Mxra_engine.Exec.total_ms
      moved
  end
  else Format.printf "%a@." Relation.pp_table (Mxra_engine.Exec.run db plan)

let exec_statement ~optimize ~stats db stmt =
  match stmt with
  | Statement.Query e ->
      run_query ~optimize ~stats db e;
      db
  | Statement.Insert _ | Statement.Delete _ | Statement.Update _
  | Statement.Assign _ -> (
      match Transaction.run db (Transaction.make [ stmt ]) with
      | Transaction.Committed { state; _ } -> state
      | Transaction.Aborted { state; reason } ->
          Format.eprintf "aborted: %s@." reason;
          state)

let run_xra ~optimize ~stats db path =
  let source = In_channel.with_open_text path In_channel.input_all in
  let step db = function
    | Xra.Parser.Cmd_statement stmt -> exec_statement ~optimize ~stats db stmt
    | Xra.Parser.Cmd_transaction program -> (
        match Transaction.run db (Transaction.make program) with
        | Transaction.Committed { state; outputs } ->
            List.iter (Format.printf "%a@." Relation.pp_table) outputs;
            state
        | Transaction.Aborted { state; reason } ->
            Format.eprintf "aborted: %s@." reason;
            state)
    | Xra.Parser.Cmd_create (name, schema) -> Database.create name schema db
  in
  ignore (List.fold_left step db (Xra.Parser.script_of_string source))

let run_sql ~optimize ~stats db path =
  let source = In_channel.with_open_text path In_channel.input_all in
  let step db ast =
    match Sql.Translate.translate (Typecheck.env_of_database db) ast with
    | Sql.Translate.Query e ->
        run_query ~optimize ~stats db e;
        db
    | Sql.Translate.Statement stmt -> exec_statement ~optimize ~stats db stmt
    | Sql.Translate.Create (name, schema) -> Database.create name schema db
  in
  ignore (List.fold_left step db (Sql.Sql_parser.parse_script source))

let explain ~analyze db src =
  let e = Xra.Parser.expr_of_string src in
  let optimized, report =
    if analyze then Mxra_optimizer.Optimizer.explain_db db e
    else
      Mxra_optimizer.Optimizer.explain
        ~stats:(Mxra_engine.Stats.env_of_database db)
        ~schemas:(Typecheck.env_of_database db)
        e
  in
  Format.printf "input:      %s@." (Expr.to_string e);
  Format.printf "optimized:  %s@." (Expr.to_string optimized);
  Format.printf "est. cost:  %.0f -> %.0f tuples@."
    report.Mxra_optimizer.Optimizer.input_cost
    report.Mxra_optimizer.Optimizer.output_cost;
  (match
     ( report.Mxra_optimizer.Optimizer.input_moved,
       report.Mxra_optimizer.Optimizer.output_moved )
   with
  | Some before, Some after ->
      Format.printf "realized:   %d -> %d tuples moved@." before after
  | _ -> ());
  if analyze then
    Format.printf "explain analyze:@.%a@." Mxra_engine.Exec.pp_analysis
      (Mxra_engine.Exec.explain_analyze db optimized)
  else
    Format.printf "physical:@.%s@." (Mxra_engine.Exec.explain db optimized)

(* --- command line ----------------------------------------------------- *)

open Cmdliner

let beer_flag =
  Arg.(value & flag & info [ "beer" ] ~doc:"Preload the paper's beer database.")

let gen_flag =
  Arg.(value & opt int 0 & info [ "gen-beers" ] ~doc:"Preload a generated beer database of $(docv) rows." ~docv:"N")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-query timing and tuple traffic.")

let no_optimize_flag =
  Arg.(value & flag & info [ "no-optimize" ] ~doc:"Skip the logical optimizer.")

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
let expr_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR")

let guarded f =
  match f () with
  | () -> 0
  | exception Xra.Parser.Parse_error (msg, pos) ->
      Format.eprintf "parse error at %d: %s@." pos msg; 1
  | exception Xra.Lexer.Lex_error (msg, pos) ->
      Format.eprintf "lex error at %d: %s@." pos msg; 1
  | exception Sql.Sql_parser.Parse_error (msg, pos) ->
      Format.eprintf "sql parse error at %d: %s@." pos msg; 1
  | exception Sql.Sql_lexer.Lex_error (msg, pos) ->
      Format.eprintf "sql lex error at %d: %s@." pos msg; 1
  | exception Sql.Translate.Translate_error msg ->
      Format.eprintf "sql error: %s@." msg; 1
  | exception Typecheck.Type_error msg ->
      Format.eprintf "type error: %s@." msg; 1
  | exception Database.Unknown_relation name ->
      Format.eprintf "unknown relation: %s@." name; 1
  | exception Database.Duplicate_relation name ->
      Format.eprintf "relation exists: %s@." name; 1

let run_cmd =
  let action beer gen stats no_opt path =
    guarded (fun () ->
        run_xra ~optimize:(not no_opt) ~stats (preload beer gen) path)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute an XRA script.")
    Term.(const action $ beer_flag $ gen_flag $ stats_flag $ no_optimize_flag $ path_arg)

let sql_cmd =
  let action beer gen stats no_opt path =
    guarded (fun () ->
        run_sql ~optimize:(not no_opt) ~stats (preload beer gen) path)
  in
  Cmd.v (Cmd.info "sql" ~doc:"Execute a SQL script.")
    Term.(const action $ beer_flag $ gen_flag $ stats_flag $ no_optimize_flag $ path_arg)

let analyze_flag =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Execute the optimized plan with instrumentation and report \
           estimated vs actual rows, per-operator q-error and wall time.")

let explain_cmd =
  let action beer gen analyze expr =
    guarded (fun () -> explain ~analyze (preload beer gen) expr)
  in
  Cmd.v (Cmd.info "explain" ~doc:"Optimize an XRA expression and show plans.")
    Term.(const action $ beer_flag $ gen_flag $ analyze_flag $ expr_arg)

let () =
  let doc = "a multi-set extended relational algebra database (ICDE 1994)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "bagdb" ~doc) [ run_cmd; sql_cmd; explain_cmd ]))
