(* ACID end to end: Definition 4.3 cites atomicity, correctness,
   isolation and durability.  This example drives all four — a bank
   whose transfers run interleaved under the 2PL scheduler, commit into
   a write-ahead-logged store, survive a simulated crash, and never
   create or destroy money.

     dune exec examples/durable_bank.exe *)

open Mxra_relational
open Mxra_core
module Store = Mxra_storage.Store
module Scheduler = Mxra_concurrency.Scheduler
module W = Mxra_workload

let s_acct = Schema.of_list [ ("id", Domain.DInt); ("balance", Domain.DInt) ]

let initial accounts =
  Database.of_relations
    [ ("acct",
       Relation.of_list s_acct
         (List.init accounts (fun i ->
              Tuple.of_list [ Value.Int i; Value.Int 1_000 ]))) ]

let update_balance id delta =
  Statement.Update
    ( "acct",
      Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id)) (Expr.rel "acct"),
      [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int delta) ] )

let transfer src dst amount =
  Transaction.make
    ~name:(Printf.sprintf "transfer %d: %d -> %d" amount src dst)
    [ update_balance src (-amount); update_balance dst amount ]

let total db =
  match
    Relation.to_list
      (Eval.eval db (Expr.aggregate Aggregate.Sum 2 (Expr.rel "acct")))
  with
  | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> 0)
  | _ -> 0

let () =
  let accounts = 16 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mxra-bank" in
  (* Start from scratch each run. *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);

  (* 1. Durability: open a store and seed it. *)
  let store = Store.open_dir dir in
  Out_channel.with_open_text (Filename.concat dir "snapshot.xra") (fun oc ->
      Out_channel.output_string oc
        (Mxra_storage.Codec.encode_database (initial accounts)));
  Store.close store;
  let store = Store.open_dir dir in
  Format.printf "opened store in %s: %d accounts, total %d@.@." dir accounts
    (total (Store.database store));

  (* 2. Commit a batch of transfers through the WAL. *)
  let rng = W.Rng.make 42 in
  let committed = ref 0 in
  for _ = 1 to 50 do
    let txn =
      transfer (W.Rng.int rng accounts) (W.Rng.int rng accounts)
        (1 + W.Rng.int rng 100)
    in
    if Transaction.committed (Store.commit store txn) then incr committed
  done;
  Format.printf "committed %d transfers; log holds %d records; total %d@."
    !committed (Store.log_records store)
    (total (Store.database store));
  let before_crash = Store.database store in

  (* 3. Crash: drop the store on the floor WITHOUT closing or
     checkpointing, then recover from disk alone. *)
  let recovered = Store.recover_dir dir in
  Format.printf "after simulated crash, recovery reproduces the state: %b@.@."
    (Database.equal_states before_crash recovered);

  (* 4. Checkpoint compacts the log. *)
  Store.checkpoint store;
  Format.printf "after checkpoint: log records = %d, state kept: %b@.@."
    (Store.log_records store)
    (Database.equal_states before_crash (Store.database store));
  Store.close store;

  (* 5. Isolation: run 100 interleaved transfers under both concurrency
     controls and check each schedule is equivalent to a serial one.
     Snapshot isolation aborts conflicting writers (first committer
     wins, no waiting); strict 2PL blocks them and breaks deadlocks. *)
  let db = recovered in
  let txns =
    List.init 100 (fun _ ->
        transfer (W.Rng.int rng accounts) (W.Rng.int rng accounts)
          (1 + W.Rng.int rng 100))
  in
  List.iter
    (fun isolation ->
      let result = Scheduler.run ~isolation ~seed:7 db txns in
      let commits =
        List.length
          (List.filter
             (function
               | Scheduler.Committed -> true | Scheduler.Aborted _ -> false)
             result.Scheduler.outcomes)
      in
      Format.printf
        "%s run: %d/%d committed, %d conflicts, %d lock waits, %d deadlocks@."
        (Scheduler.isolation_name isolation)
        commits (List.length txns) result.Scheduler.stats.Scheduler.conflicts
        result.Scheduler.stats.Scheduler.blocks
        result.Scheduler.stats.Scheduler.deadlocks;
      Format.printf "schedule equivalent to serial commit order: %b@."
        (Scheduler.equivalent_serial db txns result);
      Format.printf "money conserved under interleaving: %b (total %d)@."
        (total result.Scheduler.final = total db)
        (total result.Scheduler.final))
    [ Scheduler.Si; Scheduler.Two_pl ]
