(* XRA concrete-language tests: lexing, parsing each construct, error
   reporting, and the parse∘print round-trip property over random
   expressions (Const leaves included via the literal relation form). *)

open Mxra_relational
open Mxra_core
open Mxra_xra
module W = Mxra_workload

let parse = Parser.expr_of_string

let check_expr msg expected src =
  Alcotest.(check bool)
    (msg ^ " (parsed " ^ Expr.to_string (parse src) ^ ")")
    true
    (Expr.equal expected (parse src))

(* --- lexer -------------------------------------------------------------- *)

let test_lexer () =
  let toks = Lexer.tokenize "select[%1 >= 2](r) -- comment\n" in
  Alcotest.(check int) "token count" 10 (Array.length toks);
  Alcotest.(check bool) "attr token" true (fst toks.(2) = Token.ATTR 1);
  let toks = Lexer.tokenize "'it''s'" in
  Alcotest.(check bool) "escaped quote" true (fst toks.(0) = Token.STRING "it's");
  Alcotest.(check bool) "mod vs attr" true
    (fst (Lexer.tokenize "%1 % %2").(1) = Token.PERCENT);
  Alcotest.(check bool) "lex error position" true
    (match Lexer.tokenize "a @ b" with
    | _ -> false
    | exception Lexer.Lex_error (_, 2) -> true)

(* --- expression parsing -------------------------------------------------- *)

let test_parse_operators () =
  check_expr "relation" (Expr.rel "beer") "beer";
  check_expr "union" (Expr.union (Expr.rel "a") (Expr.rel "b")) "union(a, b)";
  check_expr "nested"
    (Expr.diff (Expr.intersect (Expr.rel "a") (Expr.rel "b")) (Expr.rel "c"))
    "diff(intersect(a, b), c)";
  check_expr "select"
    (Expr.select (Pred.gt (Scalar.attr 1) (Scalar.int 2)) (Expr.rel "r"))
    "select[%1 > 2](r)";
  check_expr "project extended"
    (Expr.project
       [ Scalar.attr 1; Scalar.mul (Scalar.attr 3) (Scalar.float 1.1) ]
       (Expr.rel "r"))
    "project[%1, %3 * 1.1](r)";
  check_expr "join"
    (Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 4)) (Expr.rel "beer")
       (Expr.rel "brewery"))
    "join[%2 = %4](beer, brewery)";
  check_expr "unique" (Expr.unique (Expr.rel "r")) "unique(r)";
  check_expr "groupby"
    (Expr.group_by [ 6 ] [ (Aggregate.Avg, 3) ] (Expr.rel "j"))
    "groupby[%6; avg(%3)](j)";
  check_expr "groupby empty keys"
    (Expr.aggregate Aggregate.Cnt 1 (Expr.rel "r"))
    "groupby[; CNT(%1)](r)";
  check_expr "extension aggregates"
    (Expr.group_by [ 1 ] [ (Aggregate.Var, 2); (Aggregate.Stddev, 2) ] (Expr.rel "r"))
    "groupby[%1; var(%2), stddev(%2)](r)"

let test_parse_scalars_preds () =
  check_expr "precedence * over +"
    (Expr.project
       [ Scalar.add (Scalar.attr 1) (Scalar.mul (Scalar.attr 2) (Scalar.int 3)) ]
       (Expr.rel "r"))
    "project[%1 + %2 * 3](r)";
  check_expr "conditional"
    (Expr.project
       [ Scalar.If
           (Pred.gt (Scalar.attr 1) (Scalar.int 0), Scalar.attr 1,
            Scalar.Neg (Scalar.attr 1)) ]
       (Expr.rel "r"))
    "project[if %1 > 0 then %1 else - %1](r)";
  check_expr "boolean connectives"
    (Expr.select
       (Pred.Or
          (Pred.And (Pred.eq (Scalar.attr 1) (Scalar.int 1), Pred.True),
           Pred.Not (Pred.lt (Scalar.attr 2) (Scalar.str "x"))))
       (Expr.rel "r"))
    "select[(%1 = 1 and true) or not %2 < 'x'](r)";
  check_expr "parenthesised scalar comparison"
    (Expr.select
       (Pred.gt (Scalar.add (Scalar.attr 1) (Scalar.int 1)) (Scalar.int 2))
       (Expr.rel "r"))
    "select[(%1 + 1) > 2](r)"

let test_parse_literal_relation () =
  let e = parse "rel[(a:int, b:str)]{(1, 'x'):2, (2, 'y')}" in
  match e with
  | Expr.Const r ->
      Alcotest.(check int) "multiplicity honoured" 2
        (Relation.multiplicity (Tuple.of_list [ Value.Int 1; Value.Str "x" ]) r);
      Alcotest.(check int) "cardinal" 3 (Relation.cardinal r)
  | _ -> Alcotest.fail "expected a literal relation"

let test_parse_zero_multiplicity () =
  (* Definition 2.1: multiplicity 0 denotes absence.  A `:0` entry in a
     literal must parse and contribute nothing (it used to crash with an
     uncaught Invalid_argument). *)
  match parse "rel[(a:int)]{(1):2, (5):0}" with
  | Expr.Const r ->
      Alcotest.(check int) "present tuple kept" 2
        (Relation.multiplicity (Tuple.of_list [ Value.Int 1 ]) r);
      Alcotest.(check bool) "zero-multiplicity tuple absent" false
        (Relation.mem (Tuple.of_list [ Value.Int 5 ]) r)
  | _ -> Alcotest.fail "expected a literal relation"

let test_parse_errors () =
  let fails src =
    match parse src with
    | _ -> false
    | exception Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing paren" true (fails "union(a, b");
  Alcotest.(check bool) "missing operand" true (fails "union(a)");
  Alcotest.(check bool) "bad aggregate" true (fails "groupby[%1; foo(%2)](r)");
  Alcotest.(check bool) "trailing garbage" true (fails "r r");
  Alcotest.(check bool) "ill-typed literal rejected at parse" true
    (fails "rel[(a:int)]{('x')}")

(* --- statements, programs, commands --------------------------------------- *)

let test_parse_statements () =
  let s = Parser.statement_of_string "insert(beer, rel[(n:int)]{(1)})" in
  (match s with
  | Statement.Insert ("beer", Expr.Const _) -> ()
  | _ -> Alcotest.fail "insert shape");
  let s = Parser.statement_of_string "tmp := select[%1 = 1](r)" in
  (match s with
  | Statement.Assign ("tmp", Expr.Select (_, Expr.Rel "r")) -> ()
  | _ -> Alcotest.fail "assign shape");
  let s = Parser.statement_of_string "?unique(r)" in
  (match s with
  | Statement.Query (Expr.Unique (Expr.Rel "r")) -> ()
  | _ -> Alcotest.fail "query shape");
  let s =
    Parser.statement_of_string
      "update(beer, select[%2 = 'Guineken'](beer), [%1, %2, %3 * 1.1])"
  in
  match s with
  | Statement.Update ("beer", _, [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "update shape"

let test_parse_program_and_script () =
  let p = Parser.program_of_string "t := r; insert(s, t); ?s" in
  Alcotest.(check int) "three statements" 3 (List.length p);
  let script =
    Parser.script_of_string
      "create r (a:int); begin insert(r, rel[(a:int)]{(1)}); ?r end; ?r;"
  in
  (match script with
  | [ Parser.Cmd_create ("r", schema); Parser.Cmd_transaction txn;
      Parser.Cmd_statement (Statement.Query _) ] ->
      Alcotest.(check int) "schema arity" 1 (Schema.arity schema);
      Alcotest.(check int) "txn statements" 2 (List.length txn)
  | _ -> Alcotest.fail "script shape")

(* --- paper example in concrete syntax -------------------------------------- *)

let test_example_3_1_concrete () =
  let e =
    parse "project[%1](select[%6 = 'NL'](join[%2 = %4](beer, brewery)))"
  in
  Alcotest.(check bool) "matches the API-built Example 3.1" true
    (Expr.equal e W.Beer.example_3_1);
  let result = Eval.eval W.Beer.tiny e in
  Alcotest.(check int) "evaluates correctly" 3
    (Relation.multiplicity (Tuple.of_list [ Value.Str "Pilsener" ]) result)

(* --- round trip ------------------------------------------------------------- *)

let test_print_parse_fixed () =
  let sources =
    [
      "union(a, b)";
      "select[%1 = 1](r)";
      "groupby[%1, %2; SUM(%3), CNT(%1)](r)";
      "rel[(a:int, b:str)]{(1, 'x'):2}";
      "project[if %1 > 0 then 1 else 0](r)";
    ]
  in
  List.iter
    (fun src ->
      let e = parse src in
      let printed = Printer.expr_to_string e in
      Alcotest.(check bool)
        ("round trip: " ^ src ^ " printed as " ^ printed)
        true
        (Expr.equal e (parse printed)))
    sources

let roundtrip_property =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let e = scen.W.Gen_expr.expr in
    let printed = Printer.expr_to_string e in
    match Parser.expr_of_string printed with
    | parsed -> Expr.equal parsed e
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> false
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parse ∘ print = id" ~count:300 QCheck.small_nat test)

let statement_roundtrip =
  let test seed =
    let rng = W.Rng.make seed in
    let db = W.Gen_expr.database ~rng () in
    let name = W.Rng.pick rng (Database.relation_names db) in
    let e = W.Gen_expr.expr ~rng db ~depth:3 in
    let stmt =
      match W.Rng.int rng 4 with
      | 0 -> Statement.Insert (name, e)
      | 1 -> Statement.Delete (name, e)
      | 2 -> Statement.Assign ("t", e)
      | _ -> Statement.Query e
    in
    let printed = Printer.statement_to_string stmt in
    match Parser.statement_of_string printed with
    | parsed -> Printer.statement_to_string parsed = printed
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> false
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"statement round trip" ~count:200 QCheck.small_nat test)

let suite =
  ( "xra",
    [
      Alcotest.test_case "lexer" `Quick test_lexer;
      Alcotest.test_case "operators" `Quick test_parse_operators;
      Alcotest.test_case "scalars and conditions" `Quick test_parse_scalars_preds;
      Alcotest.test_case "literal relations" `Quick test_parse_literal_relation;
      Alcotest.test_case "zero-multiplicity literal" `Quick
        test_parse_zero_multiplicity;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "statements" `Quick test_parse_statements;
      Alcotest.test_case "programs and scripts" `Quick test_parse_program_and_script;
      Alcotest.test_case "Example 3.1 in XRA" `Quick test_example_3_1_concrete;
      Alcotest.test_case "fixed round trips" `Quick test_print_parse_fixed;
      roundtrip_property;
      statement_roundtrip;
    ] )
