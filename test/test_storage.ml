(* Durability tests: snapshot codec round trips, WAL replay, torn-tail
   crash recovery, checkpointing. *)

open Mxra_relational
open Mxra_core
open Mxra_storage

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mxra-store-%d-%d" (Unix.getpid ()) !counter)
  in
  if Sys.file_exists dir then
    Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f))
  else Sys.mkdir dir 0o755;
  dir

let write_snapshot dir db =
  Out_channel.with_open_text
    (Filename.concat dir "snapshot.xra")
    (fun oc -> Out_channel.output_string oc (Codec.encode_database db))

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DStr) ]
let tup k v = Tuple.of_list [ Value.Int k; Value.Str v ]

let sample_db =
  Database.of_relations
    [
      ("items", Relation.of_counted_list s_kv [ (tup 1 "a", 2); (tup 2 "it's", 1) ]);
      ("empty", Relation.empty s_kv);
    ]

(* --- codec -------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let encoded = Codec.encode_database sample_db in
  let decoded = Codec.decode_database encoded in
  Alcotest.(check bool) "snapshot round trip" true
    (Database.equal_states sample_db decoded);
  Alcotest.(check (list string)) "names preserved" [ "empty"; "items" ]
    (Database.persistent_names decoded)

let test_codec_preserves_time () =
  let db = Database.tick (Database.tick sample_db) in
  let decoded = Codec.decode_database (Codec.encode_database db) in
  Alcotest.(check int) "logical time" 2 (Database.logical_time decoded)

let test_codec_statement () =
  let stmt =
    Statement.Update
      ( "items",
        Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 1)) (Expr.rel "items"),
        [ Scalar.attr 1; Scalar.attr 2 ] )
  in
  let line = Codec.encode_statement stmt in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  Alcotest.(check string) "statement round trip" line
    (Codec.encode_statement (Codec.decode_statement line))

(* --- store -------------------------------------------------------------- *)

let insert_txn k v =
  Transaction.make
    [ Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup k v ])) ]

let with_store dir f =
  let store = Store.open_dir dir in
  let out = f store in
  Store.close store;
  out

let test_store_commit_and_recover () =
  with_store (fresh_dir ()) (fun store ->
      Alcotest.(check bool) "fresh store empty" true
        (Database.persistent_names (Store.database store) = []));
  (* A seeded directory: snapshot written by hand, log empty. *)
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  let store = Store.open_dir dir in
  Alcotest.(check int) "snapshot recovered" 3
    (Relation.cardinal (Database.find "items" (Store.database store)));
  let outcome = Store.commit store (insert_txn 9 "nine") in
  Alcotest.(check bool) "committed" true (Transaction.committed outcome);
  Alcotest.(check int) "one log record" 1 (Store.log_records store);
  Store.close store;
  (* Re-open: snapshot + log replay must reproduce the state. *)
  let recovered = Store.recover_dir dir in
  Alcotest.(check int) "insert survived restart" 1
    (Relation.multiplicity (tup 9 "nine") (Database.find "items" recovered))

let test_aborted_leaves_no_trace () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let failing =
        Transaction.make
          [
            Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup 5 "x" ]));
            Statement.Insert ("missing", Expr.rel "items");
          ]
      in
      let outcome = Store.commit store failing in
      Alcotest.(check bool) "aborted" false (Transaction.committed outcome);
      Alcotest.(check int) "no log record" 0 (Store.log_records store));
  let recovered = Store.recover_dir dir in
  Alcotest.(check bool) "state unchanged after restart" true
    (Database.equal_states sample_db recovered)

(* --- group commit ------------------------------------------------------- *)

let test_group_commit_amortizes_fsyncs () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let before = Store.fsyncs store in
      let outcomes =
        Store.commit_group store
          [ insert_txn 10 "ten"; insert_txn 11 "eleven"; insert_txn 12 "twelve" ]
      in
      Alcotest.(check (list bool)) "all committed" [ true; true; true ]
        (List.map Transaction.committed outcomes);
      Alcotest.(check int) "one record per transaction" 3
        (Store.log_records store);
      Alcotest.(check int) "one fsync for the whole group" 1
        (Store.fsyncs store - before));
  let recovered = Store.recover_dir dir in
  List.iter
    (fun (k, v) ->
      Alcotest.(check int)
        (Printf.sprintf "group member %d survived restart" k)
        1
        (Relation.multiplicity (tup k v) (Database.find "items" recovered)))
    [ (10, "ten"); (11, "eleven"); (12, "twelve") ]

let test_group_commit_skips_aborted () =
  (* An abort inside the group neither blocks its peers nor leaves a
     record: each member still runs atomically, the group only shares
     the fsync. *)
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  let failing =
    Transaction.make
      [
        Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup 5 "x" ]));
        Statement.Insert ("missing", Expr.rel "items");
      ]
  in
  with_store dir (fun store ->
      let outcomes =
        Store.commit_group store [ insert_txn 20 "a"; failing; insert_txn 21 "b" ]
      in
      Alcotest.(check (list bool)) "abort confined to its member"
        [ true; false; true ]
        (List.map Transaction.committed outcomes);
      Alcotest.(check int) "only committed members logged" 2
        (Store.log_records store));
  let recovered = Store.recover_dir dir in
  Alcotest.(check int) "first member survived" 1
    (Relation.multiplicity (tup 20 "a") (Database.find "items" recovered));
  Alcotest.(check int) "third member survived" 1
    (Relation.multiplicity (tup 21 "b") (Database.find "items" recovered));
  Alcotest.(check int) "aborted member left nothing" 0
    (Relation.multiplicity (tup 5 "x") (Database.find "items" recovered))

let test_group_commit_empty_and_all_aborted () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let before = Store.fsyncs store in
      Alcotest.(check int) "empty group is a no-op" 0
        (List.length (Store.commit_group store []));
      let failing = Transaction.make [ Statement.Insert ("missing", Expr.rel "items") ] in
      let outcomes = Store.commit_group store [ failing; failing ] in
      Alcotest.(check (list bool)) "all aborted" [ false; false ]
        (List.map Transaction.committed outcomes);
      Alcotest.(check int) "nothing logged" 0 (Store.log_records store);
      Alcotest.(check int) "nothing synced" 0 (Store.fsyncs store - before))

let test_group_commit_stamps_qids () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      ignore
        (Store.commit_group store
           ~qids:[ "q000123"; "q000124" ]
           [ insert_txn 30 "p"; insert_txn 31 "q" ]));
  let wal =
    In_channel.with_open_text
      (Filename.concat dir "wal.xra")
      In_channel.input_all
  in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun qid ->
      Alcotest.(check bool)
        (Printf.sprintf "%s stamped into its member's markers" qid)
        true (contains qid wal))
    [ "q000123"; "q000124" ]

(* A WAL record as [Store.append_record] writes it: begin marker,
   statement lines, commit marker carrying the CRC of everything
   before it. *)
let wal_record id stmts =
  let body =
    Printf.sprintf "-- begin %d\n" id
    ^ String.concat ""
        (List.map (fun s -> Codec.encode_statement s ^ "\n") stmts)
  in
  body
  ^ Printf.sprintf "-- commit %d %s\n" id
      (Checksum.to_hex (Checksum.string body))

let insert_stmt k v =
  Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup k v ]))

let test_torn_tail_discarded () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  (* A complete record followed by a torn one (no commit marker). *)
  Out_channel.with_open_text (Filename.concat dir "wal.xra") (fun oc ->
      Out_channel.output_string oc
        (wal_record 1 [ insert_stmt 7 "ok" ]
        ^ Printf.sprintf "-- begin 2\n%s\n"
            (Codec.encode_statement (insert_stmt 8 "torn"))));
  let recovered = Store.recover_dir dir in
  let items = Database.find "items" recovered in
  Alcotest.(check int) "committed record replayed" 1
    (Relation.multiplicity (tup 7 "ok") items);
  Alcotest.(check int) "torn record discarded" 0
    (Relation.multiplicity (tup 8 "torn") items);
  (* Recovery repairs: the torn tail is truncated off the log, so the
     next append starts at a record boundary. *)
  let wal =
    In_channel.with_open_text (Filename.concat dir "wal.xra")
      In_channel.input_all
  in
  Alcotest.(check string) "log truncated to last valid record"
    (wal_record 1 [ insert_stmt 7 "ok" ])
    wal

let test_corrupt_record_discarded () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  (* Record 2 has a present, well-formed commit marker but a flipped
     byte in its body: the CRC must reject it, and scanning stops — a
     valid-looking record *after* corruption is unreachable garbage. *)
  let good = wal_record 1 [ insert_stmt 7 "ok" ] in
  let bad =
    let r = wal_record 2 [ insert_stmt 8 "bad" ] in
    let b = Bytes.of_string r in
    Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) lxor 0x40));
    Bytes.to_string b
  in
  let unreachable = wal_record 3 [ insert_stmt 9 "after" ] in
  Out_channel.with_open_text (Filename.concat dir "wal.xra") (fun oc ->
      Out_channel.output_string oc (good ^ bad ^ unreachable));
  let recovered = Store.recover_dir dir in
  let items = Database.find "items" recovered in
  Alcotest.(check int) "good record replayed" 1
    (Relation.multiplicity (tup 7 "ok") items);
  Alcotest.(check int) "corrupt record discarded" 0
    (Relation.multiplicity (tup 8 "bad") items);
  Alcotest.(check int) "records after corruption discarded" 0
    (Relation.multiplicity (tup 9 "after") items)

let test_checkpoint_truncates () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      ignore (Store.commit store (insert_txn 10 "ten"));
      ignore (Store.commit store (insert_txn 11 "eleven"));
      Alcotest.(check int) "two records" 2 (Store.log_records store);
      Store.checkpoint store;
      Alcotest.(check int) "log truncated" 0 (Store.log_records store);
      ignore (Store.commit store (insert_txn 12 "twelve")));
  let recovered = Store.recover_dir dir in
  let items = Database.find "items" recovered in
  List.iter
    (fun (k, v) ->
      Alcotest.(check int) (v ^ " present") 1
        (Relation.multiplicity (tup k v) items))
    [ (10, "ten"); (11, "eleven"); (12, "twelve") ]

let test_temporaries_replay () =
  (* A transaction that routes data through a temporary must replay. *)
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let txn =
        Transaction.make
          [
            Statement.Assign ("stage", Expr.rel "items");
            Statement.Insert ("items", Expr.rel "stage");
          ]
      in
      ignore (Store.commit store txn);
      Alcotest.(check int) "doubled in memory" 6
        (Relation.cardinal (Database.find "items" (Store.database store))));
  let recovered = Store.recover_dir dir in
  Alcotest.(check int) "doubled after recovery" 6
    (Relation.cardinal (Database.find "items" recovered));
  Alcotest.(check bool) "no temporary leaked" false
    (Database.mem "stage" recovered)

(* --- codec properties (satellite: qcheck round trip) -------------------- *)

(* Snapshot round trip over random databases: schemas, bags,
   multiplicities and logical time all survive encode/decode. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"random database snapshot round trip" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Mxra_workload.Rng.make (0x5eed + seed) in
      let db = Mxra_workload.Gen_expr.database ~rng () in
      let decoded = Codec.decode_database (Codec.encode_database db) in
      Database.equal_states db decoded
      && Database.logical_time db = Database.logical_time decoded)

(* Any byte flipped in a snapshot body is caught by the CRC and
   surfaces as the typed [Codec.Corrupt] — never as a parse error or a
   silently different database. *)
let prop_codec_corruption_rejected =
  QCheck.Test.make ~name:"corrupted snapshot byte rejected" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (seed, pos_seed) ->
      let rng = Mxra_workload.Rng.make (0xbad + seed) in
      let db = Mxra_workload.Gen_expr.database ~rng () in
      let encoded = Codec.encode_database db in
      (* Flip a bit strictly after the CRC header line, so the stored
         checksum stays intact and the body no longer matches it. *)
      let body_start = String.index encoded '\n' + 1 in
      let pos =
        body_start + (pos_seed mod (String.length encoded - body_start))
      in
      let corrupted = Bytes.of_string encoded in
      Bytes.set corrupted pos
        (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0x20));
      match Codec.decode_database (Bytes.to_string corrupted) with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

let test_snapshot_crc_verified () =
  let encoded = Codec.encode_database sample_db in
  Alcotest.(check bool) "crc header present" true
    (String.length encoded > 7 && String.sub encoded 0 7 = "-- @crc");
  let db, covered = Codec.decode_snapshot encoded in
  Alcotest.(check bool) "decodes" true (Database.equal_states sample_db db);
  Alcotest.(check int) "covers no wal by default" 0 covered;
  let with_wal = Codec.encode_database ~wal_covered:17 sample_db in
  Alcotest.(check int) "wal coverage round trips" 17
    (snd (Codec.decode_snapshot with_wal))

(* --- fault injection (tentpole: Vfs + retry + crash recovery) ----------- *)

let test_memory_vfs_basics () =
  let vfs = Vfs.memory () in
  Alcotest.(check bool) "absent file" true (vfs.Vfs.read_file "x" = None);
  vfs.Vfs.write_file "x" "hello";
  Alcotest.(check bool) "read back" true (vfs.Vfs.read_file "x" = Some "hello");
  let h = vfs.Vfs.open_append "x" in
  h.Vfs.h_write " world";
  h.Vfs.h_sync ();
  h.Vfs.h_close ();
  Alcotest.(check bool) "appended" true
    (vfs.Vfs.read_file "x" = Some "hello world");
  vfs.Vfs.truncate "x" 5;
  Alcotest.(check bool) "truncated" true (vfs.Vfs.read_file "x" = Some "hello");
  vfs.Vfs.rename "x" "y";
  Alcotest.(check bool) "renamed away" true (not (vfs.Vfs.exists "x"));
  Alcotest.(check bool) "renamed to" true (vfs.Vfs.read_file "y" = Some "hello")

let test_crash_loses_unsynced_tail () =
  (* Synced bytes survive a crash; unsynced bytes may not.  With torn
     writes off the boundary is exact. *)
  let inj =
    Vfs.inject ~seed:7
      { Vfs.no_faults with Vfs.crash_at = 5; Vfs.torn_writes = false }
  in
  (* Syscalls: open 1, write 2, sync 3, write 4, sync 5 = crash. *)
  let h = inj.Vfs.vfs.Vfs.open_append "f" in
  h.Vfs.h_write "durable";
  h.Vfs.h_sync ();
  h.Vfs.h_write "lost";
  Alcotest.check_raises "crash raised" Vfs.Crash (fun () -> h.Vfs.h_sync ());
  Alcotest.(check bool) "crashed" true (inj.Vfs.crashed ());
  Alcotest.check_raises "dead after crash" Vfs.Crash (fun () ->
      h.Vfs.h_write "zombie");
  Alcotest.(check bool) "synced prefix survives, unsynced tail lost" true
    (inj.Vfs.base.Vfs.read_file "f" = Some "durable")

let test_store_retries_transient_faults () =
  (* Every fifth write/sync fails with a short write first; the store's
     truncate-and-retry must hide all of it.  (The cadence must not be
     3: truncate + reopen + rewrite is itself three syscalls, so a
     period-3 fault would hit every retry of the same write.) *)
  let inj = Vfs.inject ~seed:11 { Vfs.no_faults with Vfs.fail_every = 5 } in
  let store =
    Store.open_dir ~vfs:inj.Vfs.vfs ~retries:6 ~backoff_ms:0.0 "db"
  in
  Store.absorb_batch store [] sample_db;
  (* The baseline state (with its schemas) becomes durable here; the
     log records that follow replay on top of it. *)
  Store.checkpoint store;
  for k = 20 to 29 do
    match Store.commit store (insert_txn k "bulk") with
    | Transaction.Committed _ -> ()
    | Transaction.Aborted { reason; _ } -> Alcotest.fail reason
  done;
  Store.close store;
  Alcotest.(check bool) "faults were actually injected" true
    (inj.Vfs.transients () > 0);
  let recovered = Store.recover_dir ~vfs:inj.Vfs.base "db" in
  let items = Database.find "items" recovered in
  for k = 20 to 29 do
    Alcotest.(check int)
      (Printf.sprintf "row %d survived retries" k)
      1
      (Relation.multiplicity (tup k "bulk") items)
  done

let test_crash_during_checkpoint () =
  (* Whatever syscall of the checkpoint sequence (snapshot write,
     rename, log truncate) the crash lands on, no committed data is
     lost and nothing is applied twice. *)
  let committed_state inj =
    let store = Store.open_dir ~vfs:inj.Vfs.vfs ~backoff_ms:0.0 "db" in
    Store.absorb_batch store [] sample_db;
    Store.checkpoint store;
    ignore (Store.commit store (insert_txn 31 "a"));
    ignore (Store.commit store (insert_txn 32 "b"));
    (store, Store.database store)
  in
  (* Count the checkpoint's syscalls once, crash-free. *)
  let inj0 = Vfs.inject Vfs.no_faults in
  let store0, expected = committed_state inj0 in
  let before = inj0.Vfs.syscalls () in
  Store.checkpoint store0;
  let ckpt_ops = inj0.Vfs.syscalls () - before in
  Alcotest.(check bool) "checkpoint does several syscalls" true (ckpt_ops >= 3);
  for k = 1 to ckpt_ops do
    let inj = Vfs.inject ~seed:(100 + k) Vfs.no_faults in
    let store, _ = committed_state inj in
    inj.Vfs.rearm { Vfs.no_faults with Vfs.crash_at = k };
    (try Store.checkpoint store with Vfs.Crash -> ());
    let recovered = Store.recover_dir ~vfs:inj.Vfs.base "db" in
    Alcotest.(check bool)
      (Printf.sprintf "state intact crashing at checkpoint syscall %d" k)
      true
      (Database.equal_states expected recovered)
  done

let test_crash_during_recovery () =
  (* Recovery itself writes (truncating a torn tail); crashing there and
     recovering again must still converge. *)
  let inj = Vfs.inject ~seed:5 Vfs.no_faults in
  let store = Store.open_dir ~vfs:inj.Vfs.vfs ~backoff_ms:0.0 "db" in
  Store.absorb_batch store [] sample_db;
  Store.checkpoint store;
  ignore (Store.commit store (insert_txn 41 "keep"));
  Store.close store;
  (* Fake a torn tail so the first recovery has a truncate to crash in. *)
  let h = inj.Vfs.base.Vfs.open_append "db/wal.xra" in
  h.Vfs.h_write "-- begin 99\ninsert(items, re";
  h.Vfs.h_sync ();
  h.Vfs.h_close ();
  inj.Vfs.rearm ~seed:6 { Vfs.no_faults with Vfs.crash_at = 1 };
  (try ignore (Store.recover_dir ~vfs:inj.Vfs.vfs "db")
   with Vfs.Crash -> ());
  let recovered = Store.recover_dir ~vfs:inj.Vfs.base "db" in
  Alcotest.(check int) "committed row survives interrupted recovery" 1
    (Relation.multiplicity (tup 41 "keep") (Database.find "items" recovered))

let qcheck p = QCheck_alcotest.to_alcotest p

let suite =
  ( "storage",
    [
      Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
      Alcotest.test_case "codec preserves time" `Quick test_codec_preserves_time;
      Alcotest.test_case "statement codec" `Quick test_codec_statement;
      Alcotest.test_case "snapshot crc verified" `Quick test_snapshot_crc_verified;
      qcheck prop_codec_roundtrip;
      qcheck prop_codec_corruption_rejected;
      Alcotest.test_case "commit and recover" `Quick test_store_commit_and_recover;
      Alcotest.test_case "aborts leave no trace" `Quick test_aborted_leaves_no_trace;
      Alcotest.test_case "group commit amortizes fsyncs" `Quick
        test_group_commit_amortizes_fsyncs;
      Alcotest.test_case "group commit skips aborted members" `Quick
        test_group_commit_skips_aborted;
      Alcotest.test_case "group commit empty and all-aborted" `Quick
        test_group_commit_empty_and_all_aborted;
      Alcotest.test_case "group commit stamps qids" `Quick
        test_group_commit_stamps_qids;
      Alcotest.test_case "torn tail discarded" `Quick test_torn_tail_discarded;
      Alcotest.test_case "corrupt record discarded" `Quick test_corrupt_record_discarded;
      Alcotest.test_case "checkpoint truncates log" `Quick test_checkpoint_truncates;
      Alcotest.test_case "temporaries replay" `Quick test_temporaries_replay;
      Alcotest.test_case "memory vfs basics" `Quick test_memory_vfs_basics;
      Alcotest.test_case "crash loses unsynced tail" `Quick test_crash_loses_unsynced_tail;
      Alcotest.test_case "store retries transient faults" `Quick test_store_retries_transient_faults;
      Alcotest.test_case "crash during checkpoint" `Quick test_crash_during_checkpoint;
      Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
    ] )
