Parallel execution: with --jobs N the planner inserts Exchange
operators above large scans, joins and aggregates — but only when
min(jobs, cores) > 1 and the estimated input clears the profitability
floor.  MXRA_CORES pins the core count so the plan shape is the same
on any host.  On four cores the plan shape and the estimates are
deterministic, so EXPLAIN output is pinned exactly:

  $ MXRA_CORES=4 ../../bin/bagdb.exe explain --jobs 4 --retail 2000 "groupby[%1; SUM(%2)](project[%3, %9 * %10](join[%4 = %7](join[%1 = %5](customer, orders), lineitem)))"
  input:      groupby[%1; SUM(%2)](project[%3, (%9 * %10)](join[%4 = %7](join[%1 = %5](
                                                             customer, orders),
                                                             lineitem)))
  optimized:  groupby[%1; SUM(%2)](project[%1, (%4 * %5)](join[%2 = %3](project[%2, %3](
                                                            join[%1 = %4](
                                                            project[%1, %3](
                                                            customer),
                                                            project[%1, %2](
                                                            orders))),
                                                            project[%1, %3, %4](
                                                            lineitem))))
  est. cost:  224628 -> 203276 tuples
  physical:
  Exchange parts=4                               (est=6)
    HashAggregate keys=[%1] aggs=[SUM(%2)]       (est=6)
      Project [%1, (%4 * %5)]                    (est=12876)
        Exchange parts=4                         (est=12876)
          HashJoin keys=%2=%1 residual=[true]    (est=12876)
            Project [%2, %3]                     (est=2000)
              Exchange parts=4                   (est=2000)
                HashJoin keys=%1=%2 residual=[true] (est=2000)
                  Project [%1, %3]               (est=200)
                    SeqScan customer             (est=200)
                  Exchange parts=4               (est=2000)
                    Project [%1, %2]             (est=2000)
                      SeqScan orders             (est=2000)
            Exchange parts=4                     (est=12876)
              Project [%1, %3, %4]               (est=12876)
                SeqScan lineitem                 (est=12876)
  


On a single core the same --jobs 4 request must plan purely
sequentially — fragmenting work that one core runs anyway only adds
partition and merge overhead (this regression test pins the fix for
the old unconditional 512-row threshold, which parallelized here and
made queries slower):

  $ MXRA_CORES=1 ../../bin/bagdb.exe explain --jobs 4 --retail 2000 "groupby[%1; SUM(%2)](project[%3, %9 * %10](join[%4 = %7](join[%1 = %5](customer, orders), lineitem)))" | sed -n '/physical:/,$p'
  physical:
  HashAggregate keys=[%1] aggs=[SUM(%2)]         (est=6)
    Project [%1, (%4 * %5)]                      (est=12876)
      HashJoin keys=%2=%1 residual=[true]        (est=12876)
        Project [%2, %3]                         (est=2000)
          HashJoin keys=%1=%2 residual=[true]    (est=2000)
            Project [%1, %3]                     (est=200)
              SeqScan customer                   (est=200)
            Project [%1, %2]                     (est=2000)
              SeqScan orders                     (est=2000)
        Project [%1, %3, %4]                     (est=12876)
          SeqScan lineitem                       (est=12876)
  

A parallel run computes the same bag as the sequential one — the
distribution laws of Theorem 3.2 made operational — and the chunk
size is pure plumbing, so a degenerate one-tuple-chunk run is
identical too:

  $ cat > revenue.xra << 'EOF'
  > ?groupby[%1; SUM(%2)](project[%3, %9 * %10](join[%4 = %7](join[%1 = %5](customer, orders), lineitem)));
  > EOF

  $ ../../bin/bagdb.exe run --retail 2000 --jobs 1 revenue.xra > seq.out
  $ MXRA_CORES=4 ../../bin/bagdb.exe run --retail 2000 --jobs 4 revenue.xra > par.out
  $ ../../bin/bagdb.exe run --retail 2000 --chunk-size 1 revenue.xra > chunk1.out
  $ diff seq.out par.out
  $ diff seq.out chunk1.out
  $ cat par.out
  +---------+---------------+---+
  | country | sum_(%4 * %5) | # |
  +---------+---------------+---+
  | 'BE'    | 228858        | 1 |
  | 'DE'    | 292797        | 1 |
  | 'FR'    | 515583        | 1 |
  | 'NL'    | 106462        | 1 |
  | 'UK'    | 254708        | 1 |
  | 'US'    | 244136        | 1 |
  +---------+---------------+---+ (6 tuples, 6 distinct)

The bench harness measures the speedup curve (E15); timings are
nondeterministic, so the test normalises numbers and spacing and pins
the table shape, the adaptive no-Exchange column, the 1-core
guarantee line and the JSON artifact:

  $ MXRA_CORES=1 ../../bench/main.exe quick e15 --jobs 2 | sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e 's/chunk size [0-9]+/chunk size _/' -e 's/ +/ /g'
  mxra benchmark harness: experiments E1..E20 of DESIGN.md section 5 (quick mode)
  
  === E15 multicore speedup (retail join+aggregate, domain pool) ===
   4000 orders, 6 result rows, 1 cores, chunk size _
   jobs | ms | speedup | exchanges | bag-equal
   1 | _ | _x | 0 | true
   2 | _ | _x | 0 | true
   sequential _ ms chunked, _ ms tuple-at-a-time (chunk 1)
   wrote BENCH_parallel.json
   1-core guarantee holds: no Exchange, all speedups >= _x
  
  done.




  $ grep -c bag_equal BENCH_parallel.json
  2
