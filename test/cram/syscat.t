The system catalog: sys.* names are ordinary bag relations served from
the live telemetry registries.  Two selections of the same shape but
different literals share a fingerprint, so by the time the third query
scans sys.statements the select-shape has two calls.  (Timings vary
run to run; fingerprints, calls, langs and row counts do not.)

  $ cat > session.xra <<'EOF'
  > ?select[%2 = 'Grolsch'](beer)
  > ?select[%2 = 'Chimay'](beer)
  > ?project[%1, %3, %4](select[%4 >= 2](sys.statements))
  > EOF
  $ ../../bin/bagdb.exe run --beer session.xra
  +------------+-----------+---------+---+
  | name       | brewery   | alcperc | # |
  +------------+-----------+---------+---+
  | 'Bock'     | 'Grolsch' | 6.4     | 1 |
  | 'Pilsener' | 'Grolsch' | 5.2     | 1 |
  +------------+-----------+---------+---+ (2 tuples, 2 distinct)
  +----------+----------+---------+---+
  | name     | brewery  | alcperc | # |
  +----------+----------+---------+---+
  | 'Blauw'  | 'Chimay' | 9       | 1 |
  | 'Tripel' | 'Chimay' | 8.1     | 1 |
  +----------+----------+---------+---+ (2 tuples, 2 distinct)
  +--------------------+-------+-------+---+
  | fingerprint        | lang  | calls | # |
  +--------------------+-------+-------+---+
  | '100382a218979a41' | 'xra' | 2     | 1 |
  +--------------------+-------+-------+---+ (1 tuples, 1 distinct)

bagdb stats runs a script and prints the cumulative registry, heaviest
statement first.  Heaviest-first is a wall-clock order, so the pin
sorts by fingerprint instead; the timing columns are scrubbed and the
stable ones kept — including confl, the per-statement conflict-abort
tally (zero here: no write-write contention in this session).  The
exemplar text is the normalized shape, literals folded to ?.

  $ ../../bin/bagdb.exe stats --beer session.xra | awk 'NR == 1 || /xra/ {print $1, $2, $6, $9, $10, $11}' | sort -r
  fingerprint calls rows confl lang statement
  b866f12471121773 1 1 0 xra project[%1,%3,%4](select[%4>=?](sys.statements))
  100382a218979a41 2 4 0 xra select[%2=?](beer)

sys.locks serves the scheduler's process counters as a relation.  The
counter set is the SI-era one — conflict aborts (sched.conflicts,
txn.conflicts, txn.snapshot_age) next to the 2PL lock-wait series,
which stays meaningful because --isolation 2pl is still selectable.
Values vary; the counter names do not.

  $ echo "?project[%1](sys.locks)" > locks.xra
  $ ../../bin/bagdb.exe run --beer locks.xra
  +----------------------+---+
  | counter              | # |
  +----------------------+---+
  | 'sched.batches'      | 1 |
  | 'sched.blocks'       | 1 |
  | 'sched.commits'      | 1 |
  | 'sched.conflicts'    | 1 |
  | 'sched.deadlocks'    | 1 |
  | 'sched.lock_wait_ms' | 1 |
  | 'sched.steps'        | 1 |
  | 'txn.conflicts'      | 1 |
  | 'txn.snapshot_age'   | 1 |
  +----------------------+---+ (9 tuples, 9 distinct)

sys.ash is the Active Session History ring: wait events pushed as
they complete, queryable like any relation.  Two transactions that
update the same rows in opposite orders contend; under strict 2PL the
loser blocks and its settled wait lands in the ring as a lock event
against the relation it waited on.  (The --isolation flag beats the
MXRA_ISOLATION environment leg, so the pin holds on every tier-1
run.)  sys.progress snapshots the live registry at attach time, so
the scan sees exactly one in-flight query — itself, just registered,
zero chunks in, attributed to cpu.exec.

  $ cat > contended.xra <<'EOF'
  > begin
  >   update(beer, select[%2 = 'Grolsch'](beer), [%1, %2, %3 + 0.1]);
  >   update(beer, select[%2 = 'Chimay'](beer), [%1, %2, %3 + 0.1])
  > end;
  > begin
  >   update(beer, select[%2 = 'Chimay'](beer), [%1, %2, %3 + 0.2]);
  >   update(beer, select[%2 = 'Grolsch'](beer), [%1, %2, %3 + 0.2])
  > end;
  > ?project[%2, %4, %5](select[%7 = 'event'](sys.ash));
  > ?project[%1, %3, %5, %11](sys.progress)
  > EOF
  $ ../../bin/bagdb.exe run --beer --isolation 2pl contended.xra
  +-----------+------------+--------+---+
  | qid       | wait_class | detail | # |
  +-----------+------------+--------+---+
  | 'q000001' | 'lock'     | 'beer' | 1 |
  +-----------+------------+--------+---+ (1 tuples, 1 distinct)
  +-----------+-------+----------+------------+---+
  | qid       | lang  | operator | wait_class | # |
  +-----------+-------+----------+------------+---+
  | 'q000004' | 'xra' | ''       | 'cpu.exec' | 1 |
  +-----------+-------+----------+------------+---+ (1 tuples, 1 distinct)

The same schedule under snapshot isolation never blocks — the second
writer loses first-committer-wins instead, and the ring records a
conflict event where 2PL recorded a lock wait:

  $ ../../bin/bagdb.exe run --beer --isolation si contended.xra
  aborted: write-write conflict on beer
  +-----------+------------+--------+---+
  | qid       | wait_class | detail | # |
  +-----------+------------+--------+---+
  | 'q000001' | 'conflict' | 'beer' | 1 |
  +-----------+------------+--------+---+ (1 tuples, 1 distinct)
  +-----------+-------+----------+------------+---+
  | qid       | lang  | operator | wait_class | # |
  +-----------+-------+----------+------------+---+
  | 'q000004' | 'xra' | ''       | 'cpu.exec' | 1 |
  +-----------+-------+----------+------------+---+ (1 tuples, 1 distinct)

The catalog also answers SQL, by name:

  $ cat > session.sql <<'EOF'
  > SELECT name, alcperc FROM beer WHERE alcperc > 6.0;
  > SELECT lang, calls FROM sys.statements;
  > EOF
  $ ../../bin/bagdb.exe sql --beer session.sql
  +----------+---------+---+
  | name     | alcperc | # |
  +----------+---------+---+
  | 'Blauw'  | 9       | 1 |
  | 'Bock'   | 6.4     | 1 |
  | 'Bock'   | 6.5     | 1 |
  | 'Tripel' | 8       | 1 |
  | 'Tripel' | 8.1     | 1 |
  +----------+---------+---+ (5 tuples, 5 distinct)
  +-------+-------+---+
  | lang  | calls | # |
  +-------+-------+---+
  | 'sql' | 1     | 1 |
  +-------+-------+---+ (1 tuples, 1 distinct)

Writes to sys.* names are refused before any transaction machinery
sees them:

  $ echo "create sys.mine (a:int);" > bad.xra
  $ ../../bin/bagdb.exe run --beer bad.xra
  reserved name: sys.mine is a system catalog relation
  [1]

An absent sys.* name is just an unknown relation — same error, same
exit code as any other missing name:

  $ echo "?sys.nonsense" > missing.xra
  $ ../../bin/bagdb.exe run --beer missing.xra
  type error: unknown relation sys.nonsense
  [1]
  $ echo "?nosuch" > missing2.xra
  $ ../../bin/bagdb.exe run --beer missing2.xra
  type error: unknown relation nosuch
  [1]

The REPL sees the same catalog (and its .stats meta command renders
the registry):

  $ echo ".beer
  > ?project[%1](sys.relations)
  > sys.grab := beer
  > .quit" | ../../bin/xra_repl.exe
  mxra :: multi-set extended relational algebra shell (.help)
  xra> loaded beer database
  xra> +-----------+---+
  | name      | # |
  +-----------+---+
  | 'beer'    | 1 |
  | 'brewery' | 1 |
  +-----------+---+ (2 tuples, 2 distinct)
  xra> reserved name: sys.grab is a system catalog relation
  xra> 
