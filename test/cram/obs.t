Observability surface.  "bagdb metrics" runs a script with result
output suppressed and dumps aggregated span latencies, operator
traffic and engine counters in Prometheus text format.  Measured
durations vary run to run and are scrubbed; every count is
deterministic.

  $ ../../bin/bagdb.exe metrics ../../examples/scripts/beer_session.xra \
  >   | sed -E 's/^(.*_ms(_total)?(\{quantile="[0-9.]+"\}|_sum)?) [0-9.eE+-]+$/\1 <ms>/'
  # HELP mxra_Filter_ms latency of 'Filter' spans
  # TYPE mxra_Filter_ms summary
  mxra_Filter_ms{quantile="0.5"} <ms>
  mxra_Filter_ms{quantile="0.9"} <ms>
  mxra_Filter_ms{quantile="0.99"} <ms>
  mxra_Filter_ms_sum <ms>
  mxra_Filter_ms_count 1
  # HELP mxra_HashAggregate_ms latency of 'HashAggregate' spans
  # TYPE mxra_HashAggregate_ms summary
  mxra_HashAggregate_ms{quantile="0.5"} <ms>
  mxra_HashAggregate_ms{quantile="0.9"} <ms>
  mxra_HashAggregate_ms{quantile="0.99"} <ms>
  mxra_HashAggregate_ms_sum <ms>
  mxra_HashAggregate_ms_count 1
  # HELP mxra_HashJoin_ms latency of 'HashJoin' spans
  # TYPE mxra_HashJoin_ms summary
  mxra_HashJoin_ms{quantile="0.5"} <ms>
  mxra_HashJoin_ms{quantile="0.9"} <ms>
  mxra_HashJoin_ms{quantile="0.99"} <ms>
  mxra_HashJoin_ms_sum <ms>
  mxra_HashJoin_ms_count 2
  # HELP mxra_Project_ms latency of 'Project' spans
  # TYPE mxra_Project_ms summary
  mxra_Project_ms{quantile="0.5"} <ms>
  mxra_Project_ms{quantile="0.9"} <ms>
  mxra_Project_ms{quantile="0.99"} <ms>
  mxra_Project_ms_sum <ms>
  mxra_Project_ms_count 5
  # HELP mxra_SeqScan_ms latency of 'SeqScan' spans
  # TYPE mxra_SeqScan_ms summary
  mxra_SeqScan_ms{quantile="0.5"} <ms>
  mxra_SeqScan_ms{quantile="0.9"} <ms>
  mxra_SeqScan_ms{quantile="0.99"} <ms>
  mxra_SeqScan_ms_sum <ms>
  mxra_SeqScan_ms_count 4
  # HELP mxra_execute_ms latency of 'execute' spans
  # TYPE mxra_execute_ms summary
  mxra_execute_ms{quantile="0.5"} <ms>
  mxra_execute_ms{quantile="0.9"} <ms>
  mxra_execute_ms{quantile="0.99"} <ms>
  mxra_execute_ms_sum <ms>
  mxra_execute_ms_count 2
  # HELP mxra_optimize_ms latency of 'optimize' spans
  # TYPE mxra_optimize_ms summary
  mxra_optimize_ms{quantile="0.5"} <ms>
  mxra_optimize_ms{quantile="0.9"} <ms>
  mxra_optimize_ms{quantile="0.99"} <ms>
  mxra_optimize_ms_sum <ms>
  mxra_optimize_ms_count 2
  # HELP mxra_optimize_normalize_ms latency of 'optimize.normalize' spans
  # TYPE mxra_optimize_normalize_ms summary
  mxra_optimize_normalize_ms{quantile="0.5"} <ms>
  mxra_optimize_normalize_ms{quantile="0.9"} <ms>
  mxra_optimize_normalize_ms{quantile="0.99"} <ms>
  mxra_optimize_normalize_ms_sum <ms>
  mxra_optimize_normalize_ms_count 2
  # HELP mxra_optimize_reorder_ms latency of 'optimize.reorder' spans
  # TYPE mxra_optimize_reorder_ms summary
  mxra_optimize_reorder_ms{quantile="0.5"} <ms>
  mxra_optimize_reorder_ms{quantile="0.9"} <ms>
  mxra_optimize_reorder_ms{quantile="0.99"} <ms>
  mxra_optimize_reorder_ms_sum <ms>
  mxra_optimize_reorder_ms_count 2
  # HELP mxra_parse_ms latency of 'parse' spans
  # TYPE mxra_parse_ms summary
  mxra_parse_ms{quantile="0.5"} <ms>
  mxra_parse_ms{quantile="0.9"} <ms>
  mxra_parse_ms{quantile="0.99"} <ms>
  mxra_parse_ms_sum <ms>
  mxra_parse_ms_count 1
  # HELP mxra_plan_ms latency of 'plan' spans
  # TYPE mxra_plan_ms summary
  mxra_plan_ms{quantile="0.5"} <ms>
  mxra_plan_ms{quantile="0.9"} <ms>
  mxra_plan_ms{quantile="0.99"} <ms>
  mxra_plan_ms_sum <ms>
  mxra_plan_ms_count 2
  # HELP mxra_query_ms latency of 'query' spans
  # TYPE mxra_query_ms summary
  mxra_query_ms{quantile="0.5"} <ms>
  mxra_query_ms{quantile="0.9"} <ms>
  mxra_query_ms{quantile="0.99"} <ms>
  mxra_query_ms_sum <ms>
  mxra_query_ms_count 2
  # HELP mxra_scheduler_batch_ms latency of 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_ms summary
  mxra_scheduler_batch_ms{quantile="0.5"} <ms>
  mxra_scheduler_batch_ms{quantile="0.9"} <ms>
  mxra_scheduler_batch_ms{quantile="0.99"} <ms>
  mxra_scheduler_batch_ms_sum <ms>
  mxra_scheduler_batch_ms_count 1
  # HELP mxra_statement_ms latency of 'statement' spans
  # TYPE mxra_statement_ms summary
  mxra_statement_ms{quantile="0.5"} <ms>
  mxra_statement_ms{quantile="0.9"} <ms>
  mxra_statement_ms{quantile="0.99"} <ms>
  mxra_statement_ms_sum <ms>
  mxra_statement_ms_count 4
  # HELP mxra_txn_ms latency of 'txn' spans
  # TYPE mxra_txn_ms summary
  mxra_txn_ms{quantile="0.5"} <ms>
  mxra_txn_ms{quantile="0.9"} <ms>
  mxra_txn_ms{quantile="0.99"} <ms>
  mxra_txn_ms_sum <ms>
  mxra_txn_ms_count 1
  # HELP mxra_Filter_elems_total sum of 'elems' over 'Filter' spans
  # TYPE mxra_Filter_elems_total counter
  mxra_Filter_elems_total 2
  # HELP mxra_Filter_rows_total sum of 'rows' over 'Filter' spans
  # TYPE mxra_Filter_rows_total counter
  mxra_Filter_rows_total 2
  # HELP mxra_Filter_wall_ms_total sum of 'wall_ms' over 'Filter' spans
  # TYPE mxra_Filter_wall_ms_total counter
  mxra_Filter_wall_ms_total <ms>
  # HELP mxra_HashAggregate_elems_total sum of 'elems' over 'HashAggregate' spans
  # TYPE mxra_HashAggregate_elems_total counter
  mxra_HashAggregate_elems_total 2
  # HELP mxra_HashAggregate_groups_total sum of 'groups' over 'HashAggregate' spans
  # TYPE mxra_HashAggregate_groups_total counter
  mxra_HashAggregate_groups_total 2
  # HELP mxra_HashAggregate_rows_total sum of 'rows' over 'HashAggregate' spans
  # TYPE mxra_HashAggregate_rows_total counter
  mxra_HashAggregate_rows_total 2
  # HELP mxra_HashAggregate_wall_ms_total sum of 'wall_ms' over 'HashAggregate' spans
  # TYPE mxra_HashAggregate_wall_ms_total counter
  mxra_HashAggregate_wall_ms_total <ms>
  # HELP mxra_HashJoin_build_total sum of 'build' over 'HashJoin' spans
  # TYPE mxra_HashJoin_build_total counter
  mxra_HashJoin_build_total 5
  # HELP mxra_HashJoin_elems_total sum of 'elems' over 'HashJoin' spans
  # TYPE mxra_HashJoin_elems_total counter
  mxra_HashJoin_elems_total 7
  # HELP mxra_HashJoin_keys_total sum of 'keys' over 'HashJoin' spans
  # TYPE mxra_HashJoin_keys_total counter
  mxra_HashJoin_keys_total 5
  # HELP mxra_HashJoin_rows_total sum of 'rows' over 'HashJoin' spans
  # TYPE mxra_HashJoin_rows_total counter
  mxra_HashJoin_rows_total 7
  # HELP mxra_HashJoin_wall_ms_total sum of 'wall_ms' over 'HashJoin' spans
  # TYPE mxra_HashJoin_wall_ms_total counter
  mxra_HashJoin_wall_ms_total <ms>
  # HELP mxra_Project_elems_total sum of 'elems' over 'Project' spans
  # TYPE mxra_Project_elems_total counter
  mxra_Project_elems_total 16
  # HELP mxra_Project_rows_total sum of 'rows' over 'Project' spans
  # TYPE mxra_Project_rows_total counter
  mxra_Project_rows_total 16
  # HELP mxra_Project_wall_ms_total sum of 'wall_ms' over 'Project' spans
  # TYPE mxra_Project_wall_ms_total counter
  mxra_Project_wall_ms_total <ms>
  # HELP mxra_SeqScan_elems_total sum of 'elems' over 'SeqScan' spans
  # TYPE mxra_SeqScan_elems_total counter
  mxra_SeqScan_elems_total 14
  # HELP mxra_SeqScan_rows_total sum of 'rows' over 'SeqScan' spans
  # TYPE mxra_SeqScan_rows_total counter
  mxra_SeqScan_rows_total 14
  # HELP mxra_SeqScan_wall_ms_total sum of 'wall_ms' over 'SeqScan' spans
  # TYPE mxra_SeqScan_wall_ms_total counter
  mxra_SeqScan_wall_ms_total <ms>
  # HELP mxra_execute_operators_total sum of 'operators' over 'execute' spans
  # TYPE mxra_execute_operators_total counter
  mxra_execute_operators_total 13
  # HELP mxra_execute_rows_total sum of 'rows' over 'execute' spans
  # TYPE mxra_execute_rows_total counter
  mxra_execute_rows_total 5
  # HELP mxra_optimize_input_ops_total sum of 'input_ops' over 'optimize' spans
  # TYPE mxra_optimize_input_ops_total counter
  mxra_optimize_input_ops_total 9
  # HELP mxra_optimize_output_ops_total sum of 'output_ops' over 'optimize' spans
  # TYPE mxra_optimize_output_ops_total counter
  mxra_optimize_output_ops_total 13
  # HELP mxra_parse_bytes_total sum of 'bytes' over 'parse' spans
  # TYPE mxra_parse_bytes_total counter
  mxra_parse_bytes_total 934
  # HELP mxra_plan_operators_total sum of 'operators' over 'plan' spans
  # TYPE mxra_plan_operators_total counter
  mxra_plan_operators_total 13
  # HELP mxra_query_rows_total sum of 'rows' over 'query' spans
  # TYPE mxra_query_rows_total counter
  mxra_query_rows_total 5
  # HELP mxra_scheduler_batch_blocks_total sum of 'blocks' over 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_blocks_total counter
  mxra_scheduler_batch_blocks_total 0
  # HELP mxra_scheduler_batch_conflicts_total sum of 'conflicts' over 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_conflicts_total counter
  mxra_scheduler_batch_conflicts_total 0
  # HELP mxra_scheduler_batch_deadlocks_total sum of 'deadlocks' over 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_deadlocks_total counter
  mxra_scheduler_batch_deadlocks_total 0
  # HELP mxra_scheduler_batch_steps_total sum of 'steps' over 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_steps_total counter
  mxra_scheduler_batch_steps_total 2
  # HELP mxra_scheduler_batch_txns_total sum of 'txns' over 'scheduler.batch' spans
  # TYPE mxra_scheduler_batch_txns_total counter
  mxra_scheduler_batch_txns_total 1
  # HELP mxra_txn_blocks_total sum of 'blocks' over 'txn' spans
  # TYPE mxra_txn_blocks_total counter
  mxra_txn_blocks_total 0
  # HELP mxra_txn_statements_total sum of 'statements' over 'txn' spans
  # TYPE mxra_txn_statements_total counter
  mxra_txn_statements_total 2
  # TYPE mxra_tuples_moved_total counter
  mxra_tuples_moved_total 41
  # TYPE mxra_cells_moved_total counter
  mxra_cells_moved_total 104
  # TYPE mxra_rows_out_total counter
  mxra_rows_out_total 5
  # TYPE mxra_operators_total counter
  mxra_operators_total 13
  # TYPE mxra_wall_ms gauge
  mxra_wall_ms <ms>

A traced run writes a Chrome trace-event file (Perfetto-loadable) with
spans for parsing, planning, optimization, every physical operator,
the scheduler batch and its transactions.

  $ ../../bin/bagdb.exe run --trace trace.json --query-log queries.jsonl \
  >   ../../examples/scripts/beer_session.xra > /dev/null
  $ grep -o '"name":"[^"]*"' trace.json | sort | uniq -c | sed 's/^ *//'
  1 "name":"Filter"
  1 "name":"HashAggregate"
  2 "name":"HashJoin"
  5 "name":"Project"
  4 "name":"SeqScan"
  2 "name":"execute"
  2 "name":"optimize"
  2 "name":"optimize.normalize"
  2 "name":"optimize.reorder"
  1 "name":"parse"
  2 "name":"plan"
  2 "name":"query"
  1 "name":"scheduler.batch"
  4 "name":"statement"
  1 "name":"txn"
  1 "name":"txn-1"

The query log is one JSONL record per query span; timestamps and
durations are scrubbed, text and row counts are pinned.

  $ sed -E 's/"ts":"[^"]*"/"ts":"<ts>"/; s/"ms":[0-9.]+/"ms":<ms>/' queries.jsonl
  {"ts":"<ts>","span":"statement","ms":<ms>,"text":"insert(beer,\nconst(4 tuples))","query_id":"q000001"}
  {"ts":"<ts>","span":"statement","ms":<ms>,"text":"insert(brewery,\nconst(3 tuples))","query_id":"q000002"}
  {"ts":"<ts>","span":"query","ms":<ms>,"lang":"xra","text":"project[%1](select[%6 = 'NL'](join[%2 = %4](beer, brewery)))","rows":3,"query_id":"q000003"}
  {"ts":"<ts>","span":"query","ms":<ms>,"lang":"xra","text":"groupby[%6; AVG(%3)](join[%2 = %4](beer, brewery))","rows":2,"query_id":"q000004"}
  {"ts":"<ts>","span":"statement","ms":<ms>,"txn":"txn-1","text":"update(beer, select[%2 = 'Guineken'](beer),\n[%1, %2, (%3 * 1.1)])","query_id":"q000005"}
  {"ts":"<ts>","span":"statement","ms":<ms>,"txn":"txn-1","text":"?select[%2 = 'Guineken'](beer)","query_id":"q000005"}

A slow-query threshold higher than any query suppresses all records.

  $ ../../bin/bagdb.exe run --query-log slow.jsonl --slow-query-ms 10000 \
  >   ../../examples/scripts/beer_session.xra > /dev/null
  $ wc -c < slow.jsonl
  0

Transaction batches report scheduler statistics under --stats.

  $ ../../bin/bagdb.exe run --stats ../../examples/scripts/beer_session.xra \
  >   | grep scheduler
  -- scheduler: 1 txns, 1 committed, 2 steps, 0 blocks, 0 conflicts, 0 deadlocks
