Secondary indexes end to end: DDL through the XRA and SQL front-ends,
definitions recovered from a durable store, cost-based selection of
index access paths in EXPLAIN, and the pinned error shapes.

This file pins cost-based access-path choices, so neutralize the
forced-index CI leg up front; the one forced command below sets the
variable back explicitly for its own invocation.

  $ export MXRA_FORCE_INDEX=0

Build a durable retail store (seeded, deterministic) and define three
indexes over it: a hash index on the order key, an ordered index on
the order day, and a hash index on the lineitem foreign key.

  $ cat > setup.xra <<'EOF'
  > create index orders_id on orders (%1) using hash;
  > create index orders_day on orders (%3) using ordered;
  > create index li_order on lineitem (%1);
  > ? sys.indexes;
  > EOF
  $ ../../bin/bagdb.exe run --retail 300 --db store setup.xra
  +--------------+------------+---------+-----------+------+---------+---+
  | name         | relation   | columns | kind      | keys | entries | # |
  +--------------+------------+---------+-----------+------+---------+---+
  | 'li_order'   | 'lineitem' | '%1'    | 'hash'    | 300  | 2040    | 1 |
  | 'orders_day' | 'orders'   | '%3'    | 'ordered' | 191  | 300     | 1 |
  | 'orders_id'  | 'orders'   | '%1'    | 'hash'    | 300  | 300     | 1 |
  +--------------+------------+---------+-----------+------+---------+---+ (3 tuples, 3 distinct)

The definitions live in the snapshot, as replayable DDL:

  $ grep 'create index' store/snapshot.xra
  create index li_order on lineitem (%1) using hash;
  create index orders_day on orders (%3) using ordered;
  create index orders_id on orders (%1) using hash;

A point selection on the indexed key is answered by the hash index —
chosen on cost, no forcing:

  $ ../../bin/bagdb.exe explain --db store 'select[%1 = 17](orders)'
  input:      select[%1 = 17](orders)
  optimized:  select[%1 = 17](orders)
  est. cost:  903 -> 903 tuples
  physical:
  IndexScan orders via orders_id [= 17]          (est=1)
  


A range selection on the day column is answered by the ordered index;
conjuncts the access path does not consume stay as a residual:

  $ ../../bin/bagdb.exe explain --db store 'select[%3 >= 10 and %3 < 20](orders)'
  input:      select[(%3 >= 10 and %3 < 20)](orders)
  optimized:  select[(%3 >= 10 and %3 < 20)](orders)
  est. cost:  944 -> 944 tuples
  physical:
  IndexScan orders via orders_day [>= 10 and < 20] (est=15)
  


  $ ../../bin/bagdb.exe explain --db store 'select[%1 = 17 and %2 > 3](orders)'
  input:      select[(%1 = 17 and %2 > 3)](orders)
  optimized:  select[(%1 = 17 and %2 > 3)](orders)
  est. cost:  902 -> 902 tuples
  physical:
  IndexScan orders via orders_id [= 17] residual=[%2 > 3] (est=1)
  


A small outer probing a large indexed inner becomes an index
nested-loop join, again purely on cost:

  $ ../../bin/bagdb.exe explain --db store 'join[%1 = %2](rel[(k:int)]{(3),(7),(11)}, orders)'
  input:      join[%1 = %2](const(3 tuples), orders)
  optimized:  join[%1 = %2](const(3 tuples), orders)
  est. cost:  915 -> 915 tuples
  physical:
  IndexNestedLoopJoin orders via orders_id keys=%1=%1 (est=3)
    ConstScan (3 tuples)                         (est=3)
  


When the estimated probe volume beats nothing, the planner keeps the
sequential plan; MXRA_FORCE_INDEX=1 overrides the costing (full-suite
coverage of the index operators):

  $ ../../bin/bagdb.exe explain --db store 'join[%1 = %5](lineitem, orders)' | tail -4
  HashJoin keys=%1=%1 residual=[true]            (est=2040)
    SeqScan lineitem                             (est=2040)
    SeqScan orders                               (est=300)
  
  $ MXRA_FORCE_INDEX=1 ../../bin/bagdb.exe explain --db store 'join[%1 = %5](lineitem, orders)' | tail -3
  IndexNestedLoopJoin orders via orders_id keys=%1=%1 (est=2040)
    SeqScan lineitem                             (est=2040)
  

EXPLAIN ANALYZE on the index path reports keys probed and q-error:

  $ ../../bin/bagdb.exe explain --db store --analyze 'select[%1 = 17](orders)' | sed -E -e 's/time=[0-9]+\.[0-9]+ms/time=_/g' -e 's/total: [0-9]+\.[0-9]+ ms/total: _ ms/' -e 's/query id:   q[0-9a-z-]+/query id:   _/' | tail -3
  explain analyze:
  IndexScan orders via orders_id [= 17]          (est=1 act=1 q=1.00 time=_ keys=300)
  total: _ ms, 1 rows

The SQL front-end speaks the same DDL, resolving column names to
positions; sys.indexes reflects drops immediately:

  $ cat > ddl.sql <<'EOF'
  > CREATE TABLE t (k int, v str);
  > INSERT INTO t VALUES (1, 'a'), (2, 'b'), (2, 'c');
  > CREATE INDEX t_k ON t (k);
  > CREATE INDEX t_v ON t (v) USING ORDERED;
  > SELECT name, relation, columns, kind FROM sys.indexes;
  > DROP INDEX t_v;
  > SELECT name FROM sys.indexes;
  > EOF
  $ ../../bin/bagdb.exe sql ddl.sql
  +-------+----------+---------+-----------+---+
  | name  | relation | columns | kind      | # |
  +-------+----------+---------+-----------+---+
  | 't_k' | 't'      | '%1'    | 'hash'    | 1 |
  | 't_v' | 't'      | '%2'    | 'ordered' | 1 |
  +-------+----------+---------+-----------+---+ (2 tuples, 2 distinct)
  +-------+---+
  | name  | # |
  +-------+---+
  | 't_k' | 1 |
  +-------+---+ (1 tuples, 1 distinct)

Error shapes, pinned to match the unknown-relation family:

  $ echo 'drop index nope;' | ../../bin/bagdb.exe run /dev/stdin
  unknown index: nope
  [1]
  $ printf 'create r (a:int);\ncreate index i on r (%%1);\ncreate index i on r (%%1);\n' | ../../bin/bagdb.exe run /dev/stdin
  index exists: i
  [1]
  $ echo 'create index i on nope (%1);' | ../../bin/bagdb.exe run /dev/stdin
  unknown relation: nope
  [1]
  $ echo 'create index sys.i on r (%1);' | ../../bin/bagdb.exe run /dev/stdin
  reserved name: sys.i is a system catalog relation
  [1]
  $ echo 'create index i on sys.pool (%1);' | ../../bin/bagdb.exe run /dev/stdin
  reserved name: sys.pool is a system catalog relation
  [1]
  $ printf 'create r (a:int);\ncreate index i on r (%%4);\n' | ../../bin/bagdb.exe run /dev/stdin
  error: Database.create_index: column %4 out of range for r
  [1]
  $ printf 'create r (a:int, b:int);\ncreate index i on r (%%1, %%2) using ordered;\n' | ../../bin/bagdb.exe run /dev/stdin
  error: Database.create_index: ordered indexes take exactly one column
  [1]

A relation may still be named "index" — the token after the name
disambiguates the DDL:

  $ printf 'create index (a:int);\ninsert(index, rel[(a:int)]{(1)});\n? index;\n' | ../../bin/bagdb.exe run /dev/stdin
  +---+---+
  | a | # |
  +---+---+
  | 1 | 1 |
  +---+---+ (1 tuples, 1 distinct)
