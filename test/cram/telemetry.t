Live telemetry surface.  "bagdb serve" runs a script and then keeps a
scrape endpoint up; "bagdb top" is its client.  The server picks an
ephemeral port (--port 0) and announces it through --port-file, the
cram polls until the sampler has seen the script's relations, pins the
series catalogue (values vary run to run, names do not), and shuts the
server down over /quitz so nothing outlives the test.

  $ ../../bin/bagdb.exe serve ../../examples/scripts/beer_session.xra \
  >   --port 0 --port-file port --interval-ms 50 --duration-ms 30000 \
  >   >serve.out 2>serve.err &
  $ for i in $(seq 1 200); do [ -s port ] && break; sleep 0.05; done
  $ for i in $(seq 1 200); do
  >   ../../bin/bagdb.exe top --once --port $(cat port) 2>/dev/null \
  >     | grep -q rel.beer && break
  >   sleep 0.05
  > done

The top table: one row per series, sorted; numbers scrubbed.

  $ ../../bin/bagdb.exe top --once --port $(cat port) | awk '{print $1}'
  series
  ash.live
  ash.samples
  gc.heap_words
  gc.major_collections
  gc.major_words
  gc.minor_collections
  gc.minor_words
  gc.promoted_words
  gc.top_heap_words
  index.builds
  index.cache_hits
  index.maintained
  index.probes
  pool.busy
  pool.lanes
  pool.maps
  pool.queued
  process.uptime_s
  rel.beer
  rel.brewery
  sched.batches
  sched.blocks
  sched.commits
  sched.conflicts
  sched.deadlocks
  sched.lock_wait_ms
  sched.steps
  txn.conflicts
  txn.snapshot_age
  wait.conflict_count
  wait.conflict_ms
  wait.cpu.exec_count
  wait.cpu.exec_ms
  wait.io.fsync_count
  wait.io.fsync_ms
  wait.io.wal_count
  wait.io.wal_ms
  wait.lock_count
  wait.lock_ms
  wait.pool.queue_count
  wait.pool.queue_ms

The JSON dump has the same shape every time.

  $ ../../bin/bagdb.exe top --statz --port $(cat port) | head -c 11
  {"series":{

The statement registry is live at /stmtz: the serve script's own
statements appear fingerprinted (values vary, the header and the
presence of rows do not).

  $ ../../bin/bagdb.exe top --stmtz --port $(cat port) | awk 'NR==1{print $1, $2, $NF}'
  fingerprint calls statement
  $ test $(../../bin/bagdb.exe top --stmtz --port $(cat port) | wc -l) -ge 2 && echo populated
  populated

Clean remote shutdown: /quitz stops the serve loop, wait reaps it.

  $ ../../bin/bagdb.exe top --quit --port $(cat port)
  $ wait
  $ sed -E 's/127\.0\.0\.1:[0-9]+/127.0.0.1:<port>/' serve.err
  -- serving telemetry on 127.0.0.1:<port>
