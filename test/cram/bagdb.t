The bagdb script runner executes XRA scripts against an empty database:

  $ ../../bin/bagdb.exe run ../../examples/scripts/beer_session.xra
  +------------+---+
  | name       | # |
  +------------+---+
  | 'Bock'     | 1 |
  | 'Pilsener' | 2 |
  +------------+---+ (3 tuples, 2 distinct)
  +---------+-------------+---+
  | country | avg_alcperc | # |
  +---------+-------------+---+
  | 'BE'    | 8.1         | 1 |
  | 'NL'    | 5.56667     | 1 |
  +---------+-------------+---+ (2 tuples, 2 distinct)
  +------------+------------+---------+---+
  | name       | brewery    | alcperc | # |
  +------------+------------+---------+---+
  | 'Bock'     | 'Guineken' | 7.15    | 1 |
  | 'Pilsener' | 'Guineken' | 5.5     | 1 |
  +------------+------------+---------+---+ (2 tuples, 2 distinct)

SQL scripts run against the preloaded beer database:

  $ ../../bin/bagdb.exe sql --beer ../../examples/scripts/analytics.sql | head -8
  +---------+-------------+---+
  | country | avg_alcperc | # |
  +---------+-------------+---+
  | 'BE'    | 8.36667     | 1 |
  | 'DE'    | 5.5         | 1 |
  | 'NL'    | 5.25        | 1 |
  +---------+-------------+---+ (3 tuples, 3 distinct)
  +-------------+---+

Explain shows the optimized logical expression and the physical plan:

  $ ../../bin/bagdb.exe explain --beer "select[%6 = 'NL'](product(beer, brewery))"
  input:      select[%6 = 'NL'](product(beer, brewery))
  optimized:  product(beer, select[%3 = 'NL'](brewery))
  est. cost:  528 -> 174 tuples
  physical:
  CrossProduct                                   (est=20)
    SeqScan beer                                 (est=10)
    Filter [%3 = 'NL']                           (est=2)
      SeqScan brewery                            (est=6)
  

Parse errors are reported with a byte offset and a non-zero exit:

  $ ../../bin/bagdb.exe explain "union(a,"
  parse error at 8: expected expression, found <eof>
  [1]
