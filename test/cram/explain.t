EXPLAIN ANALYZE in the shell annotates the optimized physical plan
with estimated rows, actual rows and the per-operator q-error
max(est/act, act/est), plus operator gauges (hash-build sizes, group
counts).  Wall-clock figures are nondeterministic, so the test
normalises them with sed; everything else — the tree shape and the
est/act/q columns — is pinned.

A 2-join query over the seeded beer database (pairs of beers brewed
by the same brewery, via the brewery relation):

  $ echo ".beer
  > explain analyze join[%2 = %8](join[%2 = %4](beer, brewery), beer)
  > .quit" | ../../bin/xra_repl.exe | sed -E -e 's/time=[0-9]+\.[0-9]+ms/time=_/g' -e 's/total: [0-9]+\.[0-9]+ ms/total: _ ms/'
  mxra :: multi-set extended relational algebra shell (.help)
  xra> loaded beer database
  xra> HashJoin keys=%2=%2 residual=[true]            (est=17 act=18 q=1.08 time=_ build=10 keys=6)
    HashJoin keys=%2=%1 residual=[true]          (est=10 act=10 q=1.00 time=_ build=6 keys=6)
      SeqScan beer                               (est=10 act=10 q=1.00 time=_)
      SeqScan brewery                            (est=6 act=6 q=1.00 time=_)
    SeqScan beer                                 (est=10 act=10 q=1.00 time=_)
  total: _ ms, 18 rows
  xra> 

Plain EXPLAIN shows the same tree with estimated rows only, without
executing:

  $ echo ".beer
  > explain select[%6 = 'NL'](product(beer, brewery))
  > .quit" | ../../bin/xra_repl.exe
  mxra :: multi-set extended relational algebra shell (.help)
  xra> loaded beer database
  xra> CrossProduct                                   (est=20)
    SeqScan beer                                 (est=10)
    Filter [%3 = 'NL']                           (est=2)
      SeqScan brewery                            (est=6)
  
  xra> 


Aggregation reports its group count as a gauge; δ (unique) reports its
distinct count:

  $ echo ".beer
  > explain analyze groupby[%2; CNT(%1)](beer)
  > explain analyze unique(project[%2](beer))
  > .quit" | ../../bin/xra_repl.exe | sed -E -e 's/time=[0-9]+\.[0-9]+ms/time=_/g' -e 's/total: [0-9]+\.[0-9]+ ms/total: _ ms/'
  mxra :: multi-set extended relational algebra shell (.help)
  xra> loaded beer database
  xra> HashAggregate keys=[%2] aggs=[CNT(%1)]         (est=6 act=6 q=1.00 time=_ groups=6)
    SeqScan beer                                 (est=10 act=10 q=1.00 time=_)
  total: _ ms, 6 rows
  xra> HashDistinct                                   (est=6 act=6 q=1.00 time=_ distinct=6)
    Project [%2]                                 (est=10 act=10 q=1.00 time=_)
      SeqScan beer                               (est=10 act=10 q=1.00 time=_)
  total: _ ms, 6 rows
  xra> 
