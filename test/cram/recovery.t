Crash recovery through the durable store.  A session run with
--no-checkpoint leaves its committed transactions only in the
write-ahead log: the create is checkpointed immediately (DDL is not
loggable, so the schema must be durable before records reference it),
everything after lives as checksummed WAL records.  The final delete
over-deletes 'alice' (multiplicity 5 against a stored 2): monus
saturates at zero, so she vanishes and nothing goes negative.

  $ printf "create accounts (owner:str, amount:int);
  > insert(accounts, rel[(owner:str, amount:int)]{('alice', 10):2, ('bob', 5)});
  > insert(accounts, rel[(owner:str, amount:int)]{('carol', 8)});
  > delete(accounts, rel[(owner:str, amount:int)]{('alice', 10):5});
  > ?accounts;
  > " > session.xra
  $ printf "?accounts;\n" > query.xra
  $ ../../bin/bagdb.exe run --db store --no-checkpoint session.xra
  +---------+--------+---+
  | owner   | amount | # |
  +---------+--------+---+
  | 'bob'   | 5      | 1 |
  | 'carol' | 8      | 1 |
  +---------+--------+---+ (2 tuples, 2 distinct)

The snapshot holds only the empty created relation; each committed
transaction is a begin/commit-bracketed record whose commit marker
carries the CRC-32 of the record body:

  $ head -3 store/snapshot.xra
  -- @crc 5f7b089c
  -- @time 0
  create accounts (owner:str, amount:int);
  $ cat store/wal.xra
  -- begin 1 q000001
  insert(accounts, rel[(owner:str, amount:int)]{('alice', 10):2, ('bob', 5)})
  -- commit 1 67661077 q000001
  -- begin 2 q000002
  insert(accounts, rel[(owner:str, amount:int)]{('carol', 8)})
  -- commit 2 13492a38 q000002
  -- begin 3 q000003
  delete(accounts, rel[(owner:str, amount:int)]{('alice', 10):5})
  -- commit 3 004c3f05 q000003

Reopening the store replays the log: all committed data is back.

  $ ../../bin/bagdb.exe run --db store --no-checkpoint query.xra
  +---------+--------+---+
  | owner   | amount | # |
  +---------+--------+---+
  | 'bob'   | 5      | 1 |
  | 'carol' | 8      | 1 |
  +---------+--------+---+ (2 tuples, 2 distinct)

A crash mid-append leaves a torn record: a begin marker and a partial
statement, no commit marker.  Recovery must ignore it — and repair the
log by truncating back to the last valid record boundary:

  $ printf -- '-- begin 99\ninsert(accounts, rel[(owner:str' >> store/wal.xra
  $ grep -c -- '-- begin' store/wal.xra
  4
  $ ../../bin/bagdb.exe run --db store --no-checkpoint query.xra
  +---------+--------+---+
  | owner   | amount | # |
  +---------+--------+---+
  | 'bob'   | 5      | 1 |
  | 'carol' | 8      | 1 |
  +---------+--------+---+ (2 tuples, 2 distinct)
  $ grep -c -- '-- begin' store/wal.xra
  3

A normal (checkpointing) run folds the log into the snapshot:

  $ ../../bin/bagdb.exe run --db store query.xra > /dev/null
  $ wc -c < store/wal.xra
  0
  $ grep -c accounts store/snapshot.xra
  2
