(* Observability tests: histogram quantile laws (property-based), the
   Chrome sink's output staying valid JSON with complete spans when the
   traced code raises, Prometheus text rendering, the aggregation sink,
   and the scheduler's per-transaction output delivery. *)

open Mxra_relational
open Mxra_core
module Obs = Mxra_obs
module H = Mxra_obs.Histogram
module Trace = Mxra_obs.Trace

(* --- a minimal JSON validity checker ----------------------------------

   The image carries no JSON library, so validity is checked with a
   recursive-descent recogniser: structure only, no values retained. *)

exception Bad_json

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else raise Bad_json in
  let literal lit = String.iter expect lit in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          if peek () = None then raise Bad_json;
          advance ();
          go ()
      | Some _ ->
          advance ();
          go ()
      | None -> raise Bad_json
    in
    go ()
  in
  let number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let started = ref false in
    let rec go () =
      match peek () with
      | Some c when num_char c ->
          started := true;
          advance ();
          go ()
      | _ -> if not !started then raise Bad_json
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Bad_json
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      members ();
      skip_ws ();
      expect '}'
    end
  and members () =
    skip_ws ();
    string_lit ();
    skip_ws ();
    expect ':';
    value ();
    skip_ws ();
    if peek () = Some ',' then begin
      advance ();
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      elements ();
      skip_ws ();
      expect ']'
    end
  and elements () =
    value ();
    skip_ws ();
    if peek () = Some ',' then begin
      advance ();
      elements ()
    end
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Bad_json -> false

let count_occurrences sub s =
  let m = String.length sub and n = String.length s in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains sub s = count_occurrences sub s > 0

(* --- histogram properties --------------------------------------------- *)

let samples =
  QCheck.list_of_size QCheck.Gen.(1 -- 300) (QCheck.float_range 1e-7 1e7)

let fill l =
  let h = H.create () in
  List.iter (H.observe h) l;
  h

let prop name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 arb p)

let prop_count_conservation =
  prop "count and sum are conserved" samples (fun l ->
      let h = fill l in
      H.count h = List.length l
      && Float.abs (H.sum h -. List.fold_left ( +. ) 0.0 l)
         <= 1e-9 *. Float.max 1.0 (H.sum h)
      && H.min_value h = List.fold_left Float.min Float.infinity l
      && H.max_value h = List.fold_left Float.max Float.neg_infinity l)

let prop_quantile_ordering =
  prop "min <= p50 <= p90 <= p99 <= max" samples (fun l ->
      let h = fill l in
      let q p = H.quantile h p in
      H.min_value h <= q 0.5
      && q 0.5 <= q 0.9
      && q 0.9 <= q 0.99
      && q 0.99 <= H.max_value h)

let prop_quantile_monotone =
  prop "quantile is monotone in p"
    (QCheck.triple samples (QCheck.int_bound 100) (QCheck.int_bound 100))
    (fun (l, a, b) ->
      let h = fill l in
      let p = float_of_int (min a b) /. 100.0
      and q = float_of_int (max a b) /. 100.0 in
      H.quantile h p <= H.quantile h q)

let prop_quantile_accuracy =
  (* The γ = 2^(1/4) bucketing guarantees ~9% relative error; check a
     generous 20% against the exact empirical quantile. *)
  prop "quantile tracks the empirical quantile" samples (fun l ->
      let h = fill l in
      let sorted = List.sort Float.compare l in
      let exact p =
        let rank =
          int_of_float (Float.ceil (p *. float_of_int (List.length l)))
        in
        List.nth sorted (max 0 (min (List.length l - 1) (rank - 1)))
      in
      List.for_all
        (fun p ->
          let approx = H.quantile h p and e = exact p in
          Float.abs (approx -. e) <= 0.2 *. Float.max approx e)
        [ 0.5; 0.9; 0.99 ])

let test_histogram_ignores_nonfinite () =
  let h = fill [ 1.0; Float.nan; Float.infinity; 2.0; Float.neg_infinity ] in
  Alcotest.(check int) "count" 2 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 3.0 (H.sum h)

(* --- Chrome sink ------------------------------------------------------- *)

let with_chrome_trace f =
  let path = Filename.temp_file "mxra_obs_test" ".json" in
  let oc = open_out path in
  Trace.set_sinks [ Obs.Chrome_sink.sink oc ];
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      close_out oc)
    f;
  let s = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  s

let test_chrome_sink_valid_json () =
  let trace =
    with_chrome_trace (fun () ->
        Trace.with_span "outer" ~attrs:[ ("k", Trace.Int 1) ] (fun () ->
            Trace.event "ping"
              ~attrs:[ ("s", Trace.Str "quo\"ted\\back\nslash") ];
            Trace.with_span "inner"
              ~attrs:
                [ ("f", Trace.Float 1.5); ("b", Trace.Bool true) ]
              (fun () -> ()));
        match Trace.with_span "raising" (fun () -> failwith "boom") with
        | () -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ())
  in
  Alcotest.(check bool) "valid JSON" true (json_valid trace);
  (* Every span is one complete X record even when the thunk raised;
     nothing is left unbalanced. *)
  Alcotest.(check int) "complete X events" 3
    (count_occurrences "\"ph\":\"X\"" trace);
  Alcotest.(check int) "instant events" 1
    (count_occurrences "\"ph\":\"i\"" trace);
  Alcotest.(check bool) "raising span present" true
    (contains "\"name\":\"raising\"" trace)

let test_chrome_sink_empty_trace () =
  let trace = with_chrome_trace (fun () -> ()) in
  Alcotest.(check bool) "valid JSON" true (json_valid trace)

let test_disabled_tracing_is_transparent () =
  Trace.set_sinks [];
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "value through" 42 (Trace.with_span "x" (fun () -> 42));
  match Trace.with_span "x" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* --- query-log sink ---------------------------------------------------- *)

let with_query_log ~slow_ms f =
  let path = Filename.temp_file "mxra_obs_test" ".jsonl" in
  let oc = open_out path in
  Trace.set_sinks [ Obs.Query_log_sink.sink ~slow_ms oc ];
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      close_out oc)
    f;
  let s = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  s

let test_query_log_records () =
  let log =
    with_query_log ~slow_ms:0.0 (fun () ->
        Trace.with_span "query"
          ~attrs:[ ("lang", Trace.Str "xra"); ("rows", Trace.Int 3) ]
          (fun () -> ());
        Trace.with_span "not-a-query" (fun () -> ()))
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' log)
  in
  Alcotest.(check int) "one record" 1 (List.length lines);
  let line = List.hd lines in
  Alcotest.(check bool) "valid JSON" true (json_valid line);
  Alcotest.(check bool) "has lang" true (contains "\"lang\":\"xra\"" line);
  Alcotest.(check bool) "has rows" true (contains "\"rows\":3" line)

let test_query_log_threshold () =
  let log =
    with_query_log ~slow_ms:1e9 (fun () ->
        Trace.with_span "query" (fun () -> ()))
  in
  Alcotest.(check string) "below threshold: nothing logged" "" log

(* --- aggregation sink and Prometheus rendering ------------------------- *)

let test_agg_sink () =
  let agg = Obs.Agg_sink.create () in
  Trace.set_sinks [ Obs.Agg_sink.sink agg ];
  Fun.protect
    ~finally:(fun () -> Trace.close ())
    (fun () ->
      Trace.with_span "alpha" ~attrs:[ ("rows", Trace.Int 3) ] (fun () -> ());
      Trace.with_span "alpha" ~attrs:[ ("rows", Trace.Int 4) ] (fun () -> ());
      Trace.with_span "beta" ~attrs:[ ("tag", Trace.Str "x") ] (fun () -> ());
      Trace.event "tick";
      Trace.event "tick");
  Alcotest.(check (list string))
    "span names" [ "alpha"; "beta" ]
    (Obs.Agg_sink.span_names agg);
  (match Obs.Agg_sink.durations agg "alpha" with
  | Some h -> Alcotest.(check int) "alpha count" 2 (H.count h)
  | None -> Alcotest.fail "no alpha histogram");
  Alcotest.(check bool) "rows total" true
    (List.exists
       (fun (s, a, v) -> s = "alpha" && a = "rows" && v = 7.0)
       (Obs.Agg_sink.attr_totals agg));
  Alcotest.(check bool) "string attrs not aggregated" true
    (List.for_all (fun (s, _, _) -> s <> "beta") (Obs.Agg_sink.attr_totals agg));
  Alcotest.(check (list (pair string int)))
    "events" [ ("tick", 2) ]
    (Obs.Agg_sink.event_counts agg)

let test_prometheus_sanitize () =
  Alcotest.(check string) "illegal chars" "a_b_c"
    (Obs.Prometheus.sanitize "a-b.c");
  Alcotest.(check string) "leading digit" "_9lives"
    (Obs.Prometheus.sanitize "9lives")

let test_prometheus_summary () =
  let h = fill [ 1.0; 2.0; 3.0; 4.0 ] in
  let s = Obs.Prometheus.summary ~help:"latency" "lat_ms" h in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# HELP lat_ms latency";
      "# TYPE lat_ms summary";
      "lat_ms{quantile=\"0.5\"}";
      "lat_ms{quantile=\"0.9\"}";
      "lat_ms{quantile=\"0.99\"}";
      "lat_ms_sum 10";
      "lat_ms_count 4";
    ]

let test_prometheus_of_aggregate () =
  let agg = Obs.Agg_sink.create () in
  Trace.set_sinks [ Obs.Agg_sink.sink agg ];
  Fun.protect
    ~finally:(fun () -> Trace.close ())
    (fun () ->
      Trace.with_span "store.commit"
        ~attrs:[ ("wal_bytes", Trace.Int 128) ]
        (fun () -> ());
      Trace.event "lock.wait");
  let s = Obs.Prometheus.of_aggregate agg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# TYPE mxra_store_commit_ms summary";
      "mxra_store_commit_ms_count 1";
      "mxra_store_commit_wal_bytes_total 128";
      "mxra_lock_wait_events_total 1";
    ]

let test_engine_metrics_prometheus () =
  let m = Mxra_engine.Metrics.create () in
  Mxra_engine.Metrics.add (Mxra_engine.Metrics.counter m "tuples-moved") 41;
  Mxra_engine.Metrics.add_ms (Mxra_engine.Metrics.timer m "wall") 1.25;
  let s = Mxra_engine.Metrics.prometheus m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# TYPE mxra_tuples_moved_total counter";
      "mxra_tuples_moved_total 41";
      "# TYPE mxra_wall_ms gauge";
      "mxra_wall_ms 1.25";
    ]

(* --- scheduler output delivery ----------------------------------------- *)

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]

let kv_db =
  Database.of_relations
    [
      ( "r",
        Relation.of_list s_kv
          [
            Tuple.of_list [ Value.Int 1; Value.Int 10 ];
            Tuple.of_list [ Value.Int 2; Value.Int 20 ];
          ] );
    ]

let query_r = Statement.Query (Expr.rel "r")

let test_scheduler_outputs_match_serial () =
  let t1 = Transaction.make ~name:"reader" [ query_r ] in
  let r = Mxra_concurrency.Scheduler.run ~seed:7 kv_db [ t1 ] in
  let serial_outputs =
    match Transaction.run kv_db t1 with
    | Transaction.Committed { outputs; _ } -> outputs
    | Transaction.Aborted _ -> Alcotest.fail "serial run aborted"
  in
  match r.Mxra_concurrency.Scheduler.outputs with
  | [ outs ] ->
      Alcotest.(check int) "one output" (List.length serial_outputs)
        (List.length outs);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same relation" true (Relation.equal a b))
        serial_outputs outs
  | _ -> Alcotest.fail "expected one transaction's outputs"

let test_scheduler_aborted_outputs_empty () =
  let t_abort =
    Transaction.make ~name:"doomed"
      ~abort_if:(fun _ -> true)
      [ query_r ]
  in
  let t_ok = Transaction.make ~name:"fine" [ query_r ] in
  let r = Mxra_concurrency.Scheduler.run ~seed:7 kv_db [ t_abort; t_ok ] in
  match
    (r.Mxra_concurrency.Scheduler.outcomes, r.Mxra_concurrency.Scheduler.outputs)
  with
  | [ Mxra_concurrency.Scheduler.Aborted _; Mxra_concurrency.Scheduler.Committed ], [ aborted; committed ]
    ->
      Alcotest.(check int)
        "aborted transaction delivers no outputs" 0 (List.length aborted);
      Alcotest.(check int) "committed delivers its query" 1
        (List.length committed)
  | _ -> Alcotest.fail "unexpected outcomes"

let suite =
  ( "obs",
    [
      prop_count_conservation;
      prop_quantile_ordering;
      prop_quantile_monotone;
      prop_quantile_accuracy;
      Alcotest.test_case "non-finite observations ignored" `Quick
        test_histogram_ignores_nonfinite;
      Alcotest.test_case "Chrome sink: valid JSON under exceptions" `Quick
        test_chrome_sink_valid_json;
      Alcotest.test_case "Chrome sink: empty trace is valid" `Quick
        test_chrome_sink_empty_trace;
      Alcotest.test_case "disabled tracing is transparent" `Quick
        test_disabled_tracing_is_transparent;
      Alcotest.test_case "query log records query spans" `Quick
        test_query_log_records;
      Alcotest.test_case "query log respects slow threshold" `Quick
        test_query_log_threshold;
      Alcotest.test_case "aggregation sink folds the stream" `Quick
        test_agg_sink;
      Alcotest.test_case "prometheus name sanitization" `Quick
        test_prometheus_sanitize;
      Alcotest.test_case "prometheus summary rendering" `Quick
        test_prometheus_summary;
      Alcotest.test_case "prometheus aggregate export" `Quick
        test_prometheus_of_aggregate;
      Alcotest.test_case "engine metrics registry export" `Quick
        test_engine_metrics_prometheus;
      Alcotest.test_case "scheduler outputs match serial run" `Quick
        test_scheduler_outputs_match_serial;
      Alcotest.test_case "aborted transactions deliver no outputs" `Quick
        test_scheduler_aborted_outputs_empty;
    ] )
