(* Observability tests: histogram quantile laws (property-based), the
   Chrome sink's output staying valid JSON with complete spans when the
   traced code raises, Prometheus text rendering, the aggregation sink,
   and the scheduler's per-transaction output delivery. *)

open Mxra_relational
open Mxra_core
module Obs = Mxra_obs
module H = Mxra_obs.Histogram
module Trace = Mxra_obs.Trace

(* --- a minimal JSON validity checker ----------------------------------

   The image carries no JSON library, so validity is checked with a
   recursive-descent recogniser: structure only, no values retained. *)

exception Bad_json

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else raise Bad_json in
  let literal lit = String.iter expect lit in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          if peek () = None then raise Bad_json;
          advance ();
          go ()
      | Some _ ->
          advance ();
          go ()
      | None -> raise Bad_json
    in
    go ()
  in
  let number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let started = ref false in
    let rec go () =
      match peek () with
      | Some c when num_char c ->
          started := true;
          advance ();
          go ()
      | _ -> if not !started then raise Bad_json
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Bad_json
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      members ();
      skip_ws ();
      expect '}'
    end
  and members () =
    skip_ws ();
    string_lit ();
    skip_ws ();
    expect ':';
    value ();
    skip_ws ();
    if peek () = Some ',' then begin
      advance ();
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      elements ();
      skip_ws ();
      expect ']'
    end
  and elements () =
    value ();
    skip_ws ();
    if peek () = Some ',' then begin
      advance ();
      elements ()
    end
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Bad_json -> false

let count_occurrences sub s =
  let m = String.length sub and n = String.length s in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains sub s = count_occurrences sub s > 0

(* --- histogram properties --------------------------------------------- *)

let samples =
  QCheck.list_of_size QCheck.Gen.(1 -- 300) (QCheck.float_range 1e-7 1e7)

let fill l =
  let h = H.create () in
  List.iter (H.observe h) l;
  h

let prop ?(count = 200) name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb p)

let prop_count_conservation =
  prop "count and sum are conserved" samples (fun l ->
      let h = fill l in
      H.count h = List.length l
      && Float.abs (H.sum h -. List.fold_left ( +. ) 0.0 l)
         <= 1e-9 *. Float.max 1.0 (H.sum h)
      && H.min_value h = List.fold_left Float.min Float.infinity l
      && H.max_value h = List.fold_left Float.max Float.neg_infinity l)

let prop_quantile_ordering =
  prop "min <= p50 <= p90 <= p99 <= max" samples (fun l ->
      let h = fill l in
      let q p = H.quantile h p in
      H.min_value h <= q 0.5
      && q 0.5 <= q 0.9
      && q 0.9 <= q 0.99
      && q 0.99 <= H.max_value h)

let prop_quantile_monotone =
  prop "quantile is monotone in p"
    (QCheck.triple samples (QCheck.int_bound 100) (QCheck.int_bound 100))
    (fun (l, a, b) ->
      let h = fill l in
      let p = float_of_int (min a b) /. 100.0
      and q = float_of_int (max a b) /. 100.0 in
      H.quantile h p <= H.quantile h q)

let prop_quantile_accuracy =
  (* The γ = 2^(1/4) bucketing guarantees ~9% relative error; check a
     generous 20% against the exact empirical quantile. *)
  prop "quantile tracks the empirical quantile" samples (fun l ->
      let h = fill l in
      let sorted = List.sort Float.compare l in
      let exact p =
        let rank =
          int_of_float (Float.ceil (p *. float_of_int (List.length l)))
        in
        List.nth sorted (max 0 (min (List.length l - 1) (rank - 1)))
      in
      List.for_all
        (fun p ->
          let approx = H.quantile h p and e = exact p in
          Float.abs (approx -. e) <= 0.2 *. Float.max approx e)
        [ 0.5; 0.9; 0.99 ])

let test_histogram_ignores_nonfinite () =
  let h = fill [ 1.0; Float.nan; Float.infinity; 2.0; Float.neg_infinity ] in
  Alcotest.(check int) "count" 2 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 3.0 (H.sum h)

let prop_p50_in_range =
  prop "p50 of any non-empty histogram lies in [min, max]" samples (fun l ->
      let h = fill l in
      let p50 = H.quantile h 0.5 in
      H.min_value h <= p50 && p50 <= H.max_value h)

(* One observation: every percentile is that observation — the clamp
   into [vmin, vmax] collapses the bucket midpoint onto the sample, so
   a single 3 ms latency reports p50 = p99 = 3 ms, not a bucket
   boundary and never 0. *)
let test_histogram_single_sample () =
  let h = fill [ 3.0 ] in
  Alcotest.(check (float 1e-9)) "p50" 3.0 (H.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 3.0 (H.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p0" 3.0 (H.quantile h 0.0)

(* Every sample in one geometric bucket (ratios below γ = 2^¼): the
   quantiles must land inside the observed range, not on the bucket's
   upper bound above it, and must not be 0. *)
let test_histogram_one_bucket () =
  let l = [ 10.0; 10.5; 11.0; 11.5 ] in
  let h = fill l in
  List.iter
    (fun p ->
      let q = H.quantile h p in
      Alcotest.(check bool)
        (Printf.sprintf "q(%.2f) = %g within [10, 11.5]" p q)
        true
        (10.0 <= q && q <= 11.5))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.(check bool) "nonzero" true (H.quantile h 0.5 > 0.0)

(* --- Chrome sink ------------------------------------------------------- *)

let with_chrome_trace f =
  let path = Filename.temp_file "mxra_obs_test" ".json" in
  let oc = open_out path in
  Trace.set_sinks [ Obs.Chrome_sink.sink oc ];
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      close_out oc)
    f;
  let s = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  s

let test_chrome_sink_valid_json () =
  let trace =
    with_chrome_trace (fun () ->
        Trace.with_span "outer" ~attrs:[ ("k", Trace.Int 1) ] (fun () ->
            Trace.event "ping"
              ~attrs:[ ("s", Trace.Str "quo\"ted\\back\nslash") ];
            Trace.with_span "inner"
              ~attrs:
                [ ("f", Trace.Float 1.5); ("b", Trace.Bool true) ]
              (fun () -> ()));
        match Trace.with_span "raising" (fun () -> failwith "boom") with
        | () -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ())
  in
  Alcotest.(check bool) "valid JSON" true (json_valid trace);
  (* Every span is one complete X record even when the thunk raised;
     nothing is left unbalanced. *)
  Alcotest.(check int) "complete X events" 3
    (count_occurrences "\"ph\":\"X\"" trace);
  Alcotest.(check int) "instant events" 1
    (count_occurrences "\"ph\":\"i\"" trace);
  Alcotest.(check bool) "raising span present" true
    (contains "\"name\":\"raising\"" trace)

let test_chrome_sink_empty_trace () =
  let trace = with_chrome_trace (fun () -> ()) in
  Alcotest.(check bool) "valid JSON" true (json_valid trace)

let test_disabled_tracing_is_transparent () =
  Trace.set_sinks [];
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "value through" 42 (Trace.with_span "x" (fun () -> 42));
  match Trace.with_span "x" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* --- query-log sink ---------------------------------------------------- *)

let with_query_log ~slow_ms f =
  let path = Filename.temp_file "mxra_obs_test" ".jsonl" in
  let oc = open_out path in
  Trace.set_sinks [ Obs.Query_log_sink.sink ~slow_ms oc ];
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      close_out oc)
    f;
  let s = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  s

let test_query_log_records () =
  let log =
    with_query_log ~slow_ms:0.0 (fun () ->
        Trace.with_span "query"
          ~attrs:[ ("lang", Trace.Str "xra"); ("rows", Trace.Int 3) ]
          (fun () -> ());
        Trace.with_span "not-a-query" (fun () -> ()))
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' log)
  in
  Alcotest.(check int) "one record" 1 (List.length lines);
  let line = List.hd lines in
  Alcotest.(check bool) "valid JSON" true (json_valid line);
  Alcotest.(check bool) "has lang" true (contains "\"lang\":\"xra\"" line);
  Alcotest.(check bool) "has rows" true (contains "\"rows\":3" line)

let test_query_log_threshold () =
  let log =
    with_query_log ~slow_ms:1e9 (fun () ->
        Trace.with_span "query" (fun () -> ()))
  in
  Alcotest.(check string) "below threshold: nothing logged" "" log

(* --- aggregation sink and Prometheus rendering ------------------------- *)

let test_agg_sink () =
  let agg = Obs.Agg_sink.create () in
  Trace.set_sinks [ Obs.Agg_sink.sink agg ];
  Fun.protect
    ~finally:(fun () -> Trace.close ())
    (fun () ->
      Trace.with_span "alpha" ~attrs:[ ("rows", Trace.Int 3) ] (fun () -> ());
      Trace.with_span "alpha" ~attrs:[ ("rows", Trace.Int 4) ] (fun () -> ());
      Trace.with_span "beta" ~attrs:[ ("tag", Trace.Str "x") ] (fun () -> ());
      Trace.event "tick";
      Trace.event "tick");
  Alcotest.(check (list string))
    "span names" [ "alpha"; "beta" ]
    (Obs.Agg_sink.span_names agg);
  (match Obs.Agg_sink.durations agg "alpha" with
  | Some h -> Alcotest.(check int) "alpha count" 2 (H.count h)
  | None -> Alcotest.fail "no alpha histogram");
  Alcotest.(check bool) "rows total" true
    (List.exists
       (fun (s, a, v) -> s = "alpha" && a = "rows" && v = 7.0)
       (Obs.Agg_sink.attr_totals agg));
  Alcotest.(check bool) "string attrs not aggregated" true
    (List.for_all (fun (s, _, _) -> s <> "beta") (Obs.Agg_sink.attr_totals agg));
  Alcotest.(check (list (pair string int)))
    "events" [ ("tick", 2) ]
    (Obs.Agg_sink.event_counts agg)

let test_prometheus_sanitize () =
  Alcotest.(check string) "illegal chars" "a_b_c"
    (Obs.Prometheus.sanitize "a-b.c");
  Alcotest.(check string) "leading digit" "_9lives"
    (Obs.Prometheus.sanitize "9lives")

let test_prometheus_summary () =
  let h = fill [ 1.0; 2.0; 3.0; 4.0 ] in
  let s = Obs.Prometheus.summary ~help:"latency" "lat_ms" h in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# HELP lat_ms latency";
      "# TYPE lat_ms summary";
      "lat_ms{quantile=\"0.5\"}";
      "lat_ms{quantile=\"0.9\"}";
      "lat_ms{quantile=\"0.99\"}";
      "lat_ms_sum 10";
      "lat_ms_count 4";
    ]

let test_prometheus_of_aggregate () =
  let agg = Obs.Agg_sink.create () in
  Trace.set_sinks [ Obs.Agg_sink.sink agg ];
  Fun.protect
    ~finally:(fun () -> Trace.close ())
    (fun () ->
      Trace.with_span "store.commit"
        ~attrs:[ ("wal_bytes", Trace.Int 128) ]
        (fun () -> ());
      Trace.event "lock.wait");
  let s = Obs.Prometheus.of_aggregate agg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# TYPE mxra_store_commit_ms summary";
      "mxra_store_commit_ms_count 1";
      "mxra_store_commit_wal_bytes_total 128";
      "mxra_lock_wait_events_total 1";
    ]

let test_engine_metrics_prometheus () =
  let m = Mxra_engine.Metrics.create () in
  Mxra_engine.Metrics.add (Mxra_engine.Metrics.counter m "tuples-moved") 41;
  Mxra_engine.Metrics.add_ms (Mxra_engine.Metrics.timer m "wall") 1.25;
  let s = Mxra_engine.Metrics.prometheus m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle s))
    [
      "# TYPE mxra_tuples_moved_total counter";
      "mxra_tuples_moved_total 41";
      "# TYPE mxra_wall_ms gauge";
      "mxra_wall_ms 1.25";
    ]

(* --- histogram merge (per-domain shard combine) ------------------------ *)

let prop_merge_conservation =
  prop "merge conserves counts, sums, extrema and buckets"
    (QCheck.pair samples samples)
    (fun (l1, l2) ->
      let a = fill l1 and b = fill l2 in
      let m = H.copy a in
      H.merge m b;
      let both = fill (l1 @ l2) in
      H.count m = H.count both
      && Float.abs (H.sum m -. H.sum both)
         <= 1e-6 *. Float.max 1.0 (Float.abs (H.sum both))
      && H.min_value m = H.min_value both
      && H.max_value m = H.max_value both
      && H.buckets m = H.buckets both
      (* neither source is disturbed: copy decoupled, merge reads only *)
      && H.count a = List.length l1
      && H.count b = List.length l2)

(* --- agg sink hammered from four domains (domain safety) ---------------- *)

let prop_agg_sink_parallel =
  prop ~count:10 "agg sink survives four writer domains without losing updates"
    (QCheck.make ~print:string_of_int QCheck.Gen.(100 -- 1000))
    (fun per_domain ->
      let agg = Obs.Agg_sink.create () in
      let sink = Obs.Agg_sink.sink agg in
      let worker d () =
        for i = 1 to per_domain do
          sink.Trace.on_span
            {
              Trace.name = "hot";
              tid = d;
              start_us = 0.0;
              dur_us = float_of_int (1 + (i mod 97));
              attrs = [ ("rows", Trace.Int 1) ];
            };
          if i mod 4 = 0 then
            sink.Trace.on_event
              { Trace.ev_name = "tick"; ev_tid = d; ts_us = 0.0; ev_attrs = [] }
        done
      in
      let domains = Array.init 4 (fun d -> Stdlib.Domain.spawn (worker d)) in
      (* Concurrent snapshot reads must neither crash nor tear. *)
      for _ = 1 to 25 do
        ignore (Obs.Agg_sink.span_names agg);
        ignore (Obs.Agg_sink.durations agg "hot");
        ignore (Obs.Agg_sink.event_counts agg)
      done;
      Array.iter Stdlib.Domain.join domains;
      let total = 4 * per_domain in
      (match Obs.Agg_sink.durations agg "hot" with
      | Some h -> H.count h = total
      | None -> false)
      && List.exists
           (fun (s, a, v) -> s = "hot" && a = "rows" && v = float_of_int total)
           (Obs.Agg_sink.attr_totals agg)
      && Obs.Agg_sink.event_counts agg = [ ("tick", 4 * (per_domain / 4)) ])

(* --- prometheus exposition checker ------------------------------------- *)

exception Bad_labels

let label_key_ok k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

(* Scan a label block [{k="v",...}] starting at [start] (which must be
   the ['{']), honouring the exposition format's backslash escapes
   inside quoted values — so values containing quotes, commas, braces
   or escaped newlines parse correctly.  Returns the pairs with values
   unescaped, and the index just past the closing ['}'].  Raises
   {!Bad_labels} on malformed input. *)
let parse_label_block s start =
  let n = String.length s in
  let i = ref (start + 1) in
  let expect c =
    if !i < n && s.[!i] = c then incr i else raise Bad_labels
  in
  let key () =
    let j = ref !i in
    while !j < n && s.[!j] <> '=' do incr j done;
    if !j >= n then raise Bad_labels;
    let k = String.sub s !i (!j - !i) in
    i := !j;
    k
  in
  let value () =
    expect '"';
    let b = Buffer.create 8 in
    let rec go () =
      if !i >= n then raise Bad_labels
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
            if !i + 1 >= n then raise Bad_labels;
            (match s.[!i + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | _ -> raise Bad_labels);
            i := !i + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents b
  in
  if !i < n && s.[!i] = '}' then begin
    incr i;
    ([], !i)
  end
  else begin
    let pairs = ref [] in
    let rec pair () =
      let k = key () in
      if not (label_key_ok k) then raise Bad_labels;
      expect '=';
      let v = value () in
      pairs := (k, v) :: !pairs;
      if !i < n && s.[!i] = ',' then begin
        incr i;
        pair ()
      end
      else expect '}'
    in
    pair ();
    (List.rev !pairs, !i)
  end

(* A line-by-line recogniser of the Prometheus text format (0.0.4), the
   property every /metrics page must satisfy: names legal, a TYPE
   header before any sample of its family, label sets well-formed,
   values numeric, and histogram families with ascending bounds,
   monotone cumulative counts and a terminal +Inf bucket equal to
   _count. *)
let exposition_ok page =
  let ok = ref true in
  let fail () = ok := false in
  let types = Hashtbl.create 16 in
  let hist_buckets = Hashtbl.create 16 in (* family -> (le, count) rev list *)
  let hist_counts = Hashtbl.create 16 in
  let name_ok n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n
  in
  let family_of name =
    if Hashtbl.mem types name then Some name
    else
      List.find_map
        (fun suffix ->
          if Filename.check_suffix name suffix then
            let base = Filename.chop_suffix name suffix in
            if Hashtbl.mem types base then Some base else None
          else None)
        [ "_sum"; "_count"; "_bucket" ]
  in
  let sample line =
    let name_end =
      match (String.index_opt line '{', String.index_opt line ' ') with
      | Some b, Some sp -> min b sp
      | Some b, None -> b
      | None, Some sp -> sp
      | None, None -> String.length line
    in
    let name = String.sub line 0 name_end in
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels, value_s =
      if rest <> "" && rest.[0] = '{' then
        match parse_label_block rest 0 with
        | pairs, close ->
            ( Some pairs,
              String.trim
                (String.sub rest close (String.length rest - close)) )
        | exception Bad_labels -> (None, "")
      else (Some [], String.trim rest)
    in
    let value =
      match value_s with
      | "+Inf" -> Some Float.infinity
      | s -> float_of_string_opt s
    in
    match (labels, value, family_of name) with
    | Some lbls, Some v, Some family ->
        if
          Hashtbl.find types family = "histogram"
          && Filename.check_suffix name "_bucket"
        then (
          match List.assoc_opt "le" lbls with
          | Some le ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt hist_buckets family)
              in
              Hashtbl.replace hist_buckets family ((le, v) :: prev)
          | None -> fail ());
        if
          Hashtbl.find types family = "histogram"
          && Filename.check_suffix name "_count"
        then Hashtbl.replace hist_counts family v
    | _ -> fail ()
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let name =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        if not (name_ok name) then fail ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ]
          when name_ok name
               && List.mem kind
                    [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]
          ->
            Hashtbl.replace types name kind
        | _ -> fail ()
      end
      else if line.[0] = '#' then ()
      else sample line)
    (String.split_on_char '\n' page);
  Hashtbl.iter
    (fun family rev ->
      let bs = List.rev rev in
      let les = List.map fst bs and vs = List.map snd bs in
      let le_value le =
        if le = "+Inf" then Some Float.infinity else float_of_string_opt le
      in
      if not (List.for_all (fun le -> le_value le <> None) les) then fail ();
      (match List.rev les with
      | last :: _ -> if last <> "+Inf" then fail ()
      | [] -> fail ());
      let rec mono = function
        | a :: (b :: _ as t) -> a <= b && mono t
        | _ -> true
      in
      if not (mono vs) then fail ();
      if not (mono (List.filter_map le_value les)) then fail ();
      match (Hashtbl.find_opt hist_counts family, List.rev vs) with
      | Some c, total :: _ -> if c <> total then fail ()
      | _ -> fail ())
    hist_buckets;
  !ok

let prop_exposition =
  prop "every rendered family parses as valid exposition text" samples
    (fun l ->
      let h = fill l in
      exposition_ok
        (Obs.Prometheus.counter ~help:"requests" "reqs_total"
           (float_of_int (List.length l))
        ^ Obs.Prometheus.gauge "queue_depth" (H.sum h)
        ^ Obs.Prometheus.summary ~help:"latency" "lat_ms" h
        ^ Obs.Prometheus.histogram ~help:"latency" "lat_hist_ms" h))

let test_prometheus_histogram () =
  let h = fill [ 1.0; 2.0; 4.0; 100.0 ] in
  let s = Obs.Prometheus.histogram ~help:"lat" "lat_ms" h in
  Alcotest.(check bool) "exposition ok" true (exposition_ok s);
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains needle s))
    [
      "# TYPE lat_ms histogram";
      "lat_ms_bucket{le=\"+Inf\"} 4";
      "lat_ms_count 4";
      "lat_ms_sum 107";
    ]

let test_exposition_rejects () =
  List.iter
    (fun (label, page) ->
      Alcotest.(check bool) label false (exposition_ok page))
    [
      ("sample before TYPE", "foo 1\n");
      ("bad label key", "# TYPE f gauge\nf{9bad=\"x\"} 1\n");
      ("bad value", "# TYPE f gauge\nf notanumber\n");
      ( "histogram missing +Inf",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 2\n" );
      ( "histogram counts not monotone",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\n\
         h_count 2\nh_sum 2\n" );
    ]

(* --- label escaping: round-trip through the exposition parser ---------- *)

let arb_label_value =
  (* Strings salted with the characters that need escaping (and a few
     that merely look scary), so the generator actually exercises the
     escape paths instead of praying for them. *)
  let salt = [| '"'; '\\'; '\n'; ','; '{'; '}'; '='; ' ' |] in
  QCheck.map
    (fun (s, picks) ->
      let b = Buffer.create (String.length s + List.length picks) in
      String.iteri
        (fun i c ->
          Buffer.add_char b c;
          List.iter
            (fun (at, k) ->
              if at = i then Buffer.add_char b salt.(k mod Array.length salt))
            picks)
        s;
      if s = "" then
        List.iter (fun (_, k) -> Buffer.add_char b salt.(k mod Array.length salt)) picks;
      Buffer.contents b)
    (QCheck.pair QCheck.printable_string
       (QCheck.small_list (QCheck.pair QCheck.small_nat QCheck.small_nat)))

let prop_escape_label_roundtrip =
  prop "escaped label values round-trip through the exposition parser"
    (QCheck.pair arb_label_value arb_label_value)
    (fun (v1, v2) ->
      let page =
        Obs.Prometheus.labeled ~help:"statements" ~kind:"counter"
          "stmt_calls_total"
          [
            ([ ("fingerprint", v1); ("lang", v2) ], 3.0);
            ([ ("fingerprint", "plain") ], 1.0);
          ]
      in
      exposition_ok page
      &&
      (* Re-parse the first sample line and demand the exact originals
         back: escaping must be injective and the parser its inverse. *)
      let line =
        List.find
          (fun l -> l <> "" && l.[0] <> '#')
          (String.split_on_char '\n' page)
      in
      match String.index_opt line '{' with
      | None -> false
      | Some b -> (
          match parse_label_block line b with
          | pairs, _ ->
              List.assoc_opt "fingerprint" pairs = Some v1
              && List.assoc_opt "lang" pairs = Some v2
          | exception Bad_labels -> false))

let test_labeled_rendering () =
  let page =
    Obs.Prometheus.labeled ~help:"ops" ~kind:"counter" "ops_total"
      [
        ([ ("op", "a\"b\\c\nd") ], 2.0);
        ([], 5.0);
      ]
  in
  Alcotest.(check bool) "exposition ok" true (exposition_ok page);
  Alcotest.(check bool) "escapes rendered" true
    (contains "{op=\"a\\\"b\\\\c\\nd\"} 2" page);
  Alcotest.(check bool) "bare sample" true (contains "\nops_total 5" page);
  Alcotest.(check bool) "single TYPE header" true
    (count_occurrences "# TYPE ops_total counter" page = 1)

(* --- statement fingerprinting ------------------------------------------ *)

let test_fingerprint_normalize () =
  List.iter
    (fun (label, src, expected) ->
      Alcotest.(check string) label expected (Obs.Fingerprint.normalize src))
    [
      ( "literals and case fold",
        "SELECT[%6 = 'NL'] ( Beer )",
        "select[%6=?](beer)" );
      ("numbers fold", "select[%3 > 42.5e1](beer)", "select[%3>?](beer)");
      ("attribute indexes kept", "project[%1, %12](r)", "project[%1,%12](r)");
      ("comments stripped", "r -- trailing note", "r");
      ("quoted quote", "select[%1 = 'O''Brien'](r)", "select[%1=?](r)");
      ("identifier spacing survives", "delete from r where a = 1",
        "delete from r where a=?");
      ("dotted names are one identifier", "SYS.Statements", "sys.statements");
    ]

let prop_fingerprint_invariance =
  prop "fingerprint ignores literals, case and whitespace"
    (QCheck.triple (QCheck.int_range 0 100000) (QCheck.int_range 0 9)
       QCheck.printable_string)
    (fun (n, pad, lit) ->
      let spaces = String.make pad ' ' in
      (* The generated literal is quoted; double any embedded quotes so
         the statement stays well-formed. *)
      let b = Buffer.create (String.length lit) in
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
        lit;
      let quoted = "'" ^ Buffer.contents b ^ "'" in
      let v1 =
        Printf.sprintf "select[%%3 > %d](join[%%2 = %s](beer, brewery))" n
          quoted
      in
      let v2 =
        Printf.sprintf "%sSELECT[ %%3 >  0 ]%s(JOIN[%%2='x'](Beer,%sBrewery))"
          spaces spaces spaces
      in
      Obs.Fingerprint.fingerprint v1 = Obs.Fingerprint.fingerprint v2)

let test_fingerprint_distinct_shapes () =
  let corpus =
    [
      "beer";
      "brewery";
      "sys.statements";
      "select[%1 = 'x'](beer)";
      "select[%2 = 'x'](beer)";
      "select[%1 = 'x'](brewery)";
      "project[%1](beer)";
      "project[%1, %2](beer)";
      "unique(beer)";
      "join[%2 = %4](beer, brewery)";
      "join[%2 = %5](beer, brewery)";
      "groupby[%6; AVG(%3)](join[%2 = %4](beer, brewery))";
      "insert(beer, rel[(a:int)]{(1)})";
      "delete(beer, select[%1 = 'x'](beer))";
      "SELECT name FROM beer WHERE alcperc > 5";
      "SELECT name FROM beer GROUP BY name";
    ]
  in
  let fps = List.map Obs.Fingerprint.fingerprint corpus in
  Alcotest.(check int) "no collisions on distinct shapes"
    (List.length corpus)
    (List.length (List.sort_uniq String.compare fps));
  List.iter
    (fun fp ->
      Alcotest.(check bool) "16 hex digits" true
        (String.length fp = 16
        && String.for_all
             (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
             fp))
    fps

(* Dotted sys.* identifiers: the qualified name is one token — it must
   normalize stably across case and spacing, and never collapse onto
   the unqualified name or a sibling catalog relation. *)
let test_fingerprint_dotted_names () =
  let fp = Obs.Fingerprint.fingerprint in
  List.iter
    (fun (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "%S ~ %S" a b)
        (fp a) (fp b))
    [
      ("sys.ash", "  SYS.ASH  ");
      ("select[%4 = 'lock'](sys.ash)", "SELECT[ %4='lock' ](Sys.Ash)");
      ( "project[%1, %2](sys.progress)",
        "project[ %1 , %2 ]( SYS.progress )" );
      ("SELECT wait_class FROM sys.ash", "select wait_class from SYS.ASH");
    ];
  let distinct =
    [
      "sys.ash";
      "ash";
      "sys.progress";
      "progress";
      "sys.statements";
      "statements";
      "sysash";
      "select[%1 = 'q'](sys.progress)";
      "select[%1 = 'q'](progress)";
    ]
  in
  Alcotest.(check int) "qualified and unqualified stay distinct"
    (List.length distinct)
    (List.length (List.sort_uniq String.compare (List.map fp distinct)))

(* --- statement stats registry ------------------------------------------ *)

let test_stmt_stats_accumulates () =
  Obs.Stmt_stats.clear ();
  Obs.Stmt_stats.set_enabled true;
  Obs.Stmt_stats.record ~lang:"xra" ~qid:"q000101" ~rows:10 ~tuples:40
    ~wall_ms:2.0 "select[%1 = 'a'](beer)";
  Obs.Stmt_stats.record ~lang:"xra" ~qid:"q000102" ~rows:5 ~tuples:20
    ~wall_ms:4.0 "select[%1 = 'b'](beer)";
  Obs.Stmt_stats.record ~wall_ms:1.0 "brewery";
  Alcotest.(check int) "two fingerprints" 2 (Obs.Stmt_stats.cardinality ());
  (match Obs.Stmt_stats.snapshot () with
  | [ top; second ] ->
      Alcotest.(check int) "variants merged" 2 top.Obs.Stmt_stats.r_calls;
      Alcotest.(check (float 1e-9)) "total" 6.0 top.Obs.Stmt_stats.r_total_ms;
      Alcotest.(check (float 1e-9)) "min" 2.0 top.Obs.Stmt_stats.r_min_ms;
      Alcotest.(check (float 1e-9)) "max" 4.0 top.Obs.Stmt_stats.r_max_ms;
      Alcotest.(check int) "rows" 15 top.Obs.Stmt_stats.r_rows;
      Alcotest.(check int) "tuples" 60 top.Obs.Stmt_stats.r_tuples;
      Alcotest.(check string) "last qid" "q000102"
        top.Obs.Stmt_stats.r_last_qid;
      Alcotest.(check string) "normalized exemplar" "select[%1=?](beer)"
        top.Obs.Stmt_stats.r_text;
      Alcotest.(check bool) "sorted by total desc" true
        (second.Obs.Stmt_stats.r_total_ms <= top.Obs.Stmt_stats.r_total_ms)
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  Alcotest.(check bool) "json valid" true
    (json_valid (Obs.Stmt_stats.to_json ()));
  Alcotest.(check bool) "prometheus valid" true
    (exposition_ok (Obs.Stmt_stats.to_prometheus ()));
  Alcotest.(check bool) "top table mentions the statement" true
    (contains "select[%1=?](beer)" (Obs.Stmt_stats.render_top ()));
  Obs.Stmt_stats.clear ();
  Alcotest.(check int) "clear empties" 0 (Obs.Stmt_stats.cardinality ())

let test_stmt_stats_attribution () =
  Obs.Stmt_stats.clear ();
  Obs.Stmt_stats.set_enabled true;
  (* WAL bytes and lock waits land under the qid *before* the statement
     itself is recorded: they must buffer, then drain into the entry. *)
  Obs.Stmt_stats.add_wal_bytes ~qid:"q000201" 100;
  Obs.Stmt_stats.add_wal_bytes ~qid:"q000201" 28;
  Obs.Stmt_stats.add_lock_wait ~qid:"q000201" 1.5;
  Obs.Stmt_stats.record ~qid:"q000201" ~wall_ms:1.0 "insert(r, s)";
  (* Late attribution after the record resolves through the qid map. *)
  Obs.Stmt_stats.add_wal_bytes ~qid:"q000201" 12;
  Obs.Stmt_stats.add_lock_wait ~qid:"q000201" 0.5;
  (* Unknown qids buffer harmlessly and never create entries. *)
  Obs.Stmt_stats.add_wal_bytes ~qid:"q999999" 7;
  (match Obs.Stmt_stats.snapshot () with
  | [ r ] ->
      Alcotest.(check int) "wal bytes drained + late" 140
        r.Obs.Stmt_stats.r_wal_bytes;
      Alcotest.(check (float 1e-9)) "lock wait drained + late" 2.0
        r.Obs.Stmt_stats.r_lock_wait_ms
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  Alcotest.(check int) "unknown qid created nothing" 1
    (Obs.Stmt_stats.cardinality ());
  Obs.Stmt_stats.clear ()

let test_stmt_stats_disabled () =
  Obs.Stmt_stats.clear ();
  Obs.Stmt_stats.set_enabled false;
  Obs.Stmt_stats.record ~wall_ms:1.0 "beer";
  Obs.Stmt_stats.add_wal_bytes ~qid:"q000301" 10;
  Alcotest.(check int) "disabled records nothing" 0
    (Obs.Stmt_stats.cardinality ());
  Obs.Stmt_stats.set_enabled true;
  Alcotest.(check bool) "re-enabled" true (Obs.Stmt_stats.enabled ())

let test_op_stats () =
  Obs.Stmt_stats.set_enabled true;
  Obs.Op_stats.clear ();
  Obs.Op_stats.record ~op:"HashJoin" ~elems:10 ~rows:4 ~cells:12 ~wall_ms:1.0;
  Obs.Op_stats.record ~op:"HashJoin" ~elems:6 ~rows:2 ~cells:6 ~wall_ms:0.5;
  Obs.Op_stats.record ~op:"Scan" ~elems:0 ~rows:10 ~cells:30 ~wall_ms:0.1;
  (match Obs.Op_stats.snapshot () with
  | [ hj; scan ] ->
      Alcotest.(check string) "sorted by op" "HashJoin" hj.Obs.Op_stats.o_op;
      Alcotest.(check int) "execs" 2 hj.Obs.Op_stats.o_execs;
      Alcotest.(check int) "elems" 16 hj.Obs.Op_stats.o_elems;
      Alcotest.(check int) "rows" 6 hj.Obs.Op_stats.o_rows;
      Alcotest.(check (float 1e-9)) "wall" 1.5 hj.Obs.Op_stats.o_wall_ms;
      Alcotest.(check string) "scan second" "Scan" scan.Obs.Op_stats.o_op
  | rows -> Alcotest.failf "expected 2 ops, got %d" (List.length rows));
  Obs.Op_stats.clear ();
  Alcotest.(check int) "clear empties" 0
    (List.length (Obs.Op_stats.snapshot ()))

(* --- time-series ring buffer ------------------------------------------- *)

let test_timeseries_ring () =
  let ts = Obs.Timeseries.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Timeseries.record ts ~t_s:(float_of_int i)
      [ ("a", float_of_int i); ("b", float_of_int (-i)) ]
  done;
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Obs.Timeseries.names ts);
  Alcotest.(check int) "capacity" 4 (Obs.Timeseries.capacity ts);
  Alcotest.(check bool) "ring keeps last 4, oldest first" true
    (Array.to_list (Obs.Timeseries.window ts "a")
    = [ (7.0, 7.0); (8.0, 8.0); (9.0, 9.0); (10.0, 10.0) ]);
  Alcotest.(check bool) "bounded window" true
    (Array.to_list (Obs.Timeseries.window ~n:2 ts "a")
    = [ (9.0, 9.0); (10.0, 10.0) ]);
  Alcotest.(check bool) "latest" true
    (Obs.Timeseries.latest ts "b" = Some (10.0, -10.0));
  Alcotest.(check bool) "unknown series" true
    (Obs.Timeseries.window ts "zzz" = [||]);
  Alcotest.(check bool) "latest_all" true
    (Obs.Timeseries.latest_all ts = [ ("a", 10.0); ("b", -10.0) ]);
  Alcotest.(check bool) "statz JSON valid" true
    (json_valid (Obs.Timeseries.to_json ts));
  Alcotest.(check bool) "prometheus gauges valid" true
    (exposition_ok (Obs.Timeseries.to_prometheus ts));
  Alcotest.(check bool) "top table lists the series" true
    (contains "a" (Obs.Timeseries.render_top ts))

(* --- background sampler ------------------------------------------------- *)

let test_sampler () =
  let calls = Atomic.make 0 in
  let probe () =
    let n = Atomic.fetch_and_add calls 1 + 1 in
    [ ("test.calls", float_of_int n) ]
  in
  let raising () = failwith "probe boom" in
  let s = Obs.Sampler.start ~interval_ms:2.0 ~probes:[ raising; probe ] () in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Obs.Sampler.rounds s < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Obs.Sampler.stop s;
  Obs.Sampler.stop s (* idempotent *);
  Alcotest.(check bool) "sampled several rounds" true (Obs.Sampler.rounds s >= 3);
  (* The raising probe was skipped every round — and the thread
     survived it every round: rounds kept advancing and the healthy
     probe kept recording alongside it. *)
  Alcotest.(check bool) "failures counted" true
    (Obs.Sampler.failures s >= Obs.Sampler.rounds s);
  let store = Obs.Sampler.store s in
  Alcotest.(check (list string))
    "raising probe skipped, good one recorded" [ "test.calls" ]
    (Obs.Timeseries.names store);
  (match Obs.Timeseries.latest store "test.calls" with
  | Some (_, v) -> Alcotest.(check bool) "latest counted up" true (v >= 3.0)
  | None -> Alcotest.fail "no sample recorded");
  let before = Obs.Sampler.rounds s in
  Obs.Sampler.sample_now s;
  Alcotest.(check int) "sample_now adds a round" (before + 1)
    (Obs.Sampler.rounds s)

let test_sampler_cadence () =
  (* A probe that burns more than half the interval: the old loop slept
     a full interval *after* the probes, so its real period was
     interval + probe-time (~40 ms here, ≤ ~30 rounds over the window).
     Absolute deadlines keep the period at the interval itself (~48
     rounds).  The threshold sits between the two with margin for CI
     jitter; the upper bound catches a sampler that bursts to catch
     up after falling behind. *)
  let interval_ms = 25.0 in
  let busy () =
    Unix.sleepf 0.015;
    [ ("busy.val", 1.0) ]
  in
  let s = Obs.Sampler.start ~interval_ms ~probes:[ busy ] () in
  Unix.sleepf 1.2;
  Obs.Sampler.stop s;
  let rounds = Obs.Sampler.rounds s in
  Alcotest.(check bool)
    (Printf.sprintf "cadence held under load (%d rounds)" rounds)
    true
    (rounds >= 35 && rounds <= 60)

(* --- wait events and the Active Session History ------------------------ *)

let test_wait_counters () =
  Obs.Wait.reset ();
  Obs.Wait.note Obs.Wait.Lock 1500.0;
  Obs.Wait.note Obs.Wait.Lock 500.0;
  Obs.Wait.note Obs.Wait.Conflict 0.0;
  Alcotest.(check int) "lock count" 2 (Obs.Wait.count Obs.Wait.Lock);
  Alcotest.(check (float 1e-9)) "lock ms" 2.0 (Obs.Wait.waited_ms Obs.Wait.Lock);
  Alcotest.(check int) "conflict count" 1 (Obs.Wait.count Obs.Wait.Conflict);
  Alcotest.(check (float 1e-9)) "conflict ms" 0.0
    (Obs.Wait.waited_ms Obs.Wait.Conflict);
  Alcotest.(check int) "io.fsync untouched" 0 (Obs.Wait.count Obs.Wait.Io_fsync);
  (* Negative durations clamp rather than rewind the counter. *)
  Obs.Wait.note Obs.Wait.Io_wal (-50.0);
  Alcotest.(check (float 1e-9)) "clamped" 0.0 (Obs.Wait.waited_ms Obs.Wait.Io_wal);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("of_name roundtrips " ^ Obs.Wait.name c)
        true
        (Obs.Wait.of_name (Obs.Wait.name c) = Some c))
    Obs.Wait.all;
  Alcotest.(check int) "telemetry: two series per class"
    (2 * List.length Obs.Wait.all)
    (List.length (Obs.Wait.telemetry ()));
  Alcotest.(check bool) "prometheus exposition valid" true
    (exposition_ok (Obs.Wait.to_prometheus ()));
  Obs.Wait.reset ();
  Alcotest.(check int) "reset" 0 (Obs.Wait.count Obs.Wait.Lock)

let test_ash_registry () =
  Obs.Ash.set_enabled true;
  Obs.Ash.clear ();
  let slot = Obs.Ash.register ~lang:"xra" ~text:"select[%1 = 1](beer)" ~qid:"q-1" () in
  Alcotest.(check bool) "slot live" true (Obs.Ash.live slot);
  Alcotest.(check int) "registered" 1 (Obs.Ash.live_count ());
  Obs.Ash.set_estimate slot 100.0;
  Obs.Ash.set_operator slot "seq_scan";
  Obs.Ash.advance slot ~rows:30;
  Obs.Ash.advance slot ~rows:20;
  (match Obs.Ash.progress () with
  | [ p ] ->
      Alcotest.(check string) "qid" "q-1" p.Obs.Ash.p_qid;
      Alcotest.(check string) "operator" "seq_scan" p.Obs.Ash.p_operator;
      Alcotest.(check int) "rows" 50 p.Obs.Ash.p_rows;
      Alcotest.(check int) "chunks" 2 p.Obs.Ash.p_chunks;
      Alcotest.(check (float 1e-9)) "pct" 50.0 p.Obs.Ash.p_pct;
      Alcotest.(check string) "running = cpu.exec" "cpu.exec" p.Obs.Ash.p_wait
  | l -> Alcotest.failf "expected one progress row, got %d" (List.length l));
  (* A cadence sample of a running session is a cpu.exec row on its
     current operator; of a blocked one, its wait class. *)
  Alcotest.(check int) "one live session sampled" 1 (Obs.Ash.sample_now ());
  Obs.Ash.set_wait slot (Some (Obs.Wait.Lock, "beer"));
  ignore (Obs.Ash.sample_now ());
  Obs.Ash.set_wait slot None;
  Obs.Ash.slot_event slot Obs.Wait.Io_fsync ~detail:"wal.fsync" ~dur_us:2000.0;
  let rows = Obs.Ash.snapshot () in
  let by kind cls =
    List.filter
      (fun (s : Obs.Ash.sample) -> s.a_kind = kind && s.a_class = cls)
      rows
  in
  (match by "sample" Obs.Wait.Cpu_exec with
  | s :: _ ->
      Alcotest.(check string) "cpu sample detail" "seq_scan" s.Obs.Ash.a_detail;
      Alcotest.(check string) "cpu sample qid" "q-1" s.Obs.Ash.a_qid
  | [] -> Alcotest.fail "no cpu.exec sample");
  (match by "sample" Obs.Wait.Lock with
  | s :: _ -> Alcotest.(check string) "lock sample detail" "beer" s.Obs.Ash.a_detail
  | [] -> Alcotest.fail "no lock sample");
  (match by "event" Obs.Wait.Io_fsync with
  | s :: _ ->
      Alcotest.(check (float 1e-9)) "event carries duration" 2.0
        s.Obs.Ash.a_wait_ms;
      Alcotest.(check string) "event fingerprint" (Obs.Fingerprint.fingerprint "select[%1 = 1](beer)")
        s.Obs.Ash.a_fingerprint
  | [] -> Alcotest.fail "no io.fsync event");
  Obs.Ash.finish slot;
  Alcotest.(check int) "finished" 0 (Obs.Ash.live_count ());
  Obs.Ash.finish slot (* idempotent *);
  Alcotest.(check int) "no sessions, nothing sampled" 0 (Obs.Ash.sample_now ());
  Obs.Ash.clear ()

let test_ash_ring_wrap () =
  Obs.Ash.set_enabled true;
  Obs.Ash.set_capacity 16;
  for i = 1 to 40 do
    Obs.Ash.event Obs.Wait.Io_wal ~detail:(string_of_int i) ~dur_us:1.0
  done;
  let rows = Obs.Ash.snapshot () in
  Alcotest.(check int) "ring bounded" 16 (List.length rows);
  Alcotest.(check int) "lifetime count survives wrap" 40
    (Obs.Ash.pushed_total ());
  (* Oldest first, and the survivors are the newest 16 (25..40). *)
  (match rows with
  | first :: _ -> Alcotest.(check string) "oldest survivor" "25" first.Obs.Ash.a_detail
  | [] -> Alcotest.fail "empty ring");
  (match List.rev rows with
  | last :: _ -> Alcotest.(check string) "newest last" "40" last.Obs.Ash.a_detail
  | [] -> Alcotest.fail "empty ring");
  Obs.Ash.set_capacity 4096;
  Obs.Ash.clear ()

let test_ash_disabled () =
  Obs.Ash.set_enabled true;
  Obs.Ash.clear ();
  Obs.Wait.reset ();
  Obs.Ash.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.Ash.set_enabled true) @@ fun () ->
  let slot = Obs.Ash.register ~text:"ignored" ~qid:"q-off" () in
  Alcotest.(check bool) "inert slot" false (Obs.Ash.live slot);
  Alcotest.(check int) "not registered" 0 (Obs.Ash.live_count ());
  (* The hot-path operations absorb harmlessly. *)
  Obs.Ash.set_operator slot "x";
  Obs.Ash.advance slot ~rows:10;
  Obs.Ash.set_wait slot (Some (Obs.Wait.Lock, "r"));
  Obs.Ash.finish slot;
  Alcotest.(check int) "nothing sampled" 0 (Obs.Ash.sample_now ());
  (* Wait-class counters stay on even with ASH off... *)
  Obs.Ash.event Obs.Wait.Io_fsync ~detail:"d" ~dur_us:500.0;
  Alcotest.(check int) "counters still fed" 1 (Obs.Wait.count Obs.Wait.Io_fsync);
  (* ...but no ring row lands. *)
  Alcotest.(check int) "ring untouched" 0 (List.length (Obs.Ash.snapshot ()))

let test_ash_track () =
  Obs.Ash.set_enabled true;
  Obs.Ash.clear ();
  let r =
    Obs.Ash.track ~qid:"q-t" Obs.Wait.Pool_queue ~detail:"map.drain" (fun () ->
        Unix.sleepf 0.002;
        17)
  in
  Alcotest.(check int) "value through" 17 r;
  (match Obs.Ash.snapshot () with
  | [ s ] ->
      Alcotest.(check string) "kind" "event" s.Obs.Ash.a_kind;
      Alcotest.(check bool) "duration measured" true (s.Obs.Ash.a_wait_ms >= 1.0)
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  Obs.Ash.clear ()

(* --- HTTP telemetry server --------------------------------------------- *)

let test_http_server () =
  let handler = function
    | "/ok" -> Some (Obs.Http_server.text "hello\n")
    | "/json" -> Some (Obs.Http_server.json "{\"a\":1}")
    | "/boom" -> failwith "kaboom"
    | _ -> None
  in
  let srv = Obs.Http_server.start ~port:0 handler in
  Fun.protect
    ~finally:(fun () -> Obs.Http_server.stop srv)
    (fun () ->
      let port = Obs.Http_server.port srv in
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
      Alcotest.(check (pair int string))
        "/ok" (200, "hello\n")
        (Obs.Http_server.get ~port "/ok");
      let st, body = Obs.Http_server.get ~port "/json" in
      Alcotest.(check int) "json status" 200 st;
      Alcotest.(check bool) "json body valid" true (json_valid body);
      Alcotest.(check int) "unknown path is 404" 404
        (fst (Obs.Http_server.get ~port "/missing"));
      Alcotest.(check int) "raising handler is 500, not a crash" 500
        (fst (Obs.Http_server.get ~port "/boom"));
      Alcotest.(check int) "query string stripped before routing" 200
        (fst (Obs.Http_server.get ~port "/ok?x=1")));
  Obs.Http_server.stop srv (* idempotent *)

(* --- ambient trace context and query ids -------------------------------- *)

let capture_sink spans events =
  {
    Trace.on_span = (fun s -> spans := s :: !spans);
    on_event = (fun e -> events := e :: !events);
    on_close = ignore;
  }

let test_with_context_stamps () =
  let spans = ref [] and events = ref [] in
  Trace.set_sinks [ capture_sink spans events ];
  Fun.protect
    ~finally:(fun () -> Trace.close ())
    (fun () ->
      Trace.with_context [ ("query_id", Trace.Str "q42") ] (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.complete "op" ~start_us:0.0 ~dur_us:1.0;
          Trace.event "tick";
          Alcotest.(check bool) "context_find sees the key" true
            (Trace.context_find "query_id" = Some (Trace.Str "q42")));
      Trace.with_span "outside" (fun () -> ()));
  let find name = List.find (fun s -> s.Trace.name = name) !spans in
  let qid s = List.assoc_opt "query_id" s.Trace.attrs in
  Alcotest.(check bool) "with_span stamped" true
    (qid (find "inner") = Some (Trace.Str "q42"));
  Alcotest.(check bool) "complete stamped" true
    (qid (find "op") = Some (Trace.Str "q42"));
  Alcotest.(check bool) "outside the context: unstamped" true
    (qid (find "outside") = None);
  (match !events with
  | [ e ] ->
      Alcotest.(check bool) "event stamped" true
        (List.assoc_opt "query_id" e.Trace.ev_attrs = Some (Trace.Str "q42"))
  | _ -> Alcotest.fail "expected exactly one event");
  Alcotest.(check bool) "context restored on exit" true (Trace.context () = []);
  (* The context must survive with tracing disabled — the store stamps
     WAL records from it whether or not a sink is installed. *)
  Trace.with_context [ ("k", Trace.Bool true) ] (fun () ->
      Alcotest.(check bool) "context without sinks" true
        (Trace.context_find "k" = Some (Trace.Bool true)))

let test_qid_mint () =
  let a = Obs.Qid.mint () and b = Obs.Qid.mint () in
  Alcotest.(check bool) "ids distinct" true (a <> b);
  Alcotest.(check string) "attr key" "query_id" Obs.Qid.attr_key;
  List.iter
    (fun q ->
      Alcotest.(check bool) "format q%06d" true
        (String.length q = 7
        && q.[0] = 'q'
        && String.for_all
             (function '0' .. '9' -> true | _ -> false)
             (String.sub q 1 6)))
    [ a; b ]

(* --- scheduler output delivery ----------------------------------------- *)

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]

let kv_db =
  Database.of_relations
    [
      ( "r",
        Relation.of_list s_kv
          [
            Tuple.of_list [ Value.Int 1; Value.Int 10 ];
            Tuple.of_list [ Value.Int 2; Value.Int 20 ];
          ] );
    ]

let query_r = Statement.Query (Expr.rel "r")

let test_scheduler_outputs_match_serial () =
  let t1 = Transaction.make ~name:"reader" [ query_r ] in
  let r = Mxra_concurrency.Scheduler.run ~seed:7 kv_db [ t1 ] in
  let serial_outputs =
    match Transaction.run kv_db t1 with
    | Transaction.Committed { outputs; _ } -> outputs
    | Transaction.Aborted _ -> Alcotest.fail "serial run aborted"
  in
  match r.Mxra_concurrency.Scheduler.outputs with
  | [ outs ] ->
      Alcotest.(check int) "one output" (List.length serial_outputs)
        (List.length outs);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same relation" true (Relation.equal a b))
        serial_outputs outs
  | _ -> Alcotest.fail "expected one transaction's outputs"

let test_scheduler_aborted_outputs_empty () =
  let t_abort =
    Transaction.make ~name:"doomed"
      ~abort_if:(fun _ -> true)
      [ query_r ]
  in
  let t_ok = Transaction.make ~name:"fine" [ query_r ] in
  let r = Mxra_concurrency.Scheduler.run ~seed:7 kv_db [ t_abort; t_ok ] in
  match
    (r.Mxra_concurrency.Scheduler.outcomes, r.Mxra_concurrency.Scheduler.outputs)
  with
  | [ Mxra_concurrency.Scheduler.Aborted _; Mxra_concurrency.Scheduler.Committed ], [ aborted; committed ]
    ->
      Alcotest.(check int)
        "aborted transaction delivers no outputs" 0 (List.length aborted);
      Alcotest.(check int) "committed delivers its query" 1
        (List.length committed)
  | _ -> Alcotest.fail "unexpected outcomes"

(* --- query ids end to end: scheduler spans and WAL stamping ------------- *)

let test_scheduler_query_ids () =
  let txns =
    List.init 3 (fun i ->
        Transaction.make ~name:(Printf.sprintf "t%d" i) [ query_r ])
  in
  let r = Mxra_concurrency.Scheduler.run ~seed:1 kv_db txns in
  let qids = r.Mxra_concurrency.Scheduler.query_ids in
  Alcotest.(check int) "one qid per transaction" 3 (List.length qids);
  Alcotest.(check int) "all distinct" 3
    (List.length (List.sort_uniq String.compare qids))

let test_scheduler_statement_spans () =
  let spans = ref [] and events = ref [] in
  Trace.set_sinks [ capture_sink spans events ];
  let r =
    Fun.protect
      ~finally:(fun () -> Trace.close ())
      (fun () ->
        Mxra_concurrency.Scheduler.run ~seed:3 kv_db
          [ Transaction.make ~name:"w" [ query_r; query_r ] ])
  in
  let qid =
    match r.Mxra_concurrency.Scheduler.query_ids with
    | [ q ] -> q
    | _ -> Alcotest.fail "expected one query id"
  in
  let stmts = List.filter (fun s -> s.Trace.name = "statement") !spans in
  Alcotest.(check int) "one span per executed statement" 2 (List.length stmts);
  List.iter
    (fun s ->
      Alcotest.(check bool) "statement span carries the txn's qid" true
        (List.assoc_opt "query_id" s.Trace.attrs = Some (Trace.Str qid)))
    stmts;
  let txn_span = List.find (fun s -> s.Trace.name = "txn") !spans in
  Alcotest.(check bool) "txn span carries the qid" true
    (List.assoc_opt "query_id" txn_span.Trace.attrs = Some (Trace.Str qid))

let test_store_qid_stamping () =
  let module Store = Mxra_storage.Store in
  let dir = Filename.temp_file "mxra_store_qid" "" in
  Sys.remove dir;
  let s = Store.open_dir dir in
  Store.absorb_batch s [] kv_db;
  Store.checkpoint s;
  let txn =
    Transaction.make ~name:"double"
      [ Statement.Insert ("r", Expr.rel "r") ]
  in
  (match Store.commit ~qid:"q424242" s txn with
  | Transaction.Committed _ -> ()
  | Transaction.Aborted { reason; _ } -> Alcotest.fail reason);
  let telemetry = Store.telemetry s () in
  Alcotest.(check bool) "telemetry counts the commit" true
    (List.assoc_opt "store.commits" telemetry = Some 1.0
    && List.assoc_opt "store.wal_records" telemetry = Some 1.0);
  Store.close s;
  let wal =
    In_channel.with_open_text (Filename.concat dir "wal.xra")
      In_channel.input_all
  in
  Alcotest.(check bool) "begin marker stamped" true
    (contains "-- begin 1 q424242" wal);
  Alcotest.(check int) "qid on begin and commit markers" 2
    (count_occurrences "q424242" wal);
  (* The stamp is metadata: recovery replays the record unchanged. *)
  let db = Store.recover_dir dir in
  Alcotest.(check int) "stamped record replays" 4
    (Relation.cardinal (Database.find "r" db))

let suite =
  ( "obs",
    [
      prop_count_conservation;
      prop_quantile_ordering;
      prop_quantile_monotone;
      prop_quantile_accuracy;
      prop_p50_in_range;
      Alcotest.test_case "non-finite observations ignored" `Quick
        test_histogram_ignores_nonfinite;
      Alcotest.test_case "single-sample percentiles are the sample" `Quick
        test_histogram_single_sample;
      Alcotest.test_case "one-bucket percentiles stay in range" `Quick
        test_histogram_one_bucket;
      Alcotest.test_case "Chrome sink: valid JSON under exceptions" `Quick
        test_chrome_sink_valid_json;
      Alcotest.test_case "Chrome sink: empty trace is valid" `Quick
        test_chrome_sink_empty_trace;
      Alcotest.test_case "disabled tracing is transparent" `Quick
        test_disabled_tracing_is_transparent;
      Alcotest.test_case "query log records query spans" `Quick
        test_query_log_records;
      Alcotest.test_case "query log respects slow threshold" `Quick
        test_query_log_threshold;
      Alcotest.test_case "aggregation sink folds the stream" `Quick
        test_agg_sink;
      Alcotest.test_case "prometheus name sanitization" `Quick
        test_prometheus_sanitize;
      Alcotest.test_case "prometheus summary rendering" `Quick
        test_prometheus_summary;
      Alcotest.test_case "prometheus aggregate export" `Quick
        test_prometheus_of_aggregate;
      Alcotest.test_case "engine metrics registry export" `Quick
        test_engine_metrics_prometheus;
      Alcotest.test_case "scheduler outputs match serial run" `Quick
        test_scheduler_outputs_match_serial;
      Alcotest.test_case "aborted transactions deliver no outputs" `Quick
        test_scheduler_aborted_outputs_empty;
      prop_merge_conservation;
      prop_agg_sink_parallel;
      prop_exposition;
      Alcotest.test_case "prometheus histogram rendering" `Quick
        test_prometheus_histogram;
      Alcotest.test_case "exposition checker rejects malformed pages" `Quick
        test_exposition_rejects;
      prop_escape_label_roundtrip;
      Alcotest.test_case "labeled family rendering" `Quick
        test_labeled_rendering;
      Alcotest.test_case "fingerprint normalization" `Quick
        test_fingerprint_normalize;
      prop_fingerprint_invariance;
      Alcotest.test_case "dotted sys.* fingerprints are stable and distinct"
        `Quick test_fingerprint_dotted_names;
      Alcotest.test_case "fingerprints of distinct shapes stay distinct"
        `Quick test_fingerprint_distinct_shapes;
      Alcotest.test_case "statement stats accumulate by fingerprint" `Quick
        test_stmt_stats_accumulates;
      Alcotest.test_case "wal and lock-wait attribution by qid" `Quick
        test_stmt_stats_attribution;
      Alcotest.test_case "disabled registry records nothing" `Quick
        test_stmt_stats_disabled;
      Alcotest.test_case "operator stats accumulate by kind" `Quick
        test_op_stats;
      Alcotest.test_case "time-series ring buffer" `Quick test_timeseries_ring;
      Alcotest.test_case "background sampler" `Quick test_sampler;
      Alcotest.test_case "sampler cadence under busy probes" `Slow
        test_sampler_cadence;
      Alcotest.test_case "wait-class counters" `Quick test_wait_counters;
      Alcotest.test_case "ash: registry, sampling and events" `Quick
        test_ash_registry;
      Alcotest.test_case "ash: bounded ring wraps" `Quick test_ash_ring_wrap;
      Alcotest.test_case "ash: disabled mode is inert" `Quick test_ash_disabled;
      Alcotest.test_case "ash: track times an interval" `Quick test_ash_track;
      Alcotest.test_case "http telemetry server" `Quick test_http_server;
      Alcotest.test_case "ambient context stamps spans and events" `Quick
        test_with_context_stamps;
      Alcotest.test_case "query id minting" `Quick test_qid_mint;
      Alcotest.test_case "scheduler mints per-transaction query ids" `Quick
        test_scheduler_query_ids;
      Alcotest.test_case "statement spans carry the transaction qid" `Quick
        test_scheduler_statement_spans;
      Alcotest.test_case "store stamps qids into WAL markers" `Quick
        test_store_qid_stamping;
    ] )
