(* System catalog tests: sys.* names resolving to ordinary bag
   relations, served through the normal optimizer → planner → exec
   pipeline; the differential law (catalog scans through Exec bag-equal
   to the reference evaluator); reserved-name refusal; and the unknown
   sys.* name raising the ordinary [Database.Unknown_relation]. *)

open Mxra_relational
open Mxra_core
module Obs = Mxra_obs
module Syscat = Mxra_engine.Syscat
module Xra = Mxra_xra
module Sql = Mxra_sql
module W = Mxra_workload

let beer = W.Beer.tiny

(* The same statement text sent twice with different literals plus one
   other shape: two fingerprints, one with calls = 2. *)
let seed_registry () =
  Obs.Stmt_stats.clear ();
  Obs.Op_stats.clear ();
  Obs.Stmt_stats.set_enabled true;
  Obs.Stmt_stats.record ~lang:"xra" ~qid:"q000901" ~rows:10 ~wall_ms:2.0
    "select[%2 = 'Grolsch'](beer)";
  Obs.Stmt_stats.record ~lang:"xra" ~qid:"q000902" ~rows:3 ~wall_ms:1.0
    "select[%2 = 'Chimay'](beer)";
  Obs.Stmt_stats.record ~lang:"sql" ~qid:"q000903" ~rows:6 ~wall_ms:0.5
    "SELECT name FROM brewery"

(* A deterministic ASH state: one running session with progress, one
   blocked on a lock, plus one completed-wait event row in the ring.
   Returns the slots so callers can [finish] them when done. *)
let seed_ash () =
  Obs.Ash.set_enabled true;
  Obs.Ash.clear ();
  let running =
    Obs.Ash.register ~lang:"xra" ~text:"select[%3 > 5.0](beer)" ~qid:"q-run" ()
  in
  Obs.Ash.set_estimate running 10.0;
  Obs.Ash.set_operator running "seq_scan";
  Obs.Ash.advance running ~rows:4;
  let blocked =
    Obs.Ash.register ~lang:"txn" ~text:"update(beer, beer, %3+1)" ~qid:"q-blk" ()
  in
  Obs.Ash.set_wait blocked (Some (Obs.Wait.Lock, "beer"));
  Obs.Ash.slot_event running Obs.Wait.Io_fsync ~detail:"wal.fsync"
    ~dur_us:1500.0;
  ignore (Obs.Ash.sample_now ());
  (running, blocked)

let finish_ash (running, blocked) =
  Obs.Ash.finish running;
  Obs.Ash.finish blocked;
  Obs.Ash.clear ()

let run_exec db e =
  let optimized = Mxra_optimizer.Optimizer.optimize_db db e in
  Mxra_engine.Exec.run db (Mxra_engine.Planner.plan db optimized)

let xra src = Xra.Parser.expr_of_string src

let test_attach_and_query () =
  seed_registry ();
  let e = xra "select[%4 >= 2](sys.statements)" in
  Alcotest.(check bool) "mentions sys.*" true (Syscat.mentions e);
  Alcotest.(check bool) "plain names don't" false
    (Syscat.mentions (xra "beer"));
  let db = Syscat.attach_for beer e in
  let r = run_exec db e in
  Alcotest.(check int) "one statement with two calls" 1 (Relation.cardinal r);
  (* The untouched base database gained nothing. *)
  Alcotest.(check bool) "base db unchanged" false
    (Database.mem "sys.statements" beer)

let test_snapshot_semantics () =
  seed_registry ();
  (* Attach freezes the catalog: records arriving after the attach are
     invisible to this query's view. *)
  let db = Syscat.attach beer in
  Obs.Stmt_stats.record ~wall_ms:1.0 "groupby[%1; CNT(%2)](beer)";
  let r = run_exec db (xra "sys.statements") in
  Alcotest.(check int) "frozen at attach time" 2 (Relation.cardinal r)

let test_relations_catalog () =
  seed_registry ();
  let db = Syscat.attach beer in
  let r = run_exec db (xra "sys.relations") in
  (* beer and brewery only: sys.* temporaries never describe themselves. *)
  Alcotest.(check int) "two base relations" 2 (Relation.cardinal r);
  let names =
    run_exec db (xra "project[%1](sys.relations)") |> Relation.to_list
    |> List.map (fun t -> Tuple.attr t 1)
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (List.mem (Value.Str n) names))
    [ "beer"; "brewery" ];
  (* Arity and cardinality agree with the live database. *)
  let by_beer =
    run_exec db (xra "select[%1 = 'beer'](sys.relations)")
    |> Relation.to_list |> List.hd
  in
  Alcotest.(check bool) "beer arity 3" true (Tuple.attr by_beer 2 = Value.Int 3);
  Alcotest.(check bool) "beer cardinality" true
    (Tuple.attr by_beer 3 = Value.Int (Relation.cardinal (Database.find "beer" beer)))

(* The tentpole law: a catalog scan is an ordinary expression, so the
   physical engine and the reference evaluator must agree bag-for-bag
   on any query over an attached database. *)
let test_differential_exec_vs_eval () =
  seed_registry ();
  let slots = seed_ash () in
  let db = Syscat.attach beer in
  finish_ash slots;
  (* The attach froze everything — finishing the sessions above proves
     the snapshot really is a snapshot even for the live registry. *)
  List.iter
    (fun src ->
      let e = xra src in
      let fast = run_exec db e in
      let slow = Eval.eval db e in
      Alcotest.(check bool) (Printf.sprintf "bag-equal: %s" src) true
        (Relation.equal fast slow))
    [
      "sys.statements";
      "select[%4 >= 2](sys.statements)";
      "project[%1, %3, %4](sys.statements)";
      "unique(project[%3](sys.statements))";
      "groupby[%3; CNT(%1), SUM(%4)](sys.statements)";
      "sys.relations";
      "join[%1 = %1](sys.relations, sys.relations)";
      "product(sys.pool, sys.relations)";
      "sys.operators";
      "sys.locks";
      "sys.series";
      "sys.ash";
      "select[%4 = 'lock'](sys.ash)";
      "unique(project[%4](sys.ash))";
      "groupby[%4; CNT(%2)](sys.ash)";
      "sys.progress";
      "project[%1, %5, %7](sys.progress)";
      "select[%11 = 'lock'](sys.progress)";
      "join[%1 = %3](project[%2, %3](sys.ash), project[%1, %2](sys.progress))";
    ]

let test_sql_end_to_end () =
  seed_registry ();
  let env = Syscat.env beer in
  let translated =
    Sql.Translate.query_of_string env
      "SELECT fingerprint, calls FROM sys.statements WHERE calls >= 2"
  in
  let db = Syscat.attach_for beer translated in
  let r = run_exec db translated in
  Alcotest.(check int) "sql reaches the catalog" 1 (Relation.cardinal r);
  Alcotest.(check bool) "matches the reference evaluator" true
    (Relation.equal r (Eval.eval db translated));
  (* Qualified columns resolve through the dotted table name. *)
  let qualified =
    Sql.Translate.query_of_string env
      "SELECT sys.relations.name FROM sys.relations"
  in
  Alcotest.(check int) "qualified projection" 2
    (Relation.cardinal (run_exec (Syscat.attach beer) qualified))

let test_unknown_sys_name () =
  seed_registry ();
  let db = Syscat.attach beer in
  (* Absent sys.* names stay ordinary missing names — no special
     registry error leaks out of any layer.  The typechecking path
     (optimizer) reports it like any unknown name... *)
  (match run_exec db (Expr.rel "sys.nonsense") with
  | _ -> Alcotest.fail "expected Type_error"
  | exception Typecheck.Type_error msg ->
      Alcotest.(check string) "ordinary typecheck message"
        "unknown relation sys.nonsense" msg);
  (* ...exactly the message an unknown plain name gets... *)
  (match run_exec db (Expr.rel "nosuch") with
  | _ -> Alcotest.fail "expected Type_error"
  | exception Typecheck.Type_error msg ->
      Alcotest.(check string) "same shape as a plain unknown name"
        "unknown relation nosuch" msg);
  (* ...and below the typechecker, the catalog lookup raises the plain
     database exception, not anything registry-specific. *)
  match Database.find "sys.nonsense" db with
  | _ -> Alcotest.fail "expected Unknown_relation"
  | exception Database.Unknown_relation name ->
      Alcotest.(check string) "the plain exception" "sys.nonsense" name

let test_reserved_names () =
  Alcotest.(check bool) "is_sys_name" true (Syscat.is_sys_name "sys.locks");
  Alcotest.(check bool) "prefix only" false (Syscat.is_sys_name "system");
  (match Syscat.check_not_reserved "sys.anything" with
  | () -> Alcotest.fail "expected Reserved"
  | exception Syscat.Reserved name ->
      Alcotest.(check string) "named" "sys.anything" name);
  Syscat.check_not_reserved "beer" (* and plain names pass *)

let test_ash_catalog () =
  seed_registry ();
  let slots = seed_ash () in
  let db = Syscat.attach beer in
  (* sys.ash: the fsync event plus one sample per live session. *)
  let ash = run_exec db (xra "sys.ash") in
  Alcotest.(check int) "event + two samples" 3 (Relation.cardinal ash);
  Alcotest.(check int) "one fsync event" 1
    (Relation.cardinal
       (run_exec db (xra "select[%4 = 'io.fsync' and %7 = 'event'](sys.ash)")));
  Alcotest.(check int) "blocked session sampled as lock on beer" 1
    (Relation.cardinal
       (run_exec db (xra "select[%4 = 'lock' and %5 = 'beer'](sys.ash)")));
  Alcotest.(check int) "running session sampled as cpu.exec" 1
    (Relation.cardinal
       (run_exec db (xra "select[%4 = 'cpu.exec' and %2 = 'q-run'](sys.ash)")));
  (* sys.progress: both live sessions, with the counters the running
     one advanced. *)
  let prog = run_exec db (xra "sys.progress") in
  Alcotest.(check int) "two live sessions" 2 (Relation.cardinal prog);
  (match
     Relation.to_list (run_exec db (xra "select[%1 = 'q-run'](sys.progress)"))
   with
  | [ t ] ->
      Alcotest.(check bool) "operator" true
        (Tuple.attr t 5 = Value.Str "seq_scan");
      Alcotest.(check bool) "rows" true (Tuple.attr t 7 = Value.Int 4);
      Alcotest.(check bool) "pct = 40%" true
        (Tuple.attr t 9 = Value.Float 40.0);
      Alcotest.(check bool) "running = cpu.exec" true
        (Tuple.attr t 11 = Value.Str "cpu.exec")
  | l -> Alcotest.failf "expected the running session, got %d rows"
           (List.length l));
  (* Finished sessions leave sys.progress: a fresh attach sees the new
     registry state... *)
  finish_ash slots;
  ignore (Obs.Ash.sample_now ());
  let db' = Syscat.attach beer in
  Alcotest.(check int) "progress empty after finish" 0
    (Relation.cardinal (run_exec db' (xra "sys.progress")));
  (* ...while the frozen first attachment still serves the old rows. *)
  Alcotest.(check int) "first snapshot unchanged" 2
    (Relation.cardinal (run_exec db (xra "sys.progress")))

let test_operators_populated () =
  seed_registry ();
  (* An instrumented execution feeds sys.operators. *)
  let e = xra "select[%3 > 5.0](beer)" in
  let plan = Mxra_engine.Planner.plan beer e in
  ignore (Mxra_engine.Exec.run_instrumented beer plan);
  let db = Syscat.attach beer in
  let r = run_exec db (xra "sys.operators") in
  Alcotest.(check bool) "operator rows present" true (Relation.cardinal r > 0)

let suite =
  ( "syscat",
    [
      Alcotest.test_case "attach serves sys.* as bag relations" `Quick
        test_attach_and_query;
      Alcotest.test_case "attach snapshots the registry" `Quick
        test_snapshot_semantics;
      Alcotest.test_case "sys.relations describes the base catalog" `Quick
        test_relations_catalog;
      Alcotest.test_case "catalog scans: Exec bag-equal to Eval" `Quick
        test_differential_exec_vs_eval;
      Alcotest.test_case "sql reaches the catalog end to end" `Quick
        test_sql_end_to_end;
      Alcotest.test_case "unknown sys.* name raises Unknown_relation" `Quick
        test_unknown_sys_name;
      Alcotest.test_case "reserved names are refused" `Quick
        test_reserved_names;
      Alcotest.test_case "sys.ash and sys.progress serve the live registry"
        `Quick test_ash_catalog;
      Alcotest.test_case "instrumented runs feed sys.operators" `Quick
        test_operators_populated;
    ] )
