(* Entry point: one alcotest binary running every suite. *)

let () =
  Alcotest.run "mxra"
    [
      Test_multiset.suite;
      Test_relational.suite;
      Test_eval.suite;
      Test_typecheck.suite;
      Test_equiv.suite;
      Test_engine.suite;
      Test_optimizer.suite;
      Test_xra.suite;
      Test_sql.suite;
      Test_ext.suite;
      Test_ext2.suite;
      Test_parallel.suite;
      Test_model.suite;
      Test_workload.suite;
      Test_storage.suite;
      Test_torture.suite;
      Test_concurrency.suite;
      Test_mvcc.suite;
      Test_language.suite;
      Test_obs.suite;
      Test_syscat.suite;
      Test_index.suite;
    ]
