(* Property tests for real-multicore execution: every pooled parallel
   operator — and every Exchange-wrapped physical plan — computes the
   same bag as the sequential reference evaluator, for random inputs
   and every fragment count in 1..8.  These are the distribution laws
   of Theorem 3.2 exercised on actual worker domains rather than on a
   simulated machine. *)

open Mxra_relational
open Mxra_core
module Engine = Mxra_engine
module W = Mxra_workload
module Parallel = Mxra_ext.Parallel
module Pool = Mxra_ext.Pool

(* One shared pool for the whole suite — a per-iteration pool would
   spawn thousands of domains across the qcheck runs. *)
let () = Pool.set_default_size 4

let seed_and_parts = QCheck.(pair small_nat (int_range 1 8))

(* Integer columns keep the partial-aggregate arithmetic exact (sums of
   small ints are exact in float far past these sizes), so strict
   [Relation.equal] is the right check even for SUM and AVG. *)
let random_bag seed =
  let rng = W.Rng.make (seed + 1) in
  W.Synth.two_column_int ~rng
    ~size:(40 + (seed mod 60))
    ~distinct:(1 + (seed mod 12))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:100 seed_and_parts f)

let par_select_matches =
  prop "pooled σ = Eval.select" (fun (seed, parts) ->
      let r = random_bag seed in
      let p = Pred.lt (Scalar.attr 1) (Scalar.int 6) in
      Relation.equal (Eval.select p r)
        (Parallel.par_select ~parts p r).Parallel.result)

let par_project_matches =
  prop "pooled π = Eval.project" (fun (seed, parts) ->
      let r = random_bag seed in
      let exprs = [ Scalar.add (Scalar.attr 1) (Scalar.attr 2); Scalar.attr 1 ] in
      Relation.equal (Eval.project exprs r)
        (Parallel.par_project ~parts exprs r).Parallel.result)

let par_join_matches =
  prop "pooled co-partitioned ⋈ = Eval.join" (fun (seed, parts) ->
      let rng = W.Rng.make (seed + 1) in
      let left, right = W.Synth.join_pair ~rng ~left:50 ~right:30 ~key_range:8 in
      let cond = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
      Relation.equal (Eval.join cond left right)
        (Parallel.par_join ~parts ~left_keys:[ 1 ] ~right_keys:[ 1 ] left right)
          .Parallel.result)

let par_join_multi_key_matches =
  prop "pooled ⋈ on two key attributes = Eval.join" (fun (seed, parts) ->
      let r = random_bag seed in
      let cond =
        Pred.And
          (Pred.eq (Scalar.attr 1) (Scalar.attr 3),
           Pred.eq (Scalar.attr 2) (Scalar.attr 4))
      in
      Relation.equal (Eval.join cond r r)
        (Parallel.par_join ~parts ~left_keys:[ 1; 2 ] ~right_keys:[ 1; 2 ] r r)
          .Parallel.result)

let par_group_by_matches =
  prop "pooled Γ on keys = Eval.group_by" (fun (seed, parts) ->
      let r = random_bag seed in
      let attrs = [ 1 ] and aggs = [ (Aggregate.Sum, 2); (Aggregate.Cnt, 1) ] in
      Relation.equal (Eval.group_by attrs aggs r)
        (Parallel.par_group_by ~parts ~attrs ~aggs r).Parallel.result)

let par_group_by_multi_attr_matches =
  prop "pooled Γ on two attributes = Eval.group_by" (fun (seed, parts) ->
      let r = random_bag seed in
      let attrs = [ 1; 2 ] and aggs = [ (Aggregate.Cnt, 1) ] in
      Relation.equal (Eval.group_by attrs aggs r)
        (Parallel.par_group_by ~parts ~attrs ~aggs r).Parallel.result)

let par_global_aggregate_matches =
  prop "pooled global aggregate = Eval.group_by []" (fun (seed, parts) ->
      let r = random_bag seed in
      let aggs =
        [
          (Aggregate.Cnt, 1);
          (Aggregate.Sum, 2);
          (Aggregate.Avg, 2);
          (Aggregate.Min, 1);
          (Aggregate.Max, 2);
        ]
      in
      Relation.equal (Eval.group_by [] aggs r)
        (Parallel.par_group_by ~parts ~attrs:[] ~aggs r).Parallel.result)

(* The engine path: plan a query, force Exchange above every eligible
   operator (threshold 0), and compare the executed bag against the
   reference evaluator — join, grouped Γ and global aggregate shapes. *)
let exchange_plans_match =
  let queries r_bag =
    let join =
      Expr.join
        (Pred.eq (Scalar.attr 1) (Scalar.attr 3))
        (Expr.rel "a") (Expr.rel "b")
    in
    [
      Expr.select (Pred.lt (Scalar.attr 2) (Scalar.int 8)) (Expr.rel "a");
      Expr.project_attrs [ 2 ] (Expr.rel "a");
      join;
      Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] join;
      Expr.group_by []
        [ (Aggregate.Cnt, 1); (Aggregate.Sum, 2); (Aggregate.Avg, 2) ]
        (Expr.rel "a");
      Expr.group_by [] [ (Aggregate.Min, 1); (Aggregate.Max, 2) ] r_bag;
    ]
  in
  prop "Exchange plans = Eval (threshold 0)" (fun (seed, parts) ->
      let rng = W.Rng.make (seed + 1) in
      let a = random_bag seed in
      let b, _ = W.Synth.join_pair ~rng ~left:30 ~right:10 ~key_range:6 in
      let db = Database.of_relations [ ("a", a); ("b", b) ] in
      let stats = Engine.Stats.env_of_database db in
      let schemas = Typecheck.env_of_database db in
      List.for_all
        (fun e ->
          let plan =
            Engine.Planner.parallelize ~stats ~schemas ~jobs:parts ~threshold:0
              (Engine.Planner.plan db e)
          in
          Relation.equal (Eval.eval db e) (Engine.Exec.run db plan))
        (queries (Expr.Const a)))

let suite =
  ( "parallel",
    [
      par_select_matches;
      par_project_matches;
      par_join_matches;
      par_join_multi_key_matches;
      par_group_by_matches;
      par_group_by_multi_attr_matches;
      par_global_aggregate_matches;
      exchange_plans_match;
    ] )
