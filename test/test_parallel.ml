(* Property tests for real-multicore execution: every pooled parallel
   operator — and every Exchange-wrapped physical plan — computes the
   same bag as the sequential reference evaluator, for random inputs
   and every fragment count in 1..8.  These are the distribution laws
   of Theorem 3.2 exercised on actual worker domains rather than on a
   simulated machine. *)

open Mxra_relational
open Mxra_core
module Engine = Mxra_engine
module W = Mxra_workload
module Parallel = Mxra_ext.Parallel
module Pool = Mxra_ext.Pool

(* One shared pool for the whole suite — a per-iteration pool would
   spawn thousands of domains across the qcheck runs. *)
let () = Pool.set_default_size 4

let seed_and_parts = QCheck.(pair small_nat (int_range 1 8))

(* Integer columns keep the partial-aggregate arithmetic exact (sums of
   small ints are exact in float far past these sizes), so strict
   [Relation.equal] is the right check even for SUM and AVG. *)
let random_bag seed =
  let rng = W.Rng.make (seed + 1) in
  W.Synth.two_column_int ~rng
    ~size:(40 + (seed mod 60))
    ~distinct:(1 + (seed mod 12))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:100 seed_and_parts f)

let par_select_matches =
  prop "pooled σ = Eval.select" (fun (seed, parts) ->
      let r = random_bag seed in
      let p = Pred.lt (Scalar.attr 1) (Scalar.int 6) in
      Relation.equal (Eval.select p r)
        (Parallel.par_select ~parts p r).Parallel.result)

let par_project_matches =
  prop "pooled π = Eval.project" (fun (seed, parts) ->
      let r = random_bag seed in
      let exprs = [ Scalar.add (Scalar.attr 1) (Scalar.attr 2); Scalar.attr 1 ] in
      Relation.equal (Eval.project exprs r)
        (Parallel.par_project ~parts exprs r).Parallel.result)

let par_join_matches =
  prop "pooled co-partitioned ⋈ = Eval.join" (fun (seed, parts) ->
      let rng = W.Rng.make (seed + 1) in
      let left, right = W.Synth.join_pair ~rng ~left:50 ~right:30 ~key_range:8 in
      let cond = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
      Relation.equal (Eval.join cond left right)
        (Parallel.par_join ~parts ~left_keys:[ 1 ] ~right_keys:[ 1 ] left right)
          .Parallel.result)

let par_join_multi_key_matches =
  prop "pooled ⋈ on two key attributes = Eval.join" (fun (seed, parts) ->
      let r = random_bag seed in
      let cond =
        Pred.And
          (Pred.eq (Scalar.attr 1) (Scalar.attr 3),
           Pred.eq (Scalar.attr 2) (Scalar.attr 4))
      in
      Relation.equal (Eval.join cond r r)
        (Parallel.par_join ~parts ~left_keys:[ 1; 2 ] ~right_keys:[ 1; 2 ] r r)
          .Parallel.result)

let par_group_by_matches =
  prop "pooled Γ on keys = Eval.group_by" (fun (seed, parts) ->
      let r = random_bag seed in
      let attrs = [ 1 ] and aggs = [ (Aggregate.Sum, 2); (Aggregate.Cnt, 1) ] in
      Relation.equal (Eval.group_by attrs aggs r)
        (Parallel.par_group_by ~parts ~attrs ~aggs r).Parallel.result)

let par_group_by_multi_attr_matches =
  prop "pooled Γ on two attributes = Eval.group_by" (fun (seed, parts) ->
      let r = random_bag seed in
      let attrs = [ 1; 2 ] and aggs = [ (Aggregate.Cnt, 1) ] in
      Relation.equal (Eval.group_by attrs aggs r)
        (Parallel.par_group_by ~parts ~attrs ~aggs r).Parallel.result)

let par_global_aggregate_matches =
  prop "pooled global aggregate = Eval.group_by []" (fun (seed, parts) ->
      let r = random_bag seed in
      let aggs =
        [
          (Aggregate.Cnt, 1);
          (Aggregate.Sum, 2);
          (Aggregate.Avg, 2);
          (Aggregate.Min, 1);
          (Aggregate.Max, 2);
        ]
      in
      Relation.equal (Eval.group_by [] aggs r)
        (Parallel.par_group_by ~parts ~attrs:[] ~aggs r).Parallel.result)

(* The engine path: plan a query, force Exchange above every eligible
   operator (threshold 0), and compare the executed bag against the
   reference evaluator — join, grouped Γ and global aggregate shapes. *)
let exchange_plans_match =
  let queries r_bag =
    let join =
      Expr.join
        (Pred.eq (Scalar.attr 1) (Scalar.attr 3))
        (Expr.rel "a") (Expr.rel "b")
    in
    [
      Expr.select (Pred.lt (Scalar.attr 2) (Scalar.int 8)) (Expr.rel "a");
      Expr.project_attrs [ 2 ] (Expr.rel "a");
      join;
      Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] join;
      Expr.group_by []
        [ (Aggregate.Cnt, 1); (Aggregate.Sum, 2); (Aggregate.Avg, 2) ]
        (Expr.rel "a");
      Expr.group_by [] [ (Aggregate.Min, 1); (Aggregate.Max, 2) ] r_bag;
    ]
  in
  prop "Exchange plans = Eval (threshold 0)" (fun (seed, parts) ->
      let rng = W.Rng.make (seed + 1) in
      let a = random_bag seed in
      let b, _ = W.Synth.join_pair ~rng ~left:30 ~right:10 ~key_range:6 in
      let db = Database.of_relations [ ("a", a); ("b", b) ] in
      let stats = Engine.Stats.env_of_database db in
      let schemas = Typecheck.env_of_database db in
      List.for_all
        (fun e ->
          (* [cores:parts] because the planner's 1-core guard would
             otherwise (correctly) refuse to insert Exchange on a
             single-core test host. *)
          let plan =
            Engine.Planner.parallelize ~stats ~schemas ~jobs:parts ~cores:parts
              ~threshold:0
              (Engine.Planner.plan db e)
          in
          Relation.equal (Eval.eval db e) (Engine.Exec.run db plan))
        (queries (Expr.Const a)))

(* --- chunked execution: the differential harness ----------------------- *)

(* The tentpole contract: chunked execution is bag-equal to the
   reference evaluator for {e every} physical operator, at every chunk
   size in {1, 7, 64, 1024} (degenerate, ragged, nursery-sized, beyond
   the minor-heap limit) and every fragment count in {1, 2, 4}. *)

let chunk_sizes = [ 1; 7; 64; 1024 ]
let jobs_list = [ 1; 2; 4 ]

let diff_db seed =
  let rng = W.Rng.make (seed + 1) in
  let a = random_bag seed in
  let b, c = W.Synth.join_pair ~rng ~left:30 ~right:20 ~key_range:6 in
  (a, Database.of_relations [ ("a", a); ("b", b); ("c", c) ])

(* One expression per physical operator (the planner maps the join to
   Hash_join or Merge_join depending on [join_algorithm], the non-equi
   join to Nested_loop); [operator_coverage] below pins that this list
   really does reach every constructor. *)
let operator_exprs a =
  let eq13 = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let j = Expr.join eq13 (Expr.rel "b") (Expr.rel "c") in
  [
    Expr.Const a;
    Expr.rel "a";
    Expr.select (Pred.lt (Scalar.attr 2) (Scalar.int 6)) (Expr.rel "a");
    Expr.project [ Scalar.add (Scalar.attr 1) (Scalar.attr 2) ] (Expr.rel "a");
    j;
    Expr.join (Pred.lt (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "b")
      (Expr.rel "c");
    Expr.product (Expr.rel "a") (Expr.rel "c");
    Expr.union (Expr.rel "a") (Expr.rel "a");
    Expr.diff (Expr.rel "a") (Expr.rel "b");
    Expr.intersect (Expr.rel "a") (Expr.rel "b");
    Expr.unique (Expr.rel "a");
    Expr.group_by [ 1 ] [ (Aggregate.Sum, 2); (Aggregate.Cnt, 1) ] j;
    Expr.group_by []
      [ (Aggregate.Cnt, 1); (Aggregate.Sum, 2); (Aggregate.Avg, 2) ]
      (Expr.rel "a");
  ]

let all_plans ~jobs db e =
  List.map
    (fun join_algorithm ->
      (* [cores:jobs] so the plan shape is host-independent; threshold 0
         forces Exchange above every eligible operator when jobs > 1. *)
      Engine.Planner.plan ~join_algorithm ~jobs ~cores:jobs
        ~parallel_threshold:0 db e)
    [ Engine.Planner.Hash; Engine.Planner.Merge ]

let test_operator_coverage () =
  let a, db = diff_db 0 in
  let rec kinds plan acc =
    List.fold_left
      (fun acc child -> kinds child acc)
      (Engine.Physical.kind plan :: acc)
      (Engine.Physical.children plan)
  in
  let reached =
    List.concat_map
      (fun e -> List.concat_map (fun p -> kinds p []) (all_plans ~jobs:4 db e))
      (operator_exprs a)
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("differential harness reaches " ^ k)
        true (List.mem k reached))
    [
      "ConstScan"; "SeqScan"; "Filter"; "Project"; "HashJoin"; "MergeJoin";
      "NestedLoop"; "CrossProduct"; "UnionAll"; "HashDiff"; "HashIntersect";
      "HashDistinct"; "HashAggregate"; "Exchange";
    ]

let chunked_operators_match_eval =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"chunked exec = Eval, all operators × chunk sizes × jobs"
       ~count:25 QCheck.small_nat (fun seed ->
         let a, db = diff_db seed in
         List.for_all
           (fun e ->
             let expected = Eval.eval db e in
             List.for_all
               (fun jobs ->
                 List.for_all
                   (fun plan ->
                     List.for_all
                       (fun chunk_size ->
                         Relation.equal expected
                           (Engine.Exec.run ~chunk_size db plan))
                       chunk_sizes)
                   (all_plans ~jobs db e))
               jobs_list)
           (operator_exprs a)))

(* Metamorphic: beyond matching Eval, every (chunk size, jobs) pair must
   agree with every other — on random well-typed expressions, so shapes
   the hand-written operator list misses are covered too. *)
let metamorphic_chunk_jobs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"identical results across all (chunk, jobs) pairs"
       ~count:40 QCheck.small_nat (fun seed ->
         let scen = W.Gen_expr.scenario ~seed ~depth:4 in
         let db = scen.W.Gen_expr.db in
         match
           List.concat_map
             (fun jobs ->
               let plan =
                 Engine.Planner.plan ~jobs ~cores:jobs ~parallel_threshold:0 db
                   scen.W.Gen_expr.expr
               in
               List.map
                 (fun chunk_size -> Engine.Exec.run ~chunk_size db plan)
                 chunk_sizes)
             jobs_list
         with
         | [] -> true
         | r0 :: rest -> List.for_all (Relation.equal r0) rest
         | exception Aggregate.Undefined _ -> true))

(* --- chunk-boundary edge cases ----------------------------------------- *)

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]
let kv a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let check_chunked_equals_eval name db e =
  let expected = Eval.eval db e in
  List.iter
    (fun chunk_size ->
      List.iter
        (fun jobs ->
          List.iter
            (fun plan ->
              Alcotest.(check bool)
                (Printf.sprintf "%s (chunk=%d, jobs=%d)" name chunk_size jobs)
                true
                (Relation.equal expected (Engine.Exec.run ~chunk_size db plan)))
            (all_plans ~jobs db e))
        jobs_list)
    (chunk_sizes @ [ Engine.Exec.default_chunk_size ])

let test_chunk_boundary_empty () =
  let db =
    Database.of_relations
      [
        ("a", Relation.empty s_kv);
        ("b", Relation.empty s_kv);
        ("c", Relation.of_counted_list s_kv [ (kv 1 1, 2) ]);
      ]
  in
  List.iter
    (fun (name, e) -> check_chunked_equals_eval name db e)
    [
      ("σ over empty", Expr.select (Pred.lt (Scalar.attr 1) (Scalar.int 3)) (Expr.rel "a"));
      ("empty ⋈ non-empty", Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a") (Expr.rel "c"));
      ("non-empty − all", Expr.diff (Expr.rel "c") (Expr.rel "c"));
      ("Γ keys over empty", Expr.group_by [ 1 ] [ (Aggregate.Cnt, 1) ] (Expr.rel "a"));
    ]

let test_chunk_boundary_exact_multiple () =
  (* Cardinality an exact multiple of the chunk size: 510 = 2 × 255
     distinct rows, so the final chunk is exactly full and no ragged
     tail chunk exists (the lazy chunker must still terminate cleanly,
     not emit a trailing empty chunk). *)
  let rows = List.init 510 (fun i -> (kv (i mod 17) i, 1)) in
  let db = Database.of_relations [ ("a", Relation.of_counted_list s_kv rows) ] in
  List.iter
    (fun (name, e) -> check_chunked_equals_eval name db e)
    [
      ("σ at exact multiple", Expr.select (Pred.lt (Scalar.attr 1) (Scalar.int 9)) (Expr.rel "a"));
      ("δ at exact multiple", Expr.unique (Expr.project_attrs [ 1 ] (Expr.rel "a")));
      ("Γ at exact multiple", Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] (Expr.rel "a"));
    ];
  (* ... and with the chunk size equal to the whole cardinality, and to
     exact divisors, the same plans must still agree. *)
  let e = Expr.group_by [ 1 ] [ (Aggregate.Cnt, 1) ] (Expr.rel "a") in
  let expected = Eval.eval db e in
  List.iter
    (fun chunk_size ->
      Alcotest.(check bool)
        (Printf.sprintf "divisor chunk %d" chunk_size)
        true
        (Relation.equal expected
           (Engine.Exec.run ~chunk_size db
              (Engine.Planner.plan db e))))
    [ 2; 3; 5; 6; 10; 17; 30; 51; 85; 102; 170; 255; 510 ]

let test_chunk_boundary_duplicates () =
  (* Duplicate-heavy bags: multiplicities well past any chunk size, and
     a ⊎-chain whose equal tuples arrive in different chunks — at chunk
     size 1, every counted element is its own chunk, so merging equal
     tuples across chunk boundaries is fully exercised. *)
  let heavy =
    Relation.of_counted_list s_kv
      [ (kv 1 1, 1000); (kv 2 2, 997); (kv 3 3, 1) ]
  in
  let db = Database.of_relations [ ("a", heavy) ] in
  let chain =
    Expr.union (Expr.rel "a") (Expr.union (Expr.rel "a") (Expr.rel "a"))
  in
  List.iter
    (fun (name, e) -> check_chunked_equals_eval name db e)
    [
      ("δ over multiplicity 1000", Expr.unique (Expr.rel "a"));
      ("Γ over multiplicity 1000", Expr.group_by [ 1 ] [ (Aggregate.Cnt, 1); (Aggregate.Sum, 2) ] (Expr.rel "a"));
      ("⊎-chain of duplicates", chain);
      ("δ over ⊎-chain", Expr.unique chain);
      ("self-⋈ of duplicates", Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a") (Expr.rel "a"));
      ("3·bag − 2·bag", Expr.diff chain (Expr.union (Expr.rel "a") (Expr.rel "a")));
    ]

(* --- the adaptive planner's 1-core guarantee --------------------------- *)

let test_one_core_never_exchanges () =
  let a, db = diff_db 3 in
  let exprs = operator_exprs a in
  (* jobs=4 on a 1-core host: every plan must be purely sequential, even
     with the profitability floor forced to zero. *)
  List.iter
    (fun e ->
      let plan = Engine.Planner.plan ~jobs:4 ~cores:1 ~parallel_threshold:0 db e in
      Alcotest.(check int)
        ("no Exchange on one core: " ^ Expr.to_string e)
        0
        (Engine.Physical.exchange_count plan))
    exprs;
  (* Sanity: the same request on a 4-core host does parallelize. *)
  let some_exchange =
    List.exists
      (fun e ->
        Engine.Physical.exchange_count
          (Engine.Planner.plan ~jobs:4 ~cores:4 ~parallel_threshold:0 db e)
        > 0)
      exprs
  in
  Alcotest.(check bool) "four cores do parallelize" true some_exchange;
  (* And parallelize itself honours the guard, not just plan. *)
  let stats = Engine.Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in
  let seq = Engine.Planner.plan db (List.nth exprs 4) in
  Alcotest.(check int) "parallelize is the identity on one core" 0
    (Engine.Physical.exchange_count
       (Engine.Planner.parallelize ~stats ~schemas ~jobs:8 ~cores:1
          ~threshold:0 seq))

let test_feedback_bar () =
  Parallel.Feedback.reset ();
  Alcotest.(check (option int)) "no observations, no bar" None
    (Parallel.Feedback.min_profitable_rows ());
  (* A loss at 1000 rows: only inputs past 2000 are worth trying. *)
  Parallel.Feedback.note ~rows:1000 ~parts:4 ~gain_ms:(-2.0);
  Alcotest.(check (option int)) "loss doubles the bar" (Some 2000)
    (Parallel.Feedback.min_profitable_rows ());
  (* A win at 5000 rows cannot lower the bar below the observed loss
     region's ceiling... *)
  Parallel.Feedback.note ~rows:5000 ~parts:4 ~gain_ms:1.5;
  Alcotest.(check (option int)) "win above the bar keeps it" (Some 2000)
    (Parallel.Feedback.min_profitable_rows ());
  (* ...but a win at a smaller size pulls it down. *)
  Parallel.Feedback.note ~rows:800 ~parts:2 ~gain_ms:0.5;
  Alcotest.(check (option int)) "smaller win lowers the bar" (Some 800)
    (Parallel.Feedback.min_profitable_rows ());
  Alcotest.(check int) "observations counted" 3
    (Parallel.Feedback.observations ());
  (* Zero-row reports are noise and must be ignored. *)
  Parallel.Feedback.note ~rows:0 ~parts:2 ~gain_ms:(-1.0);
  Alcotest.(check (option int)) "zero rows ignored" (Some 800)
    (Parallel.Feedback.min_profitable_rows ());
  Parallel.Feedback.reset ();
  Alcotest.(check (option int)) "reset clears the bar" None
    (Parallel.Feedback.min_profitable_rows ());
  Alcotest.(check int) "reset clears the count" 0
    (Parallel.Feedback.observations ())

let suite =
  ( "parallel",
    [
      par_select_matches;
      par_project_matches;
      par_join_matches;
      par_join_multi_key_matches;
      par_group_by_matches;
      par_group_by_multi_attr_matches;
      par_global_aggregate_matches;
      exchange_plans_match;
      Alcotest.test_case "differential harness reaches every operator" `Quick
        test_operator_coverage;
      chunked_operators_match_eval;
      metamorphic_chunk_jobs;
      Alcotest.test_case "chunk boundaries: empty inputs" `Quick
        test_chunk_boundary_empty;
      Alcotest.test_case "chunk boundaries: exact multiples" `Quick
        test_chunk_boundary_exact_multiple;
      Alcotest.test_case "chunk boundaries: duplicate-heavy bags" `Quick
        test_chunk_boundary_duplicates;
      Alcotest.test_case "adaptive planner: one core, no Exchange" `Quick
        test_one_core_never_exchanges;
      Alcotest.test_case "Exchange feedback bar" `Quick test_feedback_bar;
    ] )
