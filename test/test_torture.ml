(* Crash-recovery torture: the prefix-consistency oracle over the
   fault-injecting VFS.  Tier-1 runs a bounded sweep (every crash point
   of a small workload, plus a sampled sweep of a larger one); CI runs
   the bigger fixed-seed sweep through `bagdb torture`. *)

open Mxra_storage

let check_ok name cfg =
  match Torture.run cfg with
  | Ok r ->
      Alcotest.(check bool)
        (name ^ ": crash points exercised")
        true (r.Torture.crashes > 0);
      Alcotest.(check int)
        (name ^ ": every crash recovered")
        r.Torture.crashes r.Torture.recoveries
  | Error f ->
      Alcotest.fail
        (Printf.sprintf "%s: crash point %d (seed %d): %s" name
           f.Torture.crash_point f.Torture.fail_seed f.Torture.detail)

(* Every reachable crash point of a small workload — exhaustive, the
   strongest statement the suite makes. *)
let test_exhaustive_small () =
  check_ok "exhaustive"
    {
      Torture.default with
      Torture.txns = 25;
      Torture.checkpoint_every = 6;
      Torture.crash_points = 0;
    }

(* A larger workload, sampled: checkpoints, retries and long replays. *)
let test_sampled_larger () =
  check_ok "sampled"
    {
      Torture.default with
      Torture.txns = 120;
      Torture.checkpoint_every = 20;
      Torture.crash_points = 60;
    }

(* Checkpoint-free: recovery is pure log replay from the baseline. *)
let test_no_checkpoints () =
  check_ok "no checkpoints"
    {
      Torture.default with
      Torture.txns = 20;
      Torture.checkpoint_every = 0;
      Torture.crash_points = 0;
    }

(* Different seeds shift the workload, the crash alignment and the torn
   tails; a couple of extras guard against a lucky default. *)
let test_other_seeds () =
  List.iter
    (fun seed ->
      check_ok
        (Printf.sprintf "seed %d" seed)
        {
          Torture.default with
          Torture.txns = 15;
          Torture.seed = seed;
          Torture.checkpoint_every = 4;
        })
    [ 1; 1994 ]

(* Group commit: batches share one WAL append + fsync, so a crash can
   tear the batch's single payload anywhere — the oracle then demands a
   leading prefix of the group's commit order at transaction
   granularity, never a subset.  Exhaustive over every syscall of a
   small workload. *)
let test_group_commit_exhaustive () =
  check_ok "group commit exhaustive"
    {
      Torture.default with
      Torture.txns = 24;
      Torture.checkpoint_every = 7;
      Torture.crash_points = 0;
      Torture.group_commit = 4;
    }

(* Bigger groups over a checkpoint-free log: the torn tail can cut a
   long multi-record payload at any record boundary or mid-record. *)
let test_group_commit_large_groups () =
  check_ok "large groups"
    {
      Torture.default with
      Torture.txns = 30;
      Torture.checkpoint_every = 0;
      Torture.crash_points = 0;
      Torture.group_commit = 8;
    }

(* Seed sweep with grouping on: shifts group sizes, crash alignment and
   checkpoint interleaving at once. *)
let test_group_commit_seeds () =
  List.iter
    (fun seed ->
      check_ok
        (Printf.sprintf "group seed %d" seed)
        {
          Torture.default with
          Torture.txns = 16;
          Torture.seed = seed;
          Torture.checkpoint_every = 5;
          Torture.group_commit = 3;
        })
    [ 2; 1994 ]

(* Transient faults against grouped appends: a short write or failed
   sync of the multi-record payload must be absorbed by the same
   truncate-and-retry path, never acknowledged half-durable. *)
let test_group_commit_transients () =
  match
    Torture.run
      {
        Torture.default with
        Torture.txns = 40;
        Torture.crash_points = 1;
        Torture.fail_every = 5;
        Torture.group_commit = 4;
      }
  with
  | Ok r ->
      Alcotest.(check bool) "transients absorbed under grouping" true
        (r.Torture.transients > 0)
  | Error f -> Alcotest.fail f.Torture.detail

(* The transient-fault sweep alone, at a cadence that hammers the retry
   path hard (but stays off the retry cycle's own period, see
   test_storage). *)
let test_transients_only () =
  match
    Torture.run
      {
        Torture.default with
        Torture.txns = 40;
        Torture.crash_points = 1;
        Torture.fail_every = 5;
      }
  with
  | Ok r ->
      Alcotest.(check bool) "transient faults injected and absorbed" true
        (r.Torture.transients > 0)
  | Error f -> Alcotest.fail f.Torture.detail

let suite =
  ( "torture",
    [
      Alcotest.test_case "exhaustive small sweep" `Quick test_exhaustive_small;
      Alcotest.test_case "sampled larger sweep" `Quick test_sampled_larger;
      Alcotest.test_case "no checkpoints" `Quick test_no_checkpoints;
      Alcotest.test_case "other seeds" `Quick test_other_seeds;
      Alcotest.test_case "group commit exhaustive sweep" `Quick
        test_group_commit_exhaustive;
      Alcotest.test_case "group commit large groups" `Quick
        test_group_commit_large_groups;
      Alcotest.test_case "group commit seeds" `Quick test_group_commit_seeds;
      Alcotest.test_case "group commit transients" `Quick
        test_group_commit_transients;
      Alcotest.test_case "transients only" `Quick test_transients_only;
    ] )
