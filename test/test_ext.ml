(* Extension tests: transitive closure (naive vs semi-naive agreement,
   cycles, reachability) and the simulated parallel operators'
   partition/merge laws. *)

open Mxra_relational
open Mxra_core
open Mxra_ext
module W = Mxra_workload

let edge_schema = Schema.of_list [ ("src", Domain.DInt); ("dst", Domain.DInt) ]
let edge a b = Tuple.of_list [ Value.Int a; Value.Int b ]
let graph edges = Relation.of_list edge_schema (List.map (fun (a, b) -> edge a b) edges)

(* --- closure -------------------------------------------------------------- *)

let test_closure_chain () =
  let r = Closure.closure (graph [ (1, 2); (2, 3); (3, 4) ]) in
  Alcotest.(check int) "all 6 pairs" 6 (Relation.cardinal r);
  Alcotest.(check int) "transitive pair" 1 (Relation.multiplicity (edge 1 4) r);
  Alcotest.(check int) "no reverse pair" 0 (Relation.multiplicity (edge 4 1) r)

let test_closure_cycle_terminates () =
  let r = Closure.closure (graph [ (1, 2); (2, 3); (3, 1) ]) in
  (* On a 3-cycle every ordered pair including self-loops is reachable. *)
  Alcotest.(check int) "9 pairs on a 3-cycle" 9 (Relation.cardinal r);
  Alcotest.(check int) "self loop derived" 1 (Relation.multiplicity (edge 1 1) r)

let test_closure_set_semantics () =
  (* Duplicate edges in the input do not create duplicate pairs. *)
  let input = Relation.of_counted_list edge_schema [ (edge 1 2, 5) ] in
  let r = Closure.closure input in
  Alcotest.(check int) "multiplicity 1" 1 (Relation.multiplicity (edge 1 2) r)

let test_closure_naive_agrees () =
  let rng = W.Rng.make 11 in
  for _ = 1 to 20 do
    let g = W.Synth.chain_relation ~rng ~nodes:12 ~extra_edges:8 in
    Alcotest.(check bool) "naive = semi-naive" true
      (Relation.equal (Closure.closure g) (Closure.closure_naive g))
  done

let test_closure_reachable_and_iterations () =
  let g = graph [ (1, 2); (2, 3); (5, 6) ] in
  Alcotest.(check (list bool)) "reachable from 1"
    [ true; true ]
    (List.map
       (fun v -> List.exists (Value.equal (Value.Int v)) (Closure.reachable g (Value.Int 1)))
       [ 2; 3 ]);
  Alcotest.(check bool) "6 not reachable from 1" false
    (List.exists (Value.equal (Value.Int 6)) (Closure.reachable g (Value.Int 1)));
  Alcotest.(check bool) "chain depth logarithmic-ish rounds" true
    (Closure.iterations (W.Synth.chain_relation ~rng:(W.Rng.make 3) ~nodes:16 ~extra_edges:0) <= 16)

let test_closure_rejects_non_binary () =
  let bad = Relation.empty (Schema.of_list [ ("a", Domain.DInt) ]) in
  Alcotest.(check bool) "unary rejected" true
    (match Closure.closure bad with
    | _ -> false
    | exception Closure.Not_binary _ -> true);
  let mixed = Relation.empty (Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DStr) ]) in
  Alcotest.(check bool) "mixed domains rejected" true
    (match Closure.closure mixed with
    | _ -> false
    | exception Closure.Not_binary _ -> true)

let test_closure_expr () =
  let db = Database.of_relations [ ("g", graph [ (1, 2); (2, 3) ]) ] in
  let r = Closure.closure_expr (Expr.rel "g") db in
  Alcotest.(check int) "closure of expression" 3 (Relation.cardinal r)

(* --- parallel operators ----------------------------------------------------- *)

let rng = W.Rng.make 99

let test_partition_merge_identity () =
  for parts = 1 to 5 do
    let r = W.Synth.two_column_int ~rng ~size:60 ~distinct:10 in
    let by_key = Parallel.partition ~parts ~keys:[ 1 ] r in
    Alcotest.(check bool)
      (Printf.sprintf "hash partition/merge identity (p=%d)" parts)
      true
      (Relation.equal r (Parallel.merge by_key));
    let rr = Parallel.partition_round_robin ~parts r in
    Alcotest.(check bool) "round-robin partition/merge identity" true
      (Relation.equal r (Parallel.merge rr))
  done

let test_par_select () =
  let r = W.Synth.two_column_int ~rng ~size:80 ~distinct:9 in
  let p = Pred.lt (Scalar.attr 1) (Scalar.int 4) in
  let report = Parallel.par_select ~parts:4 p r in
  Alcotest.(check bool) "σ distributes over partitioning" true
    (Relation.equal (Eval.select p r) report.Parallel.result);
  Alcotest.(check int) "work accounted" (Relation.cardinal r)
    (Array.fold_left ( + ) 0 report.Parallel.fragment_work);
  Alcotest.(check bool) "speedup within bounds" true
    (report.Parallel.speedup >= 1.0 && report.Parallel.speedup <= 4.0)

let test_par_project () =
  let r = W.Synth.two_column_int ~rng ~size:50 ~distinct:7 in
  let exprs = [ Scalar.add (Scalar.attr 1) (Scalar.attr 2) ] in
  let report = Parallel.par_project ~parts:3 exprs r in
  Alcotest.(check bool) "π distributes over partitioning" true
    (Relation.equal (Eval.project exprs r) report.Parallel.result)

let test_par_join () =
  let left, right = W.Synth.join_pair ~rng ~left:60 ~right:40 ~key_range:8 in
  let report =
    Parallel.par_join ~parts:4 ~left_keys:[ 1 ] ~right_keys:[ 1 ] left right
  in
  let cond = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  Alcotest.(check bool) "co-partitioned join = sequential join" true
    (Relation.equal (Eval.join cond left right) report.Parallel.result)

let test_par_group_by () =
  let r = W.Synth.two_column_int ~rng ~size:70 ~distinct:6 in
  let attrs = [ 1 ] and aggs = [ (Aggregate.Sum, 2); (Aggregate.Cnt, 1) ] in
  let report = Parallel.par_group_by ~parts:4 ~attrs ~aggs r in
  Alcotest.(check bool) "Γ distributes over key partitioning" true
    (Relation.equal (Eval.group_by attrs aggs r) report.Parallel.result);
  (* Empty attrs is Definition 3.4's global aggregate, computed as
     per-fragment partials combined associatively. *)
  let global = Parallel.par_group_by ~parts:2 ~attrs:[] ~aggs r in
  Alcotest.(check bool) "global aggregate = partial-then-combine" true
    (Relation.equal (Eval.group_by [] aggs r) global.Parallel.result)

let test_skew_hurts_speedup () =
  (* A single hot key concentrates all work in one fragment: speedup
     collapses toward 1.  Balanced keys approach p. *)
  let skewed =
    Relation.of_counted_list (Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ])
      (List.init 40 (fun i -> (Tuple.of_list [ Value.Int 0; Value.Int i ], 1)))
  in
  let report = Parallel.par_group_by ~parts:4 ~attrs:[ 1 ] ~aggs:[ (Aggregate.Cnt, 1) ] skewed in
  Alcotest.(check (float 1e-9)) "hot key kills parallelism" 1.0 report.Parallel.speedup;
  let balanced = W.Synth.two_column_int ~rng ~size:4000 ~distinct:64 in
  let report = Parallel.par_group_by ~parts:4 ~attrs:[ 1 ] ~aggs:[ (Aggregate.Cnt, 1) ] balanced in
  Alcotest.(check bool) "balanced keys parallelise" true (report.Parallel.speedup > 2.0)

let suite =
  ( "ext",
    [
      Alcotest.test_case "closure of a chain" `Quick test_closure_chain;
      Alcotest.test_case "closure terminates on cycles" `Quick
        test_closure_cycle_terminates;
      Alcotest.test_case "closure has set semantics" `Quick test_closure_set_semantics;
      Alcotest.test_case "naive = semi-naive" `Quick test_closure_naive_agrees;
      Alcotest.test_case "reachability and iterations" `Quick
        test_closure_reachable_and_iterations;
      Alcotest.test_case "non-binary inputs rejected" `Quick
        test_closure_rejects_non_binary;
      Alcotest.test_case "closure of an expression" `Quick test_closure_expr;
      Alcotest.test_case "partition/merge identity" `Quick test_partition_merge_identity;
      Alcotest.test_case "parallel selection" `Quick test_par_select;
      Alcotest.test_case "parallel projection" `Quick test_par_project;
      Alcotest.test_case "parallel join" `Quick test_par_join;
      Alcotest.test_case "parallel grouping" `Quick test_par_group_by;
      Alcotest.test_case "skew and speedup" `Quick test_skew_hurts_speedup;
    ] )
