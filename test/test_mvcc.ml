(* The MVCC anomaly battery: scripted interleavings with exact expected
   bags (Definitions 2.1/3.1 fix what each query must return) pin which
   anomalies snapshot isolation forbids — dirty reads, non-repeatable
   reads, lost updates — and which one it famously admits: write skew,
   where strict 2PL is the contrast.  A qcheck differential closes the
   file: random workloads whose reads are covered by their write sets
   are explainable by the serial commit-timestamp order under either
   isolation mode, via the same [Scheduler.equivalent_serial] oracle.

   The [~schedule] argument scripts the interleaving as a prefix of
   transaction indices, one per scheduling step (a transaction with k
   statements takes k steps plus one commit step).  Entries naming
   finished transactions are skipped and the seeded rng takes over when
   the script runs out, so each scenario below is deterministic exactly
   as far as it needs to be. *)

open Mxra_relational
open Mxra_core
open Mxra_concurrency
module W = Mxra_workload

let s_acct = Schema.of_list [ ("id", Domain.DInt); ("bal", Domain.DInt) ]
let acct i b = Tuple.of_list [ Value.Int i; Value.Int b ]

let bank balances =
  Database.of_relations
    [ ("acct", Relation.of_list s_acct (List.mapi acct balances)) ]

let update_balance id delta =
  Statement.Update
    ( "acct",
      Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id)) (Expr.rel "acct"),
      [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int delta) ] )

let read_acct = Statement.Query (Expr.rel "acct")

let balance_of db id =
  match
    Relation.to_list
      (Eval.eval db
         (Expr.project_attrs [ 2 ]
            (Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id))
               (Expr.rel "acct"))))
  with
  | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> min_int)
  | _ -> min_int

let committed = function
  | Scheduler.Committed -> true
  | Scheduler.Aborted _ -> false

(* --- anomalies SI forbids ------------------------------------------------- *)

let test_no_dirty_read () =
  (* W1(acct) R2(acct) C2 A1: the reader runs between the writer's
     update and its abort.  Under SI the reader's snapshot is the
     pre-state D^t, so the uncommitted debit is invisible — the exact
     bag of Definition 2.1, not the writer's overlay. *)
  let db = bank [ 100; 100 ] in
  let before = Database.find "acct" db in
  let dirty_writer =
    Transaction.make ~name:"dirty"
      [ update_balance 0 (-50); Statement.Insert ("missing", Expr.rel "acct") ]
  in
  let reader = Transaction.make ~name:"reader" [ read_acct ] in
  let result =
    Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 1; 1; 0 ] ~seed:1 db
      [ dirty_writer; reader ]
  in
  (match result.Scheduler.outcomes with
  | [ Scheduler.Aborted _; Scheduler.Committed ] -> ()
  | _ -> Alcotest.fail "expected writer abort, reader commit");
  (match result.Scheduler.outputs with
  | [ []; [ seen ] ] ->
      Alcotest.(check bool) "reader saw the pre-state bag, not the dirty write"
        true
        (Relation.equal before seen)
  | _ -> Alcotest.fail "expected exactly the reader's one output");
  Alcotest.(check bool) "abort left no trace" true
    (Database.equal_states db result.Scheduler.final)

let test_no_non_repeatable_read () =
  (* R1(acct) W2 C2 R1(acct) C1: a transfer commits between the two
     reads of the same transaction.  Both reads answer from the same
     snapshot, so they return the same bag — and it is the pre-transfer
     one. *)
  let db = bank [ 100; 100 ] in
  let before = Database.find "acct" db in
  let double_reader =
    Transaction.make ~name:"rr" [ read_acct; read_acct ]
  in
  let transfer =
    Transaction.make ~name:"xfer" [ update_balance 0 (-30); update_balance 1 30 ]
  in
  let result =
    Scheduler.run ~isolation:Scheduler.Si
      ~schedule:[ 0; 1; 1; 1; 0; 0 ] ~seed:1 db
      [ double_reader; transfer ]
  in
  Alcotest.(check (list bool)) "both committed" [ true; true ]
    (List.map committed result.Scheduler.outcomes);
  (match result.Scheduler.outputs with
  | [ [ first; second ]; [] ] ->
      Alcotest.(check bool) "reads repeat" true (Relation.equal first second);
      Alcotest.(check bool) "both equal the snapshot" true
        (Relation.equal before first)
  | _ -> Alcotest.fail "expected two reader outputs");
  Alcotest.(check int) "transfer applied after the reader" 70
    (balance_of result.Scheduler.final 0)

let test_no_lost_update () =
  (* W1(acct) W2(acct) C1 C2: both increments read balance 100 from
     their snapshots; without validation the second commit would
     overwrite the first (the lost update).  First-committer-wins
     aborts the second instead: final balance is 110, never 120. *)
  let db = bank [ 100 ] in
  let t0 = Transaction.make ~name:"add10" [ update_balance 0 10 ] in
  let t1 = Transaction.make ~name:"add20" [ update_balance 0 20 ] in
  let result =
    Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 1; 0; 1 ] ~seed:1 db
      [ t0; t1 ]
  in
  (match result.Scheduler.outcomes with
  | [ Scheduler.Committed; Scheduler.Aborted reason ] ->
      Alcotest.(check string) "conflict names the relation"
        "write-write conflict on acct" reason
  | _ -> Alcotest.fail "expected first committer to win");
  Alcotest.(check int) "first update survives intact" 110
    (balance_of result.Scheduler.final 0);
  Alcotest.(check int) "one conflict counted" 1
    result.Scheduler.stats.Scheduler.conflicts;
  Alcotest.(check bool) "no blocking under SI" true
    (result.Scheduler.stats.Scheduler.blocks = 0);
  Alcotest.(check bool) "explained by serial commit order" true
    (Scheduler.check db [ t0; t1 ] result)

let test_conflict_is_first_committer_wins () =
  (* Same race, opposite commit order: whoever validates first wins,
     regardless of who wrote first. *)
  let db = bank [ 100 ] in
  let t0 = Transaction.make ~name:"add10" [ update_balance 0 10 ] in
  let t1 = Transaction.make ~name:"add20" [ update_balance 0 20 ] in
  let result =
    Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 1; 1; 0 ] ~seed:1 db
      [ t0; t1 ]
  in
  (match result.Scheduler.outcomes with
  | [ Scheduler.Aborted _; Scheduler.Committed ] -> ()
  | _ -> Alcotest.fail "expected second writer to commit first and win");
  Alcotest.(check int) "second update survives intact" 120
    (balance_of result.Scheduler.final 0)

(* --- the anomaly SI admits ------------------------------------------------ *)

(* Write skew: the constraint "d1 and d2 are never both empty" holds in
   every serial execution of [drain d1] and [drain d2] (each transaction
   checks the other relation before committing its delete).  SI lets
   both commit from disjoint write sets over the same stale snapshots,
   so the constraint breaks — pinned here as the documented boundary of
   what first-committer-wins at relation granularity validates. *)

let skew_db () =
  let schema = Schema.of_list [ ("x", Domain.DInt) ] in
  let one = Relation.of_list schema [ Tuple.of_list [ Value.Int 1 ] ] in
  Database.of_relations [ ("d1", one); ("d2", one) ]

let drain mine other =
  Transaction.make
    ~name:("drain-" ^ mine)
    ~abort_if:(fun db -> Relation.cardinal (Database.find other db) = 0)
    [ Statement.Delete (mine, Expr.rel mine) ]

let test_write_skew_admitted_under_si () =
  let db = skew_db () in
  let txns = [ drain "d1" "d2"; drain "d2" "d1" ] in
  let result =
    Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 1; 0; 1 ] ~seed:1 db
      txns
  in
  Alcotest.(check (list bool)) "disjoint write sets both pass validation"
    [ true; true ]
    (List.map committed result.Scheduler.outcomes);
  let final = result.Scheduler.final in
  Alcotest.(check int) "d1 drained" 0
    (Relation.cardinal (Database.find "d1" final));
  Alcotest.(check int) "d2 drained" 0
    (Relation.cardinal (Database.find "d2" final));
  (* And precisely because of the skew, no serial order explains it:
     the oracle must reject this schedule. *)
  Alcotest.(check bool) "not serially explainable" false
    (Scheduler.check db txns result)

let test_write_skew_prevented_under_2pl () =
  (* The contrast: under strict 2PL the commit-time guard reads the
     live, lock-serialized state, so at least one drain always sees the
     other's empty relation and aborts — across every interleaving. *)
  let txns () = [ drain "d1" "d2"; drain "d2" "d1" ] in
  List.iter
    (fun seed ->
      let db = skew_db () in
      let result =
        Scheduler.run ~isolation:Scheduler.Two_pl ~seed db (txns ())
      in
      let final = result.Scheduler.final in
      let both_empty =
        Relation.cardinal (Database.find "d1" final) = 0
        && Relation.cardinal (Database.find "d2" final) = 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "constraint holds (seed %d)" seed)
        false both_empty)
    (List.init 12 (fun i -> i))

(* --- SI mechanics --------------------------------------------------------- *)

let test_readers_never_block () =
  (* A hot writer plus pure readers: SI readers take no locks, so
     whatever the interleaving, blocks stay zero and every reader
     commits. *)
  let db = bank [ 100; 100; 100; 100 ] in
  let writer =
    Transaction.make ~name:"w" [ update_balance 0 1; update_balance 1 1 ]
  in
  let reader = Transaction.make [ read_acct; read_acct ] in
  List.iter
    (fun seed ->
      let result =
        Scheduler.run ~isolation:Scheduler.Si ~seed db
          [ writer; reader; reader; reader ]
      in
      Alcotest.(check int)
        (Printf.sprintf "no blocks (seed %d)" seed)
        0 result.Scheduler.stats.Scheduler.blocks;
      List.iteri
        (fun i ok ->
          if i > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "reader %d committed (seed %d)" i seed)
              true ok)
        (List.map committed result.Scheduler.outcomes))
    (List.init 10 (fun i -> i))

let test_snapshot_taken_at_first_step () =
  (* D^t is captured at the transaction's first scheduled step, not at
     batch submission: a reader scheduled only after a writer committed
     sees the writer's effect. *)
  let db = bank [ 100 ] in
  let writer = Transaction.make [ update_balance 0 10 ] in
  let reader = Transaction.make [ read_acct ] in
  let result =
    Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 0; 1; 1 ] ~seed:1 db
      [ writer; reader ]
  in
  Alcotest.(check (list bool)) "both committed" [ true; true ]
    (List.map committed result.Scheduler.outcomes);
  match result.Scheduler.outputs with
  | [ []; [ seen ] ] ->
      Alcotest.(check bool) "reader's snapshot includes the commit" true
        (Relation.mem (acct 0 110) seen)
  | _ -> Alcotest.fail "expected the reader's one output"

let test_conflict_attribution_reaches_stmt_stats () =
  (* The conflict abort lands on the statement registry under the
     transaction's qid — the SI counterpart of lock-wait attribution,
     surfaced by sys.statements' conflicts column. *)
  let was_enabled = Mxra_obs.Stmt_stats.enabled () in
  Mxra_obs.Stmt_stats.set_enabled true;
  Mxra_obs.Stmt_stats.clear ();
  Fun.protect
    ~finally:(fun () -> Mxra_obs.Stmt_stats.set_enabled was_enabled)
    (fun () ->
      let db = bank [ 100 ] in
      let t0 = Transaction.make [ update_balance 0 10 ] in
      let t1 = Transaction.make [ update_balance 0 20 ] in
      let result =
        Scheduler.run ~isolation:Scheduler.Si ~schedule:[ 0; 1; 0; 1 ]
          ~seed:1 db [ t0; t1 ]
      in
      Alcotest.(check int) "one conflict in the batch" 1
        result.Scheduler.stats.Scheduler.conflicts;
      let total =
        List.fold_left
          (fun acc r -> acc + r.Mxra_obs.Stmt_stats.r_conflicts)
          0
          (Mxra_obs.Stmt_stats.snapshot ())
      in
      Alcotest.(check int) "registry charged exactly one conflict" 1 total)

(* --- differential oracle -------------------------------------------------- *)

(* Random transfer workloads, the same generator under both modes.  A
   transfer's reads are covered by its write set (it only reads acct,
   which it writes), so under SI every committed schedule is explainable
   by the serial commit-timestamp order — the write-skew gap cannot
   arise — and under 2PL by conflict-serializability.  The oracle and
   the balance invariant must hold for every seed in both worlds. *)
let differential_property =
  let total db =
    match
      Relation.to_list
        (Eval.eval db (Expr.aggregate Aggregate.Sum 2 (Expr.rel "acct")))
    with
    | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> min_int)
    | _ -> min_int
  in
  let transfer src dst amount =
    Transaction.make
      ~name:(Printf.sprintf "%d->%d" src dst)
      [ update_balance src (-amount); update_balance dst amount ]
  in
  let test seed =
    let rng = W.Rng.make seed in
    let accounts = 3 + W.Rng.int rng 5 in
    let db = bank (List.init accounts (fun _ -> 100)) in
    let txns =
      List.init
        (2 + W.Rng.int rng 7)
        (fun _ ->
          transfer (W.Rng.int rng accounts) (W.Rng.int rng accounts)
            (1 + W.Rng.int rng 40))
    in
    List.for_all
      (fun isolation ->
        let result = Scheduler.run ~isolation ~seed db txns in
        Scheduler.equivalent_serial db txns result
        && total result.Scheduler.final = total db
        && (isolation <> Scheduler.Si
            || result.Scheduler.stats.Scheduler.blocks = 0))
      [ Scheduler.Si; Scheduler.Two_pl ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"SI and 2PL schedules explained by serial commit order"
       ~count:200 QCheck.small_nat test)

let suite =
  ( "mvcc",
    [
      Alcotest.test_case "dirty read forbidden" `Quick test_no_dirty_read;
      Alcotest.test_case "non-repeatable read forbidden" `Quick
        test_no_non_repeatable_read;
      Alcotest.test_case "lost update forbidden" `Quick test_no_lost_update;
      Alcotest.test_case "first committer wins" `Quick
        test_conflict_is_first_committer_wins;
      Alcotest.test_case "write skew admitted under SI" `Quick
        test_write_skew_admitted_under_si;
      Alcotest.test_case "write skew prevented under 2PL" `Quick
        test_write_skew_prevented_under_2pl;
      Alcotest.test_case "readers never block" `Quick test_readers_never_block;
      Alcotest.test_case "snapshot taken at first step" `Quick
        test_snapshot_taken_at_first_step;
      Alcotest.test_case "conflict attribution reaches stmt stats" `Quick
        test_conflict_attribution_reaches_stmt_stats;
      differential_property;
    ] )
