(* Engine tests: statistics, cardinality estimation, planner algorithm
   selection, and the central contract that physical execution equals the
   reference evaluator on arbitrary expressions and databases. *)

open Mxra_relational
open Mxra_core
open Mxra_engine
module W = Mxra_workload

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]
let tup a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let db =
  Database.of_relations
    [
      ("l", Relation.of_counted_list s_kv [ (tup 1 10, 2); (tup 2 20, 1); (tup 3 30, 1) ]);
      ("r", Relation.of_counted_list s_kv [ (tup 1 100, 3); (tup 3 300, 1); (tup 9 900, 1) ]);
    ]

(* --- stats -------------------------------------------------------------- *)

let test_stats () =
  let s = Stats.of_relation (Database.find "l" db) in
  Alcotest.(check int) "cardinality" 4 s.Stats.cardinality;
  Alcotest.(check int) "support" 3 s.Stats.support;
  Alcotest.(check int) "ndv column 1" 3 (Stats.column s 1).Stats.distinct;
  Alcotest.(check bool) "min value" true
    (match (Stats.column s 1).Stats.min_value with
    | Some v -> Value.equal v (Value.Int 1)
    | None -> false);
  Alcotest.(check (float 1e-9)) "dup factor" (4.0 /. 3.0) (Stats.dup_factor s)

let test_histograms () =
  let s = Stats.of_relation (Database.find "l" db) in
  (* l = {(1,10):2, (2,20), (3,30)}: 4 tuples. *)
  Alcotest.(check (option (float 1e-9))) "fraction below 2 on k" (Some 0.5)
    (Stats.fraction_below s 1 2.0);
  Alcotest.(check (option (float 1e-9))) "fraction eq 1 on k" (Some 0.5)
    (Stats.fraction_eq s 1 1.0);
  Alcotest.(check (option (float 1e-9))) "fraction below min" (Some 0.0)
    (Stats.fraction_below s 1 1.0);
  Alcotest.(check (option (float 1e-9))) "fraction below above max" (Some 1.0)
    (Stats.fraction_below s 1 99.0);
  Alcotest.(check (option (float 1e-9))) "eq on absent value" (Some 0.0)
    (Stats.fraction_eq s 1 7.0);
  (* Non-numeric columns have no histogram. *)
  let str_rel =
    Relation.of_list (Schema.of_list [ ("s", Domain.DStr) ])
      [ Tuple.of_list [ Value.Str "x" ] ]
  in
  Alcotest.(check (option (float 1e-9))) "no histogram for strings" None
    (Stats.fraction_below (Stats.of_relation str_rel) 1 0.0)

let test_stats_empty () =
  let s = Stats.of_relation (Relation.empty s_kv) in
  Alcotest.(check int) "cardinality" 0 s.Stats.cardinality;
  Alcotest.(check (float 1e-9)) "dup factor of empty" 1.0 (Stats.dup_factor s);
  Alcotest.(check bool) "no min" true ((Stats.column s 1).Stats.min_value = None)

(* --- cost model ---------------------------------------------------------- *)

let stats = Stats.env_of_database db
let schemas = Typecheck.env_of_database db

let test_cost_basics () =
  let card e = Cost.estimate_cardinality ~stats ~schemas e in
  Alcotest.(check (float 1e-6)) "base relation exact" 4.0 (card (Expr.rel "l"));
  Alcotest.(check (float 1e-6)) "product multiplies" 20.0
    (card (Expr.product (Expr.rel "l") (Expr.rel "r")));
  let sel =
    card (Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 1)) (Expr.rel "l"))
  in
  (* (1,10) has multiplicity 2 of 4 tuples: the histogram is exact. *)
  Alcotest.(check (float 1e-6)) "equality uses the histogram (exact)" 2.0 sel;
  let join_card =
    card
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l")
         (Expr.rel "r"))
  in
  Alcotest.(check bool) "join below product" true (join_card < 20.0)

let test_cost_monotone_in_pipeline () =
  (* Cost of σ(l × r) strictly exceeds cost of the fused join: the
     product materialises 20 tuples the join never produces. *)
  let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let product_form = Expr.select p (Expr.product (Expr.rel "l") (Expr.rel "r")) in
  let join_form = Expr.join p (Expr.rel "l") (Expr.rel "r") in
  Alcotest.(check bool) "join cheaper than selected product" true
    (Cost.cost ~stats ~schemas join_form < Cost.cost ~stats ~schemas product_form)

let test_selectivity () =
  let profile = Cost.profile ~stats ~schemas (Expr.rel "l") in
  Alcotest.(check (float 1e-6)) "true" 1.0 (Cost.selectivity profile Pred.True);
  Alcotest.(check (float 1e-6)) "false" 0.0 (Cost.selectivity profile Pred.False);
  let eq = Cost.selectivity profile (Pred.eq (Scalar.attr 1) (Scalar.int 1)) in
  Alcotest.(check (float 1e-6)) "equality histogram-exact" 0.5 eq;
  let range = Cost.selectivity profile (Pred.lt (Scalar.attr 2) (Scalar.int 25)) in
  (* values 10 (x2) and 20 are < 25: 3 of 4 tuples. *)
  Alcotest.(check (float 1e-6)) "range histogram-exact" 0.75 range;
  let flipped = Cost.selectivity profile (Pred.gt (Scalar.int 25) (Scalar.attr 2)) in
  Alcotest.(check (float 1e-6)) "mirrored comparison" 0.75 flipped;
  let conj =
    Cost.selectivity profile
      (Pred.And
         (Pred.eq (Scalar.attr 1) (Scalar.int 1),
          Pred.lt (Scalar.attr 2) (Scalar.int 50)))
  in
  Alcotest.(check (float 1e-6)) "conjunction multiplies" 0.5 conj;
  (* Attribute-vs-attribute comparisons still fall back to heuristics. *)
  let heur = Cost.selectivity profile (Pred.lt (Scalar.attr 1) (Scalar.attr 2)) in
  Alcotest.(check (float 1e-6)) "attr-attr heuristic" (1.0 /. 3.0) heur

(* --- planner -------------------------------------------------------------- *)

let test_join_keys () =
  let p =
    Pred.conj
      [
        Pred.eq (Scalar.attr 1) (Scalar.attr 3);
        Pred.gt (Scalar.attr 2) (Scalar.int 5);
        Pred.eq (Scalar.attr 4) (Scalar.attr 2);
      ]
  in
  let keys, residual = Planner.join_keys ~left_arity:2 p in
  Alcotest.(check (list (pair int int))) "both equi pairs, right renumbered"
    [ (1, 1); (2, 2) ] keys;
  Alcotest.(check bool) "residual keeps the range conjunct" true
    (Pred.equal residual (Pred.gt (Scalar.attr 2) (Scalar.int 5)))

let test_planner_chooses_hash_join () =
  let e =
    Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r")
  in
  (match Planner.plan db e with
  | Physical.Hash_join { left_keys = [ 1 ]; right_keys = [ 1 ]; left_arity = 2; _ } -> ()
  | other -> Alcotest.fail ("expected hash join, got " ^ Physical.to_string other));
  let theta =
    Expr.join (Pred.lt (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r")
  in
  match Planner.plan db theta with
  | Physical.Nested_loop (_, _, _) -> ()
  | other -> Alcotest.fail ("expected nested loop, got " ^ Physical.to_string other)

let test_planner_fuses_selected_product () =
  let e =
    Expr.select (Pred.eq (Scalar.attr 1) (Scalar.attr 3))
      (Expr.product (Expr.rel "l") (Expr.rel "r"))
  in
  match Planner.plan db e with
  | Physical.Hash_join _ -> ()
  | other -> Alcotest.fail ("expected fused hash join, got " ^ Physical.to_string other)

let test_to_logical_roundtrip () =
  let e =
    Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r")
  in
  let plan = Planner.plan db e in
  let back = Physical.to_logical plan in
  Alcotest.(check bool) "plan's logical image equivalent" true
    (Relation.equal (Eval.eval db e) (Eval.eval db back))

(* --- executor ------------------------------------------------------------- *)

let check_equal_relations msg r1 r2 =
  Alcotest.(check bool)
    (msg ^ ": " ^ Relation.to_string r1 ^ " vs " ^ Relation.to_string r2)
    true (Relation.equal r1 r2)

let test_exec_hash_join () =
  let e =
    Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r")
  in
  check_equal_relations "hash join = reference"
    (Eval.eval db e) (Exec.run_expr db e);
  (* Multiplicities multiply across the join: l(1,10):2 × r(1,100):3 = 6. *)
  let joined = Exec.run_expr db e in
  Alcotest.(check int) "count product" 6
    (Relation.multiplicity
       (Tuple.of_list [ Value.Int 1; Value.Int 10; Value.Int 1; Value.Int 100 ])
       joined)

let test_exec_each_operator () =
  let cases =
    [
      ("union", Expr.union (Expr.rel "l") (Expr.rel "r"));
      ("diff", Expr.diff (Expr.rel "l") (Expr.rel "r"));
      ("intersect", Expr.intersect (Expr.rel "l") (Expr.rel "r"));
      ("product", Expr.product (Expr.rel "l") (Expr.rel "r"));
      ("select", Expr.select (Pred.gt (Scalar.attr 2) (Scalar.int 15)) (Expr.rel "l"));
      ("project", Expr.project_attrs [ 2; 1 ] (Expr.rel "l"));
      ( "extended projection",
        Expr.project [ Scalar.add (Scalar.attr 1) (Scalar.attr 2) ] (Expr.rel "l") );
      ("unique", Expr.unique (Expr.rel "l"));
      ( "theta join",
        Expr.join (Pred.lt (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r") );
      ( "groupby",
        Expr.group_by [ 1 ] [ (Aggregate.Sum, 2); (Aggregate.Cnt, 1) ] (Expr.rel "l") );
      ("aggregate all", Expr.aggregate Aggregate.Max 2 (Expr.rel "l"));
    ]
  in
  List.iter
    (fun (name, e) ->
      check_equal_relations name (Eval.eval db e) (Exec.run_expr db e))
    cases

let test_exec_empty_aggregate () =
  let empty_db = Database.of_relations [ ("e", Relation.empty s_kv) ] in
  let cnt = Exec.run_expr empty_db (Expr.aggregate Aggregate.Cnt 1 (Expr.rel "e")) in
  Alcotest.(check int) "CNT over empty: one zero tuple" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 0 ]) cnt);
  Alcotest.(check bool) "AVG over empty raises" true
    (match Exec.run_expr empty_db (Expr.aggregate Aggregate.Avg 1 (Expr.rel "e")) with
    | _ -> false
    | exception Aggregate.Undefined Aggregate.Avg -> true)

let test_tuples_moved () =
  let scan_moves = Exec.tuples_moved db (Planner.plan db (Expr.rel "l")) in
  Alcotest.(check int) "scan moves its support" 3 scan_moves;
  let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let join_plan = Planner.plan db (Expr.join p (Expr.rel "l") (Expr.rel "r")) in
  let product_plan =
    Physical.Filter
      (p, Physical.Cross_product (Physical.Seq_scan "l", Physical.Seq_scan "r"))
  in
  Alcotest.(check bool) "hash join moves fewer tuples than filtered product"
    true
    (Exec.tuples_moved db join_plan < Exec.tuples_moved db product_plan)

let test_merge_join () =
  (* The merge join computes the same bag as the hash join and the
     reference evaluator, including residual conditions and
     multiplicities. *)
  let e =
    Expr.join
      (Pred.And
         (Pred.eq (Scalar.attr 1) (Scalar.attr 3),
          Pred.lt (Scalar.attr 2) (Scalar.attr 4)))
      (Expr.rel "l") (Expr.rel "r")
  in
  let merge_plan = Planner.plan ~join_algorithm:Planner.Merge db e in
  (match merge_plan with
  | Physical.Merge_join _ -> ()
  | other -> Alcotest.fail ("expected merge join, got " ^ Physical.to_string other));
  check_equal_relations "merge = reference" (Eval.eval db e)
    (Exec.run db merge_plan);
  check_equal_relations "merge = hash"
    (Exec.run db (Planner.plan db e))
    (Exec.run db merge_plan)

let merge_join_matches_reference =
  let test seed =
    let rng = W.Rng.make seed in
    let left, right = W.Synth.join_pair ~rng ~left:30 ~right:20 ~key_range:5 in
    let db = Database.of_relations [ ("a", left); ("b", right) ] in
    let e =
      Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "a")
        (Expr.rel "b")
    in
    Relation.equal (Eval.eval db e)
      (Exec.run db (Planner.plan ~join_algorithm:Planner.Merge db e))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge join = reference" ~count:150
       QCheck.small_nat test)

(* --- metrics and instrumented execution ----------------------------------- *)

let test_metrics_registry () =
  let c = Metrics.make_counter () in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.count c);
  let t = Metrics.make_timer () in
  Alcotest.(check int) "record returns the thunk's value" 7
    (Metrics.record t (fun () -> 7));
  Alcotest.(check bool) "time accumulated" true (Metrics.elapsed_ms t >= 0.0);
  Alcotest.(check bool) "record re-raises" true
    (match Metrics.record t (fun () -> failwith "boom") with
    | _ -> false
    | exception Failure _ -> true);
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "a") 3;
  Metrics.add (Metrics.counter reg "a") 4;
  Metrics.add_ms (Metrics.timer reg "b") 5.0;
  Alcotest.(check bool) "counter/timer name clash rejected" true
    (match Metrics.timer reg "a" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "dump in creation order" true
    (Metrics.dump reg = [ ("a", Metrics.Count 7); ("b", Metrics.Duration_ms 5.0) ]);
  let op = Metrics.make_op () in
  Metrics.set_detail op "x" 1;
  Metrics.set_detail op "y" 2;
  Metrics.set_detail op "x" 3;
  Alcotest.(check (list (pair string int))) "details: last write wins, order kept"
    [ ("y", 2); ("x", 3) ] (Metrics.details op)

let test_q_error () =
  Alcotest.(check (float 1e-9)) "overestimate" 2.0
    (Cost.q_error ~estimated:10.0 ~actual:5);
  Alcotest.(check (float 1e-9)) "underestimate" 2.0
    (Cost.q_error ~estimated:5.0 ~actual:10);
  Alcotest.(check (float 1e-9)) "exact" 1.0 (Cost.q_error ~estimated:7.0 ~actual:7);
  Alcotest.(check (float 1e-9)) "empty vs empty" 1.0
    (Cost.q_error ~estimated:0.0 ~actual:0);
  Alcotest.(check (float 1e-9)) "estimated empty, one actual row" 1.0
    (Cost.q_error ~estimated:0.2 ~actual:1)

let rec flatten_report (r : Exec.report) =
  r :: List.concat_map flatten_report r.Exec.inputs

let test_explain_analyze_two_join () =
  (* A 2-join query: every physical operator must carry estimated rows,
     actual rows and a q-error, and the root's actual rows must be the
     result's cardinality. *)
  let e =
    Expr.join
      (Pred.eq (Scalar.attr 3) (Scalar.attr 5))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l")
         (Expr.rel "r"))
      (Expr.rel "l")
  in
  let a = Exec.explain_analyze db e in
  check_equal_relations "instrumented result = reference" (Eval.eval db e)
    a.Exec.result;
  let ops = flatten_report a.Exec.root in
  Alcotest.(check int) "one report line per operator"
    (Physical.size (Planner.plan db e))
    (List.length ops);
  List.iter
    (fun (r : Exec.report) ->
      Alcotest.(check bool)
        ("estimate positive at " ^ Physical.label r.Exec.node)
        true
        (r.Exec.estimated_rows >= 0.0);
      Alcotest.(check bool)
        ("q-error at least 1 at " ^ Physical.label r.Exec.node)
        true (r.Exec.q_error >= 1.0))
    ops;
  Alcotest.(check int) "root actual rows = result cardinality"
    (Relation.cardinal a.Exec.result)
    a.Exec.root.Exec.actual.Exec.out_rows;
  (* Both hash joins report their build-side gauges. *)
  let builds =
    List.filter
      (fun (r : Exec.report) ->
        List.mem_assoc "build" r.Exec.actual.Exec.details)
      ops
  in
  Alcotest.(check int) "two hash joins report build sizes" 2
    (List.length builds);
  (* The rendered report mentions every column of the pinned format. *)
  let text = Exec.analysis_to_string a in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report text contains " ^ needle) true
        (contains needle))
    [ "est="; "act="; "q="; "time="; "total:" ]

(* Satellite: instrumentation must not perturb bag semantics, including
   δ/Γ duplicate handling — for random well-typed expressions the
   instrumented run equals the reference evaluator and the
   uninstrumented engine. *)
let instrumented_matches_reference =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let db = scen.W.Gen_expr.db and e = scen.W.Gen_expr.expr in
    let reference = Eval.eval db e in
    let plain = Exec.run_expr db e in
    let a = Exec.run_instrumented db (Planner.plan db e) in
    Relation.equal reference a.Exec.result
    && Relation.equal plain a.Exec.result
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"instrumented run = reference = uninstrumented"
       ~count:300 QCheck.small_nat test)

(* Satellite: the per-operator actual-rows counters agree with the
   pre-existing whole-plan accounting on the same plan. *)
let counters_match_moved =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let db = scen.W.Gen_expr.db in
    let plan = Planner.plan db scen.W.Gen_expr.expr in
    let a = Exec.run_instrumented db plan in
    let ops = flatten_report a.Exec.root in
    let total f = List.fold_left (fun acc r -> acc + f r) 0 ops in
    let elems = total (fun (r : Exec.report) -> r.Exec.actual.Exec.out_elems) in
    let cells = total (fun (r : Exec.report) -> r.Exec.actual.Exec.out_cells) in
    let registry key = Metrics.count (Metrics.counter a.Exec.totals key) in
    elems = Exec.tuples_moved db plan
    && cells = Exec.cells_moved db plan
    && elems = registry "tuples-moved"
    && cells = registry "cells-moved"
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"per-operator counters = tuples/cells_moved"
       ~count:200 QCheck.small_nat test)

(* Satellite: instrumentation counts physical facts — elements, rows,
   cells — not plumbing, so they must not change with the chunk size
   (and EXPLAIN ANALYZE output stays pinnable in the cram tests even
   under the chunk-size-1 CI leg). *)
let counters_chunk_size_independent =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let db = scen.W.Gen_expr.db in
    let plan = Planner.plan db scen.W.Gen_expr.expr in
    let counts chunk_size =
      let a = Exec.run_instrumented ~chunk_size db plan in
      List.map
        (fun (r : Exec.report) ->
          (r.Exec.actual.Exec.out_elems, r.Exec.actual.Exec.out_rows,
           r.Exec.actual.Exec.out_cells))
        (flatten_report a.Exec.root)
    in
    let reference = counts 255 in
    List.for_all (fun cs -> counts cs = reference) [ 1; 7; 64; 1024 ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"instrumented counts independent of chunk size"
       ~count:100 QCheck.small_nat test)

(* --- the central property: engine = reference evaluator -------------------- *)

let engine_matches_reference =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let reference = Eval.eval scen.W.Gen_expr.db scen.W.Gen_expr.expr in
    let physical = Exec.run_expr scen.W.Gen_expr.db scen.W.Gen_expr.expr in
    Relation.equal reference physical
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"engine = reference evaluator" ~count:300
       QCheck.small_nat test)

let suite =
  ( "engine",
    [
      Alcotest.test_case "statistics" `Quick test_stats;
      Alcotest.test_case "histograms" `Quick test_histograms;
      Alcotest.test_case "statistics of empty" `Quick test_stats_empty;
      Alcotest.test_case "cost basics" `Quick test_cost_basics;
      Alcotest.test_case "cost: join vs product" `Quick test_cost_monotone_in_pipeline;
      Alcotest.test_case "selectivity" `Quick test_selectivity;
      Alcotest.test_case "join key extraction" `Quick test_join_keys;
      Alcotest.test_case "planner picks hash join" `Quick test_planner_chooses_hash_join;
      Alcotest.test_case "planner fuses σ∘×" `Quick test_planner_fuses_selected_product;
      Alcotest.test_case "to_logical round trip" `Quick test_to_logical_roundtrip;
      Alcotest.test_case "hash join execution" `Quick test_exec_hash_join;
      Alcotest.test_case "every operator matches reference" `Quick test_exec_each_operator;
      Alcotest.test_case "empty aggregates" `Quick test_exec_empty_aggregate;
      Alcotest.test_case "tuples_moved instrumentation" `Quick test_tuples_moved;
      Alcotest.test_case "merge join" `Quick test_merge_join;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "q-error" `Quick test_q_error;
      Alcotest.test_case "explain analyze on a 2-join query" `Quick
        test_explain_analyze_two_join;
      merge_join_matches_reference;
      instrumented_matches_reference;
      counters_match_moved;
      counters_chunk_size_independent;
      engine_matches_reference;
    ] )
