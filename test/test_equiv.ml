(* Section 3.3: every rewrite rule is semantics-preserving, checked both
   on the paper's concrete expressions and property-style over random
   well-typed expressions and random database states.  Also exhibits the
   paper's explicit *non*-law for δ over ⊎. *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

let s_int = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DInt) ]
let tup a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let db_small =
  Database.of_relations
    [
      ("e1", Relation.of_counted_list s_int [ (tup 1 1, 2); (tup 2 2, 1) ]);
      ("e2", Relation.of_counted_list s_int [ (tup 1 1, 1); (tup 3 3, 3) ]);
      ("e3", Relation.of_counted_list s_int [ (tup 2 2, 2) ]);
    ]

let equiv e1 e2 = Equiv.equivalent_on db_small e1 e2

(* --- Theorem 3.1 ------------------------------------------------------- *)

let test_thm31_intersect () =
  let lhs = Expr.intersect (Expr.rel "e1") (Expr.rel "e2") in
  match Equiv.derive_intersect lhs with
  | Some rhs ->
      Alcotest.(check bool) "E1∩E2 = E1−(E1−E2)" true (equiv lhs rhs);
      Alcotest.(check bool) "round trip" true
        (match Equiv.underive_intersect rhs with
        | Some back -> Expr.equal back lhs
        | None -> false)
  | None -> Alcotest.fail "rule did not match"

let test_thm31_join () =
  let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let lhs = Expr.join p (Expr.rel "e1") (Expr.rel "e2") in
  match Equiv.derive_join lhs with
  | Some rhs ->
      Alcotest.(check bool) "E1⋈E2 = σ(E1×E2)" true (equiv lhs rhs);
      Alcotest.(check bool) "join introduction inverts" true
        (match Equiv.underive_join rhs with
        | Some back -> Expr.equal back lhs
        | None -> false)
  | None -> Alcotest.fail "rule did not match"

(* --- Theorem 3.2 ------------------------------------------------------- *)

let test_thm32_select_union () =
  let p = Pred.gt (Scalar.attr 1) (Scalar.int 1) in
  let lhs = Expr.select p (Expr.union (Expr.rel "e1") (Expr.rel "e2")) in
  match Equiv.distribute_select_union lhs with
  | Some rhs -> Alcotest.(check bool) "σ distributes over ⊎" true (equiv lhs rhs)
  | None -> Alcotest.fail "rule did not match"

let test_thm32_project_union () =
  let lhs =
    Expr.project_attrs [ 1 ] (Expr.union (Expr.rel "e1") (Expr.rel "e2"))
  in
  match Equiv.distribute_project_union lhs with
  | Some rhs -> Alcotest.(check bool) "π distributes over ⊎" true (equiv lhs rhs)
  | None -> Alcotest.fail "rule did not match"

let test_unique_does_not_distribute () =
  (* The paper: δ(E1 ⊎ E2) ≠ δE1 ⊎ δE2 in general; the correct relation
     is δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2).  e1 and e2 share the tuple (1,1). *)
  let u = Expr.union (Expr.rel "e1") (Expr.rel "e2") in
  let wrong = Expr.union (Expr.unique (Expr.rel "e1")) (Expr.unique (Expr.rel "e2")) in
  Alcotest.(check bool) "naive distribution is false" false
    (equiv (Expr.unique u) wrong);
  match Equiv.unique_union (Expr.unique u) with
  | Some rhs ->
      Alcotest.(check bool) "δ(E1⊎E2) = δ(δE1⊎δE2)" true
        (equiv (Expr.unique u) rhs)
  | None -> Alcotest.fail "rule did not match"

(* --- Theorem 3.3 ------------------------------------------------------- *)

let test_thm33_associativity () =
  let assoc_ok rule build =
    let lhs = build () in
    match rule lhs with
    | Some rhs -> equiv lhs rhs
    | None -> false
  in
  Alcotest.(check bool) "× associativity" true
    (assoc_ok Equiv.assoc_left_product (fun () ->
         Expr.product (Expr.rel "e1")
           (Expr.product (Expr.rel "e2") (Expr.rel "e3"))));
  Alcotest.(check bool) "⊎ associativity" true
    (assoc_ok Equiv.assoc_left_union (fun () ->
         Expr.union (Expr.rel "e1")
           (Expr.union (Expr.rel "e2") (Expr.rel "e3"))));
  Alcotest.(check bool) "∩ associativity" true
    (assoc_ok Equiv.assoc_left_intersect (fun () ->
         Expr.intersect (Expr.rel "e1")
           (Expr.intersect (Expr.rel "e2") (Expr.rel "e3"))))

let test_thm33_join_associativity () =
  let env = Typecheck.env_of_database db_small in
  (* e1 ⋈_{%1=%3} (e2 ⋈_{%1=%3} e3): inner condition relative to e2⊕e3. *)
  let inner = Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "e2") (Expr.rel "e3") in
  let lhs = Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "e1") inner in
  (match Equiv.assoc_left_join env lhs with
  | Some rhs ->
      Alcotest.(check bool) "⋈ reassociates left" true (equiv lhs rhs)
  | None -> Alcotest.fail "assoc_left_join did not match");
  let inner' = Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "e1") (Expr.rel "e2") in
  let lhs' = Expr.join (Pred.eq (Scalar.attr 3) (Scalar.attr 5)) inner' (Expr.rel "e3") in
  match Equiv.assoc_right_join env lhs' with
  | Some rhs ->
      Alcotest.(check bool) "⋈ reassociates right" true (equiv lhs' rhs)
  | None -> Alcotest.fail "assoc_right_join did not match"

(* --- classical extras on concrete inputs ------------------------------- *)

let test_select_cascade_and_commute () =
  let p = Pred.gt (Scalar.attr 1) (Scalar.int 0) in
  let q = Pred.lt (Scalar.attr 2) (Scalar.int 3) in
  let merged = Expr.select (Pred.And (p, q)) (Expr.rel "e1") in
  (match Equiv.cascade_select merged with
  | Some cascaded ->
      Alcotest.(check bool) "cascade" true (equiv merged cascaded);
      (match Equiv.commute_select cascaded with
      | Some commuted -> Alcotest.(check bool) "commute" true (equiv cascaded commuted)
      | None -> Alcotest.fail "commute did not match");
      (match Equiv.merge_select cascaded with
      | Some merged' -> Alcotest.(check bool) "merge back" true (equiv merged merged')
      | None -> Alcotest.fail "merge did not match")
  | None -> Alcotest.fail "cascade did not match")

let test_commute_product_join () =
  let env = Typecheck.env_of_database db_small in
  let prod = Expr.product (Expr.rel "e1") (Expr.rel "e2") in
  (match Equiv.commute_product env prod with
  | Some rhs -> Alcotest.(check bool) "× commutes via π" true (equiv prod rhs)
  | None -> Alcotest.fail "commute_product did not match");
  let j =
    Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 3)) (Expr.rel "e1") (Expr.rel "e2")
  in
  match Equiv.commute_join env j with
  | Some rhs -> Alcotest.(check bool) "⋈ commutes via π" true (equiv j rhs)
  | None -> Alcotest.fail "commute_join did not match"

(* --- property: every rule in the table preserves semantics ------------- *)

(* For each rule, walk random expressions top-down and try to apply it at
   every node; whenever it fires, both whole expressions must agree. *)
let rec rewrite_somewhere apply env e =
  match apply env e with
  | Some e' -> Some e'
  | None ->
      let children_rewritten = ref false in
      let e' =
        Expr.map_children
          (fun child ->
            if !children_rewritten then child
            else
              match rewrite_somewhere apply env child with
              | Some child' ->
                  children_rewritten := true;
                  child'
              | None -> child)
          e
      in
      if !children_rewritten then Some e' else None

let rule_property (rule : Equiv.rule) =
  let name = "rule preserves semantics: " ^ rule.Equiv.rule_name in
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let env = Typecheck.env_of_database scen.W.Gen_expr.db in
    match rewrite_somewhere rule.Equiv.apply env scen.W.Gen_expr.expr with
    | None -> true (* rule did not fire on this expression *)
    | Some rewritten -> (
        match
          Equiv.equivalent_on scen.W.Gen_expr.db scen.W.Gen_expr.expr rewritten
        with
        | ok -> ok
        | exception Aggregate.Undefined _ -> true)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:120 QCheck.small_nat test)

let rule_properties = List.map rule_property Equiv.all_rules

(* --- differential: laws through the planner and executor --------------- *)

(* [Equiv.equivalent_on] checks the laws against the reference
   evaluator; these properties check them against what actually runs:
   both sides of each fired rule are planned and executed at every
   (chunk size, fragment count) combination of the differential matrix
   — chunk sizes {1, 7, 64, 1024} × jobs {1, 2, 4} — and all results
   must be the same bag.  A law that held in Eval but broke in a
   physical operator, in its parallel split, or only at a particular
   chunk boundary surfaces here. *)
let () = Mxra_ext.Pool.set_default_size 4

let chunk_sizes = [ 1; 7; 64; 1024 ]
let jobs_list = [ 1; 2; 4 ]

(* All twelve (chunk, jobs) executions of [e]; [cores:jobs] because on
   a single-core host the adaptive planner would otherwise — correctly
   — refuse to insert Exchange at all. *)
let exec_matrix db e =
  List.concat_map
    (fun jobs ->
      let plan =
        Mxra_engine.Planner.plan ~jobs ~cores:jobs ~parallel_threshold:0 db e
      in
      List.map
        (fun chunk_size -> Mxra_engine.Exec.run ~chunk_size db plan)
        chunk_sizes)
    jobs_list

let differential_property (rule : Equiv.rule) =
  let name = "planner/exec differential: " ^ rule.Equiv.rule_name in
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let env = Typecheck.env_of_database scen.W.Gen_expr.db in
    match rewrite_somewhere rule.Equiv.apply env scen.W.Gen_expr.expr with
    | None -> true (* rule did not fire on this expression *)
    | Some rewritten -> (
        match
          let db = scen.W.Gen_expr.db in
          let lhs = exec_matrix db scen.W.Gen_expr.expr in
          let rhs = exec_matrix db rewritten in
          let reference = List.hd lhs in
          List.for_all (Relation.equal reference) (List.tl lhs @ rhs)
        with
        | ok -> ok
        | exception Aggregate.Undefined _ -> true)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:20 QCheck.small_nat test)

let differential_properties = List.map differential_property Equiv.all_rules

let suite =
  ( "equiv",
    [
      Alcotest.test_case "Thm 3.1: intersection derived" `Quick test_thm31_intersect;
      Alcotest.test_case "Thm 3.1: join derived" `Quick test_thm31_join;
      Alcotest.test_case "Thm 3.2: σ over ⊎" `Quick test_thm32_select_union;
      Alcotest.test_case "Thm 3.2: π over ⊎" `Quick test_thm32_project_union;
      Alcotest.test_case "δ does not distribute over ⊎" `Quick
        test_unique_does_not_distribute;
      Alcotest.test_case "Thm 3.3: ×,⊎,∩ associativity" `Quick
        test_thm33_associativity;
      Alcotest.test_case "Thm 3.3: ⋈ associativity" `Quick
        test_thm33_join_associativity;
      Alcotest.test_case "select cascade/commute/merge" `Quick
        test_select_cascade_and_commute;
      Alcotest.test_case "product/join commutation" `Quick
        test_commute_product_join;
    ]
    @ rule_properties @ differential_properties )
