(* Isolation tests: scheduler batches are equivalent to serial
   execution (the paper's isolation semantics) and aborted victims
   leave no trace.  Most tests run under the session default isolation
   (CI exercises both MXRA_ISOLATION=si and =2pl); the lock-protocol
   tests pin [~isolation:Scheduler.Two_pl] because blocking and
   deadlocks only exist there.  SI-specific anomalies live in
   test_mvcc.ml. *)

open Mxra_relational
open Mxra_core
open Mxra_concurrency
module W = Mxra_workload

let s_acct = Schema.of_list [ ("id", Domain.DInt); ("bal", Domain.DInt) ]
let acct i b = Tuple.of_list [ Value.Int i; Value.Int b ]

let bank accounts =
  Database.of_relations
    [ ("acct", Relation.of_list s_acct (List.init accounts (fun i -> acct i 100))) ]

let update_balance id delta =
  Statement.Update
    ( "acct",
      Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id)) (Expr.rel "acct"),
      [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int delta) ] )

let transfer src dst amount =
  Transaction.make
    ~name:(Printf.sprintf "%d->%d" src dst)
    [ update_balance src (-amount); update_balance dst amount ]

let total db =
  match
    Relation.to_list
      (Eval.eval db (Expr.aggregate Aggregate.Sum 2 (Expr.rel "acct")))
  with
  | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> -1)
  | _ -> -1

(* --- basic ---------------------------------------------------------------- *)

let test_single_transaction () =
  let db = bank 4 in
  let result = Scheduler.run ~seed:1 db [ transfer 0 1 10 ] in
  Alcotest.(check bool) "committed" true (result.Scheduler.outcomes = [ Scheduler.Committed ]);
  Alcotest.(check int) "effect applied" 90
    (match Relation.to_list
             (Eval.eval result.Scheduler.final
                (Expr.project_attrs [ 2 ]
                   (Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 0))
                      (Expr.rel "acct"))))
     with
    | [ t ] -> ( match Tuple.attr t 1 with Value.Int n -> n | _ -> -1)
    | _ -> -1);
  Alcotest.(check bool) "serial-equivalent" true
    (Scheduler.equivalent_serial db [ transfer 0 1 10 ] result)

let test_interleaving_conserves () =
  let db = bank 8 in
  let rng = W.Rng.make 5 in
  let txns =
    List.init 30 (fun _ ->
        transfer (W.Rng.int rng 8) (W.Rng.int rng 8) (1 + W.Rng.int rng 20))
  in
  List.iter
    (fun seed ->
      let result = Scheduler.run ~seed db txns in
      Alcotest.(check int)
        (Printf.sprintf "balance conserved (seed %d)" seed)
        (total db) (total result.Scheduler.final);
      Alcotest.(check bool)
        (Printf.sprintf "serial-equivalent (seed %d)" seed)
        true
        (Scheduler.equivalent_serial db txns result))
    [ 1; 2; 3; 4; 5 ]

let test_statement_failure_aborts () =
  let db = bank 2 in
  let poisoned =
    Transaction.make
      [
        update_balance 0 (-10);
        Statement.Insert ("missing", Expr.rel "acct");
        update_balance 1 10;
      ]
  in
  let result = Scheduler.run ~seed:3 db [ poisoned; transfer 0 1 5 ] in
  (match result.Scheduler.outcomes with
  | [ Scheduler.Aborted _; Scheduler.Committed ] -> ()
  | _ -> Alcotest.fail "expected abort then commit");
  Alcotest.(check int) "undo restored the debit" (total db)
    (total result.Scheduler.final);
  Alcotest.(check bool) "serial-equivalent" true
    (Scheduler.equivalent_serial db [ poisoned; transfer 0 1 5 ] result)

let test_abort_if_guard () =
  let db = bank 2 in
  let guarded =
    Transaction.make
      ~abort_if:(fun db ->
        Relation.mem (acct 0 50)
          (Database.find "acct" db))
      [ update_balance 0 (-50) ]
  in
  let result = Scheduler.run ~seed:1 db [ guarded ] in
  (match result.Scheduler.outcomes with
  | [ Scheduler.Aborted _ ] -> ()
  | _ -> Alcotest.fail "guard should fire");
  Alcotest.(check bool) "undone" true
    (Database.equal_states db result.Scheduler.final)

(* --- locking behaviour ------------------------------------------------------ *)

let test_conflicting_writers_serialize () =
  (* Two transactions writing the same relation must not interleave
     between each other's statements: with relation-level X locks the
     second blocks until the first finishes.  (2PL-specific: under SI
     the second writer aborts instead — see test_mvcc.ml.) *)
  let db = bank 2 in
  let t1 = transfer 0 1 10 and t2 = transfer 1 0 25 in
  List.iter
    (fun seed ->
      let result =
        Scheduler.run ~isolation:Scheduler.Two_pl ~seed db [ t1; t2 ]
      in
      Alcotest.(check (list bool)) "both committed" [ true; true ]
        (List.map
           (function Scheduler.Committed -> true | Scheduler.Aborted _ -> false)
           result.Scheduler.outcomes);
      Alcotest.(check bool) "serial-equivalent" true
        (Scheduler.equivalent_serial db [ t1; t2 ] result))
    (List.init 8 (fun i -> i))

let test_readers_share () =
  (* Pure readers on the same relation never block each other. *)
  let db = bank 2 in
  let reader = Transaction.make [ Statement.Query (Expr.rel "acct") ] in
  let result = Scheduler.run ~seed:7 db [ reader; reader; reader ] in
  Alcotest.(check int) "no blocking among readers" 0
    result.Scheduler.stats.Scheduler.blocks

let test_deadlock_broken () =
  (* Writers on two relations in opposite orders: a classic deadlock.
     The scheduler must abort a victim and finish the other.
     (2PL-specific: SI takes no locks, so deadlock cannot arise.) *)
  let schema = Schema.of_list [ ("x", Domain.DInt) ] in
  let one = Relation.of_list schema [ Tuple.of_list [ Value.Int 1 ] ] in
  let db = Database.of_relations [ ("r", one); ("s", one) ] in
  let bump name = Statement.Insert (name, Expr.rel name) in
  let t_rs = Transaction.make [ bump "r"; bump "s" ] in
  let t_sr = Transaction.make [ bump "s"; bump "r" ] in
  let saw_deadlock = ref false in
  List.iter
    (fun seed ->
      let result =
        Scheduler.run ~isolation:Scheduler.Two_pl ~seed db [ t_rs; t_sr ]
      in
      if result.Scheduler.stats.Scheduler.deadlocks > 0 then begin
        saw_deadlock := true;
        (* Exactly one victim; the survivor's effects are intact. *)
        let committed =
          List.filter
            (function Scheduler.Committed -> true | Scheduler.Aborted _ -> false)
            result.Scheduler.outcomes
        in
        Alcotest.(check int) "one survivor" 1 (List.length committed)
      end;
      Alcotest.(check bool)
        (Printf.sprintf "serial-equivalent (seed %d)" seed)
        true
        (Scheduler.equivalent_serial db [ t_rs; t_sr ] result))
    (List.init 20 (fun i -> i));
  Alcotest.(check bool) "deadlock exercised at least once" true !saw_deadlock

let test_temporaries_are_private () =
  (* Two transactions using the same temporary name must not clash. *)
  let db = bank 2 in
  let via_temp delta =
    Transaction.make
      [
        Statement.Assign ("t", Expr.rel "acct");
        Statement.Delete ("acct", Expr.rel "acct");
        Statement.Insert
          ("acct",
           Expr.project
             [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int delta) ]
             (Expr.rel "t"));
      ]
  in
  List.iter
    (fun seed ->
      (* Both transactions S-lock acct via the assign and then want the
         X lock — some seeds deadlock with one victim, which is correct
         2PL behaviour; in every case the schedule must be equivalent to
         the serial run of the committed subset. *)
      let txns = [ via_temp 1; via_temp 2 ] in
      let result = Scheduler.run ~seed db txns in
      let expected_delta =
        List.fold_left
          (fun acc i -> acc + (2 * (i + 1)))
          0 result.Scheduler.commit_order
      in
      Alcotest.(check int) "committed deltas applied" (total db + expected_delta)
        (total result.Scheduler.final);
      Alcotest.(check bool) "serial-equivalent" true
        (Scheduler.equivalent_serial db txns result);
      Alcotest.(check bool) "no temp leaked" false
        (Database.mem "t" result.Scheduler.final))
    (List.init 10 (fun i -> i))

(* --- property: random batches are serializable ------------------------------ *)

let serializability_property =
  let test seed =
    let rng = W.Rng.make seed in
    let accounts = 4 + W.Rng.int rng 4 in
    let db = bank accounts in
    let txns =
      List.init
        (3 + W.Rng.int rng 6)
        (fun _ ->
          transfer (W.Rng.int rng accounts) (W.Rng.int rng accounts)
            (1 + W.Rng.int rng 30))
    in
    let result = Scheduler.run ~seed db txns in
    Scheduler.equivalent_serial db txns result
    && total result.Scheduler.final = total db
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"schedules are serializable" ~count:200
       QCheck.small_nat test)

let suite =
  ( "concurrency",
    [
      Alcotest.test_case "single transaction" `Quick test_single_transaction;
      Alcotest.test_case "interleaving conserves balances" `Quick
        test_interleaving_conserves;
      Alcotest.test_case "statement failure aborts" `Quick
        test_statement_failure_aborts;
      Alcotest.test_case "abort_if guard" `Quick test_abort_if_guard;
      Alcotest.test_case "conflicting writers serialize" `Quick
        test_conflicting_writers_serialize;
      Alcotest.test_case "readers share" `Quick test_readers_share;
      Alcotest.test_case "deadlock broken" `Quick test_deadlock_broken;
      Alcotest.test_case "temporaries are private" `Quick
        test_temporaries_are_private;
      serializability_property;
    ] )
