(* Secondary indexes: definition bookkeeping on the database value,
   structure correctness against the reference evaluator, incremental
   maintenance through the write observer (including abort-style
   reversion to earlier states), planner selection of index paths, and
   the differential harness over indexed plans — chunk sizes × jobs,
   every result bag-equal to Eval. *)

open Mxra_relational
open Mxra_core
module Engine = Mxra_engine
module Index = Mxra_ext.Index
module W = Mxra_workload

let () = Mxra_ext.Pool.set_default_size 4

let relation_t =
  Alcotest.testable (fun ppf r -> Relation.pp ppf r) Relation.equal

let check_rel = Alcotest.check relation_t

let two_int_schema = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DInt) ]

let random_bag seed =
  let rng = W.Rng.make (seed + 1) in
  W.Synth.two_column_int ~rng
    ~size:(40 + (seed mod 60))
    ~distinct:(1 + (seed mod 12))

let def_hash_a =
  { Database.idx_name = "r_a"; idx_rel = "r"; idx_cols = [ 1 ];
    idx_kind = Database.Hash }

let def_ord_a =
  { Database.idx_name = "r_a_ord"; idx_rel = "r"; idx_cols = [ 1 ];
    idx_kind = Database.Ordered }

(* --- definitions on the database value --------------------------------- *)

let test_def_bookkeeping () =
  let db =
    Database.empty
    |> Database.create "r" two_int_schema
    |> Database.create_index ~name:"r_a" ~rel:"r" ~cols:[ 1 ]
         ~kind:Database.Hash
    |> Database.create_index ~name:"r_ab" ~rel:"r" ~cols:[ 1; 2 ]
         ~kind:Database.Hash
  in
  Alcotest.(check int) "two defs" 2 (List.length (Database.index_defs db));
  Alcotest.(check int) "both on r" 2 (List.length (Database.indexes_on "r" db));
  Alcotest.(check string) "find" "r"
    (Database.find_index "r_a" db).Database.idx_rel;
  let db = Database.drop_index "r_ab" db in
  Alcotest.(check int) "one def after drop" 1
    (List.length (Database.index_defs db));
  (* Dropping the relation cascades to its index definitions. *)
  let db = Database.drop "r" db in
  Alcotest.(check int) "cascade" 0 (List.length (Database.index_defs db))

let test_def_errors () =
  let db = Database.create "r" two_int_schema Database.empty in
  let mk ?(name = "i") ?(rel = "r") ?(cols = [ 1 ]) ?(kind = Database.Hash) db =
    Database.create_index ~name ~rel ~cols ~kind db
  in
  Alcotest.check_raises "unknown relation" (Database.Unknown_relation "nope")
    (fun () -> ignore (mk ~rel:"nope" db));
  let db = mk db in
  Alcotest.check_raises "duplicate" (Database.Duplicate_index "i") (fun () ->
      ignore (mk db));
  Alcotest.check_raises "unknown index" (Database.Unknown_index "j") (fun () ->
      ignore (Database.drop_index "j" db));
  (match mk ~name:"k" ~cols:[ 3 ] db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "column out of range accepted");
  (match mk ~name:"k" ~cols:[ 1; 2 ] ~kind:Database.Ordered db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "multi-column ordered accepted");
  let db = Database.assign_temporary "t" (Relation.empty two_int_schema) db in
  match mk ~name:"k" ~rel:"t" db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "index on temporary accepted"

(* --- probes against the evaluator -------------------------------------- *)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:100 gen f)

let point_probe_matches =
  prop "point probe = σ[%1 = v]" QCheck.(pair small_nat (int_range 0 12))
    (fun (seed, v) ->
      let r = random_bag seed in
      let expected =
        Relation.bag (Eval.select (Pred.eq (Scalar.attr 1) (Scalar.int v)) r)
      in
      List.for_all
        (fun def ->
          Relation.Bag.equal expected
            (Index.probe_point (Index.build def r) [ Value.Int v ]))
        [ def_hash_a; def_ord_a ])

let range_probe_matches =
  prop "range probe = σ[lo ≤ %1 ≤ hi]"
    QCheck.(
      tup5 small_nat (int_range 0 12) (int_range 0 12) bool bool)
    (fun (seed, lo, hi, lo_incl, hi_incl) ->
      let r = random_bag seed in
      let idx = Index.build def_ord_a r in
      let bound v incl = Some { Index.b_value = Value.Int v; b_incl = incl } in
      let lo_p =
        if lo_incl then Pred.ge (Scalar.attr 1) (Scalar.int lo)
        else Pred.gt (Scalar.attr 1) (Scalar.int lo)
      and hi_p =
        if hi_incl then Pred.le (Scalar.attr 1) (Scalar.int hi)
        else Pred.lt (Scalar.attr 1) (Scalar.int hi)
      in
      let expected =
        Relation.bag (Eval.select (Pred.And (lo_p, hi_p)) r)
      in
      let got =
        Relation.Bag.of_counted_seq
          (Index.probe_range idx (bound lo lo_incl) (bound hi hi_incl))
      in
      Relation.Bag.equal expected got)

let half_open_range_matches =
  prop "one-sided ranges" QCheck.(pair small_nat (int_range 0 12))
    (fun (seed, v) ->
      let r = random_bag seed in
      let idx = Index.build def_ord_a r in
      let bound incl = Some { Index.b_value = Value.Int v; b_incl = incl } in
      let bag_of s = Relation.Bag.of_counted_seq s in
      Relation.Bag.equal
        (Relation.bag (Eval.select (Pred.ge (Scalar.attr 1) (Scalar.int v)) r))
        (bag_of (Index.probe_range idx (bound true) None))
      && Relation.Bag.equal
           (Relation.bag
              (Eval.select (Pred.lt (Scalar.attr 1) (Scalar.int v)) r))
           (bag_of (Index.probe_range idx None (bound false)))
      && Relation.Bag.equal (Relation.bag r)
           (bag_of (Index.probe_range idx None None)))

(* --- incremental maintenance ------------------------------------------- *)

(* Structural agreement of two index structures over a relation: same
   key statistics, and every key of the relation posts the same bag. *)
let same_structure def r i1 i2 =
  let keys =
    Relation.Bag.fold
      (fun t _ acc ->
        let k = List.map (Tuple.attr t) def.Database.idx_cols in
        if List.mem k acc then acc else k :: acc)
      (Relation.bag r) []
  in
  Index.distinct_keys i1 = Index.distinct_keys i2
  && Index.entry_count i1 = Index.entry_count i2
  && List.for_all
       (fun k ->
         Relation.Bag.equal (Index.probe_point i1 k) (Index.probe_point i2 k))
       keys

let apply_matches_rebuild =
  prop "apply Δ = rebuild" QCheck.(pair small_nat small_nat)
    (fun (seed, seed2) ->
      let r = random_bag seed and d = random_bag seed2 in
      List.for_all
        (fun def ->
          let idx = Index.build def r in
          (* Mirror a statement's delta: removals are bounded by what is
             present (monus), additions are unconditional. *)
          let removed = Relation.Bag.inter (Relation.bag r) (Relation.bag d) in
          let after =
            Relation.Bag.sum
              (Relation.Bag.diff (Relation.bag r) removed)
              (Relation.bag d)
          in
          let r' = Relation.of_bag_unchecked two_int_schema after in
          same_structure def r'
            (Index.apply idx ~added:(Relation.bag d) ~removed)
            (Index.build def r'))
        [ def_hash_a; def_ord_a ])

(* Random statement workloads against an indexed relation, with
   abort-style reversion to earlier database values: at every point the
   served structure must agree with a fresh build of the live value. *)
let mutation_consistency =
  prop "cached structure tracks insert/delete/update/abort"
    QCheck.(pair small_nat (list_of_size Gen.(int_range 1 12) (int_range 0 99)))
    (fun (seed, ops) ->
      let r0 = random_bag seed in
      let db0 =
        Database.empty
        |> Database.create "r" two_int_schema
        |> (fun db -> fst (Statement.exec db (Statement.Insert ("r", Expr.const r0))))
        |> Database.create_index ~name:"r_a" ~rel:"r" ~cols:[ 1 ]
             ~kind:Database.Hash
        |> Database.create_index ~name:"r_a_ord" ~rel:"r" ~cols:[ 1 ]
             ~kind:Database.Ordered
      in
      (* Prime the cache so the observer has structures to roll forward. *)
      List.iter
        (fun def -> ignore (Index.get def (Database.find "r" db0)))
        [ def_hash_a; def_ord_a ];
      let step (db, history) op =
        let sel v = Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int v)) (Expr.rel "r") in
        let db' =
          match op mod 4 with
          | 0 ->
              fst (Statement.exec db
                     (Statement.Insert ("r", Expr.const (random_bag (op + seed)))))
          | 1 -> fst (Statement.exec db (Statement.Delete ("r", sel (op mod 13))))
          | 2 ->
              fst (Statement.exec db
                     (Statement.Update
                        ( "r", sel (op mod 13),
                          [ Scalar.add (Scalar.attr 1) (Scalar.int 1);
                            Scalar.attr 2 ] )))
          | _ ->
              (* Abort/undo: re-install an earlier state, exactly what
                 the scheduler's before-image rollback does. *)
              List.nth history (op mod List.length history)
        in
        (db', db' :: history)
      in
      let db, _ = List.fold_left step (db0, [ db0 ]) ops in
      let r = Database.find "r" db in
      List.for_all
        (fun def -> same_structure def r (Index.get def r) (Index.build def r))
        [ def_hash_a; def_ord_a ])

(* --- planner selection -------------------------------------------------- *)

let rec plan_has pred plan =
  pred plan || List.exists (plan_has pred) (Engine.Physical.children plan)

let is_index_scan = function
  | Engine.Physical.Index_scan _ -> true
  | _ -> false

let is_index_join = function
  | Engine.Physical.Index_join _ -> true
  | _ -> false

let big_db () =
  let rng = W.Rng.make 7 in
  let big = W.Synth.two_column_int ~rng ~size:2000 ~distinct:100 in
  Database.empty
  |> Database.create "big" two_int_schema
  |> (fun db -> fst (Statement.exec db (Statement.Insert ("big", Expr.const big))))
  |> Database.create_index ~name:"big_a" ~rel:"big" ~cols:[ 1 ]
       ~kind:Database.Hash
  |> Database.create_index ~name:"big_a_ord" ~rel:"big" ~cols:[ 1 ]
       ~kind:Database.Ordered

let test_planner_picks_index_scan () =
  let db = big_db () in
  let point = Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 5)) (Expr.rel "big") in
  Alcotest.(check bool) "point chooses IndexScan" true
    (plan_has is_index_scan (Engine.Planner.plan db point));
  let range =
    Expr.select
      (Pred.And
         (Pred.ge (Scalar.attr 1) (Scalar.int 10),
          Pred.lt (Scalar.attr 1) (Scalar.int 20)))
      (Expr.rel "big")
  in
  Alcotest.(check bool) "range chooses IndexScan" true
    (plan_has is_index_scan (Engine.Planner.plan db range));
  (* Without an index definition the same query seq-scans. *)
  let bare =
    Database.of_relations [ ("big", Database.find "big" db) ]
  in
  Alcotest.(check bool) "no def, no IndexScan" false
    (plan_has is_index_scan (Engine.Planner.plan bare point));
  (* Execution agrees with the evaluator on the index path. *)
  check_rel "point result" (Eval.eval db point)
    (Engine.Exec.run db (Engine.Planner.plan db point));
  check_rel "range result" (Eval.eval db range)
    (Engine.Exec.run db (Engine.Planner.plan db range))

let test_planner_picks_index_join () =
  let db = big_db () in
  let outer =
    Relation.of_list (Schema.of_list [ ("k", Domain.DInt) ])
      (List.init 10 (fun i -> Tuple.of_list [ Value.Int (i * 7) ]))
  in
  let join =
    Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 2)) (Expr.const outer)
      (Expr.rel "big")
  in
  let plan = Engine.Planner.plan db join in
  Alcotest.(check bool) "small ⋈ big chooses IndexNestedLoopJoin" true
    (plan_has is_index_join plan);
  check_rel "join result" (Eval.eval db join) (Engine.Exec.run db plan)

(* --- EXPLAIN ANALYZE q-error on index paths ----------------------------- *)

let test_index_q_error () =
  let db = big_db () in
  let queries =
    List.concat_map
      (fun v ->
        [
          Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int v)) (Expr.rel "big");
          Expr.select
            (Pred.And
               (Pred.ge (Scalar.attr 1) (Scalar.int v),
                Pred.lt (Scalar.attr 1) (Scalar.int (v + 10))))
            (Expr.rel "big");
        ])
      [ 5; 37; 80 ]
  in
  let q_errors =
    List.map
      (fun e ->
        let a = Engine.Exec.explain_analyze db e in
        Alcotest.(check bool) "runs on an index path" true
          (plan_has is_index_scan a.Engine.Exec.root.Engine.Exec.node);
        a.Engine.Exec.root.Engine.Exec.q_error)
      queries
  in
  let mean_q =
    exp (List.fold_left (fun acc q -> acc +. log q) 0.0 q_errors
         /. float_of_int (List.length q_errors))
  in
  if mean_q > 2.0 then
    Alcotest.failf "mean q-error %.2f over indexed selections exceeds 2" mean_q

(* --- differential harness over indexed plans ---------------------------- *)

let with_forced_index f =
  Unix.putenv "MXRA_FORCE_INDEX" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "MXRA_FORCE_INDEX" "0") f

let test_indexed_plans_differential () =
  with_forced_index @@ fun () ->
  let rng = W.Rng.make 11 in
  let a = W.Synth.two_column_int ~rng ~size:300 ~distinct:17 in
  let b, _ = W.Synth.join_pair ~rng ~left:60 ~right:40 ~key_range:10 in
  let db =
    Database.of_relations [ ("a", a); ("b", b) ]
    |> Database.create_index ~name:"a_1" ~rel:"a" ~cols:[ 1 ]
         ~kind:Database.Hash
    |> Database.create_index ~name:"a_1_ord" ~rel:"a" ~cols:[ 1 ]
         ~kind:Database.Ordered
    |> Database.create_index ~name:"a_12" ~rel:"a" ~cols:[ 1; 2 ]
         ~kind:Database.Hash
  in
  let queries =
    [
      Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 5)) (Expr.rel "a");
      Expr.select
        (Pred.And
           (Pred.eq (Scalar.attr 1) (Scalar.int 5),
            Pred.eq (Scalar.attr 2) (Scalar.int 3)))
        (Expr.rel "a");
      Expr.select
        (Pred.And
           (Pred.eq (Scalar.attr 1) (Scalar.int 5),
            Pred.lt (Scalar.attr 2) (Scalar.int 9)))
        (Expr.rel "a");
      Expr.select
        (Pred.And
           (Pred.gt (Scalar.attr 1) (Scalar.int 3),
            Pred.le (Scalar.attr 1) (Scalar.int 12)))
        (Expr.rel "a");
      Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "b")
        (Expr.rel "a");
      Expr.join
        (Pred.And
           (Pred.eq (Scalar.attr 1) (Scalar.attr 3),
            Pred.lt (Scalar.attr 2) (Scalar.attr 4)))
        (Expr.rel "b") (Expr.rel "a");
    ]
  in
  List.iter
    (fun e ->
      let expected = Eval.eval db e in
      List.iter
        (fun jobs ->
          let plan = Engine.Planner.plan ~jobs db e in
          Alcotest.(check bool)
            (Printf.sprintf "forced plan uses an index (%s)" (Expr.to_string e))
            true
            (plan_has (fun n -> is_index_scan n || is_index_join n) plan);
          List.iter
            (fun chunk_size ->
              check_rel
                (Printf.sprintf "%s [chunk=%d jobs=%d]" (Expr.to_string e)
                   chunk_size jobs)
                expected
                (Engine.Exec.run ~chunk_size db plan))
            [ 1; 7; 64; 1024 ])
        [ 1; 2; 4 ])
    queries

(* --- durability of definitions ------------------------------------------ *)

let test_codec_roundtrip () =
  let db =
    big_db ()
    |> Database.create "empty" two_int_schema
  in
  let decoded =
    Mxra_storage.Codec.decode_database (Mxra_storage.Codec.encode_database db)
  in
  Alcotest.(check int) "defs survive the snapshot" 2
    (List.length (Database.index_defs decoded));
  let def = Database.find_index "big_a" decoded in
  Alcotest.(check string) "rel" "big" def.Database.idx_rel;
  check_rel "data survives too" (Database.find "big" db)
    (Database.find "big" decoded)

let suite =
  ( "index",
    [
      Alcotest.test_case "definition bookkeeping" `Quick test_def_bookkeeping;
      Alcotest.test_case "definition errors" `Quick test_def_errors;
      point_probe_matches;
      range_probe_matches;
      half_open_range_matches;
      apply_matches_rebuild;
      mutation_consistency;
      Alcotest.test_case "planner picks IndexScan on cost" `Quick
        test_planner_picks_index_scan;
      Alcotest.test_case "planner picks IndexNestedLoopJoin on cost" `Quick
        test_planner_picks_index_join;
      Alcotest.test_case "q-error ≤ 2 on indexed selections" `Quick
        test_index_q_error;
      Alcotest.test_case "indexed plans: differential vs Eval" `Quick
        test_indexed_plans_differential;
      Alcotest.test_case "index defs survive codec round-trip" `Quick
        test_codec_roundtrip;
    ] )
