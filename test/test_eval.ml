(* Tests of the reference evaluator against hand-computed multiplicities
   from the paper's definitions (3.1, 3.2, 3.4), plus the worked examples
   of Sections 3 and 4 on the tiny beer database. *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

let s_int2 = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DInt) ]
let tup a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let rel pairs = Relation.of_counted_list s_int2 pairs
let check_rel msg expected actual =
  Alcotest.(check bool)
    (msg ^ " (got " ^ Relation.to_string actual ^ ")")
    true
    (Relation.equal expected actual)

let e r = Expr.const r
let run expr = Eval.eval_closed expr

(* Two overlapping bags used throughout. *)
let r1 = rel [ (tup 1 1, 3); (tup 2 2, 1) ]
let r2 = rel [ (tup 1 1, 1); (tup 3 3, 2) ]

let test_union () =
  check_rel "multiplicities add"
    (rel [ (tup 1 1, 4); (tup 2 2, 1); (tup 3 3, 2) ])
    (run (Expr.union (e r1) (e r2)))

let test_diff () =
  check_rel "monus" (rel [ (tup 1 1, 2); (tup 2 2, 1) ])
    (run (Expr.diff (e r1) (e r2)));
  check_rel "monus other way" (rel [ (tup 3 3, 2) ])
    (run (Expr.diff (e r2) (e r1)))

let test_intersect () =
  check_rel "pointwise min" (rel [ (tup 1 1, 1) ])
    (run (Expr.intersect (e r1) (e r2)))

let test_product () =
  let left = rel [ (tup 1 2, 2) ] in
  let right =
    Relation.of_counted_list (Schema.of_list [ ("c", Domain.DInt) ])
      [ (Tuple.of_list [ Value.Int 9 ], 3) ]
  in
  let result = run (Expr.product (e left) (e right)) in
  Alcotest.(check int) "multiplicities multiply" 6
    (Relation.multiplicity (Tuple.of_list [ Value.Int 1; Value.Int 2; Value.Int 9 ]) result);
  Alcotest.(check int) "schema concatenated" 3
    (Schema.arity (Relation.schema result))

let test_select () =
  let p = Pred.gt (Scalar.attr 1) (Scalar.int 1) in
  check_rel "keeps multiplicities of satisfying tuples"
    (rel [ (tup 2 2, 1) ])
    (run (Expr.select p (e r1)))

let test_project_accumulates () =
  (* π on bags: pre-images accumulate, no duplicate elimination. *)
  let r = rel [ (tup 1 1, 2); (tup 1 2, 3) ] in
  let result = run (Expr.project_attrs [ 1 ] (e r)) in
  Alcotest.(check int) "sum over pre-image" 5
    (Relation.multiplicity (Tuple.of_list [ Value.Int 1 ]) result);
  Alcotest.(check int) "cardinality preserved" 5 (Relation.cardinal result)

let test_extended_projection () =
  let r = rel [ (tup 2 5, 1) ] in
  let exprs = [ Scalar.add (Scalar.attr 1) (Scalar.attr 2); Scalar.attr 1 ] in
  let result = run (Expr.project exprs (e r)) in
  Alcotest.(check int) "arithmetic applied" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 7; Value.Int 2 ]) result)

let test_join_is_selected_product () =
  let left = rel [ (tup 1 10, 2); (tup 2 20, 1) ] in
  let right = rel [ (tup 1 99, 3) ] in
  let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let joined = run (Expr.join p (e left) (e right)) in
  let via_product = run (Expr.select p (Expr.product (e left) (e right))) in
  Alcotest.(check bool) "join = select of product (Thm 3.1)" true
    (Relation.equal joined via_product);
  Alcotest.(check int) "match multiplicity 2*3" 6
    (Relation.multiplicity
       (Tuple.of_list [ Value.Int 1; Value.Int 10; Value.Int 1; Value.Int 99 ])
       joined)

let test_unique () =
  let result = run (Expr.unique (e r1)) in
  Alcotest.(check int) "all multiplicities 1" 1
    (Relation.multiplicity (tup 1 1) result);
  Alcotest.(check int) "support preserved" 2 (Relation.cardinal result)

let test_groupby () =
  (* Group (a,b) by a, CNT and SUM of b; multiplicities weigh in. *)
  let r = rel [ (tup 1 10, 2); (tup 1 20, 1); (tup 2 5, 1) ] in
  let result =
    run (Expr.group_by [ 1 ] [ (Aggregate.Cnt, 2); (Aggregate.Sum, 2) ] (e r))
  in
  let row a cnt sum =
    Tuple.of_list [ Value.Int a; Value.Int cnt; Value.Int sum ]
  in
  Alcotest.(check int) "group 1" 1 (Relation.multiplicity (row 1 3 40) result);
  Alcotest.(check int) "group 2" 1 (Relation.multiplicity (row 2 1 5) result);
  Alcotest.(check int) "two groups" 2 (Relation.cardinal result)

let test_groupby_empty_alpha () =
  let r = rel [ (tup 1 10, 2); (tup 2 20, 1) ] in
  let result = run (Expr.aggregate Aggregate.Sum 2 (e r)) in
  Alcotest.(check int) "single tuple" 1 (Relation.cardinal result);
  Alcotest.(check int) "sum weighted by multiplicity" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 40 ]) result)

let test_groupby_empty_alpha_empty_input () =
  let empty = Relation.empty s_int2 in
  let cnt = run (Expr.aggregate Aggregate.Cnt 1 (e empty)) in
  Alcotest.(check int) "CNT of empty is the tuple (0)" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 0 ]) cnt);
  Alcotest.(check bool) "AVG of empty is undefined" true
    (match run (Expr.aggregate Aggregate.Avg 1 (e empty)) with
    | _ -> false
    | exception Aggregate.Undefined Aggregate.Avg -> true)

let test_sum_empty_float_domain () =
  let s = Schema.of_list [ ("x", Domain.DFloat) ] in
  let result = run (Expr.aggregate Aggregate.Sum 1 (e (Relation.empty s))) in
  Alcotest.(check int) "empty float SUM is 0.0 (not int 0)" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Float 0.0 ]) result)

let test_eval_against_db () =
  let db =
    Database.of_relations [ ("r", r1) ]
    |> Database.assign_temporary "t" r2
  in
  check_rel "relation by name" r1 (Eval.eval db (Expr.rel "r"));
  check_rel "temporaries visible" r2 (Eval.eval db (Expr.rel "t"));
  Alcotest.check_raises "unknown relation" (Database.Unknown_relation "zz")
    (fun () -> ignore (Eval.eval db (Expr.rel "zz")))

(* --- the paper's examples on the tiny beer database ------------------- *)

let test_example_3_1 () =
  (* Names of beers brewn in NL; Pilsener appears three times. *)
  let result = Eval.eval W.Beer.tiny W.Beer.example_3_1 in
  let name s = Tuple.of_list [ Value.Str s ] in
  Alcotest.(check int) "Pilsener duplicated" 3
    (Relation.multiplicity (name "Pilsener") result);
  Alcotest.(check int) "Bock twice" 2 (Relation.multiplicity (name "Bock") result);
  Alcotest.(check int) "Belgian beer absent" 0
    (Relation.multiplicity (name "Tripel") result)

let test_example_3_2_equivalence () =
  (* The paper's point: with bag semantics, inserting the reducing
     projection does not change the result. *)
  let full = Eval.eval W.Beer.tiny W.Beer.example_3_2 in
  let reduced = Eval.eval W.Beer.tiny W.Beer.example_3_2_reduced in
  Alcotest.(check bool) "same result with and without inner projection"
    true
    (Relation.equal full reduced)

let test_example_3_2_set_semantics_differs () =
  (* Under set semantics (δ after the projection), the reduced variant
     produces a *different* (wrong) AVG: duplicate (alcperc, country)
     pairs collapse.  We exhibit the discrepancy the paper warns about. *)
  let set_reduced =
    Expr.group_by [ 2 ]
      [ (Aggregate.Avg, 1) ]
      (Expr.unique
         (Expr.project_attrs [ 3; 6 ]
            (Expr.join
               (Pred.eq (Scalar.attr 2) (Scalar.attr 4))
               (Expr.rel "beer") (Expr.rel "brewery"))))
  in
  (* Make two Dutch beers share an alcperc so δ really collapses. *)
  let db =
    Database.set "beer"
      (Relation.of_list W.Beer.beer_schema
         [
           Tuple.of_list [ Value.Str "A"; Value.Str "Guineken"; Value.Float 5.0 ];
           Tuple.of_list [ Value.Str "B"; Value.Str "Grolsch"; Value.Float 5.0 ];
           Tuple.of_list [ Value.Str "C"; Value.Str "Guineken"; Value.Float 8.0 ];
         ])
      W.Beer.tiny
  in
  let bag_avg = Eval.eval db W.Beer.example_3_2 in
  let set_avg = Eval.eval db set_reduced in
  (* Bag: (5+5+8)/3 = 6.0; set: (5+8)/2 = 6.5 for NL. *)
  let nl v = Tuple.of_list [ Value.Str "NL"; Value.Float v ] in
  Alcotest.(check int) "bag semantics correct" 1
    (Relation.multiplicity (nl 6.0) bag_avg);
  Alcotest.(check int) "set semantics wrong" 1
    (Relation.multiplicity (nl 6.5) set_avg)

(* --- aggregates directly ---------------------------------------------- *)

let col vs = List.map (fun (v, n) -> (v, n)) vs

let test_aggregate_functions () =
  let column =
    col [ (Value.Int 10, 2); (Value.Int 20, 1); (Value.Int 0, 1) ]
  in
  Alcotest.(check int) "CNT counts multiplicities" 4 (Aggregate.cnt column);
  Alcotest.(check bool) "SUM weighted" true
    (Value.equal (Aggregate.sum column) (Value.Int 40));
  Alcotest.(check (float 1e-9)) "AVG" 10.0 (Aggregate.avg column);
  Alcotest.(check bool) "MIN" true
    (Value.equal (Aggregate.min_v column) (Value.Int 0));
  Alcotest.(check bool) "MAX" true
    (Value.equal (Aggregate.max_v column) (Value.Int 20))

let test_aggregate_partiality () =
  Alcotest.check_raises "AVG undefined on empty" (Aggregate.Undefined Aggregate.Avg)
    (fun () -> ignore (Aggregate.avg []));
  Alcotest.check_raises "MIN undefined on empty" (Aggregate.Undefined Aggregate.Min)
    (fun () -> ignore (Aggregate.min_v []));
  Alcotest.(check int) "CNT total on empty" 0 (Aggregate.cnt []);
  Alcotest.(check bool) "SUM total on empty" true
    (Value.equal (Aggregate.sum []) (Value.Int 0))

let test_aggregate_domains () =
  Alcotest.(check bool) "CNT always int" true
    (Domain.equal (Aggregate.result_domain Aggregate.Cnt Domain.DStr) Domain.DInt);
  Alcotest.(check bool) "AVG float" true
    (Domain.equal (Aggregate.result_domain Aggregate.Avg Domain.DInt) Domain.DFloat);
  Alcotest.(check bool) "SUM rejects strings" true
    (match Aggregate.result_domain Aggregate.Sum Domain.DStr with
    | _ -> false
    | exception Scalar.Eval_error _ -> true);
  Alcotest.(check bool) "MIN on strings fine" true
    (Domain.equal (Aggregate.result_domain Aggregate.Min Domain.DStr) Domain.DStr);
  Alcotest.(check bool) "MAX rejects bool" true
    (match Aggregate.result_domain Aggregate.Max Domain.DBool with
    | _ -> false
    | exception Scalar.Eval_error _ -> true)

let test_var_stddev () =
  (* Extension aggregates (Definition 3.3's remark): population
     variance and standard deviation, multiplicity-weighted. *)
  let column = [ (Value.Int 2, 1); (Value.Int 4, 3) ] in
  (* mean = 3.5; var = ((2-3.5)^2 + 3*(4-3.5)^2)/4 = (2.25+0.75)/4 *)
  Alcotest.(check (float 1e-9)) "VAR weighted" 0.75 (Aggregate.var column);
  Alcotest.(check bool) "STDDEV = sqrt VAR" true
    (Value.equal
       (Aggregate.compute Aggregate.Stddev column)
       (Value.Float (sqrt 0.75)));
  Alcotest.check_raises "VAR undefined on empty" (Aggregate.Undefined Aggregate.Var)
    (fun () -> ignore (Aggregate.var []));
  Alcotest.(check bool) "VAR result domain is float" true
    (Domain.equal (Aggregate.result_domain Aggregate.Var Domain.DInt) Domain.DFloat);
  Alcotest.(check bool) "VAR rejects strings" true
    (match Aggregate.result_domain Aggregate.Var Domain.DStr with
    | _ -> false
    | exception Scalar.Eval_error _ -> true);
  (* Through the algebra and through the engine. *)
  let r = rel [ (tup 1 2, 1); (tup 1 4, 3) ] in
  let q = Expr.group_by [ 1 ] [ (Aggregate.Var, 2) ] (e r) in
  let expected = Tuple.of_list [ Value.Int 1; Value.Float 0.75 ] in
  Alcotest.(check int) "Γ VAR via reference" 1
    (Relation.multiplicity expected (run q));
  Alcotest.(check int) "Γ VAR via engine" 1
    (Relation.multiplicity expected
       (Mxra_engine.Exec.run_expr Database.empty q))

let test_float_fold_canonicalisation () =
  (* Regression: the same float value with its multiplicity split across
     entries must aggregate identically to the consolidated form —
     engine streams split counts, the reference bag consolidates them,
     and float rounding must not see the difference. *)
  let v = Value.Float 0.37 in
  let split = [ (v, 2); (Value.Float 1.13, 1); (v, 3) ] in
  let merged = [ (v, 5); (Value.Float 1.13, 1) ] in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        ("split = merged for " ^ Aggregate.name kind)
        true
        (Value.equal
           (Aggregate.compute_for Domain.DFloat kind split)
           (Aggregate.compute_for Domain.DFloat kind merged)))
    Aggregate.all_extended

let test_aggregate_names () =
  List.iter
    (fun kind ->
      Alcotest.(check (option string))
        ("round trip " ^ Aggregate.name kind)
        (Some (Aggregate.name kind))
        (Option.map Aggregate.name (Aggregate.of_name (Aggregate.name kind))))
    Aggregate.all;
  Alcotest.(check (option string)) "COUNT alias" (Some "CNT")
    (Option.map Aggregate.name (Aggregate.of_name "count"))

(* --- scalar/pred dynamics --------------------------------------------- *)

let test_scalar_eval () =
  let t = Tuple.of_list [ Value.Int 6; Value.Float 1.5 ] in
  let v = Scalar.eval t (Scalar.add (Scalar.attr 1) (Scalar.int 4)) in
  Alcotest.(check bool) "int add" true (Value.equal v (Value.Int 10));
  let v = Scalar.eval t (Scalar.mul (Scalar.attr 2) (Scalar.float 2.0)) in
  Alcotest.(check bool) "float mul" true (Value.equal v (Value.Float 3.0));
  let v = Scalar.eval t (Scalar.Binop (Term.Concat, Scalar.str "a", Scalar.str "b")) in
  Alcotest.(check bool) "concat" true (Value.equal v (Value.Str "ab"));
  Alcotest.(check bool) "mixed int/float promotes" true
    (Value.equal
       (Scalar.eval t (Scalar.add (Scalar.attr 1) (Scalar.attr 2)))
       (Value.Float 7.5))

let test_scalar_division_by_zero () =
  Alcotest.(check bool) "div by zero raises" true
    (match Scalar.eval Tuple.unit (Scalar.div (Scalar.int 1) (Scalar.int 0)) with
    | _ -> false
    | exception Scalar.Eval_error _ -> true)

let test_pred_eval () =
  let t = Tuple.of_list [ Value.Int 5; Value.Str "x" ] in
  Alcotest.(check bool) "lt" true
    (Pred.eval t (Pred.lt (Scalar.attr 1) (Scalar.int 9)));
  Alcotest.(check bool) "and/or/not" true
    (Pred.eval t
       (Pred.And
          ( Pred.Or (Pred.eq (Scalar.attr 2) (Scalar.str "y"),
                     Pred.ne (Scalar.attr 2) (Scalar.str "q")),
            Pred.Not (Pred.gt (Scalar.attr 1) (Scalar.int 5)) )))

let test_pred_simplify () =
  let p = Pred.And (Pred.True, Pred.lt (Scalar.attr 1) (Scalar.int 3)) in
  Alcotest.(check bool) "and true elim" true
    (Pred.equal (Pred.simplify p) (Pred.lt (Scalar.attr 1) (Scalar.int 3)));
  Alcotest.(check bool) "constant fold" true
    (Pred.equal (Pred.simplify (Pred.lt (Scalar.int 1) (Scalar.int 2))) Pred.True);
  Alcotest.(check bool) "or false elim, not not" true
    (Pred.equal
       (Pred.simplify (Pred.Or (Pred.False, Pred.Not (Pred.Not Pred.True))))
       Pred.True)

let test_attrs_used () =
  let e =
    Scalar.If
      ( Pred.eq (Scalar.attr 4) (Scalar.int 0),
        Scalar.add (Scalar.attr 2) (Scalar.attr 2),
        Scalar.attr 7 )
  in
  Alcotest.(check (list int)) "footprint" [ 2; 4; 7 ] (Scalar.attrs_used e);
  Alcotest.(check int) "max" 7 (Scalar.max_attr e);
  Alcotest.(check (list int)) "shifted" [ 5; 7; 10 ]
    (Scalar.attrs_used (Scalar.shift 3 e))

(* --- delete / monus regressions (Definition 3.1) ------------------------ *)

(* delete(R, E) is R ← R − E with − the monus of Definition 3.1:
   (R − E)(t) = max(0, R(t) − E(t)).  Pinned here statement-by-statement
   on the edge cases: empty operands, over-deletion (saturation), exact
   cancellation, and duplicate-heavy bags — through the reference
   evaluator and through the planner + executor. *)

let delete_via_exec db stmt =
  match stmt with
  | Statement.Delete (name, e) ->
      let result =
        Mxra_engine.Exec.run db (Mxra_engine.Planner.plan db e)
      in
      Eval.diff (Database.find name db) result
  | _ -> assert false

let check_delete db stmt expected =
  let name =
    match stmt with Statement.Delete (n, _) -> n | _ -> assert false
  in
  let after_eval = Database.find name (fst (Statement.exec db stmt)) in
  check_rel "via Statement/Eval" expected after_eval;
  check_rel "via Planner/Exec" expected (delete_via_exec db stmt)

let test_delete_monus_edges () =
  let db = Database.of_relations [ ("r", rel [ (tup 1 1, 3); (tup 2 2, 1) ]) ] in
  let del bag = Statement.Delete ("r", Expr.const (rel bag)) in
  check_delete db
    (del [ (tup 9 9, 5) ])
    (rel [ (tup 1 1, 3); (tup 2 2, 1) ]);
  (* absent tuples: no-op *)
  check_delete db (del []) (rel [ (tup 1 1, 3); (tup 2 2, 1) ]);
  (* empty E: identity *)
  check_delete db
    (del [ (tup 1 1, 7) ])
    (rel [ (tup 2 2, 1) ]);
  (* over-deletion saturates at 0, never negative *)
  check_delete db
    (del [ (tup 1 1, 3) ])
    (rel [ (tup 2 2, 1) ]);
  (* exact cancellation leaves the support *)
  check_delete db
    (del [ (tup 1 1, 2) ])
    (rel [ (tup 1 1, 1); (tup 2 2, 1) ])
(* partial deletion decrements *)

let test_delete_from_empty () =
  let db = Database.of_relations [ ("r", rel []) ] in
  check_delete db
    (Statement.Delete ("r", Expr.const (rel [ (tup 1 1, 2) ])))
    (rel []);
  check_delete db (Statement.Delete ("r", Expr.const (rel []))) (rel [])

let test_delete_self_empties () =
  (* Duplicate-heavy self-delete: delete(R, R) must empty R exactly,
     whatever the multiplicities. *)
  let heavy = rel [ (tup 1 1, 17); (tup 2 2, 1); (tup 3 3, 400) ] in
  let db = Database.of_relations [ ("r", heavy) ] in
  check_delete db (Statement.Delete ("r", Expr.rel "r")) (rel []);
  (* And via a selection of R: only the selected part goes. *)
  check_delete db
    (Statement.Delete
       ("r", Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 3)) (Expr.rel "r")))
    (rel [ (tup 1 1, 17); (tup 2 2, 1) ])

let test_zero_multiplicity_literal () =
  (* Definition 2.1: a multiplicity of 0 denotes absence.  Building a
     bag from a counted list containing a 0 entry used to raise a bare
     Invalid_argument; it must simply contribute nothing. *)
  check_rel "zero multiplicity means absent"
    (rel [ (tup 1 1, 2) ])
    (rel [ (tup 1 1, 2); (tup 5 5, 0) ]);
  Alcotest.(check bool) "absent from support" false
    (Relation.mem (tup 5 5) (rel [ (tup 5 5, 0) ]));
  Alcotest.check_raises "negative multiplicity still rejected"
    (Invalid_argument "Multiset.of_counted: count -1 < 0") (fun () ->
      ignore (rel [ (tup 1 1, -1) ]))

let suite =
  ( "eval",
    [
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "difference (monus)" `Quick test_diff;
      Alcotest.test_case "intersection (min)" `Quick test_intersect;
      Alcotest.test_case "product multiplies" `Quick test_product;
      Alcotest.test_case "selection" `Quick test_select;
      Alcotest.test_case "projection accumulates" `Quick test_project_accumulates;
      Alcotest.test_case "extended projection" `Quick test_extended_projection;
      Alcotest.test_case "join = σ∘× (Thm 3.1)" `Quick test_join_is_selected_product;
      Alcotest.test_case "unique" `Quick test_unique;
      Alcotest.test_case "groupby" `Quick test_groupby;
      Alcotest.test_case "groupby empty α" `Quick test_groupby_empty_alpha;
      Alcotest.test_case "groupby empty α, empty input" `Quick
        test_groupby_empty_alpha_empty_input;
      Alcotest.test_case "empty SUM stays in float domain" `Quick
        test_sum_empty_float_domain;
      Alcotest.test_case "evaluation against a database" `Quick test_eval_against_db;
      Alcotest.test_case "Example 3.1" `Quick test_example_3_1;
      Alcotest.test_case "Example 3.2: bag equivalence" `Quick
        test_example_3_2_equivalence;
      Alcotest.test_case "Example 3.2: set semantics differs" `Quick
        test_example_3_2_set_semantics_differs;
      Alcotest.test_case "aggregate functions" `Quick test_aggregate_functions;
      Alcotest.test_case "aggregate partiality" `Quick test_aggregate_partiality;
      Alcotest.test_case "aggregate result domains" `Quick test_aggregate_domains;
      Alcotest.test_case "VAR and STDDEV extensions" `Quick test_var_stddev;
      Alcotest.test_case "float fold canonicalisation" `Quick
        test_float_fold_canonicalisation;
      Alcotest.test_case "aggregate names" `Quick test_aggregate_names;
      Alcotest.test_case "scalar evaluation" `Quick test_scalar_eval;
      Alcotest.test_case "division by zero" `Quick test_scalar_division_by_zero;
      Alcotest.test_case "condition evaluation" `Quick test_pred_eval;
      Alcotest.test_case "condition simplification" `Quick test_pred_simplify;
      Alcotest.test_case "attribute footprints" `Quick test_attrs_used;
      Alcotest.test_case "delete monus edge cases" `Quick test_delete_monus_edges;
      Alcotest.test_case "delete from/of empty bags" `Quick test_delete_from_empty;
      Alcotest.test_case "duplicate-heavy self-delete" `Quick
        test_delete_self_empties;
      Alcotest.test_case "zero-multiplicity literal" `Quick
        test_zero_multiplicity_literal;
    ] )
