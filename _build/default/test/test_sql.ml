(* SQL front-end tests: parsing, name resolution, translation shapes,
   and — most importantly — the paper's own SQL statements (Examples 3.2
   and 4.1) translating to expressions equivalent to the hand-built
   algebra. *)

open Mxra_relational
open Mxra_core
open Mxra_sql
module W = Mxra_workload

let env = Typecheck.env_of_database W.Beer.tiny
let q src = Translate.query_of_string env src
let run src = Eval.eval W.Beer.tiny (q src)

(* --- parsing ----------------------------------------------------------- *)

let test_parse_select () =
  match Sql_parser.parse "SELECT name, alcperc FROM beer WHERE alcperc > 6.0" with
  | Sql_ast.Select { select; from; where = Some _; group_by = []; distinct = false } ->
      Alcotest.(check int) "two items" 2 (List.length select);
      Alcotest.(check int) "one table" 1 (List.length from)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_keywords_case_insensitive () =
  match Sql_parser.parse "select distinct name from beer group by name" with
  | Sql_ast.Select { distinct = true; group_by = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "case-insensitive keywords failed"

let test_parse_statements () =
  (match Sql_parser.parse "INSERT INTO beer VALUES ('A', 'B', 5.0), ('C', 'D', 6.0)" with
  | Sql_ast.Insert_values ("beer", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "insert values");
  (match Sql_parser.parse "DELETE FROM beer WHERE brewery = 'Grolsch'" with
  | Sql_ast.Delete ("beer", Some _) -> ()
  | _ -> Alcotest.fail "delete");
  (match Sql_parser.parse "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'" with
  | Sql_ast.Update ("beer", [ ("alcperc", _) ], Some _) -> ()
  | _ -> Alcotest.fail "update");
  match Sql_parser.parse "CREATE TABLE t (a integer, b varchar)" with
  | Sql_ast.Create ("t", [ ("a", Domain.DInt); ("b", Domain.DStr) ]) -> ()
  | _ -> Alcotest.fail "create"

let test_parse_script () =
  let script = Sql_parser.parse_script "SELECT * FROM beer; DELETE FROM beer;" in
  Alcotest.(check int) "two statements" 2 (List.length script)

let test_parse_errors () =
  let fails src =
    match Sql_parser.parse src with
    | _ -> false
    | exception Sql_parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing FROM" true (fails "SELECT name");
  Alcotest.(check bool) "garbage" true (fails "SELEC * FROM t");
  Alcotest.(check bool) "unfinished where" true (fails "SELECT * FROM t WHERE")

(* --- name resolution ----------------------------------------------------- *)

let test_resolution () =
  (* beer.name is column 1; brewery.name is column 4 in beer × brewery. *)
  let e = q "SELECT beer.name FROM beer, brewery" in
  (match e with
  | Expr.Project ([ Scalar.Attr 1 ], _) -> ()
  | _ -> Alcotest.fail ("qualified: " ^ Expr.to_string e));
  let e = q "SELECT city FROM beer, brewery" in
  (match e with
  | Expr.Project ([ Scalar.Attr 5 ], _) -> ()
  | _ -> Alcotest.fail ("unqualified offset: " ^ Expr.to_string e));
  let fails src =
    match q src with
    | _ -> false
    | exception Translate.Translate_error _ -> true
  in
  Alcotest.(check bool) "ambiguous name rejected" true
    (fails "SELECT name FROM beer, brewery");
  Alcotest.(check bool) "unknown column" true (fails "SELECT zz FROM beer");
  Alcotest.(check bool) "unknown table" true (fails "SELECT a FROM nope");
  (* Aliases disambiguate. *)
  let e = q "SELECT b.name FROM beer x, brewery b" in
  match e with
  | Expr.Project ([ Scalar.Attr 4 ], _) -> ()
  | _ -> Alcotest.fail ("alias: " ^ Expr.to_string e)

(* --- translation vs the paper's examples ----------------------------------- *)

let test_example_3_2_sql () =
  (* The SQL from Example 3.2 must equal the hand-built algebra
     (semantically; the FROM clause builds σ∘× rather than ⋈). *)
  let sql =
    "SELECT country, AVG(alcperc) FROM beer, brewery \
     WHERE beer.brewery = brewery.name GROUP BY country"
  in
  let translated = q sql in
  let reference = Eval.eval W.Beer.tiny W.Beer.example_3_2 in
  Alcotest.(check bool) "same result as Example 3.2" true
    (Relation.equal reference (Eval.eval W.Beer.tiny translated))

let test_example_4_1_sql () =
  let sql = "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'" in
  match Translate.translate_string env sql with
  | Translate.Statement stmt ->
      let db_sql, _ = Statement.exec W.Beer.tiny stmt in
      let db_ref, _ = Statement.exec W.Beer.tiny W.Beer.example_4_1 in
      Alcotest.(check bool) "same post-state as Example 4.1" true
        (Relation.equal (Database.find "beer" db_sql) (Database.find "beer" db_ref))
  | _ -> Alcotest.fail "expected a statement"

(* --- query semantics -------------------------------------------------------- *)

let name_count r name =
  Relation.multiplicity (Tuple.of_list [ Value.Str name ]) r

let test_select_where () =
  let r = run "SELECT name FROM beer WHERE brewery = 'Guineken'" in
  Alcotest.(check int) "two Guineken beers" 2 (Relation.cardinal r);
  Alcotest.(check int) "Pilsener" 1 (name_count r "Pilsener")

let test_duplicates_and_distinct () =
  (* Names of Dutch beers: bag keeps the three Pilseners (Example 3.1);
     DISTINCT collapses them. *)
  let sql =
    "SELECT beer.name FROM beer, brewery \
     WHERE beer.brewery = brewery.name AND country = 'NL'"
  in
  let bag = run sql in
  Alcotest.(check int) "bag keeps duplicates" 3 (name_count bag "Pilsener");
  let set = run ("SELECT DISTINCT" ^ String.sub sql 6 (String.length sql - 6)) in
  Alcotest.(check int) "distinct collapses" 1 (name_count set "Pilsener")

let test_aggregates () =
  let r = run "SELECT CNT(*) FROM beer" in
  Alcotest.(check int) "count rows" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 10 ]) r);
  let r = run "SELECT MAX(alcperc) FROM beer" in
  Alcotest.(check int) "max" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Float 9.0 ]) r);
  let r = run "SELECT brewery, CNT(name) FROM beer GROUP BY brewery" in
  Alcotest.(check int) "per-brewery counts" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Str "Guineken"; Value.Int 2 ]) r)

let test_statistical_aggregates () =
  let r = run "SELECT brewery, VAR(alcperc) FROM beer GROUP BY brewery" in
  Alcotest.(check int) "one row per brewery" 6 (Relation.cardinal r);
  (* Paulaner brews one beer: variance 0. *)
  Alcotest.(check int) "single-beer brewery has VAR 0" 1
    (Relation.multiplicity
       (Tuple.of_list [ Value.Str "Paulaner"; Value.Float 0.0 ])
       r);
  let r = run "SELECT STDDEV(alcperc) FROM beer" in
  Alcotest.(check int) "global STDDEV returns one row" 1 (Relation.cardinal r)

let test_select_reorder_output () =
  (* Aggregate first in the select list: output projection must reorder. *)
  let r = run "SELECT CNT(name), brewery FROM beer GROUP BY brewery" in
  Alcotest.(check int) "reordered row" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Int 2; Value.Str "Guineken" ]) r)

let test_group_by_without_aggregate () =
  let r = run "SELECT country FROM brewery GROUP BY country" in
  Alcotest.(check int) "one row per country" 3 (Relation.cardinal r);
  Alcotest.(check int) "NL once" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Str "NL" ]) r)

let test_arithmetic_in_select () =
  let r = run "SELECT alcperc * 2.0 FROM beer WHERE name = 'Blauw'" in
  Alcotest.(check int) "computed column" 1
    (Relation.multiplicity (Tuple.of_list [ Value.Float 18.0 ]) r)

let test_insert_delete_roundtrip () =
  let exec_sql db src =
    match Translate.translate_string (Typecheck.env_of_database db) src with
    | Translate.Statement stmt -> fst (Statement.exec db stmt)
    | _ -> Alcotest.fail "expected statement"
  in
  let db = exec_sql W.Beer.tiny "INSERT INTO beer VALUES ('New', 'Grolsch', 5)" in
  Alcotest.(check int) "insert with int→float coercion" 11
    (Relation.cardinal (Database.find "beer" db));
  let db = exec_sql db "DELETE FROM beer WHERE name = 'New'" in
  Alcotest.(check bool) "delete round trip" true
    (Relation.equal (Database.find "beer" db) (Database.find "beer" W.Beer.tiny))

let test_insert_select () =
  let src = "INSERT INTO brewery SELECT * FROM brewery WHERE country = 'BE'" in
  match Translate.translate_string env src with
  | Translate.Statement stmt ->
      let db, _ = Statement.exec W.Beer.tiny stmt in
      Alcotest.(check int) "Belgian breweries duplicated" 2
        (Relation.multiplicity
           (Tuple.of_list [ Value.Str "Chimay"; Value.Str "Chimay"; Value.Str "BE" ])
           (Database.find "brewery" db))
  | _ -> Alcotest.fail "expected statement"

let test_bad_values_rejected () =
  let fails src =
    match Translate.translate_string env src with
    | _ -> false
    | exception Translate.Translate_error _ -> true
  in
  Alcotest.(check bool) "arity mismatch" true
    (fails "INSERT INTO beer VALUES ('A', 'B')");
  Alcotest.(check bool) "domain mismatch" true
    (fails "INSERT INTO beer VALUES (1, 'B', 5.0)");
  Alcotest.(check bool) "non-grouped select item" true
    (fails "SELECT name, AVG(alcperc) FROM beer GROUP BY brewery")

let suite =
  ( "sql",
    [
      Alcotest.test_case "parse SELECT" `Quick test_parse_select;
      Alcotest.test_case "keywords case-insensitive" `Quick
        test_parse_keywords_case_insensitive;
      Alcotest.test_case "parse statements" `Quick test_parse_statements;
      Alcotest.test_case "parse script" `Quick test_parse_script;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "name resolution" `Quick test_resolution;
      Alcotest.test_case "Example 3.2 SQL ≡ algebra" `Quick test_example_3_2_sql;
      Alcotest.test_case "Example 4.1 SQL ≡ update" `Quick test_example_4_1_sql;
      Alcotest.test_case "select/where" `Quick test_select_where;
      Alcotest.test_case "duplicates and DISTINCT" `Quick test_duplicates_and_distinct;
      Alcotest.test_case "aggregates" `Quick test_aggregates;
      Alcotest.test_case "statistical aggregates" `Quick test_statistical_aggregates;
      Alcotest.test_case "output reordering" `Quick test_select_reorder_output;
      Alcotest.test_case "GROUP BY without aggregates" `Quick
        test_group_by_without_aggregate;
      Alcotest.test_case "arithmetic in SELECT" `Quick test_arithmetic_in_select;
      Alcotest.test_case "INSERT/DELETE round trip" `Quick test_insert_delete_roundtrip;
      Alcotest.test_case "INSERT ... SELECT" `Quick test_insert_select;
      Alcotest.test_case "bad statements rejected" `Quick test_bad_values_rejected;
    ] )
