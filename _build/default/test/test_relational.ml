(* Tests for the relational substrate: values, domains, tuples, schemas,
   relations and databases (Definitions 2.1-2.6). *)

open Mxra_relational

let v_int n = Value.Int n
let v_str s = Value.Str s
let v_float f = Value.Float f
let v_bool b = Value.Bool b

(* --- values and domains ---------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "str equal" true (Value.equal (v_str "a") (v_str "a"));
  Alcotest.(check bool) "cross-domain unequal" false
    (Value.equal (v_int 1) (v_float 1.0));
  Alcotest.check_raises "same-domain comparison across domains"
    (Value.Incomparable (v_int 1, v_str "a"))
    (fun () -> ignore (Value.compare_same_domain (v_int 1) (v_str "a")))

let test_value_pp () =
  Alcotest.(check string) "int" "42" (Value.to_string (v_int 42));
  Alcotest.(check string) "string quoted" "'ab'" (Value.to_string (v_str "ab"));
  Alcotest.(check string) "quote escaped" "'a''b'" (Value.to_string (v_str "a'b"));
  Alcotest.(check string) "bool" "true" (Value.to_string (v_bool true))

let test_value_numeric () =
  Alcotest.(check bool) "int numeric" true (Value.is_numeric (v_int 1));
  Alcotest.(check bool) "str not" false (Value.is_numeric (v_str "x"));
  Alcotest.(check (float 1e-9)) "as_float" 2.5 (Value.as_float (v_float 2.5))

let test_domain () =
  Alcotest.(check bool) "of_value" true
    (Domain.equal (Domain.of_value (v_int 3)) Domain.DInt);
  Alcotest.(check bool) "member" true (Domain.member (v_str "x") Domain.DStr);
  Alcotest.(check bool) "not member" false (Domain.member (v_str "x") Domain.DInt);
  Alcotest.(check (option bool)) "of_string sql" (Some true)
    (Option.map (Domain.equal Domain.DStr) (Domain.of_string "VARCHAR"));
  Alcotest.(check (option bool)) "of_string unknown" None
    (Option.map (fun _ -> true) (Domain.of_string "blob"))

(* --- tuples ----------------------------------------------------------- *)

let t123 = Tuple.of_list [ v_int 1; v_int 2; v_int 3 ]

let test_tuple_attr () =
  Alcotest.(check bool) "attr 1-based" true (Value.equal (Tuple.attr t123 1) (v_int 1));
  Alcotest.(check bool) "attr 3" true (Value.equal (Tuple.attr t123 3) (v_int 3));
  Alcotest.(check int) "arity" 3 (Tuple.arity t123);
  Alcotest.(check (option bool)) "attr_opt out of range" None
    (Option.map (fun _ -> true) (Tuple.attr_opt t123 4));
  Alcotest.check_raises "attr 0 invalid"
    (Invalid_argument "Tuple.attr: index %0 out of range 1..3") (fun () ->
      ignore (Tuple.attr t123 0))

let test_tuple_project_concat () =
  let p = Tuple.project [ 3; 1; 1 ] t123 in
  Alcotest.(check bool) "project reorders and repeats" true
    (Tuple.equal p (Tuple.of_list [ v_int 3; v_int 1; v_int 1 ]));
  let c = Tuple.concat t123 (Tuple.of_list [ v_str "x" ]) in
  Alcotest.(check int) "concat arity" 4 (Tuple.arity c);
  Alcotest.(check bool) "concat keeps order" true
    (Value.equal (Tuple.attr c 4) (v_str "x"));
  Alcotest.(check bool) "unit is left identity" true
    (Tuple.equal t123 (Tuple.concat Tuple.unit t123))

let test_tuple_compare () =
  let t1 = Tuple.of_list [ v_int 1 ] and t2 = Tuple.of_list [ v_int 2 ] in
  Alcotest.(check bool) "lexicographic" true (Tuple.compare t1 t2 < 0);
  Alcotest.(check bool) "different arity unequal" false
    (Tuple.equal t1 (Tuple.concat t1 t1));
  Alcotest.(check string) "printing" "(1, 2, 3)" (Tuple.to_string t123)

(* --- schemas ----------------------------------------------------------- *)

let s_ab = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DStr) ]

let test_schema_basics () =
  Alcotest.(check int) "arity" 2 (Schema.arity s_ab);
  Alcotest.(check bool) "domain 2" true
    (Domain.equal (Schema.domain s_ab 2) Domain.DStr);
  Alcotest.(check (option int)) "name lookup" (Some 2)
    (Schema.index_of_name s_ab "B");
  Alcotest.(check (option int)) "missing name" None
    (Schema.index_of_name s_ab "z")

let test_schema_compat () =
  let s2 = Schema.of_list [ ("x", Domain.DInt); ("y", Domain.DStr) ] in
  Alcotest.(check bool) "names irrelevant" true (Schema.compatible s_ab s2);
  let s3 = Schema.of_list [ ("a", Domain.DStr); ("b", Domain.DInt) ] in
  Alcotest.(check bool) "domains matter" false (Schema.compatible s_ab s3)

let test_schema_ops () =
  let joined = Schema.concat s_ab s_ab in
  Alcotest.(check int) "concat arity" 4 (Schema.arity joined);
  Alcotest.(check string) "clash renamed" "a'"
    (Schema.attribute joined 3).Schema.name;
  let projected = Schema.project [ 2; 1 ] s_ab in
  Alcotest.(check string) "projection reorders" "b"
    (Schema.attribute projected 1).Schema.name;
  let renamed = Schema.rename 1 "z" s_ab in
  Alcotest.(check (option int)) "rename" (Some 1) (Schema.index_of_name renamed "z")

let test_schema_member () =
  let ok = Tuple.of_list [ v_int 1; v_str "x" ] in
  let bad = Tuple.of_list [ v_str "x"; v_int 1 ] in
  Alcotest.(check bool) "member" true (Schema.member ok s_ab);
  Alcotest.(check bool) "wrong domains" false (Schema.member bad s_ab);
  Alcotest.(check bool) "wrong arity" false (Schema.member t123 s_ab)

(* --- relations --------------------------------------------------------- *)

let tup a b = Tuple.of_list [ v_int a; v_str b ]

let test_relation_bag_semantics () =
  let r = Relation.of_list s_ab [ tup 1 "x"; tup 1 "x"; tup 2 "y" ] in
  Alcotest.(check int) "cardinal counts duplicates" 3 (Relation.cardinal r);
  Alcotest.(check int) "support" 2 (Relation.support_size r);
  Alcotest.(check int) "multiplicity" 2 (Relation.multiplicity (tup 1 "x") r);
  Alcotest.(check bool) "mem" true (Relation.mem (tup 2 "y") r);
  Alcotest.(check bool) "not mem" false (Relation.mem (tup 3 "z") r)

let test_relation_schema_enforced () =
  Alcotest.(check bool) "ill-domained tuple rejected" true
    (match Relation.of_list s_ab [ t123 ] with
    | _ -> false
    | exception Relation.Schema_mismatch _ -> true);
  Alcotest.(check bool) "add rejects too" true
    (match Relation.add t123 (Relation.empty s_ab) with
    | _ -> false
    | exception Relation.Schema_mismatch _ -> true)

let test_relation_compare () =
  let r1 = Relation.of_list s_ab [ tup 1 "x"; tup 1 "x" ] in
  let r2 = Relation.of_list s_ab [ tup 1 "x" ] in
  Alcotest.(check bool) "multiplicity-sensitive equality" false
    (Relation.equal r1 r2);
  Alcotest.(check bool) "subset" true (Relation.subset r2 r1);
  Alcotest.(check bool) "not subset" false (Relation.subset r1 r2);
  let other = Relation.empty (Schema.of_list [ ("q", Domain.DBool) ]) in
  Alcotest.(check bool) "incompatible comparison raises" true
    (match Relation.equal r1 other with
    | _ -> false
    | exception Relation.Schema_mismatch _ -> true)

let test_relation_counted () =
  let r = Relation.of_counted_list s_ab [ (tup 1 "x", 5) ] in
  Alcotest.(check int) "counted build" 5 (Relation.cardinal r);
  Alcotest.(check int) "expanded list" 5 (List.length (Relation.to_list r))

(* --- databases --------------------------------------------------------- *)

let db0 =
  Database.of_relations
    [ ("r", Relation.of_list s_ab [ tup 1 "x" ]); ("s", Relation.empty s_ab) ]

let test_database_catalog () =
  Alcotest.(check bool) "mem" true (Database.mem "r" db0);
  Alcotest.(check int) "find" 1 (Relation.cardinal (Database.find "r" db0));
  Alcotest.check_raises "unknown" (Database.Unknown_relation "zz") (fun () ->
      ignore (Database.find "zz" db0));
  Alcotest.check_raises "duplicate create" (Database.Duplicate_relation "r")
    (fun () -> ignore (Database.create "r" s_ab db0));
  Alcotest.(check (list string)) "names sorted" [ "r"; "s" ]
    (Database.relation_names db0)

let test_database_set () =
  let db = Database.set "s" (Relation.of_list s_ab [ tup 9 "q" ]) db0 in
  Alcotest.(check int) "set replaces" 1 (Relation.cardinal (Database.find "s" db));
  Alcotest.(check bool) "schema change rejected" true
    (match Database.set "s" (Relation.empty (Schema.of_list [ ("z", Domain.DBool) ])) db0 with
    | _ -> false
    | exception Relation.Schema_mismatch _ -> true)

let test_database_temporaries () =
  let tmp = Relation.of_list s_ab [ tup 7 "t" ] in
  let db = Database.assign_temporary "tmp" tmp db0 in
  Alcotest.(check bool) "temp visible" true (Database.mem "tmp" db);
  Alcotest.(check bool) "is_temporary" true (Database.is_temporary "tmp" db);
  Alcotest.(check bool) "persistent not temp" false (Database.is_temporary "r" db);
  (* Rebinding a temporary is allowed; shadowing a persistent is not. *)
  let db = Database.assign_temporary "tmp" tmp db in
  Alcotest.(check bool) "rebind ok" true (Database.mem "tmp" db);
  Alcotest.check_raises "shadowing rejected" (Database.Duplicate_relation "r")
    (fun () -> ignore (Database.assign_temporary "r" tmp db));
  let db' = Database.drop_temporaries db in
  Alcotest.(check bool) "temporaries dropped" false (Database.mem "tmp" db');
  Alcotest.(check (list string)) "persistent names exclude temp"
    [ "r"; "s" ] (Database.persistent_names db)

let test_database_time_and_equality () =
  Alcotest.(check int) "time starts at 0" 0 (Database.logical_time db0);
  let db = Database.tick db0 in
  Alcotest.(check int) "tick" 1 (Database.logical_time db);
  Alcotest.(check bool) "equal_states ignores time" true
    (Database.equal_states db0 db);
  let db' = Database.set "s" (Relation.of_list s_ab [ tup 3 "c" ]) db0 in
  Alcotest.(check bool) "contents matter" false (Database.equal_states db0 db');
  Alcotest.(check bool) "same_schema" true (Database.same_schema db0 db')

let suite =
  ( "relational",
    [
      Alcotest.test_case "value compare" `Quick test_value_compare;
      Alcotest.test_case "value printing" `Quick test_value_pp;
      Alcotest.test_case "value numeric" `Quick test_value_numeric;
      Alcotest.test_case "domains" `Quick test_domain;
      Alcotest.test_case "tuple attr" `Quick test_tuple_attr;
      Alcotest.test_case "tuple project/concat" `Quick test_tuple_project_concat;
      Alcotest.test_case "tuple compare" `Quick test_tuple_compare;
      Alcotest.test_case "schema basics" `Quick test_schema_basics;
      Alcotest.test_case "schema compatibility" `Quick test_schema_compat;
      Alcotest.test_case "schema ops" `Quick test_schema_ops;
      Alcotest.test_case "schema member" `Quick test_schema_member;
      Alcotest.test_case "relation bag semantics" `Quick test_relation_bag_semantics;
      Alcotest.test_case "relation schema enforcement" `Quick test_relation_schema_enforced;
      Alcotest.test_case "relation comparison" `Quick test_relation_compare;
      Alcotest.test_case "relation counted" `Quick test_relation_counted;
      Alcotest.test_case "database catalog" `Quick test_database_catalog;
      Alcotest.test_case "database set" `Quick test_database_set;
      Alcotest.test_case "database temporaries" `Quick test_database_temporaries;
      Alcotest.test_case "database time/equality" `Quick test_database_time_and_equality;
    ] )
