(* Section 4: statements, programs, transactions.  Exercises the update
   equation R ← (R−E) ⊎ π_α(R∩E), Example 4.1, assignment temporaries,
   and the atomicity property "(T(D) = D^{t.n+1}) ∨ (T(D) = D)". *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]
let tup k v = Tuple.of_list [ Value.Int k; Value.Int v ]

let db0 =
  Database.of_relations
    [ ("r", Relation.of_counted_list s_kv [ (tup 1 10, 2); (tup 2 20, 1) ]) ]

let lit pairs = Expr.const (Relation.of_counted_list s_kv pairs)

(* --- statements -------------------------------------------------------- *)

let test_insert () =
  let db, out = Statement.exec db0 (Statement.Insert ("r", lit [ (tup 1 10, 1); (tup 3 30, 2) ])) in
  Alcotest.(check bool) "no output" true (out = None);
  let r = Database.find "r" db in
  Alcotest.(check int) "bag insert adds multiplicity" 3 (Relation.multiplicity (tup 1 10) r);
  Alcotest.(check int) "new tuple" 2 (Relation.multiplicity (tup 3 30) r)

let test_delete () =
  let db, _ = Statement.exec db0 (Statement.Delete ("r", lit [ (tup 1 10, 1); (tup 9 9, 5) ])) in
  let r = Database.find "r" db in
  Alcotest.(check int) "one copy removed" 1 (Relation.multiplicity (tup 1 10) r);
  Alcotest.(check int) "absent tuple: monus ignores" 1
    (Relation.multiplicity (tup 2 20) r)

let test_update () =
  (* update(r, σ_{k=1} r, (k, v+5)): only matching tuples modified,
     multiplicities preserved. *)
  let select_k1 = Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 1)) (Expr.rel "r") in
  let stmt =
    Statement.Update
      ("r", select_k1, [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int 5) ])
  in
  let db, _ = Statement.exec db0 stmt in
  let r = Database.find "r" db in
  Alcotest.(check int) "both copies updated" 2 (Relation.multiplicity (tup 1 15) r);
  Alcotest.(check int) "old value gone" 0 (Relation.multiplicity (tup 1 10) r);
  Alcotest.(check int) "others untouched" 1 (Relation.multiplicity (tup 2 20) r);
  Alcotest.(check int) "cardinality preserved" 3 (Relation.cardinal r)

let test_update_must_preserve_structure () =
  let e = Expr.rel "r" in
  Alcotest.(check bool) "wrong arity rejected" true
    (match Statement.exec db0 (Statement.Update ("r", e, [ Scalar.attr 1 ])) with
    | _ -> false
    | exception Statement.Exec_error _ -> true);
  Alcotest.(check bool) "wrong domain rejected" true
    (match
       Statement.exec db0
         (Statement.Update ("r", e, [ Scalar.attr 1; Scalar.str "boom" ]))
     with
    | _ -> false
    | exception Statement.Exec_error _ -> true)

let test_assign_and_query () =
  let db, _ = Statement.exec db0 (Statement.Assign ("tmp", Expr.rel "r")) in
  Alcotest.(check bool) "temporary bound" true (Database.is_temporary "tmp" db);
  let _, out = Statement.exec db (Statement.Query (Expr.rel "tmp")) in
  (match out with
  | Some r -> Alcotest.(check int) "query returns contents" 3 (Relation.cardinal r)
  | None -> Alcotest.fail "query produced no output");
  Alcotest.(check bool) "schema mismatch on insert rejected" true
    (match
       Statement.exec db0
         (Statement.Insert
            ("r", Expr.const (Relation.empty (Schema.of_list [ ("z", Domain.DBool) ]))))
     with
    | _ -> false
    | exception Statement.Exec_error _ -> true)

(* --- programs ----------------------------------------------------------- *)

let test_program_threads_state () =
  let program =
    [
      Statement.Assign ("big", Expr.select (Pred.ge (Scalar.attr 2) (Scalar.int 15)) (Expr.rel "r"));
      Statement.Delete ("r", Expr.rel "big");
      Statement.Query (Expr.rel "r");
      Statement.Insert ("r", lit [ (tup 7 70, 1) ]);
      Statement.Query (Expr.rel "r");
    ]
  in
  let db, outputs = Program.exec db0 program in
  Alcotest.(check int) "two query outputs" 2 (List.length outputs);
  (match outputs with
  | [ first; second ] ->
      Alcotest.(check int) "first snapshot" 2 (Relation.cardinal first);
      Alcotest.(check int) "second snapshot" 3 (Relation.cardinal second)
  | _ -> Alcotest.fail "unexpected output shape");
  Alcotest.(check int) "final state" 3 (Relation.cardinal (Database.find "r" db))

let test_program_infer () =
  let good =
    [
      Statement.Assign ("t", Expr.rel "r");
      Statement.Insert ("r", Expr.rel "t");
    ]
  in
  Program.infer db0 good;
  let bad =
    [ Statement.Insert ("r", Expr.const (Relation.empty (Schema.of_list [ ("q", Domain.DBool) ]))) ]
  in
  Alcotest.(check bool) "static rejection" true
    (match Program.infer db0 bad with
    | () -> false
    | exception Statement.Exec_error _ -> true);
  (* infer must not read data: checking is on emptied relations, so a
     query over a million-tuple relation types in O(schema). *)
  Program.infer db0 [ Statement.Query (Expr.rel "r") ]

(* --- transactions ------------------------------------------------------- *)

let test_commit_drops_temporaries_and_ticks () =
  let txn =
    Transaction.make ~name:"t1"
      [
        Statement.Assign ("scratch", Expr.rel "r");
        Statement.Insert ("r", Expr.rel "scratch");
      ]
  in
  match Transaction.run db0 txn with
  | Transaction.Committed { state; outputs } ->
      Alcotest.(check int) "no outputs" 0 (List.length outputs);
      Alcotest.(check bool) "temporary dropped" false (Database.mem "scratch" state);
      Alcotest.(check int) "effects installed" 6
        (Relation.cardinal (Database.find "r" state));
      Alcotest.(check int) "time advanced" 1 (Database.logical_time state)
  | Transaction.Aborted { reason; _ } -> Alcotest.fail ("unexpected abort: " ^ reason)

let test_abort_restores_pre_state () =
  (* Failure midway: first statement mutates, second fails.  Atomicity
     demands the pre-state back. *)
  let txn =
    Transaction.make ~name:"t2"
      [
        Statement.Delete ("r", Expr.rel "r");
        Statement.Insert ("nonexistent", Expr.rel "r");
      ]
  in
  match Transaction.run db0 txn with
  | Transaction.Aborted { state; reason } ->
      Alcotest.(check bool) "reason mentions relation" true
        (String.length reason > 0);
      Alcotest.(check bool) "T(D) = D" true (Database.equal_states db0 state);
      Alcotest.(check int) "time still advances" 1 (Database.logical_time state)
  | Transaction.Committed _ -> Alcotest.fail "should have aborted"

let test_abort_if () =
  let txn =
    Transaction.make ~name:"guarded"
      ~abort_if:(fun db -> Relation.cardinal (Database.find "r" db) > 2)
      [ Statement.Insert ("r", lit [ (tup 5 50, 3) ]) ]
  in
  match Transaction.run db0 txn with
  | Transaction.Aborted { state; _ } ->
      Alcotest.(check bool) "rolled back" true (Database.equal_states db0 state)
  | Transaction.Committed _ -> Alcotest.fail "guard should have fired"

let test_abort_on_dynamic_error () =
  let div0 =
    Expr.project [ Scalar.div (Scalar.attr 1) (Scalar.int 0) ] (Expr.rel "r")
  in
  let txn = Transaction.make [ Statement.Query div0 ] in
  match Transaction.run db0 txn with
  | Transaction.Aborted { state; _ } ->
      Alcotest.(check bool) "dynamic failure aborts cleanly" true
        (Database.equal_states db0 state)
  | Transaction.Committed _ -> Alcotest.fail "division by zero must abort"

let test_serial_batch () =
  let insert k v =
    Transaction.make [ Statement.Insert ("r", lit [ (tup k v, 1) ]) ]
  in
  let failing =
    Transaction.make [ Statement.Insert ("missing", Expr.rel "r") ]
  in
  let final, outcomes = Transaction.run_all db0 [ insert 4 40; failing; insert 5 50 ] in
  Alcotest.(check (list bool)) "commit, abort, commit"
    [ true; false; true ]
    (List.map Transaction.committed outcomes);
  Alcotest.(check int) "both commits applied" 5
    (Relation.cardinal (Database.find "r" final));
  Alcotest.(check int) "logical time = 3 transitions" 3
    (Database.logical_time final)

let test_atomicity_property () =
  (* Random programs against random databases: every outcome is either
     full effects (committed) or the untouched pre-state (aborted). *)
  let rng = W.Rng.make 7 in
  for _ = 1 to 60 do
    let db = W.Gen_expr.database ~rng () in
    let name = W.Rng.pick rng (Database.relation_names db) in
    let expr = W.Gen_expr.expr ~rng db ~depth:3 in
    let stmt =
      match W.Rng.int rng 4 with
      | 0 -> Statement.Insert (name, expr)
      | 1 -> Statement.Delete (name, expr)
      | 2 -> Statement.Assign ("t", expr)
      | _ -> Statement.Query expr
    in
    let txn = Transaction.make [ stmt ] in
    match Transaction.run db txn with
    | Transaction.Committed { state; _ } ->
        Alcotest.(check bool) "no temporaries survive" true
          (List.for_all
             (fun n -> not (Database.is_temporary n state))
             (Database.relation_names state))
    | Transaction.Aborted { state; _ } ->
        Alcotest.(check bool) "aborted ⇒ unchanged" true
          (Database.equal_states db state)
  done

let test_example_4_1 () =
  (* Guineken +10%: check against hand-computed result on tiny db. *)
  let db, _ = Statement.exec W.Beer.tiny W.Beer.example_4_1 in
  let beer = Database.find "beer" db in
  let guineken_pils =
    Tuple.of_list [ Value.Str "Pilsener"; Value.Str "Guineken"; Value.Float 5.5 ]
  in
  let grolsch_pils =
    Tuple.of_list [ Value.Str "Pilsener"; Value.Str "Grolsch"; Value.Float 5.2 ]
  in
  Alcotest.(check int) "Guineken Pilsener now 5.5" 1
    (Relation.multiplicity guineken_pils beer);
  Alcotest.(check int) "Grolsch untouched" 1
    (Relation.multiplicity grolsch_pils beer);
  Alcotest.(check int) "cardinality unchanged" 10 (Relation.cardinal beer)

let suite =
  ( "language",
    [
      Alcotest.test_case "insert" `Quick test_insert;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "update" `Quick test_update;
      Alcotest.test_case "update structure preservation" `Quick
        test_update_must_preserve_structure;
      Alcotest.test_case "assign and query" `Quick test_assign_and_query;
      Alcotest.test_case "program threads state" `Quick test_program_threads_state;
      Alcotest.test_case "program static checking" `Quick test_program_infer;
      Alcotest.test_case "commit semantics" `Quick test_commit_drops_temporaries_and_ticks;
      Alcotest.test_case "abort restores pre-state" `Quick test_abort_restores_pre_state;
      Alcotest.test_case "abort_if guard" `Quick test_abort_if;
      Alcotest.test_case "dynamic error aborts" `Quick test_abort_on_dynamic_error;
      Alcotest.test_case "serial batch" `Quick test_serial_batch;
      Alcotest.test_case "atomicity property" `Quick test_atomicity_property;
      Alcotest.test_case "Example 4.1 (Guineken)" `Quick test_example_4_1;
    ] )
