(* Model-based testing: the counted-Map multiset must behave exactly
   like the naive model — a sorted list of elements with explicit
   duplicates — under every operation; and the algebra operators must
   match their list-comprehension definitions computed on expanded
   tuple lists.  This pins the implementation to the simplest possible
   reading of the paper's definitions. *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

module Ms = Mxra_multiset.Multiset.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end)

(* --- the list model ------------------------------------------------------- *)

let model_of_bag m = Ms.to_list m
let normalized xs = List.sort Int.compare xs
let model_eq xs m = normalized xs = model_of_bag m

let rec model_remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: model_remove_one x rest

(* Monus on lists: remove one copy of each element of ys from xs. *)
let model_diff xs ys = List.fold_left (fun acc y -> model_remove_one y acc) xs ys

let model_inter xs ys =
  (* min of counts: keep each x of xs if a copy remains in ys. *)
  let rec go acc remaining = function
    | [] -> List.rev acc
    | x :: rest ->
        if List.mem x remaining then
          go (x :: acc) (model_remove_one x remaining) rest
        else go acc remaining rest
  in
  go [] ys xs

let gen_list = QCheck.Gen.(small_list (int_bound 5))
let arb_list = QCheck.make gen_list ~print:(fun xs ->
    String.concat ";" (List.map string_of_int xs))

let prop name law arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 arb law)

let bag_model_props =
  [
    prop "sum = list append"
      (fun (xs, ys) ->
        model_eq (xs @ ys) (Ms.sum (Ms.of_list xs) (Ms.of_list ys)))
      (QCheck.pair arb_list arb_list);
    prop "diff = list monus"
      (fun (xs, ys) ->
        model_eq (model_diff xs ys) (Ms.diff (Ms.of_list xs) (Ms.of_list ys)))
      (QCheck.pair arb_list arb_list);
    prop "inter = list min-count"
      (fun (xs, ys) ->
        model_eq (model_inter xs ys) (Ms.inter (Ms.of_list xs) (Ms.of_list ys)))
      (QCheck.pair arb_list arb_list);
    prop "distinct = sort_uniq"
      (fun xs ->
        model_eq (List.sort_uniq Int.compare xs) (Ms.distinct (Ms.of_list xs)))
      arb_list;
    prop "map = list map"
      (fun xs ->
        model_eq (List.map (fun x -> x * 2 mod 7) xs)
          (Ms.map (fun x -> x * 2 mod 7) (Ms.of_list xs)))
      arb_list;
    prop "filter = list filter"
      (fun xs ->
        model_eq (List.filter (fun x -> x mod 2 = 0) xs)
          (Ms.filter (fun x -> x mod 2 = 0) (Ms.of_list xs)))
      arb_list;
    prop "cardinal = length"
      (fun xs -> Ms.cardinal (Ms.of_list xs) = List.length xs)
      arb_list;
    prop "multiplicity = count"
      (fun (xs, x) ->
        Ms.multiplicity x (Ms.of_list xs)
        = List.length (List.filter (( = ) x) xs))
      (QCheck.pair arb_list (QCheck.int_bound 5));
    prop "subset = embeddable"
      (fun (xs, ys) ->
        Ms.subset (Ms.of_list xs) (Ms.of_list ys)
        = (model_diff xs ys = []))
      (QCheck.pair arb_list arb_list);
  ]

(* --- the algebra against list comprehensions ------------------------------- *)

(* Expanded-tuple-list semantics of the operators, straight from the
   definitions read as comprehensions over occurrences. *)
let expanded r = Relation.to_list r

let list_sorted ts = List.sort Tuple.compare ts
let rel_eq model r = list_sorted model = list_sorted (expanded r)

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]

let gen_rel =
  QCheck.Gen.(
    map
      (fun pairs ->
        Relation.of_list s_kv
          (List.map
             (fun (a, b) -> Tuple.of_list [ Value.Int a; Value.Int b ])
             pairs))
      (small_list (pair (int_bound 3) (int_bound 3))))

let arb_rel = QCheck.make gen_rel ~print:Relation.to_string

let algebra_model_props =
  [
    prop "union: occurrence concatenation"
      (fun (r1, r2) ->
        rel_eq (expanded r1 @ expanded r2) (Eval.union r1 r2))
      (QCheck.pair arb_rel arb_rel);
    prop "product: all occurrence pairs"
      (fun (r1, r2) ->
        let model =
          List.concat_map
            (fun t1 -> List.map (Tuple.concat t1) (expanded r2))
            (expanded r1)
        in
        rel_eq model (Eval.product r1 r2))
      (QCheck.pair arb_rel arb_rel);
    prop "select: occurrence filter"
      (fun r ->
        let p = Pred.le (Scalar.attr 1) (Scalar.attr 2) in
        rel_eq
          (List.filter (fun t -> Pred.eval t p) (expanded r))
          (Eval.select p r))
      arb_rel;
    prop "project: occurrence map (no dedup)"
      (fun r ->
        rel_eq
          (List.map (Tuple.project [ 2 ]) (expanded r))
          (Eval.project [ Scalar.attr 2 ] r))
      arb_rel;
    prop "unique: sort_uniq of occurrences"
      (fun r ->
        rel_eq
          (List.sort_uniq Tuple.compare (expanded r))
          (Eval.unique r))
      arb_rel;
    prop "join: filtered pairs"
      (fun (r1, r2) ->
        let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
        let model =
          List.concat_map
            (fun t1 ->
              List.filter_map
                (fun t2 ->
                  let t = Tuple.concat t1 t2 in
                  if Pred.eval t p then Some t else None)
                (expanded r2))
            (expanded r1)
        in
        rel_eq model (Eval.join p r1 r2))
      (QCheck.pair arb_rel arb_rel);
    prop "groupby CNT/SUM: fold over occurrences"
      (fun r ->
        let model =
          let keys =
            List.sort_uniq Value.compare
              (List.map (fun t -> Tuple.attr t 1) (expanded r))
          in
          List.map
            (fun k ->
              let members =
                List.filter (fun t -> Value.equal (Tuple.attr t 1) k) (expanded r)
              in
              let sum =
                List.fold_left
                  (fun acc t ->
                    match Tuple.attr t 2 with Value.Int n -> acc + n | _ -> acc)
                  0 members
              in
              Tuple.of_list
                [ k; Value.Int (List.length members); Value.Int sum ])
            keys
        in
        rel_eq model
          (Eval.group_by [ 1 ] [ (Aggregate.Cnt, 2); (Aggregate.Sum, 2) ] r))
      arb_rel;
  ]

(* --- transactions: XRA program print/parse/execute agreement --------------- *)

let program_roundtrip_executes_identically =
  let test seed =
    let rng = W.Rng.make seed in
    let db = W.Gen_expr.database ~rng () in
    let name () = W.Rng.pick rng (Database.relation_names db) in
    let stmt () =
      let e = W.Gen_expr.expr ~rng db ~depth:2 in
      match W.Rng.int rng 3 with
      | 0 -> Statement.Insert (name (), e)
      | 1 -> Statement.Delete (name (), e)
      | _ -> Statement.Assign ("tmp", e)
    in
    let program = List.init (1 + W.Rng.int rng 3) (fun _ -> stmt ()) in
    let source = Mxra_xra.Printer.program_to_string program in
    let reparsed =
      match Mxra_xra.Parser.command_of_string source with
      | Mxra_xra.Parser.Cmd_transaction p -> p
      | _ -> []
    in
    let run p =
      match Transaction.run db (Transaction.make p) with
      | Transaction.Committed { state; _ } -> Some state
      | Transaction.Aborted _ -> None
    in
    match (run program, run reparsed) with
    | Some s1, Some s2 -> Database.equal_states s1 s2
    | None, None -> true
    | Some _, None | None, Some _ -> false
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"printed programs execute identically" ~count:150
       QCheck.small_nat test)

let suite =
  ( "model",
    bag_model_props @ algebra_model_props
    @ [ program_roundtrip_executes_identically ] )
