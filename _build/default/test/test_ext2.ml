(* Tests for the second wave of extensions: integrity constraints (the
   paper's pointer to [11]), semijoin/antijoin (PRISMA's distributed
   operators), ordered output/cursors (the conclusions' inexpressibility
   remark), and CSV interchange. *)

open Mxra_relational
open Mxra_core
open Mxra_ext
module W = Mxra_workload

let s_emp =
  Schema.of_list
    [ ("id", Domain.DInt); ("dept", Domain.DStr); ("salary", Domain.DInt) ]

let s_dept = Schema.of_list [ ("name", Domain.DStr); ("city", Domain.DStr) ]
let emp i d s = Tuple.of_list [ Value.Int i; Value.Str d; Value.Int s ]
let dept n c = Tuple.of_list [ Value.Str n; Value.Str c ]

let company =
  Database.of_relations
    [
      ("emp",
       Relation.of_list s_emp
         [ emp 1 "toys" 100; emp 2 "toys" 120; emp 3 "food" 90 ]);
      ("dept", Relation.of_list s_dept [ dept "toys" "ams"; dept "food" "utr" ]);
    ]

let env = Typecheck.env_of_database company

(* --- constraints ----------------------------------------------------------- *)

let key_emp = Constraints.Key ("emp", [ 1 ])

let fk =
  Constraints.Foreign_key
    { from_relation = "emp"; from_attrs = [ 2 ]; to_relation = "dept"; to_attrs = [ 1 ] }

let positive_salary =
  Constraints.Check ("emp", Pred.gt (Scalar.attr 3) (Scalar.int 0))

let all_constraints = [ key_emp; fk; positive_salary ]

let test_constraints_validate () =
  List.iter (Constraints.validate env) all_constraints;
  let rejects c =
    match Constraints.validate env c with
    | () -> false
    | exception Constraints.Ill_formed _ -> true
  in
  Alcotest.(check bool) "unknown relation" true
    (rejects (Constraints.Key ("nope", [ 1 ])));
  Alcotest.(check bool) "attr out of range" true
    (rejects (Constraints.Key ("emp", [ 9 ])));
  Alcotest.(check bool) "empty attr list" true
    (rejects (Constraints.Unique ("emp", [])));
  Alcotest.(check bool) "fk domain mismatch" true
    (rejects
       (Constraints.Foreign_key
          { from_relation = "emp"; from_attrs = [ 1 ];
            to_relation = "dept"; to_attrs = [ 1 ] }));
  Alcotest.(check bool) "empty cardinality range" true
    (rejects (Constraints.Cardinality ("emp", Some 5, Some 2)))

let test_constraints_satisfied () =
  Alcotest.(check bool) "clean state satisfies all" true
    (Constraints.satisfied company all_constraints)

let test_key_detects_duplicates_and_collisions () =
  (* Bag subtlety: a duplicated tuple violates a key even though it
     agrees only with itself. *)
  let db =
    Database.set "emp"
      (Relation.of_counted_list s_emp [ (emp 1 "toys" 100, 2) ])
      company
  in
  Alcotest.(check bool) "duplicate tuple breaks key" false
    (Constraints.satisfied db [ key_emp ]);
  Alcotest.(check bool) "but not uniqueness of the support" true
    (Constraints.satisfied db [ Constraints.Unique ("emp", [ 1 ]) ]);
  let db =
    Database.set "emp"
      (Relation.of_list s_emp [ emp 1 "toys" 100; emp 1 "food" 90 ])
      company
  in
  Alcotest.(check int) "key collision reported" 1
    (List.length (Constraints.check db key_emp))

let test_foreign_key () =
  let db =
    Database.set "emp"
      (Relation.of_list s_emp [ emp 1 "ghosts" 50 ])
      company
  in
  match Constraints.check db fk with
  | [ v ] ->
      Alcotest.(check bool) "names the missing target" true
        (let s = Format.asprintf "%a" Constraints.pp_violation v in
         String.length s > 0)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length other))

let test_check_and_cardinality () =
  let db =
    Database.set "emp" (Relation.of_list s_emp [ emp 1 "toys" (-5) ]) company
  in
  Alcotest.(check int) "check violation" 1
    (List.length (Constraints.check db positive_salary));
  Alcotest.(check bool) "cardinality bounds" false
    (Constraints.satisfied company
       [ Constraints.Cardinality ("emp", None, Some 2) ]);
  Alcotest.(check bool) "cardinality within" true
    (Constraints.satisfied company
       [ Constraints.Cardinality ("emp", Some 1, Some 10) ])

let test_constraint_guarded_transaction () =
  (* Deferred integrity control: a transaction that breaks the FK must
     abort at its end bracket and leave the state untouched. *)
  let bad =
    Transaction.make ~abort_if:(Constraints.guard all_constraints)
      [
        Statement.Insert
          ("emp", Expr.const (Relation.of_list s_emp [ emp 9 "ghosts" 10 ]));
      ]
  in
  (match Transaction.run company bad with
  | Transaction.Aborted { state; _ } ->
      Alcotest.(check bool) "rolled back" true (Database.equal_states company state)
  | Transaction.Committed _ -> Alcotest.fail "integrity violation must abort");
  (* A repairing transaction that goes through an inconsistent
     intermediate state but ends consistent must commit: checking is
     deferred to the bracket. *)
  let repair =
    Transaction.make ~abort_if:(Constraints.guard all_constraints)
      [
        Statement.Insert
          ("emp", Expr.const (Relation.of_list s_emp [ emp 9 "ghosts" 10 ]));
        Statement.Insert
          ("dept", Expr.const (Relation.of_list s_dept [ dept "ghosts" "rdam" ]));
      ]
  in
  match Transaction.run company repair with
  | Transaction.Committed { state; _ } ->
      Alcotest.(check bool) "final state consistent" true
        (Constraints.satisfied state all_constraints)
  | Transaction.Aborted { reason; _ } -> Alcotest.fail ("deferred check failed: " ^ reason)

(* --- semijoin / antijoin ----------------------------------------------------- *)

let join_cond = Pred.eq (Scalar.attr 2) (Scalar.attr 4)
let emp_r = Database.find "emp" company

let test_semijoin_keeps_multiplicities () =
  (* Duplicate an employee; the semijoin must keep the multiplicity 2,
     while π(E1 ⋈ E2) would inflate by match count. *)
  let emps = Relation.of_counted_list s_emp [ (emp 1 "toys" 100, 2) ] in
  let depts =
    Relation.of_list s_dept [ dept "toys" "ams"; dept "toys" "utr" ]
  in
  let semi = Semijoin.semijoin join_cond emps depts in
  Alcotest.(check int) "multiplicity preserved" 2
    (Relation.multiplicity (emp 1 "toys" 100) semi);
  let projected =
    Eval.project
      [ Scalar.attr 1; Scalar.attr 2; Scalar.attr 3 ]
      (Eval.join join_cond emps depts)
  in
  Alcotest.(check int) "π∘⋈ inflates (the pitfall)" 4
    (Relation.multiplicity (emp 1 "toys" 100) projected)

let test_semi_anti_partition () =
  let depts = Relation.of_list s_dept [ dept "toys" "ams" ] in
  let semi = Semijoin.semijoin join_cond emp_r depts in
  let anti = Semijoin.antijoin join_cond emp_r depts in
  Alcotest.(check bool) "partition" true
    (Relation.equal emp_r (Eval.union semi anti));
  Alcotest.(check bool) "semi ⊑ E1" true (Relation.subset semi emp_r);
  Alcotest.(check bool) "anti = E1 − semi" true
    (Relation.equal anti (Eval.diff emp_r semi));
  Alcotest.(check int) "food has no match" 1
    (Relation.multiplicity (emp 3 "food" 90) anti)

let test_equi_semijoin_agrees () =
  let rng = W.Rng.make 12 in
  for _ = 1 to 20 do
    let left, right = W.Synth.join_pair ~rng ~left:40 ~right:25 ~key_range:6 in
    let cond = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
    Alcotest.(check bool) "hash path = generic path" true
      (Relation.equal
         (Semijoin.semijoin cond left right)
         (Semijoin.equi_semijoin ~left_key:1 ~right_key:1 left right))
  done

(* --- ordered output ------------------------------------------------------------ *)

let test_sort () =
  let rows = Ordered.sort [ (3, Ordered.Desc); (1, Ordered.Asc) ] emp_r in
  Alcotest.(check int) "all rows" 3 (List.length rows);
  (match rows with
  | first :: _ ->
      Alcotest.(check bool) "highest salary first" true
        (Value.equal (Tuple.attr first 3) (Value.Int 120))
  | [] -> Alcotest.fail "empty sort");
  (* Duplicates expand. *)
  let dup = Relation.of_counted_list s_emp [ (emp 1 "toys" 10, 3) ] in
  Alcotest.(check int) "bag expansion" 3
    (List.length (Ordered.sort [ (1, Ordered.Asc) ] dup));
  Alcotest.(check bool) "out-of-range key rejected" true
    (match Ordered.sort [ (9, Ordered.Asc) ] emp_r with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_top_k_and_cursor () =
  let top = Ordered.top_k 2 [ (3, Ordered.Desc) ] emp_r in
  Alcotest.(check (list int)) "top-2 salaries" [ 120; 100 ]
    (List.map
       (fun t -> match Tuple.attr t 3 with Value.Int n -> n | _ -> -1)
       top);
  let c = Ordered.open_cursor [ (1, Ordered.Asc) ] emp_r in
  Alcotest.(check int) "position starts at 0" 0 (Ordered.position c);
  let batch = Ordered.fetch_many c 2 in
  Alcotest.(check int) "fetched 2" 2 (List.length batch);
  Alcotest.(check bool) "third row present" true (Ordered.fetch c <> None);
  Alcotest.(check bool) "exhausted" true (Ordered.fetch c = None);
  Ordered.rewind c;
  Alcotest.(check int) "rewound" 0 (Ordered.position c)

(* --- csv ------------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let tricky =
    Relation.of_counted_list s_emp
      [ (emp 1 "with,comma" 10, 2); (emp 2 "with \"quote\"\nand newline" 20, 1) ]
  in
  let back = W.Csv.decode (W.Csv.encode tricky) in
  Alcotest.(check bool) "round trip with quoting" true
    (Relation.equal tricky back)

let test_csv_typed_header () =
  let r = W.Csv.decode "a:int,b:float,c:bool\n1,2.5,true\n" in
  Alcotest.(check bool) "typed decode" true
    (Relation.mem
       (Tuple.of_list [ Value.Int 1; Value.Float 2.5; Value.Bool true ])
       r);
  Alcotest.(check bool) "bad value rejected" true
    (match W.Csv.decode "a:int\nxyz\n" with
    | _ -> false
    | exception W.Csv.Csv_error (_, 2) -> true);
  Alcotest.(check bool) "missing annotation rejected" true
    (match W.Csv.decode "a\n1\n" with
    | _ -> false
    | exception W.Csv.Csv_error (_, _) -> true)

let test_csv_inference () =
  let r = W.Csv.decode_untyped "x,y,z\n1,1.5,hello\n2,2,world\n" in
  let schema = Relation.schema r in
  Alcotest.(check bool) "int column" true
    (Domain.equal (Schema.domain schema 1) Domain.DInt);
  Alcotest.(check bool) "float column (mixed 1.5 and 2)" true
    (Domain.equal (Schema.domain schema 2) Domain.DFloat);
  Alcotest.(check bool) "string column" true
    (Domain.equal (Schema.domain schema 3) Domain.DStr);
  Alcotest.(check int) "rows" 2 (Relation.cardinal r)

let test_csv_files () =
  let path = Filename.temp_file "mxra" ".csv" in
  W.Csv.write_file path emp_r;
  let back = W.Csv.read_file path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (Relation.equal emp_r back)

(* --- retail workload --------------------------------------------------------- *)

let test_retail_generator () =
  let rng = W.Rng.make 7 in
  let db = W.Retail.generate ~rng ~customers:40 ~orders:200 () in
  (* Generated data satisfies its own declared constraints. *)
  List.iter
    (Constraints.validate (Typecheck.env_of_database db))
    W.Retail.constraints;
  Alcotest.(check bool) "constraints hold" true
    (Constraints.satisfied db W.Retail.constraints);
  (* The canonical queries type-check and the engine agrees with the
     reference on all of them. *)
  List.iter
    (fun q ->
      ignore (Typecheck.infer_db db q);
      Alcotest.(check bool) "engine = reference" true
        (Relation.equal (Eval.eval db q) (Mxra_engine.Exec.run_expr db q)))
    [ W.Retail.revenue_per_country; W.Retail.order_sizes;
      W.Retail.repeat_products ];
  (* Zipf skew: gold-product projection holds duplicates. *)
  let products = Eval.eval db W.Retail.repeat_products in
  Alcotest.(check bool) "duplicates present" true
    (Relation.cardinal products > Relation.support_size products)

let suite =
  ( "ext2",
    [
      Alcotest.test_case "constraint validation" `Quick test_constraints_validate;
      Alcotest.test_case "clean state satisfies" `Quick test_constraints_satisfied;
      Alcotest.test_case "keys under bag semantics" `Quick
        test_key_detects_duplicates_and_collisions;
      Alcotest.test_case "foreign keys" `Quick test_foreign_key;
      Alcotest.test_case "check and cardinality" `Quick test_check_and_cardinality;
      Alcotest.test_case "constraint-guarded transactions" `Quick
        test_constraint_guarded_transaction;
      Alcotest.test_case "semijoin keeps multiplicities" `Quick
        test_semijoin_keeps_multiplicities;
      Alcotest.test_case "semi/anti partition laws" `Quick test_semi_anti_partition;
      Alcotest.test_case "equi semijoin fast path" `Quick test_equi_semijoin_agrees;
      Alcotest.test_case "sorting" `Quick test_sort;
      Alcotest.test_case "top-k and cursors" `Quick test_top_k_and_cursor;
      Alcotest.test_case "csv round trip" `Quick test_csv_roundtrip;
      Alcotest.test_case "csv typed header" `Quick test_csv_typed_header;
      Alcotest.test_case "csv inference" `Quick test_csv_inference;
      Alcotest.test_case "csv files" `Quick test_csv_files;
      Alcotest.test_case "retail workload" `Quick test_retail_generator;
    ] )
