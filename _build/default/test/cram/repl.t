The XRA shell evaluates the paper's examples interactively (input piped
in, prompts echo to stdout):

  $ echo ".beer
  > ?project[%1](select[%6 = 'NL'](join[%2 = %4](beer, brewery)))
  > .quit" | ../../bin/xra_repl.exe
  mxra :: multi-set extended relational algebra shell (.help)
  xra> loaded beer database
  xra> +-------------+---+
  | name        | # |
  +-------------+---+
  | 'Bock'      | 2 |
  | 'Oud Bruin' | 1 |
  | 'Pilsener'  | 3 |
  +-------------+---+ (6 tuples, 3 distinct)
  xra> 

Transactions roll back on failure and report the reason:

  $ echo "create r (a:int)
  > begin insert(r, rel[(a:int)]{(1)}); insert(missing, r) end
  > ?r
  > .quit" | ../../bin/xra_repl.exe
  mxra :: multi-set extended relational algebra shell (.help)
  xra> created r (a:int)
  xra> aborted: unknown relation missing
  xra> +---+---+
  | a | # |
  +---+---+
  +---+---+ (0 tuples, 0 distinct)
  xra> 

Save and reopen a database through the storage layer:

  $ echo "create r (a:int)
  > insert(r, rel[(a:int)]{(7):3})
  > .save store
  > .quit" | ../../bin/xra_repl.exe > /dev/null
  $ echo ".open store
  > ?r
  > .quit" | ../../bin/xra_repl.exe
  mxra :: multi-set extended relational algebra shell (.help)
  xra> opened store (1 relations, t=1)
  xra> +---+---+
  | a | # |
  +---+---+
  | 7 | 3 |
  +---+---+ (3 tuples, 1 distinct)
  xra> 
