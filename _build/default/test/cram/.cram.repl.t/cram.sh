  $ echo ".beer
  > ?project[%1](select[%6 = 'NL'](join[%2 = %4](beer, brewery)))
  > .quit" | ../../bin/xra_repl.exe
  $ echo "create r (a:int)
  > begin insert(r, rel[(a:int)]{(1)}); insert(missing, r) end
  > ?r
  > .quit" | ../../bin/xra_repl.exe
  $ echo "create r (a:int)
  > insert(r, rel[(a:int)]{(7):3})
  > .save store
  > .quit" | ../../bin/xra_repl.exe > /dev/null
  $ echo ".open store
  > ?r
  > .quit" | ../../bin/xra_repl.exe
