  $ ../../bin/bagdb.exe run ../../examples/scripts/beer_session.xra
  $ ../../bin/bagdb.exe sql --beer ../../examples/scripts/analytics.sql | head -8
  $ ../../bin/bagdb.exe explain --beer "select[%6 = 'NL'](product(beer, brewery))"
  $ ../../bin/bagdb.exe explain "union(a,"
