(* Unit and property tests for the multiset substrate: the bag laws the
   whole algebra rests on (Definitions 2.2-2.3 and the operators'
   multiplicity equations), including the min/monus identity at the heart
   of Theorem 3.1. *)

module Ms = Mxra_multiset.Multiset.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end)

let bag_of = Ms.of_list
let check_bag msg expected actual =
  Alcotest.(check bool) msg true (Ms.equal expected actual)

(* --- unit tests ------------------------------------------------------ *)

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (Ms.is_empty Ms.empty);
  Alcotest.(check int) "cardinal empty" 0 (Ms.cardinal Ms.empty);
  Alcotest.(check int) "support empty" 0 (Ms.support_size Ms.empty);
  Alcotest.(check int) "multiplicity in empty" 0 (Ms.multiplicity 3 Ms.empty)

let test_add_remove () =
  let m = Ms.add ~count:3 1 (Ms.add 2 Ms.empty) in
  Alcotest.(check int) "mult 1" 3 (Ms.multiplicity 1 m);
  Alcotest.(check int) "mult 2" 1 (Ms.multiplicity 2 m);
  Alcotest.(check int) "cardinal" 4 (Ms.cardinal m);
  Alcotest.(check int) "support" 2 (Ms.support_size m);
  let m' = Ms.remove ~count:2 1 m in
  Alcotest.(check int) "after remove" 1 (Ms.multiplicity 1 m');
  let m'' = Ms.remove ~count:5 1 m in
  Alcotest.(check int) "remove saturates" 0 (Ms.multiplicity 1 m'');
  Alcotest.(check bool) "mem gone" false (Ms.mem 1 m'')

let test_add_invalid () =
  Alcotest.check_raises "add count 0" (Invalid_argument "Multiset.add: count 0 <= 0")
    (fun () -> ignore (Ms.add ~count:0 1 Ms.empty));
  Alcotest.check_raises "scale negative"
    (Invalid_argument "Multiset.scale: negative factor") (fun () ->
      ignore (Ms.scale (-1) Ms.empty))

let test_set_count () =
  let m = Ms.set_count 7 5 Ms.empty in
  Alcotest.(check int) "set" 5 (Ms.multiplicity 7 m);
  let m' = Ms.set_count 7 0 m in
  Alcotest.(check bool) "set 0 removes" false (Ms.mem 7 m')

let test_sum () =
  let m = Ms.sum (bag_of [ 1; 1; 2 ]) (bag_of [ 1; 3 ]) in
  check_bag "sum adds multiplicities" (bag_of [ 1; 1; 1; 2; 3 ]) m

let test_diff_monus () =
  let m = Ms.diff (bag_of [ 1; 1; 1; 2 ]) (bag_of [ 1; 2; 2; 3 ]) in
  check_bag "monus" (bag_of [ 1; 1 ]) m

let test_inter () =
  let m = Ms.inter (bag_of [ 1; 1; 1; 2 ]) (bag_of [ 1; 1; 3 ]) in
  check_bag "pointwise min" (bag_of [ 1; 1 ]) m

let test_union_max () =
  let m = Ms.union_max (bag_of [ 1; 1; 2 ]) (bag_of [ 1; 3 ]) in
  check_bag "pointwise max" (bag_of [ 1; 1; 2; 3 ]) m

let test_distinct () =
  check_bag "distinct" (bag_of [ 1; 2; 3 ])
    (Ms.distinct (bag_of [ 1; 1; 2; 2; 2; 3 ]))

let test_scale () =
  check_bag "scale 2" (bag_of [ 1; 1; 2; 2 ]) (Ms.scale 2 (bag_of [ 1; 2 ]));
  check_bag "scale 0" Ms.empty (Ms.scale 0 (bag_of [ 1; 2 ]))

let test_subset () =
  Alcotest.(check bool) "subset yes" true
    (Ms.subset (bag_of [ 1; 2 ]) (bag_of [ 1; 1; 2 ]));
  Alcotest.(check bool) "subset multiplicity matters" false
    (Ms.subset (bag_of [ 1; 1 ]) (bag_of [ 1; 2 ]));
  Alcotest.(check bool) "empty subset" true (Ms.subset Ms.empty (bag_of [ 9 ]))

let test_map_accumulates () =
  (* map is bag projection: colliding images accumulate, no dedup. *)
  let m = Ms.map (fun x -> x mod 2) (bag_of [ 1; 2; 3; 4; 5 ]) in
  Alcotest.(check int) "odd count" 3 (Ms.multiplicity 1 m);
  Alcotest.(check int) "even count" 2 (Ms.multiplicity 0 m);
  Alcotest.(check int) "cardinal preserved" 5 (Ms.cardinal m)

let test_filter_partition () =
  let m = bag_of [ 1; 1; 2; 3; 4 ] in
  let evens, odds = Ms.partition (fun x -> x mod 2 = 0) m in
  check_bag "filter = fst partition" (Ms.filter (fun x -> x mod 2 = 0) m) evens;
  check_bag "odds" (bag_of [ 1; 1; 3 ]) odds;
  check_bag "partition is exhaustive" m (Ms.sum evens odds)

let test_to_list_expansion () =
  Alcotest.(check (list int)) "expanded, ordered" [ 1; 1; 2 ]
    (Ms.to_list (bag_of [ 2; 1; 1 ]));
  Alcotest.(check (list int)) "support" [ 1; 2 ] (Ms.support (bag_of [ 2; 1; 1 ]))

let test_counted_roundtrip () =
  let m = bag_of [ 5; 5; 5; 9 ] in
  check_bag "counted round trip" m (Ms.of_counted_list (Ms.to_counted_list m));
  check_bag "seq round trip" m (Ms.of_counted_seq (Ms.to_counted_seq m));
  Alcotest.(check int) "lazy expansion" (Ms.cardinal m)
    (List.length (List.of_seq (Ms.to_seq m)))

let test_min_max_choose () =
  let m = bag_of [ 4; 2; 9 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Ms.min_elt_opt m);
  Alcotest.(check (option int)) "max" (Some 9) (Ms.max_elt_opt m);
  Alcotest.(check (option int)) "min empty" None (Ms.min_elt_opt Ms.empty);
  Alcotest.(check bool) "choose nonempty" true (Ms.choose_opt m <> None)

let test_disjoint () =
  Alcotest.(check bool) "disjoint" true
    (Ms.disjoint (bag_of [ 1 ]) (bag_of [ 2 ]));
  Alcotest.(check bool) "overlapping" false
    (Ms.disjoint (bag_of [ 1; 2 ]) (bag_of [ 2; 3 ]))

let test_map_counted () =
  let m = Ms.map_counted (fun x n -> (x * 10, n * 2)) (bag_of [ 1; 2; 2 ]) in
  Alcotest.(check int) "mult 10" 2 (Ms.multiplicity 10 m);
  Alcotest.(check int) "mult 20" 4 (Ms.multiplicity 20 m)

let test_pp () =
  let m = bag_of [ 1; 2; 2; 2 ] in
  Alcotest.(check string) "printing" "{|1, 2:3|}" (Format.asprintf "%a" Ms.pp m)

(* --- properties ------------------------------------------------------ *)

let gen_bag =
  QCheck.Gen.(
    map Ms.of_counted_list
      (small_list (pair (int_bound 6) (int_range 1 4))))

let arb_bag =
  QCheck.make gen_bag
    ~print:(fun m -> Format.asprintf "%a" Ms.pp m)

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [
    prop "sum is commutative" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal (Ms.sum a b) (Ms.sum b a));
    prop "sum is associative" 200
      (QCheck.triple arb_bag arb_bag arb_bag)
      (fun (a, b, c) ->
        Ms.equal (Ms.sum a (Ms.sum b c)) (Ms.sum (Ms.sum a b) c));
    prop "empty is the unit of sum" 200 arb_bag (fun a ->
        Ms.equal a (Ms.sum a Ms.empty));
    prop "cardinal is additive over sum" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.cardinal (Ms.sum a b) = Ms.cardinal a + Ms.cardinal b);
    (* Theorem 3.1's arithmetic core: min = monus of monus. *)
    prop "inter = diff(a, diff(a,b)) [Thm 3.1]" 300
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal (Ms.inter a b) (Ms.diff a (Ms.diff a b)));
    prop "inter commutative" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal (Ms.inter a b) (Ms.inter b a));
    prop "inter associative" 200
      (QCheck.triple arb_bag arb_bag arb_bag)
      (fun (a, b, c) ->
        Ms.equal (Ms.inter a (Ms.inter b c)) (Ms.inter (Ms.inter a b) c));
    prop "monus self is empty" 200 arb_bag (fun a ->
        Ms.is_empty (Ms.diff a a));
    prop "diff after sum restores" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal a (Ms.diff (Ms.sum a b) b));
    prop "subset iff inter is left" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.subset a b = Ms.equal (Ms.inter a b) a);
    prop "distinct idempotent" 200 arb_bag (fun a ->
        Ms.equal (Ms.distinct a) (Ms.distinct (Ms.distinct a)));
    prop "distinct bounds support" 200 arb_bag (fun a ->
        Ms.cardinal (Ms.distinct a) = Ms.support_size a);
    prop "lattice absorption" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal a (Ms.inter a (Ms.union_max a b)));
    prop "inter distributes over union_max" 200
      (QCheck.triple arb_bag arb_bag arb_bag)
      (fun (a, b, c) ->
        Ms.equal
          (Ms.inter a (Ms.union_max b c))
          (Ms.union_max (Ms.inter a b) (Ms.inter a c)));
    prop "sum = inter + union_max pointwise" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) ->
        Ms.equal (Ms.sum a b) (Ms.sum (Ms.inter a b) (Ms.union_max a b)));
    prop "compare consistent with equal" 200
      (QCheck.pair arb_bag arb_bag)
      (fun (a, b) -> Ms.equal a b = (Ms.compare a b = 0));
    prop "of_list/to_list round trip" 200 arb_bag (fun a ->
        Ms.equal a (Ms.of_list (Ms.to_list a)));
  ]

let suite =
  ( "multiset",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add/remove" `Quick test_add_remove;
      Alcotest.test_case "invalid counts" `Quick test_add_invalid;
      Alcotest.test_case "set_count" `Quick test_set_count;
      Alcotest.test_case "sum" `Quick test_sum;
      Alcotest.test_case "diff is monus" `Quick test_diff_monus;
      Alcotest.test_case "inter" `Quick test_inter;
      Alcotest.test_case "union_max" `Quick test_union_max;
      Alcotest.test_case "distinct" `Quick test_distinct;
      Alcotest.test_case "scale" `Quick test_scale;
      Alcotest.test_case "subset" `Quick test_subset;
      Alcotest.test_case "map accumulates" `Quick test_map_accumulates;
      Alcotest.test_case "filter/partition" `Quick test_filter_partition;
      Alcotest.test_case "to_list expansion" `Quick test_to_list_expansion;
      Alcotest.test_case "counted round trips" `Quick test_counted_roundtrip;
      Alcotest.test_case "min/max/choose" `Quick test_min_max_choose;
      Alcotest.test_case "disjoint" `Quick test_disjoint;
      Alcotest.test_case "map_counted" `Quick test_map_counted;
      Alcotest.test_case "printing" `Quick test_pp;
    ]
    @ properties )
