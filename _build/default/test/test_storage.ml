(* Durability tests: snapshot codec round trips, WAL replay, torn-tail
   crash recovery, checkpointing. *)

open Mxra_relational
open Mxra_core
open Mxra_storage

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mxra-store-%d-%d" (Unix.getpid ()) !counter)
  in
  if Sys.file_exists dir then
    Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f))
  else Sys.mkdir dir 0o755;
  dir

let write_snapshot dir db =
  Out_channel.with_open_text
    (Filename.concat dir "snapshot.xra")
    (fun oc -> Out_channel.output_string oc (Codec.encode_database db))

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DStr) ]
let tup k v = Tuple.of_list [ Value.Int k; Value.Str v ]

let sample_db =
  Database.of_relations
    [
      ("items", Relation.of_counted_list s_kv [ (tup 1 "a", 2); (tup 2 "it's", 1) ]);
      ("empty", Relation.empty s_kv);
    ]

(* --- codec -------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let encoded = Codec.encode_database sample_db in
  let decoded = Codec.decode_database encoded in
  Alcotest.(check bool) "snapshot round trip" true
    (Database.equal_states sample_db decoded);
  Alcotest.(check (list string)) "names preserved" [ "empty"; "items" ]
    (Database.persistent_names decoded)

let test_codec_preserves_time () =
  let db = Database.tick (Database.tick sample_db) in
  let decoded = Codec.decode_database (Codec.encode_database db) in
  Alcotest.(check int) "logical time" 2 (Database.logical_time decoded)

let test_codec_statement () =
  let stmt =
    Statement.Update
      ( "items",
        Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 1)) (Expr.rel "items"),
        [ Scalar.attr 1; Scalar.attr 2 ] )
  in
  let line = Codec.encode_statement stmt in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  Alcotest.(check string) "statement round trip" line
    (Codec.encode_statement (Codec.decode_statement line))

(* --- store -------------------------------------------------------------- *)

let insert_txn k v =
  Transaction.make
    [ Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup k v ])) ]

let with_store dir f =
  let store = Store.open_dir dir in
  let out = f store in
  Store.close store;
  out

let test_store_commit_and_recover () =
  with_store (fresh_dir ()) (fun store ->
      Alcotest.(check bool) "fresh store empty" true
        (Database.persistent_names (Store.database store) = []));
  (* A seeded directory: snapshot written by hand, log empty. *)
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  let store = Store.open_dir dir in
  Alcotest.(check int) "snapshot recovered" 3
    (Relation.cardinal (Database.find "items" (Store.database store)));
  let outcome = Store.commit store (insert_txn 9 "nine") in
  Alcotest.(check bool) "committed" true (Transaction.committed outcome);
  Alcotest.(check int) "one log record" 1 (Store.log_records store);
  Store.close store;
  (* Re-open: snapshot + log replay must reproduce the state. *)
  let recovered = Store.recover_dir dir in
  Alcotest.(check int) "insert survived restart" 1
    (Relation.multiplicity (tup 9 "nine") (Database.find "items" recovered))

let test_aborted_leaves_no_trace () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let failing =
        Transaction.make
          [
            Statement.Insert ("items", Expr.const (Relation.of_list s_kv [ tup 5 "x" ]));
            Statement.Insert ("missing", Expr.rel "items");
          ]
      in
      let outcome = Store.commit store failing in
      Alcotest.(check bool) "aborted" false (Transaction.committed outcome);
      Alcotest.(check int) "no log record" 0 (Store.log_records store));
  let recovered = Store.recover_dir dir in
  Alcotest.(check bool) "state unchanged after restart" true
    (Database.equal_states sample_db recovered)

let test_torn_tail_discarded () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  (* A complete record followed by a torn one (no commit marker). *)
  Out_channel.with_open_text (Filename.concat dir "wal.xra") (fun oc ->
      Out_channel.output_string oc
        ("-- begin 1\n"
        ^ Codec.encode_statement
            (Statement.Insert
               ("items", Expr.const (Relation.of_list s_kv [ tup 7 "ok" ])))
        ^ "\n-- commit 1\n-- begin 2\n"
        ^ Codec.encode_statement
            (Statement.Insert
               ("items", Expr.const (Relation.of_list s_kv [ tup 8 "torn" ])))
        ^ "\n"));
  let recovered = Store.recover_dir dir in
  let items = Database.find "items" recovered in
  Alcotest.(check int) "committed record replayed" 1
    (Relation.multiplicity (tup 7 "ok") items);
  Alcotest.(check int) "torn record discarded" 0
    (Relation.multiplicity (tup 8 "torn") items)

let test_checkpoint_truncates () =
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      ignore (Store.commit store (insert_txn 10 "ten"));
      ignore (Store.commit store (insert_txn 11 "eleven"));
      Alcotest.(check int) "two records" 2 (Store.log_records store);
      Store.checkpoint store;
      Alcotest.(check int) "log truncated" 0 (Store.log_records store);
      ignore (Store.commit store (insert_txn 12 "twelve")));
  let recovered = Store.recover_dir dir in
  let items = Database.find "items" recovered in
  List.iter
    (fun (k, v) ->
      Alcotest.(check int) (v ^ " present") 1
        (Relation.multiplicity (tup k v) items))
    [ (10, "ten"); (11, "eleven"); (12, "twelve") ]

let test_temporaries_replay () =
  (* A transaction that routes data through a temporary must replay. *)
  let dir = fresh_dir () in
  write_snapshot dir sample_db;
  with_store dir (fun store ->
      let txn =
        Transaction.make
          [
            Statement.Assign ("stage", Expr.rel "items");
            Statement.Insert ("items", Expr.rel "stage");
          ]
      in
      ignore (Store.commit store txn);
      Alcotest.(check int) "doubled in memory" 6
        (Relation.cardinal (Database.find "items" (Store.database store))));
  let recovered = Store.recover_dir dir in
  Alcotest.(check int) "doubled after recovery" 6
    (Relation.cardinal (Database.find "items" recovered));
  Alcotest.(check bool) "no temporary leaked" false
    (Database.mem "stage" recovered)

let suite =
  ( "storage",
    [
      Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
      Alcotest.test_case "codec preserves time" `Quick test_codec_preserves_time;
      Alcotest.test_case "statement codec" `Quick test_codec_statement;
      Alcotest.test_case "commit and recover" `Quick test_store_commit_and_recover;
      Alcotest.test_case "aborts leave no trace" `Quick test_aborted_leaves_no_trace;
      Alcotest.test_case "torn tail discarded" `Quick test_torn_tail_discarded;
      Alcotest.test_case "checkpoint truncates log" `Quick test_checkpoint_truncates;
      Alcotest.test_case "temporaries replay" `Quick test_temporaries_replay;
    ] )
