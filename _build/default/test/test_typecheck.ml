(* Static typing tests: schema inference per operator and rejection of
   every class of ill-formed expression. *)

open Mxra_relational
open Mxra_core

let s_ab = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DStr) ]
let s_cd = Schema.of_list [ ("c", Domain.DInt); ("d", Domain.DStr) ]
let s_x = Schema.of_list [ ("x", Domain.DFloat) ]

let env =
  Typecheck.env_of_list [ ("r", s_ab); ("s", s_cd); ("t", s_x) ]

let infer e = Typecheck.infer env e

let check_domains msg expected actual =
  Alcotest.(check bool)
    (msg ^ " (got " ^ Schema.to_string actual ^ ")")
    true
    (List.equal Domain.equal expected (Schema.domains actual))

let rejects msg e =
  Alcotest.(check bool) msg true
    (match infer e with
    | _ -> false
    | exception Typecheck.Type_error _ -> true)

let test_leaves () =
  check_domains "relation leaf" [ Domain.DInt; Domain.DStr ] (infer (Expr.rel "r"));
  check_domains "const leaf" [ Domain.DFloat ]
    (infer (Expr.const (Relation.empty s_x)));
  rejects "unknown relation" (Expr.rel "nope")

let test_set_ops () =
  check_domains "union keeps schema" [ Domain.DInt; Domain.DStr ]
    (infer (Expr.union (Expr.rel "r") (Expr.rel "s")));
  rejects "union incompatible" (Expr.union (Expr.rel "r") (Expr.rel "t"));
  rejects "diff incompatible" (Expr.diff (Expr.rel "r") (Expr.rel "t"));
  rejects "intersect incompatible" (Expr.intersect (Expr.rel "t") (Expr.rel "s"))

let test_product_join () =
  check_domains "product concatenates"
    [ Domain.DInt; Domain.DStr; Domain.DFloat ]
    (infer (Expr.product (Expr.rel "r") (Expr.rel "t")));
  let p = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  check_domains "join schema"
    [ Domain.DInt; Domain.DStr; Domain.DInt; Domain.DStr ]
    (infer (Expr.join p (Expr.rel "r") (Expr.rel "s")));
  rejects "join condition out of range"
    (Expr.join (Pred.eq (Scalar.attr 9) (Scalar.attr 1)) (Expr.rel "r")
       (Expr.rel "s"));
  rejects "join condition cross-domain"
    (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 2)) (Expr.rel "r")
       (Expr.rel "s"))

let test_select () =
  let ok = Pred.gt (Scalar.attr 1) (Scalar.int 0) in
  check_domains "select keeps schema" [ Domain.DInt; Domain.DStr ]
    (infer (Expr.select ok (Expr.rel "r")));
  rejects "select compares str with int"
    (Expr.select (Pred.eq (Scalar.attr 2) (Scalar.int 1)) (Expr.rel "r"))

let test_project () =
  check_domains "plain projection" [ Domain.DStr; Domain.DInt ]
    (infer (Expr.project_attrs [ 2; 1 ] (Expr.rel "r")));
  let extended =
    Expr.project [ Scalar.add (Scalar.attr 1) (Scalar.int 1) ] (Expr.rel "r")
  in
  check_domains "extended projection result domain" [ Domain.DInt ]
    (infer extended);
  (* Name preservation: bare attrs keep their names. *)
  let named = infer (Expr.project_attrs [ 2 ] (Expr.rel "r")) in
  Alcotest.(check string) "name kept" "b" (Schema.attribute named 1).Schema.name;
  rejects "empty projection" (Expr.project [] (Expr.rel "r"));
  rejects "projection out of range" (Expr.project_attrs [ 3 ] (Expr.rel "r"));
  rejects "arith on string attr"
    (Expr.project [ Scalar.add (Scalar.attr 2) (Scalar.int 1) ] (Expr.rel "r"))

let test_unique_groupby () =
  check_domains "unique keeps schema" [ Domain.DInt; Domain.DStr ]
    (infer (Expr.unique (Expr.rel "r")));
  let g = Expr.group_by [ 2 ] [ (Aggregate.Avg, 1) ] (Expr.rel "r") in
  check_domains "groupby schema = keys ⊕ ran(f)"
    [ Domain.DStr; Domain.DFloat ] (infer g);
  let named = infer g in
  Alcotest.(check string) "agg column name" "avg_a"
    (Schema.attribute named 2).Schema.name;
  check_domains "empty α yields aggregate-only schema" [ Domain.DInt ]
    (infer (Expr.aggregate Aggregate.Cnt 1 (Expr.rel "r")));
  rejects "groupby duplicate key"
    (Expr.group_by [ 1; 1 ] [ (Aggregate.Cnt, 1) ] (Expr.rel "r"));
  rejects "groupby no aggregate" (Expr.group_by [ 1 ] [] (Expr.rel "r"));
  rejects "SUM over string attr"
    (Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] (Expr.rel "r"));
  rejects "groupby key out of range"
    (Expr.group_by [ 5 ] [ (Aggregate.Cnt, 1) ] (Expr.rel "r"))

let test_check_result () =
  Alcotest.(check bool) "Ok case" true
    (Result.is_ok (Typecheck.check env (Expr.rel "r")));
  Alcotest.(check bool) "Error case carries message" true
    (match Typecheck.check env (Expr.rel "nope") with
    | Error msg -> String.length msg > 0
    | Ok _ -> false)

let test_static_means_no_dynamic_type_errors () =
  (* A checked expression evaluates without typing failures on any
     instance of its schema: sweep a few random databases. *)
  let rng = Mxra_workload.Rng.make 42 in
  let checked = ref 0 in
  for _ = 1 to 40 do
    let db = Mxra_workload.Gen_expr.database ~rng () in
    let e = Mxra_workload.Gen_expr.expr ~rng db ~depth:4 in
    let schema = Typecheck.infer_db db e in
    let r = Eval.eval db e in
    Alcotest.(check bool) "result schema matches inference" true
      (Schema.compatible schema (Relation.schema r));
    incr checked
  done;
  Alcotest.(check int) "ran all scenarios" 40 !checked

let suite =
  ( "typecheck",
    [
      Alcotest.test_case "leaves" `Quick test_leaves;
      Alcotest.test_case "union/diff/intersect" `Quick test_set_ops;
      Alcotest.test_case "product/join" `Quick test_product_join;
      Alcotest.test_case "select" `Quick test_select;
      Alcotest.test_case "projection" `Quick test_project;
      Alcotest.test_case "unique/groupby" `Quick test_unique_groupby;
      Alcotest.test_case "result interface" `Quick test_check_result;
      Alcotest.test_case "inference agrees with evaluation" `Quick
        test_static_means_no_dynamic_type_errors;
    ] )
