test/test_multiset.ml: Alcotest Format Int List Mxra_multiset QCheck QCheck_alcotest
