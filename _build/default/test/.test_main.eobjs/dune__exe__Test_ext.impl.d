test/test_ext.ml: Aggregate Alcotest Array Closure Database Domain Eval Expr List Mxra_core Mxra_ext Mxra_relational Mxra_workload Parallel Pred Printf Relation Scalar Schema Tuple Value
