test/test_workload.ml: Alcotest Array Database Domain Eval Fun Int List Mxra_core Mxra_engine Mxra_ext Mxra_relational Mxra_workload Relation Schema Typecheck
