test/test_eval.ml: Aggregate Alcotest Database Domain Eval Expr List Mxra_core Mxra_engine Mxra_relational Mxra_workload Option Pred Relation Scalar Schema Term Tuple Value
