test/test_sql.ml: Alcotest Database Domain Eval Expr List Mxra_core Mxra_relational Mxra_sql Mxra_workload Relation Scalar Sql_ast Sql_parser Statement String Translate Tuple Typecheck Value
