test/test_language.ml: Alcotest Database Domain Expr List Mxra_core Mxra_relational Mxra_workload Pred Program Relation Scalar Schema Statement String Transaction Tuple Value
