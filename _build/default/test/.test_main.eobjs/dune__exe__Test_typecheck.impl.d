test/test_typecheck.ml: Aggregate Alcotest Domain Eval Expr List Mxra_core Mxra_relational Mxra_workload Pred Relation Result Scalar Schema String Typecheck
