test/test_relational.ml: Alcotest Database Domain List Mxra_relational Option Relation Schema Tuple Value
