test/test_equiv.ml: Aggregate Alcotest Database Domain Equiv Expr List Mxra_core Mxra_relational Mxra_workload Pred QCheck QCheck_alcotest Relation Scalar Schema Tuple Typecheck Value
